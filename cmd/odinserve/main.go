// Command odinserve is the multi-tenant solver service: a long-running
// HTTP/JSON server that schedules concurrent solve and array-expression
// jobs onto a pool of warm rank groups (communicators created once at
// startup and reused for every job). See DESIGN.md "Serving".
//
// Server mode (the default):
//
//	odinserve -addr :8080 -groups 4 -ranks 2
//	odinserve -addr 127.0.0.1:0 -addr-file port.txt   # pick a free port
//
// Endpoints: POST /v1/solve, POST /v1/expr, GET /v1/stats, GET /healthz.
// Per-tenant quotas (keyed by the X-Tenant header) are off unless
// -tenant-inflight or -tenant-rate is set.
//
// Load-generator mode drives a running server with a mixed workload and
// checks its SLOs — verify.sh uses it as the serve smoke test:
//
//	odinserve -loadgen -url http://127.0.0.1:8080 -jobs 64 -conc 16 \
//	    -max-p99 2s -require-warm-cache
//
// It prints p50/p99 latency and jobs/sec, retries 429s with backoff, and
// exits non-zero if any job ultimately fails, p99 exceeds -max-p99, or
// (with -require-warm-cache) the server's plan cache shows hits <= misses.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"odinhpc/internal/serve"
)

func main() {
	var (
		loadgen = flag.Bool("loadgen", false, "drive a running server instead of serving")

		// Server mode.
		addr     = flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening")
		groups   = flag.Int("groups", 2, "warm rank groups in the pool")
		ranks    = flag.Int("ranks", 2, "ranks per group")
		queue    = flag.Int("queue", 64, "admission queue depth (full queue returns 429)")
		inflight = flag.Int("tenant-inflight", 0, "max in-flight jobs per tenant (0 = unlimited)")
		rate     = flag.Float64("tenant-rate", 0, "sustained jobs/sec per tenant (0 = unlimited)")
		burst    = flag.Float64("tenant-burst", 8, "token-bucket burst per tenant")

		// Loadgen mode.
		url      = flag.String("url", "http://127.0.0.1:8080", "server base URL")
		jobs     = flag.Int("jobs", 64, "total jobs to fire")
		conc     = flag.Int("conc", 16, "concurrent clients")
		mix      = flag.String("mix", "mixed", "workload: mixed, solve, or expr")
		maxP99   = flag.Duration("max-p99", 0, "fail if p99 latency exceeds this (0 = no bound)")
		warm     = flag.Bool("require-warm-cache", false, "fail unless plan-cache hits > misses after the run")
		n        = flag.Int("n", 2048, "problem size for generated jobs")
	)
	flag.Parse()

	if *loadgen {
		os.Exit(runLoadgen(*url, *jobs, *conc, *mix, *n, *maxP99, *warm))
	}
	os.Exit(runServer(*addr, *addrFile, *groups, *ranks, *queue, *inflight, *rate, *burst))
}

func runServer(addr, addrFile string, groups, ranks, queue, inflight int, rate, burst float64) int {
	opts := serve.Options{Groups: groups, Ranks: ranks, QueueDepth: queue}
	if inflight > 0 || rate > 0 {
		opts.Quotas = serve.NewQuotas(inflight, rate, burst)
	}
	sched := serve.NewScheduler(opts)
	defer sched.Stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odinserve:", err)
		return 1
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "odinserve:", err)
			return 1
		}
	}
	fmt.Printf("odinserve: listening on %s (%d groups x %d ranks, queue %d)\n",
		bound, groups, ranks, queue)

	srv := &http.Server{Handler: serve.NewServer(sched).Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("odinserve: %v, shutting down\n", s)
		_ = srv.Close()
		<-done
		return 0
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "odinserve:", err)
			return 1
		}
		return 0
	}
}

// loadResult is one job's outcome as seen by the load generator.
type loadResult struct {
	dur     time.Duration
	retries int
	err     error
}

func runLoadgen(base string, jobs, conc int, mix string, n int, maxP99 time.Duration, requireWarm bool) int {
	if err := waitHealthy(base, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}

	type jobSpec struct {
		path string
		body []byte
	}
	specs := make([]jobSpec, jobs)
	for i := range specs {
		kind := mix
		if mix == "mixed" {
			if i%2 == 0 {
				kind = "solve"
			} else {
				kind = "expr"
			}
		}
		switch kind {
		case "solve":
			sk := "laplace1d"
			if i%4 == 0 {
				sk = "tridiag"
			}
			body, _ := json.Marshal(&serve.SolveRequest{Kind: sk, N: n / 8})
			specs[i] = jobSpec{"/v1/solve", body}
		case "expr":
			exprs := []string{
				"sqrt(x*x + y*y)",
				"x*y + sin(x)",
				"exp(-x*x) + cos(y)",
			}
			body, _ := json.Marshal(&serve.ExprRequest{Expr: exprs[i%len(exprs)], N: n})
			specs[i] = jobSpec{"/v1/expr", body}
		default:
			fmt.Fprintf(os.Stderr, "loadgen: unknown -mix %q\n", mix)
			return 1
		}
	}

	results := make([]loadResult, jobs)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < jobs; i++ {
			next <- i
		}
		close(next)
	}()
	start := time.Now()
	for w := 0; w < conc; w++ {
		tenant := fmt.Sprintf("tenant-%d", w%4)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = fireOne(base, specs[i].path, tenant, specs[i].body)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var failed, retried int
	durs := make([]time.Duration, 0, jobs)
	for i, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "loadgen: job %d: %v\n", i, r.err)
			continue
		}
		retried += r.retries
		durs = append(durs, r.dur)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) time.Duration {
		if len(durs) == 0 {
			return 0
		}
		return durs[int(p*float64(len(durs)-1))]
	}
	p50, p99 := pct(0.50), pct(0.99)
	fmt.Printf("loadgen: %d jobs in %v (%.1f jobs/sec), p50 %v p99 %v, %d retries, %d failed\n",
		jobs-failed, elapsed.Round(time.Millisecond),
		float64(jobs-failed)/elapsed.Seconds(),
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), retried, failed)

	code := 0
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d jobs failed\n", failed)
		code = 1
	}
	if maxP99 > 0 && p99 > maxP99 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: p99 %v exceeds bound %v\n", p99, maxP99)
		code = 1
	}
	if snap, err := fetchStats(base); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: stats:", err)
		code = 1
	} else {
		fmt.Printf("loadgen: server stats: completed=%d failed=%d rejected_queue=%d rejected_quota=%d restarts=%d plan_hits=%d plan_misses=%d\n",
			snap.Completed, snap.Failed, snap.RejectedQueue, snap.RejectedQuota,
			snap.GroupRestarts, snap.PlanCacheHits, snap.PlanCacheMiss)
		if requireWarm && snap.PlanCacheHits <= snap.PlanCacheMiss {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: plan cache cold at steady state (hits=%d misses=%d)\n",
				snap.PlanCacheHits, snap.PlanCacheMiss)
			code = 1
		}
	}
	return code
}

// fireOne POSTs one job, retrying 429s with backoff (that is the contract:
// 429 means "later", not "never").
func fireOne(base, path, tenant string, body []byte) loadResult {
	const maxAttempts = 20
	t0 := time.Now()
	var retries int
	for attempt := 0; attempt < maxAttempts; attempt++ {
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return loadResult{err: err}
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return loadResult{err: err}
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return loadResult{err: err}
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return loadResult{dur: time.Since(t0), retries: retries}
		case http.StatusTooManyRequests:
			retries++
			time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
			continue
		default:
			return loadResult{err: fmt.Errorf("%s: %d %s", path, resp.StatusCode, bytes.TrimSpace(out))}
		}
	}
	return loadResult{err: fmt.Errorf("%s: still throttled after %d attempts", path, maxAttempts)}
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v: %v", base, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fetchStats(base string) (*serve.StatsSnapshot, error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap serve.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
