package main

// e11: fault sweep over the CG solve. A distributed Krylov solve is the
// densest collective workload in the repo — every iteration runs reductions
// and halo exchanges — so it is the natural stress case for the comm-fabric
// fault layer. The sweep replays the same solve under a matrix of seeded
// fault plans and reports, per plan, the outcome (identical solution to the
// fault-free run, or a typed comm.FaultError) plus the perturbation counters
// and logical traffic. The claim under test: perturbation never changes the
// answer, and unmaskable failures always surface typed — no hangs, no silent
// corruption.

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"time"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
	"odinhpc/internal/galeri"
	"odinhpc/internal/solvers"
	"odinhpc/internal/tpetra"
)

// faultsFlag holds the -faults command-line plan; nil means no injection.
var faultsFlag *comm.FaultPlan

// e11SweepPlans is the default plan matrix when -faults is not given.
func e11SweepPlans(seed int64, size int) []struct {
	name string
	plan *comm.FaultPlan
} {
	return []struct {
		name string
		plan *comm.FaultPlan
	}{
		{"none", nil},
		{"zero", &comm.FaultPlan{Seed: seed}},
		{"delay", &comm.FaultPlan{Seed: seed, DelayProb: 0.3, MaxDelay: 3}},
		{"reorder", &comm.FaultPlan{Seed: seed, ReorderProb: 0.5}},
		{"dup", &comm.FaultPlan{Seed: seed, DupProb: 0.25}},
		{"drop", &comm.FaultPlan{Seed: seed, DropProb: 0.2, MaxRetries: 10}},
		{"slow", &comm.FaultPlan{Seed: seed, SlowRanks: map[int]time.Duration{0: 20 * time.Microsecond}}},
		{"storm", &comm.FaultPlan{Seed: seed, DelayProb: 0.25, MaxDelay: 2, DupProb: 0.15,
			ReorderProb: 0.3, DropProb: 0.1, MaxRetries: 10}},
		{"crash", &comm.FaultPlan{Seed: seed, CrashRank: size - 1, CrashAtColl: 5}},
	}
}

// e11Solve runs one CG solve under the given plan and returns the gathered
// solution, iteration count, fault counters, and total logical messages.
func e11Solve(n, p int, plan *comm.FaultPlan) ([]float64, int, comm.FaultCounts, int64, error) {
	var sol []float64
	var iters int
	stats, err := comm.RunConfig(p, comm.Config{Faults: plan}, func(c *comm.Comm) error {
		m := distmap.NewBlock(n, c.Size())
		a := galeri.Laplace1DDist(c, m)
		b := tpetra.NewVector(c, m)
		b.FillFromGlobal(func(g int) float64 { return 1 + float64(g%7)*0.25 })
		x := tpetra.NewVector(c, m)
		res, err := solvers.CG(a, b, x, solvers.Options{Tol: 1e-10, MaxIter: 500})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			iters = res.Iterations
		}
		got := x.GatherAll()
		if c.Rank() == 0 {
			sol = got
		}
		return nil
	})
	var fc comm.FaultCounts
	var msgs int64
	if stats != nil {
		snap := stats.Snapshot()
		fc = snap.Faults
		msgs = snap.TotalMsgs()
	}
	return sol, iters, fc, msgs, err
}

func e11() error {
	const n = 96
	const seed = 424242
	for _, p := range []int{2, 4} {
		fmt.Printf("-- CG on 1-D Laplacian, n=%d, P=%d --\n", n, p)
		ref, refIters, _, refMsgs, err := e11Solve(n, p, nil)
		if err != nil {
			return fmt.Errorf("fault-free reference failed: %w", err)
		}
		fmt.Printf("%-8s %-10s %6s %8s  %s\n", "plan", "outcome", "iters", "msgs", "fault counters")
		plans := e11SweepPlans(seed, p)
		if faultsFlag != nil {
			plans = plans[:0]
			plans = append(plans, struct {
				name string
				plan *comm.FaultPlan
			}{"custom", faultsFlag})
		}
		for _, pl := range plans {
			sol, iters, fc, msgs, err := e11Solve(n, p, pl.plan)
			outcome := "IDENTICAL"
			switch {
			case err != nil:
				var fe *comm.FaultError
				if errors.As(err, &fe) {
					outcome = "typed:" + fe.Kind.String()
				} else {
					return fmt.Errorf("plan %s: untyped failure: %w", pl.name, err)
				}
			case !reflect.DeepEqual(sol, ref) || iters != refIters:
				return fmt.Errorf("plan %s: silent divergence (iters %d vs %d, maxdiff %g)",
					pl.name, iters, refIters, maxAbsDiff(sol, ref))
			case !pl.plan.Active() && msgs != refMsgs:
				// Pay-for-use: a zero-probability plan may not change traffic.
				return fmt.Errorf("plan %s: zero-fault traffic diverged: %d vs %d msgs",
					pl.name, msgs, refMsgs)
			}
			counters := "-"
			if fc.Any() {
				counters = fc.String()
			}
			fmt.Printf("%-8s %-10s %6d %8d  %s\n", pl.name, outcome, iters, msgs, counters)
		}
	}
	fmt.Println("claim check: every perturbation plan either reproduces the fault-free")
	fmt.Println("             solution bitwise (drops masked by retransmit, duplicates")
	fmt.Println("             deduped, delay/reorder absorbed by deterministic matching)")
	fmt.Println("             or fails with a typed FaultError — never a hang or a")
	fmt.Println("             silently wrong answer.")
	return nil
}

func maxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var d float64
	for i := range a {
		d = math.Max(d, math.Abs(a[i]-b[i]))
	}
	return d
}
