package main

// E13: verify the "only boundary communication" claim (§III.G) directly
// from a trace capture instead of aggregate byte counters. The finite
// difference dy = y[1:] - y[:-1] runs under a per-rank trace session; the
// send events carrying slicing.HaloTag are the halo exchange, and the
// experiment checks that their count and size depend on the halo width k
// and rank count P — never on N.

import (
	"fmt"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/slicing"
	"odinhpc/internal/trace"
)

func e13() error {
	fmt.Printf("%12s %4s %4s %12s %14s %14s %12s\n",
		"N", "P", "k", "halo msgs", "bytes/msg", "halo bytes", "total bytes")
	const p = 4
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		for _, k := range []int{1, 4} {
			// A private session per measurement: the capture must contain
			// exactly one ShiftDiff, and must not mix into a -trace session.
			prev := trace.Active()
			s := trace.Start(1 << 16)
			stats, err := comm.RunStats(p, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				ctx.SetControlMessages(false)
				y := core.Random(ctx, []int{n}, 1)
				c.Barrier()
				_ = slicing.ShiftDiff(y, k)
				return nil
			})
			trace.Install(prev)
			if err != nil {
				return err
			}
			var msgs, bytes int64
			sizeOK := true
			for _, ev := range s.Events() {
				if ev.Kind != trace.KindSend || ev.Tag != slicing.HaloTag {
					continue
				}
				msgs++
				bytes += ev.Bytes
				if ev.Bytes != int64(k)*8 {
					sizeOK = false
				}
			}
			per := int64(0)
			if msgs > 0 {
				per = bytes / msgs
			}
			mark := ""
			if !sizeOK || msgs != p-1 {
				mark = "  <- UNEXPECTED"
			}
			fmt.Printf("%12d %4d %4d %12d %14d %14d %12d%s\n",
				n, p, k, msgs, per, bytes, stats.Snapshot().TotalBytes(), mark)
		}
	}
	fmt.Println("halo msgs = P-1 and bytes/msg = 8k at every N: boundary-only communication,")
	fmt.Println("read directly off the trace events tagged slicing.HaloTag.")
	return nil
}
