package main

import (
	"fmt"
	"math"
	"time"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
	"odinhpc/internal/fusion"
	"odinhpc/internal/slicing"
	"odinhpc/internal/ufunc"
)

// e1 measures the control traffic of global operations: the op descriptors
// rank 0 sends the workers, versus the array payload those operations never
// move through the master.
func e1() error {
	fmt.Printf("%6s %10s %12s %14s %16s\n", "P", "globalOps", "ctrlMsgs", "ctrlBytes", "bytes/op/worker")
	for _, p := range []int{2, 4, 8, 16} {
		var msgs int
		var bytes int64
		ops := 0
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			x := core.Random(ctx, []int{1 << 16}, 1) // create
			y := ufunc.Sin(x)                        // unary ufunc
			z := ufunc.Add(x, y)                     // binary ufunc
			_ = ufunc.Sum(z)                         // reduction
			_ = slicing.Diff(z)                      // slice
			ops = 5
			if c.Rank() == 0 {
				msgs, bytes = ctx.CtrlStats()
			}
			return nil
		})
		if err != nil {
			return err
		}
		perOp := float64(bytes) / float64(ops) / float64(p-1)
		fmt.Printf("%6d %10d %12d %14d %16.1f\n", p, ops, msgs, bytes, perOp)
	}
	fmt.Println("claim check: per-op descriptors stay in the tens of bytes at every P.")
	return nil
}

// e2 characterizes ufunc scaling. The simulation host may have a single
// CPU, so wall-clock parallel speedup is not measurable; instead the
// experiment verifies the two facts that *determine* scaling — per-rank
// work shrinks as N/P and conformable ufuncs move zero array data — then
// reports modeled times: serial throughput is calibrated at P=1 and
// combined with the alpha-beta communication model.
func e2() error {
	const n = 4_000_000
	// Calibrate serial per-element cost for sin(x).
	var perElem float64 // seconds per element
	err := comm.Run(1, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false)
		x := core.Random(ctx, []int{n}, 1)
		_ = ufunc.Sin(x) // warm-up
		best := math.Inf(1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			_ = ufunc.Sin(x)
			if d := time.Since(start).Seconds(); d < best {
				best = d
			}
		}
		perElem = best / n
		return nil
	})
	if err != nil {
		return err
	}
	model := comm.EthernetLike()
	fmt.Printf("%6s %14s %14s %16s %14s %10s\n", "P", "elems/rank", "bytes moved", "modeled comp ms", "modeled total", "speedup")
	var base float64
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		var moved int64
		stats, err := comm.RunStats(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			ctx.SetControlMessages(false)
			x := core.Random(ctx, []int{n}, 1)
			y := core.Random(ctx, []int{n}, 2)
			c.Barrier()
			if c.Rank() == 0 {
				c.ResetStats()
			}
			c.Barrier()
			_ = ufunc.Sin(x)
			_ = ufunc.Add(x, y)
			return nil
		})
		if err != nil {
			return err
		}
		moved = stats.Snapshot().TotalBytes()
		perRank := (n + p - 1) / p
		compMS := perElem * float64(perRank) * 1000
		commMS := model.Time(moved/int64(p)) * 1000 // per-rank share
		totalMS := compMS + commMS
		if p == 1 {
			base = totalMS
		}
		fmt.Printf("%6d %14d %14d %16.2f %14.2f %9.1fx\n", p, perRank, moved, compMS, totalMS, base/totalMS)
	}
	fmt.Println("claim check: zero array bytes move, so modeled scaling is ideal N/P.")
	return nil
}

// e3 measures the bytes moved by each redistribution strategy for
// non-conformable operands and confirms the chooser picks the minimum.
func e3() error {
	const n = 1 << 16
	fmt.Printf("%-34s %12s %12s %12s %10s\n", "operand layouts", "importRight", "importLeft", "auto", "chosen")
	type cfg struct {
		name   string
		mapsOf func(p int) (xm, ym *distmap.Map)
	}
	cfgs := []cfg{
		{"x block vs y cyclic", func(p int) (*distmap.Map, *distmap.Map) {
			return distmap.NewBlock(n, p), distmap.NewCyclic(n, p)
		}},
		{"x block vs y block (conformable)", func(p int) (*distmap.Map, *distmap.Map) {
			return distmap.NewBlock(n, p), distmap.NewBlock(n, p)
		}},
		{"x block vs y one-row-off", func(p int) (*distmap.Map, *distmap.Map) {
			owners := distmap.NewBlock(n, p).OwnersTable()
			owners[0] = p - 1 // one slab lives on the wrong rank
			return distmap.NewBlock(n, p), distmap.NewArbitrary(owners, p)
		}},
		{"x all-on-0 vs y cyclic", func(p int) (*distmap.Map, *distmap.Map) {
			return distmap.NewArbitrary(make([]int, n), p), distmap.NewCyclic(n, p)
		}},
	}
	const p = 4
	for _, cf := range cfgs {
		var right, left, auto int
		var chosen ufunc.Strategy
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			xm, ym := cf.mapsOf(p)
			x := core.Zeros[float64](ctx, []int{n}, core.Options{Map: xm})
			y := core.Zeros[float64](ctx, []int{n}, core.Options{Map: ym})
			_, right = ufunc.PlanBinary(x, y, ufunc.BinaryOptions{Strategy: ufunc.StrategyImportRight})
			_, left = ufunc.PlanBinary(x, y, ufunc.BinaryOptions{Strategy: ufunc.StrategyImportLeft})
			chosen, auto = ufunc.PlanBinary(x, y)
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %12d %12d %12d %10v\n", cf.name, right, left, auto, chosen)
		if auto > right || auto > left {
			return fmt.Errorf("chooser not minimal for %s", cf.name)
		}
	}
	fmt.Println("claim check: auto equals min(importRight, importLeft) in every case.")
	return nil
}

// e4 compares three ways to evaluate y[1:] - y[:-1] (the E-A1 ablation):
// the halo exchange (O(P) bytes), the general slab-slice path (also
// boundary-dominated for a shift-by-one: result block edges move by one
// row), and the naive allgather strategy an MPI novice writes first
// (O(N*P) bytes).
func e4() error {
	fmt.Printf("%12s %6s %14s %16s %18s\n", "N", "P", "halo bytes", "slice bytes", "allgather bytes")
	for _, n := range []int{100_000, 1_000_000, 10_000_000} {
		const p = 4
		measure := func(mode string) (int64, error) {
			stats, err := comm.RunStats(p, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				ctx.SetControlMessages(false)
				y := core.Random(ctx, []int{n}, 1)
				c.Barrier()
				if c.Rank() == 0 {
					c.ResetStats()
				}
				c.Barrier()
				switch mode {
				case "halo":
					_ = slicing.Diff(y)
				case "slice":
					hi := slicing.Slice(y, dense.Range{Start: 1, Stop: n, Step: 1})
					lo := slicing.Slice(y, dense.Range{Start: 0, Stop: n - 1, Step: 1})
					_ = ufunc.Sub(hi, lo)
				case "allgather":
					// Materialize the whole array everywhere, then
					// difference the local rows — correct but wasteful.
					full := y.Gather()
					me, m := c.Rank(), y.Map()
					out := dense.Zeros[float64](m.LocalCount(me))
					for l := 0; l < out.Dim(0); l++ {
						g := m.LocalToGlobal(me, l)
						if g < n-1 {
							out.Set(full.At(g+1)-full.At(g), l)
						}
					}
				}
				return nil
			})
			if err != nil {
				return 0, err
			}
			return stats.Snapshot().TotalBytes(), nil
		}
		halo, err := measure("halo")
		if err != nil {
			return err
		}
		slice, err := measure("slice")
		if err != nil {
			return err
		}
		gather, err := measure("allgather")
		if err != nil {
			return err
		}
		fmt.Printf("%12d %6d %14d %16d %18d\n", n, p, halo, slice, gather)
	}
	fmt.Println("claim check: halo and slice bytes are O(P), independent of N;")
	fmt.Println("             the allgather strategy moves O(N*P) bytes.")
	return nil
}

// e5 measures loop fusion: one fused sweep vs op-at-a-time temporaries on
// the hypot chain and a 7-op expression.
func e5() error {
	const n = 2_000_000
	const p = 4
	exprs := []struct {
		name  string
		build func(x, y *core.DistArray[float64]) *fusion.Expr
	}{
		{"hypot = sqrt(x^2+y^2)", func(x, y *core.DistArray[float64]) *fusion.Expr {
			return fusion.Sqrt(fusion.Var(x).Square().Add(fusion.Var(y).Square()))
		}},
		{"7-op chain", func(x, y *core.DistArray[float64]) *fusion.Expr {
			return fusion.Exp(fusion.Neg(fusion.Var(x))).Mul(fusion.Var(y)).
				Add(fusion.Sin(fusion.Var(x))).Div(fusion.Var(y).Add(fusion.Const(2)))
		}},
	}
	fmt.Printf("%-24s %8s %12s %12s %10s\n", "expression", "ops", "naive ms", "fused ms", "speedup")
	for _, ex := range exprs {
		var naiveMS, fusedMS float64
		var ops int
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			ctx.SetControlMessages(false)
			x := core.Random(ctx, []int{n}, 1)
			y := core.Random(ctx, []int{n}, 2)
			e := ex.build(x, y)
			ops = e.CountOps()
			// Warm-up + correctness.
			a := fusion.Eval(e)
			b := fusion.EvalNaive(e)
			if !ufunc.AllClose(a, b, 1e-13, 1e-13) {
				return fmt.Errorf("fused != naive")
			}
			c.Barrier()
			start := time.Now()
			_ = fusion.EvalNaive(e)
			c.Barrier()
			d1 := time.Since(start)
			start = time.Now()
			_ = fusion.Eval(e)
			c.Barrier()
			d2 := time.Since(start)
			if c.Rank() == 0 {
				naiveMS = float64(d1.Microseconds()) / 1000
				fusedMS = float64(d2.Microseconds()) / 1000
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %8d %12.2f %12.2f %9.2fx\n", ex.name, ops, naiveMS, fusedMS, naiveMS/fusedMS)
	}
	fmt.Println("claim check: fusion removes one temporary array per op node.")
	return nil
}

// e10 tracks the Fig. 1 architecture property: bytes through rank 0 stay
// O(P) per operation while worker-to-worker traffic carries the data.
func e10() error {
	const n = 1 << 20
	arrayBytes := int64(8 * n)
	fmt.Printf("%6s %16s %18s %14s %18s\n", "P", "master bytes", "worker<->worker", "array bytes", "master/array")
	for _, p := range []int{2, 4, 8, 16} {
		stats, err := comm.RunStats(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			x := core.Random(ctx, []int{n}, 1)
			// A stencil sweep: repeated shifted differences + rescale, the
			// update pattern of an explicit PDE solver.
			for iter := 0; iter < 5; iter++ {
				d := slicing.Diff(x)
				_ = ufunc.Sum(d) // global monitor through the master
				x = ufunc.Scalar(x, 1.0-1e-9*math.Sqrt(float64(iter+1)), func(v, s float64) float64 { return v * s })
			}
			return nil
		})
		if err != nil {
			return err
		}
		snap := stats.Snapshot()
		master := snap.MasterBytes()
		workers := snap.WorkerBytes()
		share := float64(master) / float64(arrayBytes) * 100
		fmt.Printf("%6d %16d %18d %14d %17.4f%%\n", p, master, workers, arrayBytes, share)
	}
	fmt.Println("claim check: bytes through the master are control-sized (O(P) per op),")
	fmt.Println("             five orders of magnitude below the array size they steer.")
	return nil
}

// e12 profiles the register-VM fusion engine: a block-size sweep over the
// fused hypot kernel, and the plan cache turning an iterative solver's
// rebuild-the-expression-every-iteration pattern into compile-once.
func e12() error {
	const n = 2_000_000
	const p = 4

	// Part 1: block-size sweep. The scratch registers must fit in cache;
	// too-small blocks pay per-block dispatch, too-large blocks spill.
	fmt.Printf("%-10s %12s %12s\n", "block", "fused ms", "MB/s")
	defBlock := fusion.BlockSize()
	for _, block := range []int{256, 1024, 4096, 16384} {
		fusion.SetBlockSize(block)
		var ms float64
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			ctx.SetControlMessages(false)
			x := core.Random(ctx, []int{n}, 1)
			y := core.Random(ctx, []int{n}, 2)
			e := fusion.Sqrt(fusion.Var(x).Square().Add(fusion.Var(y).Square()))
			_ = fusion.Eval(e) // warm-up (and compile)
			c.Barrier()
			start := time.Now()
			_ = fusion.Eval(e)
			c.Barrier()
			if c.Rank() == 0 {
				ms = float64(time.Since(start).Microseconds()) / 1000
			}
			return nil
		})
		if err != nil {
			fusion.SetBlockSize(defBlock)
			return err
		}
		mark := ""
		if block == defBlock {
			mark = "  (default)"
		}
		fmt.Printf("%-10d %12.2f %12.1f%s\n", block, ms, float64(8*n)/ms/1000, mark)
	}
	fusion.SetBlockSize(defBlock)

	// Part 2: the plan cache. An iterative method rebuilds its update
	// expression every iteration; structural hashing makes every rebuild
	// after the first a cache hit, so compilation cost is paid once.
	const iters = 200
	var instrs, regs int
	var prog string
	var hits, misses int64
	err := comm.Run(1, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.Random(ctx, []int{1 << 16}, 1)
		y := core.Random(ctx, []int{1 << 16}, 2)
		fusion.ResetPlanCache()
		for i := 0; i < iters; i++ {
			// Fresh Expr nodes each iteration, same structure.
			e := fusion.Sqrt(fusion.Var(x).Square().Add(fusion.Var(y).Square()))
			plan := fusion.Analyze(e)
			if i == 0 {
				instrs, regs = plan.Program()
				prog = plan.ProgramString()
			}
			_ = plan.Execute()
		}
		hits, misses = fusion.PlanCacheStats()
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ncompiled hypot program (%d instrs, %d scratch registers):\n%s", instrs, regs, prog)
	fmt.Printf("plan cache over %d rebuilt expressions: %d hits, %d misses\n", iters, hits, misses)
	fmt.Println("claim check: block 1024 (8 KiB/register) is the cache sweet spot, and")
	fmt.Println("             rebuilt expressions compile once via structural hashing.")
	return nil
}
