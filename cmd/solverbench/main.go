// Command solverbench is the experiment harness: each subcommand
// regenerates one of the E1-E10 experiment tables recorded in
// EXPERIMENTS.md (the constructed evaluation of the paper's claims — see
// DESIGN.md for the experiment index).
//
// Usage:
//
//	solverbench [-threads N] [-faults SPEC] <e1|e2|...|e12|all>
//
// -threads sets the intra-rank worker-pool size of the exec engine, so ODIN
// experiments can sweep per-rank goroutine parallelism (the intra-rank
// counterpart of the rank sweeps) without recompiling. 0 keeps the default
// (ODINHPC_THREADS env, else GOMAXPROCS).
//
// -faults injects a seeded comm-fabric fault plan into the e11 sweep in
// place of the built-in plan matrix. The spec is the compact form accepted
// by comm.ParseFaultPlan, e.g. "seed=42,drop=0.1,retries=8,delay=0.3".
//
// -trace records every experiment run under the per-rank trace layer and
// writes a Chrome trace_event JSON timeline (chrome://tracing, Perfetto) to
// the given path on exit.
package main

import (
	"flag"
	"fmt"
	"os"

	"odinhpc/internal/comm"
	"odinhpc/internal/exec"
	"odinhpc/internal/trace"
)

var experiments = []struct {
	name string
	desc string
	run  func() error
}{
	{"e1", "control messages are tens of bytes (paper §III.B)", e1},
	{"e2", "ufunc scaling: trivial parallelism (paper §III.D)", e2},
	{"e3", "redistribution strategy selection (paper §III.D)", e3},
	{"e4", "finite differences: boundary-only communication (paper §III.G)", e4},
	{"e5", "loop fusion vs op-at-a-time temporaries (paper §III)", e5},
	{"e6", "Seamless JIT: interpreted vs compiled kernels (paper §IV.A)", e6},
	{"e7", "FFI call overhead (paper §IV.C)", e7},
	{"e8", "ODIN arrays through Trilinos-analog solvers (paper §II/§V)", e8},
	{"e9", "Table I feature parity", e9},
	{"e10", "master is not a bottleneck (paper Fig. 1)", e10},
	{"e11", "fault sweep: CG under comm-fabric perturbation", e11},
	{"e12", "fusion register VM: block sweep and plan cache", e12},
	{"e13", "halo message sizes read off a trace capture (paper §III.G)", e13},
}

func main() {
	threads := flag.Int("threads", 0, "intra-rank exec engine workers (0 = ODINHPC_THREADS env, else GOMAXPROCS)")
	faults := flag.String("faults", "", "fault plan for e11 (comm.ParseFaultPlan spec, e.g. \"seed=42,drop=0.1\")")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the run to this path")
	flag.Usage = usage
	flag.Parse()
	if *threads > 0 {
		exec.SetDefaultWorkers(*threads)
	}
	if *traceOut != "" {
		trace.Start(1 << 18)
	}
	if *faults != "" {
		plan, err := comm.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-faults: %v\n", err)
			os.Exit(2)
		}
		faultsFlag = plan
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	sel := flag.Arg(0)
	ran := false
	for _, e := range experiments {
		if sel == e.name || sel == "all" {
			ran = true
			fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
			if err := e.run(); err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	if !ran {
		usage()
		os.Exit(2)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "-trace: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTrace stops the session started for -trace and serializes it.
func writeTrace(path string) error {
	s := trace.Stop()
	if s == nil {
		return fmt.Errorf("no trace session active")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: %s -> %s\n", s.Summary(), path)
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: solverbench [-threads N] [-faults SPEC] [-trace out.json] <experiment|all>")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-4s %s\n", e.name, e.desc)
	}
}
