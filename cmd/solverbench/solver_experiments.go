package main

import (
	"fmt"
	"math"
	"strings"
	"time"

	"odinhpc/internal/bridge"
	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
	"odinhpc/internal/direct"
	"odinhpc/internal/distmap"
	"odinhpc/internal/eigen"
	"odinhpc/internal/galeri"
	"odinhpc/internal/nonlinear"
	"odinhpc/internal/partition"
	"odinhpc/internal/precond"
	"odinhpc/internal/seamless"
	"odinhpc/internal/seamless/compile"
	"odinhpc/internal/seamless/ffi"
	"odinhpc/internal/seamless/vm"
	"odinhpc/internal/solvers"
	"odinhpc/internal/sparse"
	"odinhpc/internal/teuchos"
	"odinhpc/internal/tpetra"
)

const e6Corpus = `
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res

def dot(a, b):
    acc = 0.0
    for i in range(len(a)):
        acc += a[i] * b[i]
    return acc

def saxpy(alpha, x, y):
    for i in range(len(x)):
        y[i] = alpha * x[i] + y[i]
    return 0

def mandel(cr, ci, maxiter):
    zr = 0.0
    zi = 0.0
    n = 0
    while n < maxiter and zr * zr + zi * zi <= 4.0:
        t = zr * zr - zi * zi + cr
        zi = 2.0 * zr * zi + ci
        zr = t
        n += 1
    return n
`

// e6 times the Seamless kernels on the interpreter and the compiled engine
// and compares against hand-written Go — the paper's central JIT claim.
func e6() error {
	progV, err := seamless.CompileSource(e6Corpus)
	if err != nil {
		return err
	}
	progC, err := seamless.CompileSource(e6Corpus)
	if err != nil {
		return err
	}
	ev := vm.NewEngine(progV)
	ec := compile.NewEngine(progC)

	const n = 1_000_000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i % 1000)
		ys[i] = float64(i % 777)
	}
	goSum := func() float64 {
		acc := 0.0
		for _, v := range xs {
			acc += v
		}
		return acc
	}
	goDot := func() float64 {
		acc := 0.0
		for i := range xs {
			acc += xs[i] * ys[i]
		}
		return acc
	}
	goSaxpy := func() {
		for i := range xs {
			ys[i] = 2.5*xs[i] + ys[i]
		}
	}
	goMandel := func() int64 {
		zr, zi := 0.0, 0.0
		var k int64
		for k = 0; k < 3000 && zr*zr+zi*zi <= 4; k++ {
			zr, zi = zr*zr-zi*zi-0.7436, 2*zr*zi+0.1318
		}
		return k
	}

	kernels := []struct {
		name string
		args []seamless.Value
		gold func()
	}{
		{"sum", []seamless.Value{seamless.ArrFV(xs)}, func() { goSum() }},
		{"dot", []seamless.Value{seamless.ArrFV(xs), seamless.ArrFV(ys)}, func() { goDot() }},
		{"saxpy", []seamless.Value{seamless.FloatV(2.5), seamless.ArrFV(xs), seamless.ArrFV(ys)}, goSaxpy},
		{"mandel", []seamless.Value{seamless.FloatV(-0.7436), seamless.FloatV(0.1318), seamless.IntV(3000)}, func() { goMandel() }},
	}
	fmt.Printf("%-8s %14s %14s %12s %14s %12s\n", "kernel", "interp", "compiled", "speedup", "native Go", "vs native")
	for _, k := range kernels {
		if _, err := ev.Call(k.name, k.args...); err != nil {
			return err
		}
		if _, err := ec.Call(k.name, k.args...); err != nil {
			return err
		}
		tv := bestOf(func() { ev.Call(k.name, k.args...) })
		tc := bestOf(func() { ec.Call(k.name, k.args...) })
		tg := bestOf(k.gold)
		fmt.Printf("%-8s %14v %14v %11.1fx %14v %11.1fx\n",
			k.name, tv, tc, float64(tv)/float64(tc), tg, float64(tc)/float64(tg))
	}
	fmt.Println("claim check: compilation recovers an order of magnitude over the")
	fmt.Println("             interpreter; the residual gap to native Go is the")
	fmt.Println("             closure-dispatch cost a true machine-code backend removes.")
	return nil
}

// e7 measures FFI dispatch: native Go call, Library.Call through the parsed
// header, and an extern call from inside a compiled kernel.
func e7() error {
	libm, err := ffi.OpenM()
	if err != nil {
		return err
	}
	prog, err := seamless.CompileSource(`
def loop_atan2(n):
    acc = 0.0
    for i in range(n):
        acc += atan2(1.0, float(i + 1))
    return acc
`)
	if err != nil {
		return err
	}
	libm.BindAll(prog)
	ec := compile.NewEngine(prog)
	if _, err := ec.Call("loop_atan2", seamless.IntV(1000)); err != nil {
		return err
	}
	const iters = 1_000_000
	tDirect := bestOf(func() {
		acc := 0.0
		for i := 0; i < iters; i++ {
			acc += math.Atan2(1.0, float64(i+1))
		}
		_ = acc
	})
	viaLib := bestOf(func() {
		acc := 0.0
		for i := 0; i < iters/100; i++ {
			v, _ := libm.Call("atan2", 1.0, float64(i+1))
			acc += v
		}
		_ = acc
	})
	viaKernel := bestOf(func() {
		ec.Call("loop_atan2", seamless.IntV(iters))
	})
	perDirect := float64(tDirect.Nanoseconds()) / iters
	perLib := float64(viaLib.Nanoseconds()) / (iters / 100)
	perKernel := float64(viaKernel.Nanoseconds()) / iters
	fmt.Printf("%-34s %12s\n", "call path", "ns/call")
	fmt.Printf("%-34s %12.1f\n", "native Go math.Atan2", perDirect)
	fmt.Printf("%-34s %12.1f\n", "ffi Library.Call (boxed varargs)", perLib)
	fmt.Printf("%-34s %12.1f\n", "extern inside compiled kernel", perKernel)
	fmt.Println("claim check: in-kernel extern calls sit near native cost; the dynamic")
	fmt.Println("             Library.Call path pays the ctypes-like boxing tax.")
	return nil
}

// e8 is the paper's headline workflow measured: ODIN arrays through the
// Trilinos-analog CG under each preconditioner, across grid sizes and rank
// counts.
func e8() error {
	fmt.Printf("%6s %6s %-14s %8s %12s %12s\n", "nx", "P", "precond", "iters", "residual", "ms")
	for _, nx := range []int{32, 64} {
		for _, p := range []int{1, 4} {
			for _, pc := range []string{"none", "jacobi", "ssor", "ilu0", "amg"} {
				var iters int
				var resid float64
				var ms float64
				err := comm.Run(p, func(c *comm.Comm) error {
					ctx := core.NewContext(c)
					n := nx * nx
					m := distmap.NewBlock(n, c.Size())
					a := galeri.Laplace2DDist(c, m, nx, nx)
					h := 1.0 / float64(nx+1)
					b := core.Full(ctx, h*h, []int{n}, core.Options{Map: m})
					x := core.Zeros[float64](ctx, []int{n}, core.Options{Map: m})
					var prec solvers.Preconditioner
					var err error
					switch pc {
					case "jacobi":
						prec, err = precond.NewJacobi(a)
					case "ssor":
						prec, err = precond.NewSSOR(a, 1.3, 1)
					case "ilu0":
						prec, err = precond.NewILU0(a)
					case "amg":
						prec, err = precond.NewAMG(a, precond.AMGOptions{})
					}
					if err != nil {
						return err
					}
					params := teuchos.NewParameterList("s")
					params.Set("method", "cg").Set("tolerance", 1e-8).Set("max iterations", 10000)
					start := time.Now()
					res, err := bridge.Solve(a, b, x, prec, params)
					if err != nil {
						return err
					}
					if !res.Converged {
						return fmt.Errorf("%s nx=%d p=%d: %v", pc, nx, p, res)
					}
					if c.Rank() == 0 {
						iters = res.Iterations
						resid = res.Residual
						ms = float64(time.Since(start).Microseconds()) / 1000
					}
					return nil
				})
				if err != nil {
					return err
				}
				fmt.Printf("%6d %6d %-14s %8d %12.2e %12.2f\n", nx, p, pc, iters, resid, ms)
			}
		}
	}
	fmt.Println("claim check: pointwise preconditioners (none/jacobi) are exactly")
	fmt.Println("             P-independent; the Schwarz family (ssor/ilu0/amg) weakens")
	fmt.Println("             as subdomains shrink — the textbook one-level-Schwarz")
	fmt.Println("             effect. AMG shows the flattest growth in nx.")
	return nil
}

// e9 runs one reference problem through each Table I package analog and
// prints the parity table.
func e9() error {
	type row struct {
		pkg    string
		module string
		check  func() error
	}
	const p = 4
	rows := []row{
		{"Epetra/Tpetra (vectors, operators)", "internal/tpetra", func() error {
			return comm.Run(p, func(c *comm.Comm) error {
				m := distmap.NewBlock(1000, c.Size())
				v := tpetra.NewVector(c, m)
				v.PutScalar(2)
				if v.Dot(v) != 4000 {
					return fmt.Errorf("dot")
				}
				return nil
			})
		}},
		{"EpetraExt (I/O, transposes, coloring)", "tpetra + sparse + partition", func() error {
			if err := comm.Run(p, func(c *comm.Comm) error {
				src := distmap.NewBlock(300, c.Size())
				dst := distmap.NewCyclic(300, c.Size())
				x := tpetra.NewVector(c, src)
				x.FillFromGlobal(func(g int) float64 { return float64(g) })
				y := tpetra.ImportVector(x, dst)
				if y.GetGlobal(299) != 299 {
					return fmt.Errorf("import")
				}
				// Export: off-rank contributions sum at the owner.
				tpetra.ExportAdd(y, []int{0}, []float64{1})
				// Distributed sparse transpose.
				a := galeri.ConvDiff2DDist(c, distmap.NewBlock(36, c.Size()), 6, 6, 3, 1)
				if !a.TransposeDist().TransposeDist().GatherCSR().Equal(a.GatherCSR()) {
					return fmt.Errorf("transpose")
				}
				return nil
			}); err != nil {
				return err
			}
			// MatrixMarket I/O round trip.
			m := galeri.Laplace1D(12)
			var b strings.Builder
			if err := m.WriteMatrixMarket(&b); err != nil {
				return err
			}
			back, err := sparse.ReadMatrixMarket(strings.NewReader(b.String()))
			if err != nil || !back.Equal(m) {
				return fmt.Errorf("matrixmarket: %v", err)
			}
			// Coloring.
			colors := partition.GreedyColoring(galeri.Laplace2D(6, 6))
			if !partition.ValidColoring(galeri.Laplace2D(6, 6), colors) {
				return fmt.Errorf("coloring")
			}
			return nil
		}},
		{"Teuchos (parameter lists)", "internal/teuchos", func() error {
			pl := teuchos.NewParameterList("t")
			pl.Set("tol", 1e-9)
			if pl.GetFloat("tol", 0) != 1e-9 {
				return fmt.Errorf("paramlist")
			}
			return nil
		}},
		{"TriUtils (testing utilities)", "internal/galeri + harness", func() error {
			if galeri.Laplace1D(10).NNZ() != 28 {
				return fmt.Errorf("gallery")
			}
			return nil
		}},
		{"Isorropia (partitioning)", "internal/partition", func() error {
			parts := partition.RCB(partition.GridCoords(16, 16), 4)
			if partition.Imbalance(parts, 4) > 1.05 {
				return fmt.Errorf("imbalance")
			}
			return nil
		}},
		{"AztecOO (Krylov solvers)", "internal/solvers", func() error {
			return comm.Run(p, func(c *comm.Comm) error {
				m := distmap.NewBlock(400, c.Size())
				a := galeri.Laplace1DDist(c, m)
				b := tpetra.NewVector(c, m)
				b.PutScalar(1)
				x := tpetra.NewVector(c, m)
				res, err := solvers.CG(a, b, x, solvers.Options{Tol: 1e-8, MaxIter: 2000})
				if err != nil || !res.Converged {
					return fmt.Errorf("cg: %v %v", res, err)
				}
				return nil
			})
		}},
		{"Galeri (example matrices/maps)", "internal/galeri", func() error {
			if galeri.Laplace3D(4, 4, 4).Rows != 64 {
				return fmt.Errorf("laplace3d")
			}
			return nil
		}},
		{"Amesos (direct solvers)", "internal/direct", func() error {
			return comm.Run(p, func(c *comm.Comm) error {
				m := distmap.NewBlock(60, c.Size())
				a := galeri.Laplace1DDist(c, m)
				b := tpetra.NewVector(c, m)
				b.PutScalar(1)
				x := tpetra.NewVector(c, m)
				if err := direct.SolveOnce(a, b, x); err != nil {
					return err
				}
				if solvers.ResidualNorm(a, b, x) > 1e-10 {
					return fmt.Errorf("residual")
				}
				return nil
			})
		}},
		{"Ifpack (algebraic preconditioners)", "internal/precond", func() error {
			return comm.Run(p, func(c *comm.Comm) error {
				m := distmap.NewBlock(20*20, c.Size())
				a := galeri.Laplace2DDist(c, m, 20, 20)
				if _, err := precond.NewILU0(a); err != nil {
					return err
				}
				if _, err := precond.NewSSOR(a, 1.2, 1); err != nil {
					return err
				}
				return nil
			})
		}},
		{"Komplex (complex via real pairs)", "internal/dense (complex dtypes)", func() error {
			a := dense.Full[complex128](complex(1.5, 2), 4)
			if dense.Sum(a) != complex(6, 8) {
				return fmt.Errorf("complex dtype arithmetic")
			}
			return nil
		}},
		{"Anasazi (eigensolvers)", "internal/eigen", func() error {
			return comm.Run(p, func(c *comm.Comm) error {
				m := distmap.NewBlock(40, c.Size())
				a := galeri.Laplace1DDist(c, m)
				model := tpetra.NewVector(c, m)
				lo, hi, err := eigen.SpectralBounds(a, model, 25)
				if err != nil {
					return err
				}
				if lo <= 0 || hi > 4.01 {
					return fmt.Errorf("bounds [%g %g]", lo, hi)
				}
				return nil
			})
		}},
		{"ML (algebraic multigrid)", "internal/precond (AMG)", func() error {
			amg, err := precond.NewSerialAMG(galeri.Laplace2D(24, 24), precond.AMGOptions{})
			if err != nil {
				return err
			}
			if amg.NumLevels() < 2 {
				return fmt.Errorf("levels")
			}
			return nil
		}},
		{"NOX (nonlinear solvers)", "internal/nonlinear", func() error {
			return comm.Run(p, func(c *comm.Comm) error {
				m := distmap.NewBlock(31, c.Size())
				x := tpetra.NewVector(c, m)
				f := func(in, out *tpetra.Vector) {
					for i := range out.Data {
						out.Data[i] = in.Data[i]*in.Data[i]*in.Data[i] + in.Data[i] - 2
					}
				}
				rep, err := nonlinear.NewtonKrylov(f, x, nonlinear.Options{Tol: 1e-10})
				if err != nil || !rep.Converged {
					return fmt.Errorf("newton: %v %v", rep, err)
				}
				return nil
			})
		}},
	}
	fmt.Printf("%-38s %-32s %s\n", "Trilinos package (paper Table I)", "module", "status")
	for _, r := range rows {
		status := "PASS"
		if err := r.check(); err != nil {
			status = "FAIL: " + err.Error()
		}
		fmt.Printf("%-38s %-32s %s\n", r.pkg, r.module, status)
	}
	return nil
}

func bestOf(f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
