// Command odinstress is the schedule-sweep stress driver: it replays the
// conformance corpus (internal/comm/stresstest) across a deterministic grid
// of GOMAXPROCS × exec pool size × rank count × transport × fault plan,
// with seeded scheduling pressure applied inside the comm fabric. See
// DESIGN.md "Stress testing".
//
// Sweep (the default):
//
//	go run ./cmd/odinstress                     # smoke grid, all light kernels
//	go run ./cmd/odinstress -grid=full -heavy   # nightly grid, heavy tier too
//	go run ./cmd/odinstress -kernel=cg-laplace1d -seed=7
//
// Every point prints one line, PASS/FAIL plus its fingerprint; the sweep
// report is deterministic for a fixed grid and seed (timings go to stderr),
// so two runs are diffable and the trailing checksum detects divergence.
// On failure each failing configuration is shrunk to the smallest still-
// failing point (disable with -minimize=false) and the tool exits 1 after
// printing one replay line per failure:
//
//	odinstress -replay v1/permuted-collectives/P2/G1/W1/inproc/none/s11
//
// Replay reruns exactly one fingerprinted point and exits 0/1 on pass/fail.
// Buggy corpus entries (kernels that exist to prove the harness catches
// real schedule bugs) never run in sweeps — only by -replay/-kernel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"odinhpc/internal/comm/stresstest"
)

func main() {
	var (
		gridName = flag.String("grid", "smoke", "sweep grid: smoke or full")
		seed     = flag.Int64("seed", 1, "master sweep seed; every point derives its own seed from it")
		kernels  = flag.String("kernel", "", "comma-separated kernel names to sweep (default: all non-heavy, non-buggy)")
		heavy    = flag.Bool("heavy", false, "include heavy kernels in the sweep")
		minimize = flag.Bool("minimize", true, "shrink failing points to the smallest reproducing configuration")
		replay   = flag.String("replay", "", "replay one fingerprint (v1/kernel/P#/G#/W#/transport/plan/s#) instead of sweeping")
		timeout  = flag.Duration("timeout", 0, "override the per-session RecvTimeout (deadlock-detection latency)")
		list     = flag.Bool("list", false, "list corpus kernels and fault plans, then exit")
	)
	flag.Parse()
	if *list {
		fmt.Println("kernels:")
		for _, name := range stresstest.KernelNames() {
			fmt.Println("  " + name)
		}
		fmt.Println("plans: " + stresstest.PlanNone + ", " + strings.Join(chaosPlanNames(), ", "))
		return
	}
	grid, err := buildGrid(*gridName, *seed, *timeout)
	if err != nil {
		fatal(err)
	}
	if *replay != "" {
		os.Exit(runReplay(grid, *replay, *minimize))
	}
	os.Exit(runSweep(grid, *kernels, *heavy, *minimize))
}

func buildGrid(name string, seed int64, timeout time.Duration) (stresstest.Grid, error) {
	var g stresstest.Grid
	switch name {
	case "smoke":
		g = stresstest.SmokeGrid(seed)
	case "full":
		g = stresstest.FullGrid(seed)
	default:
		return g, fmt.Errorf("odinstress: unknown grid %q (want smoke or full)", name)
	}
	if timeout > 0 {
		g.RecvTimeout = timeout
	}
	return g, nil
}

// runReplay reruns one fingerprinted point verbatim; on failure it also
// minimizes (unless disabled) so a broad failing point hands back its
// smallest reproduction.
func runReplay(g stresstest.Grid, fp string, minimize bool) int {
	p, err := stresstest.ParseFingerprint(fp)
	if err != nil {
		fatal(err)
	}
	k, ok := stresstest.Find(p.Kernel)
	if !ok {
		fatal(fmt.Errorf("odinstress: fingerprint names unknown kernel %q", p.Kernel))
	}
	out := stresstest.RunPoint(g, p, k)
	if out.Err == nil {
		fmt.Printf("PASS %s\n", p.Fingerprint())
		fmt.Fprintf(os.Stderr, "replayed in %v\n", out.Elapsed.Round(time.Millisecond))
		return 0
	}
	fmt.Printf("FAIL %s: %v\n", p.Fingerprint(), out.Err)
	if minimize {
		min := stresstest.Minimize(g, p, k, logStderr)
		fmt.Printf("MINIMIZED %s\n", min.Fingerprint())
		fmt.Printf("replay: odinstress -replay %s\n", min.Fingerprint())
	}
	return 1
}

func runSweep(g stresstest.Grid, kernelList string, heavy, minimize bool) int {
	kernels := stresstest.SweepKernels(heavy)
	if kernelList != "" {
		kernels = nil
		for _, name := range strings.Split(kernelList, ",") {
			k, ok := stresstest.Find(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("odinstress: unknown kernel %q (see -list)", name))
			}
			kernels = append(kernels, k)
		}
	}
	start := time.Now()
	res := stresstest.Sweep(g, kernels, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	fmt.Printf("sweep: %d points, %d failures, checksum %016x\n", res.Points, len(res.Failures), res.Checksum)
	fmt.Fprintf(os.Stderr, "swept in %v\n", time.Since(start).Round(time.Millisecond))
	if len(res.Failures) == 0 {
		return 0
	}
	for _, f := range res.Failures {
		fmt.Printf("FAIL %s: %v\n", f.Point.Fingerprint(), f.Err)
		rp := f.Point
		if minimize {
			k, _ := stresstest.Find(f.Point.Kernel)
			rp = stresstest.Minimize(g, f.Point, k, logStderr)
			fmt.Printf("MINIMIZED %s\n", rp.Fingerprint())
		}
		fmt.Printf("replay: odinstress -replay %s\n", rp.Fingerprint())
	}
	return 1
}

func chaosPlanNames() []string {
	// Reuse the grid's own plan axis so help output can't drift from the
	// chaostest matrix.
	return stresstest.FullGrid(0).Plans[1:]
}

func logStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
