// Command odinrun drives ODIN demos at a chosen rank count and prints the
// communication traffic they generate — the quickest way to see the
// distributed-array machinery at work outside the test suite.
//
// Usage:
//
//	odinrun -ranks 8 fd          finite differences (paper §III.G)
//	odinrun -ranks 8 hypot       local-function hypot (paper §III.C)
//	odinrun -ranks 8 redist      redistribution between layouts (§III.D)
//	odinrun -ranks 8 io          parallel save/load round trip (§III.H)
//	odinrun -ranks 8 traffic     traffic matrix of a stencil sweep (Fig. 1)
//	odinrun -ranks 8 cg          distributed CG solve on a 1-D Laplacian
//
// The wire is selectable. -transport=tcp moves every message over real
// loopback sockets (still one process); adding -np=N instead launches N OS
// processes, one rank each, wired together by the comm/launch rendezvous:
//
//	odinrun -transport=tcp -ranks 4 cg       sockets, one process
//	odinrun -transport=tcp -np 4 cg          sockets, four processes
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"odinhpc/internal/comm"
	"odinhpc/internal/comm/launch"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
	"odinhpc/internal/galeri"
	"odinhpc/internal/iodist"
	"odinhpc/internal/slicing"
	"odinhpc/internal/solvers"
	"odinhpc/internal/tpetra"
	"odinhpc/internal/ufunc"
)

func main() {
	ranks := flag.Int("ranks", 4, "number of simulated MPI ranks (single-process modes)")
	n := flag.Int("n", 1_000_000, "global array length")
	transport := flag.String("transport", "", `comm transport: "inproc" (default) or "tcp"`)
	np := flag.Int("np", 0, "launch N OS processes, one rank each (requires -transport=tcp)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: odinrun [-ranks P] [-n N] [-transport inproc|tcp] [-np N] <fd|hypot|redist|io|traffic|cg>")
		os.Exit(2)
	}
	demo := flag.Arg(0)

	// A worker process re-runs this same argv with the launch environment
	// set; it executes exactly one rank of the session and exits.
	if launch.IsWorker() {
		body, err := multiprocBody(demo, *n)
		if err == nil {
			_, err = launch.Worker(comm.Config{}, body)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *np > 0 {
		if *transport != "tcp" {
			log.Fatal("odinrun: -np requires -transport=tcp (inproc ranks cannot span processes)")
		}
		if _, err := multiprocBody(demo, *n); err != nil {
			log.Fatal(err)
		}
		if err := launch.Run(*np, os.Args[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Single process: the transport choice rides the environment so every
	// demo's comm.Run picks it up without threading a config through.
	if *transport != "" {
		os.Setenv(comm.TransportEnv, *transport)
	}
	var err error
	switch demo {
	case "fd":
		err = fd(*ranks, *n)
	case "hypot":
		err = hypot(*ranks, *n)
	case "redist":
		err = redist(*ranks, *n)
	case "io":
		err = ioDemo(*ranks, *n)
	case "traffic":
		err = traffic(*ranks, *n)
	case "cg":
		err = cg(*ranks, *n)
	default:
		err = fmt.Errorf("unknown demo %q", demo)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// multiprocBody returns the rank body of a demo that works with ranks in
// separate OS processes. Demos touching host-shared state (io's temp file,
// redist's exactness check against a shared source) stay single-process.
func multiprocBody(demo string, n int) (func(c *comm.Comm) error, error) {
	switch demo {
	case "cg":
		return cgBody(n), nil
	case "fd":
		return fdBody(n), nil
	case "hypot":
		return hypotBody(n), nil
	default:
		return nil, fmt.Errorf("demo %q does not support -np (multi-process); use cg, fd, or hypot", demo)
	}
}

func fdBody(n int) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.Linspace[float64](ctx, 0, 2*math.Pi, n)
		y := ufunc.Sin(x)
		dy := slicing.Diff(y)
		mx := ufunc.Max(dy)
		if c.Rank() == 0 {
			fmt.Printf("fd: n=%d ranks=%d transport=%s max(dy)=%.3e\n", n, c.Size(), c.Transport(), mx)
		}
		return nil
	}
}

func fd(p, n int) error {
	stats, err := comm.RunStats(p, fdBody(n))
	if err != nil {
		return err
	}
	fmt.Printf("total bytes on the wire: %d\n", stats.Snapshot().TotalBytes())
	return nil
}

func hypotBody(n int) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.RegisterLocal("hypot", func(c *comm.Comm, locals ...*dense.Array[float64]) *dense.Array[float64] {
			return dense.Binary(locals[0], locals[1], math.Hypot)
		})
		x := core.Random(ctx, []int{n}, 1)
		y := core.Random(ctx, []int{n}, 2)
		h, err := ctx.CallLocal("hypot", x, y)
		if err != nil {
			return err
		}
		mean := ufunc.Mean(h)
		if c.Rank() == 0 {
			fmt.Printf("hypot: n=%d ranks=%d mean=%.6f (expect ~0.765)\n", n, c.Size(), mean)
		}
		return nil
	}
}

func hypot(p, n int) error {
	return comm.Run(p, hypotBody(n))
}

// cgBody solves the 1-D Laplacian system A x = b with unpreconditioned CG on
// whatever communicator it is handed — simulated ranks, loopback sockets, or
// one OS process per rank. The aggregated traffic matrix is Allreduced at the
// end so the numbers printed by rank 0 cover the whole world even when each
// process only sees its own sends.
func cgBody(n int) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		m := distmap.NewBlock(n, c.Size())
		a := galeri.Laplace1DDist(c, m)
		b := tpetra.NewVector(c, m)
		b.FillFromGlobal(func(g int) float64 { return 1 + float64(g%7)*0.25 })
		x := tpetra.NewVector(c, m)
		res, err := solvers.CG(a, b, x, solvers.Options{Tol: 1e-10, MaxIter: 2 * n})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("cg: %s", res)
		}
		full := x.GatherAll()
		c.Barrier() // settle in-flight sends so the snapshot is exact
		snap := comm.GlobalStats(c)
		if c.Rank() == 0 {
			fmt.Printf("cg: n=%d ranks=%d transport=%s %s\n", n, c.Size(), c.Transport(), res)
			fmt.Printf("cg: x[0]=%.6f x[n/2]=%.6f x[n-1]=%.6f\n", full[0], full[n/2], full[n-1])
			fmt.Printf("cg: total traffic: %d messages, %d bytes\n", snap.TotalMsgs(), snap.TotalBytes())
		}
		return nil
	}
}

func cg(p, n int) error {
	return comm.Run(p, cgBody(n))
}

func redist(p, n int) error {
	stats, err := comm.RunStats(p, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
		y := core.Redistribute(x, distmap.NewCyclic(n, c.Size()))
		z := core.Redistribute(y, distmap.NewBlock(n, c.Size()))
		// Round trip must be exact.
		if !ufunc.AllClose(x, z, 0, 0) {
			return fmt.Errorf("round trip corrupted data")
		}
		if c.Rank() == 0 {
			fmt.Printf("redist: block -> cyclic -> block round trip exact, n=%d ranks=%d\n", n, p)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("bytes moved (two redistributions): %d of %d array bytes\n",
		stats.Snapshot().TotalBytes(), 8*n)
	return nil
}

func ioDemo(p, n int) error {
	dir, err := os.MkdirTemp("", "odinrun")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "demo.odn")
	return comm.Run(p, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return math.Sqrt(float64(g[0])) })
		if err := iodist.Save(x, path); err != nil {
			return err
		}
		y, err := iodist.Load[float64](ctx, path, core.Options{Kind: distmap.Cyclic})
		if err != nil {
			return err
		}
		if !ufunc.AllClose(x, y, 0, 0) {
			return fmt.Errorf("file round trip corrupted data")
		}
		info, _ := os.Stat(path)
		if c.Rank() == 0 {
			fmt.Printf("io: wrote and re-read %d elements (%d bytes on disk), loaded cyclic\n", n, info.Size())
		}
		return nil
	})
}

func traffic(p, n int) error {
	stats, err := comm.RunStats(p, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.Random(ctx, []int{n}, 1)
		for i := 0; i < 3; i++ {
			d := slicing.Diff(x)
			_ = ufunc.Sum(d)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Print(stats.Snapshot())
	fmt.Printf("master bytes: %d, worker<->worker bytes: %d\n",
		stats.Snapshot().MasterBytes(), stats.Snapshot().WorkerBytes())
	return nil
}
