// Command odinrun drives ODIN demos at a chosen rank count and prints the
// communication traffic they generate — the quickest way to see the
// distributed-array machinery at work outside the test suite.
//
// Usage:
//
//	odinrun -ranks 8 fd          finite differences (paper §III.G)
//	odinrun -ranks 8 hypot       local-function hypot (paper §III.C)
//	odinrun -ranks 8 redist      redistribution between layouts (§III.D)
//	odinrun -ranks 8 io          parallel save/load round trip (§III.H)
//	odinrun -ranks 8 traffic     traffic matrix of a stencil sweep (Fig. 1)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
	"odinhpc/internal/iodist"
	"odinhpc/internal/slicing"
	"odinhpc/internal/ufunc"
)

func main() {
	ranks := flag.Int("ranks", 4, "number of simulated MPI ranks")
	n := flag.Int("n", 1_000_000, "global array length")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: odinrun [-ranks P] [-n N] <fd|hypot|redist|io|traffic>")
		os.Exit(2)
	}
	demo := flag.Arg(0)
	var err error
	switch demo {
	case "fd":
		err = fd(*ranks, *n)
	case "hypot":
		err = hypot(*ranks, *n)
	case "redist":
		err = redist(*ranks, *n)
	case "io":
		err = ioDemo(*ranks, *n)
	case "traffic":
		err = traffic(*ranks, *n)
	default:
		err = fmt.Errorf("unknown demo %q", demo)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func fd(p, n int) error {
	stats, err := comm.RunStats(p, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.Linspace[float64](ctx, 0, 2*math.Pi, n)
		y := ufunc.Sin(x)
		dy := slicing.Diff(y)
		mx := ufunc.Max(dy)
		if c.Rank() == 0 {
			fmt.Printf("fd: n=%d ranks=%d max(dy)=%.3e\n", n, p, mx)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("total bytes on the wire: %d\n", stats.Snapshot().TotalBytes())
	return nil
}

func hypot(p, n int) error {
	return comm.Run(p, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.RegisterLocal("hypot", func(c *comm.Comm, locals ...*dense.Array[float64]) *dense.Array[float64] {
			return dense.Binary(locals[0], locals[1], math.Hypot)
		})
		x := core.Random(ctx, []int{n}, 1)
		y := core.Random(ctx, []int{n}, 2)
		h, err := ctx.CallLocal("hypot", x, y)
		if err != nil {
			return err
		}
		mean := ufunc.Mean(h)
		if c.Rank() == 0 {
			fmt.Printf("hypot: n=%d ranks=%d mean=%.6f (expect ~0.765)\n", n, p, mean)
		}
		return nil
	})
}

func redist(p, n int) error {
	stats, err := comm.RunStats(p, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
		y := core.Redistribute(x, distmap.NewCyclic(n, c.Size()))
		z := core.Redistribute(y, distmap.NewBlock(n, c.Size()))
		// Round trip must be exact.
		if !ufunc.AllClose(x, z, 0, 0) {
			return fmt.Errorf("round trip corrupted data")
		}
		if c.Rank() == 0 {
			fmt.Printf("redist: block -> cyclic -> block round trip exact, n=%d ranks=%d\n", n, p)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("bytes moved (two redistributions): %d of %d array bytes\n",
		stats.Snapshot().TotalBytes(), 8*n)
	return nil
}

func ioDemo(p, n int) error {
	dir, err := os.MkdirTemp("", "odinrun")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "demo.odn")
	return comm.Run(p, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return math.Sqrt(float64(g[0])) })
		if err := iodist.Save(x, path); err != nil {
			return err
		}
		y, err := iodist.Load[float64](ctx, path, core.Options{Kind: distmap.Cyclic})
		if err != nil {
			return err
		}
		if !ufunc.AllClose(x, y, 0, 0) {
			return fmt.Errorf("file round trip corrupted data")
		}
		info, _ := os.Stat(path)
		if c.Rank() == 0 {
			fmt.Printf("io: wrote and re-read %d elements (%d bytes on disk), loaded cyclic\n", n, info.Size())
		}
		return nil
	})
}

func traffic(p, n int) error {
	stats, err := comm.RunStats(p, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.Random(ctx, []int{n}, 1)
		for i := 0; i < 3; i++ {
			d := slicing.Diff(x)
			_ = ufunc.Sum(d)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Print(stats.Snapshot())
	fmt.Printf("master bytes: %d, worker<->worker bytes: %d\n",
		stats.Snapshot().MasterBytes(), stats.Snapshot().WorkerBytes())
	return nil
}
