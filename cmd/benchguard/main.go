// Command benchguard compares `go test -bench` output on stdin against a
// recorded baseline (BENCH_exec.json or BENCH_fusion.json) and flags
// regressions of the tracing-disabled hot paths.
//
// Usage:
//
//	go test -run XXX -bench ExecScaling . | benchguard -baseline BENCH_exec.json
//
// Two thresholds, because the baselines were recorded on a single-core host
// whose run-to-run noise exceeds any honest tolerance: rows slower than the
// baseline by more than -warn (default 3%) are reported but do not fail the
// run; rows slower by more than -fail (default 50%) exit non-zero — that
// magnitude is a real regression (e.g. an instrumentation site that started
// paying when disabled), not scheduler noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baseline mirrors the shared shape of the BENCH_*.json files: a benchmark
// name plus result rows keyed either by an explicit sub-benchmark path
// (BENCH_comm.json), or kernel/threads (BenchmarkExecScaling), or
// depth/block (BenchmarkFusionVM).
type baseline struct {
	Benchmark string `json:"benchmark"`
	Results   []struct {
		Sub     string `json:"sub"`
		Kernel  string `json:"kernel"`
		Threads int    `json:"threads"`
		Depth   int    `json:"depth"`
		Block   int    `json:"block"`
		NsPerOp int64  `json:"ns_per_op"`
	} `json:"results"`
}

// subKey renders the sub-benchmark path a baseline row corresponds to,
// matching the b.Run names in bench_test.go. An explicit sub path wins;
// the keyed forms remain for the older baseline files.
func subKey(sub, kernel string, threads, depth, block int) string {
	if sub != "" {
		return sub
	}
	if kernel != "" {
		return fmt.Sprintf("%s/threads=%d", kernel, threads)
	}
	return fmt.Sprintf("depth=%d/block=%d", depth, block)
}

// benchLine matches one result row of `go test -bench` output:
// BenchmarkName/sub/path-GOMAXPROCS <iters> <ns> ns/op ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

func main() {
	basePath := flag.String("baseline", "", "baseline JSON file (BENCH_exec.json / BENCH_fusion.json)")
	warn := flag.Float64("warn", 0.03, "report rows slower than baseline by this fraction")
	fail := flag.Float64("fail", 0.50, "exit non-zero for rows slower by this fraction")
	flag.Parse()
	if *basePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *basePath, err)
		os.Exit(2)
	}
	want := map[string]int64{}
	for _, r := range base.Results {
		want[base.Benchmark+"/"+subKey(r.Sub, r.Kernel, r.Threads, r.Depth, r.Block)] = r.NsPerOp
	}

	seen := 0
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the log
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		ref, ok := want[name]
		if !ok {
			continue
		}
		seen++
		ratio := ns/float64(ref) - 1
		switch {
		case ratio > *fail:
			failed = true
			fmt.Printf("benchguard: FAIL %s: %.0f ns/op vs baseline %d (+%.1f%%)\n", name, ns, ref, 100*ratio)
		case ratio > *warn:
			fmt.Printf("benchguard: warn %s: %.0f ns/op vs baseline %d (+%.1f%%)\n", name, ns, ref, 100*ratio)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: reading stdin: %v\n", err)
		os.Exit(2)
	}
	if seen == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no rows on stdin matched %s baselines\n", base.Benchmark)
		os.Exit(1)
	}
	fmt.Printf("benchguard: checked %d/%d rows against %s\n", seen, len(want), *basePath)
	if failed {
		os.Exit(1)
	}
}
