package main

import (
	"testing"

	"odinhpc/internal/seamless"
)

func TestParseArgs(t *testing.T) {
	vals, err := parseArgs([]string{"42", "2.5", "true", "false", "[1,2,3]", "i[4,5]", "f10", "1e-3"})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].K != seamless.TInt || vals[0].I != 42 {
		t.Fatalf("int: %v", vals[0])
	}
	if vals[1].K != seamless.TFloat || vals[1].F != 2.5 {
		t.Fatalf("float: %v", vals[1])
	}
	if !vals[2].B || vals[3].B {
		t.Fatalf("bools: %v %v", vals[2], vals[3])
	}
	if vals[4].K != seamless.TArrFloat || len(vals[4].AF) != 3 || vals[4].AF[2] != 3 {
		t.Fatalf("farr: %v", vals[4])
	}
	if vals[5].K != seamless.TArrInt || vals[5].AI[1] != 5 {
		t.Fatalf("iarr: %v", vals[5])
	}
	if vals[6].K != seamless.TArrFloat || len(vals[6].AF) != 10 || vals[6].AF[9] != 9 {
		t.Fatalf("f10: %v", vals[6])
	}
	if vals[7].K != seamless.TFloat || vals[7].F != 1e-3 {
		t.Fatalf("exp float: %v", vals[7])
	}
}

func TestParseArgsEmptyArrays(t *testing.T) {
	vals, err := parseArgs([]string{"[]", "i[]"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals[0].AF) != 0 || len(vals[1].AI) != 0 {
		t.Fatalf("empty arrays: %v %v", vals[0], vals[1])
	}
}

func TestParseArgsErrors(t *testing.T) {
	for _, bad := range [][]string{
		{"[1,x]"},
		{"i[1,y]"},
		{"notanumber"},
	} {
		if _, err := parseArgs(bad); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}

func TestRenderValues(t *testing.T) {
	long := make([]float64, 40)
	if render(seamless.ArrFV(long)) == "" || render(seamless.ArrFV([]float64{1})) == "" {
		t.Fatal("render float arrays")
	}
	ilong := make([]int64, 40)
	if render(seamless.ArrIV(ilong)) == "" || render(seamless.IntV(3)) == "" {
		t.Fatal("render others")
	}
}

func TestRunSubcommands(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"run", "/nonexistent.sl", "f"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"frobnicate", "../../examples/kernels/demo.sl", "sum"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	// Happy paths against the shipped demo kernels.
	for _, args := range [][]string{
		{"check", "../../examples/kernels/demo.sl"},
		{"build", "../../examples/kernels/demo.sl"},
		{"run", "../../examples/kernels/demo.sl", "sum", "[1,2,3]"},
		{"interp", "../../examples/kernels/demo.sl", "fib", "10"},
		{"disasm", "../../examples/kernels/demo.sl", "polar", "1.0", "2.0"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	if err := run([]string{"run", "../../examples/kernels/demo.sl"}); err == nil {
		t.Fatal("missing function name accepted")
	}
}
