// Command seamless is the command-line front end of the Seamless analog —
// the counterpart of the paper's "seamless command line utility" (§IV.B).
//
// Usage:
//
//	seamless check <file.sl>                     parse + report functions
//	seamless build <file.sl>                     AOT-compile all annotated functions (§IV.B)
//	seamless run <file.sl> <func> [args...]      compile and run (args: 1 2.5 true [1,2,3])
//	seamless interp <file.sl> <func> [args...]   run on the bytecode interpreter
//	seamless disasm <file.sl> <func> [args...]   show bytecode for the arg types
//	seamless bench <file.sl> <func> [args...]    time interpreter vs compiled
//
// Kernels may call the bundled libm (sin, atan2, hypot, ...); it is bound
// automatically.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"odinhpc/internal/seamless"
	"odinhpc/internal/seamless/compile"
	"odinhpc/internal/seamless/ffi"
	"odinhpc/internal/seamless/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "seamless:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: seamless <check|run|interp|disasm|bench> <file.sl> [func [args...]]")
	}
	cmd, path := args[0], args[1]
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := seamless.CompileSource(string(src))
	if err != nil {
		return err
	}
	if libm, err := ffi.OpenM(); err == nil {
		libm.BindAll(prog)
	}

	if cmd == "check" {
		for _, fn := range prog.Module.Funcs {
			params := make([]string, len(fn.Params))
			for i, p := range fn.Params {
				params[i] = p.Name
				if p.Ann != seamless.TUnknown {
					params[i] += ": " + p.Ann.String()
				}
			}
			ret := ""
			if fn.RetAnn != seamless.TUnknown {
				ret = " -> " + fn.RetAnn.String()
			}
			fmt.Printf("def %s(%s)%s\n", fn.Name, strings.Join(params, ", "), ret)
		}
		return nil
	}

	if cmd == "build" {
		// Static ("ahead-of-time") compilation: every function whose
		// parameters are fully annotated is specialized and compiled now,
		// the analog of generating an extension module (§IV.B).
		eng := compile.NewEngine(prog)
		built := 0
		for _, fn := range prog.Module.Funcs {
			types := make([]seamless.Type, len(fn.Params))
			ok := true
			for i, p := range fn.Params {
				if p.Ann == seamless.TUnknown {
					ok = false
					break
				}
				types[i] = p.Ann
			}
			if !ok {
				fmt.Printf("skip   %s (unannotated parameters; compiled lazily per call type)\n", fn.Name)
				continue
			}
			tf, err := prog.Specialize(fn.Name, types)
			if err != nil {
				return fmt.Errorf("build %s: %w", fn.Name, err)
			}
			if _, err := eng.CompileFor(tf); err != nil {
				return fmt.Errorf("build %s: %w", fn.Name, err)
			}
			sig := make([]string, len(types))
			for i, ty := range types {
				sig[i] = ty.String()
			}
			fmt.Printf("built  %s(%s) -> %s\n", fn.Name, strings.Join(sig, ", "), tf.Ret)
			built++
		}
		fmt.Printf("%d function(s) compiled ahead of time\n", built)
		return nil
	}

	if len(args) < 3 {
		return fmt.Errorf("%s needs a function name", cmd)
	}
	name := args[2]
	vals, err := parseArgs(args[3:])
	if err != nil {
		return err
	}
	types := make([]seamless.Type, len(vals))
	for i, v := range vals {
		types[i] = v.K
	}

	switch cmd {
	case "run":
		eng := compile.NewEngine(prog)
		out, err := eng.Call(name, vals...)
		if err != nil {
			return err
		}
		fmt.Println(render(out))
		return nil
	case "interp":
		eng := vm.NewEngine(prog)
		out, err := eng.Call(name, vals...)
		if err != nil {
			return err
		}
		fmt.Println(render(out))
		return nil
	case "disasm":
		tf, err := prog.Specialize(name, types)
		if err != nil {
			return err
		}
		p, err := vm.NewEngine(prog).ProcFor(tf)
		if err != nil {
			return err
		}
		fmt.Print(p.Disassemble())
		return nil
	case "bench":
		ve := vm.NewEngine(prog)
		ce := compile.NewEngine(prog)
		if _, err := ve.Call(name, vals...); err != nil {
			return err
		}
		if _, err := ce.Call(name, vals...); err != nil {
			return err
		}
		tv := best(func() { ve.Call(name, vals...) })
		tc := best(func() { ce.Call(name, vals...) })
		fmt.Printf("interpreted: %v\ncompiled:    %v\nspeedup:     %.1fx\n",
			tv, tc, float64(tv)/float64(tc))
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func best(f func()) time.Duration {
	bestD := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < bestD {
			bestD = d
		}
	}
	return bestD
}

// parseArgs converts CLI literals: 42 -> int, 2.5 -> float, true/false ->
// bool, [1,2,3] -> float array, i[1,2] -> int array, fNNN -> a float array
// of NNN elements 0..NNN-1 (for benching large inputs).
func parseArgs(raw []string) ([]seamless.Value, error) {
	out := make([]seamless.Value, 0, len(raw))
	for _, s := range raw {
		switch {
		case s == "true" || s == "false":
			out = append(out, seamless.BoolV(s == "true"))
		case strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]"):
			var arr []float64
			body := strings.Trim(s, "[]")
			if body != "" {
				for _, part := range strings.Split(body, ",") {
					v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
					if err != nil {
						return nil, fmt.Errorf("bad array element %q", part)
					}
					arr = append(arr, v)
				}
			}
			out = append(out, seamless.ArrFV(arr))
		case strings.HasPrefix(s, "i[") && strings.HasSuffix(s, "]"):
			var arr []int64
			body := strings.TrimSuffix(strings.TrimPrefix(s, "i["), "]")
			if body != "" {
				for _, part := range strings.Split(body, ",") {
					v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
					if err != nil {
						return nil, fmt.Errorf("bad array element %q", part)
					}
					arr = append(arr, v)
				}
			}
			out = append(out, seamless.ArrIV(arr))
		case strings.HasPrefix(s, "f") && len(s) > 1 && isDigits(s[1:]):
			n, _ := strconv.Atoi(s[1:])
			arr := make([]float64, n)
			for i := range arr {
				arr[i] = float64(i)
			}
			out = append(out, seamless.ArrFV(arr))
		case strings.ContainsAny(s, ".eE") && !isDigits(s):
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("bad literal %q", s)
			}
			out = append(out, seamless.FloatV(v))
		default:
			if v, err := strconv.ParseInt(s, 10, 64); err == nil {
				out = append(out, seamless.IntV(v))
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("bad literal %q", s)
			}
			out = append(out, seamless.FloatV(v))
		}
	}
	return out, nil
}

func isDigits(s string) bool {
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return len(s) > 0
}

func render(v seamless.Value) string {
	switch v.K {
	case seamless.TArrFloat:
		if len(v.AF) > 16 {
			return fmt.Sprintf("float[%d] starting %v...", len(v.AF), v.AF[:8])
		}
		return fmt.Sprintf("%v", v.AF)
	case seamless.TArrInt:
		if len(v.AI) > 16 {
			return fmt.Sprintf("int[%d] starting %v...", len(v.AI), v.AI[:8])
		}
		return fmt.Sprintf("%v", v.AI)
	default:
		return v.String()
	}
}
