// Command odinvet is the multichecker for the framework's domain
// invariants: the seven analyzers under internal/analysis (commsym,
// collorder, p2pmatch, tagcheck, hotalloc, tracepair, planreuse) run over
// the tree and fail the build on any finding. See DESIGN.md "Static
// analysis" for the invariant behind each analyzer and the escape hatch.
//
// Standalone usage (no install step, used by scripts/verify.sh and CI):
//
//	go run ./cmd/odinvet ./...
//	odinvet [-tests=false] [-checks=commsym,tagcheck] ./internal/comm ./...
//	odinvet -json ./...    # NDJSON diagnostics, suppressed findings included
//	odinvet -allows ./...  # list every //lint:allow with its justification
//
// Or as a `go vet` tool, which reuses the build cache's export data:
//
//	go vet -vettool=$(which odinvet) ./...
//
// Findings print as file:line:col: analyzer: message. A deliberate
// exception is annotated at the finding site:
//
//	//lint:allow hotalloc Per-chunk scratch, amortized over the chunk
//
// on the flagged line or the line directly above it. The justification
// must start with a capitalized word: lowercase leading words parse as
// additional analyzer names.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"odinhpc/internal/analysis"
	"odinhpc/internal/analysis/collorder"
	"odinhpc/internal/analysis/commsym"
	"odinhpc/internal/analysis/hotalloc"
	"odinhpc/internal/analysis/p2pmatch"
	"odinhpc/internal/analysis/planreuse"
	"odinhpc/internal/analysis/tagcheck"
	"odinhpc/internal/analysis/tagregistry"
	"odinhpc/internal/analysis/tracepair"
)

// all is the registered analyzer suite.
var all = []*analysis.Analyzer{
	commsym.Analyzer,
	collorder.Analyzer,
	p2pmatch.Analyzer,
	tagcheck.Analyzer,
	hotalloc.Analyzer,
	tracepair.Analyzer,
	planreuse.Analyzer,
}

func main() {
	installRegistry()

	args := os.Args[1:]
	// `go vet -vettool` probes the tool's identity and flag surface first...
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Printf("odinvet version odinvet-1.0\n")
			return
		case "-flags", "--flags":
			// No pass-through flags: the suite always runs whole.
			fmt.Println("[]")
			return
		}
	}
	// ...then invokes it once per package with a JSON config file.
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(vettool(args[n-1]))
	}

	fs := flag.NewFlagSet("odinvet", flag.ExitOnError)
	tests := fs.Bool("tests", true, "also analyze _test.go files and external test packages")
	checks := fs.String("checks", "", "comma-separated analyzer subset (default: all)")
	jsonOut := fs.Bool("json", false, "emit NDJSON diagnostics (file/line/col/analyzer/message/suppressed), including suppressed findings")
	allows := fs.Bool("allows", false, "list every //lint:allow directive with its justification instead of running analyzers")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: odinvet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odinvet:", err)
		os.Exit(2)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modRoot, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "odinvet:", err)
		os.Exit(2)
	}
	dirs, err := expand(patterns, modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odinvet:", err)
		os.Exit(2)
	}

	loader := analysis.NewLoader(modPath, modRoot, "", *tests)
	exit := 0
	enc := json.NewEncoder(os.Stdout)
	for _, dir := range dirs {
		pkgs, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odinvet: %s: %v\n", dir, err)
			exit = 2
			continue
		}
		if *allows {
			for _, pkg := range pkgs {
				for _, ad := range analysis.Directives(pkg) {
					just := ad.Justification
					if just == "" {
						just = "(no justification)"
					}
					fmt.Printf("%s:%d: %s: %s\n", ad.Position.Filename, ad.Position.Line,
						strings.Join(ad.Analyzers, ","), just)
				}
			}
			continue
		}
		diags, err := analysis.RunAll(analyzers, pkgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odinvet: %s: %v\n", dir, err)
			exit = 2
			continue
		}
		for _, d := range diags {
			switch {
			case *jsonOut:
				enc.Encode(jsonDiag{
					File:       d.Position.Filename,
					Line:       d.Position.Line,
					Col:        d.Position.Column,
					Analyzer:   d.Analyzer,
					Message:    d.Message,
					Suppressed: d.Suppressed,
				})
			case d.Suppressed:
				continue
			default:
				fmt.Println(d)
			}
			if !d.Suppressed {
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

// jsonDiag is the -json wire shape, one object per line (NDJSON).
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// installRegistry wires the source-of-truth tag reservations into tagcheck.
func installRegistry() {
	var rs []tagcheck.Range
	for _, r := range tagregistry.Reserved() {
		rs = append(rs, tagcheck.Range{Name: r.Name, Lo: r.Lo, Hi: r.Hi, Owner: r.Owner})
	}
	tagcheck.SetReserved(rs)
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// findModule locates the enclosing go.mod and reads its module path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expand resolves package patterns to directories containing Go files.
// Supported forms: "./...", "dir/...", "dir", "./dir".
func expand(patterns []string, modRoot string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			base := rest
			if base == "." || base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if hasGoFiles(p) {
			add(p)
			continue
		}
		return nil, fmt.Errorf("pattern %q matches no Go package directory", p)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
