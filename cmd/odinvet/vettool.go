package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"odinhpc/internal/analysis"
)

// vetConfig is the JSON unit description `go vet` hands a -vettool per
// package — the same schema x/tools' unitchecker consumes. Only the fields
// odinvet needs are declared; the rest are ignored by the decoder.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string // import path as written -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// vettool runs the suite over one build unit described by cfgPath and
// returns the process exit code: 0 clean, 2 findings (the unitchecker
// convention go vet understands), 1 operational failure.
func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odinvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "odinvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// go vet expects the facts file to exist even though odinvet's
	// analyzers keep no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("odinvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "odinvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "odinvet:", err)
			return 1
		}
		files = append(files, f)
	}
	// Imports resolve through the export data the go command already built:
	// map the source path through ImportMap, open the listed package file,
	// and let the stdlib gc importer read it.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "odinvet:", err)
		return 1
	}
	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Name:  tpkg.Name(),
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := analysis.Run(all, []*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "odinvet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
