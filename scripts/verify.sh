#!/bin/sh
# Repo verification: tier-1 build+test plus static analysis and the race
# detector over the concurrency-bearing packages (the simulated-MPI layer
# and the intra-rank exec engine, whose equivalence tests drive goroutine
# pools through dense/fusion/sparse kernels).
#
# Usage: ./scripts/verify.sh
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# Domain invariants: the odinvet multichecker (internal/analysis) enforces
# collective symmetry, collective-sequence ordering, point-to-point deadlock
# freedom, tag hygiene, hot-kernel allocation bans, span/stats pairing, and
# plan single-threadedness. Run
# from source — no install step — and fail hard on any finding (see
# DESIGN.md "Static analysis").
go run ./cmd/odinvet ./...

# collorder true-positive: the seed package (kept under testdata, so ./...
# walks skip it) permutes two collectives across rank-dependent branches
# with commsym suppressed. Both odinvet modes — standalone and the `go vet
# -vettool` protocol — must flag it and fail; a silent pass means the
# analyzer lost its teeth.
if go run ./cmd/odinvet -checks=collorder ./internal/analysis/collorder/testdata/src/seed; then
  echo "verify: odinvet (standalone) missed the collorder seed true-positive" >&2
  exit 1
fi
go build -o /tmp/odinhpc-odinvet ./cmd/odinvet
if go vet -vettool=/tmp/odinhpc-odinvet ./internal/analysis/collorder/testdata/src/seed 2>/tmp/odinhpc-vettool.out; then
  echo "verify: odinvet (vettool) missed the collorder seed true-positive" >&2
  exit 1
fi
grep -q collorder /tmp/odinhpc-vettool.out

# p2pmatch true-positive: the seed package holds the textbook recv-before-
# send symmetric ring against the real comm fabric, with no suppressions.
# Both odinvet modes must report the rendezvous cycle and fail; a silent
# pass means deadlock certification stopped certifying.
if go run ./cmd/odinvet -checks=p2pmatch ./internal/analysis/p2pmatch/testdata/src/seed; then
  echo "verify: odinvet (standalone) missed the p2pmatch seed true-positive" >&2
  exit 1
fi
if go vet -vettool=/tmp/odinhpc-odinvet ./internal/analysis/p2pmatch/testdata/src/seed 2>/tmp/odinhpc-vettool-p2p.out; then
  echo "verify: odinvet (vettool) missed the p2pmatch seed true-positive" >&2
  exit 1
fi
grep -q p2pmatch /tmp/odinhpc-vettool-p2p.out

go test ./...

# Race pass over every concurrency-bearing package: the comm fabric, the
# rank/context layer, the exec pool, the fusion VM (whose block sweep shares
# compiled programs across pool workers and must stay bitwise identical to
# the reference evaluators), the tpetra distributed kernels, the trace
# ring (all ranks emit into a shared session), and the serve scheduler
# (concurrent jobs on warm rank groups sharing plans and the fusion cache).
go test -race ./internal/comm ./internal/core ./internal/exec ./internal/fusion ./internal/tpetra ./internal/trace ./internal/serve

# Chaos conformance: replay collectives and distributed kernels under seeded
# fault plans, twice, under the race detector — results must be bitwise
# identical to fault-free runs or fail with a typed comm.FaultError.
go test -race -count=2 -run Chaos ./internal/comm/... ./internal/fusion ./internal/tpetra ./internal/distmap ./internal/slicing ./internal/solvers

# Trace-enabled pass: ODINHPC_TRACE auto-starts a session at init, so the
# comm and tpetra suites run with every instrumentation site live, under the
# race detector (all ranks emit into the shared session concurrently).
ODINHPC_TRACE=65536 go test -race ./internal/trace ./internal/comm ./internal/tpetra

# Transport conformance: the whole comm suite — goldens, chaos, splits,
# trace reconciliation — replayed with every message on real loopback
# sockets (ODINHPC_TRANSPORT=tcp), then a race pass over the transport code
# (the tcp endpoint runs reader/writer goroutines per connection and the
# launch rendezvous serves workers concurrently).
ODINHPC_TRANSPORT=tcp go test ./internal/comm/...
ODINHPC_TRANSPORT=tcp go test -race ./internal/comm ./internal/comm/launch

# Multi-process end to end: a distributed CG solve with one OS process per
# rank, wired by the comm/launch rendezvous over tcp.
go build -o /tmp/odinhpc-odinrun ./cmd/odinrun
/tmp/odinhpc-odinrun -transport=tcp -np=4 -n 512 cg

# Serve smoke: start odinserve on a free port, fire 64 mixed solve/expr
# jobs from 16 concurrent clients through the loadgen, and require zero
# failed jobs, p99 under 2s, and a warm plan cache (hits > misses) — the
# service's acceptance gate, end to end over real HTTP.
go build -o /tmp/odinhpc-odinserve ./cmd/odinserve
rm -f /tmp/odinhpc-odinserve.addr
/tmp/odinhpc-odinserve -addr 127.0.0.1:0 -addr-file /tmp/odinhpc-odinserve.addr -groups 4 -ranks 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s /tmp/odinhpc-odinserve.addr ] && break
  sleep 0.1
done
SERVE_OK=0
/tmp/odinhpc-odinserve -loadgen -url "http://$(cat /tmp/odinhpc-odinserve.addr)" \
  -jobs 64 -conc 16 -mix mixed -max-p99 2s -require-warm-cache || SERVE_OK=1
kill "$SERVE_PID"
wait "$SERVE_PID" || true
[ "$SERVE_OK" = "0" ]

# Opt-in stress tier (ODINHPC_STRESS=1): the odinstress smoke grid — the
# conformance corpus across GOMAXPROCS × pool × ranks × transport × fault
# plan with seeded scheduling jitter — run twice with the same seed; the
# deterministic stdout reports (per-point PASS lines plus checksum) must be
# identical. The full grid (-grid=full -heavy) is the nightly tier, too slow
# for every verify run; see DESIGN.md "Stress testing".
if [ "${ODINHPC_STRESS:-}" = "1" ]; then
  go build -o /tmp/odinhpc-odinstress ./cmd/odinstress
  /tmp/odinhpc-odinstress -seed=1 > /tmp/odinhpc-stress-1.out
  /tmp/odinhpc-odinstress -seed=1 > /tmp/odinhpc-stress-2.out
  diff /tmp/odinhpc-stress-1.out /tmp/odinhpc-stress-2.out
fi

# Disabled-path guard: with tracing off, every instrumentation site must
# cost one atomic load, so the hot-loop benchmarks must stay within noise of
# the recorded baselines. Warn-only at 3%; hard-fail at +100%. The wide band
# is deliberate: the shared single-core host has been measured drifting ~65%
# on identical code within an hour (see the refresh note in
# BENCH_fusion.json), so warns are the signal to re-run an A/B by hand and
# the hard fail only catches order-of-magnitude mistakes (an instrumentation
# site doing real work on the disabled path).
go build -o /tmp/odinhpc-benchguard ./cmd/benchguard
# One retry per gate: right after the race/chaos/tcp passes above the host
# is hot enough that a single measurement window can spike 4-5x on the
# first benchmark rows (measured: fused-hypot at 389 MB/s in-gate, then
# 1455-1846 MB/s on three immediate re-runs). A transient must not fail
# verify; a reproducible 2x regression still fails both attempts.
bench_gate() {
  pkg="$1"; pattern="$2"; benchtime="$3"; baseline="$4"
  go test -run XXX -bench "$pattern" -benchtime="$benchtime" "$pkg" \
    | /tmp/odinhpc-benchguard -baseline "$baseline" -fail 1.0 && return 0
  echo "verify: $baseline gate failed once, re-measuring" >&2
  go test -run XXX -bench "$pattern" -benchtime="$benchtime" "$pkg" \
    | /tmp/odinhpc-benchguard -baseline "$baseline" -fail 1.0
}
bench_gate . ExecScaling 0.3s BENCH_exec.json
bench_gate . FusionVM 0.3s BENCH_fusion.json
bench_gate . SpmvFormats 0.3s BENCH_spmv.json
bench_gate ./internal/comm CommTransport 0.2s BENCH_comm.json
bench_gate ./internal/serve Serve 0.3s BENCH_serve.json
