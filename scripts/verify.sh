#!/bin/sh
# Repo verification: tier-1 build+test plus static analysis and the race
# detector over the concurrency-bearing packages (the simulated-MPI layer
# and the intra-rank exec engine, whose equivalence tests drive goroutine
# pools through dense/fusion/sparse kernels).
#
# Usage: ./scripts/verify.sh
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/comm ./internal/core ./internal/exec

# Fusion-equivalence pass: the register VM must stay bitwise identical to
# the closure reference evaluator and the naive path across worker-pool
# sizes, rank counts, and block sizes — under the race detector, since the
# block sweep shares compiled programs across pool workers.
go test -race ./internal/fusion

# Chaos conformance: replay collectives and distributed kernels under seeded
# fault plans, twice, under the race detector — results must be bitwise
# identical to fault-free runs or fail with a typed comm.FaultError.
go test -race -count=2 -run Chaos ./internal/comm/... ./internal/fusion ./internal/tpetra ./internal/distmap ./internal/slicing ./internal/solvers
