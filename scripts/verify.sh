#!/bin/sh
# Repo verification: tier-1 build+test plus static analysis and the race
# detector over the concurrency-bearing packages (the simulated-MPI layer
# and the intra-rank exec engine, whose equivalence tests drive goroutine
# pools through dense/fusion/sparse kernels).
#
# Usage: ./scripts/verify.sh
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/comm ./internal/core ./internal/exec
