package odinhpc

// Cross-subsystem integration tests: each exercises a workflow the paper
// describes as the point of combining the three projects, crossing at
// least two of the ODIN / Trilinos-analog / Seamless boundaries.

import (
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"odinhpc/internal/bridge"
	"odinhpc/internal/comm"
	"odinhpc/internal/comm/stresstest"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
	"odinhpc/internal/exec"
	"odinhpc/internal/galeri"
	"odinhpc/internal/iodist"
	"odinhpc/internal/nonlinear"
	"odinhpc/internal/partition"
	"odinhpc/internal/precond"
	"odinhpc/internal/seamless"
	"odinhpc/internal/seamless/export"
	"odinhpc/internal/slicing"
	"odinhpc/internal/solvers"
	"odinhpc/internal/teuchos"
	"odinhpc/internal/tpetra"
	"odinhpc/internal/ufunc"
)

// TestSeamlessKernelAsODINLocalFunction is the paper's §V synthesis:
// "A user can create a function designed to work on array data, compile it
// with Seamless' JIT compiler ..., and use that function as the node-level
// function for a distributed array computation with ODIN."
func TestSeamlessKernelAsODINLocalFunction(t *testing.T) {
	const kernelSrc = `
def smooth(xs):
    out = zeros(len(xs))
    for i in range(len(xs)):
        lo = max(i - 1, 0)
        hi = min(i + 1, len(xs) - 1)
        out[i] = (xs[lo] + xs[i] + xs[hi]) / 3.0
    return out
`
	prog, err := seamless.CompileSource(kernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	smoothFn, err := export.New(prog).SliceToSlice("smooth")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			// Register the compiled kernel as the node-level function.
			ctx.RegisterLocal("smooth", func(c *comm.Comm, locals ...*dense.Array[float64]) *dense.Array[float64] {
				out := smoothFn(locals[0].Flatten())
				return dense.FromSlice(out, len(out))
			})
			n := 64
			x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0] % 4) })
			y, err := ctx.CallLocal("smooth", x)
			if err != nil {
				return err
			}
			// The kernel ran per-rank: totals must match a serial run of
			// the same compiled kernel on the gathered data, segment-wise.
			me := ctx.Rank()
			wantLocal := smoothFn(x.Local().Flatten())
			for l, w := range wantLocal {
				if got := y.Local().At(l); got != w {
					return fmt.Errorf("rank %d: [%d]=%g want %g", me, l, got, w)
				}
			}
			// And the distributed result supports global-mode follow-up.
			if s := ufunc.Sum(y); math.IsNaN(s) {
				return fmt.Errorf("NaN sum")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestSeamlessModelInNewtonKrylov reproduces §V's "the solver calls back to
// Python to evaluate a model ... Seamless is used to convert this callback
// into a highly efficient numerical kernel": the Newton-Krylov residual is
// a compiled Seamless kernel.
func TestSeamlessModelInNewtonKrylov(t *testing.T) {
	prog, err := seamless.CompileSource(`
def residual(x):
    out = zeros(len(x))
    for i in range(len(x)):
        out[i] = x[i] * x[i] * x[i] + 2.0 * x[i] - 4.0
    return out
`)
	if err != nil {
		t.Fatal(err)
	}
	model, err := export.New(prog).SliceToSlice("residual")
	if err != nil {
		t.Fatal(err)
	}
	err = comm.Run(3, func(c *comm.Comm) error {
		m := distmap.NewBlock(12, c.Size())
		x := tpetra.NewVector(c, m)
		f := func(in, out *tpetra.Vector) {
			copy(out.Data, model(in.Data))
		}
		rep, err := nonlinear.NewtonKrylov(f, x, nonlinear.Options{Tol: 1e-12})
		if err != nil {
			return err
		}
		if !rep.Converged {
			return fmt.Errorf("%v", rep)
		}
		// x^3 + 2x - 4 = 0 has the real root x ~= 1.17950902...
		got := x.GetGlobal(0)
		if math.Abs(got*got*got+2*got-4) > 1e-10 {
			return fmt.Errorf("root %g does not satisfy the equation", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPartitionDrivenODINArrays links Isorropia-analog partitioning to
// ODIN's "apportion non-uniform sections of an array to each node"
// (§III.A): a weighted 1-D partition becomes the array's distribution map.
func TestPartitionDrivenODINArrays(t *testing.T) {
	err := comm.Run(4, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		n := 100
		// Element i costs ~i, so balanced partitions are non-uniform.
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(i + 1)
		}
		parts := partition.Block1D(weights, c.Size())
		m := partition.ToMap(parts, c.Size())
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return weights[g[0]] },
			core.Options{Map: m})
		// Weighted balance: each rank's local weight near total/P.
		var local float64
		x.Local().Each(func(v float64) { local += v })
		total := ufunc.Sum(x)
		share := local / total * float64(c.Size())
		if share < 0.7 || share > 1.3 {
			return fmt.Errorf("rank %d weight share %.2f", c.Rank(), share)
		}
		// Later ranks hold fewer (heavier) elements.
		counts := comm.AllgatherFlat(c, []int{x.Local().Size()})
		if counts[0] <= counts[len(counts)-1] {
			return fmt.Errorf("weighted partition not non-uniform: %v", counts)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointThenSolve chains distributed IO into the solver stack:
// write a right-hand side with one rank count, reload under another, solve.
func TestCheckpointThenSolve(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rhs.odn")
	const n = 24 * 24
	err := comm.Run(3, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		b := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return 1.0 / float64(n) })
		return iodist.Save(b, path)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = comm.Run(4, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		m := distmap.NewBlock(n, c.Size())
		b, err := iodist.Load[float64](ctx, path, core.Options{Map: m})
		if err != nil {
			return err
		}
		a := galeri.Laplace2DDist(c, m, 24, 24)
		x := core.Zeros[float64](ctx, []int{n}, core.Options{Map: m})
		prec, err := precond.NewILU0(a)
		if err != nil {
			return err
		}
		params := teuchos.NewParameterList("s")
		params.Set("method", "cg").Set("tolerance", 1e-9)
		res, err := bridge.Solve(a, b, x, prec, params)
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("%v", res)
		}
		if tr := solvers.ResidualNorm(a, bridge.ToVector(b), bridge.ToVector(x)); tr > 1e-8 {
			return fmt.Errorf("residual %g", tr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLargePoissonStress is the biggest problem the suite solves: 128^2
// unknowns at 8 ranks under AMG-preconditioned CG, verified against the
// independently computed residual. The solve itself lives in the stress
// corpus (the "poisson128-amg-cg" kernel in internal/comm/stresstest), so
// the same body also rides the odinstress sweep grid; this test replays it
// as one harness point at its historical geometry, now with seeded
// scheduling pressure on top. Skipped under -short.
func TestLargePoissonStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	k, ok := stresstest.Find("poisson128-amg-cg")
	if !ok {
		t.Fatal("poisson128-amg-cg missing from stress corpus")
	}
	g := stresstest.Grid{Jitter: true, RecvTimeout: 60 * time.Second}
	p := stresstest.Point{
		Kernel: k.Name, Ranks: 8, Procs: runtime.GOMAXPROCS(0),
		Pool: exec.Default().Workers(), Transport: "inproc",
		Plan: stresstest.PlanNone, Seed: 8128,
	}
	if out := stresstest.RunPoint(g, p, k); out.Err != nil {
		t.Fatalf("%s: %v (replay: odinstress -replay %s)", p.Fingerprint(), out.Err, p.Fingerprint())
	}
}

// TestEnsembleSolvesViaSplit runs a parameter sweep the way production
// codes do: the world communicator splits into independent groups, each
// group builds and solves its own problem concurrently, and the results
// come back through the world communicator.
func TestEnsembleSolvesViaSplit(t *testing.T) {
	err := comm.Run(6, func(world *comm.Comm) error {
		groups := 3
		color := world.Rank() % groups
		sub := world.Split(color, world.Rank())
		// Each group solves a differently sized 1-D Poisson problem.
		n := 30 + 20*color
		ctx := core.NewContext(sub)
		m := distmap.NewBlock(n, sub.Size())
		a := galeri.Laplace1DDist(sub, m)
		b := core.Full(ctx, 1.0/float64(n), []int{n}, core.Options{Map: m})
		x := core.Zeros[float64](ctx, []int{n}, core.Options{Map: m})
		params := teuchos.NewParameterList("s")
		params.Set("method", "cg").Set("tolerance", 1e-10)
		res, err := bridge.Solve(a, b, x, nil, params)
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("group %d: %v", color, res)
		}
		mx := ufunc.Max(x)
		// Collect each group's answer on the world communicator (group
		// leaders report; others send 0 and are ignored).
		report := 0.0
		if sub.Rank() == 0 {
			report = mx
		}
		maxima := comm.AllgatherFlat(world, []float64{report})
		// Larger n -> larger peak of the discrete Green's function.
		var groupMax [3]float64
		for r, v := range maxima {
			if v != 0 {
				groupMax[r%groups] = v
			}
		}
		if !(groupMax[0] < groupMax[1] && groupMax[1] < groupMax[2]) {
			return fmt.Errorf("ensemble maxima not ordered: %v", groupMax)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFiniteDifferenceMatchesSolverDerivative ties slicing to the solver
// world: d2/dx2 via two nested Diffs equals the 1-D Laplacian applied
// through tpetra, up to sign and boundary rows.
func TestFiniteDifferenceMatchesSolverDerivative(t *testing.T) {
	err := comm.Run(4, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		n := 200
		m := distmap.NewBlock(n, c.Size())
		u := core.FromFunc(ctx, []int{n}, func(g []int) float64 {
			x := float64(g[0]) / float64(n-1)
			return x * x * x
		}, core.Options{Map: m})
		// ODIN side: second difference u[i+1]-2u[i]+u[i-1] via Diff twice.
		d2 := slicing.Diff(slicing.Diff(u))
		// Solver side: -(Laplacian u) has the same interior values.
		a := galeri.Laplace1DDist(c, m)
		au := tpetra.NewVector(c, m)
		a.Apply(bridge.ToVector(u), au)
		auArr := bridge.FromVector(ctx, au)
		for g := 1; g < n-1; g++ {
			odin := d2.At(g - 1) // d2 index shifts by one
			tpet := -auArr.At(g)
			if math.Abs(odin-tpet) > 1e-12 {
				return fmt.Errorf("g=%d: odin %g vs tpetra %g", g, odin, tpet)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
