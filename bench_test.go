// Package odinhpc's root benchmark suite regenerates every experiment of
// the constructed evaluation (DESIGN.md E1-E10 plus the E-A ablations) as
// testing.B benchmarks. Paper-vs-measured discussion lives in
// EXPERIMENTS.md; the row-printing harness is cmd/solverbench.
//
// Run: go test -bench=. -benchmem
package odinhpc

import (
	"fmt"
	"math"
	"testing"

	"odinhpc/internal/bridge"
	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
	"odinhpc/internal/exec"
	"odinhpc/internal/fusion"
	"odinhpc/internal/galeri"
	"odinhpc/internal/precond"
	"odinhpc/internal/seamless"
	"odinhpc/internal/seamless/compile"
	"odinhpc/internal/seamless/ffi"
	"odinhpc/internal/seamless/vm"
	"odinhpc/internal/slicing"
	"odinhpc/internal/solvers"
	"odinhpc/internal/sparse"
	"odinhpc/internal/table"
	"odinhpc/internal/teuchos"
	"odinhpc/internal/tpetra"
	"odinhpc/internal/ufunc"
)

// BenchmarkE1ControlMessageBytes measures the cost of issuing one global-op
// control descriptor from the master to P-1 workers (paper §III.B: "at most
// tens of bytes"). The reported custom metric is bytes per worker.
func BenchmarkE1ControlMessageBytes(b *testing.B) {
	for _, p := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var perWorker float64
			err := comm.Run(p, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				for i := 0; i < b.N; i++ {
					ctx.Control(core.OpUfunc, int64(i))
				}
				if c.Rank() == 0 {
					_, bytes := ctx.CtrlStats()
					perWorker = float64(bytes) / float64(b.N) / float64(p-1)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(perWorker, "ctrlB/op/worker")
		})
	}
}

// BenchmarkE2UfuncScaling measures one unary ufunc sweep (sin) at several
// rank counts; the custom metric is per-rank elements, the quantity that
// determines scaling on a real cluster (the host here may be single-core).
func BenchmarkE2UfuncScaling(b *testing.B) {
	const n = 1 << 20
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := comm.Run(p, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				ctx.SetControlMessages(false)
				x := core.Random(ctx, []int{n}, 1)
				c.Barrier()
				for i := 0; i < b.N; i++ {
					_ = ufunc.Sin(x)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(n/p), "elems/rank")
		})
	}
}

// BenchmarkE3Redistribution measures moving a block-distributed vector to a
// cyclic layout — the aligned-operand cost of a non-conformable binary
// ufunc (paper §III.D).
func BenchmarkE3Redistribution(b *testing.B) {
	const n = 1 << 18
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := comm.Run(p, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				ctx.SetControlMessages(false)
				x := core.Random(ctx, []int{n}, 1)
				target := distmap.NewCyclic(n, p)
				c.Barrier()
				for i := 0; i < b.N; i++ {
					_ = core.Redistribute(x, target)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE4FiniteDifference measures the §III.G stencil: the
// halo-exchange path versus the naive allgather strategy (ablation E-A1).
func BenchmarkE4FiniteDifference(b *testing.B) {
	const n = 1 << 18
	const p = 4
	run := func(b *testing.B, optimized bool) {
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			ctx.SetControlMessages(false)
			y := core.Random(ctx, []int{n}, 1)
			c.Barrier()
			for i := 0; i < b.N; i++ {
				if optimized {
					_ = slicing.Diff(y)
				} else {
					full := y.Gather()
					me, m := c.Rank(), y.Map()
					out := dense.Zeros[float64](m.LocalCount(me))
					for l := 0; l < out.Dim(0); l++ {
						g := m.LocalToGlobal(me, l)
						if g < n-1 {
							out.Set(full.At(g+1)-full.At(g), l)
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("halo", func(b *testing.B) { run(b, true) })
	b.Run("allgather", func(b *testing.B) { run(b, false) })
}

// BenchmarkE5Fusion measures the fused single-sweep evaluation of
// sqrt(x^2+y^2) against op-at-a-time temporaries (paper §III "loop fusion").
func BenchmarkE5Fusion(b *testing.B) {
	const n = 1 << 19
	const p = 2
	build := func(x, y *core.DistArray[float64]) *fusion.Expr {
		return fusion.Sqrt(fusion.Var(x).Square().Add(fusion.Var(y).Square()))
	}
	run := func(b *testing.B, fused bool) {
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			ctx.SetControlMessages(false)
			x := core.Random(ctx, []int{n}, 1)
			y := core.Random(ctx, []int{n}, 2)
			e := build(x, y)
			c.Barrier()
			for i := 0; i < b.N; i++ {
				if fused {
					_ = fusion.Eval(e)
				} else {
					_ = fusion.EvalNaive(e)
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("fused", func(b *testing.B) { run(b, true) })
	b.Run("naive", func(b *testing.B) { run(b, false) })
}

const jitCorpus = `
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res

def dot(a, b):
    acc = 0.0
    for i in range(len(a)):
        acc += a[i] * b[i]
    return acc

def mandel(cr, ci, maxiter):
    zr = 0.0
    zi = 0.0
    n = 0
    while n < maxiter and zr * zr + zi * zi <= 4.0:
        t = zr * zr - zi * zi + cr
        zi = 2.0 * zr * zi + ci
        zr = t
        n += 1
    return n
`

// BenchmarkE6SeamlessJIT measures the paper's §IV.A claim on three kernels:
// the bytecode interpreter (CPython stand-in), the compiled engine (JIT
// stand-in), and hand-written Go.
func BenchmarkE6SeamlessJIT(b *testing.B) {
	const n = 1 << 16
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i % 1000)
		ys[i] = float64(i % 777)
	}
	mkEngines := func() (*vm.Engine, *compile.Engine) {
		pv, err := seamless.CompileSource(jitCorpus)
		if err != nil {
			b.Fatal(err)
		}
		pc, err := seamless.CompileSource(jitCorpus)
		if err != nil {
			b.Fatal(err)
		}
		return vm.NewEngine(pv), compile.NewEngine(pc)
	}
	ev, ec := mkEngines()
	kernels := []struct {
		name string
		args []seamless.Value
		gold func()
	}{
		{"sum", []seamless.Value{seamless.ArrFV(xs)}, func() {
			acc := 0.0
			for _, v := range xs {
				acc += v
			}
			_ = acc
		}},
		{"dot", []seamless.Value{seamless.ArrFV(xs), seamless.ArrFV(ys)}, func() {
			acc := 0.0
			for i := range xs {
				acc += xs[i] * ys[i]
			}
			_ = acc
		}},
		{"mandel", []seamless.Value{seamless.FloatV(-0.7436), seamless.FloatV(0.1318), seamless.IntV(2000)}, func() {
			zr, zi := 0.0, 0.0
			for k := 0; k < 2000 && zr*zr+zi*zi <= 4; k++ {
				zr, zi = zr*zr-zi*zi-0.7436, 2*zr*zi+0.1318
			}
		}},
	}
	for _, k := range kernels {
		if _, err := ev.Call(k.name, k.args...); err != nil {
			b.Fatal(err)
		}
		if _, err := ec.Call(k.name, k.args...); err != nil {
			b.Fatal(err)
		}
		b.Run(k.name+"/interp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev.Call(k.name, k.args...)
			}
		})
		b.Run(k.name+"/compiled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ec.Call(k.name, k.args...)
			}
		})
		b.Run(k.name+"/native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.gold()
			}
		})
	}
}

// BenchmarkE7FFIOverhead measures the three atan2 call paths of §IV.C.
func BenchmarkE7FFIOverhead(b *testing.B) {
	libm, err := ffi.OpenM()
	if err != nil {
		b.Fatal(err)
	}
	prog, err := seamless.CompileSource(`
def loop_atan2(n):
    acc = 0.0
    for i in range(n):
        acc += atan2(1.0, float(i + 1))
    return acc
`)
	if err != nil {
		b.Fatal(err)
	}
	libm.BindAll(prog)
	ec := compile.NewEngine(prog)
	if _, err := ec.Call("loop_atan2", seamless.IntV(10)); err != nil {
		b.Fatal(err)
	}
	b.Run("native", func(b *testing.B) {
		acc := 0.0
		for i := 0; i < b.N; i++ {
			acc += math.Atan2(1.0, float64(i+1))
		}
		_ = acc
	})
	b.Run("library-call", func(b *testing.B) {
		acc := 0.0
		for i := 0; i < b.N; i++ {
			v, _ := libm.Call("atan2", 1.0, float64(i+1))
			acc += v
		}
		_ = acc
	})
	b.Run("kernel-extern", func(b *testing.B) {
		// One kernel invocation performs b.N extern calls.
		if _, err := ec.Call("loop_atan2", seamless.IntV(int64(b.N))); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkE8PoissonSolve measures the §V workflow: ODIN rhs -> CG under
// each preconditioner. The custom metric reports CG iterations.
func BenchmarkE8PoissonSolve(b *testing.B) {
	const nx = 32
	const p = 4
	for _, pc := range []string{"none", "jacobi", "ssor", "ilu0", "amg"} {
		b.Run(pc, func(b *testing.B) {
			var iters int
			err := comm.Run(p, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				n := nx * nx
				m := distmap.NewBlock(n, c.Size())
				a := galeri.Laplace2DDist(c, m, nx, nx)
				h := 1.0 / float64(nx+1)
				rhs := core.Full(ctx, h*h, []int{n}, core.Options{Map: m})
				var prec solvers.Preconditioner
				var err error
				switch pc {
				case "jacobi":
					prec, err = precond.NewJacobi(a)
				case "ssor":
					prec, err = precond.NewSSOR(a, 1.3, 1)
				case "ilu0":
					prec, err = precond.NewILU0(a)
				case "amg":
					prec, err = precond.NewAMG(a, precond.AMGOptions{})
				}
				if err != nil {
					return err
				}
				params := teuchos.NewParameterList("s")
				params.Set("method", "cg").Set("tolerance", 1e-8).Set("max iterations", 10000)
				for i := 0; i < b.N; i++ {
					x := core.Zeros[float64](ctx, []int{n}, core.Options{Map: m})
					res, err := bridge.Solve(a, rhs, x, prec, params)
					if err != nil {
						return err
					}
					if !res.Converged {
						return fmt.Errorf("%s: %v", pc, res)
					}
					if c.Rank() == 0 {
						iters = res.Iterations
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(iters), "CGiters")
		})
	}
}

// BenchmarkE9TableIParity runs the 13-package parity sweep (normally a
// PASS/FAIL table via `solverbench e9`); as a bench it reports the sweep
// cost so regressions in any substrate show up.
func BenchmarkE9TableIParity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		err := comm.Run(2, func(c *comm.Comm) error {
			m := distmap.NewBlock(100, c.Size())
			a := galeri.Laplace1DDist(c, m)
			bb := tpetra.NewVector(c, m)
			bb.PutScalar(1)
			x := tpetra.NewVector(c, m)
			res, err := solvers.CG(a, bb, x, solvers.Options{Tol: 1e-8})
			if err != nil || !res.Converged {
				return fmt.Errorf("cg %v %v", res, err)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10MasterBottleneck measures a stencil sweep and reports the
// bytes that transited rank 0, the Fig. 1 architecture metric.
func BenchmarkE10MasterBottleneck(b *testing.B) {
	const n = 1 << 18
	for _, p := range []int{4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var masterBytes float64
			stats, err := comm.RunStats(p, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				x := core.Random(ctx, []int{n}, 1)
				for i := 0; i < b.N; i++ {
					d := slicing.Diff(x)
					_ = ufunc.Sum(d)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			masterBytes = float64(stats.Snapshot().MasterBytes()) / float64(b.N)
			b.ReportMetric(masterBytes, "masterB/op")
		})
	}
}

// BenchmarkAblationVMDispatch (E-A3) isolates interpreter dispatch cost on
// a scalar-heavy kernel where no array traffic can hide it.
func BenchmarkAblationVMDispatch(b *testing.B) {
	src := "def spin(n):\n    acc = 0\n    for i in range(n):\n        acc += i % 7\n    return acc\n"
	pv, _ := seamless.CompileSource(src)
	pc, _ := seamless.CompileSource(src)
	ev := vm.NewEngine(pv)
	ec := compile.NewEngine(pc)
	arg := seamless.IntV(10_000)
	ev.Call("spin", arg)
	ec.Call("spin", arg)
	b.Run("interp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev.Call("spin", arg)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ec.Call("spin", arg)
		}
	})
}

// BenchmarkTableGroupReduce measures the map-reduce shuffle of §III.I.
func BenchmarkTableGroupReduce(b *testing.B) {
	const rows = 20_000
	const p = 4
	err := comm.Run(p, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		t := table.New(ctx, []table.Column{
			{Name: "k", Kind: table.String},
			{Name: "v", Kind: table.Float},
		})
		keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		//lint:allow p2pmatch Row-load loop exceeds the unroll budget; each iteration appends owner-local rows and the reduce below is collective
		for i := 0; i < rows; i++ {
			if i%p == c.Rank() {
				t.AppendRow(keys[i%len(keys)], float64(i))
			}
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			_ = t.GroupReduce("k", "v", table.AggSum)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExecScaling is the intra-rank counterpart of E5's rank sweeps:
// it measures the exec engine's worker-pool scaling at pool sizes 1/2/4/8
// on three hot paths at N = 2^20 — a dense unary ufunc (sin), the paper's
// fused hypot expression, and tridiagonal CSR SpMV. Results are recorded in
// BENCH_exec.json and discussed in EXPERIMENTS.md ("E-X intra-rank
// scaling"). On a single-core host the pool sizes time-slice one CPU, so
// expect ~1x; on a multi-core host the speedup at 4 workers is the headline
// number.
func BenchmarkExecScaling(b *testing.B) {
	const n = 1 << 20
	old := exec.Default()
	defer exec.SetDefault(old)

	// Tridiagonal Laplacian assembled directly in CSR form.
	lap := &sparse.CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	lap.ColIdx = make([]int, 0, 3*n)
	lap.Val = make([]float64, 0, 3*n)
	for i := 0; i < n; i++ {
		if i > 0 {
			lap.ColIdx = append(lap.ColIdx, i-1)
			lap.Val = append(lap.Val, -1)
		}
		lap.ColIdx = append(lap.ColIdx, i)
		lap.Val = append(lap.Val, 2)
		if i < n-1 {
			lap.ColIdx = append(lap.ColIdx, i+1)
			lap.Val = append(lap.Val, -1)
		}
		lap.RowPtr[i+1] = len(lap.ColIdx)
	}

	for _, w := range []int{1, 2, 4, 8} {
		exec.SetDefault(exec.New(exec.WithWorkers(w)))

		b.Run(fmt.Sprintf("ufunc-sin/threads=%d", w), func(b *testing.B) {
			x := dense.Linspace[float64](0, 1, n)
			out := dense.Zeros[float64](n)
			b.SetBytes(8 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dense.UnaryInto(out, x, math.Sin)
			}
		})

		b.Run(fmt.Sprintf("fused-hypot/threads=%d", w), func(b *testing.B) {
			err := comm.Run(1, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) / n })
				y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return 1 - float64(g[0])/n })
				e := fusion.Sqrt(fusion.Var(x).Square().Add(fusion.Var(y).Square()))
				b.SetBytes(8 * n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = fusion.Eval(e)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})

		b.Run(fmt.Sprintf("spmv-csr/threads=%d", w), func(b *testing.B) {
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = float64(i%97) / 97
			}
			b.SetBytes(int64(8 * lap.NNZ()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lap.MulVec(x, y)
			}
		})
	}
}

// BenchmarkSpmvFormats compares SpMV throughput format-by-format on the
// stencil matrices the conformance corpus solves: the 1-D tridiagonal, 2-D
// five-point, and 3-D seven-point Laplacians. The csr and sell rows time
// the two kernels directly; the auto row times whatever operator
// sparse.ChooseFormat picks (conversion happens outside the timed loop), so
// auto matching the winning direct row is the heuristic's acceptance check.
// Results are recorded in BENCH_spmv.json and discussed in EXPERIMENTS.md.
func BenchmarkSpmvFormats(b *testing.B) {
	mats := []struct {
		name string
		m    *sparse.CSR
	}{
		{"laplace1d-1048576", galeri.Laplace1D(1 << 20)},
		{"laplace2d-512x512", galeri.Laplace2D(512, 512)},
		{"laplace3d-48", galeri.Laplace3D(48, 48, 48)},
	}
	for _, mt := range mats {
		n := mt.m.Rows
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i%97) / 97
		}
		ops := []struct {
			name string
			op   sparse.Operator
		}{
			{"csr", mt.m},
			{"sell", sparse.NewSELL(mt.m)},
			{"auto", sparse.AutoOperator(mt.m)},
		}
		for _, o := range ops {
			b.Run(mt.name+"/"+o.name, func(b *testing.B) {
				b.SetBytes(int64(8 * mt.m.NNZ()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					o.op.MulVec(x, y)
				}
			})
		}
	}
}

// BenchmarkFusionVM sweeps the register VM's block size against expression
// depth. Each depth level appends one fused multiply-add (e = e*y + x), so
// the instruction count grows linearly with depth while the traffic stays
// one output stream — deeper expressions are where compiled block execution
// beats the per-element closure tree hardest. Small blocks expose per-block
// dispatch overhead; huge blocks spill the scratch registers out of L1/L2.
// Results are recorded in BENCH_fusion.json and discussed in EXPERIMENTS.md
// E12. The closure-path baseline for the same host is the fused-hypot
// threads=1 row of BENCH_exec.json.
func BenchmarkFusionVM(b *testing.B) {
	const n = 1 << 20
	for _, depth := range []int{1, 4, 16} {
		for _, block := range []int{256, 1024, 4096, 16384} {
			b.Run(fmt.Sprintf("depth=%d/block=%d", depth, block), func(b *testing.B) {
				oldBlock := fusion.SetBlockSize(block)
				defer fusion.SetBlockSize(oldBlock)
				err := comm.Run(1, func(c *comm.Comm) error {
					ctx := core.NewContext(c)
					x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) / n })
					y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return 1 - float64(g[0])/n })
					e := fusion.Var(x)
					for d := 0; d < depth; d++ {
						e = e.Mul(fusion.Var(y)).Add(fusion.Var(x))
					}
					b.SetBytes(8 * n)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						_ = fusion.Eval(e)
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
