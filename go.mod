module odinhpc

go 1.22
