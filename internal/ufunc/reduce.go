package ufunc

import (
	"fmt"
	"math"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
)

// Sum returns the global sum of all elements. Collective.
func Sum[T dense.Real](x *core.DistArray[T]) T {
	x.Context().Control(core.OpReduce, 1)
	return comm.AllreduceScalar(x.Context().Comm(), dense.Sum(x.Local()), comm.OpSum)
}

// Prod returns the global product of all elements. Collective.
func Prod[T dense.Real](x *core.DistArray[T]) T {
	x.Context().Control(core.OpReduce, 1)
	return comm.AllreduceScalar(x.Context().Comm(), dense.Prod(x.Local()), comm.OpProd)
}

// Min returns the global minimum. Collective.
func Min[T dense.Real](x *core.DistArray[T]) T {
	x.Context().Control(core.OpReduce, 1)
	if x.GlobalSize() == 0 {
		panic("ufunc: Min of empty array")
	}
	local, ok := localExtreme(x, true)
	return extremeAllreduce(x, local, ok, comm.OpMin)
}

// Max returns the global maximum. Collective.
func Max[T dense.Real](x *core.DistArray[T]) T {
	x.Context().Control(core.OpReduce, 1)
	if x.GlobalSize() == 0 {
		panic("ufunc: Max of empty array")
	}
	local, ok := localExtreme(x, false)
	return extremeAllreduce(x, local, ok, comm.OpMax)
}

// localExtreme returns this rank's min or max and whether it holds any
// elements at all.
func localExtreme[T dense.Real](x *core.DistArray[T], min bool) (T, bool) {
	var best T
	if x.Local().Size() == 0 {
		return best, false
	}
	if min {
		return dense.Min(x.Local()), true
	}
	return dense.Max(x.Local()), true
}

// extremeAllreduce combines per-rank extremes, skipping empty ranks by
// substituting the global answer from occupied ranks.
func extremeAllreduce[T dense.Real](x *core.DistArray[T], local T, ok bool, op comm.Op) T {
	// Gather (value, occupied) pairs; P is small.
	vals := comm.Allgather(x.Context().Comm(), []T{local})
	occ := comm.Allgather(x.Context().Comm(), []bool{ok})
	first := true
	var best T
	for r := range vals {
		if !occ[r][0] {
			continue
		}
		v := vals[r][0]
		if first {
			best = v
			first = false
			continue
		}
		if op == comm.OpMin && v < best || op == comm.OpMax && v > best {
			best = v
		}
	}
	return best
}

// Mean returns the global arithmetic mean of a float array. Collective.
func Mean[T dense.Float](x *core.DistArray[T]) T {
	if x.GlobalSize() == 0 {
		panic("ufunc: Mean of empty array")
	}
	return Sum(x) / T(x.GlobalSize())
}

// ArgMin returns the global row-major flat index of the minimum element
// (lowest index wins ties). Collective.
func ArgMin[T dense.Real](x *core.DistArray[T]) int {
	return argExtreme(x, true)
}

// ArgMax returns the global row-major flat index of the maximum element.
// Collective.
func ArgMax[T dense.Real](x *core.DistArray[T]) int {
	return argExtreme(x, false)
}

func argExtreme[T dense.Real](x *core.DistArray[T], min bool) int {
	x.Context().Control(core.OpReduce, 2)
	if x.GlobalSize() == 0 {
		panic("ufunc: Arg reduction of empty array")
	}
	me := x.Context().Rank()
	shape := x.Shape()
	// Local best with its global flat index.
	bestIdx := -1
	var bestVal T
	gidx := make([]int, len(shape))
	x.Local().EachIndexed(func(lidx []int, v T) {
		copy(gidx, lidx)
		gidx[x.Axis()] = x.Map().LocalToGlobal(me, lidx[x.Axis()])
		flat := 0
		for d, i := range gidx {
			flat = flat*shape[d] + i
		}
		better := bestIdx == -1 ||
			(min && (v < bestVal || v == bestVal && flat < bestIdx)) ||
			(!min && (v > bestVal || v == bestVal && flat < bestIdx))
		if better {
			bestVal, bestIdx = v, flat
		}
	})
	vals := comm.Allgather(x.Context().Comm(), []T{bestVal})
	idxs := comm.Allgather(x.Context().Comm(), []int{bestIdx})
	globalIdx := -1
	var globalVal T
	for r := range vals {
		if idxs[r][0] == -1 {
			continue
		}
		v, i := vals[r][0], idxs[r][0]
		better := globalIdx == -1 ||
			(min && (v < globalVal || v == globalVal && i < globalIdx)) ||
			(!min && (v > globalVal || v == globalVal && i < globalIdx))
		if better {
			globalVal, globalIdx = v, i
		}
	}
	return globalIdx
}

// SumAxis sums a distributed array along one axis, returning an array
// whose global shape drops that axis (NumPy's sum(axis=k)). Reductions
// along non-distributed axes are purely local; reducing along the
// distributed axis costs one Allreduce of the result slab. Requires an
// array of at least two dimensions (use Sum for the full reduction).
// Collective.
func SumAxis[T dense.Real](x *core.DistArray[T], axis int) *core.DistArray[T] {
	if x.NDim() < 2 {
		panic("ufunc: SumAxis requires >= 2 dimensions; use Sum for full reductions")
	}
	if axis < 0 || axis >= x.NDim() {
		panic(fmt.Sprintf("ufunc: SumAxis axis %d out of range for shape %v", axis, x.Shape()))
	}
	ctx := x.Context()
	ctx.Control(core.OpReduce, int64(axis))
	saved := ctx.ControlMessagesEnabled()
	ctx.SetControlMessages(false)
	defer ctx.SetControlMessages(saved)

	outShape := make([]int, 0, x.NDim()-1)
	for d, s := range x.Shape() {
		if d != axis {
			outShape = append(outShape, s)
		}
	}
	if axis != x.Axis() {
		// Local fold; distribution follows the (possibly shifted) axis.
		newAxis := x.Axis()
		if axis < newAxis {
			newAxis--
		}
		local := dense.SumAxis(x.Local(), axis)
		out := core.Zeros[T](ctx, outShape, core.Options{Axis: newAxis, Map: x.Map()})
		out.Local().CopyFrom(local)
		return out
	}
	// Reduce along the distributed axis: fold the local slab stack, then
	// Allreduce the slab and keep this rank's share of a fresh block
	// distribution over the leading remaining axis.
	partial := dense.SumAxis(x.Local(), axis)
	full := comm.Allreduce(ctx.Comm(), partial.Flatten(), comm.OpSum)
	fullArr := dense.FromSlice(full, outShape...)
	out := core.Zeros[T](ctx, outShape)
	me := ctx.Rank()
	gidx := make([]int, len(outShape))
	out.Local().EachIndexed(func(lidx []int, _ T) {
		copy(gidx, lidx)
		gidx[0] = out.Map().LocalToGlobal(me, lidx[0])
		out.Local().Set(fullArr.At(gidx...), lidx...)
	})
	return out
}

// CumSum returns the inclusive prefix sum of a 1-d distributed array with
// the same distribution: a local scan plus one exclusive scan of the rank
// totals. Collective.
func CumSum[T dense.Real](x *core.DistArray[T]) *core.DistArray[T] {
	if x.NDim() != 1 {
		panic(fmt.Sprintf("ufunc: CumSum requires a 1-d array, got shape %v", x.Shape()))
	}
	if x.Map().Kind() != distmap.Block && x.Context().Size() > 1 {
		// Prefix order must follow global order; only contiguous block
		// layouts allow the cheap scan.
		panic("ufunc: CumSum requires a block distribution")
	}
	x.Context().Control(core.OpReduce, 3)
	local := dense.CumSum(x.Local())
	var total T
	if local.Size() > 0 {
		total = local.At(local.Size() - 1)
	}
	offset := comm.ExclusiveScanScalar(x.Context().Comm(), total, comm.OpSum)
	out := dense.Scalar(local, offset, func(v, o T) T { return v + o })
	return x.WithLocal(out)
}

// Dot returns the global inner product of two 1-d arrays, redistributing y
// if the operands are not conformable. Collective.
func Dot[T dense.Real](x, y *core.DistArray[T]) T {
	if x.NDim() != 1 || y.NDim() != 1 || x.GlobalSize() != y.GlobalSize() {
		panic("ufunc: Dot requires equal-length 1-d arrays")
	}
	x.Context().Control(core.OpReduce, 2)
	if !x.ConformableWith(y) {
		y = core.Redistribute(y, x.Map())
	}
	return comm.AllreduceScalar(x.Context().Comm(), dense.Dot(x.Local(), y.Local()), comm.OpSum)
}

// Norm2 returns the global Euclidean norm of a float array. Collective.
func Norm2[T dense.Float](x *core.DistArray[T]) float64 {
	x.Context().Control(core.OpReduce, 1)
	var acc float64
	x.Local().Each(func(v T) { acc += float64(v) * float64(v) })
	return math.Sqrt(comm.AllreduceScalar(x.Context().Comm(), acc, comm.OpSum))
}

// AllClose reports whether two float arrays agree element-wise within
// tolerances, redistributing if necessary. Collective.
func AllClose[T dense.Float](x, y *core.DistArray[T], rtol, atol float64) bool {
	if !sameShape(x.Shape(), y.Shape()) {
		return false
	}
	if !x.ConformableWith(y) {
		y = core.Redistribute(y, x.Map())
	}
	local := 1
	if !dense.AllClose(x.Local(), y.Local(), rtol, atol) {
		local = 0
	}
	return comm.AllreduceScalar(x.Context().Comm(), local, comm.OpMin) == 1
}

// Compress returns the elements of a 1-d block-distributed array for which
// pred holds, in global order. Survivors stay on the rank that held them,
// so the result carries a non-uniform arbitrary map (paper §III.A:
// "apportion non-uniform sections of an array to each node") and no array
// data moves — only one scan of the per-rank survivor counts. Collective.
func Compress[T dense.Elem](x *core.DistArray[T], pred func(T) bool) *core.DistArray[T] {
	if x.NDim() != 1 {
		panic("ufunc: Compress requires a 1-d array")
	}
	if x.Map().Kind() != distmap.Block && x.Context().Size() > 1 {
		panic("ufunc: Compress requires a block distribution (global order must follow rank order)")
	}
	ctx := x.Context()
	ctx.Control(core.OpUfunc, 3)
	saved := ctx.ControlMessagesEnabled()
	ctx.SetControlMessages(false)
	defer ctx.SetControlMessages(saved)

	var kept []T
	x.Local().Each(func(v T) {
		if pred(v) {
			kept = append(kept, v)
		}
	})
	counts := comm.AllgatherFlat(ctx.Comm(), []int{len(kept)})
	total := 0
	owners := make([]int, 0)
	for r, c := range counts {
		for i := 0; i < c; i++ {
			owners = append(owners, r)
		}
		total += c
	}
	m := distmap.NewArbitrary(owners, ctx.Size())
	out := core.Zeros[T](ctx, []int{total}, core.Options{Map: m})
	copy(out.Local().Raw(), kept)
	return out
}

// Count returns the global number of elements satisfying pred. Collective.
func Count[T dense.Elem](x *core.DistArray[T], pred func(T) bool) int {
	x.Context().Control(core.OpReduce, 1)
	return comm.AllreduceScalar(x.Context().Comm(), dense.Count(x.Local(), pred), comm.OpSum)
}
