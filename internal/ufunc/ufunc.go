// Package ufunc implements ODIN's distributed universal functions (§III.D):
// unary ufuncs that parallelize with zero communication, binary ufuncs that
// are communication-free when the operands are conformable and otherwise
// redistribute one operand under a cost-minimizing strategy, and the global
// reductions and scans built on the collective layer.
package ufunc

import (
	"fmt"
	"math"

	"odinhpc/internal/core"
	"odinhpc/internal/dense"
)

// Unary applies f element-wise. No communication: "all of NumPy's unary
// ufuncs are able to be trivially parallelized".
func Unary[T, U dense.Elem](x *core.DistArray[T], f func(T) U) *core.DistArray[U] {
	x.Context().Control(core.OpUfunc, 1)
	return core.WithLocalLike[U](x, dense.Unary(x.Local(), f))
}

// Strategy selects how a non-conformable binary ufunc aligns its operands.
type Strategy int

// Redistribution strategies for non-conformable operands.
const (
	// StrategyAuto picks the cheaper of the two import directions by
	// counting the slabs that would cross rank boundaries.
	StrategyAuto Strategy = iota
	// StrategyImportRight moves y into x's distribution.
	StrategyImportRight
	// StrategyImportLeft moves x into y's distribution.
	StrategyImportLeft
)

func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyImportRight:
		return "import-right"
	case StrategyImportLeft:
		return "import-left"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// BinaryOptions tunes non-conformable binary ufuncs — the Go analog of the
// paper's "Python context managers and function decorators" override knob.
type BinaryOptions struct {
	Strategy Strategy
}

// PlanBinary reports which strategy Binary would use for the given operands
// and the number of elements it would move (zero for conformable operands).
//
// The chooser minimizes bytes moved first. For same-shape operands the two
// import directions move exactly the symmetric difference of the ownership
// tables, so byte costs tie; the tie is broken toward the better-balanced
// result layout (so importing toward a degenerate all-on-one-rank operand
// never wins), and a remaining tie keeps the left operand's layout.
// Collective (it reduces per-rank counts).
func PlanBinary[T dense.Elem](x, y *core.DistArray[T], opts ...BinaryOptions) (Strategy, int) {
	opt := BinaryOptions{}
	if len(opts) > 0 {
		opt = opts[0]
	}
	if x.ConformableWith(y) {
		return opt.Strategy, 0
	}
	switch opt.Strategy {
	case StrategyImportRight:
		return StrategyImportRight, core.RedistributeCost(y, x.Map())
	case StrategyImportLeft:
		return StrategyImportLeft, core.RedistributeCost(x, y.Map())
	default:
		right := core.RedistributeCost(y, x.Map())
		left := core.RedistributeCost(x, y.Map())
		if left < right {
			return StrategyImportLeft, left
		}
		if right < left {
			return StrategyImportRight, right
		}
		// Byte tie: favor the layout that balances the element-wise work.
		if y.Map().Imbalance() < x.Map().Imbalance() {
			return StrategyImportLeft, left
		}
		return StrategyImportRight, right
	}
}

// Binary applies f element-wise to two distributed arrays of the same
// global shape. Conformable operands run without communication; otherwise
// one operand is redistributed according to the strategy ("ODIN will choose
// a strategy that will minimize communication, while allowing the
// knowledgeable user to modify its behavior", §III.D).
func Binary[T dense.Elem](x, y *core.DistArray[T], f func(T, T) T, opts ...BinaryOptions) *core.DistArray[T] {
	if !sameShape(x.Shape(), y.Shape()) {
		panic(fmt.Sprintf("ufunc: Binary global shape mismatch %v vs %v", x.Shape(), y.Shape()))
	}
	x.Context().Control(core.OpUfunc, 2)
	if x.ConformableWith(y) {
		return x.WithLocal(dense.Binary(x.Local(), y.Local(), f))
	}
	if x.Axis() != y.Axis() {
		// Align axes by redistributing y over x's axis and map; requires a
		// full reshuffle. Implemented via gather-free redistribution over
		// the flattened axis is out of scope: handle the common same-axis
		// case and reject the rest explicitly.
		panic(fmt.Sprintf("ufunc: operands distributed over different axes (%d vs %d)", x.Axis(), y.Axis()))
	}
	strat, _ := PlanBinary(x, y, opts...)
	switch strat {
	case StrategyImportLeft:
		xr := core.Redistribute(x, y.Map())
		return xr.WithLocal(dense.Binary(xr.Local(), y.Local(), f))
	default:
		yr := core.Redistribute(y, x.Map())
		return x.WithLocal(dense.Binary(x.Local(), yr.Local(), f))
	}
}

// Scalar applies f(v, s) element-wise with a fixed scalar right operand.
func Scalar[T dense.Elem](x *core.DistArray[T], s T, f func(T, T) T) *core.DistArray[T] {
	x.Context().Control(core.OpUfunc, 1)
	return x.WithLocal(dense.Scalar(x.Local(), s, f))
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Convenience arithmetic wrappers.

// Add returns x + y element-wise.
func Add[T dense.Elem](x, y *core.DistArray[T], opts ...BinaryOptions) *core.DistArray[T] {
	return Binary(x, y, func(a, b T) T { return a + b }, opts...)
}

// Sub returns x - y element-wise.
func Sub[T dense.Elem](x, y *core.DistArray[T], opts ...BinaryOptions) *core.DistArray[T] {
	return Binary(x, y, func(a, b T) T { return a - b }, opts...)
}

// Mul returns x * y element-wise.
func Mul[T dense.Elem](x, y *core.DistArray[T], opts ...BinaryOptions) *core.DistArray[T] {
	return Binary(x, y, func(a, b T) T { return a * b }, opts...)
}

// Div returns x / y element-wise.
func Div[T dense.Elem](x, y *core.DistArray[T], opts ...BinaryOptions) *core.DistArray[T] {
	return Binary(x, y, func(a, b T) T { return a / b }, opts...)
}

// Named float unary ufuncs matching the paper's examples (odin.sqrt,
// odin.sin, ...).

// Sqrt returns the element-wise square root.
func Sqrt(x *core.DistArray[float64]) *core.DistArray[float64] {
	return Unary(x, math.Sqrt)
}

// Sin returns the element-wise sine.
func Sin(x *core.DistArray[float64]) *core.DistArray[float64] {
	return Unary(x, math.Sin)
}

// Cos returns the element-wise cosine.
func Cos(x *core.DistArray[float64]) *core.DistArray[float64] {
	return Unary(x, math.Cos)
}

// Exp returns the element-wise exponential.
func Exp(x *core.DistArray[float64]) *core.DistArray[float64] {
	return Unary(x, math.Exp)
}

// Abs returns element-wise absolute values.
func Abs(x *core.DistArray[float64]) *core.DistArray[float64] {
	return Unary(x, math.Abs)
}

// Hypot returns element-wise sqrt(x^2 + y^2), the paper's §III.C example
// computed in global mode.
func Hypot(x, y *core.DistArray[float64], opts ...BinaryOptions) *core.DistArray[float64] {
	return Binary(x, y, math.Hypot, opts...)
}
