package ufunc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
)

func onRanks(t *testing.T, ps []int, fn func(ctx *core.Context) error) {
	t.Helper()
	for _, p := range ps {
		err := comm.Run(p, func(c *comm.Comm) error { return fn(core.NewContext(c)) })
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

var sizes = []int{1, 2, 3, 4}

func TestUnaryMatchesSerial(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		x := core.Linspace[float64](ctx, 0, 10, 37)
		got := Sqrt(x).Gather()
		want := dense.Unary(dense.Linspace[float64](0, 10, 37), math.Sqrt)
		if !dense.AllClose(got, want, 1e-15, 0) {
			return fmt.Errorf("sqrt differs")
		}
		return nil
	})
}

func TestUnaryNoCommunication(t *testing.T) {
	stats, err := comm.RunStats(4, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false) // isolate data traffic
		x := core.Random(ctx, []int{1000}, 1)
		c.Barrier()
		if c.Rank() == 0 {
			c.ResetStats()
		}
		c.Barrier()
		_ = Sin(x)
		_ = Exp(x)
		_ = Abs(x)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	// Only the trailing barrier bytes (1 byte each) may appear.
	if snap.TotalBytes() > 64 {
		t.Fatalf("unary ufuncs moved %d bytes; must be zero", snap.TotalBytes())
	}
}

func TestUnaryTypeChange(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		x := core.Linspace[float64](ctx, 0, 9, 10)
		ints := Unary(x, func(v float64) int64 { return int64(v * 2) })
		if ints.At(9) != 18 {
			return fmt.Errorf("cast ufunc: %d", ints.At(9))
		}
		return nil
	})
}

func TestBinaryConformableNoComm(t *testing.T) {
	stats, err := comm.RunStats(4, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false)
		x := core.Random(ctx, []int{400}, 1)
		y := core.Random(ctx, []int{400}, 2)
		c.Barrier()
		if c.Rank() == 0 {
			c.ResetStats()
		}
		c.Barrier()
		z := Add(x, y)
		if z.GlobalSize() != 400 {
			return fmt.Errorf("size")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Snapshot().TotalBytes() > 64 {
		t.Fatalf("conformable binary moved %d bytes", stats.Snapshot().TotalBytes())
	}
}

func TestBinaryMatchesSerialAllOps(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		n := 29
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) + 1 })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]%5) + 1 })
		// NOTE: collectives must run in the same order on every rank, so
		// the checks live in a slice, not a map (map iteration order is
		// per-process random and would desynchronize Gather calls).
		checks := []struct {
			name string
			got  *core.DistArray[float64]
			want func(a, b float64) float64
		}{
			{"add", Add(x, y), func(a, b float64) float64 { return a + b }},
			{"sub", Sub(x, y), func(a, b float64) float64 { return a - b }},
			{"mul", Mul(x, y), func(a, b float64) float64 { return a * b }},
			{"div", Div(x, y), func(a, b float64) float64 { return a / b }},
			{"hyp", Hypot(x, y), math.Hypot},
		}
		for _, chk := range checks {
			name := chk.name
			full := chk.got.Gather()
			for g := 0; g < n; g++ {
				a, b := float64(g)+1, float64(g%5)+1
				if math.Abs(full.At(g)-chk.want(a, b)) > 1e-12 {
					return fmt.Errorf("%s[%d]=%g", name, g, full.At(g))
				}
			}
		}
		return nil
	})
}

func TestBinaryNonConformableRedistributes(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		n := 23
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return 100 * float64(g[0]) },
			core.Options{Kind: distmap.Cyclic})
		z := Add(x, y)
		// Result adopts x's (block) distribution under import-right.
		if !z.Map().SameAs(x.Map()) {
			return fmt.Errorf("result map should match left operand")
		}
		full := z.Gather()
		for g := 0; g < n; g++ {
			if full.At(g) != 101*float64(g) {
				return fmt.Errorf("[%d]=%g", g, full.At(g))
			}
		}
		return nil
	})
}

func TestBinaryStrategyOverride(t *testing.T) {
	onRanks(t, []int{3}, func(ctx *core.Context) error {
		n := 12
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) },
			core.Options{Kind: distmap.Cyclic})
		left := Add(x, y, BinaryOptions{Strategy: StrategyImportLeft})
		if !left.Map().SameAs(y.Map()) {
			return fmt.Errorf("ImportLeft must adopt right operand's map")
		}
		right := Add(x, y, BinaryOptions{Strategy: StrategyImportRight})
		if !right.Map().SameAs(x.Map()) {
			return fmt.Errorf("ImportRight must adopt left operand's map")
		}
		for g := 0; g < n; g++ {
			if left.At(g) != right.At(g) || left.At(g) != 2*float64(g) {
				return fmt.Errorf("strategies disagree at %d", g)
			}
		}
		return nil
	})
}

func TestPlanBinaryPicksCheaper(t *testing.T) {
	onRanks(t, []int{4}, func(ctx *core.Context) error {
		n := 64
		// x block; y nearly-block (one element swapped between ranks 0/1):
		// moving y to x's layout costs 2 slabs; moving x to y's costs 2 as
		// well -- so use a cyclic y where costs are asymmetric with a 2-d
		// slab to amplify.
		x := core.Zeros[float64](ctx, []int{n, 8})
		y := core.Zeros[float64](ctx, []int{n, 8}, core.Options{Kind: distmap.Cyclic})
		strat, cost := PlanBinary(x, y)
		// Costs are symmetric here; chooser must still return a definite
		// strategy and the true minimum.
		lcost := core.RedistributeCost(x, y.Map())
		rcost := core.RedistributeCost(y, x.Map())
		wantMin := lcost
		if rcost < wantMin {
			wantMin = rcost
		}
		if cost != wantMin {
			return fmt.Errorf("cost %d, min %d", cost, wantMin)
		}
		if strat != StrategyImportLeft && strat != StrategyImportRight {
			return fmt.Errorf("strategy %v", strat)
		}
		// Conformable: zero cost.
		if _, c0 := PlanBinary(x, x.Clone()); c0 != 0 {
			return fmt.Errorf("conformable cost %d", c0)
		}
		return nil
	})
}

func TestPlanBinaryAsymmetric(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		n := 10
		// y lives entirely on rank 0 (arbitrary map), x is block.
		all0 := make([]int, n)
		y := core.Zeros[float64](ctx, []int{n}, core.Options{Map: distmap.NewArbitrary(all0, 2)})
		x := core.Zeros[float64](ctx, []int{n})
		// Moving y to block costs 5 (rank 1's half); moving x to all-0 also
		// costs 5. Equal. Make y cheaper: y distributed as block but with
		// one row moved.
		owners := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 0} // one row differs from block
		y2 := core.Zeros[float64](ctx, []int{n}, core.Options{Map: distmap.NewArbitrary(owners, 2)})
		// Byte costs tie at 1; the block layout is better balanced, so the
		// chooser aligns to it from either side.
		strat, cost := PlanBinary(x, y2)
		if strat != StrategyImportRight || cost != 1 {
			return fmt.Errorf("want ImportRight cost 1, got %v cost %d", strat, cost)
		}
		strat2, cost2 := PlanBinary(y2, x)
		if strat2 != StrategyImportLeft || cost2 != 1 {
			return fmt.Errorf("reversed: want ImportLeft cost 1, got %v cost %d", strat2, cost2)
		}
		// Degenerate all-on-rank-0 operand: never import toward it.
		strat3, _ := PlanBinary(y, x)
		if strat3 != StrategyImportLeft {
			return fmt.Errorf("all-on-0 left operand: want ImportLeft, got %v", strat3)
		}
		strat4, _ := PlanBinary(x, y)
		if strat4 != StrategyImportRight {
			return fmt.Errorf("all-on-0 right operand: want ImportRight, got %v", strat4)
		}
		return nil
	})
}

func TestBinaryShapeMismatchPanics(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		x := core.Zeros[float64](ctx, []int{8})
		y := core.Zeros[float64](ctx, []int{9})
		ok := func() (ok bool) {
			defer func() { ok = recover() != nil }()
			Add(x, y)
			return false
		}()
		if !ok {
			return fmt.Errorf("expected panic")
		}
		return nil
	})
}

func TestScalarOp(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		x := core.Arange[float64](ctx, 6)
		y := Scalar(x, 10, func(v, s float64) float64 { return v * s })
		if y.At(5) != 50 {
			return fmt.Errorf("scalar: %g", y.At(5))
		}
		return nil
	})
}

func TestReductionsMatchSerial(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		n := 41
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Sin(float64(i)*1.7) * 10
		}
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return vals[g[0]] })
		ref := dense.FromSlice(vals, n)
		if got := Sum(x); math.Abs(got-dense.Sum(ref)) > 1e-10 {
			return fmt.Errorf("Sum=%g want %g", got, dense.Sum(ref))
		}
		if got := Min(x); got != dense.Min(ref) {
			return fmt.Errorf("Min=%g", got)
		}
		if got := Max(x); got != dense.Max(ref) {
			return fmt.Errorf("Max=%g", got)
		}
		if got := Mean(x); math.Abs(got-dense.Mean(ref)) > 1e-12 {
			return fmt.Errorf("Mean=%g", got)
		}
		if got := ArgMin(x); got != dense.ArgMin(ref) {
			return fmt.Errorf("ArgMin=%d want %d", got, dense.ArgMin(ref))
		}
		if got := ArgMax(x); got != dense.ArgMax(ref) {
			return fmt.Errorf("ArgMax=%d want %d", got, dense.ArgMax(ref))
		}
		if got := Norm2(x); math.Abs(got-dense.Norm2(ref)) > 1e-10 {
			return fmt.Errorf("Norm2=%g", got)
		}
		if got := Count(x, func(v float64) bool { return v > 0 }); got != dense.Count(ref, func(v float64) bool { return v > 0 }) {
			return fmt.Errorf("Count=%d", got)
		}
		return nil
	})
}

func TestReductions2D(t *testing.T) {
	onRanks(t, []int{3}, func(ctx *core.Context) error {
		x := core.FromFunc(ctx, []int{5, 4}, func(g []int) float64 { return float64(g[0]*4 + g[1]) })
		if got := Sum(x); got != 190 { // sum 0..19
			return fmt.Errorf("Sum=%g", got)
		}
		if got := ArgMax(x); got != 19 {
			return fmt.Errorf("ArgMax=%d", got)
		}
		if got := ArgMin(x); got != 0 {
			return fmt.Errorf("ArgMin=%d", got)
		}
		return nil
	})
}

func TestSumAxisMatchesSerial(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		// 5x4 array distributed along axis 0.
		x := core.FromFunc(ctx, []int{5, 4}, func(g []int) float64 { return float64(10*g[0] + g[1]) })
		serial := dense.FromSlice(x.Gather().Flatten(), 5, 4)

		// Axis 1 (non-distributed): local reduction, result 1-d of length 5.
		rows := SumAxis(x, 1)
		wantRows := dense.SumAxis(serial, 1)
		if !dense.AllClose(rows.Gather(), wantRows, 0, 0) {
			return fmt.Errorf("axis-1 sums differ: %v vs %v", rows.Gather(), wantRows)
		}
		// Axis 0 (distributed): allreduce, result 1-d of length 4.
		cols := SumAxis(x, 0)
		wantCols := dense.SumAxis(serial, 0)
		if !dense.AllClose(cols.Gather(), wantCols, 0, 0) {
			return fmt.Errorf("axis-0 sums differ: %v vs %v", cols.Gather(), wantCols)
		}
		return nil
	})
}

func TestSumAxis3D(t *testing.T) {
	onRanks(t, []int{3}, func(ctx *core.Context) error {
		x := core.FromFunc(ctx, []int{4, 3, 2}, func(g []int) float64 {
			return float64(100*g[0] + 10*g[1] + g[2])
		}, core.Options{Axis: 1})
		serial := dense.FromSlice(x.Gather().Flatten(), 4, 3, 2)
		for axis := 0; axis < 3; axis++ {
			got := SumAxis(x, axis)
			want := dense.SumAxis(serial, axis)
			if !dense.AllClose(got.Gather(), want, 0, 0) {
				return fmt.Errorf("axis %d differs", axis)
			}
		}
		return nil
	})
}

func TestSumAxisValidation(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		for name, fn := range map[string]func(){
			"1d":       func() { SumAxis(core.Zeros[float64](ctx, []int{4}), 0) },
			"bad-axis": func() { SumAxis(core.Zeros[float64](ctx, []int{2, 2}), 5) },
		} {
			ok := func() (ok bool) {
				defer func() { ok = recover() != nil }()
				fn()
				return false
			}()
			if !ok {
				return fmt.Errorf("%s: expected panic", name)
			}
		}
		return nil
	})
}

func TestProdIntExact(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		x := core.FromFunc(ctx, []int{5}, func(g []int) int64 { return int64(g[0] + 1) })
		if got := Prod(x); got != 120 {
			return fmt.Errorf("Prod=%d", got)
		}
		return nil
	})
}

func TestCumSumMatchesSerial(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		n := 33
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]%7) - 2 })
		got := CumSum(x).Gather()
		acc := 0.0
		for g := 0; g < n; g++ {
			acc += float64(g%7) - 2
			if math.Abs(got.At(g)-acc) > 1e-12 {
				return fmt.Errorf("cumsum[%d]=%g want %g", g, got.At(g), acc)
			}
		}
		return nil
	})
}

func TestCumSumRejectsCyclic(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		x := core.Zeros[float64](ctx, []int{8}, core.Options{Kind: distmap.Cyclic})
		ok := func() (ok bool) {
			defer func() { ok = recover() != nil }()
			CumSum(x)
			return false
		}()
		if !ok {
			return fmt.Errorf("expected panic")
		}
		return nil
	})
}

func TestDotWithRedistribution(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		n := 19
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return 2 },
			core.Options{Kind: distmap.Cyclic})
		want := 2.0 * float64(n*(n-1)) / 2
		if got := Dot(x, y); got != want {
			return fmt.Errorf("Dot=%g want %g", got, want)
		}
		return nil
	})
}

func TestAllClose(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		x := core.Linspace[float64](ctx, 0, 1, 20)
		y := core.Linspace[float64](ctx, 0, 1, 20, core.Options{Kind: distmap.Cyclic})
		if !AllClose(x, y, 1e-12, 1e-12) {
			return fmt.Errorf("equal arrays not close")
		}
		z := Scalar(x, 1.0, func(v, s float64) float64 { return v + s })
		if AllClose(x, z, 1e-3, 1e-3) {
			return fmt.Errorf("shifted arrays close")
		}
		if AllClose(x, core.Zeros[float64](ctx, []int{19}), 1, 1) {
			return fmt.Errorf("shape mismatch close")
		}
		return nil
	})
}

// Property: distributed ufunc+reduction pipeline equals the serial one for
// random inputs and random rank counts.
func TestPipelineEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		p := 1 + rng.Intn(4)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		// Serial reference: sum(|sin(v)| + v^2).
		want := 0.0
		for _, v := range vals {
			want += math.Abs(math.Sin(v)) + v*v
		}
		ok := true
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return vals[g[0]] })
			//lint:allow p2pmatch Sum reduces through one Allreduce inside ufunc; numerical agreement is the assertion
			got := Sum(Add(Abs(Sin(x)), Mul(x, x)))
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				return fmt.Errorf("got %g want %g", got, want)
			}
			return nil
		})
		if err != nil {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressMatchesSerial(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		n := 37
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return math.Sin(float64(g[0])) })
		pos := Compress(x, func(v float64) bool { return v > 0 })
		// Serial reference.
		var want []float64
		for g := 0; g < n; g++ {
			if v := math.Sin(float64(g)); v > 0 {
				want = append(want, v)
			}
		}
		if pos.GlobalSize() != len(want) {
			return fmt.Errorf("size %d want %d", pos.GlobalSize(), len(want))
		}
		full := pos.Gather()
		for i, w := range want {
			if full.At(i) != w {
				return fmt.Errorf("[%d]=%g want %g", i, full.At(i), w)
			}
		}
		// The result composes with further global operations.
		if got := Min(pos); got <= 0 {
			return fmt.Errorf("compressed min %g", got)
		}
		return nil
	})
}

func TestCompressZeroCommunicationOfData(t *testing.T) {
	stats, err := comm.RunStats(4, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false)
		x := core.Random(ctx, []int{10_000}, 1)
		c.Barrier()
		if c.Rank() == 0 {
			c.ResetStats()
		}
		c.Barrier()
		//lint:allow p2pmatch Compress rebalances through vetted core redistribution; message accounting is the assertion
		_ = Compress(x, func(v float64) bool { return v > 0.5 })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the counts allgather (4 ints/rank) plus barrier noise.
	if got := stats.Snapshot().TotalBytes(); got > 512 {
		t.Fatalf("Compress moved %d bytes of data; survivors must stay put", got)
	}
}

func TestCompressEmptyAndAll(t *testing.T) {
	onRanks(t, []int{3}, func(ctx *core.Context) error {
		x := core.Arange[float64](ctx, 9)
		none := Compress(x, func(v float64) bool { return false })
		if none.GlobalSize() != 0 {
			return fmt.Errorf("none size %d", none.GlobalSize())
		}
		all := Compress(x, func(v float64) bool { return true })
		if all.GlobalSize() != 9 || all.At(8) != 8 {
			return fmt.Errorf("all wrong")
		}
		return nil
	})
}

func TestCompressValidation(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		for name, fn := range map[string]func(){
			"2d": func() { Compress(core.Zeros[float64](ctx, []int{2, 2}), func(float64) bool { return true }) },
			"cyclic": func() {
				Compress(core.Zeros[float64](ctx, []int{8}, core.Options{Kind: distmap.Cyclic}), func(float64) bool { return true })
			},
		} {
			ok := func() (ok bool) {
				defer func() { ok = recover() != nil }()
				fn()
				return false
			}()
			if !ok {
				return fmt.Errorf("%s: expected panic", name)
			}
		}
		return nil
	})
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{StrategyAuto: "auto", StrategyImportLeft: "import-left", StrategyImportRight: "import-right", Strategy(9): "Strategy(9)"} {
		if s.String() != want {
			t.Errorf("%v != %s", s, want)
		}
	}
}

func TestEmptyReductionsPanic(t *testing.T) {
	onRanks(t, []int{1}, func(ctx *core.Context) error {
		x := core.Zeros[float64](ctx, []int{0})
		for _, fn := range []func(){
			func() { Min(x) }, func() { Max(x) }, func() { Mean(x) },
			func() { ArgMin(x) }, func() { ArgMax(x) },
		} {
			ok := func() (ok bool) {
				defer func() { ok = recover() != nil }()
				fn()
				return false
			}()
			if !ok {
				return fmt.Errorf("expected panic on empty reduction")
			}
		}
		return nil
	})
}
