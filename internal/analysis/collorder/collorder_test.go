package collorder_test

import (
	"testing"

	"odinhpc/internal/analysis/analysistest"
	"odinhpc/internal/analysis/collorder"
)

func TestCollorder(t *testing.T) {
	analysistest.Run(t, "testdata", collorder.Analyzer, "a")
}
