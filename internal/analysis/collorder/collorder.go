// Package collorder implements the odinvet analyzer that model-checks
// per-rank collective call *sequences* across sibling branches. Collectives
// synchronize through per-rank sequence numbers (comm.nextColl): two ranks
// that issue the same collectives in different orders stamp them with
// different sequence tags and block forever on messages the peer never
// sends. commsym catches asymmetric *reachability* (a collective only some
// ranks execute); collorder catches the complementary shape where every
// branch executes the same collectives but in permuted order —
// Bcast-then-Gather on one arm, Gather-then-Bcast on another.
//
// The check compares the ordered collective sequence of each arm of an
// if/else chain or switch statement. Two arms with the same multiset of
// collective operations (at least two of them, on the same communicator
// values) but a different order are reported: whatever the branch
// condition, there is no schedule under which a permuted order is useful —
// either the condition is uniform across ranks (hoist the collectives out
// of the branch) or it is not (ranks taking different arms deadlock).
//
// One idiom is exempt: collectives on a sub-communicator obtained from
// Split with a rank-derived color. Such subgroups are disjoint by
// construction — even and odd ranks each talk only to their own subgroup —
// so a per-parity order swap cannot cross-connect them. A subcommunicator
// built with a rank-independent color contains every rank and fully
// participates in the check; that case is commsym's deliberate blind spot
// (it exempts everything Split-shaped) and exactly where sequence checking
// earns its keep.
package collorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"odinhpc/internal/analysis"
	"odinhpc/internal/analysis/commsym"
)

// Analyzer flags sibling branches issuing the same collectives in
// different orders.
var Analyzer = &analysis.Analyzer{
	Name: "collorder",
	Doc: "flags sibling branches that call the same collective comm operations " +
		"in permuted order (cross-rank sequence-number deadlock); hoist the " +
		"collectives out of the branch, or annotate a deliberate exception " +
		"with //lint:allow collorder",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(decl *ast.FuncDecl) {
			c := &checker{
				pass:     pass,
				tainted:  commsym.TaintedObjects(pass, decl),
				reported: map[string]bool{},
			}
			c.exempt = exemptSubcomms(pass, decl, c.tainted)
			c.walk(decl.Body)
		})
	}
	return nil
}

// exemptSubcomms computes the local objects holding sub-communicators built
// by Split with a rank-derived color — directly or via ident copies. Their
// collectives are excluded from sequence comparison (disjoint subgroups).
func exemptSubcomms(pass *analysis.Pass, decl *ast.FuncDecl, tainted map[types.Object]bool) map[types.Object]bool {
	exempt := map[types.Object]bool{}
	fromDisjointSplit := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return analysis.IsMethodOn(analysis.Callee(pass.Info, e), "comm", "Comm", "Split") &&
				len(e.Args) > 0 && commsym.RankDerived(pass, tainted, e.Args[0])
		case *ast.Ident:
			obj := analysis.IdentObj(pass.Info, e)
			return obj != nil && exempt[obj]
		}
		return false
	}
	for i := 0; i < 8; i++ {
		changed := false
		ast.Inspect(decl, func(n ast.Node) bool {
			s, ok := n.(*ast.AssignStmt)
			if !ok || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if !fromDisjointSplit(s.Rhs[i]) {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					obj := analysis.IdentObj(pass.Info, id)
					if obj != nil && !exempt[obj] {
						exempt[obj] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return exempt
}

// collCall is one collective invocation in an arm's sequence: the
// reportable collective name, the communicator it runs on (nil when the
// communicator expression is not a simple identifier), and the call site.
type collCall struct {
	name string
	comm types.Object
	pos  token.Pos
}

// key identifies a sequence element for order comparison: same collective
// on the same communicator value.
func (c collCall) key() string {
	if c.comm == nil {
		return c.name
	}
	return c.comm.Name() + "." + c.name
}

type checker struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
	exempt  map[types.Object]bool
	// reported dedupes diagnostics: with three or more arms, two sibling
	// pairs can indict the same call with the same message.
	reported map[string]bool
}

// walk descends the whole function body, checking every if/else chain and
// switch statement it meets (at any nesting depth). An if/else-if chain is
// checked once, from its head; the chain's inner links are remembered and
// skipped when ast.Inspect reaches them on its own.
func (c *checker) walk(n ast.Node) {
	elseLinks := map[*ast.IfStmt]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if elseLinks[s] {
				return true
			}
			for link := s; ; {
				next, ok := link.Else.(*ast.IfStmt)
				if !ok {
					break
				}
				elseLinks[next] = true
				link = next
			}
			c.checkArms(flattenChain(s))
		case *ast.SwitchStmt:
			var arms []ast.Node
			for _, cc := range s.Body.List {
				arms = append(arms, cc)
			}
			c.checkArms(arms)
		}
		return true
	})
}

// flattenChain expands if/else-if/else into its arm list.
func flattenChain(ifs *ast.IfStmt) []ast.Node {
	arms := []ast.Node{ifs.Body}
	switch e := ifs.Else.(type) {
	case *ast.BlockStmt:
		arms = append(arms, e)
	case *ast.IfStmt:
		arms = append(arms, flattenChain(e)...)
	}
	return arms
}

// checkArms compares every pair of sibling arms and reports permuted
// collective sequences.
func (c *checker) checkArms(arms []ast.Node) {
	if len(arms) < 2 {
		return
	}
	seqs := make([][]collCall, len(arms))
	for i, arm := range arms {
		seqs[i] = c.sequence(arm)
	}
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			c.comparePair(seqs[i], seqs[j])
		}
	}
}

// sequence extracts an arm's ordered collective calls, skipping exempt
// sub-communicators and function literals (which run where they are called,
// not where they are written). ast.Inspect visits calls in source order,
// which is the execution order of straight-line code; nested branches
// inside the arm contribute their own calls in syntactic order and are
// additionally checked on their own when walk reaches them.
func (c *checker) sequence(arm ast.Node) []collCall {
	var seq []collCall
	ast.Inspect(arm, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := commsym.CollectiveName(c.pass, call)
		if name == "" {
			return true
		}
		obj := c.commObject(call)
		if obj != nil && c.exempt[obj] {
			return true
		}
		seq = append(seq, collCall{name: name, comm: obj, pos: call.Pos()})
		return true
	})
	return seq
}

// commObject resolves the communicator a collective call operates on: the
// receiver for methods, the first argument for package-level collectives.
func (c *checker) commObject(call *ast.CallExpr) types.Object {
	return analysis.CommValueObject(c.pass.Info, call)
}

// comparePair reports when two arms hold the same collectives in different
// orders. Arms with different multisets are left to commsym's symmetry
// model; a single shared collective has no order to disagree on.
func (c *checker) comparePair(a, b []collCall) {
	if len(a) != len(b) || len(a) < 2 || !sameMultiset(a, b) || sameOrder(a, b) {
		return
	}
	// First position where the orders diverge anchors the report.
	div := 0
	for a[div].key() == b[div].key() {
		div++
	}
	msg := fmt.Sprintf(
		"collective sequence diverges across sibling branches: this branch runs %s while a sibling runs %s; "+
			"ranks split across these branches disagree on collective sequence numbers and deadlock",
		orderString(b), orderString(a))
	dedup := fmt.Sprintf("%d:%s", b[div].pos, msg)
	if c.reported[dedup] {
		return
	}
	c.reported[dedup] = true
	c.pass.Reportf(b[div].pos, "%s", msg)
}

func sameOrder(a, b []collCall) bool {
	for i := range a {
		if a[i].key() != b[i].key() {
			return false
		}
	}
	return true
}

func sameMultiset(a, b []collCall) bool {
	ka, kb := keys(a), keys(b)
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func keys(seq []collCall) []string {
	out := make([]string, len(seq))
	for i, c := range seq {
		out[i] = c.key()
	}
	return out
}

func orderString(seq []collCall) string {
	names := make([]string, len(seq))
	for i, c := range seq {
		names[i] = c.name
	}
	return strings.Join(names, " then ")
}
