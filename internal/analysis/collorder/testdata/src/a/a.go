// Package a exercises collorder: sibling branches issuing the same
// collectives in permuted order are flagged; identical orders, different
// collective sets, disjoint-subgroup communicators, function literals, and
// //lint:allow exceptions stay quiet.
package a

import (
	"comm"
)

func permutedIfElse(c *comm.Comm, buf []float64) {
	if c.Rank()%2 == 0 {
		comm.Bcast(c, 0, buf)
		comm.Gather(c, 0, buf)
	} else {
		comm.Gather(c, 0, buf) // want `collective sequence diverges`
		comm.Bcast(c, 0, buf)
	}
}

func sameOrderBothArms(c *comm.Comm, buf []float64) {
	// Permutation-free branches are commsym's business, not collorder's.
	if c.Rank() == 0 {
		comm.Bcast(c, 0, buf)
		comm.Gather(c, 0, buf)
	} else {
		comm.Bcast(c, 0, buf)
		comm.Gather(c, 0, buf)
	}
}

func differentMultisets(c *comm.Comm, buf []float64) {
	// Different collective sets are asymmetric reachability (commsym), not
	// a permutation; stay quiet.
	if c.Rank() == 0 {
		comm.Bcast(c, 0, buf)
		comm.Gather(c, 0, buf)
	} else {
		c.Barrier()
		comm.Bcast(c, 0, buf)
	}
}

func singleCollectivePerArm(c *comm.Comm, buf []float64) {
	// One call per arm has no order to disagree on.
	if c.Rank() == 0 {
		comm.Bcast(c, 0, buf)
	} else {
		comm.Gather(c, 0, buf)
	}
}

func disjointSubgroups(c *comm.Comm, buf []float64) {
	// Split with a rank-derived color builds disjoint subgroups: even and
	// odd ranks each run their own order against their own peers. Exempt.
	sub := c.Split(c.Rank()%2, 0)
	if c.Rank()%2 == 0 {
		comm.Bcast(sub, 0, buf)
		comm.Gather(sub, 0, buf)
	} else {
		comm.Gather(sub, 0, buf)
		comm.Bcast(sub, 0, buf)
	}
}

func uniformColorSubcomm(c *comm.Comm, buf []float64) {
	// A rank-independent color puts every rank in one subgroup, so a
	// permuted order deadlocks it like any communicator — this is the case
	// commsym's blanket Split exemption cannot see.
	sub := c.Split(1, 0)
	if c.Rank()%2 == 0 {
		comm.Bcast(sub, 0, buf)
		comm.Gather(sub, 0, buf)
	} else {
		comm.Gather(sub, 0, buf) // want `collective sequence diverges`
		comm.Bcast(sub, 0, buf)
	}
}

func permutedSwitch(c *comm.Comm, buf []float64) {
	switch c.Rank() % 3 {
	case 0:
		c.Barrier()
		comm.Bcast(c, 0, buf)
	case 1:
		comm.Bcast(c, 0, buf) // want `collective sequence diverges`
		c.Barrier()
	}
}

func chainThirdArmPermuted(c *comm.Comm, buf []float64, mode int) {
	if mode == 0 {
		comm.Bcast(c, 0, buf)
		c.Barrier()
	} else if mode == 1 {
		comm.Bcast(c, 0, buf)
		c.Barrier()
	} else {
		c.Barrier() // want `collective sequence diverges`
		comm.Bcast(c, 0, buf)
	}
}

func funcLitNotExecutedHere(c *comm.Comm, buf []float64) []func() {
	// Function literals run where they are called; defining permuted
	// closures is not a permuted execution.
	var fns []func()
	if c.Rank() == 0 {
		fns = append(fns, func() { comm.Bcast(c, 0, buf) }, func() { comm.Gather(c, 0, buf) })
	} else {
		fns = append(fns, func() { comm.Gather(c, 0, buf) }, func() { comm.Bcast(c, 0, buf) })
	}
	return fns
}

func allowed(c *comm.Comm, buf []float64) {
	if c.Rank()%2 == 0 {
		comm.Bcast(c, 0, buf)
		comm.Gather(c, 0, buf)
	} else {
		comm.Gather(c, 0, buf) //lint:allow collorder deliberate permutation under test
		comm.Bcast(c, 0, buf)
	}
}

func distinctComms(c, d *comm.Comm, buf []float64) {
	// Cross-communicator inversion: each communicator's own subsequence is
	// consistent, but MPI (and this fabric) require collectives on
	// different communicators in the same order everywhere — a rank blocked
	// inside c's Bcast never enters d's, and vice versa.
	if c.Rank() == 0 {
		comm.Bcast(c, 0, buf)
		comm.Bcast(d, 0, buf)
	} else {
		comm.Bcast(d, 0, buf) // want `collective sequence diverges`
		comm.Bcast(c, 0, buf)
	}
}
