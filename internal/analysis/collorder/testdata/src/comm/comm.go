// Package comm is a miniature mirror of the real comm fabric: just enough
// surface for commsym to recognize ranks, collectives, subcommunicators,
// and point-to-point calls. The analyzer matches packages by path suffix,
// so this fake exercises the same code paths as the real tree.
package comm

// Op mirrors the reduction operator enum.
type Op int

// OpSum is the only operator the tests need.
const OpSum Op = 0

// AnySource matches any sending rank.
const AnySource = -1

// Comm is the fake communicator.
type Comm struct {
	rank, size int
}

// Rank returns this rank's index — the taint source.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Transport names the wire implementation — identical on every rank, so
// unlike Rank it is not a taint source.
func (c *Comm) Transport() string { return "inproc" }

// Barrier is a collective.
func (c *Comm) Barrier() {}

// Split is a collective returning a subcommunicator.
func (c *Comm) Split(color, key int) *Comm { return c }

// Send is point-to-point, not a collective.
func (c *Comm) Send(dst, tag int, data any) {}

// Recv is point-to-point, not a collective.
func (c *Comm) Recv(src, tag int) any { return nil }

// Bcast is a package-level collective (first param *Comm).
func Bcast(c *Comm, root int, buf []float64) {}

// AllreduceScalar is a package-level collective.
func AllreduceScalar(c *Comm, v int, op Op) int { return v }

// Gather is a package-level collective.
func Gather(c *Comm, root int, buf []float64) [][]float64 { return nil }
