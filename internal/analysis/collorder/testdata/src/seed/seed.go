// Package seed is the collorder true-positive check wired into
// scripts/verify.sh: unlike the sibling testdata packages it imports the
// real comm fabric, and it carries no collorder suppressions, so running
// odinvet over this directory — standalone or through `go vet -vettool` —
// must fail with a collorder finding. Living under testdata keeps it out of
// every `./...` walk; verify.sh targets the directory explicitly.
package seed

import "odinhpc/internal/comm"

// PermutedCollectives mirrors the stress corpus's permuted-collectives
// kernel (the bug odinstress minimizes dynamically) with the collorder
// suppressions stripped: even and odd ranks issue the same two collectives
// in opposite orders. The commsym allows keep this a pure collorder signal.
func PermutedCollectives(c *comm.Comm, buf, vals []float64) {
	if c.Rank()%2 == 0 {
		comm.Bcast(c, 0, buf)   //lint:allow commsym True-positive for the collorder tier; only commsym is suppressed
		comm.Gather(c, 0, vals) //lint:allow commsym True-positive for the collorder tier; only commsym is suppressed
	} else {
		comm.Gather(c, 0, vals) //lint:allow commsym True-positive for the collorder tier; only commsym is suppressed
		comm.Bcast(c, 0, buf)   //lint:allow commsym True-positive for the collorder tier; only commsym is suppressed
	}
}
