// Package tagregistry is the single source of truth for the comm fabric's
// reserved message-tag ranges. The tagcheck analyzer (internal/analysis/
// tagcheck) reads it to flag user tags that collide with framework-internal
// traffic; the ranges themselves are written in terms of the owning
// packages' exported constants, so the registry cannot drift from the code
// it protects — recompiling odinvet re-reads the reservations from source.
//
// Reserving a new tag or range means adding an entry here (referencing a
// named constant exported by the owning package) in the same change that
// introduces the traffic. tagcheck then enforces the reservation everywhere.
package tagregistry

import (
	"math"

	"odinhpc/internal/core"
	"odinhpc/internal/slicing"
)

// Range is one reserved span of message tags. Owner is the short name of
// the package that owns the reservation; constants declared in the owning
// package (and uses inside it) are exempt from collision findings, since
// that is where the reserved traffic legitimately originates.
type Range struct {
	Name   string // human-readable label for diagnostics
	Lo, Hi int64  // inclusive bounds
	Owner  string // short package name, e.g. "comm"
}

// Contains reports whether tag falls inside the range.
func (r Range) Contains(tag int64) bool { return r.Lo <= tag && tag <= r.Hi }

// Reserved returns the reserved tag ranges of the framework:
//
//   - Every negative tag belongs to the comm package. Collectives stamp
//     their point-to-point rounds with strongly negative tags (see
//     collTag in internal/comm/collectives.go), and the AnySource/AnyTag
//     wildcards are -1; a user tag below zero can be swallowed by a
//     concurrent collective or alias the wildcard.
//   - core.CtrlTag carries ODIN's master-to-worker control descriptors.
//   - slicing.HaloTag carries ShiftDiff's boundary exchange; experiment
//     E13 filters trace captures by this tag, so halo traffic must stay
//     alone on it.
func Reserved() []Range {
	return []Range{
		{Name: "comm collective-internal / wildcard (negative tags)", Lo: math.MinInt64, Hi: -1, Owner: "comm"},
		{Name: "core control plane (core.CtrlTag)", Lo: core.CtrlTag, Hi: core.CtrlTag, Owner: "core"},
		{Name: "slicing halo exchange (slicing.HaloTag)", Lo: slicing.HaloTag, Hi: slicing.HaloTag, Owner: "slicing"},
	}
}

// Lookup returns the reserved range containing tag, if any.
func Lookup(tag int64) (Range, bool) {
	for _, r := range Reserved() {
		if r.Contains(tag) {
			return r, true
		}
	}
	return Range{}, false
}
