package tagregistry_test

import (
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"odinhpc/internal/analysis"
	"odinhpc/internal/analysis/tagregistry"
)

// tagOwners are the packages whose exported *Tag constants must appear in
// the registry. A new reserved tag is introduced by exporting a FooTag
// constant in the owning package AND registering its range here in the
// same change; this test fails when the first half lands without the
// second.
var tagOwners = []struct {
	dir   string // relative to the module root
	owner string // Range.Owner short name
}{
	{"internal/comm", "comm"},
	{"internal/core", "core"},
	{"internal/slicing", "slicing"},
}

// TestRegistryCoversExportedTagConstants walks the tag-owning packages for
// exported package-level integer constants named *Tag and checks that each
// value sits inside a Reserved() range owned by that package. Drift in
// either direction is an error: an unregistered constant means tagcheck
// cannot protect the new traffic, and a registered range whose owning
// package no longer declares a matching constant means the registry
// references dead traffic.
func TestRegistryCoversExportedTagConstants(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader("odinhpc", root, "", false)

	owners := map[string]bool{}
	for _, o := range tagOwners {
		owners[o.owner] = true
	}
	covered := map[string]bool{} // owners with at least one matching constant

	for _, o := range tagOwners {
		pkgs, err := loader.LoadDir(filepath.Join(root, o.dir))
		if err != nil {
			t.Fatalf("load %s: %v", o.dir, err)
		}
		for _, pkg := range pkgs {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				cst, ok := scope.Lookup(name).(*types.Const)
				if !ok || !cst.Exported() || !strings.HasSuffix(name, "Tag") {
					continue
				}
				val := cst.Val()
				if val.Kind() != constant.Int {
					continue
				}
				tag, exact := constant.Int64Val(val)
				if !exact {
					t.Errorf("%s.%s does not fit in int64; message tags are int64", o.owner, name)
					continue
				}
				covered[o.owner] = true
				r, ok := tagregistry.Lookup(tag)
				if !ok {
					t.Errorf("%s.%s = %d is not inside any reserved range; add it to tagregistry.Reserved in the change that introduces the traffic", o.owner, name, tag)
					continue
				}
				if r.Owner != o.owner {
					t.Errorf("%s.%s = %d falls in range %q owned by %q; tags must live in a range their own package owns", o.owner, name, tag, r.Name, r.Owner)
				}
			}
		}
	}

	// The reverse direction: every registered owner still declares at least
	// one exported *Tag constant (the comm negative range is anchored by
	// AnyTag/AnySource).
	for _, r := range tagregistry.Reserved() {
		if !owners[r.Owner] {
			t.Errorf("reserved range %q has owner %q, which is not in this test's walk list; extend tagOwners", r.Name, r.Owner)
			continue
		}
		if !covered[r.Owner] {
			t.Errorf("reserved range %q is owned by %q, but that package exports no *Tag constant anymore; retire the reservation or restore the constant", r.Name, r.Owner)
		}
	}
}
