package planreuse_test

import (
	"testing"

	"odinhpc/internal/analysis/analysistest"
	"odinhpc/internal/analysis/planreuse"
)

func TestPlanreuse(t *testing.T) {
	analysistest.Run(t, "testdata", planreuse.Analyzer, "a", "comm")
}
