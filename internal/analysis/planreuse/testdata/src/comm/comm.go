// Package comm mirrors the transport ownership contract planreuse guards:
// a tcp connection's outbox and write buffer belong to exactly one writer
// goroutine (and its inbound stream to exactly one reader). The sanctioned
// shape — spawning the loop that owns the connection from then on — carries
// a lint:allow at the launch site, exactly like the real transport's
// tcpEndpoint.start; ad-hoc goroutines pushing frames on a shared
// connection are flagged.
package comm

// tcpConn carries one peer connection: a write buffer reused across frames
// and an outbox drained by a single writer goroutine.
type tcpConn struct {
	wbuf   []byte
	outbox [][]byte
}

func newTCPConn() *tcpConn { return &tcpConn{} }

// push appends one encoded frame to the outbox.
func (tc *tcpConn) push(buf []byte) { tc.outbox = append(tc.outbox, buf) }

// writeLoop drains the outbox; it must be the connection's only writer.
func (tc *tcpConn) writeLoop() { tc.wbuf = tc.wbuf[:0] }

// readLoop demultiplexes inbound frames; it must be the connection's only
// reader.
func (tc *tcpConn) readLoop() {}

// start hands each connection to its owning reader/writer pair — the
// per-peer ownership handoff the transport is built on. The analyzer cannot
// prove the exclusivity, so the launch documents it with an allow, same as
// the real transport.
func start(conns []*tcpConn) {
	for _, tc := range conns {
		go tc.readLoop()  //lint:allow planreuse this goroutine is the conn's sole reader from here on
		go tc.writeLoop() //lint:allow planreuse this goroutine is the conn's sole writer from here on
	}
}

// sharedWriter fans frame pushes out over goroutines that all share one
// connection without a lock: the anti-shape the per-peer ownership rule
// exists to reject.
func sharedWriter(tc *tcpConn, frames [][]byte) {
	for _, f := range frames {
		go func(b []byte) {
			tc.push(b) // want `goroutine-shared`
		}(f)
	}
	go tc.writeLoop() // want `goroutine-shared`

	tc.push(nil) // spawning goroutine's own use: fine

	go func() {
		local := newTCPConn()
		local.push(nil) // goroutine-local connection: fine
		local.writeLoop()
	}()
}
