// Package a exercises planreuse: methods of types with per-instance owned
// scratch (CrsMatrix) invoked from goroutines on shared values are flagged;
// shared *plans* (GatherPlan, Import) are the sanctioned serving pattern and
// must stay quiet, as do same-goroutine use, goroutine-local instances, and
// //lint:allow exceptions.
package a

import "tpetra"

func sharedMatrix(a *tpetra.CrsMatrix, x, y []float64) {
	go func() {
		a.Apply(x, y) // want `goroutine-shared`
	}()
	go a.Apply(x, y) // want `goroutine-shared`
	// Passing the matrix as a parameter still shares its Apply scratch.
	go func(m *tpetra.CrsMatrix) {
		m.Apply(x, y) // want `goroutine-shared`
	}(a)

	a.Apply(x, y) // spawning goroutine's own use: fine

	go func() {
		local := tpetra.NewMatrix()
		local.Apply(x, y) // goroutine-local matrix: fine
	}()

	go func() {
		//lint:allow planreuse applies serialized by the group's job loop
		a.Apply(x, y)
	}()
}

// sharedPlans is the negative control for the relaxed contract: one compiled
// plan applied from many goroutines is the cross-request cache odinserve
// relies on — concurrency-safe since plan application moved to pooled
// per-call scratch — and must not be flagged.
func sharedPlans(plan *tpetra.GatherPlan, im *tpetra.Import, x []float64) {
	go func() {
		plan.Gather(x) // pooled per-call scratch: fine
	}()
	go plan.Gather(x) // fine
	go func() {
		im.Apply(x) // fine
	}()
	go func(p *tpetra.GatherPlan) {
		p.Gather(x) // fine
	}(plan)
}
