// Package a exercises planreuse: single-threaded plan methods invoked from
// goroutines on shared values are flagged; same-goroutine use,
// goroutine-local plans, and //lint:allow exceptions stay quiet.
package a

import "tpetra"

func shared(plan *tpetra.GatherPlan, im *tpetra.Import, x []float64) {
	go func() {
		plan.Gather(x) // want `goroutine-shared`
	}()
	go plan.Gather(x) // want `goroutine-shared`
	go func() {
		im.Apply(x) // want `goroutine-shared`
	}()
	// Passing the plan as a parameter still shares its pack buffers.
	go func(p *tpetra.GatherPlan) {
		p.Gather(x) // want `goroutine-shared`
	}(plan)

	plan.Gather(x) // spawning goroutine's own use: fine

	go func() {
		local := tpetra.NewPlan()
		local.Gather(x) // goroutine-local plan: fine
	}()

	go func() {
		//lint:allow planreuse applies serialized by the worker semaphore
		plan.Gather(x)
	}()
}
