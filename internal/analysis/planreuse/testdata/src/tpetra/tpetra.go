// Package tpetra mirrors the concurrency contracts planreuse guards. The
// plan types (GatherPlan, Import) pack into pooled per-call scratch, so
// sharing them across goroutines is sanctioned; CrsMatrix owns its Apply
// scratch (ghost buffer + full-column vector), refilled in place per Apply,
// so a matrix shared between goroutines races on it.
package tpetra

// GatherPlan is immutable after construction; Gather draws pack buffers
// from a pool, so concurrent applications are safe.
type GatherPlan struct{ sendIdx [][]int }

// NewPlan builds a fresh plan.
func NewPlan() *GatherPlan { return &GatherPlan{} }

// Gather applies the plan with per-call scratch.
func (p *GatherPlan) Gather(x []float64) []float64 { return x }

// Import wraps a GatherPlan and shares its (safe) application contract.
type Import struct{ plan *GatherPlan }

// NewImport builds an Import.
func NewImport() *Import { return &Import{plan: NewPlan()} }

// Apply runs the wrapped plan.
func (im *Import) Apply(x []float64) []float64 { return im.plan.Gather(x) }

// CrsMatrix owns its Apply scratch, refilled in place by every Apply —
// single-threaded per instance.
type CrsMatrix struct {
	plan     *GatherPlan
	ghostBuf []float64
	xFull    []float64
}

// NewMatrix builds an assembled matrix.
func NewMatrix() *CrsMatrix { return &CrsMatrix{plan: NewPlan()} }

// Apply computes y = A x through the matrix-owned scratch.
func (a *CrsMatrix) Apply(x, y []float64) {
	copy(a.xFull, a.plan.Gather(x))
	copy(y, a.xFull)
}
