// Package tpetra mirrors the single-threaded plan types planreuse guards:
// a plan's pack buffers are allocated once and reused across applies, so a
// plan shared between goroutines races on them.
package tpetra

// GatherPlan reuses its pack buffer across applies.
type GatherPlan struct{ buf []float64 }

// NewPlan builds a fresh plan.
func NewPlan() *GatherPlan { return &GatherPlan{} }

// Gather applies the plan.
func (p *GatherPlan) Gather(x []float64) []float64 { return p.buf }

// Import wraps a GatherPlan and inherits its constraint.
type Import struct{ plan *GatherPlan }

// NewImport builds an Import.
func NewImport() *Import { return &Import{plan: NewPlan()} }

// Apply runs the wrapped plan.
func (im *Import) Apply(x []float64) []float64 { return im.plan.Gather(x) }
