// Package planreuse implements the odinvet analyzer that flags concurrent
// use of types documented single-threaded. The registry tracks the
// codebase's contracts: since plan application went concurrency-safe
// (GatherPlan/Import pack into pooled per-call scratch so compiled plans are
// a legitimate cross-request cache), the plan types themselves are no longer
// flagged. What remains genuinely single-threaded is per-instance owned
// scratch — tpetra.CrsMatrix refills its ghost/xFull buffers on every Apply
// — and per-connection stream ownership in the tcp transport. The race
// detector only sees the interleaving that actually runs; this analyzer
// rejects the shape — a shared instance's method called from inside a
// goroutine — at compile time.
package planreuse

import (
	"go/ast"
	"go/token"

	"odinhpc/internal/analysis"
)

// singleThreaded registers the (package, type) pairs whose methods must not
// be called on a value shared across goroutines. Kept in the analyzer (not
// in a satellite registry) because each entry must cite the documented
// contract it enforces.
var singleThreaded = []struct {
	pkg, typ, contract string
}{
	// GatherPlan and Import are deliberately absent: their application packs
	// into pooled per-call scratch, so a shared plan applied from many
	// goroutines (each on its own congruent communicator) is the supported
	// serving pattern, not a bug.
	//
	// "ghostBuf and xFull are matrix-owned Apply scratch, refilled in place
	// by every Apply" — the matrix, unlike the plan underneath it, is
	// single-threaded per instance.
	{"tpetra", "CrsMatrix", "Apply refills the matrix-owned ghost/xFull scratch"},
	// "push hands the frame to the connection's writer goroutine" — the tcp
	// transport gives each peer connection exactly one reader and one writer
	// goroutine that own its streams and reused buffers. Those two sanctioned
	// launches carry lint:allow at the spawn site (tcpEndpoint.start); any
	// other goroutine touching a shared connection is the unlocked-shared-
	// writer shape this entry rejects.
	{"comm", "tcpConn", "each connection's streams and buffers belong to one reader and one writer goroutine"},
}

// Analyzer flags single-threaded plan types used from goroutines.
var Analyzer = &analysis.Analyzer{
	Name: "planreuse",
	Doc: "methods of types with per-instance owned scratch (tpetra.CrsMatrix, " +
		"the tcp transport's connections) must not be called on values shared " +
		"into goroutines; shareable compiled plans (GatherPlan, Import) are " +
		"exempt — their application uses pooled per-call scratch",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				// `go plan.Gather(...)` — method value launched directly.
				checkCall(pass, g.Call, g.Pos(), nil)
				return true
			}
			checkGoroutineBody(pass, lit)
			return true
		})
	}
	return nil
}

// checkGoroutineBody flags single-threaded method calls inside the
// goroutine whose receiver is declared outside the literal (captured, hence
// potentially shared with the spawner and sibling goroutines). Receivers
// built inside the goroutine are goroutine-local and fine.
func checkGoroutineBody(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkCall(pass, call, call.Pos(), func(recv ast.Expr) bool {
			id, ok := ast.Unparen(recv).(*ast.Ident)
			if !ok {
				return false // field access, index, ... — assume shared
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return false
			}
			// Declared inside the literal's body means goroutine-local.
			// Parameters do NOT count: `go func(p *GatherPlan) {...}(plan)`
			// hands the spawner's plan (or a shallow copy sharing its
			// buffers) into the goroutine.
			return obj.Pos() >= lit.Body.Pos() && obj.Pos() <= lit.Body.End()
		})
		return true
	})
}

// checkCall reports the call if it invokes a method of a registered
// single-threaded type and isLocal (when provided) does not prove the
// receiver goroutine-local.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, pos token.Pos, isLocal func(ast.Expr) bool) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil {
		return
	}
	recvType := analysis.RecvTypeName(fn)
	if recvType == "" {
		return
	}
	for _, st := range singleThreaded {
		if recvType != st.typ || !analysis.ObjPkgIs(fn, st.pkg) {
			continue
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isLocal != nil && isLocal(sel.X) {
			return
		}
		pass.Reportf(pos,
			"%s.%s.%s called on a goroutine-shared value; %s is single-threaded (%s) — build one per goroutine or serialize the calls",
			st.pkg, st.typ, fn.Name(), st.typ, st.contract)
		return
	}
}
