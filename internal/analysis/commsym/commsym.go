// Package commsym implements the odinvet analyzer that flags collective
// operations reachable only under rank-dependent control flow — the classic
// SPMD divergence deadlock. Collectives are symmetric by contract (every
// rank of the communicator must call them in the same order, see
// comm.nextColl); a Bcast guarded by `if c.Rank() == 0` leaves the other
// ranks blocked inside the collective forever. The chaos harness can only
// catch the hang dynamically and per-seed; this analyzer rejects the shape
// at compile time.
//
// Two idioms are deliberately exempt:
//
//   - Error-abort returns. `if <rank-dep> { return fmt.Errorf(...) }` is a
//     rank declaring failure, not steering around a collective; code after
//     it is the happy path, which every non-failing rank reaches. Only a
//     control return — bare, or returning nil/literal constants — counts
//     as divergence for the early-return rule.
//   - Subcommunicators. A collective on a value obtained from
//     (*Comm).Split is exempt from rank-guard checks: Split's color
//     argument is exactly how intentional asymmetry is expressed, and a
//     subgroup collective must only be called by the subgroup's members.
package commsym

import (
	"go/ast"
	"go/types"

	"odinhpc/internal/analysis"
)

// Analyzer flags collective calls guarded by rank-dependent conditions.
var Analyzer = &analysis.Analyzer{
	Name: "commsym",
	Doc: "flags collective comm operations that are only reachable under a " +
		"rank-dependent condition (SPMD divergence deadlock); hoist the " +
		"collective out of the conditional, restructure with point-to-point " +
		"messages, or annotate a deliberate exception with //lint:allow commsym",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(decl *ast.FuncDecl) {
			w := &walker{
				pass:     pass,
				tainted:  TaintedObjects(pass, decl),
				subcomms: SplitObjects(pass, decl),
			}
			w.stmts(decl.Body.List, 0)
		})
	}
	return nil
}

// SplitObjects computes the set of local objects within scope holding
// communicators obtained from (*Comm).Split — directly or via ident copies.
// commsym exempts collectives on these from rank-guard checks (see the
// package comment); p2pmatch declines to certify point-to-point traffic on
// them (sub-communicator ranks are renumbered).
func SplitObjects(pass *analysis.Pass, scope ast.Node) map[types.Object]bool {
	subs := map[types.Object]bool{}
	fromSplit := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return analysis.IsMethodOn(analysis.Callee(pass.Info, e), "comm", "Comm", "Split")
		case *ast.Ident:
			obj := analysis.IdentObj(pass.Info, e)
			return obj != nil && subs[obj]
		}
		return false
	}
	for i := 0; i < 8; i++ {
		changed := false
		ast.Inspect(scope, func(n ast.Node) bool {
			s, ok := n.(*ast.AssignStmt)
			if !ok || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if !fromSplit(s.Rhs[i]) {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					obj := analysis.IdentObj(pass.Info, id)
					if obj != nil && !subs[obj] {
						subs[obj] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return subs
}

// TaintedObjects computes the set of local objects carrying rank-derived
// values within scope (a function declaration or function literal):
// anything assigned from an expression whose value derives from comm.Rank()
// (or the rank field inside package comm) through operators, conversions,
// and ident copies. Taint deliberately does not flow through ordinary
// function calls — c.Split(c.Rank()%2, 0) consumes a rank but returns a
// communicator, not a rank value.
func TaintedObjects(pass *analysis.Pass, scope ast.Node) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	// Iterate to a fixpoint so chains like r := c.Rank(); isRoot := r == 0
	// resolve regardless of declaration order quirks. The nesting depth of
	// real code bounds the iteration count; cap it for safety.
	for i := 0; i < 8; i++ {
		changed := false
		ast.Inspect(scope, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					var rhs ast.Expr
					if len(s.Rhs) == len(s.Lhs) {
						rhs = s.Rhs[i]
					} else if len(s.Rhs) == 1 {
						rhs = s.Rhs[0]
					}
					if rhs == nil || !RankDerived(pass, tainted, rhs) {
						continue
					}
					if id, ok := lhs.(*ast.Ident); ok {
						obj := pass.Info.Defs[id]
						if obj == nil {
							obj = pass.Info.Uses[id]
						}
						if obj != nil && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range s.Names {
					var rhs ast.Expr
					if len(s.Values) == len(s.Names) {
						rhs = s.Values[i]
					} else if len(s.Values) == 1 {
						rhs = s.Values[0]
					}
					if rhs == nil || !RankDerived(pass, tainted, rhs) {
						continue
					}
					if obj := pass.Info.Defs[id]; obj != nil && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return tainted
}

// RankDerived reports whether the value of e derives from this rank's index.
func RankDerived(pass *analysis.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			obj = pass.Info.Defs[e]
		}
		return obj != nil && tainted[obj]
	case *ast.ParenExpr:
		return RankDerived(pass, tainted, e.X)
	case *ast.UnaryExpr:
		return RankDerived(pass, tainted, e.X)
	case *ast.BinaryExpr:
		return RankDerived(pass, tainted, e.X) || RankDerived(pass, tainted, e.Y)
	case *ast.CallExpr:
		if isRankCall(pass, e) {
			return true
		}
		// Conversions propagate the converted value's taint; other calls
		// launder it (see TaintedObjects).
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return RankDerived(pass, tainted, e.Args[0])
		}
		return false
	case *ast.SelectorExpr:
		// Inside package comm itself, c.rank is the rank source.
		if e.Sel.Name == "rank" {
			if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if analysis.TypeIs(sel.Recv(), "comm", "Comm") {
					return true
				}
			}
		}
		return false
	}
	return false
}

// isRankCall reports whether call is comm.(*Comm).Rank().
func isRankCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.Info, call)
	return analysis.IsMethodOn(fn, "comm", "Comm", "Rank")
}

// CollectiveName returns the reportable name of the collective invoked by
// call ("comm.Bcast", "(*comm.Comm).Barrier"), or "" if the call is not a
// collective. Collectives are the methods Barrier and Split on comm.Comm
// plus every exported package-level comm function whose first parameter is
// a *comm.Comm — the shape of Bcast, Reduce, Allreduce, Gather, Allgather,
// Scatter, Alltoall, Scan and their Scalar variants, which keeps the list
// in sync with the comm API instead of hardcoding names.
func CollectiveName(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || !analysis.ObjPkgIs(fn, "comm") || !fn.Exported() {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		if analysis.TypeIs(recv.Type(), "comm", "Comm") &&
			(fn.Name() == "Barrier" || fn.Name() == "Split") {
			return "(*comm.Comm)." + fn.Name()
		}
		return ""
	}
	if sig.Params().Len() == 0 {
		return ""
	}
	if !analysis.TypeIs(sig.Params().At(0).Type(), "comm", "Comm") {
		return ""
	}
	return "comm." + fn.Name()
}

// walker performs the reachability scan. depth counts enclosing
// rank-dependent conditions; a collective call at depth > 0 is flagged.
type walker struct {
	pass     *analysis.Pass
	tainted  map[types.Object]bool
	subcomms map[types.Object]bool
}

func (w *walker) rankDep(e ast.Expr) bool {
	return e != nil && RankDerived(w.pass, w.tainted, e)
}

// stmts walks a statement list. Beyond descending into rank-guarded
// branches, it models the early-return divergence shape: once an
// `if <rank-dep> { ...; return }` statement has been seen, everything after
// it in the same list is only reachable on the ranks that did not return,
// so the remainder of the list is walked guarded.
func (w *walker) stmts(list []ast.Stmt, depth int) {
	for i, s := range list {
		w.stmt(s, depth)
		if depth == 0 {
			if ifs, ok := s.(*ast.IfStmt); ok && w.rankDep(ifs.Cond) && divergesByReturn(ifs) {
				w.stmts(list[i+1:], depth+1)
				return
			}
		}
	}
}

// divergesByReturn reports whether any arm of the if-chain ends in a
// control return, making the code after the chain rank-dependent. Only a
// bare return or one returning nil/literal constants counts: returning a
// constructed or propagated error (`return fmt.Errorf(...)`, `return err`)
// is an abort path — the rank is declaring failure, not steering around the
// collective — and aborts are outside the symmetry contract.
func divergesByReturn(ifs *ast.IfStmt) bool {
	if blockReturns(ifs.Body) {
		return true
	}
	switch e := ifs.Else.(type) {
	case *ast.BlockStmt:
		return blockReturns(e)
	case *ast.IfStmt:
		return divergesByReturn(e)
	}
	return false
}

func blockReturns(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	ret, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok && controlReturn(ret)
}

// controlReturn reports whether ret is a control return rather than an
// error-abort: bare, or returning only nil/true/false and basic literals.
func controlReturn(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		switch r := ast.Unparen(r).(type) {
		case *ast.BasicLit:
		case *ast.Ident:
			if r.Name != "nil" && r.Name != "true" && r.Name != "false" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (w *walker) stmt(s ast.Stmt, depth int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List, depth)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, depth)
		}
		d := depth
		if w.rankDep(s.Cond) {
			d++
		} else {
			w.exprs(depth, s.Cond)
		}
		w.stmts(s.Body.List, d)
		if s.Else != nil {
			w.stmt(s.Else, d)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, depth)
		}
		d := depth
		if w.rankDep(s.Tag) {
			d++
		}
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CaseClause)
			cd := d
			for _, e := range cc.List {
				if w.rankDep(e) {
					cd = d + 1
				}
			}
			for _, st := range cc.Body {
				w.stmt(st, cd)
			}
		}
	case *ast.TypeSwitchStmt:
		ast.Inspect(s, func(n ast.Node) bool { w.checkNode(n, depth); return true })
	case *ast.SelectStmt:
		ast.Inspect(s, func(n ast.Node) bool { w.checkNode(n, depth); return true })
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, depth)
		}
		d := depth
		if w.rankDep(s.Cond) {
			d++
		}
		if s.Post != nil {
			w.stmt(s.Post, d)
		}
		w.stmts(s.Body.List, d)
	case *ast.RangeStmt:
		d := depth
		if w.rankDep(s.X) {
			d++
		}
		w.stmts(s.Body.List, d)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, depth)
	case *ast.GoStmt:
		w.exprs(depth, s.Call)
	case *ast.DeferStmt:
		w.exprs(depth, s.Call)
	case *ast.ExprStmt:
		w.exprs(depth, s.X)
	case *ast.AssignStmt:
		w.exprs(depth, s.Rhs...)
		w.exprs(depth, s.Lhs...)
	case *ast.ReturnStmt:
		w.exprs(depth, s.Results...)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool { w.checkNode(n, depth); return true })
	case *ast.SendStmt:
		w.exprs(depth, s.Chan, s.Value)
	case *ast.IncDecStmt:
		w.exprs(depth, s.X)
	default:
		ast.Inspect(s, func(n ast.Node) bool { w.checkNode(n, depth); return true })
	}
}

// exprs scans expressions (including nested function literals, which stay at
// the lexical depth of their definition) for collective calls.
func (w *walker) exprs(depth int, es ...ast.Expr) {
	for _, e := range es {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.stmts(lit.Body.List, depth)
				return false
			}
			w.checkNode(n, depth)
			return true
		})
	}
}

func (w *walker) checkNode(n ast.Node, depth int) {
	call, ok := n.(*ast.CallExpr)
	if !ok || depth == 0 {
		return
	}
	name := CollectiveName(w.pass, call)
	if name == "" || w.onSubcomm(call) {
		return
	}
	w.pass.Reportf(call.Pos(),
		"%s is only reachable under a rank-dependent condition; collectives must be called symmetrically on every rank (divergence deadlock)", name)
}

// onSubcomm reports whether the collective call operates on a communicator
// obtained from Split: the receiver for methods, the first argument for
// package-level collectives.
func (w *walker) onSubcomm(call *ast.CallExpr) bool {
	obj := analysis.CommValueObject(w.pass.Info, call)
	return obj != nil && w.subcomms[obj]
}
