// Package a exercises commsym: collectives under rank-dependent control
// flow are flagged; symmetric calls, error-abort guards, subcommunicator
// collectives, point-to-point asymmetry, and //lint:allow exceptions stay
// quiet.
package a

import (
	"errors"

	"comm"
)

const watchdogTag = 404

func direct(c *comm.Comm, buf []float64) {
	c.Barrier() // symmetric on every rank: fine
	if c.Rank() == 0 {
		c.Barrier() // want `rank-dependent`
	}
	if c.Rank() != 0 {
		comm.Bcast(c, 0, buf) // want `rank-dependent`
	}
}

func taintFlows(c *comm.Comm) {
	r := c.Rank()
	isRoot := r == 0
	if isRoot {
		comm.AllreduceScalar(c, 1, comm.OpSum) // want `rank-dependent`
	}
	switch r % 2 {
	case 0:
		c.Barrier() // want `rank-dependent`
	}
}

func earlyReturn(c *comm.Comm) {
	if c.Rank() == 0 {
		return // control return: the other ranks diverge below
	}
	c.Barrier() // want `rank-dependent`
}

func errorAbort(c *comm.Comm) error {
	if c.Rank() < 0 {
		return errors.New("bad rank") // abort path, not divergence
	}
	c.Barrier() // happy path reached by every non-failing rank: fine
	return nil
}

func subcommunicator(c *comm.Comm) {
	sub := c.Split(c.Rank()%2, 0)
	if c.Rank()%2 == 0 {
		comm.AllreduceScalar(sub, 1, comm.OpSum) // subgroup collective: fine
		sub.Barrier()                            // fine
	}
	if c.Rank() == 0 {
		c.Split(0, 0) // want `rank-dependent`
	}
}

func allowed(c *comm.Comm) {
	if c.Rank() == 0 {
		//lint:allow commsym deliberate: rank 0 tears down the session alone
		c.Barrier()
	}
}

// transportGuard branches on the transport name. Every rank of a session
// runs the same transport, so the guard is uniform across ranks — not
// rank-derived taint — and collectives under it stay symmetric. This is the
// negative control for transport-conditional code paths (e.g. demos that
// print differently over tcp): commsym must stay quiet.
func transportGuard(c *comm.Comm, buf []float64) {
	if c.Transport() == "tcp" {
		c.Barrier() // uniform guard: fine
		comm.Bcast(c, 0, buf)
	}
}

// watchdogShape mirrors the PR-2 Recv-watchdog self-deadlock scenario: the
// last rank waits on a tag nobody sends while its peers block on the stuck
// rank. Asymmetric point-to-point receives under rank guards are exactly
// how that regression test is written, and Recv is not a collective —
// commsym must stay quiet here.
func watchdogShape(c *comm.Comm) {
	if c.Rank() == c.Size()-1 {
		c.Recv(comm.AnySource, watchdogTag)
	} else {
		c.Recv(c.Size()-1, watchdogTag)
	}
}
