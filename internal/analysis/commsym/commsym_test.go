package commsym_test

import (
	"testing"

	"odinhpc/internal/analysis/analysistest"
	"odinhpc/internal/analysis/commsym"
)

func TestCommsym(t *testing.T) {
	analysistest.Run(t, "testdata", commsym.Analyzer, "a")
}
