package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked package ready for analysis. A directory with
// test files yields up to two Packages: the base package with its in-package
// _test.go files merged, and the external "_test" package if present.
type Package struct {
	Path  string // import path ("odinhpc/internal/comm", or "comm" under a src root)
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and typechecks packages from source with stdlib machinery
// only. Imports are resolved in three tiers: paths under ModulePath map into
// ModuleDir, paths that exist under SrcRoot (the analysistest GOPATH-style
// root) load from there, and everything else — the standard library — is
// delegated to go/importer's "source" compiler, which re-typechecks std
// packages from GOROOT. One Loader instance caches every imported package,
// so the std tax is paid once per process, not once per target.
type Loader struct {
	ModulePath string // e.g. "odinhpc"; empty when loading testdata only
	ModuleDir  string
	SrcRoot    string // e.g. ".../testdata/src"; import "x" resolves to SrcRoot/x
	Tests      bool   // include _test.go files of target packages

	fset   *token.FileSet
	std    types.ImporterFrom
	cache  map[string]*types.Package
	loaded map[string]*Package // import-variant (no test files) packages by path
}

// NewLoader returns a ready Loader. Any of modulePath/moduleDir/srcRoot may
// be empty when that resolution tier is unused.
func NewLoader(modulePath, moduleDir, srcRoot string, tests bool) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		SrcRoot:    srcRoot,
		Tests:      tests,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:      map[string]*types.Package{},
		loaded:     map[string]*Package{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer for the typechecker's benefit.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if dir, ok := l.resolve(path); ok {
		pkg, err := l.load(dir, path, false)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	if srcDir == "" {
		srcDir = l.ModuleDir
	}
	p, err := l.std.ImportFrom(path, srcDir, 0)
	if err == nil {
		l.cache[path] = p
	}
	return p, err
}

// resolve maps an import path onto a source directory via the module and
// src-root tiers. It reports false for standard-library paths.
func (l *Loader) resolve(path string) (string, bool) {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir, true
		}
		if strings.HasPrefix(path, l.ModulePath+"/") {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/"))), true
		}
	}
	if l.SrcRoot != "" {
		dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// LoadDir loads the package in dir as an analysis target: the base package
// (with in-package test files when Tests is set) plus the external _test
// package if one exists. dir must be under ModuleDir or SrcRoot so the
// package's import path can be derived.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPath(abs)
	if err != nil {
		return nil, err
	}
	base, xtest, err := l.splitFiles(abs)
	if err != nil {
		return nil, err
	}
	var out []*Package
	if len(base) > 0 {
		pkg, err := l.check(path, base)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if l.Tests && len(xtest) > 0 {
		pkg, err := l.check(path+"_test", xtest)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// load typechecks the import variant of the package in dir (no test files).
func (l *Loader) load(dir, path string, _ bool) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// splitFiles parses dir and partitions its files into the base package
// (including in-package tests when Tests is set) and the external test
// package ("foo_test").
func (l *Loader) splitFiles(dir string) (base, xtest []*ast.File, err error) {
	files, err := l.parseDir(dir, func(name string) bool {
		return l.Tests || !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, nil, err
	}
	var baseName string
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			baseName = f.Name.Name
			break
		}
	}
	for _, f := range files {
		name := f.Name.Name
		if strings.HasSuffix(name, "_test") && (baseName == "" || name == baseName+"_test") {
			xtest = append(xtest, f)
		} else {
			base = append(base, f)
		}
	}
	return base, xtest, nil
}

// parseDir parses every .go file in dir accepted by keep, sorted by name for
// deterministic positions.
func (l *Loader) parseDir(dir string, keep func(string) bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if keep(n) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check runs the typechecker over files as package path.
func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importPath derives the import path of an absolute package directory from
// the loader's module or src root.
func (l *Loader) importPath(abs string) (string, error) {
	if l.ModuleDir != "" {
		if modAbs, err := filepath.Abs(l.ModuleDir); err == nil {
			if abs == modAbs {
				return l.ModulePath, nil
			}
			if rel, err := filepath.Rel(modAbs, abs); err == nil && !strings.HasPrefix(rel, "..") {
				return l.ModulePath + "/" + filepath.ToSlash(rel), nil
			}
		}
	}
	if l.SrcRoot != "" {
		if rootAbs, err := filepath.Abs(l.SrcRoot); err == nil {
			if rel, err := filepath.Rel(rootAbs, abs); err == nil && !strings.HasPrefix(rel, "..") {
				return filepath.ToSlash(rel), nil
			}
		}
	}
	return "", fmt.Errorf("cannot derive import path for %s", abs)
}
