// Package analysis is a dependency-free reimplementation of the spine of
// golang.org/x/tools/go/analysis, sized for this repo's odinvet suite. The
// build environment bakes in only the Go toolchain (no module proxy), so the
// x/tools driver stack is out of reach; what the suite actually needs from it
// is small and reimplemented here: an Analyzer/Pass/Diagnostic vocabulary, a
// source loader that typechecks packages with full go/types information
// (load.go), a driver that runs analyzers and honors `//lint:allow <analyzer>`
// escape hatches, and an analysistest-style harness (see the analysistest
// subpackage) driven by `// want "regex"` comments in testdata.
//
// The domain analyzers live in sibling packages (commsym, tagcheck, hotalloc,
// tracepair, planreuse); cmd/odinvet is the multichecker binary that runs
// them over the tree, standalone or as a `go vet -vettool`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors the x/tools shape so the
// suite could migrate to the real driver if the dependency ever becomes
// available: Name is the identifier used in diagnostics and in
// `//lint:allow <name>` directives, Doc the one-paragraph contract, Run the
// per-package entry point.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer. Suppressed marks findings
// covered by a //lint:allow directive; Run filters them out, RunAll keeps
// them for machine consumers.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Pos
	Position   token.Position
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position, with findings suppressed by a
// `//lint:allow <analyzer>` directive (same line or the line above the
// finding) filtered out. A directive may carry a trailing justification:
// `//lint:allow hotalloc Per-chunk scratch, amortized`.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	diags, err := RunAll(analyzers, pkgs)
	if err != nil {
		return nil, err
	}
	out := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out, nil
}

// RunAll is Run without the suppression filter: findings covered by a
// lint:allow directive are returned with Suppressed set instead of
// dropped, so machine consumers (odinvet -json) can surface them.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		start := len(diags)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		markSuppressed(diags[start:], pkg)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// markSuppressed flags diagnostics covered by lint:allow directives in
// pkg's files.
func markSuppressed(diags []Diagnostic, pkg *Package) {
	allowed := allowLines(pkg) // filename -> line -> analyzer set
	for i, d := range diags {
		if set, ok := allowed[d.Position.Filename]; ok {
			if names, ok := set[d.Position.Line]; ok && (names["*"] || names[d.Analyzer]) {
				diags[i].Suppressed = true
			}
		}
	}
}

// AllowDirective is one //lint:allow occurrence in a package's sources.
type AllowDirective struct {
	Position      token.Position
	Analyzers     []string // suppressed analyzer names, or ["*"]
	Justification string   // free-form text after the names; may be empty
}

// Directives lists every lint:allow directive in pkg, in source order.
// odinvet's -allows mode prints them so every standing exception and its
// justification stays auditable.
func Directives(pkg *Package) []AllowDirective {
	var out []AllowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, just, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				out = append(out, AllowDirective{
					Position:      pkg.Fset.Position(c.Slash),
					Analyzers:     names,
					Justification: just,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// allowLines maps each file to the source lines covered by lint:allow
// directives: the directive's own line, and — for a directive that is a
// standalone comment line — the following line.
func allowLines(pkg *Package) map[string]map[int]map[string]bool {
	files := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, _, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				lines := files[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					files[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					for _, n := range names {
						lines[ln][n] = true
					}
				}
			}
		}
	}
	return files
}

// parseAllow recognizes `//lint:allow name [name...] [justification]`.
// Every leading field that looks like an analyzer name (lowercase ASCII
// letters and digits, starting with a letter — "p2pmatch" qualifies) is a
// suppressed analyzer; the rest is free-form justification, which is why
// justifications must start with a capitalized word. `//lint:allow *`
// suppresses every analyzer on the covered lines.
func parseAllow(text string) (names []string, justification string, ok bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, "", false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	fields := strings.Fields(rest)
	for _, f := range fields {
		if f == "*" || isAnalyzerName(f) {
			names = append(names, f)
			continue
		}
		break
	}
	if len(names) == 0 {
		return nil, "", false
	}
	return names, strings.Join(fields[len(names):], " "), true
}

func isAnalyzerName(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
			return false
		}
	}
	return true
}
