package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

// TestParseAllow pins the directive grammar: every leading field made of
// lowercase letters and digits (starting with a letter) is an analyzer
// name, and everything after the first field that breaks that shape is the
// justification. The practical consequence — justifications must start
// with a capitalized word — is what odinvet's doc comment promises.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		just  string
		ok    bool
	}{
		{"//lint:allow hotalloc", []string{"hotalloc"}, "", true},
		{"//lint:allow hotalloc Per-chunk scratch", []string{"hotalloc"}, "Per-chunk scratch", true},
		{"//lint:allow commsym collorder Intentional permuted order", []string{"commsym", "collorder"}, "Intentional permuted order", true},
		// Digits are legal inside a name: p2pmatch must parse as one name,
		// not be rejected or split.
		{"//lint:allow p2pmatch Vetted by hand", []string{"p2pmatch"}, "Vetted by hand", true},
		// The wildcard suppresses everything and may carry a justification.
		{"//lint:allow * Fault-injection hook", []string{"*"}, "Fault-injection hook", true},
		// A lowercase justification is absorbed into the name list — the
		// trap the capitalization rule exists to avoid. The directive still
		// parses (suppression works; the extra "names" match nothing), but
		// the recorded justification is empty.
		{"//lint:allow hotalloc failure path only", []string{"hotalloc", "failure", "path", "only"}, "", true},
		// A name cannot start with a digit.
		{"//lint:allow 2fast Justification", nil, "", false},
		// No names at all: not a directive.
		{"//lint:allow", nil, "", false},
		{"//lint:allow Capitalized only", nil, "", false},
		// Unrelated comments.
		{"// lint:allow hotalloc", nil, "", false},
		{"//nolint:hotalloc", nil, "", false},
	}
	for _, c := range cases {
		names, just, ok := parseAllow(c.text)
		if ok != c.ok || just != c.just || !reflect.DeepEqual(names, c.names) {
			t.Errorf("parseAllow(%q) = %v, %q, %v; want %v, %q, %v",
				c.text, names, just, ok, c.names, c.just, c.ok)
		}
	}
}

// TestDirectives checks source-order listing and justification capture on
// a synthetic file; Directives needs only Fset and Files, so the package
// is built by hand.
func TestDirectives(t *testing.T) {
	const src = `package p

//lint:allow hotalloc Scratch buffer, amortized
var a int

func f() {
	_ = a //lint:allow commsym tagcheck Both are fine here
	//lint:allow p2pmatch
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got := Directives(&Package{Fset: fset, Files: []*ast.File{file}})
	want := []struct {
		line  int
		names []string
		just  string
	}{
		{3, []string{"hotalloc"}, "Scratch buffer, amortized"},
		{7, []string{"commsym", "tagcheck"}, "Both are fine here"},
		{8, []string{"p2pmatch"}, ""},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d directives, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		d := got[i]
		if d.Position.Line != w.line || d.Justification != w.just || !reflect.DeepEqual(d.Analyzers, w.names) {
			t.Errorf("directive %d = line %d %v %q; want line %d %v %q",
				i, d.Position.Line, d.Analyzers, d.Justification, w.line, w.names, w.just)
		}
	}
}
