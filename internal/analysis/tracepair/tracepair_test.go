package tracepair_test

import (
	"testing"

	"odinhpc/internal/analysis/analysistest"
	"odinhpc/internal/analysis/tracepair"
)

func TestTracepair(t *testing.T) {
	analysistest.Run(t, "testdata", tracepair.Analyzer, "a", "comm")
}
