// Package tracepair implements the odinvet analyzer guarding the tracing
// layer's two structural invariants:
//
//  1. Span openers — functions returning an end-closure, like
//     comm.(*Comm).collSpan — must have their closure invoked on every
//     return path, normally via the `defer c.collSpan(...)()` idiom. A
//     dropped or conditionally-skipped end leaves a span open and skews
//     every duration downstream of it in the exported timeline.
//  2. Inside package comm, the KindSend trace-event emission must stay
//     lexically adjacent to the stats.record call that counts the same
//     logical send. DESIGN.md pins "one send event per logical Send";
//     trace_reconcile_test checks it dynamically by diffing the
//     trace-derived message matrix against comm.Stats, and this analyzer
//     keeps refactors from separating the two sites in the first place.
package tracepair

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"odinhpc/internal/analysis"
)

// Analyzer enforces span-closure and send/record adjacency.
var Analyzer = &analysis.Analyzer{
	Name: "tracepair",
	Doc: "span-opener end closures must run on all return paths (defer or " +
		"full path coverage), and comm's KindSend emission must stay " +
		"adjacent to stats.record",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		checkSpanClosures(pass, file)
		if analysis.PkgIs(pass.Pkg.Path(), "comm") {
			checkSendAdjacency(pass, file)
		}
	}
	return nil
}

// --- rule 1: span closures -------------------------------------------------

// isSpanOpener reports whether call invokes a span opener: a function or
// method whose name ends in "Span" and whose only result is a func() end
// closure.
func isSpanOpener(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || !strings.HasSuffix(fn.Name(), "Span") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	rt, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	return ok && rt.Params().Len() == 0 && rt.Results().Len() == 0
}

// checkSpanClosures scans every function body (declarations and literals)
// for span-opener calls and validates the end closure's fate.
func checkSpanClosures(pass *analysis.Pass, file *ast.File) {
	var funcs []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch f := n.(type) {
		case *ast.FuncDecl:
			if f.Body != nil {
				funcs = append(funcs, f.Body)
			}
		case *ast.FuncLit:
			funcs = append(funcs, f.Body)
		}
		return true
	})
	for _, body := range funcs {
		checkFuncSpans(pass, body)
	}
}

// checkFuncSpans validates the opener calls whose statement belongs
// directly to this function (not to a nested literal, which gets its own
// pass).
func checkFuncSpans(pass *analysis.Pass, body *ast.BlockStmt) {
	var walkStmts func(list []ast.Stmt)
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case nil:
		case *ast.DeferStmt:
			// defer c.collSpan(...)() — opener begun and end scheduled in
			// one statement: the canonical idiom.
			if inner, ok := ast.Unparen(s.Call.Fun).(*ast.CallExpr); ok && isSpanOpener(pass, inner) {
				return
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if isSpanOpener(pass, call) {
					pass.Reportf(call.Pos(), "span opener's end closure is discarded; use `defer %s()` or call the closure on every return path", exprText(call))
					return
				}
				// c.collSpan(...)() — immediately closed zero-length span.
				if inner, ok := ast.Unparen(call.Fun).(*ast.CallExpr); ok && isSpanOpener(pass, inner) {
					return
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isSpanOpener(pass, call) {
					continue
				}
				if len(s.Lhs) != len(s.Rhs) {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					pass.Reportf(call.Pos(), "span opener's end closure is discarded; bind it and close on every return path")
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if !closedOnAllPaths(pass, body, s, obj) {
					pass.Reportf(call.Pos(), "span end closure %q is not invoked on all return paths; prefer `defer %s()`", id.Name, exprText(call))
				}
			}
		case *ast.BlockStmt:
			walkStmts(s.List)
		case *ast.IfStmt:
			walkStmt(s.Init)
			walkStmts(s.Body.List)
			walkStmt(s.Else)
		case *ast.ForStmt:
			walkStmt(s.Init)
			walkStmt(s.Post)
			walkStmts(s.Body.List)
		case *ast.RangeStmt:
			walkStmts(s.Body.List)
		case *ast.SwitchStmt:
			walkStmt(s.Init)
			for _, cc := range s.Body.List {
				walkStmts(cc.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				walkStmts(cc.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				walkStmts(cc.(*ast.CommClause).Body)
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt)
		}
	}
	walkStmts = func(list []ast.Stmt) {
		for _, s := range list {
			walkStmt(s)
		}
	}
	walkStmts(body.List)
}

// pathStatus is the tri-state of the straight-line scan in closedOnAllPaths.
type pathStatus int

const (
	fellThrough  pathStatus = iota // reached the end of the list, span still open
	closed                         // closure invoked (or deferred) on this path
	returnedOpen                   // a return executes with the span still open
)

// closedOnAllPaths reports whether obj (the end closure) is invoked on every
// path from its binding statement to function exit. The walk ascends the
// enclosing statement lists from the binding site; loops are treated
// optimistically (a close anywhere in a loop body counts), and nested
// function literals are opaque.
func closedOnAllPaths(pass *analysis.Pass, funcBody *ast.BlockStmt, bind ast.Stmt, obj types.Object) bool {
	chain, ok := enclosingLists(funcBody, bind)
	if !ok {
		return true // binding site not found (should not happen); stay quiet
	}
	// Scan outward: the suffix after the binding in its own list, then the
	// suffixes after each enclosing statement.
	for level := len(chain) - 1; level >= 0; level-- {
		list, idx := chain[level].list, chain[level].idx
		switch scanList(pass, list[idx+1:], obj) {
		case closed:
			return true
		case returnedOpen:
			return false
		}
	}
	// Fell off the end of the function: an implicit return with the span
	// open, unless the function cannot complete normally — a terminating
	// final statement means the fall-through path is unreachable.
	if n := len(funcBody.List); n > 0 && terminates(funcBody.List[n-1]) {
		return true
	}
	return false
}

type listPos struct {
	list []ast.Stmt
	idx  int
}

// enclosingLists returns the chain of statement lists from funcBody down to
// the list directly containing target, with target's index in each.
func enclosingLists(funcBody *ast.BlockStmt, target ast.Stmt) ([]listPos, bool) {
	var search func(list []ast.Stmt, acc []listPos) ([]listPos, bool)
	search = func(list []ast.Stmt, acc []listPos) ([]listPos, bool) {
		for i, s := range list {
			if s == target {
				return append(acc, listPos{list, i}), true
			}
			for _, sub := range childLists(s) {
				if found, ok := search(sub, append(acc, listPos{list, i})); ok {
					return found, ok
				}
			}
		}
		return nil, false
	}
	return search(funcBody.List, nil)
}

// childLists returns the statement lists nested directly inside s, without
// descending into function literals.
func childLists(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := s.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			out = append(out, cc.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			out = append(out, cc.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			out = append(out, cc.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{s.Stmt})
	}
	return out
}

// scanList walks one statement list linearly, classifying the path.
func scanList(pass *analysis.Pass, list []ast.Stmt, obj types.Object) pathStatus {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if isCloseCall(pass, s.X, obj) {
				return closed
			}
		case *ast.DeferStmt:
			if isCloseCall(pass, s.Call, obj) || isIdentOf(pass, s.Call.Fun, obj) {
				return closed
			}
		case *ast.ReturnStmt:
			return returnedOpen
		case *ast.BranchStmt:
			// break/continue/goto leave this list; treat as fall-through so
			// the enclosing level decides.
			return fellThrough
		case *ast.BlockStmt:
			switch scanList(pass, s.List, obj) {
			case closed:
				return closed
			case returnedOpen:
				return returnedOpen
			}
		case *ast.IfStmt:
			b := scanList(pass, s.Body.List, obj)
			e := fellThrough
			switch el := s.Else.(type) {
			case *ast.BlockStmt:
				e = scanList(pass, el.List, obj)
			case *ast.IfStmt:
				e = scanList(pass, []ast.Stmt{el}, obj)
			}
			if b == returnedOpen || e == returnedOpen {
				return returnedOpen
			}
			if b == closed && e == closed {
				return closed
			}
			// Mixed closed/fall-through: one arm closed and the other
			// continues — the continuing path still needs a close; keep
			// scanning. (A close followed by more statements double-closing
			// is out of scope.)
		case *ast.ForStmt, *ast.RangeStmt:
			// Optimimistic: a close inside a loop body counts as closing,
			// a return inside it as returning open.
			var inner []ast.Stmt
			if f, ok := s.(*ast.ForStmt); ok {
				inner = f.Body.List
			} else {
				inner = s.(*ast.RangeStmt).Body.List
			}
			switch scanList(pass, inner, obj) {
			case closed:
				return closed
			case returnedOpen:
				return returnedOpen
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			all := closed
			any := false
			for _, sub := range childLists(s.(ast.Stmt)) {
				any = true
				switch scanList(pass, sub, obj) {
				case returnedOpen:
					return returnedOpen
				case fellThrough:
					all = fellThrough
				}
			}
			if any && all == closed && hasDefaultClause(s) {
				return closed
			}
		case *ast.LabeledStmt:
			switch scanList(pass, []ast.Stmt{s.Stmt}, obj) {
			case closed:
				return closed
			case returnedOpen:
				return returnedOpen
			}
		}
	}
	return fellThrough
}

func hasDefaultClause(s ast.Stmt) bool {
	clauses := func(b *ast.BlockStmt) bool {
		for _, c := range b.List {
			if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
				return true
			}
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return true
			}
		}
		return false
	}
	switch s := s.(type) {
	case *ast.SwitchStmt:
		return clauses(s.Body)
	case *ast.TypeSwitchStmt:
		return clauses(s.Body)
	case *ast.SelectStmt:
		return clauses(s.Body)
	}
	return false
}

// terminates reports whether a statement always transfers control away
// (so code after it in the function is unreachable).
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil // for {} without break... approximately
	}
	return false
}

// isCloseCall reports whether e is `obj()`.
func isCloseCall(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isIdentOf(pass, call.Fun, obj)
}

func isIdentOf(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj
}

// exprText renders a short source-ish form of a call for diagnostics.
func exprText(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name + "(...)"
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name + "(...)"
		}
		return f.Sel.Name + "(...)"
	}
	return "span(...)"
}

// --- rule 2: send/record adjacency ----------------------------------------

// checkSendAdjacency enforces that every statement emitting a KindSend
// trace event has a neighboring statement recording the same send in
// comm.Stats. The emission is typically nested — Send wraps its Emit in an
// `if s := trace.Active(); s != nil` guard — so adjacency at ANY enclosing
// block level satisfies the rule: the statement containing the emit only
// needs a record-bearing sibling (or to contain the record itself) at one
// nesting depth.
func checkSendAdjacency(pass *analysis.Pass, file *ast.File) {
	satisfied := map[token.Pos]bool{}
	seen := map[token.Pos]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range block.List {
			pos, found := sendEmitPos(pass, s)
			if !found {
				continue
			}
			seen[pos] = true
			prevOK := i > 0 && hasStatsRecord(block.List[i-1])
			nextOK := i+1 < len(block.List) && hasStatsRecord(block.List[i+1])
			selfOK := hasStatsRecord(s)
			if prevOK || nextOK || selfOK {
				satisfied[pos] = true
			}
		}
		return true
	})
	var poss []token.Pos
	for pos := range seen {
		if !satisfied[pos] {
			poss = append(poss, pos)
		}
	}
	sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
	for _, pos := range poss {
		pass.Reportf(pos, "KindSend trace emission without an adjacent stats.record call; the trace-derived message matrix must reconcile with comm.Stats (one send event per logical Send)")
	}
}

// sendEmitPos reports whether stmt contains an Emit call whose event literal
// carries Kind: KindSend. Function literals are not skipped here: an Emit
// wrapped in a closure inside the statement is still this statement's
// emission site.
func sendEmitPos(pass *analysis.Pass, stmt ast.Stmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Emit" || len(call.Args) != 1 {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Kind" {
				continue
			}
			if kindName(kv.Value) == "KindSend" {
				pos, found = call.Pos(), true
				return false
			}
		}
		return true
	})
	return pos, found
}

// kindName extracts the identifier naming an event kind: KindSend or
// trace.KindSend.
func kindName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// hasStatsRecord reports whether stmt contains a `<...>.record(...)` or
// `<...>.Record(...)` call — the comm.Stats accounting site.
func hasStatsRecord(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "record" || sel.Sel.Name == "Record" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
