// Package a exercises tracepair rule 1: span-opener end closures must run
// on every return path. Openers are any *Span function returning func().
package a

// opSpan opens a span and returns its end closure.
func opSpan(name string) func() { return func() {} }

// sliceSpan returns nothing, so it is not an opener.
func sliceSpan(name string) {}

func canonical(n int) {
	defer opSpan("canonical")() // the idiom: fine
	if n > 0 {
		return
	}
}

func zeroLength() {
	opSpan("zero")() // immediately closed: fine
}

func dropped() {
	opSpan("dropped") // want `end closure is discarded`
}

func blank() {
	_ = opSpan("blank") // want `end closure is discarded`
}

func conditionalLeak(n int) {
	end := opSpan("cond") // want `not invoked on all return paths`
	if n > 0 {
		return
	}
	end()
}

func switchLeak(n int) {
	end := opSpan("switch") // want `not invoked on all return paths`
	switch n {
	case 0:
		end()
	}
}

func coveredPaths(n int) int {
	end := opSpan("covered")
	if n > 0 {
		end()
		return 1
	}
	end()
	return 0
}

func loopThenClose(items []int) {
	end := opSpan("loop")
	for range items {
	}
	end()
}

func deferredLater(n int) {
	end := opSpan("later")
	defer end()
	if n > 0 {
		return
	}
}

func voidHelper() {
	sliceSpan("void") // no end closure to lose: fine
}

func allowedLeak(ch chan struct{}) {
	//lint:allow tracepair span deliberately closed by the receiver goroutine
	end := opSpan("handoff")
	go func() {
		<-ch
		end()
	}()
}

// watchdogShape mirrors the PR-2 Recv-watchdog timeout path: the span ends
// via defer before the select, so the timeout arm returning early must not
// be flagged.
func watchdogShape(ch, timeout chan int) int {
	defer opSpan("recv")()
	select {
	case v := <-ch:
		return v
	case <-timeout:
		return -1
	}
}
