// Package comm mirrors the Send accounting/tracing pairing for tracepair
// rule 2: every KindSend emission must keep a stats record call adjacent,
// at some enclosing block level.
package comm

// Event mirrors trace.Event.
type Event struct {
	Kind  int
	Peer  int
	Bytes int64
}

// KindSend mirrors trace.KindSend.
const KindSend = 2

// KindRecv mirrors trace.KindRecv.
const KindRecv = 3

type session struct{}

func (s *session) Emit(e Event) {}

func active() *session { return nil }

type stats struct{}

func (st *stats) record(src, dst int, n int64) {}

// Comm carries the stats sink.
type Comm struct {
	st   stats
	rank int
}

// goodSend mirrors the real Send: record, then emit under the trace guard —
// adjacency holds at the outer block level.
func (c *Comm) goodSend(dst int, n int64) {
	c.st.record(c.rank, dst, n)
	if s := active(); s != nil {
		s.Emit(Event{Kind: KindSend, Peer: dst, Bytes: n})
	}
}

// inlineSend keeps both calls as direct siblings.
func (c *Comm) inlineSend(dst int, n int64) {
	if s := active(); s != nil {
		c.st.record(c.rank, dst, n)
		s.Emit(Event{Kind: KindSend, Peer: dst, Bytes: n})
	}
}

// recvEmit emits KindRecv; rule 2 only polices sends.
func (c *Comm) recvEmit(src int, n int64) {
	if s := active(); s != nil {
		s.Emit(Event{Kind: KindRecv, Peer: src, Bytes: n})
	}
}

// driftedSend lost its record pairing in a refactor.
func (c *Comm) driftedSend(dst int, n int64) {
	if s := active(); s != nil {
		s.Emit(Event{Kind: KindSend, Peer: dst, Bytes: n}) // want `adjacent stats.record`
	}
}

// farSend records too far away: intervening statements break adjacency.
func (c *Comm) farSend(dst int, n int64) {
	c.st.record(c.rank, dst, n)
	dst = dst + 0
	n = n + 0
	if s := active(); s != nil {
		s.Emit(Event{Kind: KindSend, Peer: dst, Bytes: n}) // want `adjacent stats.record`
	}
}

// allowedSend is a deliberate exception: a retransmit emission whose
// accounting happened at the original send site.
func (c *Comm) allowedSend(dst int, n int64) {
	if s := active(); s != nil {
		//lint:allow tracepair retransmit event; the original send recorded it
		s.Emit(Event{Kind: KindSend, Peer: dst, Bytes: n})
	}
}
