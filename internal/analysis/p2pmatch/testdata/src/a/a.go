// Package a exercises p2pmatch's core protocol shapes: certified-safe
// rings, deadlocking rings, unmatched and lost messages, collective
// divergence, and the cannot-certify fragment boundary.
package a

import "comm"

// ringSendRecv is the canonical safe ring: SendRecv posts its send before
// blocking in the receive, so the ring can never rendezvous-deadlock.
// Certified for every P — a negative control.
func ringSendRecv(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	next := (r + 1) % p
	prev := (r + p - 1) % p
	got := c.SendRecv(next, r, prev, 7)
	_ = got
	return nil
}

// ringParity splits the ring by parity: even ranks send first, odd ranks
// receive first. Certified for every even P — a negative control.
func ringParity(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if p < 2 || p%2 != 0 {
		return nil
	}
	next := (r + 1) % p
	prev := (r + p - 1) % p
	if r%2 == 0 {
		c.Send(next, 3, r)
		_ = c.Recv(prev, 3)
	} else {
		_ = c.Recv(prev, 3)
		c.Send(next, 3, r)
	}
	return nil
}

// ringRecvFirst is the symmetric deadlock: every rank receives before it
// sends, so nobody's send is ever issued.
func ringRecvFirst(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if p < 2 {
		return nil
	}
	prev := (r + p - 1) % p
	next := (r + 1) % p
	got := c.Recv(prev, 3) // want `rendezvous cycle \(rank 0 waits for rank 1, rank 1 waits for rank 0\)`
	c.Send(next, 3, got)
	return nil
}

// orphanRecv blocks forever: no rank ever sends tag 9.
func orphanRecv(c *comm.Comm) error {
	if c.Rank() == 0 && c.Size() > 1 {
		_ = c.Recv(1, 9) // want `unmatched receive`
	}
	return nil
}

// chattySender sends twice into a single receive; the second message is
// never consumed in any schedule.
func chattySender(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if p < 2 {
		return nil
	}
	if r == 1 {
		c.Send(0, 11, r)
		c.Send(0, 11, r) // want `lost message at P=2`
	}
	if r == 0 {
		_ = c.Recv(1, 11)
	}
	return nil
}

// divergentBarrier: rank 0 waits at a collective rank 1 never reaches.
func divergentBarrier(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if p < 2 {
		return nil
	}
	if r == 0 {
		c.Send(1, 2, r)
		c.Barrier() // want `collective/point-to-point divergence`
	}
	if r == 1 {
		_ = c.Recv(0, 2)
	}
	return nil
}

// dataPeer's destination is a run-time value: outside the provable shape.
func dataPeer(c *comm.Comm, target int) {
	c.Send(target, 1, nil) // want `cannot certify point-to-point protocol: .*non-affine`
}

// probeDrain polls the mailbox; matching depends on arrival timing.
func probeDrain(c *comm.Comm) error {
	if c.Rank() != 0 {
		c.Send(0, 9, 1)
		return nil
	}
	for {
		if _, ok := c.Probe(comm.AnySource, comm.AnyTag); !ok { // want `cannot certify point-to-point protocol: Probe-guarded`
			break
		}
		_ = c.Recv(comm.AnySource, comm.AnyTag)
	}
	return nil
}

// launch runs a known-size ping-pong protocol literal; only P=2 is
// checked, and it is safe — a negative control.
func launch() {
	_ = comm.Run(2, func(c *comm.Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, 0)
			_ = c.Recv(1, 2)
		} else {
			_ = c.Recv(0, 1)
			c.Send(0, 2, 1)
		}
		return nil
	})
}

// badPeer sends outside a constant-size communicator: a definite panic.
func badPeer() {
	_ = comm.Run(2, func(c *comm.Comm) error {
		if c.Rank() == 0 {
			c.Send(5, 1, 0) // want `Send peer 5 is outside the communicator \(size 2\)`
		}
		return nil
	})
}
