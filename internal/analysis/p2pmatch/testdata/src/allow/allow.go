// Package allow exercises the //lint:allow escape hatch against p2pmatch
// findings: line-above and same-line placement, the * wildcard, and a
// misplaced directive that suppresses nothing.
package allow

import "comm"

// vettedRing deadlocks, but the line-above directive suppresses the
// finding.
func vettedRing(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if p < 2 {
		return nil
	}
	//lint:allow p2pmatch Vetted by hand: an external token injector unblocks the ring.
	_ = c.Recv((r+1)%p, 3)
	c.Send((r+p-1)%p, 3, r)
	return nil
}

// vettedOrphan's unmatched receive is suppressed by a same-line * wildcard
// directive.
func vettedOrphan(c *comm.Comm) error {
	if c.Rank() == 0 && c.Size() > 1 {
		_ = c.Recv(1, 9) //lint:allow * Fault-injection hook: the peer is intentionally silent here.
	}
	return nil
}

// stale's directive sits two lines above the finding and covers nothing.
func stale(c *comm.Comm) error {
	if c.Rank() == 0 && c.Size() > 1 {
		//lint:allow p2pmatch Misplaced: a directive only covers its own line and the next.

		_ = c.Recv(1, 9) // want `unmatched receive`
	}
	return nil
}
