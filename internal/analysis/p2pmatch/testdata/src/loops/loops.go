// Package loops exercises bounded unrolling: pipelines and fan-ins whose
// loop bounds are functions of c.Size(), plus a loop-carried deadlock.
package loops

import "comm"

// pipeline hands a token down the ranks one hop per step. The loop bound
// p-1 concretizes per size; certified for every P — a negative control.
func pipeline(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	for step := 0; step < p-1; step++ {
		if r == step {
			c.Send(r+1, 4, r)
		}
		if r == step+1 {
			_ = c.Recv(r-1, 4)
		}
	}
	return nil
}

// fanIn gathers one message per peer with concrete sources — a negative
// control.
func fanIn(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if r == 0 {
		for i := 1; i < p; i++ {
			_ = c.Recv(i, 4)
		}
		return nil
	}
	c.Send(0, 4, r)
	return nil
}

// relay is a loop-carried symmetric deadlock: every iteration receives
// from the next rank before sending to the previous one.
func relay(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if p < 2 {
		return nil
	}
	for i := 0; i < 2; i++ {
		_ = c.Recv((r+1)%p, 6) // want `rendezvous cycle`
		c.Send((r+p-1)%p, 6, r)
	}
	return nil
}
