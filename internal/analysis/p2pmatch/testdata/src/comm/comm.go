// Package comm is a miniature mirror of the real comm fabric: just enough
// surface for p2pmatch to recognize ranks, point-to-point primitives,
// collectives, and protocol launches. The analyzer matches packages by
// path suffix, so this fake exercises the same code paths as the real
// tree.
package comm

// AnySource matches any sending rank.
const AnySource = -1

// AnyTag matches any message tag.
const AnyTag = -1

// Message mirrors the real delivery envelope.
type Message struct {
	Src, Tag int
	Payload  any
}

// Comm is the fake communicator.
type Comm struct {
	rank, size int
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Transport names the wire implementation — identical on every rank.
func (c *Comm) Transport() string { return "inproc" }

// Barrier is a collective.
func (c *Comm) Barrier() {}

// Split is a collective returning a subcommunicator.
func (c *Comm) Split(color, key int) *Comm { return c }

// Send is the eager point-to-point send.
func (c *Comm) Send(dst, tag int, payload any) {}

// Recv is the blocking point-to-point receive.
func (c *Comm) Recv(src, tag int) any { return nil }

// RecvMsg is Recv returning the full envelope.
func (c *Comm) RecvMsg(src, tag int) Message { return Message{} }

// SendRecv sends to dst then receives from src.
func (c *Comm) SendRecv(dst int, payload any, src, tag int) any { return nil }

// Probe reports without blocking whether a matching message is queued.
func (c *Comm) Probe(src, tag int) (Message, bool) { return Message{}, false }

// Run launches fn on size ranks, the protocol-scope entry point.
func Run(size int, fn func(c *Comm) error) error { return nil }

// Bcast is a package-level collective (first param *Comm).
func Bcast(c *Comm, root int, buf []float64) {}
