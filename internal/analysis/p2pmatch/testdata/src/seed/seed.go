// Package seed is the p2pmatch true-positive check wired into
// scripts/verify.sh: unlike the sibling testdata packages it imports the
// real comm fabric, and it carries no p2pmatch suppressions, so running
// odinvet over this directory — standalone or through `go vet -vettool` —
// must fail with a p2pmatch finding. Living under testdata keeps it out of
// every `./...` walk; verify.sh targets the directory explicitly.
package seed

import "odinhpc/internal/comm"

// ringTag keeps tagcheck quiet: tags must be named constants, and this
// seed must be a pure p2pmatch signal in vettool mode where every analyzer
// runs.
const ringTag = 3

// SymmetricRing is the textbook recv-before-send ring: every rank blocks
// in Recv waiting for its predecessor, so no rank ever reaches its Send —
// the rendezvous cycle p2pmatch must always flag.
func SymmetricRing(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if p < 2 {
		return nil
	}
	got := c.Recv((r+p-1)%p, ringTag)
	c.Send((r+1)%p, ringTag, got)
	return nil
}
