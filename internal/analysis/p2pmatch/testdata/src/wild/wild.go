// Package wild exercises AnySource/AnyTag wildcard matching: a safe token
// pool, a receive-count mismatch, and the wildcard/collective exclusion.
package wild

import "comm"

// tokenPool collects one token per worker with a wildcard source; every
// schedule completes — a negative control.
func tokenPool(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if r == 0 {
		for i := 1; i < p; i++ {
			_ = c.Recv(comm.AnySource, 5)
		}
		return nil
	}
	c.Send(0, 5, r)
	return nil
}

// tokenPoolOffByOne posts one more receive than there are workers.
func tokenPoolOffByOne(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if p < 2 {
		return nil
	}
	if r == 0 {
		for i := 0; i < p; i++ {
			_ = c.Recv(comm.AnySource, 5) // want `send/receive count mismatch`
		}
		return nil
	}
	c.Send(0, 5, r)
	return nil
}

// wildBarrier mixes a wildcard receive with a collective: the barrier
// over-approximation makes wildcard matching unprovable.
func wildBarrier(c *comm.Comm) error {
	r, p := c.Rank(), c.Size()
	if p < 2 {
		return nil
	}
	if r == 1 {
		c.Send(0, 8, r)
	}
	if r == 0 {
		_ = c.Recv(comm.AnySource, 8) // want `cannot certify point-to-point protocol: wildcard receive mixed with collective`
	}
	comm.Bcast(c, 0, nil)
	return nil
}
