package p2pmatch_test

import (
	"testing"

	"odinhpc/internal/analysis/analysistest"
	"odinhpc/internal/analysis/p2pmatch"
)

func TestP2PMatch(t *testing.T) {
	analysistest.Run(t, "testdata", p2pmatch.Analyzer, "a", "loops", "wild", "allow")
}
