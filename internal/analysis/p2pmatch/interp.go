package p2pmatch

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"odinhpc/internal/analysis"
	"odinhpc/internal/analysis/commsym"
)

// evKind discriminates protocol events.
type evKind int

const (
	evSend evKind = iota
	evRecv
	evBarrier
)

// event is one protocol-relevant action a rank performs, in program order.
// For sends, peer/tag are the concrete destination and tag. For receives,
// peer is the source (-1 = AnySource) and tag may be -1 (AnyTag), matching
// the comm package's wildcard encoding. op names the originating call for
// diagnostics ("Send", "SendRecv", "comm.Bcast", ...).
type event struct {
	kind evKind
	peer int64
	tag  int64
	pos  token.Pos
	op   string
}

// value is the interpreter's abstract value: a known int64, a known bool,
// or unknown.
type value struct {
	ok     bool
	isBool bool
	i      int64
	b      bool
}

func intVal(i int64) value { return value{ok: true, i: i} }
func boolVal(b bool) value { return value{ok: true, isBool: true, b: b} }

var unknown = value{}

// flow is the control outcome of executing a statement.
type flow int

const (
	flowNext flow = iota
	flowReturn
	flowBreak
	flowContinue
	flowFall // fallthrough, meaningful only directly inside a switch clause
)

// runner interprets one (P, rank) execution of a protocol scope under one
// scenario. It aborts via panic: *certErr for shapes outside the provable
// fragment, inapplicable for sizes where the protocol panics before
// communicating.
type runner struct {
	sc     *scope
	p      int64
	rank   int64
	scen   *scenario
	env    map[types.Object]value
	events []event
	steps  int
}

// run interprets the scope body and returns the rank's event trace.
func (r *runner) run() (trace []event, applicable bool, err *certErr) {
	defer func() {
		switch x := recover().(type) {
		case nil:
		case *certErr:
			err = x
		case inapplicable:
			applicable = false
		default:
			panic(x)
		}
	}()
	r.exec(r.sc.body)
	return r.events, true, nil
}

func (r *runner) fail(pos token.Pos, format string, args ...any) {
	panic(&certErr{pos: pos, reason: fmt.Sprintf(format, args...)})
}

// skip aborts the current (P, rank) run: for size-polymorphic scopes the
// size is inapplicable; for a constant-size scope the panic the runtime
// would hit is a definite finding.
func (r *runner) skip(pos token.Pos, format string, args ...any) {
	if r.sc.knownP == 0 {
		panic(inapplicable{})
	}
	panic(&certErr{pos: pos, reason: fmt.Sprintf(format, args...), kindDiag: true})
}

func (r *runner) emit(ev event) {
	if len(r.events) >= maxEventsRank {
		r.fail(ev.pos, "protocol exceeds %d events per rank", maxEventsRank)
	}
	r.events = append(r.events, ev)
}

// choose resolves a rank-uniform unknown condition: scenarios replay
// earlier decisions and default new ones to true, recording them so
// analyzeScope can spawn the flipped variants.
func (r *runner) choose(pos token.Pos) bool {
	if v, ok := r.scen.choices[pos]; ok {
		return v
	}
	r.scen.choices[pos] = true
	r.scen.decided = append(r.scen.decided, pos)
	return true
}

// --- statements ---

func (r *runner) exec(s ast.Stmt) flow {
	if s == nil {
		return flowNext
	}
	r.steps++
	if r.steps > maxSteps {
		r.fail(s.Pos(), "interpretation exceeds %d steps (unbounded or very large protocol)", maxSteps)
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			if f := r.exec(st); f != flowNext {
				return f
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && r.isAbortCall(call) {
			r.evalArgs(call)
			return flowReturn
		}
		r.eval(s.X)
	case *ast.AssignStmt:
		r.execAssign(s)
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			obj := analysis.IdentObj(r.sc.pass.Info, id)
			if v, ok := r.env[obj]; ok && v.ok && !v.isBool {
				if s.Tok == token.INC {
					v.i++
				} else {
					v.i--
				}
				r.env[obj] = v
				return flowNext
			}
			delete(r.env, obj)
		} else {
			r.eval(s.X)
		}
	case *ast.DeclStmt:
		r.execDecl(s)
	case *ast.IfStmt:
		return r.execIf(s)
	case *ast.SwitchStmt:
		return r.execSwitch(s)
	case *ast.ForStmt:
		return r.execFor(s)
	case *ast.RangeStmt:
		return r.execRange(s)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			r.eval(res)
		}
		return flowReturn
	case *ast.BranchStmt:
		switch {
		case s.Label != nil:
			r.fail(s.Pos(), "labeled %s in protocol control flow", s.Tok)
		case s.Tok == token.BREAK:
			return flowBreak
		case s.Tok == token.CONTINUE:
			return flowContinue
		case s.Tok == token.FALLTHROUGH:
			return flowFall
		default: // goto
			r.fail(s.Pos(), "goto in protocol control flow")
		}
	case *ast.GoStmt:
		if r.containsComm(s.Call) {
			r.fail(s.Pos(), "communication inside a goroutine (cross-goroutine protocol order is unmodeled)")
		}
		r.evalArgs(s.Call)
	case *ast.DeferStmt:
		if r.containsComm(s.Call) {
			r.fail(s.Pos(), "communication inside a defer (runs out of program order)")
		}
		r.evalArgs(s.Call)
	case *ast.SelectStmt:
		r.skipOrFail(s, s, "select statement around communication")
	case *ast.SendStmt:
		if r.containsComm(s) {
			r.fail(s.Pos(), "communication inside a channel send")
		}
		r.eval(s.Chan)
		r.eval(s.Value)
	case *ast.TypeSwitchStmt:
		r.skipOrFail(s, s, "type-dependent control flow around communication")
	case *ast.LabeledStmt:
		return r.exec(s.Stmt)
	case *ast.EmptyStmt:
	default:
		r.skipOrFail(s, s, "unsupported statement around communication")
	}
	return flowNext
}

// skipOrFail poisons and skips node when doing so cannot change the
// protocol (no communication inside, no control escaping past it);
// otherwise the scope is uncertifiable for the given reason.
func (r *runner) skipOrFail(pos ast.Node, n ast.Node, reason string) {
	if r.skippable(n) {
		r.poison(n)
		return
	}
	r.fail(pos.Pos(), "%s", reason)
}

func (r *runner) execAssign(s *ast.AssignStmt) {
	info := r.sc.pass.Info
	setIdent := func(lhs ast.Expr, v value) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				return
			}
			obj := analysis.IdentObj(info, id)
			if obj == nil {
				return
			}
			if v.ok {
				r.env[obj] = v
			} else {
				delete(r.env, obj)
			}
			return
		}
		r.eval(lhs) // evaluate index/selector sub-expressions for events
	}
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 && s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Op-assignment x op= e desugars to x = x op e.
		var cur value
		if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
			cur = r.env[analysis.IdentObj(info, id)]
		}
		rhs := r.eval(s.Rhs[0])
		setIdent(s.Lhs[0], r.binop(opOf(s.Tok), cur, rhs, s.Pos()))
		return
	}
	if len(s.Lhs) == len(s.Rhs) {
		vals := make([]value, len(s.Rhs))
		for i, e := range s.Rhs {
			vals[i] = r.eval(e)
		}
		for i, lhs := range s.Lhs {
			setIdent(lhs, vals[i])
		}
		return
	}
	// Multi-value assignment from a single call/expression.
	for _, e := range s.Rhs {
		r.eval(e)
	}
	for _, lhs := range s.Lhs {
		setIdent(lhs, unknown)
	}
}

// opOf maps an op-assign token to its binary operator.
func opOf(t token.Token) token.Token {
	switch t {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}

func (r *runner) execDecl(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return // consts are folded by the typechecker; types are inert
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			obj := r.sc.pass.Info.Defs[name]
			var v value
			switch {
			case i < len(vs.Values) && len(vs.Values) == len(vs.Names):
				v = r.eval(vs.Values[i])
			case len(vs.Values) > 0:
				if i == 0 {
					for _, e := range vs.Values {
						r.eval(e)
					}
				}
			default:
				v = zeroValue(obj)
			}
			if obj == nil || name.Name == "_" {
				continue
			}
			if v.ok {
				r.env[obj] = v
			} else {
				delete(r.env, obj)
			}
		}
	}
}

// zeroValue is the declared-without-initializer value of obj: 0 or false
// for basic integer/boolean types, unknown otherwise.
func zeroValue(obj types.Object) value {
	if obj == nil {
		return unknown
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	if !ok {
		return unknown
	}
	switch {
	case b.Info()&types.IsInteger != 0:
		return intVal(0)
	case b.Info()&types.IsBoolean != 0:
		return boolVal(false)
	}
	return unknown
}

func (r *runner) execIf(s *ast.IfStmt) flow {
	if s.Init != nil {
		if f := r.exec(s.Init); f != flowNext {
			return f
		}
	}
	cond := r.eval(s.Cond)
	if cond.ok && cond.isBool {
		if cond.b {
			return r.exec(s.Body)
		}
		return r.exec(s.Else)
	}
	return r.unknownIf(s)
}

// unknownIf handles a condition the interpreter cannot evaluate.
// Error-abort arms are assumed not taken: comm.Run aborts the whole
// session on any rank's error return, so an early exit cannot leave peers
// hanging — which makes the shortcut sound even when the condition is
// rank-derived (the universal `if got != want { return fmt.Errorf }`
// verification idiom). Arms that cannot change the protocol are skipped
// with their assignments poisoned, also regardless of taint. Only after
// both shortcuts do rank-derived conditions leave the provable fragment;
// what remains is a rank-uniform unknown, explored both ways as
// whole-protocol scenarios.
func (r *runner) unknownIf(s *ast.IfStmt) flow {
	if r.abortArm(s.Body) {
		r.poison(s.Body)
		return r.exec(s.Else)
	}
	if eb, ok := s.Else.(*ast.BlockStmt); ok && r.abortArm(eb) {
		r.poison(eb)
		return r.exec(s.Body)
	}
	if r.skippable(s.Body) && (s.Else == nil || r.skippable(s.Else)) {
		r.poison(s.Body)
		if s.Else != nil {
			r.poison(s.Else)
		}
		return flowNext
	}
	if commsym.RankDerived(r.sc.pass, r.sc.tainted, s.Cond) {
		r.fail(s.Cond.Pos(), "condition mixes rank-derived and run-time values; cannot resolve which ranks take this branch")
	}
	if r.choose(s.Cond.Pos()) {
		return r.exec(s.Body)
	}
	return r.exec(s.Else)
}

func (r *runner) execSwitch(s *ast.SwitchStmt) flow {
	if s.Init != nil {
		if f := r.exec(s.Init); f != flowNext {
			return f
		}
	}
	var tag value
	if s.Tag != nil {
		tag = r.eval(s.Tag)
	}
	clauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	var deflt *ast.CaseClause
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
		} else {
			clauses = append(clauses, cc)
		}
	}
	runFrom := func(idx int, list []*ast.CaseClause) flow {
		for i := idx; i < len(list); i++ {
			f := r.execBody(list[i].Body)
			if f != flowFall {
				if f == flowBreak {
					return flowNext
				}
				return f
			}
		}
		return flowNext
	}
	for i, cc := range clauses {
		taken := false
		known := true
		for _, ce := range cc.List {
			v := r.eval(ce)
			switch {
			case s.Tag != nil && v.ok && tag.ok:
				if v.isBool == tag.isBool && ((v.isBool && v.b == tag.b) || (!v.isBool && v.i == tag.i)) {
					taken = true
				}
			case s.Tag == nil && v.ok && v.isBool:
				if v.b {
					taken = true
				}
			default:
				known = false
			}
		}
		if !known && !taken {
			if commsym.RankDerived(r.sc.pass, r.sc.tainted, s.Tag) || anyRankDerived(r.sc.pass, r.sc.tainted, cc.List) {
				r.fail(cc.Pos(), "switch on a rank-derived run-time value; cannot resolve which ranks take this case")
			}
			taken = r.choose(cc.Pos())
		}
		if taken {
			return runFrom(i, clauses)
		}
	}
	if deflt != nil {
		f := r.execBody(deflt.Body)
		if f == flowBreak || f == flowFall {
			return flowNext
		}
		return f
	}
	return flowNext
}

func anyRankDerived(pass *analysis.Pass, tainted map[types.Object]bool, exprs []ast.Expr) bool {
	for _, e := range exprs {
		if commsym.RankDerived(pass, tainted, e) {
			return true
		}
	}
	return false
}

func (r *runner) execBody(list []ast.Stmt) flow {
	for i, st := range list {
		f := r.exec(st)
		if f == flowFall && i != len(list)-1 {
			r.fail(st.Pos(), "fallthrough not at end of case body")
		}
		if f != flowNext {
			return f
		}
	}
	return flowNext
}

func (r *runner) execFor(s *ast.ForStmt) flow {
	if s.Init != nil {
		if f := r.exec(s.Init); f != flowNext {
			return f
		}
	}
	for iter := 0; ; iter++ {
		if iter > maxIterations {
			r.fail(s.Pos(), "loop exceeds %d iterations", maxIterations)
		}
		cond := boolVal(true)
		if s.Cond != nil {
			cond = r.eval(s.Cond)
		}
		if !cond.ok || !cond.isBool {
			if commsym.RankDerived(r.sc.pass, r.sc.tainted, s.Cond) {
				r.fail(s.Cond.Pos(), "loop bound mixes rank-derived and run-time values")
			}
			if r.skippable(s.Body) && (s.Post == nil || r.skippable(s.Post)) {
				r.poison(s.Body)
				if s.Post != nil {
					r.poison(s.Post)
				}
				return flowNext
			}
			r.fail(s.Cond.Pos(), "cannot bound loop: data-dependent condition around communication")
		}
		if !cond.b {
			return flowNext
		}
		switch r.exec(s.Body) {
		case flowReturn:
			return flowReturn
		case flowBreak:
			return flowNext
		}
		if s.Post != nil {
			r.exec(s.Post)
		}
	}
}

func (r *runner) execRange(s *ast.RangeStmt) flow {
	x := r.eval(s.X)
	if x.ok && !x.isBool {
		// Go 1.22 range-over-int: for i := range n.
		var keyObj types.Object
		if s.Key != nil {
			if id, ok := ast.Unparen(s.Key).(*ast.Ident); ok && id.Name != "_" {
				keyObj = analysis.IdentObj(r.sc.pass.Info, id)
			}
		}
		for i := int64(0); i < x.i; i++ {
			if int(i) > maxIterations {
				r.fail(s.Pos(), "loop exceeds %d iterations", maxIterations)
			}
			if keyObj != nil {
				r.env[keyObj] = intVal(i)
			}
			switch r.exec(s.Body) {
			case flowReturn:
				return flowReturn
			case flowBreak:
				return flowNext
			}
		}
		return flowNext
	}
	if r.skippable(s.Body) {
		r.poison(s)
		return flowNext
	}
	if commsym.RankDerived(r.sc.pass, r.sc.tainted, s.X) {
		r.fail(s.X.Pos(), "range bound mixes rank-derived and run-time values")
	}
	r.fail(s.X.Pos(), "cannot bound range loop over a run-time value around communication")
	return flowNext
}

// --- expressions ---

func (r *runner) eval(e ast.Expr) value {
	if e == nil {
		return unknown
	}
	// Typechecker-folded constants first: literals, named constants,
	// constant arithmetic. Constant expressions cannot have side effects.
	if tv, ok := r.sc.pass.Info.Types[e]; ok && tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.Int:
			if i, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				return intVal(i)
			}
		case constant.Bool:
			return boolVal(constant.BoolVal(tv.Value))
		}
		return unknown
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := analysis.IdentObj(r.sc.pass.Info, e); obj != nil {
			return r.env[obj]
		}
	case *ast.ParenExpr:
		return r.eval(e.X)
	case *ast.UnaryExpr:
		x := r.eval(e.X)
		switch e.Op {
		case token.SUB:
			if x.ok && !x.isBool {
				return intVal(-x.i)
			}
		case token.ADD:
			return x
		case token.NOT:
			if x.ok && x.isBool {
				return boolVal(!x.b)
			}
		case token.XOR:
			if x.ok && !x.isBool {
				return intVal(^x.i)
			}
		}
		return unknown
	case *ast.BinaryExpr:
		return r.evalBinary(e)
	case *ast.CallExpr:
		return r.evalCall(e)
	case *ast.SelectorExpr:
		r.checkMethodValue(e)
		if _, ok := ast.Unparen(e.X).(*ast.Ident); !ok {
			r.eval(e.X)
		}
	case *ast.StarExpr:
		r.eval(e.X)
	case *ast.TypeAssertExpr:
		r.eval(e.X)
	case *ast.IndexExpr:
		r.eval(e.X)
		r.eval(e.Index)
	case *ast.IndexListExpr:
		r.eval(e.X)
		for _, i := range e.Indices {
			r.eval(i)
		}
	case *ast.SliceExpr:
		r.eval(e.X)
		r.eval(e.Low)
		r.eval(e.High)
		r.eval(e.Max)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				r.eval(kv.Value)
			} else {
				r.eval(elt)
			}
		}
	case *ast.FuncLit:
		if r.containsComm(e.Body) {
			r.fail(e.Pos(), "communication inside a nested function literal (runs where called, not where written)")
		}
	}
	return unknown
}

// checkMethodValue rejects comm primitives used as method values (c.Recv
// passed as a callback): the call site is invisible to the interpreter.
func (r *runner) checkMethodValue(e *ast.SelectorExpr) {
	sel, ok := r.sc.pass.Info.Selections[e]
	if !ok || sel.Kind() != types.MethodVal {
		return
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	if _, p2p := isP2P(fn); p2p {
		r.fail(e.Pos(), "point-to-point method used as a function value")
	}
}

func (r *runner) evalBinary(e *ast.BinaryExpr) value {
	if e.Op == token.LAND || e.Op == token.LOR {
		x := r.eval(e.X)
		if x.ok && x.isBool {
			if (e.Op == token.LAND && !x.b) || (e.Op == token.LOR && x.b) {
				return x // short-circuit: Y is not evaluated
			}
			return r.eval(e.Y)
		}
		if r.containsComm(e.Y) {
			r.fail(e.Y.Pos(), "communication in a conditionally-evaluated operand")
		}
		return unknown
	}
	x := r.eval(e.X)
	y := r.eval(e.Y)
	return r.binop(e.Op, x, y, e.OpPos)
}

func (r *runner) binop(op token.Token, x, y value, pos token.Pos) value {
	if !x.ok || !y.ok {
		return unknown
	}
	if x.isBool || y.isBool {
		if x.isBool && y.isBool {
			switch op {
			case token.EQL:
				return boolVal(x.b == y.b)
			case token.NEQ:
				return boolVal(x.b != y.b)
			}
		}
		return unknown
	}
	switch op {
	case token.ADD:
		return intVal(x.i + y.i)
	case token.SUB:
		return intVal(x.i - y.i)
	case token.MUL:
		return intVal(x.i * y.i)
	case token.QUO:
		if y.i == 0 {
			r.skip(pos, "integer division by zero at P=%d", r.p)
		}
		return intVal(x.i / y.i)
	case token.REM:
		if y.i == 0 {
			r.skip(pos, "integer division by zero at P=%d", r.p)
		}
		return intVal(x.i % y.i)
	case token.AND:
		return intVal(x.i & y.i)
	case token.OR:
		return intVal(x.i | y.i)
	case token.XOR:
		return intVal(x.i ^ y.i)
	case token.AND_NOT:
		return intVal(x.i &^ y.i)
	case token.SHL:
		if y.i < 0 || y.i > 63 {
			return unknown
		}
		return intVal(x.i << uint(y.i))
	case token.SHR:
		if y.i < 0 || y.i > 63 {
			return unknown
		}
		return intVal(x.i >> uint(y.i))
	case token.EQL:
		return boolVal(x.i == y.i)
	case token.NEQ:
		return boolVal(x.i != y.i)
	case token.LSS:
		return boolVal(x.i < y.i)
	case token.LEQ:
		return boolVal(x.i <= y.i)
	case token.GTR:
		return boolVal(x.i > y.i)
	case token.GEQ:
		return boolVal(x.i >= y.i)
	}
	return unknown
}

// evalArgs evaluates a call's arguments for their protocol events without
// classifying the call itself.
func (r *runner) evalArgs(call *ast.CallExpr) {
	for _, a := range call.Args {
		r.eval(a)
	}
}

func (r *runner) evalCall(call *ast.CallExpr) value {
	info := r.sc.pass.Info
	if b := analysis.CalleeBuiltin(info, call); b != "" {
		r.evalArgs(call)
		return unknown
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		// Conversion: numeric values pass through (framework peers and tags
		// are int-family; overflow at narrower widths is out of scope).
		v := r.eval(call.Args[0])
		if v.ok && !v.isBool {
			return v
		}
		return unknown
	}
	fn := analysis.Callee(info, call)
	if fn == nil {
		// Dynamic call through a function value.
		r.evalArgs(call)
		if r.containsComm(call.Fun) {
			r.fail(call.Pos(), "communication behind a dynamic call")
		}
		return unknown
	}
	if name, ok := isP2P(fn); ok {
		r.evalP2P(call, name)
		return unknown
	}
	if cname := commsym.CollectiveName(r.sc.pass, call); cname != "" {
		r.evalArgs(call)
		key, ok := keyOf(info, analysis.CommValueExpr(info, call))
		if !ok || key != r.sc.comm {
			r.fail(call.Pos(), "collective on a different communicator than the protocol's point-to-point traffic")
		}
		r.emit(event{kind: evBarrier, pos: call.Pos(), op: cname})
		return unknown
	}
	if analysis.IsMethodOn(fn, "comm", "Comm", "Rank") {
		if key, ok := keyOf(info, analysis.CommValueExpr(info, call)); ok && key == r.sc.comm {
			return intVal(r.rank)
		}
		return unknown
	}
	if analysis.IsMethodOn(fn, "comm", "Comm", "Size") {
		if key, ok := keyOf(info, analysis.CommValueExpr(info, call)); ok && key == r.sc.comm {
			return intVal(r.p)
		}
		return unknown
	}
	if isRunFn(fn) {
		// A nested protocol launch: its literal is analyzed as its own
		// scope; the launch itself is opaque to this scope's trace.
		return unknown
	}
	if r.sc.commFns[fn] {
		r.fail(call.Pos(), "calls %s, which itself communicates; inline the protocol or annotate", fn.Name())
	}
	r.evalArgs(call)
	return unknown
}

// evInt evaluates a peer or tag operand that must be concrete.
func (r *runner) evInt(e ast.Expr, what, op string) int64 {
	v := r.eval(e)
	if !v.ok || v.isBool {
		r.fail(e.Pos(), "%s %s operand is not a compile-time function of rank and size (non-affine protocol)", op, what)
	}
	return v.i
}

// checkPeer validates a concrete peer against the communicator size,
// mirroring comm's own bounds panic. wild allows AnySource.
func (r *runner) checkPeer(pos token.Pos, op string, peer int64, wild bool) {
	if wild && peer == -1 {
		return
	}
	if peer < 0 || peer >= r.p {
		r.skip(pos, "%s peer %d is outside the communicator (size %d): this call panics at run time", op, peer, r.p)
	}
}

func (r *runner) evalP2P(call *ast.CallExpr, name string) {
	info := r.sc.pass.Info
	key, ok := keyOf(info, analysis.CommValueExpr(info, call))
	if !ok {
		r.fail(call.Pos(), "communicator expression is too complex to track")
	}
	if key != r.sc.comm {
		if r.sc.splits[key.base] {
			r.fail(call.Pos(), "point-to-point on a Split sub-communicator (ranks are renumbered within the subgroup)")
		}
		r.fail(call.Pos(), "point-to-point on a second communicator value in the same protocol")
	}
	pos := call.Pos()
	switch name {
	case "Send": // Send(dst, tag, payload)
		dst := r.evInt(call.Args[0], "destination", "Send")
		tag := r.evInt(call.Args[1], "tag", "Send")
		r.eval(call.Args[2])
		r.checkPeer(pos, "Send", dst, false)
		r.emit(event{kind: evSend, peer: dst, tag: tag, pos: pos, op: "Send"})
	case "Recv", "RecvMsg": // Recv(src, tag)
		src := r.evInt(call.Args[0], "source", name)
		tag := r.evInt(call.Args[1], "tag", name)
		r.checkPeer(pos, name, src, true)
		r.emit(event{kind: evRecv, peer: src, tag: tag, pos: pos, op: name})
	case "SendRecv": // SendRecv(dst, payload, src, tag) = Send then Recv
		dst := r.evInt(call.Args[0], "destination", "SendRecv")
		r.eval(call.Args[1])
		src := r.evInt(call.Args[2], "source", "SendRecv")
		tag := r.evInt(call.Args[3], "tag", "SendRecv")
		r.checkPeer(pos, "SendRecv", dst, false)
		r.checkPeer(pos, "SendRecv", src, true)
		r.emit(event{kind: evSend, peer: dst, tag: tag, pos: pos, op: "SendRecv"})
		r.emit(event{kind: evRecv, peer: src, tag: tag, pos: pos, op: "SendRecv"})
	case "Probe":
		r.fail(pos, "Probe-guarded protocol is data-dependent (matching depends on message arrival timing)")
	}
}

// isAbortCall reports whether call unconditionally ends the rank's
// protocol participation: panic, testing.T/B/F Fatal/Skip family, os.Exit,
// runtime.Goexit.
func (r *runner) isAbortCall(call *ast.CallExpr) bool {
	if analysis.CalleeBuiltin(r.sc.pass.Info, call) == "panic" {
		return true
	}
	fn := analysis.Callee(r.sc.pass.Info, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
		rt := analysis.RecvTypeName(fn)
		return analysis.ObjPkgIs(fn, "testing") && (rt == "T" || rt == "B" || rt == "F" || rt == "common")
	case "Exit":
		return fn.Pkg() != nil && fn.Pkg().Path() == "os"
	case "Goexit":
		return fn.Pkg() != nil && fn.Pkg().Path() == "runtime"
	}
	return false
}

// --- protocol-shape predicates ---

// containsComm reports whether n contains any communication the protocol
// trace would have to model: point-to-point calls or method values,
// collectives, calls to same-package communicating helpers, or nested
// protocol launches.
func (r *runner) containsComm(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.Callee(r.sc.pass.Info, n)
			if _, ok := isP2P(fn); ok {
				found = true
			} else if commsym.CollectiveName(r.sc.pass, n) != "" {
				found = true
			} else if isRunFn(fn) {
				found = true
			} else if fn != nil && r.sc.commFns[fn] {
				found = true
			}
		case *ast.SelectorExpr:
			if sel, ok := r.sc.pass.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					if _, p2p := isP2P(fn); p2p {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// abortArm reports whether block is an error-abort arm: it performs no
// communication and its execution provably ends the function — via a
// non-control return (per commsym's abort-path rule: returning anything
// beyond nil/true/false/literals) or an abort call. Such arms are assumed
// not taken.
func (r *runner) abortArm(block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 || r.containsComm(block) {
		return false
	}
	for _, st := range block.List {
		switch st := st.(type) {
		case *ast.ReturnStmt:
			if !controlReturn(st) {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && r.isAbortCall(call) {
				return true
			}
		}
	}
	return false
}

// controlReturn mirrors commsym's rule: bare returns and returns of only
// nil/true/false/basic literals steer control flow; anything else is an
// error abort.
func controlReturn(ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		switch res := ast.Unparen(res).(type) {
		case *ast.BasicLit:
		case *ast.Ident:
			if res.Name != "nil" && res.Name != "true" && res.Name != "false" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// skippable reports whether skipping n entirely (poisoning its
// assignments) cannot change the protocol: it contains no communication
// and no control flow escapes past it — no control returns, no
// breaks/continues binding outside n, no gotos. Abort returns inside are
// fine (assumed not taken); breaks binding to a loop or switch inside n
// (or to n itself) stay inside the skipped region.
func (r *runner) skippable(n ast.Node) bool {
	if n == nil {
		return true
	}
	if r.containsComm(n) {
		return false
	}
	return !escapes(n)
}

// escapes reports whether control flow can leave n other than by falling
// through its end.
func escapes(n ast.Node) bool {
	breakDepth, loopDepth := 0, 0
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		breakDepth, loopDepth = 1, 1
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		breakDepth = 1
	}
	return escapesWalk(n, n, breakDepth, loopDepth)
}

func escapesWalk(root, n ast.Node, breakDepth, loopDepth int) bool {
	esc := false
	var walk func(n ast.Node, bd, ld int)
	walk = func(n ast.Node, bd, ld int) {
		if esc || n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return // its control flow is its own
		case *ast.ReturnStmt:
			if controlReturn(s) {
				esc = true
			}
			return
		case *ast.BranchStmt:
			switch {
			case s.Label != nil || s.Tok == token.GOTO:
				esc = true
			case s.Tok == token.BREAK && bd == 0:
				esc = true
			case s.Tok == token.CONTINUE && ld == 0:
				esc = true
			}
			return
		case *ast.ForStmt:
			if s != root {
				walk(s.Init, bd, ld)
				walk(s.Body, bd+1, ld+1)
				walk(s.Post, bd, ld)
				return
			}
		case *ast.RangeStmt:
			if s != root {
				walk(s.Body, bd+1, ld+1)
				return
			}
		case *ast.SwitchStmt:
			if s != root {
				walk(s.Init, bd, ld)
				walk(s.Body, bd+1, ld)
				return
			}
		case *ast.TypeSwitchStmt:
			if s != root {
				walk(s.Init, bd, ld)
				walk(s.Assign, bd, ld)
				walk(s.Body, bd+1, ld)
				return
			}
		case *ast.SelectStmt:
			if s != root {
				walk(s.Body, bd+1, ld)
				return
			}
		}
		// Generic descent preserving the current depths.
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			children = append(children, c)
			return false
		})
		for _, c := range children {
			walk(c, bd, ld)
		}
	}
	walk(n, breakDepth, loopDepth)
	return esc
}

// poison forgets every variable n assigns: skipped code may have changed
// them in ways the interpreter did not model.
func (r *runner) poison(n ast.Node) {
	info := r.sc.pass.Info
	drop := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := analysis.IdentObj(info, id); obj != nil {
				delete(r.env, obj)
			}
		}
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				drop(lhs)
			}
		case *ast.IncDecStmt:
			drop(s.X)
		case *ast.ValueSpec:
			for _, name := range s.Names {
				drop(name)
			}
		case *ast.RangeStmt:
			if s.Key != nil {
				drop(s.Key)
			}
			if s.Value != nil {
				drop(s.Value)
			}
		}
		return true
	})
}
