package p2pmatch

import (
	"fmt"
	"go/token"
	"strings"
)

// This file model-checks the per-rank event traces the interpreter
// extracted. The exploration is exact for comm's semantics (see the
// package comment): sends are eager, so the checker advances every rank
// through its sends ("closure"), synchronizes collectives as full
// barriers, and branches only on which pending message each blocked
// receive consumes. comm delivers per-channel in order and Recv takes the
// first arrival matching (src, tag), so for each source the oldest
// unconsumed tag-matching send is the unique candidate from that source —
// a tag-selective receive skips older non-matching messages, which stay
// queued. The state space over (program counters, consumed set) is a DAG;
// memoized DFS visits each state once.

// witness is one deadlock finding, already classified and formatted.
type witness struct {
	pos token.Pos
	msg string
}

// lostMsg is a send no schedule ever receives, in a protocol that
// otherwise always completes.
type lostMsg struct {
	ev   event
	rank int64
}

// matchResult is the outcome of exploring one (P, scenario).
type matchResult struct {
	dead     *witness
	lost     []lostMsg
	overflow bool
}

// sendRef locates one send event globally.
type sendRef struct {
	rank int   // sender
	idx  int   // index in the sender's trace
	gid  int   // global send id (bit position in the consumed set)
	tag  int64 // send tag
}

type matcher struct {
	evs    [][]event
	p      int
	sends  [][]sendRef // sends[src*p+dst]: channel src->dst in send order
	refs   []sendRef   // refs[gid]
	nSends int
	words  int // consumed-bitset length in uint64 words
	memo   map[string]*nodeResult
	states int
}

// nodeResult memoizes the exploration outcome from one state: the first
// deadlock witness (if any), and otherwise the intersection of unconsumed
// send sets over all reachable terminal states.
type nodeResult struct {
	dead *witness
	lost []uint64
}

// explore model-checks the traces for size p.
func explore(evs [][]event, p int64) matchResult {
	m := &matcher{
		evs:  evs,
		p:    int(p),
		memo: map[string]*nodeResult{},
	}
	m.index()
	pcs := make([]int, m.p)
	consumed := make([]uint64, m.words)
	res := m.explore(pcs, consumed)
	out := matchResult{overflow: m.states > maxMatchStates}
	if out.overflow {
		return out
	}
	if res.dead != nil {
		out.dead = res.dead
		return out
	}
	for gid := 0; gid < m.nSends; gid++ {
		if res.lost[gid/64]&(1<<(gid%64)) != 0 {
			ref := m.refs[gid]
			out.lost = append(out.lost, lostMsg{ev: m.evs[ref.rank][ref.idx], rank: int64(ref.rank)})
		}
	}
	return out
}

func (m *matcher) index() {
	m.sends = make([][]sendRef, m.p*m.p)
	for r := 0; r < m.p; r++ {
		for i, ev := range m.evs[r] {
			if ev.kind != evSend {
				continue
			}
			ref := sendRef{rank: r, idx: i, gid: len(m.refs), tag: ev.tag}
			m.refs = append(m.refs, ref)
			ch := r*m.p + int(ev.peer)
			m.sends[ch] = append(m.sends[ch], ref)
		}
	}
	m.nSends = len(m.refs)
	m.words = (m.nSends + 63) / 64
	if m.words == 0 {
		m.words = 1
	}
}

// closure advances every rank through its sends and through fully-arrived
// barriers. Mutates pcs in place.
func (m *matcher) closure(pcs []int) {
	for {
		progress := false
		for r := 0; r < m.p; r++ {
			for pcs[r] < len(m.evs[r]) && m.evs[r][pcs[r]].kind == evSend {
				pcs[r]++
				progress = true
			}
		}
		allBarrier := true
		for r := 0; r < m.p; r++ {
			if pcs[r] >= len(m.evs[r]) || m.evs[r][pcs[r]].kind != evBarrier {
				allBarrier = false
				break
			}
		}
		if allBarrier {
			for r := 0; r < m.p; r++ {
				pcs[r]++
			}
			progress = true
		}
		if !progress {
			return
		}
	}
}

func (m *matcher) isConsumed(consumed []uint64, gid int) bool {
	return consumed[gid/64]&(1<<(gid%64)) != 0
}

// candidates returns, for the receive blocked at rank d, the consumable
// send per eligible source: the oldest executed, unconsumed, tag-matching
// send on each src->d channel.
func (m *matcher) candidates(d int, pcs []int, consumed []uint64) []sendRef {
	ev := m.evs[d][pcs[d]]
	var out []sendRef
	for s := 0; s < m.p; s++ {
		if ev.peer >= 0 && s != int(ev.peer) {
			continue
		}
		for _, ref := range m.sends[s*m.p+d] {
			if ref.idx >= pcs[s] {
				break // not executed yet; later sends cannot overtake
			}
			if m.isConsumed(consumed, ref.gid) {
				continue
			}
			if ev.tag == -1 || ev.tag == ref.tag {
				out = append(out, ref)
				break // oldest matching per source is the unique candidate
			}
			// Older non-matching message stays queued; keep scanning.
		}
	}
	return out
}

func (m *matcher) key(pcs []int, consumed []uint64) string {
	var b strings.Builder
	b.Grow(len(pcs)*3 + len(consumed)*17)
	for _, pc := range pcs {
		fmt.Fprintf(&b, "%d,", pc)
	}
	for _, w := range consumed {
		fmt.Fprintf(&b, "%x,", w)
	}
	return b.String()
}

func (m *matcher) explore(pcs []int, consumed []uint64) *nodeResult {
	m.closure(pcs)
	key := m.key(pcs, consumed)
	if res, ok := m.memo[key]; ok {
		return res
	}
	m.states++
	if m.states > maxMatchStates {
		return &nodeResult{lost: make([]uint64, m.words)}
	}
	res := &nodeResult{}
	m.memo[key] = res
	allDone := true
	for r := 0; r < m.p; r++ {
		if pcs[r] < len(m.evs[r]) {
			allDone = false
			break
		}
	}
	if allDone {
		res.lost = make([]uint64, m.words)
		for gid := 0; gid < m.nSends; gid++ {
			if !m.isConsumed(consumed, gid) {
				res.lost[gid/64] |= 1 << (gid % 64)
			}
		}
		return res
	}
	moved := false
	for d := 0; d < m.p; d++ {
		if pcs[d] >= len(m.evs[d]) || m.evs[d][pcs[d]].kind != evRecv {
			continue
		}
		for _, ref := range m.candidates(d, pcs, consumed) {
			moved = true
			npcs := append([]int(nil), pcs...)
			ncons := append([]uint64(nil), consumed...)
			npcs[d]++
			ncons[ref.gid/64] |= 1 << (ref.gid % 64)
			child := m.explore(npcs, ncons)
			if child.dead != nil {
				res.dead = child.dead
				return res
			}
			if res.lost == nil {
				res.lost = append([]uint64(nil), child.lost...)
			} else {
				for i := range res.lost {
					res.lost[i] &= child.lost[i]
				}
			}
		}
	}
	if !moved {
		res.dead = m.witness(pcs, consumed)
	}
	return res
}

// witness classifies a stuck state into a diagnostic.
func (m *matcher) witness(pcs []int, consumed []uint64) *witness {
	// First blocked rank anchors the report.
	first := -1
	for r := 0; r < m.p; r++ {
		if pcs[r] < len(m.evs[r]) {
			first = r
			break
		}
	}
	if first < 0 {
		return nil // unreachable: witness is only built for stuck states
	}
	ev := m.evs[first][pcs[first]]
	if ev.kind == evBarrier {
		// Collective divergence: a peer left the protocol (or blocked in a
		// receive) while this rank waits at a collective.
		other := -1
		for r := 0; r < m.p; r++ {
			if pcs[r] >= len(m.evs[r]) || m.evs[r][pcs[r]].kind != evBarrier {
				other = r
				break
			}
		}
		desc := "has already left the protocol"
		if other >= 0 && pcs[other] < len(m.evs[other]) {
			desc = fmt.Sprintf("is blocked at %s", m.evs[other][pcs[other]].op)
		}
		return &witness{pos: ev.pos, msg: fmt.Sprintf(
			"point-to-point deadlock at P=%d: rank %d waits at %s while rank %d %s (collective/point-to-point divergence)",
			m.p, first, ev.op, other, desc)}
	}
	// Receive-blocked. Count matching sends over the whole protocol, and
	// how many are still unconsumed.
	total, unconsumed := 0, 0
	for s := 0; s < m.p; s++ {
		if ev.peer >= 0 && s != int(ev.peer) {
			continue
		}
		for _, ref := range m.sends[s*m.p+first] {
			if ev.tag != -1 && ev.tag != ref.tag {
				continue
			}
			total++
			if !m.isConsumed(consumed, ref.gid) {
				unconsumed++
			}
		}
	}
	srcStr := "any source"
	if ev.peer >= 0 {
		srcStr = fmt.Sprintf("rank %d", ev.peer)
	}
	tagStr := "any tag"
	if ev.tag != -1 {
		tagStr = fmt.Sprintf("tag %d", ev.tag)
	}
	switch {
	case total == 0:
		return &witness{pos: ev.pos, msg: fmt.Sprintf(
			"point-to-point deadlock at P=%d: rank %d blocks in %s from %s with %s that no Send in the protocol ever matches (unmatched receive)",
			m.p, first, ev.op, srcStr, tagStr)}
	case unconsumed == 0:
		return &witness{pos: ev.pos, msg: fmt.Sprintf(
			"point-to-point deadlock at P=%d: rank %d blocks in %s from %s with %s after other receives consumed all %d matching Sends (send/receive count mismatch)",
			m.p, first, ev.op, srcStr, tagStr, total)}
	}
	// Matching sends exist but sit behind blocked program counters: a
	// rendezvous cycle. Report the waits-for chain.
	return &witness{pos: ev.pos, msg: fmt.Sprintf(
		"point-to-point deadlock at P=%d: rendezvous cycle (%s); every rank on the cycle waits to receive before issuing the Send its successor needs",
		m.p, m.cycle(first, pcs, consumed))}
}

// cycle renders the waits-for chain starting at rank d: a blocked receiver
// waits for the first rank whose un-executed trace suffix holds a matching
// send; a barrier-blocked rank waits for the first rank not at the barrier.
func (m *matcher) cycle(d int, pcs []int, consumed []uint64) string {
	waitsFor := func(r int) int {
		if pcs[r] >= len(m.evs[r]) {
			return -1
		}
		ev := m.evs[r][pcs[r]]
		if ev.kind == evBarrier {
			for o := 0; o < m.p; o++ {
				if pcs[o] >= len(m.evs[o]) || m.evs[o][pcs[o]].kind != evBarrier {
					return o
				}
			}
			return -1
		}
		for s := 0; s < m.p; s++ {
			if ev.peer >= 0 && s != int(ev.peer) {
				continue
			}
			for _, ref := range m.sends[s*m.p+r] {
				if ref.idx < pcs[s] || m.isConsumed(consumed, ref.gid) {
					continue
				}
				if ev.tag == -1 || ev.tag == ref.tag {
					return s
				}
			}
		}
		return -1
	}
	var chain []string
	seen := map[int]bool{}
	for r := d; !seen[r]; {
		seen[r] = true
		next := waitsFor(r)
		if next < 0 {
			chain = append(chain, fmt.Sprintf("rank %d blocks", r))
			break
		}
		chain = append(chain, fmt.Sprintf("rank %d waits for rank %d", r, next))
		r = next
	}
	return strings.Join(chain, ", ")
}
