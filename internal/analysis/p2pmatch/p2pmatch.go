// Package p2pmatch implements the odinvet analyzer that certifies
// point-to-point protocols deadlock-free by abstract interpretation.
//
// odinstress *searches* schedules for deadlocks and can only ever witness
// their presence; p2pmatch closes the complementary gap from ROADMAP item 4
// and *proves* their absence for the restricted — but dominant — protocol
// shape where peers and tags are compile-time functions of c.Rank() and
// c.Size(). Per protocol scope it interprets the statement tree once per
// concrete rank for every communicator size P in {1,2,3,4,5,7,8},
// extracting each rank's ordered trace of Send/Recv/SendRecv events and
// collective barriers, then model-checks the traces: every Recv must match
// a Send under the comm package's mailbox semantics (first arriving message
// with (src==AnySource||msg.src==src) && (tag==AnyTag||msg.tag==tag),
// per-source non-overtaking), and no rendezvous cycle may leave a rank
// blocked forever.
//
// The exploration is exact for the comm semantics it models, because comm's
// Send is eager (the payload is copied and queued; Send never blocks).
// Under eager sends, running every rank forward to its next Recv or
// collective ("maximal progress") loses no behaviors, and the only true
// scheduling freedom is which pending message a wildcard Recv consumes.
// The checker therefore advances all ranks through sends, treats each
// collective as a full barrier, and branches only at receives — over the
// per-source oldest pending matching message, which per-source FIFO
// delivery makes the unique candidate from that source. Memoized DFS over
// these states visits every reachable matching; a state where some rank is
// blocked and no receive can fire is a deadlock witness, classified as:
//
//   - unmatched receive: no Send anywhere in the protocol matches;
//   - wildcard count mismatch: matching Sends exist, but other receives
//     consumed them all;
//   - cyclic rendezvous wait: matching Sends are still pending behind the
//     program counters of blocked ranks (reported with the waits-for cycle);
//   - collective divergence: a rank waits at a collective after a peer has
//     already left the protocol;
//   - lost message: a Send that no execution ever receives (reported only
//     when the protocol otherwise completes).
//
// A protocol scope is either the body of a function literal handed to
// comm.Run/RunStats/RunModel/RunConfig (when the size argument is constant,
// only that P is checked) or any function declaration that performs
// point-to-point calls directly. Conditions the interpreter cannot evaluate
// are classified by commsym's rank-taint: rank-derived unknowns make the
// protocol non-affine ("cannot certify"), while rank-independent unknowns
// (transport kind, error checks, configuration) are assumed uniform across
// ranks and explored both ways as whole-protocol scenarios. Error-abort
// arms — branches that end in a non-control return or a panic/t.Fatal —
// are assumed not taken, matching commsym's documented abort-path stance.
//
// Everything outside the provable shape is reported as "cannot certify"
// rather than silently skipped: data-dependent peers or tags, Probe-guarded
// receives, unbounded or data-dependent loops around communication,
// point-to-point on Split sub-communicators (their ranks are renumbered),
// communication through same-package helper calls, communication in
// goroutines/defers, and protocols that mix wildcard receives with
// collectives. A human who has vetted such a protocol silences the
// analyzer with //lint:allow p2pmatch and a justification. Cross-package
// calls are assumed non-communicating: framework primitives reserve their
// own tag ranges (enforced by tagcheck and the tagregistry), so they cannot
// steal a protocol's messages.
package p2pmatch

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"odinhpc/internal/analysis"
	"odinhpc/internal/analysis/commsym"
)

// Analyzer certifies point-to-point protocols deadlock-free, or reports
// why it cannot.
var Analyzer = &analysis.Analyzer{
	Name: "p2pmatch",
	Doc: "certifies point-to-point Send/Recv protocols deadlock-free by " +
		"interpreting them per rank for P in {1,2,3,4,5,7,8} and matching " +
		"every receive to a send; reports unmatched receives, lost messages, " +
		"wildcard count mismatches and rendezvous cycles, and flags " +
		"non-affine protocols it cannot certify; annotate hand-vetted " +
		"protocols with //lint:allow p2pmatch",
	Run: run,
}

// rankCounts are the communicator sizes a size-polymorphic protocol is
// concretized over: every count up to 5, plus 7 and 8 to catch power-of-two
// and odd-size asymmetries in tree- and ring-shaped protocols.
var rankCounts = []int64{1, 2, 3, 4, 5, 7, 8}

// Interpretation and exploration budgets. Exceeding one is reported as
// "cannot certify", never ignored.
const (
	maxScenarios   = 64    // uniform-condition resolutions per scope
	maxIterations  = 4096  // loop iterations per rank interpretation
	maxSteps       = 20000 // statements per rank interpretation
	maxEventsRank  = 512   // protocol events per rank
	maxMatchStates = 20000 // memoized states per (P, scenario) exploration
)

// p2pNames are the point-to-point methods on comm.Comm.
var p2pNames = map[string]bool{
	"Send": true, "Recv": true, "RecvMsg": true, "SendRecv": true, "Probe": true,
}

// runFnNames are the package-level comm entry points that spawn one
// goroutine per rank from a protocol function literal.
var runFnNames = map[string]bool{
	"Run": true, "RunStats": true, "RunModel": true, "RunConfig": true,
}

// commKey canonicalizes the communicator value a call operates on. Three
// shapes are recognized: a plain identifier (base only), a field selection
// base.sel (core's ctx.c), and a no-argument accessor method base.sel()
// (slicing's ctx.Comm()), which is assumed pure. Anything else is "too
// complex" and the protocol cannot be certified.
type commKey struct {
	base types.Object
	sel  types.Object
}

// keyOf resolves e to a commKey. ok is false for unsupported shapes.
func keyOf(info *types.Info, e ast.Expr) (commKey, bool) {
	if e == nil {
		return commKey{}, false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := analysis.IdentObj(info, e); obj != nil {
			return commKey{base: obj}, true
		}
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return commKey{}, false
		}
		bobj := analysis.IdentObj(info, base)
		sobj := analysis.IdentObj(info, e.Sel)
		if bobj != nil && sobj != nil {
			return commKey{base: bobj, sel: sobj}, true
		}
	case *ast.CallExpr:
		if len(e.Args) != 0 {
			return commKey{}, false
		}
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return commKey{}, false
		}
		return keyOf(info, sel)
	}
	return commKey{}, false
}

// isP2P reports whether fn is one of the point-to-point methods on
// comm.Comm, returning its name.
func isP2P(fn *types.Func) (string, bool) {
	if fn == nil || !p2pNames[fn.Name()] {
		return "", false
	}
	if !analysis.IsMethodOn(fn, "comm", "Comm", fn.Name()) {
		return "", false
	}
	return fn.Name(), true
}

// isRunFn reports whether fn is comm.Run or one of its variants.
func isRunFn(fn *types.Func) bool {
	if fn == nil || !runFnNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return analysis.ObjPkgIs(fn, "comm")
}

// isPrimitiveDecl reports whether decl declares one of the point-to-point
// primitives themselves ((*Comm).Send and friends, in the real comm package
// or a testdata fake). Their bodies implement the semantics the analyzer
// models and are exempt from analysis.
func isPrimitiveDecl(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || !p2pNames[decl.Name.Name] {
		return false
	}
	fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	_, ok = isP2P(fn)
	return ok
}

// scope is one protocol to certify: a statement tree interpreted once per
// (P, rank, scenario).
type scope struct {
	pass    *analysis.Pass
	body    *ast.BlockStmt
	pos     token.Pos // anchor for scope-level diagnostics
	comm    commKey   // the protocol's communicator value
	knownP  int64     // 0 when the size is not a compile-time constant
	tainted map[types.Object]bool
	splits  map[types.Object]bool
	commFns map[types.Object]bool // same-package transitively-communicating functions
	runLits map[*ast.FuncLit]bool // protocol literals analyzed as their own scopes
	param   types.Object          // comm parameter object for Run literals, else nil
}

func run(pass *analysis.Pass) error {
	commFns := communicatingFuncs(pass)
	for _, file := range pass.Files {
		var covered []ast.Node // regions whose p2p calls are accounted for
		analysis.FuncScopes(file, func(decl *ast.FuncDecl) {
			if isPrimitiveDecl(pass, decl) {
				covered = append(covered, decl)
				return
			}
			lits, byLit := runLiterals(pass, decl)
			for _, rl := range lits {
				covered = append(covered, rl.lit)
				analyzeScope(&scope{
					pass:    pass,
					body:    rl.lit.Body,
					pos:     rl.lit.Pos(),
					comm:    commKey{base: rl.param},
					knownP:  rl.knownP,
					tainted: commsym.TaintedObjects(pass, rl.lit),
					splits:  commsym.SplitObjects(pass, rl.lit),
					commFns: commFns,
					runLits: byLit,
					param:   rl.param,
				})
			}
			if first := firstP2PCall(pass, decl, byLit); first != nil {
				covered = append(covered, decl)
				sc := &scope{
					pass:    pass,
					body:    decl.Body,
					pos:     decl.Pos(),
					tainted: commsym.TaintedObjects(pass, decl),
					splits:  commsym.SplitObjects(pass, decl),
					commFns: commFns,
					runLits: byLit,
				}
				key, ok := keyOf(pass.Info, analysis.CommValueExpr(pass.Info, first))
				if !ok {
					pass.Reportf(first.Pos(), "%s", cannotMsg("communicator expression is too complex to track"))
					return
				}
				if sc.splits[key.base] {
					pass.Reportf(first.Pos(), "%s", cannotMsg("point-to-point on a Split sub-communicator (ranks are renumbered within the subgroup)"))
					return
				}
				sc.comm = key
				analyzeScope(sc)
			}
		})
		sweepUncovered(pass, file, covered)
	}
	return nil
}

// runLit is a protocol literal passed to comm.Run or a variant.
type runLit struct {
	lit    *ast.FuncLit
	param  types.Object // the literal's *comm.Comm parameter
	knownP int64        // constant size argument, or 0
}

// runLiterals collects the function literals decl passes (at any nesting
// depth) as the trailing argument of comm.Run/RunStats/RunModel/RunConfig,
// in source order.
func runLiterals(pass *analysis.Pass, decl *ast.FuncDecl) ([]runLit, map[*ast.FuncLit]bool) {
	var lits []runLit
	byLit := map[*ast.FuncLit]bool{}
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 || !isRunFn(analysis.Callee(pass.Info, call)) {
			return true
		}
		lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
		if !ok {
			return true
		}
		rl := runLit{lit: lit}
		if v, ok := analysis.IntConstVal(pass.Info, call.Args[0]); ok && v > 0 {
			rl.knownP = v
		}
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj != nil && analysis.TypeIs(obj.Type(), "comm", "Comm") {
					rl.param = obj
				}
			}
		}
		if rl.param != nil {
			lits = append(lits, rl)
			byLit[lit] = true
		}
		return true
	})
	return lits, byLit
}

// firstP2PCall returns the first point-to-point call in decl that is not
// inside one of its Run protocol literals, or nil. Its communicator
// expression canonicalizes the declaration scope's communicator.
func firstP2PCall(pass *analysis.Pass, decl *ast.FuncDecl, runLits map[*ast.FuncLit]bool) *ast.CallExpr {
	var first *ast.CallExpr
	ast.Inspect(decl, func(n ast.Node) bool {
		if first != nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && runLits[lit] {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := isP2P(analysis.Callee(pass.Info, call)); ok {
			first = call
			return false
		}
		return true
	})
	return first
}

// communicatingFuncs computes the set of same-package functions that
// transitively perform comm traffic (point-to-point or collective). A call
// to one from a protocol scope makes the protocol uncertifiable: the
// helper's sends and receives are part of the matching but are not
// interpreted inline.
func communicatingFuncs(pass *analysis.Pass) map[types.Object]bool {
	set := map[types.Object]bool{}
	type declFn struct {
		obj  types.Object
		decl *ast.FuncDecl
	}
	var decls []declFn
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(decl *ast.FuncDecl) {
			obj := pass.Info.Defs[decl.Name]
			if obj == nil {
				return
			}
			decls = append(decls, declFn{obj, decl})
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.Callee(pass.Info, call)
				if _, ok := isP2P(fn); ok {
					set[obj] = true
				} else if commsym.CollectiveName(pass, call) != "" {
					set[obj] = true
				}
				return true
			})
		})
	}
	for i := 0; i < 8; i++ {
		changed := false
		for _, d := range decls {
			if set[d.obj] {
				continue
			}
			ast.Inspect(d.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := analysis.Callee(pass.Info, call); fn != nil && set[fn] {
					set[d.obj] = true
					changed = true
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
	return set
}

// sweepUncovered reports point-to-point calls that no analyzed scope
// accounts for — in practice, package-level function literals. Silence
// would read as certification.
func sweepUncovered(pass *analysis.Pass, file *ast.File, covered []ast.Node) {
	inside := func(pos token.Pos) bool {
		for _, n := range covered {
			if n.Pos() <= pos && pos < n.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := isP2P(analysis.Callee(pass.Info, call)); ok && !inside(call.Pos()) {
			pass.Reportf(call.Pos(), "%s", cannotMsg("point-to-point call outside any analyzable function scope"))
		}
		return true
	})
}

// cannotMsg formats a "cannot certify" diagnostic.
func cannotMsg(reason string) string {
	return fmt.Sprintf("cannot certify point-to-point protocol: %s; vet the protocol by hand and annotate it with //lint:allow p2pmatch", reason)
}

// certErr aborts a scope's interpretation: the protocol is outside the
// provable shape (or definitely broken, for kindDiag).
type certErr struct {
	pos    token.Pos
	reason string
	// kindDiag marks reasons that are definite findings (a peer that is
	// always out of range) rather than certification failures; they are
	// reported verbatim without the cannot-certify wrapper.
	kindDiag bool
}

// inapplicable aborts one (P, rank) interpretation for size-polymorphic
// scopes: this P makes the protocol panic before communicating (peer out
// of range, division by zero), so the runtime would never reach a deadlock
// at this size either.
type inapplicable struct{}

// scenario is one resolution of a protocol's rank-uniform unknown
// conditions, keyed by condition position. decided lists positions in
// discovery order; choices gives each one's branch.
type scenario struct {
	choices map[token.Pos]bool
	decided []token.Pos
	// fixed counts the decisions inherited from the parent scenario; only
	// decisions beyond fixed spawn flipped variants.
	fixed int
}

// analyzeScope interprets and model-checks one protocol scope, reporting at
// most one deadlock diagnostic (smallest failing P, first witness) plus any
// lost-message findings.
func analyzeScope(sc *scope) {
	counts := rankCounts
	if sc.knownP > 0 {
		counts = []int64{sc.knownP}
	}
	scenarios := []*scenario{{choices: map[token.Pos]bool{}}}
	type lostSend struct {
		p    int64
		ev   event
		from int64
	}
	lost := map[token.Pos]lostSend{}
	var lostOrder []token.Pos
	for si := 0; si < len(scenarios); si++ {
		scen := scenarios[si]
		admissible := false
		for _, p := range counts {
			evs, ok, err := interpretRanks(sc, scen, p)
			if err != nil {
				if err.kindDiag {
					sc.pass.Reportf(err.pos, "%s", err.reason)
				} else {
					sc.pass.Reportf(err.pos, "%s", cannotMsg(err.reason))
				}
				return
			}
			if !ok {
				continue // size inapplicable: protocol panics before blocking
			}
			admissible = true
			res := explore(evs, p)
			if res.overflow {
				sc.pass.Reportf(sc.pos, "%s", cannotMsg(fmt.Sprintf("wildcard matching state space exceeds %d states at P=%d", maxMatchStates, p)))
				return
			}
			if res.dead != nil {
				sc.pass.Reportf(res.dead.pos, "%s", res.dead.msg)
				return
			}
			for _, l := range res.lost {
				if _, seen := lost[l.ev.pos]; !seen {
					lost[l.ev.pos] = lostSend{p: p, ev: l.ev, from: l.rank}
					lostOrder = append(lostOrder, l.ev.pos)
				}
			}
		}
		if !admissible && sc.knownP == 0 {
			sc.pass.Reportf(sc.pos, "%s", cannotMsg("no admissible communicator size in {1,2,3,4,5,7,8}: every size panics before communicating"))
			return
		}
		// Spawn one variant per decision first made in this scenario, with
		// that decision flipped and later ones left to be rediscovered.
		for k := scen.fixed; k < len(scen.decided); k++ {
			if len(scenarios) >= maxScenarios {
				sc.pass.Reportf(scen.decided[k], "%s", cannotMsg(fmt.Sprintf("protocol forks on more than %d resolutions of data-dependent conditions", maxScenarios)))
				return
			}
			v := &scenario{choices: map[token.Pos]bool{}, fixed: k + 1}
			for _, pos := range scen.decided[:k+1] {
				v.choices[pos] = scen.choices[pos]
				v.decided = append(v.decided, pos)
			}
			v.choices[scen.decided[k]] = !scen.choices[scen.decided[k]]
			scenarios = append(scenarios, v)
		}
	}
	for _, pos := range lostOrder {
		l := lost[pos]
		sc.pass.Reportf(pos, "lost message at P=%d: %s to rank %d tag %d by rank %d is never received (unmatched send)",
			l.p, l.ev.op, l.ev.peer, l.ev.tag, l.from)
	}
}

// interpretRanks runs the per-rank interpreter for every rank at size p
// under scenario scen. ok is false when the size is inapplicable.
func interpretRanks(sc *scope, scen *scenario, p int64) (evs [][]event, ok bool, err *certErr) {
	evs = make([][]event, p)
	for rank := int64(0); rank < p; rank++ {
		r := &runner{sc: sc, p: p, rank: rank, scen: scen, env: map[types.Object]value{}}
		trace, applicable, cerr := r.run()
		if cerr != nil {
			return nil, false, cerr
		}
		if !applicable {
			return nil, false, nil
		}
		evs[rank] = trace
	}
	// Wildcard receives combined with collectives leave the provable
	// fragment: non-barrier collectives (Bcast, Reduce, ...) are modeled as
	// full barriers, which is exact only when matching is deterministic.
	// A wildcard's candidate set depends on the modeled synchronization,
	// so the barrier over-approximation could hide real schedules.
	var barrier bool
	var wild *event
	for rank := range evs {
		for i := range evs[rank] {
			ev := &evs[rank][i]
			switch {
			case ev.kind == evBarrier:
				barrier = true
			case ev.kind == evRecv && (ev.peer == -1 || ev.tag == -1) && wild == nil:
				wild = ev
			}
		}
	}
	if barrier && wild != nil {
		return nil, false, &certErr{pos: wild.pos, reason: "wildcard receive mixed with collective synchronization (matching order is not provable)"}
	}
	return evs, true, nil
}
