// Package tagcheck implements the odinvet analyzer that polices message
// tags handed to the comm fabric's point-to-point API. Two invariants:
//
//  1. Tags must be named constants (or values computed from them), never
//     bare integer literals. A magic 7 in one kernel and a magic 7 in
//     another silently cross wires the moment both run on the same
//     communicator — the bug class the PR-2 chaos fuzzing kept finding.
//  2. Tags known at compile time must not fall into a reserved range from
//     the internal/analysis/tagregistry registry (collective-internal
//     negative tags, core.CtrlTag, slicing.HaloTag) unless the use lives
//     in the range's owning package.
package tagcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"odinhpc/internal/analysis"
)

// Range mirrors tagregistry.Range. The analyzer keeps its own copy of the
// type so the analyzer package itself stays importable from testdata-only
// contexts; cmd/odinvet and the tests inject the real registry via
// SetReserved.
type Range struct {
	Name   string
	Lo, Hi int64
	Owner  string
}

func (r Range) contains(tag int64) bool { return r.Lo <= tag && tag <= r.Hi }

// reserved is the active reservation table. The default covers the one
// structural invariant that holds in any deployment of this comm fabric —
// negative tags belong to the collectives — so the analyzer is useful even
// before the registry is injected.
var reserved = []Range{
	{Name: "comm collective-internal / wildcard (negative tags)", Lo: -1 << 62, Hi: -1, Owner: "comm"},
}

// SetReserved installs the reservation table (see tagregistry.Reserved).
func SetReserved(rs []Range) { reserved = rs }

// Analyzer enforces the tag invariants.
var Analyzer = &analysis.Analyzer{
	Name: "tagcheck",
	Doc: "message tags passed to Send/Recv/RecvMsg/Probe/SendRecv must be " +
		"named constants, and compile-time tag values must not collide with " +
		"the reserved ranges in internal/analysis/tagregistry",
	Run: run,
}

// tagParam maps comm.Comm methods to the index of their tag argument.
var tagParam = map[string]int{
	"Send":     1,
	"Recv":     1,
	"RecvMsg":  1,
	"Probe":    1,
	"SendRecv": 3,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.Info, call)
			if fn == nil || !analysis.ObjPkgIs(fn, "comm") || analysis.RecvTypeName(fn) != "Comm" {
				return true
			}
			idx, ok := tagParam[fn.Name()]
			if !ok || idx >= len(call.Args) {
				return true
			}
			checkTag(pass, fn.Name(), call.Args[idx])
			return true
		})
	}
	return nil
}

func checkTag(pass *analysis.Pass, method string, arg ast.Expr) {
	if lit := literalTag(pass, arg); lit != nil {
		pass.Reportf(lit.Pos(),
			"raw integer message tag in %s call; declare a named constant (and register reserved ranges in internal/analysis/tagregistry)", method)
		return
	}
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return // tag computed at run time; nothing further to check
	}
	val, ok := constant.Int64Val(tv.Value)
	if !ok {
		return
	}
	for _, r := range reserved {
		if !r.contains(val) {
			continue
		}
		if analysis.PkgIs(pass.Pkg.Path(), r.Owner) || declaredIn(pass, arg, r.Owner) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"message tag %d collides with reserved range %q owned by package %s", val, r.Name, r.Owner)
	}
}

// literalTag returns the offending literal if arg is a bare integer literal,
// possibly parenthesized, negated, or wrapped in a conversion: 7, -7,
// int(7). Named constants, variables, and computed expressions return nil.
func literalTag(pass *analysis.Pass, arg ast.Expr) ast.Expr {
	switch e := arg.(type) {
	case *ast.BasicLit:
		if e.Kind == token.INT {
			return e
		}
	case *ast.ParenExpr:
		return literalTag(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return literalTag(pass, e.X)
		}
	case *ast.CallExpr:
		// Only conversions like int32(7) propagate; tagOf(7) is a computed
		// tag and the literal is that function's business.
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return literalTag(pass, e.Args[0])
		}
	}
	return nil
}

// declaredIn reports whether arg is (or is built solely from) constants
// declared in the reserved range's owning package — comm.AnyTag is fine as
// a Recv wildcard even though -1 sits in comm's reserved range, and
// slicing's own halo exchange may use slicing.HaloTag.
func declaredIn(pass *analysis.Pass, arg ast.Expr, owner string) bool {
	ok := true
	sawConst := false
	ast.Inspect(arg, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isConst := obj.(*types.Const); !isConst {
			return true
		}
		sawConst = true
		if !analysis.ObjPkgIs(obj, owner) {
			// A constant declared outside the owning package with a
			// colliding value is exactly the bug being hunted.
			ok = false
		}
		return true
	})
	return ok && sawConst
}
