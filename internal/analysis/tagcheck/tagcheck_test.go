package tagcheck_test

import (
	"testing"

	"odinhpc/internal/analysis/analysistest"
	"odinhpc/internal/analysis/tagcheck"
	"odinhpc/internal/analysis/tagregistry"
)

func TestTagcheck(t *testing.T) {
	// Install the real reservation table, exactly as cmd/odinvet does, so
	// the testdata collisions exercise the registry-driven ranges.
	var rs []tagcheck.Range
	for _, r := range tagregistry.Reserved() {
		rs = append(rs, tagcheck.Range{Name: r.Name, Lo: r.Lo, Hi: r.Hi, Owner: r.Owner})
	}
	tagcheck.SetReserved(rs)
	analysistest.Run(t, "testdata", tagcheck.Analyzer, "a", "slicing")
}
