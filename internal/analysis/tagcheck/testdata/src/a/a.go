// Package a exercises tagcheck: raw literal tags and reserved-range
// collisions are flagged; named constants, run-time tags, owner-declared
// reserved constants, and //lint:allow exceptions stay quiet.
package a

import "comm"

// tagPing is the named way to pick a tag.
const tagPing = 7

// haloStolen collides with the halo-exchange reservation owned by slicing.
const haloStolen = 1<<30 + 7

// negCtl collides with comm's reserved negative range but is declared here,
// outside the owning package.
const negCtl = -7

func tags(c *comm.Comm, buf []float64) {
	c.Send(1, 7, buf)        // want `raw integer message tag`
	c.Recv(0, (9))           // want `raw integer message tag`
	c.Send(1, -3, buf)       // want `raw integer message tag`
	c.SendRecv(1, buf, 1, 5) // want `raw integer message tag`

	c.Send(1, tagPing, buf) // named constant: fine
	c.Recv(0, tagPing)      // fine
	for t := 0; t < 3; t++ {
		c.Send(1, t+tagPing, buf) // run-time tag: fine
	}
	c.Recv(0, comm.AnyTag) // reserved value declared by the owner: fine

	c.Send(1, negCtl, buf)     // want `reserved range`
	c.Send(1, haloStolen, buf) // want `reserved range`

	//lint:allow tagcheck scratch probe in a throwaway harness
	c.Probe(0, 99)
}
