// Package comm mirrors the point-to-point tag surface of the real fabric:
// the five tag-taking methods tagcheck keys on, plus constants living in
// comm's reserved negative range.
package comm

// AnyTag matches any tag on the receive side; it sits inside comm's
// reserved negative range, which is fine when declared by the owner.
const AnyTag = -1

// Comm is the fake communicator.
type Comm struct{}

// Send delivers data to dst under tag.
func (c *Comm) Send(dst, tag int, data any) {}

// Recv blocks for a message from src with tag.
func (c *Comm) Recv(src, tag int) any { return nil }

// RecvMsg is Recv with the full envelope.
func (c *Comm) RecvMsg(src, tag int) any { return nil }

// Probe reports whether a matching message is queued.
func (c *Comm) Probe(src, tag int) bool { return false }

// SendRecv exchanges payloads; the tag is the fourth argument.
func (c *Comm) SendRecv(dst int, data any, src, tag int) any { return nil }
