// Package slicing owns the halo-exchange reservation: its own use of
// HaloTag must not be flagged (rule 2's owner exemption).
package slicing

import "comm"

// HaloTag is the reserved halo-exchange tag, mirroring the real constant.
const HaloTag = 1<<30 + 7

func exchange(c *comm.Comm, buf []float64) {
	c.Send(1, HaloTag, buf) // owner package: fine
	c.Recv(0, HaloTag)      // fine
}
