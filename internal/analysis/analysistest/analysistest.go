// Package analysistest is the testdata-driven harness for odinvet
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest: each
// analyzer package keeps a testdata/src tree of small packages whose
// source lines carry `// want "regex"` comments naming the diagnostics the
// analyzer must produce there. The harness typechecks the packages with
// the internal/analysis loader, runs the analyzer (with //lint:allow
// suppression active, so allow-directives are testable), and fails the
// test on any missing, surplus, or mismatched diagnostic.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"odinhpc/internal/analysis"
)

// Run loads each named package from dir/src and checks a's diagnostics
// against the `// want` expectations in their sources.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(dir, "src")
	loader := analysis.NewLoader("", "", srcRoot, true)
	for _, pkg := range pkgs {
		targets, err := loader.LoadDir(filepath.Join(srcRoot, pkg))
		if err != nil {
			t.Fatalf("load %s: %v", pkg, err)
		}
		if len(targets) == 0 {
			t.Fatalf("load %s: no packages found", pkg)
		}
		diags, err := analysis.Run([]*analysis.Analyzer{a}, targets)
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkg, err)
		}
		for _, target := range targets {
			check(t, target, diags)
		}
	}
}

// wantRx matches one quoted expectation inside a want comment.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// check compares diagnostics against want comments, file by file.
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	texts := map[key][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, q := range wantRx.FindAllString(c.Text[idx+len("// want "):], -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, q, err)
						continue
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], rx)
					texts[k] = append(texts[k], pat)
				}
			}
		}
	}
	inPkg := func(file string) bool {
		for _, f := range pkg.Files {
			if pkg.Fset.Position(f.Pos()).Filename == file {
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		if !inPkg(d.Position.Filename) {
			continue
		}
		k := key{d.Position.Filename, d.Position.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx != nil && rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", d.Position, d.Message)
			continue
		}
		wants[k][matched] = nil // consumed
	}
	for k, rxs := range wants {
		for i, rx := range rxs {
			if rx != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, texts[k][i])
			}
		}
	}
}
