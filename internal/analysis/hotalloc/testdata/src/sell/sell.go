// Package sell mirrors the SELL-C-sigma SpMV kernels: the slice sweep runs
// as an exec.ParallelFor chunk kernel, so its body must not allocate — the
// per-slice accumulators live in a fixed stack array hoisted into the
// closure, exactly like internal/sparse's real kernels.
package sell

import "exec"

// Matrix is the fake SELL layout.
type Matrix struct {
	SlicePtr []int
	ColIdx   []int32
	Val      []float64
	Perm     []int
}

// MulVecGood sweeps slices with a hoisted accumulator array: fine.
func MulVecGood(e *exec.Engine, m *Matrix, x, y []float64) {
	const c = 8
	e.ParallelFor(len(m.SlicePtr)-1, func(slo, shi int) {
		var acc [c]float64
		for s := slo; s < shi; s++ {
			base := m.SlicePtr[s]
			w := (m.SlicePtr[s+1] - base) / c
			for r := 0; r < c; r++ {
				acc[r] = 0
			}
			for j := 0; j < w; j++ {
				off := base + j*c
				for r := 0; r < c; r++ {
					acc[r] += m.Val[off+r] * x[m.ColIdx[off+r]]
				}
			}
			for r := 0; r < c; r++ {
				y[m.Perm[s*c+r]] = acc[r]
			}
		}
	})
}

// MulVecBad allocates the accumulators per slice inside the kernel.
func MulVecBad(e *exec.Engine, m *Matrix, x, y []float64) {
	const c = 8
	e.ParallelFor(len(m.SlicePtr)-1, func(slo, shi int) {
		for s := slo; s < shi; s++ {
			acc := make([]float64, c) // want `make allocates`
			base := m.SlicePtr[s]
			w := (m.SlicePtr[s+1] - base) / c
			for j := 0; j < w; j++ {
				off := base + j*c
				for r := 0; r < c; r++ {
					acc[r] += m.Val[off+r] * x[m.ColIdx[off+r]]
				}
			}
			for r := 0; r < c; r++ {
				y[m.Perm[s*c+r]] = acc[r]
			}
		}
	})
}

// MulVecTransScratch keeps the transpose path's deliberate per-chunk dense
// accumulator behind the annotation, matching the real kernel.
func MulVecTransScratch(e *exec.Engine, m *Matrix, cols int, x, y []float64) {
	out := exec.ParallelReduce(e, len(m.Perm), func(lo, hi int) []float64 {
		//lint:allow hotalloc one dense accumulator per chunk by design
		acc := make([]float64, cols)
		for i := lo; i < hi; i++ {
			acc[i%cols] += x[i]
		}
		return acc
	}, func(a, b []float64) []float64 {
		for j := range a {
			a[j] += b[j]
		}
		return a
	})
	copy(y, out)
}
