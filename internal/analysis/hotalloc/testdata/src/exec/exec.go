// Package exec mirrors the engine surface hotalloc keys on: the
// ParallelFor method and the generic package-level ParallelReduce.
package exec

// Engine is the fake pool.
type Engine struct{}

// New returns an engine.
func New() *Engine { return &Engine{} }

// ParallelFor runs body over chunks of [0, n).
func (e *Engine) ParallelFor(n int, body func(lo, hi int)) { body(0, n) }

// ParallelReduce folds chunks and combines partials.
func ParallelReduce[T any](e *Engine, n int, fold func(lo, hi int) T, combine func(a, b T) T) T {
	return fold(0, n)
}
