// Package a exercises hotalloc on chunk kernels: builtin allocation, fmt
// calls, and interface boxing are flagged; hoisted allocation, index-only
// kernels, non-boxing generics, and //lint:allow scratch stay quiet.
package a

import (
	"fmt"

	"exec"
)

// sink takes an interface argument, forcing a box at the call site.
func sink(v any) {}

func kernels(e *exec.Engine, out []float64) {
	e.ParallelFor(len(out), func(lo, hi int) {
		buf := make([]float64, hi-lo) // want `make allocates`
		_ = buf
	})

	e.ParallelFor(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i) // index-only kernel: fine
		}
	})

	scratch := make([]float64, len(out)) // hoisted out of the kernel: fine
	_ = scratch

	var logs []string
	e.ParallelFor(len(out), func(lo, hi int) {
		logs = append(logs, fmt.Sprintf("[%d,%d)", lo, hi)) // want `append allocates` `fmt.Sprintf call`
	})

	total := exec.ParallelReduce(e, len(out), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += out[i] // generic fold, no boxing: fine
		}
		return s
	}, func(a, b float64) float64 { return a + b })
	_ = total

	e.ParallelFor(len(out), func(lo, hi int) {
		sink(lo) // want `boxes int into`
	})

	e.ParallelFor(len(out), func(lo, hi int) {
		//lint:allow hotalloc per-chunk scratch, amortized over the chunk
		acc := make([]float64, 8)
		_ = acc
	})
}
