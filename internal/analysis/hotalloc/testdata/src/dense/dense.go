// Package dense mirrors the Vec* kernel layer: the fusion VM sweeps these
// bodies block-by-block, so the entire body of a Vec* function is hot.
package dense

// VecAddBad allocates inside a Vec kernel.
func VecAddBad(dst, a, b []float64) {
	tmp := make([]float64, len(a)) // want `make allocates`
	for i := range a {
		tmp[i] = a[i] + b[i]
	}
	copy(dst, tmp)
}

// VecScale is allocation-free: fine.
func VecScale(dst, a []float64, s float64) {
	for i := range a {
		dst[i] = a[i] * s
	}
}

// grow is not a Vec* op; allocating here is fine.
func grow(n int) []float64 { return make([]float64, n) }
