// Package dense mirrors the Vec* kernel layer: the fusion VM sweeps these
// bodies block-by-block, so the entire body of a Vec* function is hot.
package dense

// VecAddBad allocates inside a Vec kernel.
func VecAddBad(dst, a, b []float64) {
	tmp := make([]float64, len(a)) // want `make allocates`
	for i := range a {
		tmp[i] = a[i] + b[i]
	}
	copy(dst, tmp)
}

// VecScale is allocation-free: fine.
func VecScale(dst, a []float64, s float64) {
	for i := range a {
		dst[i] = a[i] * s
	}
}

// grow is not a Vec* op; allocating here is fine.
func grow(n int) []float64 { return make([]float64, n) }

// VecFMA mirrors the superinstruction kernels: a fused triple-operand body
// must stay allocation-free like any other Vec* op.
func VecFMA(dst, a, b, c []float64) {
	for i := range a {
		dst[i] = float64(a[i]*b[i]) + c[i]
	}
}

// VecFMABad stages its fused result through a fresh slice.
func VecFMABad(dst, a, b, c []float64) {
	tmp := append([]float64(nil), c...) // want `append allocates`
	for i := range a {
		dst[i] = float64(a[i]*b[i]) + tmp[i]
	}
	copy(dst, tmp)
}

// VecAccumAXPY is a fused op+sum tail: scalar accumulator, no allocation.
func VecAccumAXPY(acc float64, a []float64, s float64, b []float64) float64 {
	for i := range a {
		acc += float64(a[i]*s) + b[i]
	}
	return acc
}
