package hotalloc_test

import (
	"testing"

	"odinhpc/internal/analysis/analysistest"
	"odinhpc/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "a", "dense", "sell")
}
