// Package hotalloc implements the odinvet analyzer that keeps allocation
// and boxing out of the framework's hot loops: the chunk kernels handed to
// exec.ParallelFor / exec.ParallelReduce, and the internal/dense Vec* op
// bodies that the fusion register VM sweeps block-by-block. One append or
// fmt call inside a chunk kernel turns a memory-bound sweep into an
// allocator benchmark; benchguard only notices after the regression ships,
// this analyzer rejects it at compile time. Deliberate per-chunk scratch
// (e.g. a reduction accumulator allocated once per chunk and amortized over
// it) is annotated //lint:allow hotalloc with a justification.
package hotalloc

import (
	"go/ast"
	"go/types"

	"odinhpc/internal/analysis"
)

// Analyzer forbids allocation, fmt, and interface boxing in hot kernels.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbids append/make/new, fmt calls, and interface boxing inside " +
		"exec.ParallelFor/ParallelReduce chunk kernels and internal/dense " +
		"Vec* op bodies; annotate deliberate per-chunk scratch with " +
		"//lint:allow hotalloc <why>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// internal/dense Vec* bodies are hot regions in their entirety: they
		// are the per-block kernels the fusion VM executes.
		if analysis.PkgIs(pass.Pkg.Path(), "dense") {
			analysis.FuncScopes(file, func(decl *ast.FuncDecl) {
				if decl.Recv == nil && len(decl.Name.Name) > 3 && decl.Name.Name[:3] == "Vec" {
					checkHotBody(pass, decl.Body, "dense."+decl.Name.Name)
				}
			})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, k := range kernelArgs(pass, call) {
				if lit, ok := k.arg.(*ast.FuncLit); ok {
					checkHotBody(pass, lit.Body, k.label)
				}
			}
			return true
		})
	}
	return nil
}

// kernel identifies one function-literal argument that runs as a chunk
// kernel.
type kernel struct {
	arg   ast.Expr
	label string
}

// kernelArgs returns the chunk-kernel arguments of call, if it is
// exec.(*Engine).ParallelFor(n, body) or exec.ParallelReduce(e, n, fold,
// combine).
func kernelArgs(pass *analysis.Pass, call *ast.CallExpr) []kernel {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || !analysis.ObjPkgIs(fn, "exec") {
		return nil
	}
	switch {
	case fn.Name() == "ParallelFor" && analysis.RecvTypeName(fn) == "Engine" && len(call.Args) >= 2:
		return []kernel{{call.Args[1], "exec.ParallelFor kernel"}}
	case fn.Name() == "ParallelReduce" && analysis.RecvTypeName(fn) == "" && len(call.Args) >= 4:
		return []kernel{
			{call.Args[2], "exec.ParallelReduce fold kernel"},
			{call.Args[3], "exec.ParallelReduce combine kernel"},
		}
	}
	return nil
}

// checkHotBody reports every forbidden construct inside a hot region.
func checkHotBody(pass *analysis.Pass, body *ast.BlockStmt, label string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b := analysis.CalleeBuiltin(pass.Info, call); b == "append" || b == "make" || b == "new" {
			pass.Reportf(call.Pos(), "%s allocates in %s; hoist the allocation out of the hot loop or annotate deliberate per-chunk scratch with //lint:allow hotalloc", b, label)
			return true
		}
		if fn := analysis.Callee(pass.Info, call); fn != nil && analysis.ObjPkgIs(fn, "fmt") {
			pass.Reportf(call.Pos(), "fmt.%s call in %s; formatting allocates and serializes — move it out of the kernel", fn.Name(), label)
			return true
		}
		checkBoxing(pass, call, label)
		return true
	})
}

// checkBoxing flags arguments whose concrete value is implicitly converted
// to an interface parameter — each such conversion heap-allocates on the
// hot path. panic arguments are exempt: they are the cold failure path.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, label string) {
	if b := analysis.CalleeBuiltin(pass.Info, call); b != "" {
		return // panic, len, cap, copy, ... never box on the happy path
	}
	fn := analysis.Callee(pass.Info, call)
	if fn == nil {
		return // dynamic call: parameter types unknown statically
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		// A type parameter's underlying is an interface, but instantiation
		// resolves it to a concrete type — no boxing happens at run time.
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Type == nil || types.IsInterface(tv.Type) {
			continue
		}
		if tv.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into %s in %s; interface conversion allocates on the hot path", tv.Type, pt, label)
	}
}
