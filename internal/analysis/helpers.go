package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PkgIs reports whether an import path denotes the framework package with
// the given short name: either the path is the name itself (analyzer
// testdata packages are named "comm", "exec", ...) or it ends in "/name"
// ("odinhpc/internal/comm"). Matching by path shape rather than *types.Package
// identity is deliberate: the loader may typecheck the same package once as
// an analysis target and once as an import, and those are distinct objects.
func PkgIs(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// ObjPkgIs reports whether obj is declared in the framework package name
// (see PkgIs). Objects from the universe scope (builtins) have no package.
func ObjPkgIs(obj types.Object, name string) bool {
	return obj != nil && obj.Pkg() != nil && PkgIs(obj.Pkg().Path(), name)
}

// Callee resolves the static callee of call, unwrapping parentheses and
// generic instantiation. It returns nil for dynamic calls (function values),
// builtins, and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// CalleeBuiltin returns the name of the builtin called by call ("append",
// "make", ...) or "" if the callee is not a builtin.
func CalleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// RecvTypeName returns the name of fn's receiver's named type ("Comm" for
// func (c *Comm) Send), or "" for package-level functions.
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return namedTypeName(sig.Recv().Type())
}

// namedTypeName unwraps pointers and returns the underlying named (or
// generic-instance) type's name, or "".
func namedTypeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	}
	return ""
}

// TypeIs reports whether t (possibly behind pointers) is the named type
// typeName declared in the framework package pkgName.
func TypeIs(t types.Type, pkgName, typeName string) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && ObjPkgIs(obj, pkgName)
}

// IsMethodOn reports whether fn is the method methodName on the named type
// typeName of framework package pkgName.
func IsMethodOn(fn *types.Func, pkgName, typeName, methodName string) bool {
	return fn != nil && fn.Name() == methodName && ObjPkgIs(fn, pkgName) &&
		RecvTypeName(fn) == typeName
}

// IdentObj resolves the object an identifier denotes, checking Uses first
// and falling back to Defs (short variable declarations define on first
// mention). Returns nil for unresolved identifiers.
func IdentObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// IntConstVal returns the compile-time integer value of e, when the
// typechecker folded one: literals, named constants, and constant
// arithmetic all qualify. Reports false for run-time expressions.
func IntConstVal(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// CommValueExpr returns the expression denoting the communicator a comm
// operation call runs on: the receiver for methods ((*Comm).Barrier,
// (*Comm).Send, ...), the first argument for package-level operations
// (Bcast, Gather, ...). Returns nil when neither form applies.
func CommValueExpr(info *types.Info, call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			return sel.X
		}
	}
	if len(call.Args) > 0 {
		return call.Args[0]
	}
	return nil
}

// CommValueObject resolves CommValueExpr to a local object when the
// communicator expression is a simple identifier, or nil.
func CommValueObject(info *types.Info, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(CommValueExpr(info, call)).(*ast.Ident)
	if !ok {
		return nil
	}
	return IdentObj(info, id)
}

// FuncScopes walks the top-level function declarations of file, calling fn
// with each declaration's body (FuncDecl bodies only; nested FuncLits are
// part of their enclosing declaration's tree and are visited by the
// analyzers themselves where they matter).
func FuncScopes(file *ast.File, fn func(decl *ast.FuncDecl)) {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd)
		}
	}
}
