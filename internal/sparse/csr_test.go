package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// tridiag builds the n x n [-1 2 -1] Laplacian used throughout.
func tridiag(n int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

func randomSPD(n int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, float64(n)+rng.Float64())
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j != i {
				v := rng.Float64() - 0.5
				c.Add(i, j, v)
				c.Add(j, i, v)
			}
		}
	}
	return c.ToCSR()
}

func TestCOOToCSRBasic(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(2, 0, 5)
	c.Add(0, 1, 2)
	c.Add(0, 0, 1)
	c.Add(1, 2, 3)
	m := c.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 || m.At(1, 2) != 3 || m.At(2, 0) != 5 {
		t.Fatalf("content wrong: %v", m.Dense())
	}
	if m.At(2, 2) != 0 {
		t.Fatal("missing entry must read as zero")
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2.5)
	c.Add(1, 1, -1)
	m := c.ToCSR()
	if m.At(0, 0) != 3.5 {
		t.Fatalf("duplicate sum = %v", m.At(0, 0))
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if c.NNZ() != 3 {
		t.Fatalf("COO.NNZ = %d", c.NNZ())
	}
}

func TestCOOEmptyRows(t *testing.T) {
	c := NewCOO(5, 5)
	c.Add(0, 0, 1)
	c.Add(4, 4, 2)
	m := c.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if m.RowNNZ(r) != 0 {
			t.Fatalf("row %d should be empty", r)
		}
	}
}

func TestCOOBounds(t *testing.T) {
	c := NewCOO(2, 2)
	for name, fn := range map[string]func(){
		"neg-row": func() { c.Add(-1, 0, 1) },
		"big-col": func() { c.Add(0, 2, 1) },
		"neg-dim": func() { NewCOO(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := tridiag(4)
	bad := m.Clone()
	bad.ColIdx[1], bad.ColIdx[0] = bad.ColIdx[0], bad.ColIdx[1] // unsorted row
	if bad.Validate() == nil {
		t.Fatal("unsorted columns must fail validation")
	}
	bad2 := m.Clone()
	bad2.RowPtr[2] = 100
	if bad2.Validate() == nil {
		t.Fatal("bad RowPtr must fail validation")
	}
	if _, err := NewCSR(2, 2, []int{0}, nil, nil); err == nil {
		t.Fatal("short RowPtr must fail")
	}
}

func TestMulVec(t *testing.T) {
	m := tridiag(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	m.MulVec(x, y)
	want := []float64{0, 0, 0, 5} // 2*1-2, -1+4-3, -2+6-4, -3+8
	if !reflect.DeepEqual(y, want) {
		t.Fatalf("MulVec = %v want %v", y, want)
	}
}

func TestMulVecAdd(t *testing.T) {
	m := Identity(3)
	x := []float64{1, 2, 3}
	y := []float64{10, 10, 10}
	m.MulVecAdd(2, x, y)
	if !reflect.DeepEqual(y, []float64{12, 14, 16}) {
		t.Fatalf("MulVecAdd = %v", y)
	}
}

func TestMulVecTransMatchesTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		c := NewCOO(rows, cols)
		for k := 0; k < rows*2; k++ {
			c.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := c.ToCSR()
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, cols)
		m.MulVecTrans(x, y1)
		y2 := make([]float64, cols)
		m.Transpose().MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := randomSPD(20, 7)
	tt := m.Transpose().Transpose()
	if !m.Equal(tt) {
		t.Fatal("transpose involution failed")
	}
	if err := m.Transpose().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDiag(t *testing.T) {
	m := tridiag(5)
	d := m.Diag()
	for _, v := range d {
		if v != 2 {
			t.Fatalf("diag = %v", d)
		}
	}
}

func TestScaleAdd(t *testing.T) {
	a := tridiag(4)
	b := a.Clone()
	b.Scale(-1)
	sum := a.Add(b)
	for _, v := range sum.Val {
		if v != 0 {
			t.Fatalf("A + (-A) nonzero: %v", sum.Dense())
		}
	}
	i := Identity(4)
	ap := a.Add(i)
	if ap.At(0, 0) != 3 {
		t.Fatal("Add identity")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add shape mismatch should panic")
			}
		}()
		a.Add(Identity(5))
	}()
}

func TestMatMulAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		ca, cb := NewCOO(m, k), NewCOO(k, n)
		for t := 0; t < m*k/2+1; t++ {
			ca.Add(rng.Intn(m), rng.Intn(k), float64(rng.Intn(5)))
		}
		for t := 0; t < k*n/2+1; t++ {
			cb.Add(rng.Intn(k), rng.Intn(n), float64(rng.Intn(5)))
		}
		a, b := ca.ToCSR(), cb.ToCSR()
		c := a.MatMul(b)
		if c.Validate() != nil {
			return false
		}
		ad, bd, cd := a.Dense(), b.Dense(), c.Dense()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want float64
				for p := 0; p < k; p++ {
					want += ad[i*k+p] * bd[p*n+j]
				}
				if math.Abs(cd[i*n+j]-want) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 3)
	c.Add(1, 1, -4)
	m := c.ToCSR()
	if m.NormFrobenius() != 5 {
		t.Fatalf("fro = %v", m.NormFrobenius())
	}
	if m.NormInf() != 4 {
		t.Fatalf("inf = %v", m.NormInf())
	}
}

func TestSubMatrix(t *testing.T) {
	m := tridiag(6)
	s := m.SubMatrix([]int{1, 2, 3})
	// Principal 3x3 block of the tridiagonal is itself tridiagonal.
	want := tridiag(3)
	if !s.Equal(want) {
		t.Fatalf("SubMatrix = %v want %v", s.Dense(), want.Dense())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unsorted keep should panic")
			}
		}()
		m.SubMatrix([]int{2, 1})
	}()
}

func TestIdentity(t *testing.T) {
	i := Identity(4)
	if err := i.Validate(); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	i.MulVec(x, y)
	if !reflect.DeepEqual(x, y) {
		t.Fatal("identity MulVec")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := tridiag(3)
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] == 99 {
		t.Fatal("Clone aliases")
	}
	if a.String() == "" {
		t.Fatal("String")
	}
}

func TestAtBounds(t *testing.T) {
	m := tridiag(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(3, 0)
}

func TestSortRowPairsMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		cols := make([]int, n)
		vals := make([]float64, n)
		type pair struct {
			c int
			v float64
		}
		ref := make([]pair, n)
		for i := range cols {
			cols[i] = rng.Intn(n/4 + 1) // force duplicates
			vals[i] = rng.NormFloat64()
			ref[i] = pair{cols[i], vals[i]}
		}
		sortRowPairs(cols, vals)
		// Stable reference keeps duplicate columns' values in some order;
		// compare as multisets of pairs plus sortedness of cols.
		for i := 1; i < n; i++ {
			if cols[i-1] > cols[i] {
				return false
			}
		}
		got := make(map[pair]int)
		want := make(map[pair]int)
		for i := range cols {
			got[pair{cols[i], vals[i]}]++
			want[ref[i]]++
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestToCSRAllocsRowIndependent(t *testing.T) {
	// The old per-row sort.Sort(rowSorter{...}) boxed one interface per row,
	// so ToCSR's allocation count grew linearly with the row count. The
	// in-place pair sort plus pre-sized output arrays make it a small
	// constant: the five scratch/output slices, the CSR struct, and RowPtr.
	build := func(n int) *COO {
		c := NewCOO(n, n)
		for i := n - 1; i >= 0; i-- { // reversed insertion: every row needs sorting
			if i < n-1 {
				c.Add(i, i+1, -1)
			}
			if i > 0 {
				c.Add(i, i-1, -1)
			}
			c.Add(i, i, 2)
		}
		return c
	}
	c := build(2000)
	allocs := testing.AllocsPerRun(10, func() {
		m := c.ToCSR()
		if m.NNZ() != 3*2000-2 {
			t.Fatal("wrong nnz")
		}
	})
	if allocs > 10 {
		t.Fatalf("ToCSR allocations scale with rows: %v allocs for 2000 rows", allocs)
	}
}

func TestMulVecDimsPanic(t *testing.T) {
	m := tridiag(3)
	for name, fn := range map[string]func(){
		"mulvec":      func() { m.MulVec(make([]float64, 2), make([]float64, 3)) },
		"mulvecadd":   func() { m.MulVecAdd(1, make([]float64, 3), make([]float64, 2)) },
		"mulvectrans": func() { m.MulVecTrans(make([]float64, 2), make([]float64, 3)) },
		"matmul":      func() { m.MatMul(Identity(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
