package sparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		coo := NewCOO(rows, cols)
		for k := 0; k < rng.Intn(30); k++ {
			coo.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := coo.ToCSR()
		var b strings.Builder
		if err := m.WriteMatrixMarket(&b); err != nil {
			return false
		}
		back, err := ReadMatrixMarket(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		return m.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMarketSymmetricAndPattern(t *testing.T) {
	sym := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 2 -1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(sym))
	if err != nil {
		t.Fatal(err)
	}
	// Mirrored entries.
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 || m.At(1, 2) != -1 || m.At(2, 1) != -1 {
		t.Fatalf("symmetric mirror: %v", m.Dense())
	}
	// Two diagonal entries plus four mirrored off-diagonals.
	if m.NNZ() != 6 {
		t.Fatalf("nnz=%d", m.NNZ())
	}

	pat := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	p, err := ReadMatrixMarket(strings.NewReader(pat))
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0, 1) != 1 || p.At(1, 0) != 1 {
		t.Fatalf("pattern values: %v", p.Dense())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	for name, doc := range map[string]string{
		"empty":       "",
		"bad-header":  "%%MatrixMarket tensor dense real general\n1 1 1\n1 1 1\n",
		"bad-type":    "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad-struct":  "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"short-entry": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"oob-entry":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
		"truncated":   "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",
		"bad-value":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixMarketLaplacian(t *testing.T) {
	// Write the tridiagonal and read it back through the public API.
	m := tridiag(6)
	var b strings.Builder
	if err := m.WriteMatrixMarket(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "%%MatrixMarket matrix coordinate real general") {
		t.Fatal("header missing")
	}
	back, err := ReadMatrixMarket(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatal("round trip")
	}
}
