package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements MatrixMarket coordinate-format I/O — the standard
// interchange format of the sparse-matrix world and the usual way Trilinos
// test utilities load reference problems.

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate general
// real format (1-based indices, one entry per line).
func (m *CSR) WriteMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[k]+1, m.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file. Supported
// qualifiers: real/integer/pattern values, general/symmetric structure
// (symmetric entries are mirrored; pattern entries read as 1).
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	valKind := header[3] // real | integer | pattern
	structure := header[4]
	switch valKind {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported value type %q", valKind)
	}
	switch structure {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported structure %q", structure)
	}
	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimensions %dx%d", rows, cols)
	}
	coo := NewCOO(rows, cols)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if valKind == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("sparse: short entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row in %q", line)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column in %q", line)
		}
		v := 1.0
		if valKind != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value in %q", line)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		coo.Add(i-1, j-1, v)
		if structure == "symmetric" && i != j {
			coo.Add(j-1, i-1, v)
		}
		read++
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, found %d", nnz, read)
	}
	return coo.ToCSR(), nil
}
