// Package sparse implements serial sparse matrix kernels in compressed
// sparse row (CSR) form: construction via COO triplets, sparse
// matrix-vector products, transposition, and the incomplete and complete
// factorizations used by the preconditioner and direct-solver packages.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"odinhpc/internal/exec"
)

// COO is a coordinate-format triplet builder. Duplicate entries are summed
// when converting to CSR, matching the usual finite-element assembly
// semantics.
type COO struct {
	rows, cols int
	i, j       []int
	v          []float64
}

// NewCOO returns an empty builder for a rows x cols matrix.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Add appends the triplet (i, j, v). Zero values are kept so that explicit
// zeros can establish sparsity patterns for ILU.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", i, j, c.rows, c.cols))
	}
	c.i = append(c.i, i)
	c.j = append(c.j, j)
	c.v = append(c.v, v)
}

// NNZ returns the number of triplets added so far (before deduplication).
func (c *COO) NNZ() int { return len(c.v) }

// ToCSR converts the triplets to CSR form, sorting column indices within
// each row and summing duplicates.
func (c *COO) ToCSR() *CSR {
	// Pass 1: bucket entries by row.
	counts := make([]int, c.rows+1)
	for _, i := range c.i {
		counts[i+1]++
	}
	for r := 0; r < c.rows; r++ {
		counts[r+1] += counts[r]
	}
	cols := make([]int, len(c.v))
	vals := make([]float64, len(c.v))
	next := make([]int, c.rows)
	copy(next, counts[:c.rows])
	for k := range c.v {
		p := next[c.i[k]]
		cols[p] = c.j[k]
		vals[p] = c.v[k]
		next[c.i[k]]++
	}
	// Pass 2: sort each row by column and merge duplicates in place. The
	// output arrays are sized for the no-duplicate case up front so the
	// append loop never reallocates.
	m := &CSR{Rows: c.rows, Cols: c.cols, RowPtr: make([]int, c.rows+1)}
	m.ColIdx = make([]int, 0, len(c.v))
	m.Val = make([]float64, 0, len(c.v))
	for r := 0; r < c.rows; r++ {
		lo, hi := counts[r], counts[r+1]
		sortRowPairs(cols[lo:hi], vals[lo:hi])
		for k := lo; k < hi; k++ {
			n := len(m.ColIdx)
			if n > m.RowPtr[r] && m.ColIdx[n-1] == cols[k] {
				m.Val[n-1] += vals[k]
				continue
			}
			m.ColIdx = append(m.ColIdx, cols[k])
			m.Val = append(m.Val, vals[k])
		}
		m.RowPtr[r+1] = len(m.ColIdx)
	}
	return m
}

// sortRowPairs sorts the parallel cols/vals slices by ascending column
// without allocating — sort.Sort(rowSorter{...}) boxed an interface per row,
// which dominated ToCSR's allocation profile for assembly-heavy callers.
// Insertion sort handles the short rows typical of stencils; longer rows
// take a median-of-three Hoare quicksort.
func sortRowPairs(cols []int, vals []float64) {
	n := len(cols)
	if n < 16 {
		for i := 1; i < n; i++ {
			col, val := cols[i], vals[i]
			j := i - 1
			for j >= 0 && cols[j] > col {
				cols[j+1], vals[j+1] = cols[j], vals[j]
				j--
			}
			cols[j+1], vals[j+1] = col, val
		}
		return
	}
	// Median-of-three pivot, moved to the middle slot.
	mid := n / 2
	if cols[mid] < cols[0] {
		cols[0], cols[mid] = cols[mid], cols[0]
		vals[0], vals[mid] = vals[mid], vals[0]
	}
	if cols[n-1] < cols[0] {
		cols[0], cols[n-1] = cols[n-1], cols[0]
		vals[0], vals[n-1] = vals[n-1], vals[0]
	}
	if cols[n-1] < cols[mid] {
		cols[mid], cols[n-1] = cols[n-1], cols[mid]
		vals[mid], vals[n-1] = vals[n-1], vals[mid]
	}
	p := cols[mid]
	i, j := -1, n
	for {
		for {
			i++
			if cols[i] >= p {
				break
			}
		}
		for {
			j--
			if cols[j] <= p {
				break
			}
		}
		if i >= j {
			break
		}
		cols[i], cols[j] = cols[j], cols[i]
		vals[i], vals[j] = vals[j], vals[i]
	}
	sortRowPairs(cols[:j+1], vals[:j+1])
	sortRowPairs(cols[j+1:], vals[j+1:])
}

// CSR is a compressed-sparse-row matrix. Within each row, column indices are
// strictly increasing. The zero value is an empty 0x0 matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // length Rows+1
	ColIdx     []int
	Val        []float64
}

// NewCSR wraps pre-built CSR arrays after validating their invariants.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	m := &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the CSR structural invariants.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: ColIdx/Val length mismatch %d vs %d", len(m.ColIdx), len(m.Val))
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != len(m.ColIdx) {
		return fmt.Errorf("sparse: RowPtr endpoints %d..%d, want 0..%d", m.RowPtr[0], m.RowPtr[m.Rows], len(m.ColIdx))
	}
	for r := 0; r < m.Rows; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			return fmt.Errorf("sparse: RowPtr decreases at row %d", r)
		}
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] < 0 || m.ColIdx[k] >= m.Cols {
				return fmt.Errorf("sparse: column %d out of range in row %d", m.ColIdx[k], r)
			}
			if k > m.RowPtr[r] && m.ColIdx[k] <= m.ColIdx[k-1] {
				return fmt.Errorf("sparse: columns not strictly increasing in row %d", r)
			}
		}
	}
	return nil
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns the value at (i, j), zero if not stored. O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) outside %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if k < hi && m.ColIdx[k] == j {
		return m.Val[k]
	}
	return 0
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Row returns the column indices and values of row i (aliasing internal
// storage; callers must not mutate the column indices).
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// MulVec computes y = A*x. The output slice y must have length Rows. The
// product is row-parallel on the exec engine: each output element is owned
// by exactly one row span.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dims A=%dx%d x=%d y=%d", m.Rows, m.Cols, len(x), len(y)))
	}
	exec.Default().ParallelFor(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var acc float64
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				acc += m.Val[k] * x[m.ColIdx[k]]
			}
			y[i] = acc
		}
	})
}

// MulVecAdd computes y += alpha * A*x. Row-parallel like MulVec.
func (m *CSR) MulVecAdd(alpha float64, x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("sparse: MulVecAdd dimension mismatch")
	}
	exec.Default().ParallelFor(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var acc float64
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				acc += m.Val[k] * x[m.ColIdx[k]]
			}
			y[i] += alpha * acc
		}
	})
}

// MulVecTrans computes y = A^T*x; y must have length Cols. Rows scatter
// into shared output columns, so the parallel path reduces per-span partial
// output vectors (combined in the engine's fixed chunk-index tree) instead
// of racing on y; a one-worker engine writes y directly in row order.
func (m *CSR) MulVecTrans(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("sparse: MulVecTrans dimension mismatch")
	}
	e := exec.Default()
	if e.Workers() == 1 {
		for j := range y {
			y[j] = 0
		}
		for i := 0; i < m.Rows; i++ {
			xi := x[i]
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				y[m.ColIdx[k]] += m.Val[k] * xi
			}
		}
		return
	}
	out := exec.ParallelReduce(e, m.Rows, func(lo, hi int) []float64 {
		acc := make([]float64, m.Cols) //lint:allow hotalloc One dense accumulator per chunk by design; amortized over the chunk's rows
		for i := lo; i < hi; i++ {
			xi := x[i]
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				acc[m.ColIdx[k]] += m.Val[k] * xi
			}
		}
		return acc
	}, func(a, b []float64) []float64 {
		for j := range a {
			a[j] += b[j]
		}
		return a
	})
	copy(y, out)
}

// Transpose returns A^T as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int, m.Cols+1)}
	t.ColIdx = make([]int, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	// Count entries per column.
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// Diag returns a copy of the main diagonal (length min(Rows, Cols)).
func (m *CSR) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// Scale multiplies every stored entry by alpha, in place.
func (m *CSR) Scale(alpha float64) {
	for k := range m.Val {
		m.Val[k] *= alpha
	}
}

// Add returns A + B for matrices of identical shape.
func (m *CSR) Add(b *CSR) *CSR {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: Add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	coo := NewCOO(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			coo.Add(i, j, vals[k])
		}
		cols, vals = b.Row(i)
		for k, j := range cols {
			coo.Add(i, j, vals[k])
		}
	}
	return coo.ToCSR()
}

// MatMul returns the sparse product A*B.
func (m *CSR) MatMul(b *CSR) *CSR {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: MatMul dims %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := &CSR{Rows: m.Rows, Cols: b.Cols, RowPtr: make([]int, m.Rows+1)}
	acc := make(map[int]float64)
	for i := 0; i < m.Rows; i++ {
		clear(acc)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			aij := m.Val[k]
			j := m.ColIdx[k]
			for p := b.RowPtr[j]; p < b.RowPtr[j+1]; p++ {
				acc[b.ColIdx[p]] += aij * b.Val[p]
			}
		}
		cols := make([]int, 0, len(acc))
		for j := range acc {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		for _, j := range cols {
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, acc[j])
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// NormFrobenius returns the Frobenius norm of the stored entries.
func (m *CSR) NormFrobenius() float64 {
	var acc float64
	for _, v := range m.Val {
		acc += v * v
	}
	return math.Sqrt(acc)
}

// NormInf returns the maximum absolute row sum.
func (m *CSR) NormInf() float64 {
	var best float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += math.Abs(m.Val[k])
		}
		if s > best {
			best = s
		}
	}
	return best
}

// Equal reports whether two matrices have the same shape and entries
// (comparing stored structure exactly).
func (m *CSR) Equal(b *CSR) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols || m.NNZ() != b.NNZ() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range m.ColIdx {
		if m.ColIdx[k] != b.ColIdx[k] || m.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// Dense materializes the matrix as a row-major flat slice, for small tests.
func (m *CSR) Dense() []float64 {
	out := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out[i*m.Cols+m.ColIdx[k]] = m.Val[k]
		}
	}
	return out
}

// Clone returns an independent deep copy.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		Rows: m.Rows, Cols: m.Cols,
		RowPtr: make([]int, len(m.RowPtr)),
		ColIdx: make([]int, len(m.ColIdx)),
		Val:    make([]float64, len(m.Val)),
	}
	copy(out.RowPtr, m.RowPtr)
	copy(out.ColIdx, m.ColIdx)
	copy(out.Val, m.Val)
	return out
}

// SubMatrix extracts the square principal submatrix with the given sorted
// row/column global indices renumbered densely — used by block-Jacobi and
// additive Schwarz to pull out local diagonal blocks.
func (m *CSR) SubMatrix(keep []int) *CSR {
	pos := make(map[int]int, len(keep))
	for p, g := range keep {
		if p > 0 && keep[p] <= keep[p-1] {
			panic("sparse: SubMatrix requires sorted unique indices")
		}
		pos[g] = p
	}
	coo := NewCOO(len(keep), len(keep))
	for p, g := range keep {
		cols, vals := m.Row(g)
		for k, j := range cols {
			if q, ok := pos[j]; ok {
				coo.Add(p, q, vals[k])
			}
		}
	}
	return coo.ToCSR()
}

// Identity returns the n x n identity matrix in CSR form.
func Identity(n int) *CSR {
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1), ColIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Val[i] = 1
	}
	return m
}

func (m *CSR) String() string {
	return fmt.Sprintf("CSR{%dx%d, nnz=%d}", m.Rows, m.Cols, m.NNZ())
}
