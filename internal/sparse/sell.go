package sparse

import (
	"fmt"
	"math"
	"os"
	"sort"

	"odinhpc/internal/exec"
)

// This file implements SELL-C-sigma (sliced ELLPACK with row sorting), the
// SIMD-friendly sparse format of Kreutzer et al. used by Trilinos' Kokkos
// kernels for performance portability. Rows are reordered by descending
// length inside windows of sigma rows, grouped into slices of C rows, and
// each slice is padded to its longest row and stored column-major, so the
// inner SpMV loop walks C rows in lockstep over contiguous memory.
//
// Bitwise contract: every kernel accumulates each row's products in the
// same (ascending-column) order as the CSR kernels, bounded by the true row
// length so padding is never touched. SELL results are therefore
// bit-for-bit identical to CSR on every input, which is what lets the
// solver and conformance suites run unchanged on either format.

// sellMaxC bounds the slice height so kernels can keep their per-slice
// accumulators in a fixed-size stack array.
const sellMaxC = 32

// DefaultSellC is the default slice height (rows per slice).
const DefaultSellC = 8

// DefaultSellSigma is the default sorting-window size.
const DefaultSellSigma = 256

// SELL is a SELL-C-sigma matrix. Entry (p, j) — the j-th stored element of
// the row at sorted position p — lives at
//
//	SlicePtr[s] + j*h + (p - s*C)
//
// where s = p/C is the slice index and h = min(C, Rows-s*C) the slice
// height. Within a slice, rows are sorted by descending length (sigma is
// rounded up to a multiple of C so no slice straddles a sort window), and
// RowLen bounds each row's loop so padding (stored as explicit zeros) never
// enters an accumulation.
type SELL struct {
	Rows, Cols int
	C          int     // slice height
	Sigma      int     // sort-window size (multiple of C)
	Perm       []int   // Perm[p] = original row stored at sorted position p
	InvPerm    []int   // InvPerm[original row] = sorted position
	SlicePtr   []int   // per-slice offsets into ColIdx/Val; length numSlices+1
	RowLen     []int   // true nnz of the row at each sorted position
	ColIdx     []int32 // column indices, column-major within each slice
	Val        []float64
}

// NewSELL converts m with the default C and sigma.
func NewSELL(m *CSR) *SELL { return FromCSR(m, DefaultSellC, DefaultSellSigma) }

// FromCSR converts a CSR matrix to SELL-C-sigma. The slice height c must be
// in [1, 32]; sigma is rounded up to a multiple of c (sigma <= 0 selects the
// default). The input is not modified or aliased.
func FromCSR(m *CSR, c, sigma int) *SELL {
	if c < 1 || c > sellMaxC {
		panic(fmt.Sprintf("sparse: SELL slice height %d outside [1,%d]", c, sellMaxC))
	}
	if m.Cols > math.MaxInt32 {
		panic(fmt.Sprintf("sparse: %d columns overflow SELL's int32 indices", m.Cols))
	}
	if sigma <= 0 {
		sigma = DefaultSellSigma
	}
	if r := sigma % c; r != 0 {
		sigma += c - r
	}
	s := &SELL{
		Rows: m.Rows, Cols: m.Cols, C: c, Sigma: sigma,
		Perm:    make([]int, m.Rows),
		InvPerm: make([]int, m.Rows),
		RowLen:  make([]int, m.Rows),
	}
	for i := range s.Perm {
		s.Perm[i] = i
	}
	// Sort rows by descending length inside each sigma window. The sort is
	// stable so equal-length rows keep their original order and the layout
	// is deterministic.
	for lo := 0; lo < m.Rows; lo += sigma {
		hi := lo + sigma
		if hi > m.Rows {
			hi = m.Rows
		}
		win := s.Perm[lo:hi]
		sort.SliceStable(win, func(a, b int) bool {
			return m.RowNNZ(win[a]) > m.RowNNZ(win[b])
		})
	}
	for p, orig := range s.Perm {
		s.InvPerm[orig] = p
		s.RowLen[p] = m.RowNNZ(orig)
	}
	ns := (m.Rows + c - 1) / c
	s.SlicePtr = make([]int, ns+1)
	for sl := 0; sl < ns; sl++ {
		lo := sl * c
		h := c
		if m.Rows-lo < h {
			h = m.Rows - lo
		}
		w := s.RowLen[lo] // rows are descending within the slice
		s.SlicePtr[sl+1] = s.SlicePtr[sl] + w*h
	}
	s.ColIdx = make([]int32, s.SlicePtr[ns])
	s.Val = make([]float64, s.SlicePtr[ns])
	for sl := 0; sl < ns; sl++ {
		lo := sl * c
		h := c
		if m.Rows-lo < h {
			h = m.Rows - lo
		}
		base := s.SlicePtr[sl]
		for r := 0; r < h; r++ {
			orig := s.Perm[lo+r]
			k0 := m.RowPtr[orig]
			for j := 0; j < s.RowLen[lo+r]; j++ {
				s.ColIdx[base+j*h+r] = int32(m.ColIdx[k0+j])
				s.Val[base+j*h+r] = m.Val[k0+j]
			}
		}
	}
	return s
}

// NNZ returns the number of true (non-padding) entries.
func (m *SELL) NNZ() int {
	n := 0
	for _, l := range m.RowLen {
		n += l
	}
	return n
}

// PaddedNNZ returns the number of stored slots including padding.
func (m *SELL) PaddedNNZ() int { return len(m.Val) }

// numSlices returns the slice count.
func (m *SELL) numSlices() int { return (m.Rows + m.C - 1) / m.C }

// mulSlice computes the per-row dot products of slice s into acc (rows in
// ascending-column order, bit-for-bit matching CSR) and returns the slice's
// first sorted position and height. Full-height slices run the columns
// where all C rows are active through an unrolled kernel with one scalar
// accumulator per row: C independent dependency chains instead of one
// array-indexed chain, which is what lets the format beat CSR on stencil
// matrices even without SIMD.
func (m *SELL) mulSlice(s int, x []float64, acc *[sellMaxC]float64) (lo, h int) {
	lo = s * m.C
	h = m.C
	if m.Rows-lo < h {
		h = m.Rows - lo
	}
	base := m.SlicePtr[s]
	w := (m.SlicePtr[s+1] - base) / h
	for r := 0; r < h; r++ {
		acc[r] = 0
	}
	j := 0
	if h == 8 {
		// Rows are descending within the slice, so every row is active
		// while j is below the last (shortest) row's length.
		wMin := m.RowLen[lo+7]
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		for ; j < wMin; j++ {
			off := base + j*8
			v := m.Val[off : off+8 : off+8]
			c := m.ColIdx[off : off+8 : off+8]
			a0 += v[0] * x[c[0]]
			a1 += v[1] * x[c[1]]
			a2 += v[2] * x[c[2]]
			a3 += v[3] * x[c[3]]
			a4 += v[4] * x[c[4]]
			a5 += v[5] * x[c[5]]
			a6 += v[6] * x[c[6]]
			a7 += v[7] * x[c[7]]
		}
		acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
		acc[4], acc[5], acc[6], acc[7] = a4, a5, a6, a7
	}
	// cnt = rows of this slice still active at column position j; row
	// lengths are descending so it only ever shrinks.
	cnt := h
	for ; j < w; j++ {
		for cnt > 0 && m.RowLen[lo+cnt-1] <= j {
			cnt--
		}
		off := base + j*h
		vals := m.Val[off : off+cnt]
		cols := m.ColIdx[off : off+cnt]
		for r := range vals {
			acc[r] += vals[r] * x[cols[r]]
		}
	}
	return lo, h
}

// MulVec computes y = A*x, slice-parallel on the exec engine: each slice's
// C output rows are owned by exactly one span. Per row, products accumulate
// in ascending-column order, bit-for-bit matching CSR.MulVec.
func (m *SELL) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dims A=%dx%d x=%d y=%d", m.Rows, m.Cols, len(x), len(y)))
	}
	exec.Default().ParallelFor(m.numSlices(), func(slo, shi int) {
		var acc [sellMaxC]float64
		for s := slo; s < shi; s++ {
			lo, h := m.mulSlice(s, x, &acc)
			for r := 0; r < h; r++ {
				y[m.Perm[lo+r]] = acc[r]
			}
		}
	})
}

// MulVecAdd computes y += alpha * A*x, slice-parallel like MulVec and
// bitwise identical to CSR.MulVecAdd.
func (m *SELL) MulVecAdd(alpha float64, x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("sparse: MulVecAdd dimension mismatch")
	}
	exec.Default().ParallelFor(m.numSlices(), func(slo, shi int) {
		var acc [sellMaxC]float64
		for s := slo; s < shi; s++ {
			lo, h := m.mulSlice(s, x, &acc)
			for r := 0; r < h; r++ {
				y[m.Perm[lo+r]] += alpha * acc[r]
			}
		}
	})
}

// MulVecTrans computes y = A^T*x; y must have length Cols. To stay bitwise
// identical to CSR.MulVecTrans it scatters rows in original (CSR) order —
// per-span partial vectors over the same chunk-index reduction tree on the
// parallel path, direct writes on a one-worker engine.
func (m *SELL) MulVecTrans(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("sparse: MulVecTrans dimension mismatch")
	}
	scatter := func(y []float64, i int) {
		xi := x[i]
		p := m.InvPerm[i]
		s := p / m.C
		lo := s * m.C
		h := m.C
		if m.Rows-lo < h {
			h = m.Rows - lo
		}
		off := m.SlicePtr[s] + (p - lo)
		for j := 0; j < m.RowLen[p]; j++ {
			y[m.ColIdx[off+j*h]] += m.Val[off+j*h] * xi
		}
	}
	e := exec.Default()
	if e.Workers() == 1 {
		for j := range y {
			y[j] = 0
		}
		for i := 0; i < m.Rows; i++ {
			scatter(y, i)
		}
		return
	}
	out := exec.ParallelReduce(e, m.Rows, func(lo, hi int) []float64 {
		acc := make([]float64, m.Cols) //lint:allow hotalloc One dense accumulator per chunk by design; amortized over the chunk's rows
		for i := lo; i < hi; i++ {
			scatter(acc, i)
		}
		return acc
	}, func(a, b []float64) []float64 {
		for j := range a {
			a[j] += b[j]
		}
		return a
	})
	copy(y, out)
}

// Scale multiplies every stored entry by alpha, in place. Padding slots are
// scaled too but never read, so a NaN/Inf alpha cannot leak into results.
func (m *SELL) Scale(alpha float64) {
	for k := range m.Val {
		m.Val[k] *= alpha
	}
}

func (m *SELL) String() string {
	return fmt.Sprintf("SELL{%dx%d, C=%d, sigma=%d, nnz=%d, padded=%d}", m.Rows, m.Cols, m.C, m.Sigma, m.NNZ(), m.PaddedNNZ())
}

// Operator is the minimal SpMV surface shared by *CSR and *SELL, letting
// matrix consumers (tpetra, solvers, preconditioners) apply whichever
// format the auto-selector picked.
type Operator interface {
	MulVec(x, y []float64)
	MulVecAdd(alpha float64, x, y []float64)
	MulVecTrans(x, y []float64)
}

// Format identifies a sparse storage format for the SpMV fast path.
type Format int

const (
	// FormatCSR keeps the row-pointer format.
	FormatCSR Format = iota
	// FormatSELL converts to SELL-C-sigma for SpMV.
	FormatSELL
)

func (f Format) String() string {
	if f == FormatSELL {
		return "sell"
	}
	return "csr"
}

// SpmvEnv is the environment variable overriding format auto-selection:
// "csr" and "sell" force a format, "auto" (or unset) applies the heuristic.
const SpmvEnv = "ODINHPC_SPMV"

// ChooseFormat picks the SpMV format for m: the ODINHPC_SPMV override if
// set, else a heuristic that converts to SELL when the matrix is large
// enough to amortize slicing and its nnz/row distribution is even enough
// (low variance => low padding after the sigma sort) that the padded format
// stays compact. Banded and stencil matrices (Laplace, Poisson,
// convection-diffusion) qualify; tiny or wildly ragged matrices stay CSR.
func ChooseFormat(m *CSR) Format {
	switch os.Getenv(SpmvEnv) {
	case "csr":
		return FormatCSR
	case "sell":
		return FormatSELL
	}
	if m.Rows < 4*DefaultSellC || m.NNZ() == 0 {
		return FormatCSR
	}
	// Padded size of the would-be SELL layout: per sigma window, sort row
	// lengths descending and charge each C-slice its max row length. This
	// prices the nnz/row variance directly — a CV of zero pads nothing.
	lens := make([]int, m.Rows)
	for i := range lens {
		lens[i] = m.RowNNZ(i)
	}
	padded := 0
	for lo := 0; lo < m.Rows; lo += DefaultSellSigma {
		hi := lo + DefaultSellSigma
		if hi > m.Rows {
			hi = m.Rows
		}
		win := lens[lo:hi]
		sort.Sort(sort.Reverse(sort.IntSlice(win)))
		for s := 0; s < len(win); s += DefaultSellC {
			h := DefaultSellC
			if len(win)-s < h {
				h = len(win) - s
			}
			padded += win[s] * h
		}
	}
	if float64(padded) > 1.25*float64(m.NNZ()) {
		return FormatCSR
	}
	return FormatSELL
}

// AutoOperator returns m itself or a fresh SELL conversion, per
// ChooseFormat. The returned operator is bitwise-equivalent to m either
// way.
func AutoOperator(m *CSR) Operator {
	if ChooseFormat(m) == FormatSELL {
		return NewSELL(m)
	}
	return m
}
