package sparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"odinhpc/internal/exec"
)

// bitsEqual reports exact (bit-level) equality of two float64 slices.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// raggedRandom builds a matrix with deliberately uneven rows: mostly sparse
// rows, some empty, and a few dense "ragged" outliers.
func raggedRandom(rows, cols int, rng *rand.Rand) *CSR {
	c := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		switch rng.Intn(5) {
		case 0: // empty row
		case 1: // dense outlier
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.8 {
					c.Add(i, j, rng.NormFloat64())
				}
			}
		default:
			for k := 0; k < 1+rng.Intn(4); k++ {
				c.Add(i, rng.Intn(cols), rng.NormFloat64())
			}
		}
	}
	return c.ToCSR()
}

// checkSellMatchesCSR verifies MulVec, MulVecAdd, and MulVecTrans are
// bitwise identical between m and its SELL conversion.
func checkSellMatchesCSR(t *testing.T, m *CSR, c, sigma int, rng *rand.Rand) {
	t.Helper()
	s := FromCSR(m, c, sigma)
	if got, want := s.NNZ(), m.NNZ(); got != want {
		t.Fatalf("C=%d sigma=%d: SELL nnz %d != CSR nnz %d", c, sigma, got, want)
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1, y2 := make([]float64, m.Rows), make([]float64, m.Rows)
	m.MulVec(x, y1)
	s.MulVec(x, y2)
	if !bitsEqual(y1, y2) {
		t.Fatalf("C=%d sigma=%d: MulVec differs\ncsr  %v\nsell %v", c, sigma, y1, y2)
	}
	alpha := rng.NormFloat64()
	for i := range y1 {
		v := rng.NormFloat64()
		y1[i], y2[i] = v, v
	}
	m.MulVecAdd(alpha, x, y1)
	s.MulVecAdd(alpha, x, y2)
	if !bitsEqual(y1, y2) {
		t.Fatalf("C=%d sigma=%d: MulVecAdd differs", c, sigma)
	}
	xt := make([]float64, m.Rows)
	for i := range xt {
		xt[i] = rng.NormFloat64()
	}
	z1, z2 := make([]float64, m.Cols), make([]float64, m.Cols)
	m.MulVecTrans(xt, z1)
	s.MulVecTrans(xt, z2)
	if !bitsEqual(z1, z2) {
		t.Fatalf("C=%d sigma=%d: MulVecTrans differs", c, sigma)
	}
}

func TestSELLMatchesCSRRandom(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		old := exec.Default()
		exec.SetDefault(exec.New(exec.WithWorkers(workers)))
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			rows, cols := 1+rng.Intn(100), 1+rng.Intn(60)
			m := raggedRandom(rows, cols, rng)
			cs := []int{1, 2, 4, 8, 16}[rng.Intn(5)]
			sigma := []int{0, 1, 8, 64, 1024}[rng.Intn(5)]
			s := FromCSR(m, cs, sigma)
			x := make([]float64, cols)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			y1, y2 := make([]float64, rows), make([]float64, rows)
			m.MulVec(x, y1)
			s.MulVec(x, y2)
			if !bitsEqual(y1, y2) {
				return false
			}
			z1, z2 := make([]float64, cols), make([]float64, cols)
			xt := make([]float64, rows)
			for i := range xt {
				xt[i] = rng.NormFloat64()
			}
			m.MulVecTrans(xt, z1)
			s.MulVecTrans(xt, z2)
			return bitsEqual(z1, z2)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
		exec.SetDefault(old)
	}
}

func TestSELLMatchesCSRStencils(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Inline stencil builders mirroring the galeri generators (sparse cannot
	// import galeri: galeri imports sparse).
	lap2d := func(nx, ny int) *CSR {
		c := NewCOO(nx*ny, nx*ny)
		for i := 0; i < nx*ny; i++ {
			x, y := i%nx, i/nx
			c.Add(i, i, 4)
			if x > 0 {
				c.Add(i, i-1, -1)
			}
			if x < nx-1 {
				c.Add(i, i+1, -1)
			}
			if y > 0 {
				c.Add(i, i-nx, -1)
			}
			if y < ny-1 {
				c.Add(i, i+nx, -1)
			}
		}
		return c.ToCSR()
	}
	for name, m := range map[string]*CSR{
		"laplace1d-257": tridiag(257),
		"laplace2d":     lap2d(17, 13),
		"spd-random":    randomSPD(120, 3),
		"identity":      Identity(64),
	} {
		for _, cfg := range [][2]int{{8, 256}, {4, 4}, {1, 0}, {16, 32}} {
			t.Run(name, func(t *testing.T) {
				checkSellMatchesCSR(t, m, cfg[0], cfg[1], rng)
			})
		}
	}
}

func TestSELLMatchesCSRMatrixMarket(t *testing.T) {
	// Round-trip a ragged matrix through MatrixMarket text and compare the
	// SELL conversion of the re-read matrix against the CSR original.
	rng := rand.New(rand.NewSource(7))
	m := raggedRandom(40, 23, rng)
	var sb strings.Builder
	if err := m.WriteMatrixMarket(&sb); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadMatrixMarket(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	checkSellMatchesCSR(t, m2, 8, 16, rng)
	if !m.Equal(m2) {
		t.Fatal("MatrixMarket round trip changed the matrix")
	}
}

func TestSELLEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	t.Run("all-empty", func(t *testing.T) {
		m := NewCOO(10, 5).ToCSR()
		checkSellMatchesCSR(t, m, 8, 0, rng)
		if FromCSR(m, 8, 0).PaddedNNZ() != 0 {
			t.Fatal("empty matrix must store nothing")
		}
	})
	t.Run("single-row", func(t *testing.T) {
		c := NewCOO(1, 6)
		c.Add(0, 5, 1)
		c.Add(0, 0, 2)
		checkSellMatchesCSR(t, c.ToCSR(), 8, 0, rng)
	})
	t.Run("single-col", func(t *testing.T) {
		c := NewCOO(9, 1)
		for i := 0; i < 9; i += 2 {
			c.Add(i, 0, float64(i))
		}
		checkSellMatchesCSR(t, c.ToCSR(), 4, 4, rng)
	})
	t.Run("rows-not-multiple-of-C", func(t *testing.T) {
		checkSellMatchesCSR(t, tridiag(13), 8, 8, rng)
	})
	t.Run("one-dense-row", func(t *testing.T) {
		c := NewCOO(20, 20)
		for j := 0; j < 20; j++ {
			c.Add(7, j, float64(j+1))
		}
		c.Add(0, 0, 1)
		checkSellMatchesCSR(t, c.ToCSR(), 8, 16, rng)
	})
}

func TestSELLScale(t *testing.T) {
	m := tridiag(50)
	s := NewSELL(m)
	m.Scale(-2.5)
	s.Scale(-2.5)
	x := make([]float64, 50)
	for i := range x {
		x[i] = float64(i) - 25
	}
	y1, y2 := make([]float64, 50), make([]float64, 50)
	m.MulVec(x, y1)
	s.MulVec(x, y2)
	if !bitsEqual(y1, y2) {
		t.Fatal("Scale broke SELL/CSR parity")
	}
}

func TestSELLPermIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := raggedRandom(77, 30, rng)
	s := FromCSR(m, 8, 16)
	seen := make([]bool, m.Rows)
	for p, orig := range s.Perm {
		if seen[orig] {
			t.Fatalf("row %d appears twice in Perm", orig)
		}
		seen[orig] = true
		if s.InvPerm[orig] != p {
			t.Fatalf("InvPerm[%d] = %d, want %d", orig, s.InvPerm[orig], p)
		}
		if s.RowLen[p] != m.RowNNZ(orig) {
			t.Fatalf("RowLen[%d] = %d, want %d", p, s.RowLen[p], m.RowNNZ(orig))
		}
	}
	// Row lengths must be descending within every slice.
	for sl := 0; sl < s.numSlices(); sl++ {
		lo, hi := sl*s.C, (sl+1)*s.C
		if hi > s.Rows {
			hi = s.Rows
		}
		for p := lo + 1; p < hi; p++ {
			if s.RowLen[p] > s.RowLen[p-1] {
				t.Fatalf("slice %d rows not descending at position %d", sl, p)
			}
		}
	}
}

func TestSELLBadArgs(t *testing.T) {
	m := tridiag(4)
	for name, fn := range map[string]func(){
		"c-zero":      func() { FromCSR(m, 0, 0) },
		"c-too-big":   func() { FromCSR(m, sellMaxC+1, 0) },
		"mulvec":      func() { NewSELL(m).MulVec(make([]float64, 2), make([]float64, 4)) },
		"mulvecadd":   func() { NewSELL(m).MulVecAdd(1, make([]float64, 4), make([]float64, 2)) },
		"mulvectrans": func() { NewSELL(m).MulVecTrans(make([]float64, 2), make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestChooseFormat(t *testing.T) {
	lap := tridiag(1000) // uniform stencil: prime SELL territory
	if ChooseFormat(lap) != FormatSELL {
		t.Fatal("stencil matrix should auto-select SELL")
	}
	if ChooseFormat(tridiag(8)) != FormatCSR {
		t.Fatal("tiny matrix should stay CSR")
	}
	// One very long row among 100 empty ones: padding explodes, stay CSR.
	c := NewCOO(100, 100)
	for j := 0; j < 100; j++ {
		c.Add(0, j, 1)
	}
	if ChooseFormat(c.ToCSR()) != FormatCSR {
		t.Fatal("pathologically ragged matrix should stay CSR")
	}
	t.Run("env-override", func(t *testing.T) {
		t.Setenv(SpmvEnv, "csr")
		if ChooseFormat(lap) != FormatCSR {
			t.Fatal("ODINHPC_SPMV=csr must force CSR")
		}
		t.Setenv(SpmvEnv, "sell")
		if ChooseFormat(tridiag(4)) != FormatSELL {
			t.Fatal("ODINHPC_SPMV=sell must force SELL")
		}
		t.Setenv(SpmvEnv, "auto")
		if ChooseFormat(lap) != FormatSELL {
			t.Fatal("ODINHPC_SPMV=auto must fall back to the heuristic")
		}
	})
	if op := AutoOperator(lap); func() bool { _, ok := op.(*SELL); return !ok }() {
		t.Fatalf("AutoOperator(stencil) = %T, want *SELL", op)
	}
	if op := AutoOperator(tridiag(8)); func() bool { _, ok := op.(*CSR); return !ok }() {
		t.Fatalf("AutoOperator(tiny) = %T, want *CSR", op)
	}
	if FormatCSR.String() != "csr" || FormatSELL.String() != "sell" {
		t.Fatal("Format.String")
	}
}
