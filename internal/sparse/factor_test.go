package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func residual(a *CSR, x, b []float64) float64 {
	r := make([]float64, a.Rows)
	a.MulVec(x, r)
	var acc float64
	for i := range r {
		d := r[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

func TestILU0ExactForTridiagonal(t *testing.T) {
	// The [-1 2 -1] tridiagonal has no fill-in, so ILU(0) is the exact LU
	// and the preconditioner solve is a direct solve.
	n := 20
	a := tridiag(n)
	f, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%3) + 1
	}
	x := make([]float64, n)
	f.Solve(b, x)
	if r := residual(a, x, b); r > 1e-10 {
		t.Fatalf("ILU0 on tridiagonal not exact: residual %g", r)
	}
}

func TestILU0ReducesResidual(t *testing.T) {
	// For general SPD matrices, one ILU0 application must be a good
	// approximate inverse: ||A z - b|| << ||b|| for z = ILU\b.
	a := randomSPD(40, 3)
	f, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 40)
	for i := range b {
		b[i] = 1
	}
	z := make([]float64, 40)
	f.Solve(b, z)
	if r := residual(a, z, b); r > 0.5*math.Sqrt(40) {
		t.Fatalf("ILU0 poor approximation: residual %g", r)
	}
}

func TestILU0MissingDiagonal(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	if _, err := ILU0(c.ToCSR()); err == nil {
		t.Fatal("missing diagonal must fail")
	}
}

func TestILU0ZeroPivot(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 0)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	c.Add(1, 1, 1)
	if _, err := ILU0(c.ToCSR()); err == nil {
		t.Fatal("zero pivot must fail")
	}
}

func TestILU0RequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = ILU0(&CSR{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}})
}

func TestSparseLUSolvesExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := randomSPD(n, seed)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(want, b)
		lu, err := FactorLU(a)
		if err != nil {
			return false
		}
		got := lu.Solve(b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseLUNeedsPivoting(t *testing.T) {
	// Zero leading diagonal forces a row swap.
	c := NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 2)
	c.Add(1, 1, 1)
	a := c.ToCSR()
	lu, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.Solve([]float64{3, 5})
	// x1 = 3; 2*x0 + x1 = 5 -> x0 = 1
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSparseLUSingular(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 1, 2)
	c.Add(1, 0, 2)
	c.Add(1, 1, 4)
	if _, err := FactorLU(c.ToCSR()); err == nil {
		t.Fatal("singular must fail")
	}
}

func TestSparseLUWithFillIn(t *testing.T) {
	// Arrowhead matrix generates maximal fill; LU must still be exact.
	n := 12
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4)
		if i > 0 {
			c.Add(0, i, 1)
			c.Add(i, 0, 1)
		}
	}
	a := c.ToCSR()
	lu, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i + 1)
	}
	b := make([]float64, n)
	a.MulVec(want, b)
	got := lu.Solve(b)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g want %g", i, got[i], want[i])
		}
	}
}

func TestTriangularSolves(t *testing.T) {
	// L = [[2,0],[1,3]], U = L^T.
	cl := NewCOO(2, 2)
	cl.Add(0, 0, 2)
	cl.Add(1, 0, 1)
	cl.Add(1, 1, 3)
	l := cl.ToCSR()
	x := make([]float64, 2)
	LowerSolve(l, []float64{4, 7}, x)
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-5.0/3) > 1e-12 {
		t.Fatalf("LowerSolve = %v", x)
	}
	u := l.Transpose()
	UpperSolve(u, []float64{4, 6}, x)
	if math.Abs(x[1]-2) > 1e-12 || math.Abs(x[0]-1) > 1e-12 {
		t.Fatalf("UpperSolve = %v", x)
	}
}

func TestTriangularZeroDiagPanics(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(1, 0, 1)
	c.Add(0, 0, 1)
	c.Add(1, 1, 0)
	m := c.ToCSR()
	x := make([]float64, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("LowerSolve zero diag should panic")
			}
		}()
		LowerSolve(m, []float64{1, 1}, x)
	}()
}

func TestGaussSeidelConverges(t *testing.T) {
	n := 30
	a := tridiag(n)
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	b := make([]float64, n)
	a.MulVec(want, b)
	x := make([]float64, n)
	r0 := residual(a, x, b)
	for sweep := 0; sweep < 200; sweep++ {
		GaussSeidelSweep(a, b, x)
	}
	if r := residual(a, x, b); r > 1e-3*r0 {
		t.Fatalf("Gauss-Seidel stalled: %g -> %g", r0, r)
	}
}

// Property: ILU0 of a lower+upper triangular-complete pattern reproduces A
// exactly when A has a full LU with no fill (tridiagonal family, scaled).
func TestILU0TridiagonalFamilyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		c := NewCOO(n, n)
		for i := 0; i < n; i++ {
			c.Add(i, i, 3+rng.Float64())
			if i > 0 {
				c.Add(i, i-1, -1+0.2*rng.Float64())
			}
			if i < n-1 {
				c.Add(i, i+1, -1+0.2*rng.Float64())
			}
		}
		a := c.ToCSR()
		f0, err := ILU0(a)
		if err != nil {
			return false
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(want, b)
		x := make([]float64, n)
		f0.Solve(b, x)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
