package sparse

import (
	"fmt"
	"math"
	"sort"
)

// ILU0 computes the zero-fill incomplete LU factorization of a square CSR
// matrix: L and U share A's sparsity pattern, L has unit diagonal (not
// stored), and the factors are packed into a single matrix with the same
// pattern as A. It returns an error if a zero pivot is met.
func ILU0(a *CSR) (*ILUFactor, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: ILU0 requires a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	lu := a.Clone()
	diagPos := make([]int, n)
	for i := 0; i < n; i++ {
		diagPos[i] = -1
		for k := lu.RowPtr[i]; k < lu.RowPtr[i+1]; k++ {
			if lu.ColIdx[k] == i {
				diagPos[i] = k
				break
			}
		}
		if diagPos[i] == -1 {
			return nil, fmt.Errorf("sparse: ILU0 needs a stored diagonal; row %d has none", i)
		}
	}
	// IKJ variant restricted to the pattern of A.
	colPos := make([]int, n) // scatter: column -> position in current row (+1), 0 = absent
	for i := 0; i < n; i++ {
		for k := lu.RowPtr[i]; k < lu.RowPtr[i+1]; k++ {
			colPos[lu.ColIdx[k]] = k + 1
		}
		for k := lu.RowPtr[i]; k < lu.RowPtr[i+1]; k++ {
			j := lu.ColIdx[k]
			if j >= i {
				break
			}
			piv := lu.Val[diagPos[j]]
			if piv == 0 {
				clearScatter(lu, colPos, i)
				return nil, fmt.Errorf("sparse: ILU0 zero pivot at row %d", j)
			}
			lij := lu.Val[k] / piv
			lu.Val[k] = lij
			for p := diagPos[j] + 1; p < lu.RowPtr[j+1]; p++ {
				if q := colPos[lu.ColIdx[p]]; q != 0 {
					lu.Val[q-1] -= lij * lu.Val[p]
				}
			}
		}
		if lu.Val[diagPos[i]] == 0 {
			clearScatter(lu, colPos, i)
			return nil, fmt.Errorf("sparse: ILU0 zero pivot at row %d", i)
		}
		clearScatter(lu, colPos, i)
	}
	return &ILUFactor{lu: lu, diagPos: diagPos}, nil
}

func clearScatter(lu *CSR, colPos []int, i int) {
	for k := lu.RowPtr[i]; k < lu.RowPtr[i+1]; k++ {
		colPos[lu.ColIdx[k]] = 0
	}
}

// ILUFactor holds a packed incomplete LU factorization.
type ILUFactor struct {
	lu      *CSR
	diagPos []int
}

// Solve applies (LU)^{-1} to b, writing the result into x (which may alias b).
func (f *ILUFactor) Solve(b, x []float64) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("sparse: ILUFactor.Solve dimension mismatch")
	}
	// Forward: L y = b with unit diagonal.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := f.lu.RowPtr[i]; k < f.lu.RowPtr[i+1]; k++ {
			j := f.lu.ColIdx[k]
			if j >= i {
				break
			}
			s -= f.lu.Val[k] * x[j]
		}
		x[i] = s
	}
	// Backward: U x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := f.lu.RowPtr[i+1] - 1; k >= f.lu.RowPtr[i]; k-- {
			j := f.lu.ColIdx[k]
			if j <= i {
				break
			}
			s -= f.lu.Val[k] * x[j]
		}
		x[i] = s / f.lu.Val[f.diagPos[i]]
	}
}

// LUFactor holds a complete sparse LU factorization with partial pivoting,
// stored row-wise with fill-in. It is the kernel behind the Amesos-analog
// direct solver.
type LUFactor struct {
	n     int
	perm  []int   // row permutation: factor row i came from A row perm[i]
	lCols [][]int // strictly-lower entries per factor row
	lVals [][]float64
	uCols [][]int // upper (including diagonal first) per factor row
	uVals [][]float64
}

// FactorLU computes a sparse LU factorization of a square CSR matrix using
// row-wise elimination with partial pivoting and dynamic fill.
func FactorLU(a *CSR) (*LUFactor, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: FactorLU requires a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	// Active rows held as sparse maps; simple and robust for the moderate
	// sizes the direct solver targets (coarse grids, gathered systems).
	rows := make([]map[int]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = make(map[int]float64, a.RowNNZ(i))
		cols, vals := a.Row(i)
		for k, j := range cols {
			rows[i][j] = vals[k]
		}
	}
	remaining := make([]int, n) // original row indices still unfactored
	for i := range remaining {
		remaining[i] = i
	}
	f := &LUFactor{
		n: n, perm: make([]int, n),
		lCols: make([][]int, n), lVals: make([][]float64, n),
		uCols: make([][]int, n), uVals: make([][]float64, n),
	}
	lFromOrig := make([]map[int]float64, n) // multipliers accumulated per original row
	for i := range lFromOrig {
		lFromOrig[i] = make(map[int]float64)
	}
	for k := 0; k < n; k++ {
		// Pivot: remaining row with largest |entry| in column k.
		best, bestAbs := -1, 0.0
		for pos, orig := range remaining {
			if v, ok := rows[orig][k]; ok {
				if av := math.Abs(v); av > bestAbs {
					best, bestAbs = pos, av
				}
			}
		}
		if best == -1 || bestAbs == 0 {
			return nil, fmt.Errorf("sparse: FactorLU singular at column %d", k)
		}
		pivOrig := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		f.perm[k] = pivOrig
		// Record U row k (sorted columns >= k).
		pivRow := rows[pivOrig]
		ucols := make([]int, 0, len(pivRow))
		for j := range pivRow {
			ucols = append(ucols, j)
		}
		sort.Ints(ucols)
		for _, j := range ucols {
			f.uCols[k] = append(f.uCols[k], j)
			f.uVals[k] = append(f.uVals[k], pivRow[j])
		}
		// Record L row k (multipliers previously accumulated for pivOrig).
		lrow := lFromOrig[pivOrig]
		lcols := make([]int, 0, len(lrow))
		for j := range lrow {
			lcols = append(lcols, j)
		}
		sort.Ints(lcols)
		for _, j := range lcols {
			f.lCols[k] = append(f.lCols[k], j)
			f.lVals[k] = append(f.lVals[k], lrow[j])
		}
		// Eliminate column k from all remaining rows.
		piv := pivRow[k]
		for _, orig := range remaining {
			v, ok := rows[orig][k]
			if !ok || v == 0 {
				continue
			}
			mult := v / piv
			lFromOrig[orig][k] = mult
			delete(rows[orig], k)
			for j, pv := range pivRow {
				if j == k {
					continue
				}
				rows[orig][j] -= mult * pv
			}
		}
	}
	return f, nil
}

// Solve solves A x = b and returns a fresh solution vector.
func (f *LUFactor) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic(fmt.Sprintf("sparse: LUFactor.Solve length %d, want %d", len(b), f.n))
	}
	// Forward: L y = P b (unit diagonal L).
	y := make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		s := b[f.perm[i]]
		for k, j := range f.lCols[i] {
			s -= f.lVals[i][k] * y[j]
		}
		y[i] = s
	}
	// Backward: U x = y; U rows are sorted with the diagonal first entry >= i.
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		var diag float64
		for k, j := range f.uCols[i] {
			switch {
			case j == i:
				diag = f.uVals[i][k]
			case j > i:
				s -= f.uVals[i][k] * x[j]
			}
		}
		x[i] = s / diag
	}
	return x
}

// LowerSolve solves L x = b for a lower-triangular CSR matrix with non-zero
// diagonal (stored explicitly).
func LowerSolve(l *CSR, b, x []float64) {
	n := l.Rows
	if len(b) != n || len(x) != n {
		panic("sparse: LowerSolve dimension mismatch")
	}
	for i := 0; i < n; i++ {
		s := b[i]
		var diag float64
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			j := l.ColIdx[k]
			switch {
			case j < i:
				s -= l.Val[k] * x[j]
			case j == i:
				diag = l.Val[k]
			}
		}
		if diag == 0 {
			panic(fmt.Sprintf("sparse: LowerSolve zero diagonal at row %d", i))
		}
		x[i] = s / diag
	}
}

// UpperSolve solves U x = b for an upper-triangular CSR matrix with non-zero
// diagonal (stored explicitly).
func UpperSolve(u *CSR, b, x []float64) {
	n := u.Rows
	if len(b) != n || len(x) != n {
		panic("sparse: UpperSolve dimension mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		var diag float64
		for k := u.RowPtr[i]; k < u.RowPtr[i+1]; k++ {
			j := u.ColIdx[k]
			switch {
			case j > i:
				s -= u.Val[k] * x[j]
			case j == i:
				diag = u.Val[k]
			}
		}
		if diag == 0 {
			panic(fmt.Sprintf("sparse: UpperSolve zero diagonal at row %d", i))
		}
		x[i] = s / diag
	}
}

// GaussSeidelSweep performs one forward Gauss-Seidel sweep for A x = b,
// updating x in place. Used as a multigrid smoother.
func GaussSeidelSweep(a *CSR, b, x []float64) {
	n := a.Rows
	for i := 0; i < n; i++ {
		s := b[i]
		var diag float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i {
				diag = a.Val[k]
			} else {
				s -= a.Val[k] * x[j]
			}
		}
		if diag != 0 {
			x[i] = s / diag
		}
	}
}
