package dense

import (
	"math"
	"testing"

	"odinhpc/internal/exec"
)

// These tests pin the strided/non-contiguous behaviour of the whole-array
// reductions and ufunc loops on sliced, transposed, and negative-step views
// — both on the serial engine and on multi-worker engines whose grain
// forces the chunked strided path.

// withEngine runs f with the process-wide engine replaced, restoring it.
func withEngine(t *testing.T, workers, grain int, f func()) {
	t.Helper()
	old := exec.Default()
	exec.SetDefault(exec.New(exec.WithWorkers(workers), exec.WithGrain(grain)))
	defer exec.SetDefault(old)
	f()
}

// stridedViews returns interesting non-contiguous views of a fresh 24x17
// counting matrix, with names.
func stridedViews() map[string]*Array[float64] {
	base := Zeros[float64](24, 17)
	raw := base.Raw()
	for i := range raw {
		raw[i] = float64(i%101) - 50.0 // mixed signs, repeats
	}
	return map[string]*Array[float64]{
		"transpose":     base.Transpose(),
		"step2":         base.Slice(0, Range{0, 24, 2}),
		"inner-block":   base.SliceND([]Range{{3, 21, 1}, {2, 15, 1}}),
		"neg-step":      base.Slice(1, Range{16, -18, -1}),
		"both-strided":  base.SliceND([]Range{{22, 1, -3}, {0, 17, 2}}),
		"col-as-vector": base.Col(5),
		"row-rev":       base.Row(7).Slice(0, Range{16, -18, -1}),
	}
}

// refSum/refAbsSum/etc compute references through the index interface only.
func refStats(a *Array[float64]) (sum, sumsq, asum, amax, min, max float64) {
	first := true
	a.EachIndexed(func(_ []int, v float64) {
		sum += v
		sumsq += v * v
		asum += math.Abs(v)
		if av := math.Abs(v); av > amax {
			amax = av
		}
		if first || v < min {
			min = v
		}
		if first || v > max {
			max = v
		}
		first = false
	})
	return
}

func TestStridedReductions(t *testing.T) {
	for _, cfg := range [][2]int{{1, 4096}, {4, 16}, {7, 7}} {
		withEngine(t, cfg[0], cfg[1], func() {
			for name, v := range stridedViews() {
				sum, sumsq, asum, amax, min, max := refStats(v)
				tol := 1e-12 * (math.Abs(sum) + asum + 1)
				if got := Sum(v); math.Abs(got-sum) > tol {
					t.Errorf("w=%d %s: Sum = %g, want %g", cfg[0], name, got, sum)
				}
				if got := Norm2(v); math.Abs(got-math.Sqrt(sumsq)) > tol {
					t.Errorf("w=%d %s: Norm2 = %g, want %g", cfg[0], name, got, math.Sqrt(sumsq))
				}
				if got := Norm1(v); math.Abs(got-asum) > tol {
					t.Errorf("w=%d %s: Norm1 = %g, want %g", cfg[0], name, got, asum)
				}
				if got := NormInf(v); got != amax {
					t.Errorf("w=%d %s: NormInf = %g, want %g", cfg[0], name, got, amax)
				}
				if got := Min(v); got != min {
					t.Errorf("w=%d %s: Min = %g, want %g", cfg[0], name, got, min)
				}
				if got := Max(v); got != max {
					t.Errorf("w=%d %s: Max = %g, want %g", cfg[0], name, got, max)
				}
				nneg := 0
				v.Each(func(x float64) {
					if x < 0 {
						nneg++
					}
				})
				if got := Count(v, func(x float64) bool { return x < 0 }); got != nneg {
					t.Errorf("w=%d %s: Count = %d, want %d", cfg[0], name, got, nneg)
				}
			}
		})
	}
}

func TestStridedDot(t *testing.T) {
	base := Zeros[float64](40, 9)
	raw := base.Raw()
	for i := range raw {
		raw[i] = math.Sin(float64(i))
	}
	col := base.Col(3)                              // stride 9
	rev := base.Col(4).Slice(0, Range{39, -41, -1}) // negative stride, full reversal
	var want float64
	for i := 0; i < 40; i++ {
		want += base.At(i, 3) * base.At(39-i, 4)
	}
	for _, cfg := range [][2]int{{1, 4096}, {4, 8}} {
		withEngine(t, cfg[0], cfg[1], func() {
			if got := Dot(col, rev); math.Abs(got-want) > 1e-12 {
				t.Errorf("w=%d: Dot = %g, want %g", cfg[0], got, want)
			}
		})
	}
}

func TestStridedArgMinMax(t *testing.T) {
	v := stridedViews()["both-strided"]
	flat := v.Flatten()
	wantMin, wantMax := 0, 0
	for i, x := range flat {
		if x < flat[wantMin] {
			wantMin = i
		}
		if x > flat[wantMax] {
			wantMax = i
		}
	}
	if got := ArgMin(v); got != wantMin {
		t.Errorf("ArgMin = %d, want %d", got, wantMin)
	}
	if got := ArgMax(v); got != wantMax {
		t.Errorf("ArgMax = %d, want %d", got, wantMax)
	}
}

func TestStridedUfuncInto(t *testing.T) {
	for _, cfg := range [][2]int{{1, 4096}, {4, 16}} {
		withEngine(t, cfg[0], cfg[1], func() {
			src := stridedViews()["both-strided"]
			dst := Zeros[float64](src.Shape()...).Transpose().Transpose() // contiguous but exercises shape copy
			UnaryInto(dst, src, func(v float64) float64 { return 2 * v })
			src.EachIndexed(func(idx []int, v float64) {
				if got := dst.At(idx...); got != 2*v {
					t.Fatalf("w=%d: UnaryInto at %v = %g, want %g", cfg[0], idx, got, 2*v)
				}
			})

			a := stridedViews()["transpose"]
			b := stridedViews()["transpose"]
			out := Zeros[float64](a.Shape()...)
			outView := out.Slice(0, Range{0, a.Dim(0), 1}) // same shape, still a view
			BinaryInto(outView, a, b, func(x, y float64) float64 { return x + y })
			a.EachIndexed(func(idx []int, v float64) {
				if got := out.At(idx...); got != 2*v {
					t.Fatalf("w=%d: BinaryInto at %v = %g, want %g", cfg[0], idx, got, 2*v)
				}
			})
		})
	}
}

// A large 1-d negative-step view crosses many chunks; the chunked walker
// must agree bitwise with the serial walker for element-wise ops and within
// reassociation tolerance for sums.
func TestLargeStridedViewAcrossChunks(t *testing.T) {
	n := 50_000
	base := Linspace[float64](0, 1, 2*n)
	view := base.Slice(0, Range{2*n - 1, -(2*n + 1), -2}) // every other element, reversed
	var serialSum float64
	var serialOut *Array[float64]
	withEngine(t, 1, 4096, func() {
		serialSum = Sum(view)
		serialOut = Unary(view, math.Sqrt)
	})
	withEngine(t, 4, 1024, func() {
		if got := Sum(view); math.Abs(got-serialSum) > 1e-9*math.Abs(serialSum) {
			t.Errorf("parallel strided Sum = %g, serial %g", got, serialSum)
		}
		out := Unary(view, math.Sqrt)
		if !out.Equal(serialOut) {
			t.Error("parallel strided Unary differs bitwise from serial")
		}
	})
}
