package dense

import (
	"fmt"
	"math"

	"odinhpc/internal/exec"
)

// This file provides the small dense linear-algebra kernels (BLAS level 1-3
// subset plus LU/QR factorizations) used by the solver and preconditioner
// packages. Everything operates on float64 slices or 2-d Arrays; the
// distributed layers handle partitioning. The BLAS-1 sweeps and the Gemv
// row loop run on the exec engine; the factorizations stay serial (their
// loop-carried dependencies don't chunk).

// Axpy computes y += alpha*x for equal-length slices.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	exec.Default().ParallelFor(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// Scal scales x by alpha in place.
func Scal(alpha float64, x []float64) {
	exec.Default().ParallelFor(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= alpha
		}
	})
}

// DotSlices returns the inner product of two equal-length slices.
func DotSlices(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	return exec.ParallelReduce(exec.Default(), len(x), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += x[i] * y[i]
		}
		return acc
	}, func(a, b float64) float64 { return a + b })
}

// Nrm2Slice returns the Euclidean norm of a slice.
func Nrm2Slice(x []float64) float64 {
	return math.Sqrt(DotSlices(x, x))
}

// SumSlice returns the sum of the slice's elements.
func SumSlice(x []float64) float64 {
	return exec.ParallelReduce(exec.Default(), len(x), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += x[i]
		}
		return acc
	}, func(a, b float64) float64 { return a + b })
}

// AsumSlice returns the sum of absolute values (BLAS dasum).
func AsumSlice(x []float64) float64 {
	return exec.ParallelReduce(exec.Default(), len(x), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += math.Abs(x[i])
		}
		return acc
	}, func(a, b float64) float64 { return a + b })
}

// AmaxSlice returns the maximum absolute value (0 for an empty slice).
func AmaxSlice(x []float64) float64 {
	return exec.ParallelReduce(exec.Default(), len(x), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			if a := math.Abs(x[i]); a > acc {
				acc = a
			}
		}
		return acc
	}, func(a, b float64) float64 { return math.Max(a, b) })
}

// Gemv computes y = alpha*A*x + beta*y for a 2-d array A (m x n), x of
// length n and y of length m.
func Gemv(alpha float64, a *Array[float64], x []float64, beta float64, y []float64) {
	if a.NDim() != 2 {
		panic("dense: Gemv requires a 2-d array")
	}
	m, n := a.Dim(0), a.Dim(1)
	if len(x) != n || len(y) != m {
		panic(fmt.Sprintf("dense: Gemv dims A=%dx%d x=%d y=%d", m, n, len(x), len(y)))
	}
	// Row-parallel: each output element is owned by exactly one span.
	exec.Default().ParallelFor(m, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			var acc float64
			ro := a.offset + i*a.strides[0]
			for j := 0; j < n; j++ {
				acc += a.data[ro+j*a.strides[1]] * x[j]
			}
			y[i] = alpha*acc + beta*y[i]
		}
	})
}

// Gemm computes C = alpha*A*B + beta*C for 2-d arrays with compatible shapes.
func Gemm(alpha float64, a, b *Array[float64], beta float64, c *Array[float64]) {
	if a.NDim() != 2 || b.NDim() != 2 || c.NDim() != 2 {
		panic("dense: Gemm requires 2-d arrays")
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("dense: Gemm dims A=%dx%d B=%dx%d C=%dx%d", m, k, k2, n, c.Dim(0), c.Dim(1)))
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += a.At(i, p) * b.At(p, j)
			}
			c.Set(alpha*acc+beta*c.At(i, j), i, j)
		}
	}
}

// LU holds a dense LU factorization with partial pivoting: P*A = L*U with
// unit lower-triangular L and upper-triangular U packed in one matrix.
type LU struct {
	lu   *Array[float64]
	piv  []int
	n    int
	sign float64
}

// FactorLU computes the LU factorization of a square matrix. It returns an
// error if the matrix is singular to working precision.
func FactorLU(a *Array[float64]) (*LU, error) {
	if a.NDim() != 2 || a.Dim(0) != a.Dim(1) {
		panic("dense: FactorLU requires a square 2-d array")
	}
	n := a.Dim(0)
	lu := a.Clone()
	piv := make([]int, n)
	sign := 1.0
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("dense: matrix is singular at column %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				t := lu.At(k, j)
				lu.Set(lu.At(p, j), k, j)
				lu.Set(t, p, j)
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		ukk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) / ukk
			lu.Set(l, i, k)
			for j := k + 1; j < n; j++ {
				lu.Set(lu.At(i, j)-l*lu.At(k, j), i, j)
			}
		}
	}
	return &LU{lu: lu, piv: piv, n: n, sign: sign}, nil
}

// Solve solves A x = b, overwriting nothing; it returns a new solution slice.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic(fmt.Sprintf("dense: LU.Solve length %d, want %d", len(b), f.n))
	}
	x := make([]float64, f.n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit L.
	for i := 1; i < f.n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
	}
	// Back substitution with U.
	for i := f.n - 1; i >= 0; i-- {
		for j := i + 1; j < f.n; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense is a convenience that factors and solves in one call.
func SolveDense(a *Array[float64], b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// QR holds a Householder QR factorization of an m x n matrix with m >= n.
type QR struct {
	qr    *Array[float64] // Householder vectors below diagonal, R on/above
	rdiag []float64
	m, n  int
}

// FactorQR computes a Householder QR factorization.
func FactorQR(a *Array[float64]) (*QR, error) {
	if a.NDim() != 2 {
		panic("dense: FactorQR requires a 2-d array")
	}
	m, n := a.Dim(0), a.Dim(1)
	if m < n {
		return nil, fmt.Errorf("dense: FactorQR needs m >= n, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			return nil, fmt.Errorf("dense: rank-deficient matrix at column %d", k)
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(qr.At(i, k)/nrm, i, k)
		}
		qr.Set(qr.At(k, k)+1, k, k)
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(qr.At(i, j)+s*qr.At(i, k), i, j)
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag, m: m, n: n}, nil
}

// SolveLS solves the least-squares problem min ||A x - b||2 using the
// factorization; b has length m, and the returned x has length n.
func (f *QR) SolveLS(b []float64) []float64 {
	if len(b) != f.m {
		panic(fmt.Sprintf("dense: QR.SolveLS length %d, want %d", len(b), f.m))
	}
	y := make([]float64, f.m)
	copy(y, b)
	// Apply Householder reflections: y = Q^T b.
	for k := 0; k < f.n; k++ {
		var s float64
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = y[:n].
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		x[i] = y[i]
		for j := i + 1; j < f.n; j++ {
			x[i] -= f.qr.At(i, j) * x[j]
		}
		x[i] /= f.rdiag[i]
	}
	return x
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Array[float64] {
	a := Zeros[float64](n, n)
	for i := 0; i < n; i++ {
		a.Set(1, i, i)
	}
	return a
}
