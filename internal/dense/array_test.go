package dense

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZerosFullShape(t *testing.T) {
	a := Zeros[float64](2, 3)
	if a.NDim() != 2 || a.Size() != 6 || a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("shape wrong: %v", a.Shape())
	}
	b := Full[int64](7, 4)
	for i := 0; i < 4; i++ {
		if b.At(i) != 7 {
			t.Fatalf("Full content wrong at %d", i)
		}
	}
}

func TestFromSliceAliases(t *testing.T) {
	buf := []float64{1, 2, 3, 4}
	a := FromSlice(buf, 2, 2)
	buf[0] = 99
	if a.At(0, 0) != 99 {
		t.Fatal("FromSlice must alias the input")
	}
	a.Set(5, 1, 1)
	if buf[3] != 5 {
		t.Fatal("Set must write through to the buffer")
	}
}

func TestFromSliceSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestNegativeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zeros[float64](2, -1)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := Zeros[float64](3, 4, 5)
	a.Set(3.5, 1, 2, 3)
	if a.At(1, 2, 3) != 3.5 {
		t.Fatal("At/Set round trip failed")
	}
	if a.At(0, 0, 0) != 0 {
		t.Fatal("other elements disturbed")
	}
}

func TestIndexValidation(t *testing.T) {
	a := Zeros[float64](2, 3)
	for name, fn := range map[string]func(){
		"too-few":  func() { a.At(1) },
		"too-many": func() { a.At(1, 1, 1) },
		"neg":      func() { a.At(-1, 0) },
		"big":      func() { a.At(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSliceBasic(t *testing.T) {
	a := FromSlice([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 10)
	s := a.Slice(0, Range{2, 7, 1})
	if !reflect.DeepEqual(s.Flatten(), []float64{2, 3, 4, 5, 6}) {
		t.Fatalf("slice = %v", s.Flatten())
	}
	// Views alias.
	s.Set(99, 0)
	if a.At(2) != 99 {
		t.Fatal("slice must be a view")
	}
}

func TestSliceStep(t *testing.T) {
	a := Arange[float64](10)
	s := a.Slice(0, Range{1, 9, 3})
	if !reflect.DeepEqual(s.Flatten(), []float64{1, 4, 7}) {
		t.Fatalf("stepped slice = %v", s.Flatten())
	}
}

func TestSliceNegativeStep(t *testing.T) {
	a := Arange[float64](5)
	s := a.Slice(0, Range{4, -6, -1}) // full reverse: a[::-1]
	if !reflect.DeepEqual(s.Flatten(), []float64{4, 3, 2, 1, 0}) {
		t.Fatalf("reversed = %v", s.Flatten())
	}
	s2 := a.Slice(0, Range{3, 0, -2})
	if !reflect.DeepEqual(s2.Flatten(), []float64{3, 1}) {
		t.Fatalf("neg-step = %v", s2.Flatten())
	}
}

func TestSliceNegativeIndices(t *testing.T) {
	// The paper's y[1:] - y[:-1] idiom.
	a := Arange[float64](6)
	head := a.Slice(0, Range{0, -1, 1})
	tail := a.Slice(0, Range{1, 6, 1})
	if !reflect.DeepEqual(head.Flatten(), []float64{0, 1, 2, 3, 4}) {
		t.Fatalf("y[:-1] = %v", head.Flatten())
	}
	if !reflect.DeepEqual(tail.Flatten(), []float64{1, 2, 3, 4, 5}) {
		t.Fatalf("y[1:] = %v", tail.Flatten())
	}
}

func TestSliceClamping(t *testing.T) {
	a := Arange[float64](4)
	s := a.Slice(0, Range{0, 100, 1})
	if s.Size() != 4 {
		t.Fatalf("overlong slice size=%d", s.Size())
	}
	s2 := a.Slice(0, Range{3, 1, 1}) // empty
	if s2.Size() != 0 {
		t.Fatalf("inverted slice size=%d", s2.Size())
	}
}

func TestSliceZeroStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Arange[float64](4).Slice(0, Range{0, 4, 0})
}

func TestSliceND2D(t *testing.T) {
	a := FromSlice([]float64{
		0, 1, 2, 3,
		4, 5, 6, 7,
		8, 9, 10, 11,
	}, 3, 4)
	s := a.SliceND([]Range{{1, 3, 1}, {0, 4, 2}})
	want := []float64{4, 6, 8, 10}
	if !reflect.DeepEqual(s.Flatten(), want) {
		t.Fatalf("2d slice = %v want %v", s.Flatten(), want)
	}
	if s.IsContiguous() {
		t.Fatal("strided 2d slice should be non-contiguous")
	}
}

func TestRowCol(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if !reflect.DeepEqual(a.Row(1).Flatten(), []float64{4, 5, 6}) {
		t.Fatalf("row = %v", a.Row(1).Flatten())
	}
	if !reflect.DeepEqual(a.Col(2).Flatten(), []float64{3, 6}) {
		t.Fatalf("col = %v", a.Col(2).Flatten())
	}
	a.Row(0).Set(9, 1)
	if a.At(0, 1) != 9 {
		t.Fatal("row view must alias")
	}
}

func TestRowColValidation(t *testing.T) {
	a := Zeros[float64](2, 3)
	v := Zeros[float64](4)
	for name, fn := range map[string]func(){
		"row-oob": func() { a.Row(5) },
		"col-oob": func() { a.Col(-1) },
		"row-1d":  func() { v.Row(0) },
		"col-1d":  func() { v.Col(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	tr := a.Transpose()
	if tr.Dim(0) != 3 || tr.Dim(1) != 2 {
		t.Fatalf("transpose shape %v", tr.Shape())
	}
	if tr.At(2, 1) != a.At(1, 2) {
		t.Fatal("transpose content wrong")
	}
	tr.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Fatal("transpose must be a view")
	}
}

func TestReshape(t *testing.T) {
	a := Arange[float64](12)
	m := a.Reshape(3, 4)
	if m.At(2, 3) != 11 {
		t.Fatal("reshape content")
	}
	back := m.Reshape(12)
	if back.At(5) != 5 {
		t.Fatal("reshape back")
	}
}

func TestReshapeValidation(t *testing.T) {
	a := Arange[float64](12)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("size mismatch should panic")
			}
		}()
		a.Reshape(5, 3)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-contiguous reshape should panic")
			}
		}()
		a.Slice(0, Range{0, 12, 2}).Reshape(3, 2)
	}()
}

func TestContiguity(t *testing.T) {
	a := Zeros[float64](3, 4)
	if !a.IsContiguous() {
		t.Fatal("fresh array contiguous")
	}
	if a.Slice(0, Range{0, 3, 2}).IsContiguous() {
		t.Fatal("strided slice not contiguous")
	}
	// Slicing whole rows stays contiguous.
	if !a.Slice(0, Range{1, 3, 1}).IsContiguous() {
		t.Fatal("row-block slice contiguous")
	}
	if a.Transpose().IsContiguous() {
		t.Fatal("transpose not contiguous for 3x4")
	}
}

func TestRawFlattenClone(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 4)
	if !reflect.DeepEqual(a.Raw(), []float64{1, 2, 3, 4}) {
		t.Fatal("Raw")
	}
	s := a.Slice(0, Range{0, 4, 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Raw on view should panic")
			}
		}()
		s.Raw()
	}()
	if !reflect.DeepEqual(s.Flatten(), []float64{1, 3}) {
		t.Fatal("Flatten")
	}
	c := s.Clone()
	c.Set(99, 0)
	if a.At(0) == 99 {
		t.Fatal("Clone must not alias")
	}
}

func TestFillAndCopyFrom(t *testing.T) {
	a := Zeros[float64](2, 3)
	a.Fill(5)
	if Sum(a) != 30 {
		t.Fatal("Fill")
	}
	// Fill through a non-contiguous view touches only the view.
	b := Arange[float64](10)
	b.Slice(0, Range{0, 10, 2}).Fill(0)
	if !reflect.DeepEqual(b.Flatten(), []float64{0, 1, 0, 3, 0, 5, 0, 7, 0, 9}) {
		t.Fatalf("strided fill = %v", b.Flatten())
	}
	dst := Zeros[float64](5)
	dst.CopyFrom(b.Slice(0, Range{0, 10, 2}))
	if !reflect.DeepEqual(dst.Flatten(), []float64{0, 0, 0, 0, 0}) {
		t.Fatalf("CopyFrom strided = %v", dst.Flatten())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("shape mismatch CopyFrom should panic")
			}
		}()
		dst.CopyFrom(Zeros[float64](4))
	}()
}

func TestEachIndexed(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	var got [][]int
	a.EachIndexed(func(idx []int, v float64) {
		cp := make([]int, len(idx))
		copy(cp, idx)
		got = append(got, cp)
	})
	want := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v", got)
	}
}

func TestEqual(t *testing.T) {
	a := Arange[int64](6).Reshape(2, 3)
	b := Arange[int64](6).Reshape(2, 3)
	if !a.Equal(b) {
		t.Fatal("equal arrays")
	}
	b.Set(9, 0, 0)
	if a.Equal(b) {
		t.Fatal("unequal content")
	}
	if a.Equal(Arange[int64](6)) {
		t.Fatal("unequal shape")
	}
}

func TestLinspace(t *testing.T) {
	a := Linspace[float64](1, 2, 5)
	want := []float64{1, 1.25, 1.5, 1.75, 2}
	if !reflect.DeepEqual(a.Flatten(), want) {
		t.Fatalf("linspace = %v", a.Flatten())
	}
	if Linspace[float64](0, 1, 0).Size() != 0 {
		t.Fatal("empty linspace")
	}
	one := Linspace[float64](3, 9, 1)
	if one.At(0) != 3 {
		t.Fatal("single-point linspace is lo")
	}
}

func TestArangeTypes(t *testing.T) {
	if Arange[int64](4).At(3) != 3 {
		t.Fatal("int64")
	}
	if Arange[float32](4).At(2) != 2 {
		t.Fatal("float32")
	}
	if Arange[complex128](3).At(2) != 2+0i {
		t.Fatal("complex128")
	}
	if Arange[complex64](3).At(1) != 1 {
		t.Fatal("complex64")
	}
	if Arange[int32](3).At(2) != 2 {
		t.Fatal("int32")
	}
}

func TestString(t *testing.T) {
	small := Arange[int64](3)
	if small.String() == "" {
		t.Fatal("small String")
	}
	big := Zeros[float64](100)
	if big.String() == "" {
		t.Fatal("big String")
	}
}

// Property: slicing then flattening matches direct index arithmetic.
func TestSlicePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a := Arange[float64](n)
		start := rng.Intn(n)
		stop := rng.Intn(n + 1)
		step := 1 + rng.Intn(4)
		s := a.Slice(0, Range{start, stop, step})
		var want []float64
		for i := start; i < stop; i += step {
			want = append(want, float64(i))
		}
		got := s.Flatten()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Transpose twice is the identity view.
func TestTransposeInvolution(t *testing.T) {
	a := Arange[float64](24).Reshape(2, 3, 4)
	tt := a.Transpose().Transpose()
	if !a.Equal(tt) {
		t.Fatal("transpose involution failed")
	}
}

func TestZeroSizedArrays(t *testing.T) {
	a := Zeros[float64](0)
	if a.Size() != 0 || len(a.Flatten()) != 0 {
		t.Fatal("empty array")
	}
	a.Each(func(float64) { t.Fatal("Each on empty must not fire") })
	b := Zeros[float64](3, 0, 2)
	if b.Size() != 0 {
		t.Fatal("zero-dim product")
	}
}
