package dense

// Superinstruction kernel bodies: fused pair/triple loops under the fusion
// register VM's peephole pass (mul+add -> fma, scale+add -> axpy, op+sum
// tails). Same contract as vecops.go — equal-length operands re-sliced to
// len(dst) for bounds-check elimination, dst may alias any operand.
//
// Every product is wrapped in an explicit float64 conversion: the Go spec
// lets the compiler contract a*b+c into a hardware fused-multiply-add
// (single rounding), but an explicit conversion forces the product to round
// to float64 first. That keeps each fused kernel bit-for-bit identical to
// the two-instruction sequence it replaces, which is what the VM's
// bitwise-oracle property tests demand.

// VecFMA sets dst[i] = float64(a[i]*b[i]) + c[i].
func VecFMA(dst, a, b, c []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	c = c[:len(dst)]
	for i := range dst {
		dst[i] = float64(a[i]*b[i]) + c[i]
	}
}

// VecFMAR sets dst[i] = c[i] + float64(a[i]*b[i]) — the mirrored add order,
// kept distinct so NaN payload propagation matches the unfused sequence.
func VecFMAR(dst, a, b, c []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	c = c[:len(dst)]
	for i := range dst {
		dst[i] = c[i] + float64(a[i]*b[i])
	}
}

// VecFMS sets dst[i] = float64(a[i]*b[i]) - c[i].
func VecFMS(dst, a, b, c []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	c = c[:len(dst)]
	for i := range dst {
		dst[i] = float64(a[i]*b[i]) - c[i]
	}
}

// VecFMSR sets dst[i] = c[i] - float64(a[i]*b[i]).
func VecFMSR(dst, a, b, c []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	c = c[:len(dst)]
	for i := range dst {
		dst[i] = c[i] - float64(a[i]*b[i])
	}
}

// VecFMA2 sets dst[i] = float64((float64(a[i]*b[i])+c[i])*d[i]) + e[i] —
// two chained fma steps (the Horner recurrence t = t*y + x applied twice)
// in one pass, with every product explicitly rounded so the pair of
// VecFMA calls it replaces is reproduced bit for bit.
func VecFMA2(dst, a, b, c, d, e []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	c = c[:len(dst)]
	d = d[:len(dst)]
	e = e[:len(dst)]
	for i := range dst {
		t := float64(a[i]*b[i]) + c[i]
		dst[i] = float64(t*d[i]) + e[i]
	}
}

// VecAXPY sets dst[i] = float64(a[i]*s) + b[i]: the scale+add
// superinstruction, with the scalar held in a register instead of a
// broadcast constant block.
func VecAXPY(dst, a []float64, s float64, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] = float64(a[i]*s) + b[i]
	}
}

// VecAXPYR sets dst[i] = b[i] + float64(a[i]*s).
func VecAXPYR(dst, a []float64, s float64, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] = b[i] + float64(a[i]*s)
	}
}

// Fused op+sum tails: the final instruction of a SumEval program folded
// straight into the running left fold, so the result block is never
// materialized. Each body computes exactly op(i) — same conversions, same
// operand order as the elementwise kernel — then acc += op(i), matching
// VecAccum over the kernel's output bit for bit.

// VecAccumAdd returns acc after acc += a[i] + b[i] over the span.
func VecAccumAdd(acc float64, a, b []float64) float64 {
	b = b[:len(a)]
	for i := range a {
		acc += a[i] + b[i]
	}
	return acc
}

// VecAccumSub returns acc after acc += a[i] - b[i] over the span.
func VecAccumSub(acc float64, a, b []float64) float64 {
	b = b[:len(a)]
	for i := range a {
		acc += a[i] - b[i]
	}
	return acc
}

// VecAccumMul returns acc after acc += float64(a[i] * b[i]) over the span.
func VecAccumMul(acc float64, a, b []float64) float64 {
	b = b[:len(a)]
	for i := range a {
		acc += float64(a[i] * b[i])
	}
	return acc
}

// VecAccumSquare returns acc after acc += float64(a[i] * a[i]) over the
// span.
func VecAccumSquare(acc float64, a []float64) float64 {
	for i := range a {
		acc += float64(a[i] * a[i])
	}
	return acc
}

// VecAccumFMA returns acc after acc += float64(a[i]*b[i]) + c[i].
func VecAccumFMA(acc float64, a, b, c []float64) float64 {
	b = b[:len(a)]
	c = c[:len(a)]
	for i := range a {
		acc += float64(a[i]*b[i]) + c[i]
	}
	return acc
}

// VecAccumFMAR returns acc after acc += c[i] + float64(a[i]*b[i]).
func VecAccumFMAR(acc float64, a, b, c []float64) float64 {
	b = b[:len(a)]
	c = c[:len(a)]
	for i := range a {
		acc += c[i] + float64(a[i]*b[i])
	}
	return acc
}

// VecAccumFMS returns acc after acc += float64(a[i]*b[i]) - c[i].
func VecAccumFMS(acc float64, a, b, c []float64) float64 {
	b = b[:len(a)]
	c = c[:len(a)]
	for i := range a {
		acc += float64(a[i]*b[i]) - c[i]
	}
	return acc
}

// VecAccumFMSR returns acc after acc += c[i] - float64(a[i]*b[i]).
func VecAccumFMSR(acc float64, a, b, c []float64) float64 {
	b = b[:len(a)]
	c = c[:len(a)]
	for i := range a {
		acc += c[i] - float64(a[i]*b[i])
	}
	return acc
}

// VecAccumFMA2 returns acc after folding the VecFMA2 body.
func VecAccumFMA2(acc float64, a, b, c, d, e []float64) float64 {
	b = b[:len(a)]
	c = c[:len(a)]
	d = d[:len(a)]
	e = e[:len(a)]
	for i := range a {
		t := float64(a[i]*b[i]) + c[i]
		acc += float64(t*d[i]) + e[i]
	}
	return acc
}

// VecAccumAXPY returns acc after acc += float64(a[i]*s) + b[i].
func VecAccumAXPY(acc float64, a []float64, s float64, b []float64) float64 {
	b = b[:len(a)]
	for i := range a {
		acc += float64(a[i]*s) + b[i]
	}
	return acc
}

// VecAccumAXPYR returns acc after acc += b[i] + float64(a[i]*s).
func VecAccumAXPYR(acc float64, a []float64, s float64, b []float64) float64 {
	b = b[:len(a)]
	for i := range a {
		acc += b[i] + float64(a[i]*s)
	}
	return acc
}
