package dense

import (
	"fmt"
	"math"
)

// Unary applies f element-wise to src and returns a new contiguous array of
// the same shape. This is the serial core of ODIN's "trivially parallelized"
// unary ufuncs (§III.D).
func Unary[T, U Elem](src *Array[T], f func(T) U) *Array[U] {
	out := Zeros[U](src.shape...)
	raw := out.Raw()
	i := 0
	src.Each(func(v T) {
		raw[i] = f(v)
		i++
	})
	return out
}

// UnaryInto applies f element-wise from src into dst (shapes must match).
func UnaryInto[T, U Elem](dst *Array[U], src *Array[T], f func(T) U) {
	if !shapeEq(dst.shape, src.shape) {
		panic(fmt.Sprintf("dense: UnaryInto shape mismatch %v vs %v", dst.shape, src.shape))
	}
	if dst.IsContiguous() && src.IsContiguous() {
		d, s := dst.Raw(), src.Raw()
		for i := range s {
			d[i] = f(s[i])
		}
		return
	}
	it := newIterator(src.shape)
	for it.next() {
		dst.data[dst.offsetOf(it.idx)] = f(src.data[src.offsetOf(it.idx)])
	}
}

// Binary applies f element-wise to (a, b) and returns a new array. Shapes
// must match exactly; distributed broadcasting is handled a level up.
func Binary[T Elem](a, b *Array[T], f func(T, T) T) *Array[T] {
	if !shapeEq(a.shape, b.shape) {
		panic(fmt.Sprintf("dense: Binary shape mismatch %v vs %v", a.shape, b.shape))
	}
	out := Zeros[T](a.shape...)
	BinaryInto(out, a, b, f)
	return out
}

// BinaryInto applies f element-wise into dst.
func BinaryInto[T Elem](dst, a, b *Array[T], f func(T, T) T) {
	if !shapeEq(a.shape, b.shape) || !shapeEq(dst.shape, a.shape) {
		panic(fmt.Sprintf("dense: BinaryInto shape mismatch %v, %v, %v", dst.shape, a.shape, b.shape))
	}
	if dst.IsContiguous() && a.IsContiguous() && b.IsContiguous() {
		d, x, y := dst.Raw(), a.Raw(), b.Raw()
		for i := range x {
			d[i] = f(x[i], y[i])
		}
		return
	}
	it := newIterator(a.shape)
	for it.next() {
		dst.data[dst.offsetOf(it.idx)] = f(a.data[a.offsetOf(it.idx)], b.data[b.offsetOf(it.idx)])
	}
}

// Scalar applies f(v, s) element-wise with a fixed scalar operand.
func Scalar[T Elem](a *Array[T], s T, f func(T, T) T) *Array[T] {
	return Unary(a, func(v T) T { return f(v, s) })
}

// Sum returns the sum of all elements.
func Sum[T Elem](a *Array[T]) T {
	var acc T
	a.Each(func(v T) { acc += v })
	return acc
}

// Prod returns the product of all elements (1 for an empty array).
func Prod[T Elem](a *Array[T]) T {
	acc := fromInt[T](1)
	a.Each(func(v T) { acc *= v })
	return acc
}

// Min returns the minimum element; it panics on an empty array.
func Min[T Real](a *Array[T]) T {
	if a.Size() == 0 {
		panic("dense: Min of empty array")
	}
	first := true
	var best T
	a.Each(func(v T) {
		if first || v < best {
			best = v
			first = false
		}
	})
	return best
}

// Max returns the maximum element; it panics on an empty array.
func Max[T Real](a *Array[T]) T {
	if a.Size() == 0 {
		panic("dense: Max of empty array")
	}
	first := true
	var best T
	a.Each(func(v T) {
		if first || v > best {
			best = v
			first = false
		}
	})
	return best
}

// ArgMin returns the row-major flat position of the minimum element.
func ArgMin[T Real](a *Array[T]) int {
	if a.Size() == 0 {
		panic("dense: ArgMin of empty array")
	}
	best, bi, i := a.Flatten()[0], 0, 0
	a.Each(func(v T) {
		if v < best {
			best, bi = v, i
		}
		i++
	})
	return bi
}

// ArgMax returns the row-major flat position of the maximum element.
func ArgMax[T Real](a *Array[T]) int {
	if a.Size() == 0 {
		panic("dense: ArgMax of empty array")
	}
	best, bi, i := a.Flatten()[0], 0, 0
	a.Each(func(v T) {
		if v > best {
			best, bi = v, i
		}
		i++
	})
	return bi
}

// Mean returns the arithmetic mean of a floating-point array.
func Mean[T Float](a *Array[T]) T {
	if a.Size() == 0 {
		panic("dense: Mean of empty array")
	}
	return Sum(a) / T(a.Size())
}

// CumSum returns the running inclusive prefix sum in row-major order as a
// 1-d array.
func CumSum[T Elem](a *Array[T]) *Array[T] {
	out := make([]T, a.Size())
	var acc T
	i := 0
	a.Each(func(v T) {
		acc += v
		out[i] = acc
		i++
	})
	return FromSlice(out, len(out))
}

// ReduceAxis folds the elements along one axis with f, producing an array
// whose shape drops that axis (NumPy's reduce with axis=). The init value
// seeds each output element.
func ReduceAxis[T Elem](a *Array[T], axis int, init T, f func(acc, v T) T) *Array[T] {
	if axis < 0 || axis >= a.NDim() {
		panic(fmt.Sprintf("dense: ReduceAxis axis %d out of range for shape %v", axis, a.shape))
	}
	outShape := make([]int, 0, a.NDim()-1)
	for d, s := range a.shape {
		if d != axis {
			outShape = append(outShape, s)
		}
	}
	out := Full(init, outShape...)
	oidx := make([]int, len(outShape))
	a.EachIndexed(func(idx []int, v T) {
		k := 0
		for d, i := range idx {
			if d != axis {
				oidx[k] = i
				k++
			}
		}
		out.Set(f(out.At(oidx...), v), oidx...)
	})
	return out
}

// SumAxis sums along one axis.
func SumAxis[T Elem](a *Array[T], axis int) *Array[T] {
	var zero T
	return ReduceAxis(a, axis, zero, func(acc, v T) T { return acc + v })
}

// Dot returns the inner product of two 1-d arrays of equal length.
func Dot[T Elem](a, b *Array[T]) T {
	if a.NDim() != 1 || b.NDim() != 1 || a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("dense: Dot needs equal-length vectors, got %v and %v", a.shape, b.shape))
	}
	var acc T
	n := a.Dim(0)
	for i := 0; i < n; i++ {
		acc += a.data[a.offset+i*a.strides[0]] * b.data[b.offset+i*b.strides[0]]
	}
	return acc
}

// Norm2 returns the Euclidean norm of a float vector or matrix (Frobenius).
func Norm2[T Float](a *Array[T]) float64 {
	var acc float64
	a.Each(func(v T) { acc += float64(v) * float64(v) })
	return math.Sqrt(acc)
}

// Norm1 returns the sum of absolute values.
func Norm1[T Float](a *Array[T]) float64 {
	var acc float64
	a.Each(func(v T) { acc += math.Abs(float64(v)) })
	return acc
}

// NormInf returns the maximum absolute value (0 for empty arrays).
func NormInf[T Float](a *Array[T]) float64 {
	var acc float64
	a.Each(func(v T) {
		av := math.Abs(float64(v))
		if av > acc {
			acc = av
		}
	})
	return acc
}

// Where returns the row-major flat positions at which pred holds.
func Where[T Elem](a *Array[T], pred func(T) bool) []int {
	var out []int
	i := 0
	a.Each(func(v T) {
		if pred(v) {
			out = append(out, i)
		}
		i++
	})
	return out
}

// Count returns the number of elements for which pred holds.
func Count[T Elem](a *Array[T], pred func(T) bool) int {
	n := 0
	a.Each(func(v T) {
		if pred(v) {
			n++
		}
	})
	return n
}

// AllClose reports whether two float arrays agree element-wise within
// absolute tolerance atol plus relative tolerance rtol (NumPy semantics).
func AllClose[T Float](a, b *Array[T], rtol, atol float64) bool {
	if !shapeEq(a.shape, b.shape) {
		return false
	}
	av, bv := a.Flatten(), b.Flatten()
	for i := range av {
		x, y := float64(av[i]), float64(bv[i])
		if math.IsNaN(x) || math.IsNaN(y) {
			return false
		}
		if math.Abs(x-y) > atol+rtol*math.Abs(y) {
			return false
		}
	}
	return true
}
