package dense

import (
	"fmt"
	"math"

	"odinhpc/internal/exec"
)

// The element-wise loops and whole-array reductions in this file execute
// through the process-wide exec engine (internal/exec): ODIN's claim that
// ufuncs "parallelize trivially" (§III.D) is realized once, there, instead
// of per kernel. With the default one-worker engine every function below is
// exactly the serial loop it replaced; with more workers, element-wise
// results are still bitwise identical and tree reductions (Sum, Dot,
// Norm2, ...) are bitwise reproducible across pool sizes >= 2, differing
// from the serial fold only by floating-point reassociation.

// Unary applies f element-wise to src and returns a new contiguous array of
// the same shape.
func Unary[T, U Elem](src *Array[T], f func(T) U) *Array[U] {
	out := Zeros[U](src.shape...)
	UnaryInto(out, src, f)
	return out
}

// UnaryInto applies f element-wise from src into dst (shapes must match).
// dst may be src itself (in-place), but must not partially overlap it
// through shifted views: elements are processed in spans that may run
// concurrently.
func UnaryInto[T, U Elem](dst *Array[U], src *Array[T], f func(T) U) {
	if !shapeEq(dst.shape, src.shape) {
		panic(fmt.Sprintf("dense: UnaryInto shape mismatch %v vs %v", dst.shape, src.shape))
	}
	n := src.Size()
	if dst.IsContiguous() && src.IsContiguous() {
		d, s := dst.Raw(), src.Raw()
		exec.Default().ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				d[i] = f(s[i])
			}
		})
		return
	}
	exec.Default().ParallelFor(n, func(lo, hi int) {
		sw := newOffsets(src.shape, src.strides, src.offset, lo)
		dw := newOffsets(dst.shape, dst.strides, dst.offset, lo)
		for i := lo; i < hi; i++ {
			dst.data[dw.off] = f(src.data[sw.off])
			sw.advance()
			dw.advance()
		}
	})
}

// Binary applies f element-wise to (a, b) and returns a new array. Shapes
// must match exactly; distributed broadcasting is handled a level up.
func Binary[T Elem](a, b *Array[T], f func(T, T) T) *Array[T] {
	if !shapeEq(a.shape, b.shape) {
		panic(fmt.Sprintf("dense: Binary shape mismatch %v vs %v", a.shape, b.shape))
	}
	out := Zeros[T](a.shape...)
	BinaryInto(out, a, b, f)
	return out
}

// BinaryInto applies f element-wise into dst. dst may be a or b (in-place),
// but must not partially overlap them through shifted views.
func BinaryInto[T Elem](dst, a, b *Array[T], f func(T, T) T) {
	if !shapeEq(a.shape, b.shape) || !shapeEq(dst.shape, a.shape) {
		panic(fmt.Sprintf("dense: BinaryInto shape mismatch %v, %v, %v", dst.shape, a.shape, b.shape))
	}
	n := a.Size()
	if dst.IsContiguous() && a.IsContiguous() && b.IsContiguous() {
		d, x, y := dst.Raw(), a.Raw(), b.Raw()
		exec.Default().ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				d[i] = f(x[i], y[i])
			}
		})
		return
	}
	exec.Default().ParallelFor(n, func(lo, hi int) {
		aw := newOffsets(a.shape, a.strides, a.offset, lo)
		bw := newOffsets(b.shape, b.strides, b.offset, lo)
		dw := newOffsets(dst.shape, dst.strides, dst.offset, lo)
		for i := lo; i < hi; i++ {
			dst.data[dw.off] = f(a.data[aw.off], b.data[bw.off])
			aw.advance()
			bw.advance()
			dw.advance()
		}
	})
}

// Scalar applies f(v, s) element-wise with a fixed scalar operand.
func Scalar[T Elem](a *Array[T], s T, f func(T, T) T) *Array[T] {
	return Unary(a, func(v T) T { return f(v, s) })
}

// Sum returns the sum of all elements.
func Sum[T Elem](a *Array[T]) T {
	return exec.ParallelReduce(exec.Default(), a.Size(), func(lo, hi int) T {
		var acc T
		a.foldRange(lo, hi, func(off int) { acc += a.data[off] })
		return acc
	}, func(x, y T) T { return x + y })
}

// Prod returns the product of all elements (1 for an empty array).
func Prod[T Elem](a *Array[T]) T {
	acc := fromInt[T](1)
	a.Each(func(v T) { acc *= v })
	return acc
}

// Min returns the minimum element; it panics on an empty array.
func Min[T Real](a *Array[T]) T {
	if a.Size() == 0 {
		panic("dense: Min of empty array")
	}
	return exec.ParallelReduce(exec.Default(), a.Size(), func(lo, hi int) T {
		first := true
		var best T
		a.foldRange(lo, hi, func(off int) {
			if v := a.data[off]; first || v < best {
				best = v
				first = false
			}
		})
		return best
	}, func(x, y T) T {
		if y < x {
			return y
		}
		return x
	})
}

// Max returns the maximum element; it panics on an empty array.
func Max[T Real](a *Array[T]) T {
	if a.Size() == 0 {
		panic("dense: Max of empty array")
	}
	return exec.ParallelReduce(exec.Default(), a.Size(), func(lo, hi int) T {
		first := true
		var best T
		a.foldRange(lo, hi, func(off int) {
			if v := a.data[off]; first || v > best {
				best = v
				first = false
			}
		})
		return best
	}, func(x, y T) T {
		if y > x {
			return y
		}
		return x
	})
}

// ArgMin returns the row-major flat position of the minimum element.
func ArgMin[T Real](a *Array[T]) int {
	if a.Size() == 0 {
		panic("dense: ArgMin of empty array")
	}
	first := true
	var best T
	bi, i := 0, 0
	a.foldRange(0, a.Size(), func(off int) {
		if v := a.data[off]; first || v < best {
			best, bi = v, i
			first = false
		}
		i++
	})
	return bi
}

// ArgMax returns the row-major flat position of the maximum element.
func ArgMax[T Real](a *Array[T]) int {
	if a.Size() == 0 {
		panic("dense: ArgMax of empty array")
	}
	first := true
	var best T
	bi, i := 0, 0
	a.foldRange(0, a.Size(), func(off int) {
		if v := a.data[off]; first || v > best {
			best, bi = v, i
			first = false
		}
		i++
	})
	return bi
}

// Mean returns the arithmetic mean of a floating-point array.
func Mean[T Float](a *Array[T]) T {
	if a.Size() == 0 {
		panic("dense: Mean of empty array")
	}
	return Sum(a) / T(a.Size())
}

// CumSum returns the running inclusive prefix sum in row-major order as a
// 1-d array.
func CumSum[T Elem](a *Array[T]) *Array[T] {
	out := make([]T, a.Size())
	var acc T
	i := 0
	a.Each(func(v T) {
		acc += v
		out[i] = acc
		i++
	})
	return FromSlice(out, len(out))
}

// ReduceAxis folds the elements along one axis with f, producing an array
// whose shape drops that axis (NumPy's reduce with axis=). The init value
// seeds each output element.
func ReduceAxis[T Elem](a *Array[T], axis int, init T, f func(acc, v T) T) *Array[T] {
	if axis < 0 || axis >= a.NDim() {
		panic(fmt.Sprintf("dense: ReduceAxis axis %d out of range for shape %v", axis, a.shape))
	}
	outShape := make([]int, 0, a.NDim()-1)
	for d, s := range a.shape {
		if d != axis {
			outShape = append(outShape, s)
		}
	}
	out := Full(init, outShape...)
	oidx := make([]int, len(outShape))
	a.EachIndexed(func(idx []int, v T) {
		k := 0
		for d, i := range idx {
			if d != axis {
				oidx[k] = i
				k++
			}
		}
		out.Set(f(out.At(oidx...), v), oidx...)
	})
	return out
}

// SumAxis sums along one axis.
func SumAxis[T Elem](a *Array[T], axis int) *Array[T] {
	var zero T
	return ReduceAxis(a, axis, zero, func(acc, v T) T { return acc + v })
}

// Dot returns the inner product of two 1-d arrays of equal length. Both
// operands may be arbitrary strided views.
func Dot[T Elem](a, b *Array[T]) T {
	if a.NDim() != 1 || b.NDim() != 1 || a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("dense: Dot needs equal-length vectors, got %v and %v", a.shape, b.shape))
	}
	ad, bd := a.data, b.data
	ao, bo := a.offset, b.offset
	as, bs := a.strides[0], b.strides[0]
	return exec.ParallelReduce(exec.Default(), a.Dim(0), func(lo, hi int) T {
		var acc T
		for i := lo; i < hi; i++ {
			acc += ad[ao+i*as] * bd[bo+i*bs]
		}
		return acc
	}, func(x, y T) T { return x + y })
}

// Norm2 returns the Euclidean norm of a float vector or matrix (Frobenius).
func Norm2[T Float](a *Array[T]) float64 {
	ss := exec.ParallelReduce(exec.Default(), a.Size(), func(lo, hi int) float64 {
		var acc float64
		a.foldRange(lo, hi, func(off int) {
			v := float64(a.data[off])
			acc += v * v
		})
		return acc
	}, func(x, y float64) float64 { return x + y })
	return math.Sqrt(ss)
}

// Norm1 returns the sum of absolute values.
func Norm1[T Float](a *Array[T]) float64 {
	return exec.ParallelReduce(exec.Default(), a.Size(), func(lo, hi int) float64 {
		var acc float64
		a.foldRange(lo, hi, func(off int) { acc += math.Abs(float64(a.data[off])) })
		return acc
	}, func(x, y float64) float64 { return x + y })
}

// NormInf returns the maximum absolute value (0 for empty arrays).
func NormInf[T Float](a *Array[T]) float64 {
	return exec.ParallelReduce(exec.Default(), a.Size(), func(lo, hi int) float64 {
		var acc float64
		a.foldRange(lo, hi, func(off int) {
			if av := math.Abs(float64(a.data[off])); av > acc {
				acc = av
			}
		})
		return acc
	}, func(x, y float64) float64 { return math.Max(x, y) })
}

// Where returns the row-major flat positions at which pred holds.
func Where[T Elem](a *Array[T], pred func(T) bool) []int {
	var out []int
	i := 0
	a.Each(func(v T) {
		if pred(v) {
			out = append(out, i)
		}
		i++
	})
	return out
}

// Count returns the number of elements for which pred holds.
func Count[T Elem](a *Array[T], pred func(T) bool) int {
	return exec.ParallelReduce(exec.Default(), a.Size(), func(lo, hi int) int {
		n := 0
		a.foldRange(lo, hi, func(off int) {
			if pred(a.data[off]) {
				n++
			}
		})
		return n
	}, func(x, y int) int { return x + y })
}

// AllClose reports whether two float arrays agree element-wise within
// absolute tolerance atol plus relative tolerance rtol (NumPy semantics).
func AllClose[T Float](a, b *Array[T], rtol, atol float64) bool {
	if !shapeEq(a.shape, b.shape) {
		return false
	}
	av, bv := a.Flatten(), b.Flatten()
	for i := range av {
		x, y := float64(av[i]), float64(bv[i])
		if math.IsNaN(x) || math.IsNaN(y) {
			return false
		}
		if math.Abs(x-y) > atol+rtol*math.Abs(y) {
			return false
		}
	}
	return true
}
