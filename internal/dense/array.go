// Package dense implements serial n-dimensional strided arrays with
// NumPy-like semantics: cheap views for slicing and transposition, generic
// element types (the Tpetra "Scalar template" analog), element-wise ufunc
// loops, reductions, and the dense BLAS-style kernels the distributed layers
// build on. It is the per-rank building block for ODIN's DistArray.
package dense

import (
	"fmt"
	"strings"
)

// Elem constrains the element types an Array can store — the analog of the
// Scalar template parameter of Tpetra::Vector discussed in §II.C of the
// paper (real, complex, or integer data).
type Elem interface {
	~float32 | ~float64 | ~int32 | ~int64 | ~complex64 | ~complex128
}

// Real constrains Elem to ordered (non-complex) element types.
type Real interface {
	~float32 | ~float64 | ~int32 | ~int64
}

// Float constrains Elem to floating-point element types.
type Float interface {
	~float32 | ~float64
}

// Array is an n-dimensional strided view over a flat buffer. Multiple arrays
// may share one buffer (views); use Clone for an independent copy. The zero
// value is not useful; construct arrays with Zeros, Full, FromSlice, or as
// views of existing arrays.
type Array[T Elem] struct {
	data    []T
	shape   []int
	strides []int // in elements, may be negative for reversed views
	offset  int
}

// Zeros returns a new contiguous array of the given shape filled with zeros.
func Zeros[T Elem](shape ...int) *Array[T] {
	n := checkShape(shape)
	return fromBuffer(make([]T, n), shape)
}

// Full returns a new contiguous array of the given shape filled with v.
func Full[T Elem](v T, shape ...int) *Array[T] {
	a := Zeros[T](shape...)
	a.Fill(v)
	return a
}

// FromSlice wraps data (without copying) as an array of the given shape. The
// product of the shape must equal len(data).
func FromSlice[T Elem](data []T, shape ...int) *Array[T] {
	n := checkShape(shape)
	if n != len(data) {
		panic(fmt.Sprintf("dense: shape %v needs %d elements, slice has %d", shape, n, len(data)))
	}
	return fromBuffer(data, shape)
}

func fromBuffer[T Elem](data []T, shape []int) *Array[T] {
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &Array[T]{data: data, shape: sh, strides: contiguousStrides(sh)}
}

func contiguousStrides(shape []int) []int {
	st := make([]int, len(shape))
	acc := 1
	for d := len(shape) - 1; d >= 0; d-- {
		st[d] = acc
		acc *= shape[d]
	}
	return st
}

func checkShape(shape []int) int {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("dense: negative dimension in shape %v", shape))
		}
		n *= s
	}
	return n
}

// NDim returns the number of dimensions.
func (a *Array[T]) NDim() int { return len(a.shape) }

// Shape returns a copy of the array's shape.
func (a *Array[T]) Shape() []int {
	out := make([]int, len(a.shape))
	copy(out, a.shape)
	return out
}

// Dim returns the extent along dimension d.
func (a *Array[T]) Dim(d int) int { return a.shape[d] }

// Size returns the total number of elements.
func (a *Array[T]) Size() int {
	n := 1
	for _, s := range a.shape {
		n *= s
	}
	return n
}

// Strides returns a copy of the element strides.
func (a *Array[T]) Strides() []int {
	out := make([]int, len(a.strides))
	copy(out, a.strides)
	return out
}

// At returns the element at the given multi-index.
func (a *Array[T]) At(idx ...int) T {
	return a.data[a.flatIndex(idx)]
}

// Set stores v at the given multi-index.
func (a *Array[T]) Set(v T, idx ...int) {
	a.data[a.flatIndex(idx)] = v
}

func (a *Array[T]) flatIndex(idx []int) int {
	if len(idx) != len(a.shape) {
		panic(fmt.Sprintf("dense: index %v has %d dims, array has %d", idx, len(idx), len(a.shape)))
	}
	off := a.offset
	for d, i := range idx {
		if i < 0 || i >= a.shape[d] {
			panic(fmt.Sprintf("dense: index %d out of range [0,%d) in dim %d", i, a.shape[d], d))
		}
		off += i * a.strides[d]
	}
	return off
}

// IsContiguous reports whether the view is a dense row-major block (so Raw
// exposes exactly the elements in order).
func (a *Array[T]) IsContiguous() bool {
	acc := 1
	for d := len(a.shape) - 1; d >= 0; d-- {
		if a.shape[d] == 0 {
			return true
		}
		if a.shape[d] != 1 && a.strides[d] != acc {
			return false
		}
		acc *= a.shape[d]
	}
	return true
}

// Raw returns the underlying buffer segment for a contiguous array, aliasing
// the array's storage. It panics for non-contiguous views; use Flatten there.
func (a *Array[T]) Raw() []T {
	if !a.IsContiguous() {
		panic("dense: Raw on non-contiguous view; use Flatten")
	}
	return a.data[a.offset : a.offset+a.Size()]
}

// Flatten returns a freshly allocated row-major copy of the elements.
func (a *Array[T]) Flatten() []T {
	out := make([]T, 0, a.Size())
	a.Each(func(v T) { out = append(out, v) })
	return out
}

// Clone returns an independent contiguous copy of the array.
func (a *Array[T]) Clone() *Array[T] {
	return FromSlice(a.Flatten(), a.shape...)
}

// Fill sets every element of the view to v.
func (a *Array[T]) Fill(v T) {
	if a.IsContiguous() {
		raw := a.Raw()
		for i := range raw {
			raw[i] = v
		}
		return
	}
	a.mapInPlace(func(T) T { return v })
}

// CopyFrom copies src's elements into a (shapes must match exactly).
func (a *Array[T]) CopyFrom(src *Array[T]) {
	if !shapeEq(a.shape, src.shape) {
		panic(fmt.Sprintf("dense: CopyFrom shape mismatch %v vs %v", a.shape, src.shape))
	}
	if a.IsContiguous() && src.IsContiguous() {
		copy(a.Raw(), src.Raw())
		return
	}
	dst := a
	it := newIterator(src.shape)
	for it.next() {
		dst.data[dst.offsetOf(it.idx)] = src.data[src.offsetOf(it.idx)]
	}
}

func (a *Array[T]) offsetOf(idx []int) int {
	off := a.offset
	for d, i := range idx {
		off += i * a.strides[d]
	}
	return off
}

// Each calls f on every element in row-major order.
func (a *Array[T]) Each(f func(v T)) {
	if a.IsContiguous() {
		for _, v := range a.Raw() {
			f(v)
		}
		return
	}
	it := newIterator(a.shape)
	for it.next() {
		f(a.data[a.offsetOf(it.idx)])
	}
}

// EachIndexed calls f on every (multi-index, element) pair in row-major order.
// The idx slice is reused between calls; copy it if retained.
func (a *Array[T]) EachIndexed(f func(idx []int, v T)) {
	it := newIterator(a.shape)
	for it.next() {
		f(it.idx, a.data[a.offsetOf(it.idx)])
	}
}

func (a *Array[T]) mapInPlace(f func(T) T) {
	it := newIterator(a.shape)
	for it.next() {
		p := a.offsetOf(it.idx)
		a.data[p] = f(a.data[p])
	}
}

// iterator walks a shape in row-major order.
type iterator struct {
	shape []int
	idx   []int
	done  bool
	first bool
}

func newIterator(shape []int) *iterator {
	n := 1
	for _, s := range shape {
		n *= s
	}
	return &iterator{shape: shape, idx: make([]int, len(shape)), done: n == 0, first: true}
}

func (it *iterator) next() bool {
	if it.done {
		return false
	}
	if it.first {
		it.first = false
		return true
	}
	for d := len(it.shape) - 1; d >= 0; d-- {
		it.idx[d]++
		if it.idx[d] < it.shape[d] {
			return true
		}
		it.idx[d] = 0
	}
	it.done = true
	return false
}

// offsets walks the storage offsets of a strided view in row-major order
// starting from an arbitrary flat position — the random-access complement of
// iterator that lets the exec engine hand disjoint position spans of a
// non-contiguous view to different workers.
type offsets struct {
	shape, strides []int
	idx            []int
	off            int
}

// newOffsets positions a walker at row-major flat position pos of a view
// with the given shape, strides, and base storage offset.
func newOffsets(shape, strides []int, base, pos int) *offsets {
	o := &offsets{shape: shape, strides: strides, idx: make([]int, len(shape)), off: base}
	for d := len(shape) - 1; d >= 0; d-- {
		if shape[d] > 0 {
			o.idx[d] = pos % shape[d]
			pos /= shape[d]
			o.off += o.idx[d] * strides[d]
		}
	}
	return o
}

// advance moves the walker to the next row-major position in O(1) amortized.
func (o *offsets) advance() {
	for d := len(o.shape) - 1; d >= 0; d-- {
		o.idx[d]++
		o.off += o.strides[d]
		if o.idx[d] < o.shape[d] {
			return
		}
		o.idx[d] = 0
		o.off -= o.shape[d] * o.strides[d]
	}
}

// foldRange calls body with the storage offset of each element at row-major
// positions [lo, hi). It handles arbitrary strides (sliced, transposed, and
// negative-step views), so the exec-backed ufuncs and reductions can chunk
// any view, not just flat buffers.
func (a *Array[T]) foldRange(lo, hi int, body func(off int)) {
	if hi <= lo {
		return
	}
	if a.IsContiguous() {
		for off := a.offset + lo; off < a.offset+hi; off++ {
			body(off)
		}
		return
	}
	w := newOffsets(a.shape, a.strides, a.offset, lo)
	for i := lo; i < hi; i++ {
		body(w.off)
		w.advance()
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Range selects start:stop:step along one dimension, with NumPy semantics
// for the half-open interval. Step must be non-zero; negative steps reverse.
type Range struct {
	Start, Stop, Step int
}

// All returns the Range selecting a full dimension of extent n with step 1.
func All(n int) Range { return Range{0, n, 1} }

// Slice returns a view selecting r along dimension dim and all of every
// other dimension.
func (a *Array[T]) Slice(dim int, r Range) *Array[T] {
	rs := make([]Range, len(a.shape))
	for d := range rs {
		if d == dim {
			rs[d] = r
		} else {
			rs[d] = All(a.shape[d])
		}
	}
	return a.SliceND(rs)
}

// SliceND returns a view selecting rs[d] along each dimension d.
func (a *Array[T]) SliceND(rs []Range) *Array[T] {
	if len(rs) != len(a.shape) {
		panic(fmt.Sprintf("dense: SliceND needs %d ranges, got %d", len(a.shape), len(rs)))
	}
	out := &Array[T]{
		data:    a.data,
		shape:   make([]int, len(a.shape)),
		strides: make([]int, len(a.shape)),
		offset:  a.offset,
	}
	for d, r := range rs {
		if r.Step == 0 {
			panic("dense: slice step must be non-zero")
		}
		n := a.shape[d]
		start, stop := r.Start, r.Stop
		if start < 0 {
			start += n
		}
		if stop < 0 {
			stop += n
		}
		if r.Step > 0 {
			start = clamp(start, 0, n)
			stop = clamp(stop, 0, n)
			if stop < start {
				stop = start
			}
			out.shape[d] = (stop - start + r.Step - 1) / r.Step
		} else {
			start = clamp(start, 0, n-1)
			stop = clamp(stop, -1, n-1)
			if stop > start {
				stop = start
			}
			out.shape[d] = (start - stop - r.Step - 1) / (-r.Step)
		}
		out.offset += start * a.strides[d]
		out.strides[d] = a.strides[d] * r.Step
	}
	return out
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Row returns a 1-d view of row i of a 2-d array.
func (a *Array[T]) Row(i int) *Array[T] {
	if len(a.shape) != 2 {
		panic("dense: Row requires a 2-d array")
	}
	if i < 0 || i >= a.shape[0] {
		panic(fmt.Sprintf("dense: row %d out of range [0,%d)", i, a.shape[0]))
	}
	return &Array[T]{
		data:    a.data,
		shape:   []int{a.shape[1]},
		strides: []int{a.strides[1]},
		offset:  a.offset + i*a.strides[0],
	}
}

// Col returns a 1-d view of column j of a 2-d array.
func (a *Array[T]) Col(j int) *Array[T] {
	if len(a.shape) != 2 {
		panic("dense: Col requires a 2-d array")
	}
	if j < 0 || j >= a.shape[1] {
		panic(fmt.Sprintf("dense: col %d out of range [0,%d)", j, a.shape[1]))
	}
	return &Array[T]{
		data:    a.data,
		shape:   []int{a.shape[0]},
		strides: []int{a.strides[0]},
		offset:  a.offset + j*a.strides[1],
	}
}

// Transpose returns a view with the dimension order reversed (no copy).
func (a *Array[T]) Transpose() *Array[T] {
	n := len(a.shape)
	out := &Array[T]{data: a.data, offset: a.offset, shape: make([]int, n), strides: make([]int, n)}
	for d := 0; d < n; d++ {
		out.shape[d] = a.shape[n-1-d]
		out.strides[d] = a.strides[n-1-d]
	}
	return out
}

// Reshape returns a view with a new shape. The array must be contiguous and
// the total element count must be preserved.
func (a *Array[T]) Reshape(shape ...int) *Array[T] {
	n := checkShape(shape)
	if n != a.Size() {
		panic(fmt.Sprintf("dense: cannot reshape %v (%d elems) to %v (%d elems)", a.shape, a.Size(), shape, n))
	}
	if !a.IsContiguous() {
		panic("dense: Reshape requires a contiguous array")
	}
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &Array[T]{data: a.data, offset: a.offset, shape: sh, strides: contiguousStrides(sh)}
}

// Equal reports whether two arrays have identical shape and elements.
func (a *Array[T]) Equal(b *Array[T]) bool {
	if !shapeEq(a.shape, b.shape) {
		return false
	}
	av, bv := a.Flatten(), b.Flatten()
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// String renders small arrays fully and large ones by shape only.
func (a *Array[T]) String() string {
	if a.Size() > 64 {
		return fmt.Sprintf("Array%v{...%d elements}", a.shape, a.Size())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Array%v[", a.shape)
	first := true
	a.Each(func(v T) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%v", v)
	})
	b.WriteByte(']')
	return b.String()
}

// Linspace returns n evenly spaced float values from lo to hi inclusive
// (matching odin.linspace in the paper's §III.G example).
func Linspace[T Float](lo, hi T, n int) *Array[T] {
	if n < 0 {
		panic("dense: Linspace needs n >= 0")
	}
	out := make([]T, n)
	if n == 1 {
		out[0] = lo
	} else if n >= 2 {
		d := (hi - lo) / T(n-1)
		for i := range out {
			out[i] = lo + T(i)*d
		}
		out[n-1] = hi
	}
	return FromSlice(out, n)
}

// Arange returns the integers [0,n) as a 1-d array of the requested type.
func Arange[T Elem](n int) *Array[T] {
	out := make([]T, n)
	for i := range out {
		out[i] = fromInt[T](i)
	}
	return FromSlice(out, n)
}

// fromInt converts an int to any Elem type.
func fromInt[T Elem](i int) T {
	var v T
	switch p := any(&v).(type) {
	case *float32:
		*p = float32(i)
	case *float64:
		*p = float64(i)
	case *int32:
		*p = int32(i)
	case *int64:
		*p = int64(i)
	case *complex64:
		*p = complex(float32(i), 0)
	case *complex128:
		*p = complex(float64(i), 0)
	default:
		panic("dense: unsupported element type")
	}
	return v
}
