package dense

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestUnary(t *testing.T) {
	a := FromSlice([]float64{1, 4, 9}, 3)
	got := Unary(a, math.Sqrt)
	if !reflect.DeepEqual(got.Flatten(), []float64{1, 2, 3}) {
		t.Fatalf("sqrt = %v", got.Flatten())
	}
	// Type-changing unary.
	ints := Unary(a, func(v float64) int64 { return int64(v) })
	if !reflect.DeepEqual(ints.Flatten(), []int64{1, 4, 9}) {
		t.Fatalf("cast = %v", ints.Flatten())
	}
}

func TestUnaryIntoStrided(t *testing.T) {
	a := Arange[float64](10)
	src := a.Slice(0, Range{0, 10, 2}) // 0 2 4 6 8
	dst := Zeros[float64](5)
	UnaryInto(dst, src, func(v float64) float64 { return v * 10 })
	if !reflect.DeepEqual(dst.Flatten(), []float64{0, 20, 40, 60, 80}) {
		t.Fatalf("got %v", dst.Flatten())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("shape mismatch should panic")
			}
		}()
		UnaryInto(Zeros[float64](4), src, func(v float64) float64 { return v })
	}()
}

func TestBinary(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	got := Binary(a, b, func(x, y float64) float64 { return x + y })
	if !reflect.DeepEqual(got.Flatten(), []float64{11, 22, 33}) {
		t.Fatalf("add = %v", got.Flatten())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("shape mismatch should panic")
			}
		}()
		Binary(a, Zeros[float64](4), func(x, y float64) float64 { return x })
	}()
}

func TestBinaryIntoStridedViews(t *testing.T) {
	// The paper's dy = y[1:] - y[:-1] on the local level.
	y := FromSlice([]float64{0, 1, 4, 9, 16}, 5)
	hi := y.Slice(0, Range{1, 5, 1})
	lo := y.Slice(0, Range{0, -1, 1})
	dy := Binary(hi, lo, func(a, b float64) float64 { return a - b })
	if !reflect.DeepEqual(dy.Flatten(), []float64{1, 3, 5, 7}) {
		t.Fatalf("dy = %v", dy.Flatten())
	}
}

func TestScalarOp(t *testing.T) {
	a := Arange[float64](4)
	got := Scalar(a, 10, func(v, s float64) float64 { return v * s })
	if !reflect.DeepEqual(got.Flatten(), []float64{0, 10, 20, 30}) {
		t.Fatalf("scal = %v", got.Flatten())
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -1, 4, 1, 5}, 5)
	if Sum(a) != 12 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Prod(FromSlice([]float64{2, 3, 4}, 3)) != 24 {
		t.Fatal("Prod")
	}
	if Prod(Zeros[float64](0)) != 1 {
		t.Fatal("empty Prod identity")
	}
	if Min(a) != -1 || Max(a) != 5 {
		t.Fatalf("Min/Max = %v/%v", Min(a), Max(a))
	}
	if ArgMin(a) != 1 || ArgMax(a) != 4 {
		t.Fatalf("Arg = %d/%d", ArgMin(a), ArgMax(a))
	}
	if Mean(a) != 2.4 {
		t.Fatalf("Mean = %v", Mean(a))
	}
}

func TestReductionsEmptyPanics(t *testing.T) {
	empty := Zeros[float64](0)
	for name, fn := range map[string]func(){
		"min":    func() { Min(empty) },
		"max":    func() { Max(empty) },
		"argmin": func() { ArgMin(empty) },
		"argmax": func() { ArgMax(empty) },
		"mean":   func() { Mean(empty) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReduceAxis(t *testing.T) {
	a := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	rows := SumAxis(a, 1)
	if !reflect.DeepEqual(rows.Flatten(), []float64{6, 15}) {
		t.Fatalf("axis 1: %v", rows.Flatten())
	}
	cols := SumAxis(a, 0)
	if !reflect.DeepEqual(cols.Flatten(), []float64{5, 7, 9}) {
		t.Fatalf("axis 0: %v", cols.Flatten())
	}
	// Max along an axis via the general fold.
	mx := ReduceAxis(a, 0, math.Inf(-1), math.Max)
	if !reflect.DeepEqual(mx.Flatten(), []float64{4, 5, 6}) {
		t.Fatalf("max axis 0: %v", mx.Flatten())
	}
	// Reducing a 1-d array yields a 0-d scalar holder.
	v := FromSlice([]float64{2, 3, 4}, 3)
	s := SumAxis(v, 0)
	if s.NDim() != 0 || s.At() != 9 {
		t.Fatalf("0-d sum: ndim=%d val=%v", s.NDim(), s.At())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad axis should panic")
			}
		}()
		SumAxis(a, 2)
	}()
}

func TestCumSum(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 4)
	if !reflect.DeepEqual(CumSum(a).Flatten(), []float64{1, 3, 6, 10}) {
		t.Fatal("CumSum")
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	// Dot through strided views.
	x := Arange[float64](6)
	ev := x.Slice(0, Range{0, 6, 2}) // 0 2 4
	od := x.Slice(0, Range{1, 6, 2}) // 1 3 5
	if Dot(ev, od) != 0*1+2*3+4*5 {
		t.Fatal("strided Dot")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch should panic")
			}
		}()
		Dot(a, Zeros[float64](4))
	}()
}

func TestNorms(t *testing.T) {
	a := FromSlice([]float64{3, -4}, 2)
	if Norm2(a) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
	if Norm1(a) != 7 {
		t.Fatalf("Norm1 = %v", Norm1(a))
	}
	if NormInf(a) != 4 {
		t.Fatalf("NormInf = %v", NormInf(a))
	}
	if NormInf(Zeros[float64](0)) != 0 {
		t.Fatal("empty NormInf")
	}
}

func TestWhereCount(t *testing.T) {
	a := FromSlice([]float64{1, -2, 3, -4}, 4)
	neg := Where(a, func(v float64) bool { return v < 0 })
	if !reflect.DeepEqual(neg, []int{1, 3}) {
		t.Fatalf("Where = %v", neg)
	}
	if Count(a, func(v float64) bool { return v > 0 }) != 2 {
		t.Fatal("Count")
	}
}

func TestAllClose(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1 + 1e-12, 2}, 2)
	if !AllClose(a, b, 1e-9, 1e-9) {
		t.Fatal("close arrays")
	}
	c := FromSlice([]float64{1.1, 2}, 2)
	if AllClose(a, c, 1e-9, 1e-9) {
		t.Fatal("distant arrays")
	}
	if AllClose(a, Zeros[float64](3), 1, 1) {
		t.Fatal("shape mismatch")
	}
	n := FromSlice([]float64{math.NaN(), 2}, 2)
	if AllClose(n, n, 1, 1) {
		t.Fatal("NaN never close")
	}
}

func TestAxpyScalDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	if !reflect.DeepEqual(y, []float64{12, 24, 36}) {
		t.Fatalf("Axpy = %v", y)
	}
	Scal(0.5, y)
	if !reflect.DeepEqual(y, []float64{6, 12, 18}) {
		t.Fatalf("Scal = %v", y)
	}
	if DotSlices(x, x) != 14 {
		t.Fatal("DotSlices")
	}
	if Nrm2Slice([]float64{3, 4}) != 5 {
		t.Fatal("Nrm2Slice")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Axpy length mismatch should panic")
			}
		}()
		Axpy(1, x, []float64{1})
	}()
}

func TestGemv(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := []float64{1, 1, 1}
	y := []float64{100, 100}
	Gemv(1, a, x, 0, y)
	if !reflect.DeepEqual(y, []float64{6, 15}) {
		t.Fatalf("Gemv = %v", y)
	}
	Gemv(2, a, x, 1, y) // y = 2*A*x + y
	if !reflect.DeepEqual(y, []float64{18, 45}) {
		t.Fatalf("Gemv acc = %v", y)
	}
}

func TestGemm(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := Zeros[float64](2, 2)
	Gemm(1, a, b, 0, c)
	want := []float64{19, 22, 43, 50}
	if !reflect.DeepEqual(c.Flatten(), want) {
		t.Fatalf("Gemm = %v", c.Flatten())
	}
}

func TestLUSolve(t *testing.T) {
	a := FromSlice([]float64{4, 3, 6, 3}, 2, 2)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{10, 12})
	// 4x+3y=10, 6x+3y=12 -> x=1, y=2
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("LU solve = %v", x)
	}
	if math.Abs(f.Det()-(-6)) > 1e-12 {
		t.Fatalf("Det = %v", f.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := FromSlice([]float64{1, 2, 2, 4}, 2, 2)
	if _, err := FactorLU(a); err == nil {
		t.Fatal("singular matrix must fail")
	}
}

func TestLUSolveRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := Zeros[float64](n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(rng.NormFloat64(), i, j)
			}
			a.Set(a.At(i, i)+float64(n), i, i) // diagonally dominant
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		Gemv(1, a, want, 0, b)
		got, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQRLeastSquares(t *testing.T) {
	// Fit y = 2x + 1 exactly from 3 points.
	a := FromSlice([]float64{
		0, 1,
		1, 1,
		2, 1,
	}, 3, 2)
	b := []float64{1, 3, 5}
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveLS(b)
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("LS = %v", x)
	}
}

func TestQROverdetermined(t *testing.T) {
	// Least squares of inconsistent system minimizes residual: points
	// (0,0),(1,1),(2,1) fit y=0.5x+1/6.
	a := FromSlice([]float64{0, 1, 1, 1, 2, 1}, 3, 2)
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveLS([]float64{0, 1, 1})
	if math.Abs(x[0]-0.5) > 1e-12 || math.Abs(x[1]-1.0/6) > 1e-12 {
		t.Fatalf("LS = %v", x)
	}
}

func TestQRValidation(t *testing.T) {
	if _, err := FactorQR(FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)); err == nil {
		t.Fatal("m<n must fail")
	}
	if _, err := FactorQR(Zeros[float64](3, 2)); err == nil {
		t.Fatal("rank-deficient must fail")
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	if e.At(0, 0) != 1 || e.At(1, 1) != 1 || e.At(0, 1) != 0 {
		t.Fatal("Eye")
	}
	// I*x = x
	x := []float64{5, 6, 7}
	y := make([]float64, 3)
	Gemv(1, e, x, 0, y)
	if !reflect.DeepEqual(y, x) {
		t.Fatal("Eye Gemv")
	}
}

func TestGemvGemmValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"gemv-1d":   func() { Gemv(1, Zeros[float64](3), []float64{1}, 0, []float64{1}) },
		"gemv-dims": func() { Gemv(1, Zeros[float64](2, 3), []float64{1}, 0, []float64{1, 2}) },
		"gemm-dims": func() { Gemm(1, Zeros[float64](2, 3), Zeros[float64](2, 3), 0, Zeros[float64](2, 3)) },
		"lu-square": func() { _, _ = FactorLU(Zeros[float64](2, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
