package dense

import "math"

// Slice-loop op bodies: the tight per-block kernels under the fusion
// register VM (internal/fusion) and any other caller that already holds
// flat []float64 spans. Each body is a single branch-free loop over equal-
// length slices, written so the Go compiler can eliminate the bounds checks
// on the operands (every operand is re-sliced to len(dst) up front). dst may
// alias a or b element-for-element (dst[i] reads only a[i]/b[i]), which is
// what lets the VM reuse an operand register as the destination.

// VecCopy sets dst[i] = a[i].
func VecCopy(dst, a []float64) {
	copy(dst, a[:len(dst)])
}

// VecFill sets every element of dst to v.
func VecFill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// VecAdd sets dst[i] = a[i] + b[i].
func VecAdd(dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// VecSub sets dst[i] = a[i] - b[i].
func VecSub(dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// VecMul sets dst[i] = a[i] * b[i].
func VecMul(dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// VecDiv sets dst[i] = a[i] / b[i].
func VecDiv(dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] / b[i]
	}
}

// VecHypot sets dst[i] = math.Hypot(a[i], b[i]).
func VecHypot(dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] = math.Hypot(a[i], b[i])
	}
}

// VecSquare sets dst[i] = a[i] * a[i].
func VecSquare(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = a[i] * a[i]
	}
}

// VecSqrt sets dst[i] = math.Sqrt(a[i]).
func VecSqrt(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Sqrt(a[i])
	}
}

// VecNeg sets dst[i] = -a[i].
func VecNeg(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = -a[i]
	}
}

// VecAbs sets dst[i] = math.Abs(a[i]).
func VecAbs(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Abs(a[i])
	}
}

// VecSin sets dst[i] = math.Sin(a[i]).
func VecSin(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Sin(a[i])
	}
}

// VecCos sets dst[i] = math.Cos(a[i]).
func VecCos(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Cos(a[i])
	}
}

// VecExp sets dst[i] = math.Exp(a[i]).
func VecExp(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = math.Exp(a[i])
	}
}

// VecMap sets dst[i] = f(a[i]) for an arbitrary unary function — the
// fallback body for ops without a dedicated loop.
func VecMap(dst, a []float64, f func(float64) float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = f(a[i])
	}
}

// VecMap2 sets dst[i] = f(a[i], b[i]) for an arbitrary binary function.
func VecMap2(dst, a, b []float64, f func(float64, float64) float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] = f(a[i], b[i])
	}
}

// VecSum returns a[0] + a[1] + ... in index order (the serial left fold, so
// callers control association exactly).
func VecSum(a []float64) float64 {
	return VecAccum(0, a)
}

// VecAccum continues a running left fold: ((acc + a[0]) + a[1]) + ...
// Block-sweeping callers chain it across blocks to keep the exact
// association of one serial loop over the whole span.
func VecAccum(acc float64, a []float64) float64 {
	for _, v := range a {
		acc += v
	}
	return acc
}
