package tpetra

import (
	"fmt"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
)

// GatherPlan is a reusable communication plan that fetches an arbitrary set
// of global elements of a distributed vector onto the requesting rank. It is
// built once (collectively) and applied many times — the pattern behind both
// Tpetra's Import objects and ODIN's ghost/halo exchanges. Building costs one
// Alltoall of index lists; each Gather costs one Alltoall of values whose
// volume is exactly the number of remotely owned requested elements.
type GatherPlan struct {
	src     *distmap.Map
	sendIdx [][]int // per destination rank: src-local indices this rank must send
	recvPos [][]int // per source rank: positions in the output buffer to fill
	selfSrc []int   // src-local indices satisfied locally
	selfDst []int   // output positions for locally satisfied requests
	outLen  int
}

// NewGatherPlan builds a plan delivering the elements with global indices
// needed (in the given order, duplicates allowed) into an output buffer on
// this rank. Collective: every rank must call it, each with its own needed
// list (possibly empty).
func NewGatherPlan(c *comm.Comm, src *distmap.Map, needed []int) *GatherPlan {
	if src.NumRanks() != c.Size() {
		panic(fmt.Sprintf("tpetra: map has %d ranks, communicator has %d", src.NumRanks(), c.Size()))
	}
	p := &GatherPlan{
		src:     src,
		sendIdx: make([][]int, c.Size()),
		recvPos: make([][]int, c.Size()),
		outLen:  len(needed),
	}
	me := c.Rank()
	// Group requests by owner.
	reqGlobals := make([][]int, c.Size())
	for pos, g := range needed {
		owner, local := src.GlobalToLocal(g)
		if owner == me {
			p.selfSrc = append(p.selfSrc, local)
			p.selfDst = append(p.selfDst, pos)
			continue
		}
		reqGlobals[owner] = append(reqGlobals[owner], g)
		p.recvPos[owner] = append(p.recvPos[owner], pos)
	}
	// Exchange request lists; incoming lists tell us what to send.
	incoming := comm.Alltoall(c, reqGlobals)
	for r, globals := range incoming {
		if r == me || len(globals) == 0 {
			continue
		}
		idx := make([]int, len(globals))
		for k, g := range globals {
			owner, local := src.GlobalToLocal(g)
			if owner != me {
				panic(fmt.Sprintf("tpetra: rank %d asked rank %d for global %d owned by %d", r, me, g, owner))
			}
			idx[k] = local
		}
		p.sendIdx[r] = idx
	}
	return p
}

// OutLen returns the length of the output buffer the plan fills.
func (p *GatherPlan) OutLen() int { return p.outLen }

// RemoteCount returns how many requested elements live on other ranks — the
// per-Gather communication volume in elements.
func (p *GatherPlan) RemoteCount() int {
	n := 0
	for _, pos := range p.recvPos {
		n += len(pos)
	}
	return n
}

// Gather executes the plan: local is this rank's segment of the source
// vector; out (length OutLen) receives the requested elements in request
// order. Collective.
func (p *GatherPlan) Gather(c *comm.Comm, local, out []float64) {
	if len(out) != p.outLen {
		panic(fmt.Sprintf("tpetra: Gather output length %d, want %d", len(out), p.outLen))
	}
	// Satisfy local requests without communication.
	for k, s := range p.selfSrc {
		out[p.selfDst[k]] = local[s]
	}
	// Pack and exchange remote values.
	outgoing := make([][]float64, c.Size())
	for r, idx := range p.sendIdx {
		if len(idx) == 0 {
			continue
		}
		vals := make([]float64, len(idx))
		for k, s := range idx {
			vals[k] = local[s]
		}
		outgoing[r] = vals
	}
	incoming := comm.Alltoall(c, outgoing)
	for r, vals := range incoming {
		pos := p.recvPos[r]
		if len(vals) != len(pos) {
			panic(fmt.Sprintf("tpetra: Gather got %d values from rank %d, want %d", len(vals), r, len(pos)))
		}
		for k, v := range vals {
			out[pos[k]] = v
		}
	}
}

// Import moves a distributed vector from one map to another with the same
// global length. It is a GatherPlan whose request list is exactly the
// target map's local globals — Tpetra's Import in miniature, and the
// machinery behind ODIN's redistribution strategies (experiment E3).
type Import struct {
	src, dst *distmap.Map
	plan     *GatherPlan
}

// NewImport builds the communication plan from src-distributed data to
// dst-distributed data. Collective.
func NewImport(c *comm.Comm, src, dst *distmap.Map) *Import {
	if src.NumGlobal() != dst.NumGlobal() {
		panic(fmt.Sprintf("tpetra: Import between different global sizes %d and %d", src.NumGlobal(), dst.NumGlobal()))
	}
	needed := dst.GlobalsOn(c.Rank())
	return &Import{src: src, dst: dst, plan: NewGatherPlan(c, src, needed)}
}

// Src returns the source map.
func (im *Import) Src() *distmap.Map { return im.src }

// Dst returns the destination map.
func (im *Import) Dst() *distmap.Map { return im.dst }

// RemoteCount returns the number of elements this rank receives from other
// ranks per Apply — the redistribution cost metric used by the strategy
// chooser.
func (im *Import) RemoteCount() int { return im.plan.RemoteCount() }

// Apply redistributes: src vector (over Src map) into dst vector (over Dst
// map). Collective.
func (im *Import) Apply(src, dst *Vector) {
	if !src.Map().SameAs(im.src) {
		panic("tpetra: Import.Apply source vector has wrong map")
	}
	if !dst.Map().SameAs(im.dst) {
		panic("tpetra: Import.Apply destination vector has wrong map")
	}
	im.plan.Gather(src.Comm(), src.Data, dst.Data)
}

// ImportVector is a convenience wrapper building a fresh plan and vector.
func ImportVector(src *Vector, dst *distmap.Map) *Vector {
	im := NewImport(src.Comm(), src.Map(), dst)
	out := NewVector(src.Comm(), dst)
	im.Apply(src, out)
	return out
}
