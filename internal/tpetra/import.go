package tpetra

import (
	"fmt"
	"sync"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
	"odinhpc/internal/trace"
)

// GatherLengthError is the panic value raised when Gather is handed a local
// segment whose length disagrees with the plan's source map on this rank. It
// is typed and rank-stamped so a chaos session reports which rank passed the
// bad vector instead of surfacing an anonymous index-out-of-range from the
// pack loop (or, worse, silently gathering stale values when the slice is
// long enough to index but belongs to a different map).
type GatherLengthError struct {
	Rank int // rank that called Gather
	Got  int // len(local) as passed
	Want int // the source map's local count on Rank
}

func (e *GatherLengthError) Error() string {
	return fmt.Sprintf("tpetra: rank %d called Gather with a local segment of %d elements; source map owns %d", e.Rank, e.Got, e.Want)
}

// GatherPlan is a reusable communication plan that fetches an arbitrary set
// of global elements of a distributed vector onto the requesting rank. It is
// built once (collectively) and applied many times — the pattern behind both
// Tpetra's Import objects and ODIN's ghost/halo exchanges. Building costs one
// Alltoall of index lists; each Gather costs one Alltoall of values whose
// volume is exactly the number of remotely owned requested elements.
//
// Plan application is concurrency-safe: after construction a plan is
// immutable, and each Gather packs into per-call scratch drawn from a pool,
// so one plan may be applied simultaneously from many goroutines — the
// cross-request plan cache a server needs. The one rule left is the
// collective one: concurrent applications must each run on their own
// congruent communicator (a warm rank group); two Gathers interleaved on the
// *same* communicator would cross-match their value exchanges.
type GatherPlan struct {
	src     *distmap.Map
	sendIdx [][]int // per destination rank: src-local indices this rank must send
	recvPos [][]int // per source rank: positions in the output buffer to fill
	selfSrc []int   // src-local indices satisfied locally
	selfDst []int   // output positions for locally satisfied requests
	outLen  int

	// scratch pools per-call pack buffers (*gatherScratch), sized from
	// sendIdx on first use. Pooling keeps the steady-state allocation profile
	// of the old hoisted buffers (pinned by BenchmarkGatherPlan) without the
	// shared mutable state that made a plan single-goroutine.
	scratch sync.Pool
}

// gatherScratch is one application's pack buffers: per destination rank, the
// values to send. Pooled via a pointer so Get/Put stay allocation-free at
// steady state.
type gatherScratch struct {
	outgoing [][]float64
}

// NewGatherPlan builds a plan delivering the elements with global indices
// needed (in the given order, duplicates allowed) into an output buffer on
// this rank. Collective: every rank must call it, each with its own needed
// list (possibly empty).
func NewGatherPlan(c *comm.Comm, src *distmap.Map, needed []int) *GatherPlan {
	if src.NumRanks() != c.Size() {
		panic(fmt.Sprintf("tpetra: map has %d ranks, communicator has %d", src.NumRanks(), c.Size()))
	}
	ts := trace.Active()
	var t0 int64
	if ts != nil {
		t0 = ts.Now()
	}
	p := &GatherPlan{
		src:     src,
		sendIdx: make([][]int, c.Size()),
		recvPos: make([][]int, c.Size()),
		outLen:  len(needed),
	}
	me := c.Rank()
	// Group requests by owner.
	reqGlobals := make([][]int, c.Size())
	for pos, g := range needed {
		owner, local := src.GlobalToLocal(g)
		if owner == me {
			p.selfSrc = append(p.selfSrc, local)
			p.selfDst = append(p.selfDst, pos)
			continue
		}
		reqGlobals[owner] = append(reqGlobals[owner], g)
		p.recvPos[owner] = append(p.recvPos[owner], pos)
	}
	// Exchange request lists; incoming lists tell us what to send.
	incoming := comm.Alltoall(c, reqGlobals)
	for r, globals := range incoming {
		if r == me || len(globals) == 0 {
			continue
		}
		idx := make([]int, len(globals))
		for k, g := range globals {
			owner, local := src.GlobalToLocal(g)
			if owner != me {
				panic(fmt.Sprintf("tpetra: rank %d asked rank %d for global %d owned by %d", r, me, g, owner))
			}
			idx[k] = local
		}
		p.sendIdx[r] = idx
	}
	p.scratch.New = func() any {
		s := &gatherScratch{outgoing: make([][]float64, len(p.sendIdx))}
		for r, idx := range p.sendIdx {
			if len(idx) > 0 {
				s.outgoing[r] = make([]float64, len(idx))
			}
		}
		return s
	}
	if ts != nil {
		ts.Emit(trace.Event{Kind: trace.KindPlan, Rank: int32(c.Rank()), Worker: -1,
			Peer: -1, Tag: -1, Start: t0, Dur: ts.Now() - t0, A: int64(p.RemoteCount())})
	}
	return p
}

// OutLen returns the length of the output buffer the plan fills.
func (p *GatherPlan) OutLen() int { return p.outLen }

// RemoteCount returns how many requested elements live on other ranks — the
// per-Gather communication volume in elements.
func (p *GatherPlan) RemoteCount() int {
	n := 0
	for _, pos := range p.recvPos {
		n += len(pos)
	}
	return n
}

// Gather executes the plan: local is this rank's segment of the source
// vector; out (length OutLen) receives the requested elements in request
// order. Collective.
func (p *GatherPlan) Gather(c *comm.Comm, local, out []float64) {
	// Validate the whole local segment up front, before any element moves:
	// a short slice must not die mid-pack with a bare index panic, and a
	// wrong-map slice that happens to be long enough must not gather
	// plausible-but-stale values.
	if want := p.src.LocalCount(c.Rank()); len(local) != want {
		panic(&GatherLengthError{Rank: c.Rank(), Got: len(local), Want: want})
	}
	if len(out) != p.outLen {
		panic(fmt.Sprintf("tpetra: Gather output length %d, want %d", len(out), p.outLen))
	}
	ts := trace.Active()
	var t0 int64
	if ts != nil {
		t0 = ts.Now()
	}
	// Satisfy local requests without communication.
	for k, s := range p.selfSrc {
		out[p.selfDst[k]] = local[s]
	}
	// Pack into pooled per-call buffers and exchange remote values. The
	// scratch goes back to the pool as soon as the Alltoall returns: Send
	// copies payloads, so by then the buffers are free to reuse.
	sc := p.scratch.Get().(*gatherScratch)
	for r, idx := range p.sendIdx {
		vals := sc.outgoing[r]
		for k, s := range idx {
			vals[k] = local[s]
		}
	}
	incoming := comm.Alltoall(c, sc.outgoing)
	p.scratch.Put(sc)
	for r, vals := range incoming {
		pos := p.recvPos[r]
		if len(vals) != len(pos) {
			panic(fmt.Sprintf("tpetra: Gather got %d values from rank %d, want %d", len(vals), r, len(pos)))
		}
		for k, v := range vals {
			out[pos[k]] = v
		}
	}
	if ts != nil {
		remote := p.RemoteCount()
		ts.Emit(trace.Event{Kind: trace.KindGather, Rank: int32(c.Rank()), Worker: -1,
			Peer: -1, Tag: -1, Start: t0, Dur: ts.Now() - t0,
			Bytes: int64(remote) * 8, A: int64(remote)})
	}
}

// Import moves a distributed vector from one map to another with the same
// global length. It is a GatherPlan whose request list is exactly the
// target map's local globals — Tpetra's Import in miniature, and the
// machinery behind ODIN's redistribution strategies (experiment E3).
//
// Like the plan underneath, an Import is immutable after construction and
// may be Applied concurrently, one application per congruent communicator
// (Apply takes its communicator from the source vector).
type Import struct {
	src, dst *distmap.Map
	plan     *GatherPlan
}

// NewImport builds the communication plan from src-distributed data to
// dst-distributed data. Collective.
func NewImport(c *comm.Comm, src, dst *distmap.Map) *Import {
	if src.NumGlobal() != dst.NumGlobal() {
		panic(fmt.Sprintf("tpetra: Import between different global sizes %d and %d", src.NumGlobal(), dst.NumGlobal()))
	}
	needed := dst.GlobalsOn(c.Rank())
	return &Import{src: src, dst: dst, plan: NewGatherPlan(c, src, needed)}
}

// Src returns the source map.
func (im *Import) Src() *distmap.Map { return im.src }

// Dst returns the destination map.
func (im *Import) Dst() *distmap.Map { return im.dst }

// RemoteCount returns the number of elements this rank receives from other
// ranks per Apply — the redistribution cost metric used by the strategy
// chooser.
func (im *Import) RemoteCount() int { return im.plan.RemoteCount() }

// Apply redistributes: src vector (over Src map) into dst vector (over Dst
// map). Collective.
func (im *Import) Apply(src, dst *Vector) {
	if !src.Map().SameAs(im.src) {
		panic("tpetra: Import.Apply source vector has wrong map")
	}
	if !dst.Map().SameAs(im.dst) {
		panic("tpetra: Import.Apply destination vector has wrong map")
	}
	c := src.Comm()
	if ts := trace.Active(); ts != nil {
		t0 := ts.Now()
		im.plan.Gather(c, src.Data, dst.Data)
		ts.Emit(trace.Event{Kind: trace.KindImport, Rank: int32(c.Rank()), Worker: -1,
			Peer: -1, Tag: -1, Start: t0, Dur: ts.Now() - t0,
			A: int64(im.plan.RemoteCount())})
		return
	}
	im.plan.Gather(c, src.Data, dst.Data)
}

// ImportVector is a convenience wrapper building a fresh plan and vector.
func ImportVector(src *Vector, dst *distmap.Map) *Vector {
	im := NewImport(src.Comm(), src.Map(), dst)
	out := NewVector(src.Comm(), dst)
	im.Apply(src, out)
	return out
}
