package tpetra

import (
	"fmt"

	"odinhpc/internal/comm"
)

// ExportAdd pushes (global index, value) contributions — including ones for
// elements owned by other ranks — into a distributed vector, summing into
// the existing entries. This is the Export half of Tpetra's Import/Export
// pair, the communication pattern of finite-element right-hand-side
// assembly where boundary nodes receive contributions from several ranks.
// Collective.
func ExportAdd(v *Vector, globals []int, vals []float64) {
	if len(globals) != len(vals) {
		panic(fmt.Sprintf("tpetra: ExportAdd got %d indices and %d values", len(globals), len(vals)))
	}
	c := v.Comm()
	me := c.Rank()
	outIdx := make([][]int, c.Size())
	outVal := make([][]float64, c.Size())
	for k, g := range globals {
		owner, local := v.Map().GlobalToLocal(g)
		if owner == me {
			v.Data[local] += vals[k]
			continue
		}
		outIdx[owner] = append(outIdx[owner], g)
		outVal[owner] = append(outVal[owner], vals[k])
	}
	inIdx := comm.Alltoall(c, outIdx)
	inVal := comm.Alltoall(c, outVal)
	for r := range inIdx {
		if r == me {
			continue
		}
		for k, g := range inIdx[r] {
			owner, local := v.Map().GlobalToLocal(g)
			if owner != me {
				panic(fmt.Sprintf("tpetra: ExportAdd routed global %d to rank %d, owner is %d", g, me, owner))
			}
			v.Data[local] += inVal[r][k]
		}
	}
}
