package tpetra

import (
	"fmt"

	"odinhpc/internal/comm"
	"odinhpc/internal/trace"
)

// ExportAdd pushes (global index, value) contributions — including ones for
// elements owned by other ranks — into a distributed vector, summing into
// the existing entries. This is the Export half of Tpetra's Import/Export
// pair, the communication pattern of finite-element right-hand-side
// assembly where boundary nodes receive contributions from several ranks.
// Collective.
func ExportAdd(v *Vector, globals []int, vals []float64) {
	if len(globals) != len(vals) {
		panic(fmt.Sprintf("tpetra: ExportAdd got %d indices and %d values", len(globals), len(vals)))
	}
	c := v.Comm()
	me := c.Rank()
	ts := trace.Active()
	var t0 int64
	if ts != nil {
		t0 = ts.Now()
	}
	outIdx := make([][]int, c.Size())
	outVal := make([][]float64, c.Size())
	for k, g := range globals {
		owner, local := v.Map().GlobalToLocal(g)
		if owner == me {
			v.Data[local] += vals[k]
			continue
		}
		outIdx[owner] = append(outIdx[owner], g)
		outVal[owner] = append(outVal[owner], vals[k])
	}
	inIdx := comm.Alltoall(c, outIdx)
	inVal := comm.Alltoall(c, outVal)
	for r := range inIdx {
		if r == me {
			continue
		}
		for k, g := range inIdx[r] {
			owner, local := v.Map().GlobalToLocal(g)
			if owner != me {
				panic(fmt.Sprintf("tpetra: ExportAdd routed global %d to rank %d, owner is %d", g, me, owner))
			}
			v.Data[local] += inVal[r][k]
		}
	}
	if ts != nil {
		remote := 0
		for r, idx := range outIdx {
			if r != me {
				remote += len(idx)
			}
		}
		ts.Emit(trace.Event{Kind: trace.KindExport, Rank: int32(me), Worker: -1,
			Peer: -1, Tag: -1, Start: t0, Dur: ts.Now() - t0,
			Bytes: int64(remote) * 8, A: int64(remote)})
	}
}
