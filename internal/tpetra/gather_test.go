package tpetra_test

// Hardening and edge-case coverage of the GatherPlan/Import path: length
// validation with a typed rank-stamped panic, self-lane traffic accounting,
// and plan correctness on degenerate request lists at several rank counts.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
	"odinhpc/internal/tpetra"
)

func gatherFill(g int) float64 { return float64(g*g)*0.25 - float64(g) }

// TestGatherLengthErrorTyped pins the up-front validation: a local segment
// whose length disagrees with the source map must raise *GatherLengthError
// before any element moves, with the offending rank and both lengths.
func TestGatherLengthErrorTyped(t *testing.T) {
	err := comm.Run(1, func(c *comm.Comm) error {
		m := distmap.NewBlock(10, 1)
		plan := tpetra.NewGatherPlan(c, m, []int{0, 9})
		out := make([]float64, 2)
		defer func() {
			r := recover()
			if r == nil {
				t.Error("Gather accepted a short local segment")
				return
			}
			ge, ok := r.(*tpetra.GatherLengthError)
			if !ok {
				t.Errorf("panic value is %T, want *GatherLengthError", r)
				return
			}
			if ge.Rank != 0 || ge.Got != 3 || ge.Want != 10 {
				t.Errorf("GatherLengthError = %+v, want Rank=0 Got=3 Want=10", ge)
			}
			if !strings.Contains(ge.Error(), "rank 0") {
				t.Errorf("error message not rank-stamped: %q", ge.Error())
			}
		}()
		plan.Gather(c, make([]float64, 3), out)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGatherLengthMismatchUnderWatchdog is the regression test for the
// original failure mode: one rank passes a vector from the wrong map into a
// collective Gather. Under a fault plan the session must abort promptly with
// the offending rank identified — peers report FaultError instead of
// hanging in the value Alltoall.
func TestGatherLengthMismatchUnderWatchdog(t *testing.T) {
	const n = 37
	_, err := comm.RunConfig(4, comm.Config{
		Faults: &comm.FaultPlan{Seed: 1, RecvTimeout: 5 * time.Second},
	}, func(c *comm.Comm) error {
		m := distmap.NewBlock(n, c.Size())
		lo, hi := m.BlockRange(c.Rank())
		var needed []int
		if lo > 0 {
			needed = append(needed, lo-1)
		}
		if hi < n {
			needed = append(needed, hi)
		}
		plan := tpetra.NewGatherPlan(c, m, needed)
		local := make([]float64, m.LocalCount(c.Rank()))
		if c.Rank() == 2 {
			local = local[:len(local)-1] // the bug: a short vector at one rank
		}
		out := make([]float64, plan.OutLen())
		plan.Gather(c, local, out)
		return nil
	})
	if err == nil {
		t.Fatal("session with a mismatched vector at rank 2 reported no error")
	}
	var fe *comm.FaultError
	if errors.As(err, &fe) {
		t.Fatalf("root cause is a propagated FaultError %v; want rank 2's panic", err)
	}
	if !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "source map owns") {
		t.Fatalf("error does not identify the offending rank: %v", err)
	}
}

// TestGatherPlanSelfTrafficIsZero pins self-lane accounting: at P=1 every
// request is satisfied locally, so building and applying a plan must move
// zero wire messages and zero wire bytes (the index Alltoall and value
// Alltoall both collapse to local copies).
func TestGatherPlanSelfTrafficIsZero(t *testing.T) {
	const n = 64
	stats, err := comm.RunStats(1, func(c *comm.Comm) error {
		m := distmap.NewBlock(n, 1)
		needed := make([]int, n)
		for g := range needed {
			needed[g] = n - 1 - g
		}
		plan := tpetra.NewGatherPlan(c, m, needed)
		local := make([]float64, n)
		for i := range local {
			local[i] = gatherFill(i)
		}
		out := make([]float64, plan.OutLen())
		plan.Gather(c, local, out)
		for i, g := range needed {
			if out[i] != gatherFill(g) {
				t.Errorf("out[%d] = %g, want %g", i, out[i], gatherFill(g))
			}
		}
		if plan.RemoteCount() != 0 {
			t.Errorf("RemoteCount() = %d at P=1, want 0", plan.RemoteCount())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	for i, v := range snap.Msgs {
		if v != 0 {
			t.Fatalf("P=1 message matrix entry %d = %d, want all-zero", i, v)
		}
	}
	for i, v := range snap.Bytes {
		if v != 0 {
			t.Fatalf("P=1 byte matrix entry %d = %d, want all-zero", i, v)
		}
	}
}

// TestGatherSteadyStateAllocs pins the pooled pack scratch: once the pool is
// warm, a Gather must not allocate pack buffers — the only steady-state
// allocation left is the value Alltoall's result slice (1 at P=1). The bound
// leaves headroom for a GC emptying the pool mid-measurement, which re-runs
// the pool's New (scratch struct + outer slice) at most once per cycle.
func TestGatherSteadyStateAllocs(t *testing.T) {
	err := comm.Run(1, func(c *comm.Comm) error {
		const n = 256
		m := distmap.NewBlock(n, 1)
		needed := []int{0, 1, n / 2, n - 1}
		plan := tpetra.NewGatherPlan(c, m, needed)
		local := make([]float64, n)
		out := make([]float64, plan.OutLen())
		plan.Gather(c, local, out) // warm the scratch pool
		allocs := testing.AllocsPerRun(100, func() { plan.Gather(c, local, out) })
		if allocs > 4 {
			t.Errorf("steady-state Gather allocates %v objects per run, want <= 4", allocs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// naiveGather fetches needed elements via a dense Allgather of the whole
// vector — the obvious O(N) reference the plan is bitwise-checked against.
// Valid for contiguous block maps, where rank-order concatenation is global
// order.
func naiveGather(c *comm.Comm, local []float64, needed []int) []float64 {
	full := comm.AllgatherFlat(c, local)
	out := make([]float64, len(needed))
	for i, g := range needed {
		out[i] = full[g]
	}
	return out
}

// TestGatherPlanEdgeCases sweeps the degenerate request lists — duplicate
// globals (self-owned and remote), empty needed on a subset of ranks, and a
// request-everything plan — against the naive dense gather, bitwise, at
// several rank counts including a non-power-of-two.
func TestGatherPlanEdgeCases(t *testing.T) {
	const n = 29
	for _, p := range []int{1, 2, 4, 7} {
		err := comm.Run(p, func(c *comm.Comm) error {
			m := distmap.NewBlock(n, c.Size())
			local := make([]float64, m.LocalCount(c.Rank()))
			lo, _ := 0, 0
			if len(local) > 0 {
				lo, _ = m.BlockRange(c.Rank())
			}
			for i := range local {
				local[i] = gatherFill(lo + i)
			}

			cases := []struct {
				name   string
				needed []int
			}{
				{"duplicates", []int{0, 0, n - 1, n / 2, n - 1, n / 2, 0}},
				{"empty-on-odd-ranks", func() []int {
					if c.Rank()%2 == 1 {
						return nil
					}
					return []int{n - 1, 0}
				}()},
				{"request-everything", func() []int {
					all := make([]int, n)
					for g := range all {
						all[g] = g
					}
					return all
				}()},
			}
			//lint:allow p2pmatch Case-table loop over gather plans; each plan runs the vetted two-phase request protocol
			for _, tc := range cases {
				plan := tpetra.NewGatherPlan(c, m, tc.needed)
				out := make([]float64, plan.OutLen())
				plan.Gather(c, local, out)
				want := naiveGather(c, local, tc.needed)
				for i := range want {
					if out[i] != want[i] {
						return fmt.Errorf("rank %d case %s: out[%d] = %g, want %g", c.Rank(), tc.name, i, out[i], want[i])
					}
				}
				// Second apply through the reused pack buffers must agree.
				out2 := make([]float64, plan.OutLen())
				plan.Gather(c, local, out2)
				for i := range want {
					if out2[i] != want[i] {
						return fmt.Errorf("rank %d case %s/reapply: out[%d] = %g, want %g", c.Rank(), tc.name, i, out2[i], want[i])
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}
