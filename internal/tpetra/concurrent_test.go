package tpetra_test

// Concurrent plan application: one GatherPlan/Import per rank, built once,
// applied simultaneously from several warm communicator sessions — the
// serving pattern, where compiled plans are a cross-request cache and each
// request runs on its own congruent rank group. Every application must be
// bitwise-equal to the serial reference; under -race this is also the
// regression test for the plan-owned pack buffers that made a plan
// single-goroutine.
//
// Concurrent applies of one plan on the *same* communicator are still
// meaningless (the two value Alltoalls would cross-match); the supported
// shape exercised here is one plan shared across *distinct* congruent
// communicators, each applying it with its own data.

import (
	"fmt"
	"sync"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
	"odinhpc/internal/tpetra"
)

// sessFill gives every (session, global) pair a distinct value so pack
// buffers crossed between sessions show up as wrong gathered values, not
// just a race report.
func sessFill(sess, g int) float64 { return float64(sess+1)*1000 + float64(g) }

// concNeeded is the deterministic request list for a rank: its halo
// neighbours plus a handful of strided globals, mixing self-owned and
// remote elements with duplicates.
func concNeeded(rank, p, n int) []int {
	m := distmap.NewBlock(n, p)
	lo, hi := m.BlockRange(rank)
	needed := []int{lo, (hi - 1 + n) % n}
	if lo > 0 {
		needed = append(needed, lo-1)
	}
	if hi < n {
		needed = append(needed, hi)
	}
	for k := 0; k < 8; k++ {
		needed = append(needed, (rank*7+k*3)%n)
	}
	return needed
}

// TestGatherPlanConcurrentApplications builds one plan per rank in a single
// session, then applies the shared plans from G concurrent warm sessions at
// once, each session carrying its own data, repeated several times per
// session. Every gathered buffer must match the pure-function reference
// bitwise.
func TestGatherPlanConcurrentApplications(t *testing.T) {
	const n = 41
	const reps = 8
	for _, p := range []int{1, 2, 4} {
		for _, g := range []int{2, 4} {
			t.Run(fmt.Sprintf("P=%d/G=%d", p, g), func(t *testing.T) {
				plans := make([]*tpetra.GatherPlan, p)
				err := comm.Run(p, func(c *comm.Comm) error {
					m := distmap.NewBlock(n, p)
					plans[c.Rank()] = tpetra.NewGatherPlan(c, m, concNeeded(c.Rank(), p, n))
					return nil
				})
				if err != nil {
					t.Fatalf("build session: %v", err)
				}

				var wg sync.WaitGroup
				errs := make([]error, g)
				for s := 0; s < g; s++ {
					wg.Add(1)
					go func(sess int) {
						defer wg.Done()
						errs[sess] = comm.Run(p, func(c *comm.Comm) error {
							m := distmap.NewBlock(n, p)
							needed := concNeeded(c.Rank(), p, n)
							local := make([]float64, m.LocalCount(c.Rank()))
							for i := range local {
								local[i] = sessFill(sess, m.LocalToGlobal(c.Rank(), i))
							}
							plan := plans[c.Rank()]
							for rep := 0; rep < reps; rep++ {
								out := make([]float64, plan.OutLen())
								plan.Gather(c, local, out)
								for i, gl := range needed {
									if want := sessFill(sess, gl); out[i] != want {
										return fmt.Errorf("session %d rank %d rep %d: out[%d] = %g, want %g",
											sess, c.Rank(), rep, i, out[i], want)
									}
								}
							}
							return nil
						})
					}(s)
				}
				wg.Wait()
				for s, err := range errs {
					if err != nil {
						t.Errorf("session %d: %v", s, err)
					}
				}
			})
		}
	}
}

// TestImportConcurrentApplications is the same property one layer up: one
// block→cyclic Import per rank shared across concurrent sessions, applied
// to session-distinct vectors, bitwise-checked against the pure reference.
func TestImportConcurrentApplications(t *testing.T) {
	const n = 37
	const reps = 6
	const g = 3
	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			imports := make([]*tpetra.Import, p)
			err := comm.Run(p, func(c *comm.Comm) error {
				src := distmap.NewBlock(n, p)
				dst := distmap.NewCyclic(n, p)
				imports[c.Rank()] = tpetra.NewImport(c, src, dst)
				return nil
			})
			if err != nil {
				t.Fatalf("build session: %v", err)
			}

			var wg sync.WaitGroup
			errs := make([]error, g)
			for s := 0; s < g; s++ {
				wg.Add(1)
				go func(sess int) {
					defer wg.Done()
					errs[sess] = comm.Run(p, func(c *comm.Comm) error {
						im := imports[c.Rank()]
						src := tpetra.NewVector(c, im.Src())
						dst := tpetra.NewVector(c, im.Dst())
						for i := range src.Data {
							src.Data[i] = sessFill(sess, im.Src().LocalToGlobal(c.Rank(), i))
						}
						for rep := 0; rep < reps; rep++ {
							for i := range dst.Data {
								dst.Data[i] = -1
							}
							im.Apply(src, dst)
							for i := range dst.Data {
								gl := im.Dst().LocalToGlobal(c.Rank(), i)
								if want := sessFill(sess, gl); dst.Data[i] != want {
									return fmt.Errorf("session %d rank %d rep %d: dst[%d] = %g, want %g",
										sess, c.Rank(), rep, i, dst.Data[i], want)
								}
							}
						}
						return nil
					})
				}(s)
			}
			wg.Wait()
			for s, err := range errs {
				if err != nil {
					t.Errorf("session %d: %v", s, err)
				}
			}
		})
	}
}
