package tpetra

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
	"odinhpc/internal/sparse"
)

// buildLaplace1D assembles the [-1 2 -1] operator on the given map; every
// rank inserts only its own rows, as in real Tpetra assembly.
func buildLaplace1D(c *comm.Comm, m *distmap.Map) *CrsMatrix {
	n := m.NumGlobal()
	a := NewCrsMatrix(c, m)
	me := c.Rank()
	for l := 0; l < m.LocalCount(me); l++ {
		g := m.LocalToGlobal(me, l)
		a.InsertGlobal(g, g, 2)
		if g > 0 {
			a.InsertGlobal(g, g-1, -1)
		}
		if g < n-1 {
			a.InsertGlobal(g, g+1, -1)
		}
	}
	a.FillComplete()
	return a
}

func serialLaplace1D(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	return coo.ToCSR()
}

func TestGatherPlanLocalOnly(t *testing.T) {
	onRanks(t, []int{1, 4}, func(c *comm.Comm) error {
		m := distmap.NewBlock(16, c.Size())
		// Request only own globals: no remote traffic.
		needed := m.GlobalsOn(c.Rank())
		p := NewGatherPlan(c, m, needed)
		if p.RemoteCount() != 0 {
			return fmt.Errorf("RemoteCount=%d want 0", p.RemoteCount())
		}
		local := make([]float64, len(needed))
		for i := range local {
			local[i] = float64(needed[i])
		}
		out := make([]float64, p.OutLen())
		p.Gather(c, local, out)
		for k, g := range needed {
			if out[k] != float64(g) {
				return fmt.Errorf("out[%d]=%g want %d", k, out[k], g)
			}
		}
		return nil
	})
}

func TestGatherPlanRemote(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		const n = 20
		m := distmap.NewBlock(n, c.Size())
		// Every rank requests a fixed scattered set, including duplicates.
		needed := []int{0, n - 1, 7, 7, 3}
		p := NewGatherPlan(c, m, needed)
		local := make([]float64, m.LocalCount(c.Rank()))
		for l := range local {
			local[l] = float64(m.LocalToGlobal(c.Rank(), l) * 10)
		}
		out := make([]float64, p.OutLen())
		p.Gather(c, local, out)
		want := []float64{0, (n - 1) * 10, 70, 70, 30}
		for k := range want {
			if out[k] != want[k] {
				return fmt.Errorf("rank %d: out=%v want %v", c.Rank(), out, want)
			}
		}
		return nil
	})
}

func TestGatherPlanReusable(t *testing.T) {
	onRanks(t, []int{3}, func(c *comm.Comm) error {
		m := distmap.NewCyclic(9, c.Size())
		needed := []int{8, 0, 4}
		p := NewGatherPlan(c, m, needed)
		for trial := 0; trial < 3; trial++ {
			local := make([]float64, m.LocalCount(c.Rank()))
			for l := range local {
				local[l] = float64(trial*100 + m.LocalToGlobal(c.Rank(), l))
			}
			out := make([]float64, 3)
			p.Gather(c, local, out)
			for k, g := range needed {
				if out[k] != float64(trial*100+g) {
					return fmt.Errorf("trial %d: out=%v", trial, out)
				}
			}
		}
		return nil
	})
}

func TestImportBlockToCyclic(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		const n = 26
		src := distmap.NewBlock(n, c.Size())
		dst := distmap.NewCyclic(n, c.Size())
		x := NewVector(c, src)
		x.FillFromGlobal(func(g int) float64 { return float64(g) + 0.5 })
		im := NewImport(c, src, dst)
		if im.Src() != src || im.Dst() != dst {
			return fmt.Errorf("accessors")
		}
		y := NewVector(c, dst)
		im.Apply(x, y)
		full := y.GatherAll()
		for g, v := range full {
			if v != float64(g)+0.5 {
				return fmt.Errorf("full[%d]=%g", g, v)
			}
		}
		// Convenience wrapper agrees.
		z := ImportVector(x, dst)
		for i := range z.Data {
			if z.Data[i] != y.Data[i] {
				return fmt.Errorf("ImportVector mismatch")
			}
		}
		return nil
	})
}

func TestImportIdentityNoTraffic(t *testing.T) {
	stats, err := comm.RunStats(4, func(c *comm.Comm) error {
		m := distmap.NewBlock(40, c.Size())
		x := NewVector(c, m)
		x.Randomize(3)
		c.Barrier()
		if c.Rank() == 0 {
			c.ResetStats()
		}
		c.Barrier()
		//lint:allow p2pmatch NewImport's ownership exchange is the vetted tpetra plan protocol; message counts are asserted here
		im := NewImport(c, m, m)
		if im.RemoteCount() != 0 {
			return fmt.Errorf("identity import has remote elements")
		}
		y := NewVector(c, m)
		im.Apply(x, y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The only traffic should be the (empty) alltoalls + barriers: no
	// float64 payloads of size 40/4*8=80.
	snap := stats.Snapshot()
	for src := 0; src < snap.Size; src++ {
		for dst := 0; dst < snap.Size; dst++ {
			if src != dst && snap.ByteCount(src, dst) > 64 {
				t.Fatalf("identity import moved %d bytes %d->%d", snap.ByteCount(src, dst), src, dst)
			}
		}
	}
}

func TestImportSizeMismatchPanics(t *testing.T) {
	err := comm.Run(2, func(c *comm.Comm) error {
		defer func() { recover() }()
		//lint:allow p2pmatch Deliberate: mismatched map sizes must panic inside NewImport; recover is armed on every rank
		NewImport(c, distmap.NewBlock(10, 2), distmap.NewBlock(11, 2))
		return fmt.Errorf("expected panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrsMatrixApplyMatchesSerial(t *testing.T) {
	const n = 33
	serial := serialLaplace1D(n)
	xref := make([]float64, n)
	for i := range xref {
		xref[i] = math.Cos(float64(i))
	}
	yref := make([]float64, n)
	serial.MulVec(xref, yref)

	onRanks(t, sizes, func(c *comm.Comm) error {
		for _, m := range []*distmap.Map{
			distmap.NewBlock(n, c.Size()),
			distmap.NewCyclic(n, c.Size()),
			distmap.NewBlockCyclic(n, c.Size(), 3),
		} {
			a := buildLaplace1D(c, m)
			x := NewVector(c, m)
			x.FillFromGlobal(func(g int) float64 { return math.Cos(float64(g)) })
			y := NewVector(c, m)
			a.Apply(x, y)
			full := y.GatherAll()
			for g := range full {
				if math.Abs(full[g]-yref[g]) > 1e-12 {
					return fmt.Errorf("%v: y[%d]=%g want %g", m, g, full[g], yref[g])
				}
			}
		}
		return nil
	})
}

func TestCrsMatrixGhostCount(t *testing.T) {
	// Block-distributed 1-D Laplacian: interior ranks need exactly 2 ghosts.
	onRanks(t, []int{4}, func(c *comm.Comm) error {
		a := buildLaplace1D(c, distmap.NewBlock(40, c.Size()))
		want := 2
		if c.Rank() == 0 || c.Rank() == c.Size()-1 {
			want = 1
		}
		if a.NumGhost() != want {
			return fmt.Errorf("rank %d ghosts=%d want %d", c.Rank(), a.NumGhost(), want)
		}
		return nil
	})
}

func TestCrsMatrixDiagonal(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		a := buildLaplace1D(c, distmap.NewBlock(17, c.Size()))
		d := a.Diagonal()
		for _, v := range d.Data {
			if v != 2 {
				return fmt.Errorf("diag=%v", d.Data)
			}
		}
		return nil
	})
}

func TestCrsMatrixNNZAndNorm(t *testing.T) {
	const n = 12
	onRanks(t, sizes, func(c *comm.Comm) error {
		a := buildLaplace1D(c, distmap.NewBlock(n, c.Size()))
		if got := a.GlobalNNZ(); got != 3*n-2 {
			return fmt.Errorf("GlobalNNZ=%d", got)
		}
		want := math.Sqrt(4*float64(n) + 2*float64(n-1))
		if got := a.NormFrobenius(); math.Abs(got-want) > 1e-12 {
			return fmt.Errorf("fro=%g want %g", got, want)
		}
		return nil
	})
}

func TestCrsMatrixScaleOps(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		m := distmap.NewBlock(8, c.Size())
		a := buildLaplace1D(c, m)
		a.Scale(2)
		d := a.Diagonal()
		if d.GetGlobal(0) != 4 {
			return fmt.Errorf("after Scale diag=%g", d.GetGlobal(0))
		}
		s := NewVector(c, m)
		s.PutScalar(0.5)
		a.LeftScale(s)
		if a.Diagonal().GetGlobal(0) != 2 {
			return fmt.Errorf("after LeftScale diag=%g", a.Diagonal().GetGlobal(0))
		}
		return nil
	})
}

func TestLocalDiagonalBlock(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		a := buildLaplace1D(c, distmap.NewBlock(8, c.Size()))
		blk := a.LocalDiagonalBlock()
		if blk.Rows != 4 || blk.Cols != 4 {
			return fmt.Errorf("block shape %dx%d", blk.Rows, blk.Cols)
		}
		// Block of the tridiagonal is the local tridiagonal (coupling to the
		// other rank's rows dropped).
		if blk.At(0, 0) != 2 || blk.At(0, 1) != -1 || blk.At(3, 2) != -1 {
			return fmt.Errorf("block content %v", blk.Dense())
		}
		return nil
	})
}

func TestTransposeDist(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		nx, ny := 6, 4
		n := nx * ny
		m := distmap.NewBlock(n, c.Size())
		// Non-symmetric matrix so the transpose is distinguishable.
		a := NewCrsMatrix(c, m)
		me := c.Rank()
		for l := 0; l < m.LocalCount(me); l++ {
			g := m.LocalToGlobal(me, l)
			a.InsertGlobal(g, g, 2)
			if g+1 < n {
				a.InsertGlobal(g, g+1, float64(g)+1) // upper band only
			}
		}
		a.FillComplete()
		at := a.TransposeDist()
		// Serial check.
		want := a.GatherCSR().Transpose()
		got := at.GatherCSR()
		if !got.Equal(want) {
			return fmt.Errorf("distributed transpose differs from serial")
		}
		// Transposing twice returns the original.
		back := at.TransposeDist().GatherCSR()
		if !back.Equal(a.GatherCSR()) {
			return fmt.Errorf("double transpose not identity")
		}
		return nil
	})
}

func TestGatherCSRRoundTrip(t *testing.T) {
	const n = 19
	want := serialLaplace1D(n)
	onRanks(t, sizes, func(c *comm.Comm) error {
		a := buildLaplace1D(c, distmap.NewCyclic(n, c.Size()))
		got := a.GatherCSR()
		if !got.Equal(want) {
			return fmt.Errorf("gathered CSR differs")
		}
		return nil
	})
}

func TestFromCSRMatchesAssembly(t *testing.T) {
	const n = 15
	serial := serialLaplace1D(n)
	onRanks(t, sizes, func(c *comm.Comm) error {
		m := distmap.NewBlock(n, c.Size())
		a := FromCSR(c, m, serial)
		b := buildLaplace1D(c, m)
		x := NewVector(c, m)
		x.Randomize(5)
		ya := NewVector(c, m)
		yb := NewVector(c, m)
		a.Apply(x, ya)
		b.Apply(x, yb)
		for i := range ya.Data {
			if ya.Data[i] != yb.Data[i] {
				return fmt.Errorf("FromCSR apply differs")
			}
		}
		return nil
	})
}

func TestCrsMatrixStatePanics(t *testing.T) {
	err := comm.Run(1, func(c *comm.Comm) error {
		m := distmap.NewBlock(4, 1)
		a := NewCrsMatrix(c, m)
		// Apply before FillComplete panics.
		//lint:allow p2pmatch Immediately-invoked recover wrapper around a must-panic Apply; no traffic precedes the panic
		func() {
			defer func() { recover() }()
			a.Apply(NewVector(c, m), NewVector(c, m))
			panic("unreachable")
		}()
		a.InsertGlobal(0, 0, 1)
		a.FillComplete()
		if !a.Filled() {
			return fmt.Errorf("Filled false")
		}
		// Double FillComplete panics.
		func() {
			defer func() { recover() }()
			a.FillComplete()
			panic("unreachable")
		}()
		// Insert after FillComplete panics.
		func() {
			defer func() { recover() }()
			a.InsertGlobal(0, 0, 1)
			panic("unreachable")
		}()
		if a.String() == "" {
			return fmt.Errorf("String")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForeignRowAssembly verifies Tpetra-style export-on-fill: each rank
// contributes to rows it does not own (finite-element boundary assembly),
// and FillComplete migrates and sums the contributions at their owners.
func TestForeignRowAssembly(t *testing.T) {
	onRanks(t, []int{2, 3, 4}, func(c *comm.Comm) error {
		n := 8
		m := distmap.NewBlock(n, c.Size())
		a := NewCrsMatrix(c, m)
		// Every rank adds 1 to every diagonal entry, owned or not.
		for g := 0; g < n; g++ {
			a.InsertGlobal(g, g, 1)
		}
		a.FillComplete()
		d := a.Diagonal()
		for g := 0; g < n; g++ {
			if got := d.GetGlobal(g); got != float64(c.Size()) {
				return fmt.Errorf("diag[%d]=%g want %d", g, got, c.Size())
			}
		}
		return nil
	})
}

func TestExportAddSumsAtOwner(t *testing.T) {
	onRanks(t, []int{1, 2, 4}, func(c *comm.Comm) error {
		n := 10
		m := distmap.NewBlock(n, c.Size())
		v := NewVector(c, m)
		// Every rank contributes rank+1 to element 0 and 1 to its own first
		// element.
		ExportAdd(v, []int{0}, []float64{float64(c.Rank() + 1)})
		want := 0.0
		for r := 0; r < c.Size(); r++ {
			want += float64(r + 1)
		}
		if got := v.GetGlobal(0); got != want {
			return fmt.Errorf("v[0]=%g want %g", got, want)
		}
		// Repeatable (accumulates).
		ExportAdd(v, []int{n - 1, n - 1}, []float64{1, 2})
		if got := v.GetGlobal(n - 1); got != 3*float64(c.Size()) {
			return fmt.Errorf("v[n-1]=%g want %g", got, 3*float64(c.Size()))
		}
		return nil
	})
}

func TestExportAddValidation(t *testing.T) {
	err := comm.Run(1, func(c *comm.Comm) error {
		v := NewVector(c, distmap.NewBlock(4, 1))
		defer func() { recover() }()
		//lint:allow p2pmatch Deliberate: the length-mismatched ExportAdd must panic before communicating; recover is armed
		ExportAdd(v, []int{0, 1}, []float64{1})
		return fmt.Errorf("expected panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: distributed SpMV on random sparse matrices over random maps
// matches the serial product.
func TestCrsMatrixApplyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		p := 1 + rng.Intn(4)
		coo := sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 3)
			for k := 0; k < 2; k++ {
				coo.Add(i, rng.Intn(n), rng.NormFloat64())
			}
		}
		serial := coo.ToCSR()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		serial.MulVec(x, want)
		ok := true
		err := comm.Run(p, func(c *comm.Comm) error {
			m := distmap.NewCyclic(n, c.Size())
			//lint:allow p2pmatch FromCSR distributes rows through the vetted import plan protocol at several P
			a := FromCSR(c, m, serial)
			xv := NewVector(c, m)
			xv.FillFromGlobal(func(g int) float64 { return x[g] })
			yv := NewVector(c, m)
			a.Apply(xv, yv)
			full := yv.GatherAll()
			for g := range full {
				if math.Abs(full[g]-want[g]) > 1e-10 {
					return fmt.Errorf("mismatch at %d", g)
				}
			}
			return nil
		})
		if err != nil {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
