package tpetra

import (
	"fmt"
	"math"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
)

// onRanks runs fn on a fresh communicator of each size in ps, failing the
// test on any error.
func onRanks(t *testing.T, ps []int, fn func(c *comm.Comm) error) {
	t.Helper()
	for _, p := range ps {
		if err := comm.Run(p, fn); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

var sizes = []int{1, 2, 3, 4, 7}

func TestVectorLifecycle(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		m := distmap.NewBlock(23, c.Size())
		v := NewVector(c, m)
		if v.GlobalLen() != 23 {
			return fmt.Errorf("GlobalLen = %d", v.GlobalLen())
		}
		if v.LocalLen() != m.LocalCount(c.Rank()) {
			return fmt.Errorf("LocalLen = %d", v.LocalLen())
		}
		if v.Comm() != c || v.Map() != m {
			return fmt.Errorf("accessors broken")
		}
		if v.String() == "" {
			return fmt.Errorf("String")
		}
		return nil
	})
}

func TestVectorMapRankMismatch(t *testing.T) {
	err := comm.Run(2, func(c *comm.Comm) error {
		defer func() { recover() }()
		NewVector(c, distmap.NewBlock(10, 3))
		return fmt.Errorf("expected panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDotAndNormsMatchSerial(t *testing.T) {
	const n = 57
	// Serial reference.
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = math.Sin(float64(i) * 0.7)
	}
	var wantDot, wantSq, want1 float64
	var wantInf float64
	for _, x := range ref {
		wantDot += x * (2 * x)
		wantSq += x * x
		want1 += math.Abs(x)
		if a := math.Abs(x); a > wantInf {
			wantInf = a
		}
	}
	onRanks(t, sizes, func(c *comm.Comm) error {
		for _, m := range []*distmap.Map{
			distmap.NewBlock(n, c.Size()),
			distmap.NewCyclic(n, c.Size()),
			distmap.NewBlockCyclic(n, c.Size(), 4),
		} {
			v := NewVector(c, m)
			v.FillFromGlobal(func(g int) float64 { return math.Sin(float64(g) * 0.7) })
			w := v.Clone()
			w.Scale(2)
			if got := v.Dot(w); math.Abs(got-wantDot) > 1e-10 {
				return fmt.Errorf("%v: Dot=%g want %g", m, got, wantDot)
			}
			if got := v.Norm2(); math.Abs(got-math.Sqrt(wantSq)) > 1e-10 {
				return fmt.Errorf("%v: Norm2=%g", m, got)
			}
			if got := v.Norm1(); math.Abs(got-want1) > 1e-10 {
				return fmt.Errorf("%v: Norm1=%g", m, got)
			}
			if got := v.NormInf(); math.Abs(got-wantInf) > 1e-12 {
				return fmt.Errorf("%v: NormInf=%g", m, got)
			}
		}
		return nil
	})
}

func TestUpdateAxpyScale(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		m := distmap.NewBlock(20, c.Size())
		x := NewVector(c, m)
		x.PutScalar(1)
		y := NewVector(c, m)
		y.PutScalar(10)
		y.Axpy(2, x)        // 12
		y.Update(3, x, 0.5) // 3 + 6 = 9
		y.Scale(2)          // 18
		if got := y.MaxValue(); got != 18 {
			return fmt.Errorf("MaxValue=%g", got)
		}
		if got := y.MinValue(); got != 18 {
			return fmt.Errorf("MinValue=%g", got)
		}
		if got := y.MeanValue(); got != 18 {
			return fmt.Errorf("MeanValue=%g", got)
		}
		return nil
	})
}

func TestElementWiseOps(t *testing.T) {
	onRanks(t, []int{1, 3}, func(c *comm.Comm) error {
		m := distmap.NewBlock(10, c.Size())
		x := NewVector(c, m)
		x.FillFromGlobal(func(g int) float64 { return float64(g) - 4.5 })
		y := NewVector(c, m)
		y.PutScalar(2)
		z := NewVector(c, m)
		z.ElementWiseMultiply(x, y)
		if got := z.GetGlobal(9); got != 2*(9-4.5) {
			return fmt.Errorf("mult=%g", got)
		}
		z.Abs(x)
		if got := z.GetGlobal(0); got != 4.5 {
			return fmt.Errorf("abs=%g", got)
		}
		z.Reciprocal(y)
		if got := z.GetGlobal(3); got != 0.5 {
			return fmt.Errorf("recip=%g", got)
		}
		return nil
	})
}

func TestGatherAllOrdering(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		for _, m := range []*distmap.Map{
			distmap.NewBlock(13, c.Size()),
			distmap.NewCyclic(13, c.Size()),
		} {
			v := NewVector(c, m)
			v.FillFromGlobal(func(g int) float64 { return float64(g * g) })
			full := v.GatherAll()
			for g, x := range full {
				if x != float64(g*g) {
					return fmt.Errorf("%v: full[%d]=%g", m, g, x)
				}
			}
		}
		return nil
	})
}

func TestSetGetGlobal(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		m := distmap.NewCyclic(11, c.Size())
		v := NewVector(c, m)
		for g := 0; g < 11; g++ {
			v.SetGlobal(g, float64(100+g))
		}
		for g := 0; g < 11; g++ {
			if got := v.GetGlobal(g); got != float64(100+g) {
				return fmt.Errorf("GetGlobal(%d)=%g", g, got)
			}
		}
		return nil
	})
}

func TestRandomizeDeterministic(t *testing.T) {
	onRanks(t, []int{3}, func(c *comm.Comm) error {
		m := distmap.NewBlock(30, c.Size())
		a := NewVector(c, m)
		a.Randomize(7)
		b := NewVector(c, m)
		b.Randomize(7)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return fmt.Errorf("same seed differs")
			}
			if a.Data[i] < -1 || a.Data[i] >= 1 {
				return fmt.Errorf("out of range value %g", a.Data[i])
			}
		}
		d := NewVector(c, m)
		d.Randomize(8)
		same := true
		for i := range a.Data {
			if a.Data[i] != d.Data[i] {
				same = false
			}
		}
		if same && len(a.Data) > 0 {
			return fmt.Errorf("different seeds identical")
		}
		return nil
	})
}

func TestConformabilityPanics(t *testing.T) {
	err := comm.Run(2, func(c *comm.Comm) error {
		x := NewVector(c, distmap.NewBlock(10, 2))
		y := NewVector(c, distmap.NewCyclic(10, 2))
		defer func() {
			if recover() == nil {
				panic("expected conformability panic")
			}
		}()
		x.Axpy(1, y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCopyFromClone(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		m := distmap.NewBlock(8, c.Size())
		x := NewVector(c, m)
		x.PutScalar(3)
		y := x.Clone()
		y.Scale(2)
		if x.MaxValue() != 3 {
			return fmt.Errorf("clone aliases")
		}
		x.CopyFrom(y)
		if x.MaxValue() != 6 {
			return fmt.Errorf("CopyFrom")
		}
		return nil
	})
}

func TestMultiVector(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		m := distmap.NewBlock(12, c.Size())
		mv := NewMultiVector(c, m, 3)
		if mv.NumVectors() != 3 || mv.Map() != m {
			return fmt.Errorf("accessors")
		}
		for k := 0; k < 3; k++ {
			mv.Vector(k).PutScalar(float64(k + 1))
		}
		w := NewMultiVector(c, m, 3)
		for k := 0; k < 3; k++ {
			w.Vector(k).PutScalar(1)
		}
		dots := mv.Dot(w)
		for k := 0; k < 3; k++ {
			if dots[k] != float64((k+1)*12) {
				return fmt.Errorf("dots=%v", dots)
			}
		}
		norms := mv.Norm2s()
		for k := 0; k < 3; k++ {
			want := float64(k+1) * math.Sqrt(12)
			if math.Abs(norms[k]-want) > 1e-12 {
				return fmt.Errorf("norms=%v", norms)
			}
		}
		mv.Update(1, w, 1) // col k becomes k+2
		mv.Scale(10)
		if got := mv.Vector(0).MaxValue(); got != 20 {
			return fmt.Errorf("after update/scale: %g", got)
		}
		return nil
	})
}

func TestMultiVectorValidation(t *testing.T) {
	err := comm.Run(1, func(c *comm.Comm) error {
		m := distmap.NewBlock(4, 1)
		defer func() {
			if recover() == nil {
				panic("expected panic for nvec=0")
			}
		}()
		NewMultiVector(c, m, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiVectorRandomize(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		m := distmap.NewBlock(10, c.Size())
		mv := NewMultiVector(c, m, 2)
		mv.Randomize(1)
		// Columns must differ from each other.
		a, b := mv.Vector(0), mv.Vector(1)
		same := true
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				same = false
			}
		}
		if same && len(a.Data) > 0 {
			return fmt.Errorf("columns identical")
		}
		return nil
	})
}
