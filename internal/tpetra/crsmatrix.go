package tpetra

import (
	"fmt"
	"math"
	"sort"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
	"odinhpc/internal/sparse"
)

// CrsMatrix is a row-distributed sparse matrix: each rank stores the rows
// its row map assigns to it. Columns are global during assembly; after
// FillComplete they are renumbered into a local column space consisting of
// the owned domain entries followed by the ghost (off-rank) entries, and a
// GatherPlan is precomputed to fetch ghost values of x on every Apply.
//
// The domain and range maps equal the row map (square operators), which is
// all the solver stack requires.
type CrsMatrix struct {
	c      *comm.Comm
	rowMap *distmap.Map

	// Assembly state (before FillComplete).
	building bool
	coo      *sparse.COO // local rows, global columns
	// Contributions inserted into rows owned by other ranks; migrated to
	// their owners (with summation) during FillComplete, as in Tpetra's
	// insertGlobalValues + fillComplete export.
	foreignRow []int
	foreignCol []int
	foreignVal []float64

	// Assembled state.
	local      *sparse.CSR  // nOwnedRows x (nOwned + nGhost)
	sell       *sparse.SELL // SELL-C-sigma mirror of local when auto-selected
	colGlobals []int        // local column id -> global index
	nOwned     int          // owned domain entries (== local row count)
	ghost      []int        // global indices of ghost columns (sorted)
	plan       *GatherPlan
	// ghostBuf and xFull are matrix-owned Apply scratch, refilled in place
	// by every Apply. Unlike the (pooled, shareable) GatherPlan underneath,
	// this makes the matrix itself single-threaded: one CrsMatrix must not
	// be Applied concurrently from multiple goroutines — planreuse enforces
	// the shape, and a matrix is bound to its communicator anyway.
	ghostBuf []float64
	xFull    []float64
}

// NewCrsMatrix returns an empty matrix in assembly mode over the given row
// map. Insert entries with InsertGlobal, then call FillComplete.
func NewCrsMatrix(c *comm.Comm, rowMap *distmap.Map) *CrsMatrix {
	if rowMap.NumRanks() != c.Size() {
		panic(fmt.Sprintf("tpetra: row map has %d ranks, communicator has %d", rowMap.NumRanks(), c.Size()))
	}
	n := rowMap.NumGlobal()
	return &CrsMatrix{
		c:        c,
		rowMap:   rowMap,
		building: true,
		coo:      sparse.NewCOO(rowMap.LocalCount(c.Rank()), n),
	}
}

// InsertGlobal adds value v at global (row, col). Duplicate insertions are
// summed at FillComplete. Rows owned by other ranks are accepted and
// migrated to their owners during FillComplete (finite-element assembly of
// shared boundary contributions), matching Tpetra's export-on-fill
// semantics.
func (a *CrsMatrix) InsertGlobal(row, col int, v float64) {
	if !a.building {
		panic("tpetra: InsertGlobal after FillComplete")
	}
	owner, local := a.rowMap.GlobalToLocal(row)
	if owner != a.c.Rank() {
		if col < 0 || col >= a.rowMap.NumGlobal() {
			panic(fmt.Sprintf("tpetra: column %d out of range", col))
		}
		a.foreignRow = append(a.foreignRow, row)
		a.foreignCol = append(a.foreignCol, col)
		a.foreignVal = append(a.foreignVal, v)
		return
	}
	a.coo.Add(local, col, v)
}

// FillComplete finishes assembly: off-rank contributions are exported to
// their owning ranks, columns are renumbered into the local column space,
// and the ghost gather plan is built. Collective.
func (a *CrsMatrix) FillComplete() {
	if !a.building {
		panic("tpetra: FillComplete called twice")
	}
	a.building = false
	me := a.c.Rank()
	// Export foreign contributions to their owners.
	outRows := make([][]int, a.c.Size())
	outCols := make([][]int, a.c.Size())
	outVals := make([][]float64, a.c.Size())
	for k, row := range a.foreignRow {
		owner := a.rowMap.Owner(row)
		outRows[owner] = append(outRows[owner], row)
		outCols[owner] = append(outCols[owner], a.foreignCol[k])
		outVals[owner] = append(outVals[owner], a.foreignVal[k])
	}
	a.foreignRow, a.foreignCol, a.foreignVal = nil, nil, nil
	inRows := comm.Alltoall(a.c, outRows)
	inCols := comm.Alltoall(a.c, outCols)
	inVals := comm.Alltoall(a.c, outVals)
	for r := range inRows {
		for k, row := range inRows[r] {
			owner, local := a.rowMap.GlobalToLocal(row)
			if owner != me {
				panic(fmt.Sprintf("tpetra: rank %d received row %d owned by %d", me, row, owner))
			}
			a.coo.Add(local, inCols[r][k], inVals[r][k])
		}
	}
	globalCSR := a.coo.ToCSR() // local rows, global columns
	a.coo = nil
	a.nOwned = a.rowMap.LocalCount(me)

	// Identify ghost columns: referenced globals not owned by this rank.
	ghostSet := make(map[int]bool)
	for _, g := range globalCSR.ColIdx {
		if a.rowMap.Owner(g) != me {
			ghostSet[g] = true
		}
	}
	a.ghost = make([]int, 0, len(ghostSet))
	for g := range ghostSet {
		a.ghost = append(a.ghost, g)
	}
	sort.Ints(a.ghost)
	ghostPos := make(map[int]int, len(a.ghost))
	for k, g := range a.ghost {
		ghostPos[g] = k
	}

	// Renumber columns: owned global -> its x-local index; ghost -> nOwned+k.
	a.colGlobals = make([]int, a.nOwned+len(a.ghost))
	for l := 0; l < a.nOwned; l++ {
		a.colGlobals[l] = a.rowMap.LocalToGlobal(me, l)
	}
	copy(a.colGlobals[a.nOwned:], a.ghost)

	localCols := make([]int, len(globalCSR.ColIdx))
	for k, g := range globalCSR.ColIdx {
		if a.rowMap.Owner(g) == me {
			_, l := a.rowMap.GlobalToLocal(g)
			localCols[k] = l
		} else {
			localCols[k] = a.nOwned + ghostPos[g]
		}
	}
	// Rebuild with local columns (rows keep their order; columns inside a
	// row must be re-sorted since renumbering is not monotone).
	coo := sparse.NewCOO(a.nOwned, a.nOwned+len(a.ghost))
	for i := 0; i < globalCSR.Rows; i++ {
		lo, hi := globalCSR.RowPtr[i], globalCSR.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			coo.Add(i, localCols[k], globalCSR.Val[k])
		}
	}
	a.local = coo.ToCSR()
	a.refreshSell()
	a.plan = NewGatherPlan(a.c, a.rowMap, a.ghost)
	a.ghostBuf = make([]float64, len(a.ghost))
	a.xFull = make([]float64, a.nOwned+len(a.ghost))
}

// refreshSell rebuilds (or drops) the SELL-C-sigma mirror of the local
// block per the format auto-selector. Called after assembly and after any
// operation that mutates local values. The conversion is bitwise-neutral:
// SELL kernels accumulate each row in the same order as CSR.
func (a *CrsMatrix) refreshSell() {
	if sparse.ChooseFormat(a.local) == sparse.FormatSELL {
		a.sell = sparse.NewSELL(a.local)
	} else {
		a.sell = nil
	}
}

// SpmvFormat reports which local format Apply is using.
func (a *CrsMatrix) SpmvFormat() sparse.Format {
	a.mustBeFilled()
	if a.sell != nil {
		return sparse.FormatSELL
	}
	return sparse.FormatCSR
}

// Map returns the row (and domain, and range) map.
func (a *CrsMatrix) Map() *distmap.Map { return a.rowMap }

// Comm returns the communicator.
func (a *CrsMatrix) Comm() *comm.Comm { return a.c }

// Filled reports whether FillComplete has run.
func (a *CrsMatrix) Filled() bool { return !a.building }

// NumGhost returns the number of off-rank columns this rank references —
// the per-Apply communication volume in elements.
func (a *CrsMatrix) NumGhost() int { return len(a.ghost) }

// LocalNNZ returns the number of stored entries on this rank.
func (a *CrsMatrix) LocalNNZ() int {
	a.mustBeFilled()
	return a.local.NNZ()
}

// GlobalNNZ returns the total stored entries across ranks. Collective.
func (a *CrsMatrix) GlobalNNZ() int {
	return comm.AllreduceScalar(a.c, a.LocalNNZ(), comm.OpSum)
}

func (a *CrsMatrix) mustBeFilled() {
	if a.building {
		panic("tpetra: operation requires FillComplete")
	}
}

// Apply computes y = A x. Both vectors must be distributed by the row map.
// Collective: performs the ghost exchange then a local SpMV. Apply refills
// the matrix-owned ghost/xFull scratch, so a CrsMatrix is single-threaded;
// serialize Applies of one matrix (a warm rank group does this naturally).
func (a *CrsMatrix) Apply(x, y *Vector) {
	a.mustBeFilled()
	if !x.Map().SameAs(a.rowMap) || !y.Map().SameAs(a.rowMap) {
		panic("tpetra: Apply vectors must use the matrix row map")
	}
	a.plan.Gather(a.c, x.Data, a.ghostBuf)
	copy(a.xFull[:a.nOwned], x.Data)
	copy(a.xFull[a.nOwned:], a.ghostBuf)
	if a.sell != nil {
		a.sell.MulVec(a.xFull, y.Data)
	} else {
		a.local.MulVec(a.xFull, y.Data)
	}
}

// Diagonal returns the matrix diagonal as a distributed vector.
func (a *CrsMatrix) Diagonal() *Vector {
	a.mustBeFilled()
	d := NewVector(a.c, a.rowMap)
	for l := 0; l < a.nOwned; l++ {
		d.Data[l] = a.local.At(l, l) // owned column l corresponds to owned row l
	}
	return d
}

// Scale multiplies every stored entry by alpha.
func (a *CrsMatrix) Scale(alpha float64) {
	a.mustBeFilled()
	a.local.Scale(alpha)
	if a.sell != nil {
		a.sell.Scale(alpha)
	}
}

// LeftScale scales row i by d[i] (d distributed by the row map).
func (a *CrsMatrix) LeftScale(d *Vector) {
	a.mustBeFilled()
	if !d.Map().SameAs(a.rowMap) {
		panic("tpetra: LeftScale vector must use the row map")
	}
	for i := 0; i < a.local.Rows; i++ {
		for k := a.local.RowPtr[i]; k < a.local.RowPtr[i+1]; k++ {
			a.local.Val[k] *= d.Data[i]
		}
	}
	a.refreshSell() // row scaling is not a uniform Scale; rebuild the mirror
}

// NormFrobenius returns the global Frobenius norm. Collective.
func (a *CrsMatrix) NormFrobenius() float64 {
	a.mustBeFilled()
	var local float64
	for _, v := range a.local.Val {
		local += v * v
	}
	return math.Sqrt(comm.AllreduceScalar(a.c, local, comm.OpSum))
}

// LocalDiagonalBlock extracts this rank's owned-rows x owned-columns block
// as a serial CSR matrix — the sub-operator used by block-Jacobi and
// additive-Schwarz preconditioning.
func (a *CrsMatrix) LocalDiagonalBlock() *sparse.CSR {
	a.mustBeFilled()
	coo := sparse.NewCOO(a.nOwned, a.nOwned)
	for i := 0; i < a.local.Rows; i++ {
		cols, vals := a.local.Row(i)
		for k, j := range cols {
			if j < a.nOwned {
				coo.Add(i, j, vals[k])
			}
		}
	}
	return coo.ToCSR()
}

// LocalRows returns this rank's rows with global column indices, as
// (globalRow, cols, vals) triples via the callback, for algorithms that need
// raw access (AMG setup, gathering).
func (a *CrsMatrix) LocalRows(f func(globalRow int, cols []int, vals []float64)) {
	a.mustBeFilled()
	me := a.c.Rank()
	for i := 0; i < a.local.Rows; i++ {
		lcols, vals := a.local.Row(i)
		gcols := make([]int, len(lcols))
		for k, j := range lcols {
			gcols[k] = a.colGlobals[j]
		}
		f(a.rowMap.LocalToGlobal(me, i), gcols, vals)
	}
}

// TransposeDist returns A^T with the same row map, assembled in parallel:
// each rank re-inserts its entries with row/column swapped and the
// export-on-fill path routes them to their owners (EpetraExt's sparse
// transpose, paper Table I). Collective.
func (a *CrsMatrix) TransposeDist() *CrsMatrix {
	a.mustBeFilled()
	out := NewCrsMatrix(a.c, a.rowMap)
	a.LocalRows(func(gr int, cols []int, vals []float64) {
		for k := range cols {
			out.InsertGlobal(cols[k], gr, vals[k])
		}
	})
	out.FillComplete()
	return out
}

// GatherCSR assembles the full matrix as a serial CSR on every rank.
// Collective; intended for direct solvers and coarse-grid setup.
func (a *CrsMatrix) GatherCSR() *sparse.CSR {
	a.mustBeFilled()
	n := a.rowMap.NumGlobal()
	// Flatten local triples.
	var ri, ci []int
	var vv []float64
	a.LocalRows(func(gr int, cols []int, vals []float64) {
		for k := range cols {
			ri = append(ri, gr)
			ci = append(ci, cols[k])
			vv = append(vv, vals[k])
		}
	})
	allRI := comm.AllgatherFlat(a.c, ri)
	allCI := comm.AllgatherFlat(a.c, ci)
	allVV := comm.AllgatherFlat(a.c, vv)
	coo := sparse.NewCOO(n, n)
	for k := range allRI {
		coo.Add(allRI[k], allCI[k], allVV[k])
	}
	return coo.ToCSR()
}

// FromCSR distributes a serial CSR matrix (replicated on every rank) over
// the given row map. Collective.
func FromCSR(c *comm.Comm, rowMap *distmap.Map, m *sparse.CSR) *CrsMatrix {
	if m.Rows != rowMap.NumGlobal() || m.Cols != rowMap.NumGlobal() {
		panic(fmt.Sprintf("tpetra: FromCSR shape %dx%d does not match map n=%d", m.Rows, m.Cols, rowMap.NumGlobal()))
	}
	a := NewCrsMatrix(c, rowMap)
	me := c.Rank()
	for l := 0; l < rowMap.LocalCount(me); l++ {
		g := rowMap.LocalToGlobal(me, l)
		cols, vals := m.Row(g)
		for k, j := range cols {
			a.InsertGlobal(g, j, vals[k])
		}
	}
	a.FillComplete()
	return a
}

func (a *CrsMatrix) String() string {
	state := "assembling"
	if !a.building {
		state = fmt.Sprintf("filled, local nnz=%d, ghosts=%d", a.local.NNZ(), len(a.ghost))
	}
	return fmt.Sprintf("CrsMatrix{n=%d, %s}", a.rowMap.NumGlobal(), state)
}
