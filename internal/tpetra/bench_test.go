package tpetra

import (
	"fmt"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
)

// BenchmarkDistributedSpMV measures the full Apply path (ghost exchange +
// local SpMV) on the 1-D Laplacian across rank counts.
func BenchmarkDistributedSpMV(b *testing.B) {
	const n = 1 << 16
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := comm.Run(p, func(c *comm.Comm) error {
				m := distmap.NewBlock(n, c.Size())
				//lint:allow p2pmatch Benchmark preamble builds the distributed matrix through vetted tpetra plan protocols
				a := buildLaplace1D(c, m)
				x := NewVector(c, m)
				x.Randomize(1)
				y := NewVector(c, m)
				c.Barrier()
				for i := 0; i < b.N; i++ {
					a.Apply(x, y)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkGatherPlan separates plan construction (one alltoall of index
// lists) from plan execution (one alltoall of values).
func BenchmarkGatherPlan(b *testing.B) {
	const n = 1 << 14
	const p = 4
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		err := comm.Run(p, func(c *comm.Comm) error {
			m := distmap.NewBlock(n, c.Size())
			needed := []int{0, n / 3, n / 2, n - 1}
			//lint:allow p2pmatch Loop bound is b.N; each iteration builds a gather plan with the vetted two-phase request protocol
			for i := 0; i < b.N; i++ {
				_ = NewGatherPlan(c, m, needed)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
	// ReportAllocs pins the pooled pack scratch: steady-state applies reuse
	// per-call buffers from the plan's pool instead of allocating fresh ones
	// per Gather (see also TestGatherSteadyStateAllocs).
	b.Run("apply", func(b *testing.B) {
		b.ReportAllocs()
		err := comm.Run(p, func(c *comm.Comm) error {
			m := distmap.NewBlock(n, c.Size())
			needed := []int{0, n / 3, n / 2, n - 1}
			//lint:allow p2pmatch Benchmark preamble builds a gather plan with the vetted two-phase request protocol
			plan := NewGatherPlan(c, m, needed)
			local := make([]float64, m.LocalCount(c.Rank()))
			out := make([]float64, len(needed))
			for i := 0; i < b.N; i++ {
				plan.Gather(c, local, out)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkVectorDot measures the collective inner product (local dot +
// Allreduce) across rank counts.
func BenchmarkVectorDot(b *testing.B) {
	const n = 1 << 16
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			err := comm.Run(p, func(c *comm.Comm) error {
				m := distmap.NewBlock(n, c.Size())
				x := NewVector(c, m)
				x.Randomize(1)
				y := NewVector(c, m)
				y.Randomize(2)
				c.Barrier()
				//lint:allow p2pmatch Loop bound is b.N; Dot is one Allreduce per iteration on all ranks
				for i := 0; i < b.N; i++ {
					_ = x.Dot(y)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
