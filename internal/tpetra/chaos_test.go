package tpetra_test

// Chaos conformance of the distributed linear-algebra kernels: Import
// (redistribution), ExportAdd (assembly), CrsMatrix.Apply (halo exchange via
// the ghost GatherPlan), and the vector reductions. Each kernel must match
// its fault-free run bitwise under every fault plan or fail with a typed
// comm.FaultError.

import (
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/comm/chaostest"
	"odinhpc/internal/distmap"
	"odinhpc/internal/tpetra"
)

var chaosSizes = []int{1, 2, 4}

func fillVec(c *comm.Comm, m *distmap.Map) *tpetra.Vector {
	v := tpetra.NewVector(c, m)
	v.FillFromGlobal(func(g int) float64 { return float64(g*g)*0.25 - float64(g) })
	return v
}

func TestChaosTpetraKernels(t *testing.T) {
	const n = 37
	kernels := []chaostest.Kernel{
		{Name: "import-block-to-cyclic", Body: func(c *comm.Comm) (any, error) {
			src := fillVec(c, distmap.NewBlock(n, c.Size()))
			dst := tpetra.ImportVector(src, distmap.NewCyclic(n, c.Size()))
			return dst.GatherAll(), nil
		}},
		{Name: "import-cyclic-to-block", Body: func(c *comm.Comm) (any, error) {
			src := fillVec(c, distmap.NewCyclic(n, c.Size()))
			dst := tpetra.ImportVector(src, distmap.NewBlock(n, c.Size()))
			return append(dst.GatherAll(), float64(dst.LocalLen())), nil
		}},
		{Name: "gatherplan-halo", Body: func(c *comm.Comm) (any, error) {
			m := distmap.NewBlock(n, c.Size())
			v := fillVec(c, m)
			// Each rank requests its block plus one halo element on each side.
			lo, hi := m.BlockRange(c.Rank())
			var needed []int
			if lo > 0 {
				needed = append(needed, lo-1)
			}
			for g := lo; g < hi; g++ {
				needed = append(needed, g)
			}
			if hi < n {
				needed = append(needed, hi)
			}
			plan := tpetra.NewGatherPlan(c, m, needed)
			out := make([]float64, plan.OutLen())
			plan.Gather(c, v.Data, out)
			plan.Gather(c, v.Data, out) // reuse: second apply must agree
			return out, nil
		}},
		{Name: "export-add", Body: func(c *comm.Comm) (any, error) {
			m := distmap.NewBlock(n, c.Size())
			v := tpetra.NewVector(c, m)
			// Every rank contributes to its own block and both neighbors'
			// boundary elements — the FE-assembly pattern.
			lo, hi := m.BlockRange(c.Rank())
			var globals []int
			var vals []float64
			for g := lo; g < hi; g++ {
				globals = append(globals, g)
				vals = append(vals, float64(g)+1)
			}
			if lo > 0 {
				globals = append(globals, lo-1)
				vals = append(vals, 0.5)
			}
			if hi < n {
				globals = append(globals, hi)
				vals = append(vals, 0.25)
			}
			tpetra.ExportAdd(v, globals, vals)
			return v.GatherAll(), nil
		}},
		{Name: "crsmatrix-apply", Body: func(c *comm.Comm) (any, error) {
			m := distmap.NewBlock(n, c.Size())
			a := tpetra.NewCrsMatrix(c, m)
			lo, hi := m.BlockRange(c.Rank())
			for g := lo; g < hi; g++ {
				a.InsertGlobal(g, g, 2)
				if g > 0 {
					a.InsertGlobal(g, g-1, -1)
				}
				if g < n-1 {
					a.InsertGlobal(g, g+1, -1)
				}
			}
			a.FillComplete()
			x := fillVec(c, m)
			y := tpetra.NewVector(c, m)
			a.Apply(x, y)
			a.Apply(y, x) // second apply reuses the ghost plan
			return x.GatherAll(), nil
		}},
		{Name: "vector-reductions", Body: func(c *comm.Comm) (any, error) {
			v := fillVec(c, distmap.NewBlock(n, c.Size()))
			w := fillVec(c, distmap.NewBlock(n, c.Size()))
			w.Scale(-1.5)
			return []float64{v.Dot(w), v.Norm2(), v.Norm1(), v.NormInf(), v.MinValue(), v.MaxValue(), v.MeanValue()}, nil
		}},
	}
	chaostest.Run(t, chaosSizes, 1007, kernels...)
}
