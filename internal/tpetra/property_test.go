package tpetra

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
)

// TestGatherPlanQuick: for random maps and random request lists, Gather
// returns exactly the elements of the assembled global vector.
func TestGatherPlanQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		p := 1 + rng.Intn(4)
		var m *distmap.Map
		switch rng.Intn(3) {
		case 0:
			m = distmap.NewBlock(n, p)
		case 1:
			m = distmap.NewCyclic(n, p)
		default:
			owners := make([]int, n)
			for i := range owners {
				owners[i] = rng.Intn(p)
			}
			m = distmap.NewArbitrary(owners, p)
		}
		// Per-rank random request lists (with duplicates).
		needed := make([][]int, p)
		for r := 0; r < p; r++ {
			k := rng.Intn(10)
			for j := 0; j < k; j++ {
				needed[r] = append(needed[r], rng.Intn(n))
			}
		}
		err := comm.Run(p, func(c *comm.Comm) error {
			v := NewVector(c, m)
			v.FillFromGlobal(func(g int) float64 { return float64(g*g + 3) })
			//lint:allow p2pmatch Gather plans run the vetted two-phase request protocol; the property checks results at random P
			plan := NewGatherPlan(c, m, needed[c.Rank()])
			out := make([]float64, plan.OutLen())
			plan.Gather(c, v.Data, out)
			for k, g := range needed[c.Rank()] {
				if out[k] != float64(g*g+3) {
					return fmt.Errorf("rank %d: out[%d]=%g want %d", c.Rank(), k, out[k], g*g+3)
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestImportChainQuick: importing through a chain of random maps and back
// to the original map is the identity.
func TestImportChainQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		p := 1 + rng.Intn(4)
		mkMap := func() *distmap.Map {
			switch rng.Intn(3) {
			case 0:
				return distmap.NewBlock(n, p)
			case 1:
				return distmap.NewCyclic(n, p)
			default:
				owners := make([]int, n)
				for i := range owners {
					owners[i] = rng.Intn(p)
				}
				return distmap.NewArbitrary(owners, p)
			}
		}
		m0 := distmap.NewBlock(n, p)
		m1, m2 := mkMap(), mkMap()
		err := comm.Run(p, func(c *comm.Comm) error {
			x := NewVector(c, m0)
			x.Randomize(seed)
			//lint:allow p2pmatch ImportVector round-trips through vetted import plans; identity is the property under test
			y := ImportVector(ImportVector(ImportVector(x, m1), m2), m0)
			for i := range x.Data {
				if x.Data[i] != y.Data[i] {
					return fmt.Errorf("chain not identity at %d", i)
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestExportAddQuick: random scattered contributions sum to the same totals
// as a serial accumulation.
func TestExportAddQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		p := 1 + rng.Intn(4)
		// Each rank r contributes contribs[r] = list of (global, value).
		type pair struct {
			g int
			v float64
		}
		contribs := make([][]pair, p)
		want := make([]float64, n)
		for r := 0; r < p; r++ {
			k := rng.Intn(20)
			for j := 0; j < k; j++ {
				pr := pair{rng.Intn(n), float64(rng.Intn(9) - 4)}
				contribs[r] = append(contribs[r], pr)
				want[pr.g] += pr.v
			}
		}
		err := comm.Run(p, func(c *comm.Comm) error {
			m := distmap.NewCyclic(n, p)
			v := NewVector(c, m)
			var gs []int
			var vs []float64
			for _, pr := range contribs[c.Rank()] {
				gs = append(gs, pr.g)
				vs = append(vs, pr.v)
			}
			//lint:allow p2pmatch ExportAdd's owner-directed sends are the vetted export protocol; summed results are asserted
			ExportAdd(v, gs, vs)
			full := v.GatherAll()
			for g := range want {
				if full[g] != want[g] {
					return fmt.Errorf("v[%d]=%g want %g", g, full[g], want[g])
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
