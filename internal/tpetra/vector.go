// Package tpetra implements the distributed linear algebra layer of the
// Trilinos analog: vectors, multivectors, and compressed-row sparse matrices
// distributed over a communicator according to a distmap.Map, plus the
// import/gather communication plans that move data between distributions.
//
// The package mirrors the object model the paper describes in §II: a Map
// fixes the distribution, Vectors hold one local segment per rank, and
// CrsMatrix rows live on the rank that owns them, with off-rank column
// entries fetched through a precomputed communication plan on each Apply.
// Scalars are float64, the Epetra-era restriction the paper contrasts with
// templated Tpetra; the ODIN layer (internal/core) carries the generic
// element types.
package tpetra

import (
	"fmt"
	"math"
	"math/rand"

	"odinhpc/internal/comm"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
	"odinhpc/internal/exec"
)

// Vector is a distributed vector: each rank holds the local segment of the
// global vector described by its Map. All collective methods (Dot, Norm2,
// ...) must be called by every rank of the communicator.
type Vector struct {
	c    *comm.Comm
	m    *distmap.Map
	Data []float64
}

// NewVector returns a zero-initialized distributed vector over map m.
func NewVector(c *comm.Comm, m *distmap.Map) *Vector {
	if m.NumRanks() != c.Size() {
		panic(fmt.Sprintf("tpetra: map has %d ranks, communicator has %d", m.NumRanks(), c.Size()))
	}
	return &Vector{c: c, m: m, Data: make([]float64, m.LocalCount(c.Rank()))}
}

// WrapVector builds a vector around an existing local slice WITHOUT
// copying: the vector and the caller share storage. This is the zero-copy
// handoff the ODIN bridge uses ("ODIN arrays are designed to be optionally
// compatible with Trilinos distributed Vectors", paper §III.E).
func WrapVector(c *comm.Comm, m *distmap.Map, local []float64) *Vector {
	if m.NumRanks() != c.Size() {
		panic(fmt.Sprintf("tpetra: map has %d ranks, communicator has %d", m.NumRanks(), c.Size()))
	}
	if len(local) != m.LocalCount(c.Rank()) {
		panic(fmt.Sprintf("tpetra: WrapVector local length %d, map expects %d", len(local), m.LocalCount(c.Rank())))
	}
	return &Vector{c: c, m: m, Data: local}
}

// Comm returns the communicator the vector lives on.
func (v *Vector) Comm() *comm.Comm { return v.c }

// Map returns the vector's distribution map.
func (v *Vector) Map() *distmap.Map { return v.m }

// LocalLen returns the length of this rank's segment.
func (v *Vector) LocalLen() int { return len(v.Data) }

// GlobalLen returns the global vector length.
func (v *Vector) GlobalLen() int { return v.m.NumGlobal() }

// checkCompat panics unless the two vectors share a distribution.
func (v *Vector) checkCompat(w *Vector, op string) {
	if !v.m.SameAs(w.m) {
		panic(fmt.Sprintf("tpetra: %s requires conformable vectors (%v vs %v)", op, v.m, w.m))
	}
}

// PutScalar sets every element to alpha.
func (v *Vector) PutScalar(alpha float64) {
	data := v.Data
	exec.Default().ParallelFor(len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = alpha
		}
	})
}

// Randomize fills the vector with deterministic pseudo-random values in
// [-1, 1); each rank derives its stream from seed and its rank so the global
// content is independent of P only in distribution, not value (matching
// odin.random semantics: "a specified random seed, different for each node").
func (v *Vector) Randomize(seed int64) {
	rng := rand.New(rand.NewSource(seed + int64(v.c.Rank())*1_000_003))
	for i := range v.Data {
		v.Data[i] = 2*rng.Float64() - 1
	}
}

// FillFromGlobal sets each element from a function of its global index,
// giving P-independent content.
func (v *Vector) FillFromGlobal(f func(g int) float64) {
	r := v.c.Rank()
	for l := range v.Data {
		v.Data[l] = f(v.m.LocalToGlobal(r, l))
	}
}

// Clone returns an independent copy with the same map.
func (v *Vector) Clone() *Vector {
	out := NewVector(v.c, v.m)
	copy(out.Data, v.Data)
	return out
}

// CopyFrom overwrites v's local data with w's (maps must match).
func (v *Vector) CopyFrom(w *Vector) {
	v.checkCompat(w, "CopyFrom")
	copy(v.Data, w.Data)
}

// Scale multiplies the vector by alpha in place.
func (v *Vector) Scale(alpha float64) {
	dense.Scal(alpha, v.Data)
}

// Axpy computes v += alpha*x.
func (v *Vector) Axpy(alpha float64, x *Vector) {
	v.checkCompat(x, "Axpy")
	dense.Axpy(alpha, x.Data, v.Data)
}

// Update computes v = alpha*x + beta*v (the Epetra Update signature).
func (v *Vector) Update(alpha float64, x *Vector, beta float64) {
	v.checkCompat(x, "Update")
	d, xd := v.Data, x.Data
	exec.Default().ParallelFor(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = alpha*xd[i] + beta*d[i]
		}
	})
}

// ElementWiseMultiply computes v[i] = x[i]*y[i].
func (v *Vector) ElementWiseMultiply(x, y *Vector) {
	v.checkCompat(x, "ElementWiseMultiply")
	v.checkCompat(y, "ElementWiseMultiply")
	d, xd, yd := v.Data, x.Data, y.Data
	exec.Default().ParallelFor(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = xd[i] * yd[i]
		}
	})
}

// Reciprocal computes v[i] = 1/x[i]; zero entries produce +Inf as in IEEE.
func (v *Vector) Reciprocal(x *Vector) {
	v.checkCompat(x, "Reciprocal")
	d, xd := v.Data, x.Data
	exec.Default().ParallelFor(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = 1 / xd[i]
		}
	})
}

// Abs computes v[i] = |x[i]|.
func (v *Vector) Abs(x *Vector) {
	v.checkCompat(x, "Abs")
	d, xd := v.Data, x.Data
	exec.Default().ParallelFor(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = math.Abs(xd[i])
		}
	})
}

// Dot returns the global inner product <v, w>. Collective. The local part
// runs on the exec engine; the cross-rank part is the usual allreduce.
func (v *Vector) Dot(w *Vector) float64 {
	v.checkCompat(w, "Dot")
	local := dense.DotSlices(v.Data, w.Data)
	return comm.AllreduceScalar(v.c, local, comm.OpSum)
}

// Norm2 returns the global Euclidean norm. Collective.
func (v *Vector) Norm2() float64 {
	local := dense.DotSlices(v.Data, v.Data)
	return math.Sqrt(comm.AllreduceScalar(v.c, local, comm.OpSum))
}

// Norm1 returns the global 1-norm. Collective.
func (v *Vector) Norm1() float64 {
	return comm.AllreduceScalar(v.c, dense.AsumSlice(v.Data), comm.OpSum)
}

// NormInf returns the global max-norm. Collective.
func (v *Vector) NormInf() float64 {
	return comm.AllreduceScalar(v.c, dense.AmaxSlice(v.Data), comm.OpMax)
}

// MeanValue returns the global arithmetic mean. Collective.
func (v *Vector) MeanValue() float64 {
	return comm.AllreduceScalar(v.c, dense.SumSlice(v.Data), comm.OpSum) / float64(v.m.NumGlobal())
}

// MinValue returns the global minimum element. Collective.
func (v *Vector) MinValue() float64 {
	data := v.Data
	local := exec.ParallelReduce(exec.Default(), len(data), func(lo, hi int) float64 {
		best := math.Inf(1)
		for i := lo; i < hi; i++ {
			if data[i] < best {
				best = data[i]
			}
		}
		return best
	}, math.Min)
	return comm.AllreduceScalar(v.c, local, comm.OpMin)
}

// MaxValue returns the global maximum element. Collective.
func (v *Vector) MaxValue() float64 {
	data := v.Data
	local := exec.ParallelReduce(exec.Default(), len(data), func(lo, hi int) float64 {
		best := math.Inf(-1)
		for i := lo; i < hi; i++ {
			if data[i] > best {
				best = data[i]
			}
		}
		return best
	}, math.Max)
	return comm.AllreduceScalar(v.c, local, comm.OpMax)
}

// GatherAll returns the full global vector, in global order, on every rank.
// Collective; intended for tests and small problems.
func (v *Vector) GatherAll() []float64 {
	parts := comm.Allgather(v.c, v.Data)
	out := make([]float64, v.m.NumGlobal())
	for r, p := range parts {
		for l, x := range p {
			out[v.m.LocalToGlobal(r, l)] = x
		}
	}
	return out
}

// SetGlobal stores value at global index g; only the owning rank writes.
// Non-collective (every rank may call it with the same arguments).
func (v *Vector) SetGlobal(g int, value float64) {
	r, l := v.m.GlobalToLocal(g)
	if r == v.c.Rank() {
		v.Data[l] = value
	}
}

// GetGlobal returns the value at global index g on every rank. Collective:
// the owner broadcasts the element.
func (v *Vector) GetGlobal(g int) float64 {
	r, l := v.m.GlobalToLocal(g)
	var val float64
	if r == v.c.Rank() {
		val = v.Data[l]
	}
	return comm.BcastScalar(v.c, r, val)
}

func (v *Vector) String() string {
	return fmt.Sprintf("Vector{%v, rank %d holds %d}", v.m, v.c.Rank(), len(v.Data))
}

// Operator is anything that can apply a distributed linear operator:
// y = A x, where x and y are vectors over Map(). CrsMatrix implements it,
// as do the preconditioners and the Seamless-compiled matrix-free operators.
type Operator interface {
	Apply(x, y *Vector)
	Map() *distmap.Map
}

// MultiVector is a collection of nvec distributed vectors sharing one map,
// the analog of Epetra_MultiVector used by block solvers and eigensolvers.
type MultiVector struct {
	c    *comm.Comm
	m    *distmap.Map
	cols []*Vector
}

// NewMultiVector returns a zero-initialized multivector with nvec columns.
func NewMultiVector(c *comm.Comm, m *distmap.Map, nvec int) *MultiVector {
	if nvec <= 0 {
		panic(fmt.Sprintf("tpetra: MultiVector needs nvec > 0, got %d", nvec))
	}
	mv := &MultiVector{c: c, m: m, cols: make([]*Vector, nvec)}
	for i := range mv.cols {
		mv.cols[i] = NewVector(c, m)
	}
	return mv
}

// NumVectors returns the number of columns.
func (mv *MultiVector) NumVectors() int { return len(mv.cols) }

// Map returns the shared distribution map.
func (mv *MultiVector) Map() *distmap.Map { return mv.m }

// Vector returns column i (a shared reference, not a copy).
func (mv *MultiVector) Vector(i int) *Vector { return mv.cols[i] }

// Dot returns the column-wise inner products with w. Collective.
func (mv *MultiVector) Dot(w *MultiVector) []float64 {
	if len(mv.cols) != len(w.cols) {
		panic("tpetra: MultiVector.Dot column count mismatch")
	}
	local := make([]float64, len(mv.cols))
	for k := range mv.cols {
		mv.cols[k].checkCompat(w.cols[k], "MultiVector.Dot")
		local[k] = dense.DotSlices(mv.cols[k].Data, w.cols[k].Data)
	}
	return comm.Allreduce(mv.c, local, comm.OpSum)
}

// Norm2s returns the column-wise Euclidean norms. Collective.
func (mv *MultiVector) Norm2s() []float64 {
	local := make([]float64, len(mv.cols))
	for k := range mv.cols {
		local[k] = dense.DotSlices(mv.cols[k].Data, mv.cols[k].Data)
	}
	global := comm.Allreduce(mv.c, local, comm.OpSum)
	for k := range global {
		global[k] = math.Sqrt(global[k])
	}
	return global
}

// Update computes each column: mv = alpha*x + beta*mv.
func (mv *MultiVector) Update(alpha float64, x *MultiVector, beta float64) {
	if len(mv.cols) != len(x.cols) {
		panic("tpetra: MultiVector.Update column count mismatch")
	}
	for k := range mv.cols {
		mv.cols[k].Update(alpha, x.cols[k], beta)
	}
}

// Scale multiplies every column by alpha.
func (mv *MultiVector) Scale(alpha float64) {
	for _, col := range mv.cols {
		col.Scale(alpha)
	}
}

// Randomize fills all columns deterministically from seed.
func (mv *MultiVector) Randomize(seed int64) {
	for k, col := range mv.cols {
		col.Randomize(seed + int64(k)*7_919)
	}
}
