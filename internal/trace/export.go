package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MessageMatrix folds the session's KindSend events into per-pair logical
// message and byte counts, row-major [src*size+dst] — the same shape and
// unit as comm.StatsSnapshot.Msgs/Bytes, so the two must reconcile exactly
// for any run both observed in full (no ring-buffer drops). size is the
// communicator size; events outside [0, size) in either coordinate are
// ignored (process-lane events have Rank -1 and never alias a rank pair).
func (s *Session) MessageMatrix(size int) (msgs, bytes []int64) {
	msgs = make([]int64, size*size)
	bytes = make([]int64, size*size)
	for _, ev := range s.Events() {
		if ev.Kind != KindSend {
			continue
		}
		src, dst := int(ev.Rank), int(ev.Peer)
		if src < 0 || src >= size || dst < 0 || dst >= size {
			continue
		}
		msgs[src*size+dst]++
		bytes[src*size+dst] += ev.Bytes
	}
	return msgs, bytes
}

// chromeEvent is one entry of the Chrome trace_event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry ts+dur, "M" metadata events name the lanes.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // required on "X" events even when 0

	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Lane assignment of the Chrome export: every rank is a process (pid =
// rank + 1, so pids stay positive; pid 1 is rank 0), with the rank's own
// events on tid 1 ("main") and exec-attributed work on one sub-lane per
// pool worker (tid = worker + 2). Events on the process lane (Rank -1,
// e.g. exec chunks, which the shared engine cannot attribute to a rank)
// are grouped under pid 0 ("exec pool") with one thread per worker.
const (
	chromePidExec = 0
	chromeTidMain = 1
)

func chromePid(rank int32) int {
	if rank < 0 {
		return chromePidExec
	}
	return int(rank) + 1
}

func chromeTid(worker int32) int {
	if worker < 0 {
		return chromeTidMain
	}
	return int(worker) + 2
}

// WriteChromeTrace serializes the session as Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto. One lane per rank, one
// sub-lane per worker; spans are "X" complete events with microsecond
// timestamps relative to the session start.
func (s *Session) WriteChromeTrace(w io.Writer) error {
	events := s.Events()
	out := chromeTrace{DisplayTimeUnit: "ms"}

	// Metadata: name every (pid, tid) lane that appears.
	type lane struct{ pid, tid int }
	seen := map[lane]bool{}
	for _, ev := range events {
		l := lane{chromePid(ev.Rank), chromeTid(ev.Worker)}
		if seen[l] {
			continue
		}
		seen[l] = true
		pname := "exec pool"
		if l.pid > 0 {
			pname = fmt.Sprintf("rank %d", l.pid-1)
		}
		tname := "main"
		if l.tid != chromeTidMain {
			tname = fmt.Sprintf("worker %d", l.tid-2)
		}
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", Pid: l.pid, Tid: l.tid,
				Args: map[string]any{"name": pname}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: l.pid, Tid: l.tid,
				Args: map[string]any{"name": tname}},
		)
	}
	// Stable lane order for deterministic output.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		a, b := out.TraceEvents[i], out.TraceEvents[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})

	for _, ev := range events {
		name := ev.Kind.String()
		if ev.Label != "" {
			name = name + ":" + ev.Label
		}
		args := map[string]any{}
		if ev.Peer >= 0 {
			args["peer"] = int(ev.Peer)
		}
		if ev.Tag >= 0 {
			args["tag"] = int(ev.Tag)
		}
		if ev.Bytes > 0 {
			args["bytes"] = ev.Bytes
		}
		switch ev.Kind {
		case KindChunk, KindVM:
			args["lo"], args["hi"] = ev.A, ev.B
		case KindColl:
			args["seq"] = ev.A
		case KindGather:
			args["remote"] = ev.A
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name,
			Cat:  ev.Kind.String(),
			Ph:   "X",
			Ts:   float64(ev.Start) / 1e3,
			Dur:  float64(ev.Dur) / 1e3,
			Pid:  chromePid(ev.Rank),
			Tid:  chromeTid(ev.Worker),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary returns a one-line accounting of the capture, for CLI reports.
func (s *Session) Summary() string {
	counts := map[Kind]int{}
	for _, ev := range s.Events() {
		counts[ev.Kind]++
	}
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	out := fmt.Sprintf("%d events", s.Len())
	for _, k := range kinds {
		out += fmt.Sprintf(" %s=%d", k, counts[k])
	}
	if d := s.Dropped(); d > 0 {
		out += fmt.Sprintf(" dropped=%d", d)
	}
	return out
}
