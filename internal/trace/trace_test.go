package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// The test binary may run with ODINHPC_TRACE set (the verify script's
// trace-enabled pass); every test here installs its own session and
// restores the previous one, so env-driven sessions are never clobbered.
func private(t *testing.T, capacity int) *Session {
	t.Helper()
	prev := Active()
	s := Start(capacity)
	t.Cleanup(func() { Install(prev) })
	return s
}

func TestActiveDisabledIsNil(t *testing.T) {
	prev := Active()
	Install(nil)
	defer Install(prev)
	if Active() != nil {
		t.Fatal("Active() should be nil with no session installed")
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	s := private(t, 16)
	for i := 0; i < 40; i++ {
		s.Emit(Event{Kind: KindSend, Rank: 0, Peer: 1, Start: int64(i)})
	}
	evs := s.Events()
	if len(evs) != 16 {
		t.Fatalf("live events = %d, want ring capacity 16", len(evs))
	}
	// Oldest-first: the survivors are the last 16 pushed.
	if evs[0].Start != 24 || evs[15].Start != 39 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", evs[0].Start, evs[15].Start)
	}
	if d := s.Dropped(); d != 24 {
		t.Fatalf("Dropped() = %d, want 24", d)
	}
}

func TestLanesAreIndependentAndGrowOnDemand(t *testing.T) {
	s := private(t, 64)
	s.Emit(Event{Kind: KindChunk, Rank: -1, Worker: 0})
	s.Emit(Event{Kind: KindSend, Rank: 7, Peer: 0, Bytes: 8})
	s.Emit(Event{Kind: KindSend, Rank: 2, Peer: 1, Bytes: 16})
	if n := s.Len(); n != 3 {
		t.Fatalf("Len() = %d, want 3", n)
	}
	msgs, bytes := s.MessageMatrix(8)
	if msgs[7*8+0] != 1 || bytes[7*8+0] != 8 {
		t.Fatalf("rank 7->0 lane: msgs=%d bytes=%d", msgs[7*8+0], bytes[7*8+0])
	}
	if msgs[2*8+1] != 1 || bytes[2*8+1] != 16 {
		t.Fatalf("rank 2->1 lane: msgs=%d bytes=%d", msgs[2*8+1], bytes[2*8+1])
	}
	var total int64
	for _, m := range msgs {
		total += m
	}
	if total != 2 {
		t.Fatalf("matrix total = %d, want 2 (process-lane event must not count)", total)
	}
}

func TestConcurrentEmit(t *testing.T) {
	s := private(t, 4096)
	var wg sync.WaitGroup
	const ranks, per = 8, 200
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int32) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit(Event{Kind: KindSend, Rank: rank, Peer: (rank + 1) % ranks, Bytes: 8})
			}
		}(int32(r))
	}
	wg.Wait()
	msgs, _ := s.MessageMatrix(ranks)
	for r := 0; r < ranks; r++ {
		if got := msgs[r*ranks+(r+1)%ranks]; got != per {
			t.Fatalf("rank %d lane: %d msgs, want %d", r, got, per)
		}
	}
}

// TestChromeTraceSchema validates the exported JSON against the trace_event
// format contract: a traceEvents array whose entries all carry name/ph/pid/
// tid, with "X" events having non-negative ts and dur — the load-cleanly
// acceptance criterion, checked structurally.
func TestChromeTraceSchema(t *testing.T) {
	s := private(t, 1024)
	s.Emit(Event{Kind: KindColl, Rank: 0, Worker: -1, Peer: -1, Tag: -1, Start: 10, Dur: 5, A: 1, Label: "barrier"})
	s.Emit(Event{Kind: KindSend, Rank: 0, Worker: -1, Peer: 1, Tag: 3, Start: 11, Dur: 1, Bytes: 16})
	s.Emit(Event{Kind: KindRecv, Rank: 1, Worker: -1, Peer: 0, Tag: 3, Start: 12, Dur: 2, Bytes: 16})
	s.Emit(Event{Kind: KindChunk, Rank: -1, Worker: 3, Peer: -1, Tag: -1, Start: 13, Dur: 7, A: 0, B: 4096, Label: "for"})
	s.Emit(Event{Kind: KindVM, Rank: 0, Worker: -1, Peer: -1, Tag: 1024, Start: 14, Dur: 3, A: 0, B: 8192, Label: "vm:00c0ffee"})
	// Zero-duration span: "dur" must still be serialized — the trace_event
	// format requires it on every "X" complete event, and sub-microsecond
	// sends round down to 0.
	s.Emit(Event{Kind: KindSend, Rank: 1, Worker: -1, Peer: 0, Tag: 3, Start: 15, Dur: 0, Bytes: 1})

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
		Unit        string                       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents exported")
	}
	sawX, sawM := 0, 0
	for i, ev := range doc.TraceEvents {
		for _, req := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[req]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, req, ev)
			}
		}
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			t.Fatalf("event %d ph: %v", i, err)
		}
		switch ph {
		case "M":
			sawM++
		case "X":
			sawX++
			var ts float64
			if err := json.Unmarshal(ev["ts"], &ts); err != nil || ts < 0 {
				t.Fatalf("event %d: X event needs non-negative ts, got %s (err %v)", i, ev["ts"], err)
			}
			var dur float64
			if err := json.Unmarshal(ev["dur"], &dur); err != nil || dur < 0 {
				t.Fatalf("event %d: X event needs non-negative dur, got %s (err %v)", i, ev["dur"], err)
			}
			var pid int
			if err := json.Unmarshal(ev["pid"], &pid); err != nil || pid < 0 {
				t.Fatalf("event %d: pid must be a non-negative int, got %s", i, ev["pid"])
			}
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ph)
		}
	}
	if sawX != 6 {
		t.Fatalf("exported %d X events, want 6", sawX)
	}
	if sawM == 0 {
		t.Fatal("no lane-naming metadata events exported")
	}
}

func TestSummaryCountsKinds(t *testing.T) {
	s := private(t, 64)
	s.Emit(Event{Kind: KindSend, Rank: 0, Peer: 1})
	s.Emit(Event{Kind: KindSend, Rank: 1, Peer: 0})
	s.Emit(Event{Kind: KindColl, Rank: 0, Label: "barrier"})
	got := s.Summary()
	want := fmt.Sprintf("%d events send=2 coll=1", 3)
	if got != want {
		t.Fatalf("Summary() = %q, want %q", got, want)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	prev := Active()
	s := Start(1 << 16)
	defer Install(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Emit(Event{Kind: KindSend, Rank: 0, Peer: 1, Bytes: 8, Start: int64(i)})
	}
}

// BenchmarkDisabledProbe measures the pay-for-use fast path: one atomic
// load per instrumentation site when no session is installed.
func BenchmarkDisabledProbe(b *testing.B) {
	prev := Active()
	Install(nil)
	defer Install(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := Active(); s != nil {
			b.Fatal("session unexpectedly active")
		}
	}
}
