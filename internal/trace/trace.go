// Package trace is the per-rank structured tracing and metrics layer of the
// repository. The paper's central quantitative claims — control messages are
// "tens of bytes" (§III.B), slicing needs "only boundary communication"
// (§III.G), redistribution strategies chosen by communication cost (§III.D) —
// are claims about *who talks to whom, when, and how much*. comm.Stats
// answers "how much" in aggregate; this package records the structure and
// timing of an execution: one event per point-to-point send/recv, per
// collective phase, per exec chunk, per fusion-VM block sweep, and per
// tpetra gather/import/export or slicing halo exchange.
//
// The layer follows the same pay-for-use discipline as the comm fault
// layer's nil-plan fast path: when no session is installed, every
// instrumentation site costs exactly one atomic pointer load and no
// allocation. When a session is active, events go to fixed-capacity
// per-rank ring buffers (oldest events are overwritten, with a drop count),
// so tracing never grows without bound and never blocks the traced code on
// I/O. Exporters (export.go) turn a captured session into a Chrome
// trace_event timeline — one lane per rank, one sub-lane per worker — or a
// per-pair message matrix that reconciles exactly with comm.Stats.
package trace

import (
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event. Each instrumented layer has its own kinds so
// exporters and tests can filter without string matching.
type Kind uint8

// Event kinds.
const (
	// KindSend is one point-to-point send: Peer is the destination rank,
	// Tag the message tag, Bytes the payload size. Exactly one KindSend
	// event is emitted per logical comm.Send call — the same unit
	// comm.Stats counts — so the trace-derived message matrix reconciles
	// with the Stats matrices even under fault plans (retransmits and
	// duplicates perturb delivery, not the logical send count).
	KindSend Kind = iota + 1
	// KindRecv is one blocking receive: Peer is the actual source, Dur the
	// time spent blocked (the per-rank wait profile of a collective).
	KindRecv
	// KindColl spans one collective phase (Label = "barrier", "bcast",
	// "reduce", ...; A = the rank's collective sequence number).
	KindColl
	// KindChunk is one exec-engine chunk execution (Label = "for" or
	// "reduce", Worker = pool worker id, A/B = span bounds [lo, hi)).
	KindChunk
	// KindVM is one fusion register-VM block sweep (Label = plan key hash,
	// A/B = element bounds of the sweep, Tag = VM block size in elements).
	KindVM
	// KindGather spans one tpetra.GatherPlan.Gather apply (A = remote
	// element count, Bytes = remote bytes this rank requested).
	KindGather
	// KindPlan spans one tpetra.NewGatherPlan construction.
	KindPlan
	// KindImport spans one tpetra.Import.Apply (redistribution).
	KindImport
	// KindExport spans one tpetra.ExportAdd (assembly scatter-add).
	KindExport
	// KindHalo spans one slicing boundary exchange (ShiftDiff fast path;
	// Bytes = halo bytes shipped by this rank).
	KindHalo
	// KindSlice spans one general slicing/shift operation (gather-based
	// fallback path).
	KindSlice
)

var kindNames = [...]string{
	KindSend: "send", KindRecv: "recv", KindColl: "coll", KindChunk: "chunk",
	KindVM: "vm", KindGather: "gather", KindPlan: "plan", KindImport: "import",
	KindExport: "export", KindHalo: "halo", KindSlice: "slice",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "Kind(" + strconv.Itoa(int(k)) + ")"
}

// Event is one recorded span or instant. It is a flat value type — no
// pointers besides the label string — so a ring buffer of events is a single
// allocation and recording is one slot store.
type Event struct {
	Kind   Kind
	Rank   int32 // emitting rank; -1 for process-wide lanes (exec pool)
	Worker int32 // exec pool worker id; -1 when not applicable
	Peer   int32 // counterpart rank (send destination, recv source); -1 n/a
	Tag    int32 // message tag, or kind-specific small scalar; -1 n/a
	Start  int64 // nanoseconds since session start
	Dur    int64 // span duration in nanoseconds (0 for instants)
	Bytes  int64 // payload bytes moved, when meaningful
	A, B   int64 // kind-specific operands (chunk bounds, collective seq, ...)
	Label  string
}

// ring is one lane's fixed-capacity event buffer. Writers from any
// goroutine may share a lane (a rank's exec workers emit on the rank's
// lane), so pushes are mutex-guarded; the critical section is one slot
// store.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	total int64 // events ever pushed; oldest live event is total - len(buf)
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Event, 0, capacity)}
}

func (r *ring) push(ev Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.total%int64(len(r.buf))] = ev
	}
	r.total++
	r.mu.Unlock()
}

// events returns the live events oldest-first.
func (r *ring) events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if r.total <= int64(len(r.buf)) {
		copy(out, r.buf)
		return out
	}
	head := int(r.total % int64(len(r.buf)))
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

func (r *ring) dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d := r.total - int64(len(r.buf)); d > 0 && len(r.buf) == cap(r.buf) {
		return d
	}
	return 0
}

// Session is one tracing capture: a set of per-rank ring buffers plus the
// start instant all event times are relative to. Lanes are created on first
// use (copy-on-write), so a session works for any communicator size without
// pre-declaring P.
type Session struct {
	t0       time.Time
	capacity int
	mu       sync.Mutex // guards lane growth
	lanes    atomic.Pointer[[]*ring]
}

// NewSession returns a detached session (not installed as the active one)
// whose lanes each hold up to capacity events. Capacity below 16 is clamped
// to 16.
func NewSession(capacity int) *Session {
	if capacity < 16 {
		capacity = 16
	}
	s := &Session{t0: time.Now(), capacity: capacity}
	empty := make([]*ring, 0)
	s.lanes.Store(&empty)
	return s
}

// Now returns the current time in nanoseconds since the session started —
// the time base of every event Start.
func (s *Session) Now() int64 { return time.Since(s.t0).Nanoseconds() }

// lane returns the ring for a rank, creating intermediate lanes on demand.
// Rank -1 (process-wide events, e.g. the exec pool) maps to lane 0; rank r
// maps to lane r+1. The fast path is one atomic load and a bounds check.
func (s *Session) lane(rank int32) *ring {
	idx := int(rank) + 1
	if idx < 0 {
		idx = 0
	}
	if ls := *s.lanes.Load(); idx < len(ls) {
		return ls[idx]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := *s.lanes.Load()
	if idx < len(ls) {
		return ls[idx]
	}
	grown := make([]*ring, idx+1)
	copy(grown, ls)
	for i := len(ls); i <= idx; i++ {
		grown[i] = newRing(s.capacity)
	}
	s.lanes.Store(&grown)
	return grown[idx]
}

// Emit records one event on the emitting rank's lane. Safe for concurrent
// use from any goroutine.
func (s *Session) Emit(ev Event) { s.lane(ev.Rank).push(ev) }

// Events returns every live event across all lanes, ordered by Start time
// (ties broken by rank). The session may still be active; the result is a
// consistent per-lane snapshot.
func (s *Session) Events() []Event {
	var out []Event
	for _, r := range *s.lanes.Load() {
		out = append(out, r.events()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Dropped returns how many events were overwritten by ring-buffer overflow
// across all lanes. A non-zero count means the exported timeline is a
// suffix of the run; raise the session capacity to capture everything.
func (s *Session) Dropped() int64 {
	var d int64
	for _, r := range *s.lanes.Load() {
		d += r.dropped()
	}
	return d
}

// Len returns the number of live events across all lanes.
func (s *Session) Len() int {
	n := 0
	for _, r := range *s.lanes.Load() {
		r.mu.Lock()
		n += len(r.buf)
		r.mu.Unlock()
	}
	return n
}

// ---------------------------------------------------------------------------
// The process-wide active session.

var active atomic.Pointer[Session]

// Active returns the installed session, or nil when tracing is off. This is
// the single atomic load every instrumentation site performs on its
// disabled path; callers emit only when the result is non-nil:
//
//	if s := trace.Active(); s != nil {
//		t0 := s.Now()
//		...
//		s.Emit(trace.Event{Kind: ..., Start: t0, Dur: s.Now() - t0})
//	}
func Active() *Session { return active.Load() }

// Start installs a fresh session with the given per-lane capacity as the
// active one (replacing any previous session) and returns it.
func Start(capacity int) *Session {
	s := NewSession(capacity)
	active.Store(s)
	return s
}

// Stop uninstalls the active session and returns it for export; nil when
// tracing was off. Events emitted by goroutines still in flight after Stop
// land harmlessly in the detached session.
func Stop() *Session {
	s := active.Load()
	active.Store(nil)
	return s
}

// Install makes s the active session (nil disables tracing). It is the
// restore half for code that temporarily swaps in a private session:
//
//	prev := trace.Active()
//	own := trace.Start(1 << 16)
//	... traced region ...
//	trace.Stop()
//	trace.Install(prev)
func Install(s *Session) { active.Store(s) }

// EnvVar names the environment variable that auto-starts a session at
// process init: any non-empty value enables tracing, a positive integer
// value sets the per-lane capacity (default 65536). The verify script uses
// it to run the test suites with every enabled-path branch live.
const EnvVar = "ODINHPC_TRACE"

func init() {
	v := os.Getenv(EnvVar)
	if v == "" {
		return
	}
	capacity := 65536
	if n, err := strconv.Atoi(v); err == nil && n > 0 {
		capacity = n
	}
	Start(capacity)
}
