package core

import (
	"fmt"
	"math"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
)

func onRanks(t *testing.T, ps []int, fn func(ctx *Context) error) {
	t.Helper()
	for _, p := range ps {
		err := comm.Run(p, func(c *comm.Comm) error { return fn(NewContext(c)) })
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

var sizes = []int{1, 2, 3, 4}

func TestZerosOnesFull(t *testing.T) {
	onRanks(t, sizes, func(ctx *Context) error {
		a := Zeros[float64](ctx, []int{10})
		if a.GlobalSize() != 10 || a.NDim() != 1 || a.Axis() != 0 {
			return fmt.Errorf("metadata wrong: %v", a)
		}
		if a.Local().Dim(0) != a.Map().LocalCount(ctx.Rank()) {
			return fmt.Errorf("local size wrong")
		}
		o := Ones[int64](ctx, []int{7})
		full := o.Gather()
		for i := 0; i < 7; i++ {
			if full.At(i) != 1 {
				return fmt.Errorf("ones[%d]=%d", i, full.At(i))
			}
		}
		f := Full(ctx, 2.5, []int{5})
		if f.At(3) != 2.5 {
			return fmt.Errorf("full")
		}
		return nil
	})
}

func TestCreationDistributions(t *testing.T) {
	onRanks(t, []int{3}, func(ctx *Context) error {
		for _, opt := range []Options{
			{},
			{Kind: distmap.Cyclic},
			{Kind: distmap.BlockCyclic, BlockSize: 2},
		} {
			a := FromFunc(ctx, []int{11}, func(g []int) float64 { return float64(g[0] * g[0]) }, opt)
			full := a.Gather()
			for i := 0; i < 11; i++ {
				if full.At(i) != float64(i*i) {
					return fmt.Errorf("kind %v: full[%d]=%g", opt.Kind, i, full.At(i))
				}
			}
		}
		// Explicit arbitrary map.
		m := distmap.NewArbitrary([]int{2, 0, 1, 0, 2, 1}, 3)
		a := FromFunc(ctx, []int{6}, func(g []int) float64 { return float64(g[0]) }, Options{Map: m})
		if a.At(4) != 4 {
			return fmt.Errorf("arbitrary map content")
		}
		return nil
	})
}

func TestCreation2DAxis(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		// Distribute a 4x6 array along axis 1.
		a := FromFunc(ctx, []int{4, 6}, func(g []int) float64 {
			return float64(10*g[0] + g[1])
		}, Options{Axis: 1})
		if a.Axis() != 1 {
			return fmt.Errorf("axis")
		}
		if a.Local().Dim(0) != 4 || a.Local().Dim(1) != 3 {
			return fmt.Errorf("local shape %v", a.Local().Shape())
		}
		full := a.Gather()
		for i := 0; i < 4; i++ {
			for j := 0; j < 6; j++ {
				if full.At(i, j) != float64(10*i+j) {
					return fmt.Errorf("full[%d,%d]=%g", i, j, full.At(i, j))
				}
			}
		}
		return nil
	})
}

func TestLinspaceMatchesSerial(t *testing.T) {
	onRanks(t, sizes, func(ctx *Context) error {
		a := Linspace[float64](ctx, 1, 2*math.Pi, 50)
		want := dense.Linspace[float64](1, 2*math.Pi, 50)
		got := a.Gather()
		for i := 0; i < 50; i++ {
			if math.Abs(got.At(i)-want.At(i)) > 1e-15 {
				return fmt.Errorf("linspace[%d]=%g want %g", i, got.At(i), want.At(i))
			}
		}
		return nil
	})
}

func TestArange(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		a := Arange[int64](ctx, 9)
		for g := 0; g < 9; g++ {
			if a.At(g) != int64(g) {
				return fmt.Errorf("arange[%d]=%d", g, a.At(g))
			}
		}
		return nil
	})
}

func TestRandomSeededPerRank(t *testing.T) {
	onRanks(t, []int{3}, func(ctx *Context) error {
		a := Random(ctx, []int{30}, 42)
		b := Random(ctx, []int{30}, 42)
		if !a.Local().Equal(b.Local()) {
			return fmt.Errorf("same seed differs")
		}
		c2 := Random(ctx, []int{30}, 43)
		if a.Local().Size() > 0 && a.Local().Equal(c2.Local()) {
			return fmt.Errorf("different seeds identical")
		}
		full := a.Gather()
		full.Each(func(v float64) {
			if v < 0 || v >= 1 {
				panic("out of range")
			}
		})
		return nil
	})
}

func TestFromDenseRoundTrip(t *testing.T) {
	onRanks(t, sizes, func(ctx *Context) error {
		src := dense.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
		a := FromDense(ctx, src)
		if !a.Gather().Equal(src) {
			return fmt.Errorf("round trip failed")
		}
		return nil
	})
}

func TestAtSetAt(t *testing.T) {
	onRanks(t, sizes, func(ctx *Context) error {
		a := Zeros[float64](ctx, []int{6, 2})
		a.SetAt(7.5, 4, 1)
		if got := a.At(4, 1); got != 7.5 {
			return fmt.Errorf("At=%g", got)
		}
		if got := a.At(4, 0); got != 0 {
			return fmt.Errorf("neighbor disturbed: %g", got)
		}
		return nil
	})
}

func TestConformability(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		a := Zeros[float64](ctx, []int{10})
		b := Zeros[float64](ctx, []int{10})
		if !a.ConformableWith(b) {
			return fmt.Errorf("same layout must conform")
		}
		cyc := Zeros[float64](ctx, []int{10}, Options{Kind: distmap.Cyclic})
		if a.ConformableWith(cyc) {
			return fmt.Errorf("block vs cyclic must not conform")
		}
		shorter := Zeros[float64](ctx, []int{9})
		if a.ConformableWith(shorter) {
			return fmt.Errorf("different shapes must not conform")
		}
		return nil
	})
}

func TestCloneIndependent(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		a := Ones[float64](ctx, []int{8})
		b := a.Clone()
		b.Local().Fill(5)
		if a.At(0) != 1 {
			return fmt.Errorf("clone aliases")
		}
		return nil
	})
}

func TestRedistributeBlockCyclic(t *testing.T) {
	onRanks(t, sizes, func(ctx *Context) error {
		n := 17
		a := FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) + 0.25 })
		for _, m := range []*distmap.Map{
			distmap.NewCyclic(n, ctx.Size()),
			distmap.NewBlockCyclic(n, ctx.Size(), 3),
			distmap.NewBlock(n, ctx.Size()),
		} {
			b := Redistribute(a, m)
			if !b.Map().SameAs(m) {
				return fmt.Errorf("map not adopted")
			}
			full := b.Gather()
			for g := 0; g < n; g++ {
				if full.At(g) != float64(g)+0.25 {
					return fmt.Errorf("%v: [%d]=%g", m, g, full.At(g))
				}
			}
		}
		return nil
	})
}

func TestRedistribute2DSlabs(t *testing.T) {
	onRanks(t, []int{3}, func(ctx *Context) error {
		a := FromFunc(ctx, []int{7, 4}, func(g []int) float64 { return float64(100*g[0] + g[1]) })
		b := Redistribute(a, distmap.NewCyclic(7, ctx.Size()))
		full := b.Gather()
		for i := 0; i < 7; i++ {
			for j := 0; j < 4; j++ {
				if full.At(i, j) != float64(100*i+j) {
					return fmt.Errorf("[%d,%d]=%g", i, j, full.At(i, j))
				}
			}
		}
		return nil
	})
}

func TestRedistributeAxis1(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		a := FromFunc(ctx, []int{3, 8}, func(g []int) float64 { return float64(10*g[0] + g[1]) }, Options{Axis: 1})
		b := Redistribute(a, distmap.NewCyclic(8, ctx.Size()))
		full := b.Gather()
		for i := 0; i < 3; i++ {
			for j := 0; j < 8; j++ {
				if full.At(i, j) != float64(10*i+j) {
					return fmt.Errorf("[%d,%d]=%g", i, j, full.At(i, j))
				}
			}
		}
		return nil
	})
}

func TestRedistributeCost(t *testing.T) {
	onRanks(t, []int{4}, func(ctx *Context) error {
		n := 16
		a := Zeros[float64](ctx, []int{n}) // block
		// Block -> same block: zero cost.
		if got := RedistributeCost(a, distmap.NewBlock(n, 4)); got != 0 {
			return fmt.Errorf("identity cost %d", got)
		}
		// Block -> cyclic: 16 elements, each rank keeps exactly the one
		// whose cyclic owner equals its block owner -> 12 move.
		if got := RedistributeCost(a, distmap.NewCyclic(n, 4)); got != 12 {
			return fmt.Errorf("block->cyclic cost %d want 12", got)
		}
		return nil
	})
}

func TestControlMessagesAreTensOfBytes(t *testing.T) {
	// E1 core assertion: control descriptors are tiny and flow only 0->r.
	err := comm.Run(4, func(c *comm.Comm) error {
		ctx := NewContext(c)
		//lint:allow p2pmatch Control's master-to-worker fan-out is asymmetric by design; its descriptor size bound is the assertion
		buf := ctx.Control(OpCreate, 1000000, 3)
		if len(buf) > 32 {
			return fmt.Errorf("control message %d bytes — not 'tens of bytes'", len(buf))
		}
		op, params := DecodeControl(buf)
		if op != OpCreate || params[0] != 1000000 || params[1] != 3 {
			return fmt.Errorf("decode: %v %v", op, params)
		}
		msgs, bytes := ctx.CtrlStats()
		if c.Rank() == 0 {
			if msgs != 3 || bytes != 3*17 {
				return fmt.Errorf("master stats %d msgs %d bytes", msgs, bytes)
			}
		} else {
			if msgs != 1 || bytes != 17 {
				return fmt.Errorf("worker stats %d msgs %d bytes", msgs, bytes)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestControlCanBeDisabled(t *testing.T) {
	err := comm.Run(2, func(c *comm.Comm) error {
		ctx := NewContext(c)
		ctx.SetControlMessages(false)
		//lint:allow p2pmatch Control with messaging disabled short-circuits before any Send; the stats assert exactly that
		ctx.Control(OpUfunc)
		msgs, _ := ctx.CtrlStats()
		if msgs != 0 {
			return fmt.Errorf("control not disabled")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpCodeString(t *testing.T) {
	if OpCreate.String() != "create" || OpCode(99).String() == "" {
		t.Fatal("OpCode.String")
	}
}

func TestRegisterAndCallLocalHypot(t *testing.T) {
	// The paper's §III.C example: @odin.local hypot(x, y).
	onRanks(t, sizes, func(ctx *Context) error {
		ctx.RegisterLocal("hypot", func(c *comm.Comm, locals ...*dense.Array[float64]) *dense.Array[float64] {
			x, y := locals[0], locals[1]
			return dense.Binary(x, y, func(a, b float64) float64 { return math.Hypot(a, b) })
		})
		if !ctx.LocalRegistered("hypot") {
			return fmt.Errorf("not registered")
		}
		x := FromFunc(ctx, []int{12}, func(g []int) float64 { return 3 * float64(g[0]) })
		y := FromFunc(ctx, []int{12}, func(g []int) float64 { return 4 * float64(g[0]) })
		h, err := ctx.CallLocal("hypot", x, y)
		if err != nil {
			return err
		}
		for g := 0; g < 12; g++ {
			if got := h.At(g); math.Abs(got-5*float64(g)) > 1e-12 {
				return fmt.Errorf("hypot[%d]=%g", g, got)
			}
		}
		return nil
	})
}

func TestCallLocalUnknown(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		x := Zeros[float64](ctx, []int{4})
		if _, err := ctx.CallLocal("nope", x); err == nil {
			return fmt.Errorf("unknown local accepted")
		}
		return nil
	})
}

func TestCallLocalShapeMismatch(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		ctx.RegisterLocal("bad", func(c *comm.Comm, locals ...*dense.Array[float64]) *dense.Array[float64] {
			return dense.Zeros[float64](1) // wrong leading dimension
		})
		x := Zeros[float64](ctx, []int{8})
		if _, err := ctx.CallLocal("bad", x); err == nil {
			return fmt.Errorf("shape mismatch accepted")
		}
		return nil
	})
}

func TestCallLocalSideEffectOnly(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		hit := false
		ctx.RegisterLocal("touch", func(c *comm.Comm, locals ...*dense.Array[float64]) *dense.Array[float64] {
			hit = true
			return nil
		})
		x := Zeros[float64](ctx, []int{4})
		out, err := ctx.CallLocal("touch", x)
		if err != nil || out != nil {
			return fmt.Errorf("side-effect call: %v %v", out, err)
		}
		if !hit {
			return fmt.Errorf("local not invoked")
		}
		return nil
	})
}

func TestValidationPanics(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		for name, fn := range map[string]func(){
			"empty-shape": func() { Zeros[float64](ctx, nil) },
			"bad-axis":    func() { Zeros[float64](ctx, []int{4}, Options{Axis: 2}) },
			"bad-map": func() {
				Zeros[float64](ctx, []int{4}, Options{Map: distmap.NewBlock(5, ctx.Size())})
			},
		} {
			ok := func() (ok bool) {
				defer func() { ok = recover() != nil }()
				fn()
				return false
			}()
			if !ok {
				return fmt.Errorf("%s: expected panic", name)
			}
		}
		return nil
	})
}

// TestComplexAndNarrowDtypes exercises the "arbitrarily typed scalar data"
// claim of second-generation Tpetra (paper §II.C): the same distributed
// array machinery runs on complex128, float32, and int32 elements.
func TestComplexAndNarrowDtypes(t *testing.T) {
	onRanks(t, []int{1, 3}, func(ctx *Context) error {
		// Complex: create, element-wise square, gather, redistribute.
		z := FromFunc(ctx, []int{9}, func(g []int) complex128 {
			return complex(float64(g[0]), -float64(g[0]))
		})
		sq := z.WithLocal(dense.Unary(z.Local(), func(v complex128) complex128 { return v * v }))
		full := sq.Gather()
		for g := 0; g < 9; g++ {
			want := complex(float64(g), -float64(g))
			want *= want
			if full.At(g) != want {
				return fmt.Errorf("complex sq[%d]=%v want %v", g, full.At(g), want)
			}
		}
		rz := Redistribute(z, distmap.NewCyclic(9, ctx.Size()))
		if rz.At(5) != complex(5, -5) {
			return fmt.Errorf("complex redistribute")
		}
		// float32 and int32 narrow types.
		f32 := Full[float32](ctx, 1.5, []int{6})
		if f32.At(3) != 1.5 {
			return fmt.Errorf("float32")
		}
		i32 := Arange[int32](ctx, 6)
		if i32.At(5) != 5 {
			return fmt.Errorf("int32")
		}
		return nil
	})
}

func TestMapFromLocalGlobals(t *testing.T) {
	onRanks(t, []int{1, 2, 4}, func(ctx *Context) error {
		n := 12
		// Each rank claims the globals congruent to its rank (cyclic).
		var mine []int
		for g := ctx.Rank(); g < n; g += ctx.Size() {
			mine = append(mine, g)
		}
		m := MapFromLocalGlobals(ctx, n, mine)
		if !m.SameAs(distmap.NewCyclic(n, ctx.Size())) {
			return fmt.Errorf("reconstructed map differs from cyclic")
		}
		x := FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) }, Options{Map: m})
		if x.At(7) != 7 {
			return fmt.Errorf("array on reconstructed map")
		}
		return nil
	})
}

func TestMapFromLocalGlobalsValidation(t *testing.T) {
	err := comm.Run(2, func(c *comm.Comm) error {
		ctx := NewContext(c)
		// Both ranks claim global 0: must panic.
		defer func() { recover() }()
		//lint:allow p2pmatch Deliberate: the colliding ownership claim must panic inside the exchange; recover is armed
		MapFromLocalGlobals(ctx, 2, []int{0})
		return fmt.Errorf("expected panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWithLocalValidation(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *Context) error {
		a := Zeros[float64](ctx, []int{8})
		ok := func() (ok bool) {
			defer func() { ok = recover() != nil }()
			a.WithLocal(dense.Zeros[float64](99))
			return false
		}()
		if !ok {
			return fmt.Errorf("expected panic")
		}
		// Type-changing wrap keeps distribution.
		ints := WithLocalLike[int64](a, dense.Zeros[int64](a.Local().Dim(0)))
		if ints.GlobalSize() != 8 {
			return fmt.Errorf("WithLocalLike metadata")
		}
		if a.String() == "" {
			return fmt.Errorf("String")
		}
		return nil
	})
}
