// Package core implements ODIN's distributed N-dimensional array — the
// paper's primary contribution. A DistArray couples a dense local segment on
// each rank with a distmap.Map describing how one axis of the global shape
// is distributed. Users interact in the paper's two modes:
//
//   - Global mode: creation routines and whole-array operations that feel
//     like NumPy (Zeros, Linspace, Random, Gather, At). Each global
//     operation issues a small control message from rank 0 to the workers —
//     "very little to no array data ... at most tens of bytes" (§III.B) —
//     which experiments E1/E10 measure.
//   - Local mode: functions registered with RegisterLocal run on each
//     worker against the local segment of the distributed array(s), the
//     analog of the @odin.local decorator (§III.C).
package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"odinhpc/internal/comm"
	"odinhpc/internal/dense"
)

// CtrlTag is the reserved point-to-point tag for ODIN control messages sent
// from the master (rank 0) to workers, mirroring the paper's Fig. 1 star.
// Exported so the odinvet tag registry (internal/analysis/tagregistry) can
// register the control-plane reservation from source.
const CtrlTag = 1 << 30

// OpCode identifies a global operation in a control message.
type OpCode byte

// Control operation codes.
const (
	OpCreate OpCode = iota + 1
	OpUfunc
	OpReduce
	OpSlice
	OpCallLocal
	OpGather
	OpIO
	OpRedistribute
)

func (o OpCode) String() string {
	names := map[OpCode]string{
		OpCreate: "create", OpUfunc: "ufunc", OpReduce: "reduce",
		OpSlice: "slice", OpCallLocal: "call-local", OpGather: "gather",
		OpIO: "io", OpRedistribute: "redistribute",
	}
	if s, ok := names[o]; ok {
		return s
	}
	return fmt.Sprintf("OpCode(%d)", byte(o))
}

// LocalFunc is a worker-side function operating on the local segments of
// one or more distributed arrays, returning the local segment of the result
// (or nil for side-effect-only functions). It may communicate directly with
// other workers through c — the paper's "local functions that communicate
// directly with other worker nodes" escape hatch.
type LocalFunc func(c *comm.Comm, locals ...*dense.Array[float64]) *dense.Array[float64]

// Context is one rank's handle on an ODIN session: the communicator plus
// the registry of local functions and control-traffic accounting.
type Context struct {
	c  *comm.Comm
	mu sync.Mutex
	// locals is the per-rank function registry; RegisterLocal "broadcasts"
	// the function in the sense of Fig. 1 (in-process, registration plus a
	// control message).
	locals      map[string]LocalFunc
	ctrlMsgs    int   // control messages seen by this rank
	ctrlBytes   int64 // control payload bytes seen by this rank
	disableCtrl bool
}

// NewContext wraps a communicator in an ODIN context.
func NewContext(c *comm.Comm) *Context {
	return &Context{c: c, locals: make(map[string]LocalFunc)}
}

// Comm returns the underlying communicator.
func (ctx *Context) Comm() *comm.Comm { return ctx.c }

// Rank returns this rank's index.
func (ctx *Context) Rank() int { return ctx.c.Rank() }

// Size returns the number of ranks.
func (ctx *Context) Size() int { return ctx.c.Size() }

// CtrlStats returns the number of control messages and control payload
// bytes this rank has sent (rank 0) or received (workers).
func (ctx *Context) CtrlStats() (msgs int, bytes int64) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	return ctx.ctrlMsgs, ctx.ctrlBytes
}

// SetControlMessages toggles the emission of explicit control messages;
// they are on by default. Benchmarks isolating data traffic switch them off.
func (ctx *Context) SetControlMessages(on bool) { ctx.disableCtrl = !on }

// ControlMessagesEnabled reports whether control messages are emitted.
// Compound operations save and restore this around their internal steps so
// one user-visible operation issues exactly one control message.
func (ctx *Context) ControlMessagesEnabled() bool { return !ctx.disableCtrl }

// Control issues one global-operation control message: rank 0 sends a small
// descriptor (opcode + parameters, tens of bytes) to every worker; workers
// receive it. Collective. The descriptor is returned for inspection.
func (ctx *Context) Control(op OpCode, params ...int64) []byte {
	buf := make([]byte, 1+8*len(params))
	buf[0] = byte(op)
	for i, p := range params {
		binary.LittleEndian.PutUint64(buf[1+8*i:], uint64(p))
	}
	if ctx.disableCtrl {
		return buf
	}
	if ctx.c.Rank() == 0 {
		for r := 1; r < ctx.c.Size(); r++ {
			ctx.c.Send(r, CtrlTag, buf)
		}
		ctx.mu.Lock()
		ctx.ctrlMsgs += ctx.c.Size() - 1
		ctx.ctrlBytes += int64(len(buf)) * int64(ctx.c.Size()-1)
		ctx.mu.Unlock()
	} else {
		got := ctx.c.Recv(0, CtrlTag).([]byte)
		ctx.mu.Lock()
		ctx.ctrlMsgs++
		ctx.ctrlBytes += int64(len(got))
		ctx.mu.Unlock()
		buf = got
	}
	return buf
}

// DecodeControl splits a control descriptor back into opcode and parameters.
func DecodeControl(buf []byte) (OpCode, []int64) {
	op := OpCode(buf[0])
	params := make([]int64, (len(buf)-1)/8)
	for i := range params {
		params[i] = int64(binary.LittleEndian.Uint64(buf[1+8*i:]))
	}
	return op, params
}

// RegisterLocal registers fn under name on this rank and issues the
// broadcast control message of §III.C ("broadcasts the resulting function
// object to all worker nodes and injects it into their namespace").
// Collective: every rank must register the same name at the same point.
func (ctx *Context) RegisterLocal(name string, fn LocalFunc) {
	ctx.Control(OpCallLocal, int64(len(name)))
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	ctx.locals[name] = fn
}

// LocalRegistered reports whether a local function is available.
func (ctx *Context) LocalRegistered(name string) bool {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	_, ok := ctx.locals[name]
	return ok
}

// CallLocal invokes a registered local function on the local segments of
// the given arrays — the global face of the @odin.local decorator: "when
// called from the global level, a message is broadcast to all worker nodes
// to call their local function" (§III.C). The result, when non-nil, is
// wrapped as a DistArray sharing the first argument's distribution; its
// leading local dimension must therefore match the input's. Collective.
func (ctx *Context) CallLocal(name string, args ...*DistArray[float64]) (*DistArray[float64], error) {
	ctx.Control(OpCallLocal, int64(len(args)))
	ctx.mu.Lock()
	fn, ok := ctx.locals[name]
	ctx.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: local function %q not registered", name)
	}
	locals := make([]*dense.Array[float64], len(args))
	for i, a := range args {
		locals[i] = a.Local()
	}
	out := fn(ctx.c, locals...)
	if out == nil {
		return nil, nil
	}
	if len(args) == 0 {
		return nil, fmt.Errorf("core: local function %q returned data but had no model argument", name)
	}
	model := args[0]
	if out.Dim(model.axis) != model.m.LocalCount(ctx.Rank()) {
		return nil, fmt.Errorf("core: local function %q returned %d rows, distribution expects %d",
			name, out.Dim(model.axis), model.m.LocalCount(ctx.Rank()))
	}
	shape := make([]int, out.NDim())
	for d := 0; d < out.NDim(); d++ {
		shape[d] = out.Dim(d)
	}
	shape[model.axis] = model.shape[model.axis]
	return &DistArray[float64]{ctx: ctx, shape: shape, axis: model.axis, m: model.m, local: out}, nil
}
