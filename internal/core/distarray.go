package core

import (
	"fmt"
	"math/rand"

	"odinhpc/internal/comm"
	"odinhpc/internal/dense"
	"odinhpc/internal/distmap"
)

// DistArray is ODIN's distributed N-dimensional array: the global shape is
// distributed along one axis according to a distmap.Map, and each rank holds
// the corresponding dense local segment. Element types are generic — the
// "arbitrarily typed scalar data" of second-generation Tpetra (§II.C).
type DistArray[T dense.Elem] struct {
	ctx   *Context
	shape []int        // global shape
	axis  int          // distributed axis
	m     *distmap.Map // distribution of shape[axis]
	local *dense.Array[T]
}

// Options controls how a new distributed array is laid out, covering the
// §III.A knobs: distribution kind, block size, distributed axis, and an
// explicit (possibly non-uniform or arbitrary) map.
type Options struct {
	Kind      distmap.Kind // Block (default), Cyclic, BlockCyclic
	BlockSize int          // for BlockCyclic (default 1)
	Axis      int          // distributed axis (default 0)
	Map       *distmap.Map // overrides Kind/BlockSize when set
}

func (o Options) buildMap(ctx *Context, extent int) *distmap.Map {
	if o.Map != nil {
		if o.Map.NumGlobal() != extent {
			panic(fmt.Sprintf("core: explicit map has %d globals, axis extent is %d", o.Map.NumGlobal(), extent))
		}
		if o.Map.NumRanks() != ctx.Size() {
			panic(fmt.Sprintf("core: explicit map has %d ranks, context has %d", o.Map.NumRanks(), ctx.Size()))
		}
		return o.Map
	}
	switch o.Kind {
	case distmap.Cyclic:
		return distmap.NewCyclic(extent, ctx.Size())
	case distmap.BlockCyclic:
		bs := o.BlockSize
		if bs <= 0 {
			bs = 1
		}
		return distmap.NewBlockCyclic(extent, ctx.Size(), bs)
	default:
		return distmap.NewBlock(extent, ctx.Size())
	}
}

func optOf(opts []Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

// newDist allocates the array metadata and its zeroed local segment.
func newDist[T dense.Elem](ctx *Context, shape []int, opt Options) *DistArray[T] {
	if len(shape) == 0 {
		panic("core: arrays need at least one dimension")
	}
	if opt.Axis < 0 || opt.Axis >= len(shape) {
		panic(fmt.Sprintf("core: distributed axis %d out of range for shape %v", opt.Axis, shape))
	}
	m := opt.buildMap(ctx, shape[opt.Axis])
	localShape := make([]int, len(shape))
	copy(localShape, shape)
	localShape[opt.Axis] = m.LocalCount(ctx.Rank())
	gshape := make([]int, len(shape))
	copy(gshape, shape)
	return &DistArray[T]{
		ctx:   ctx,
		shape: gshape,
		axis:  opt.Axis,
		m:     m,
		local: dense.Zeros[T](localShape...),
	}
}

// Zeros returns a zero-filled distributed array of the given global shape.
// Collective.
func Zeros[T dense.Elem](ctx *Context, shape []int, opts ...Options) *DistArray[T] {
	ctx.Control(OpCreate, int64(len(shape)))
	return newDist[T](ctx, shape, optOf(opts))
}

// Full returns a distributed array filled with v. Collective.
func Full[T dense.Elem](ctx *Context, v T, shape []int, opts ...Options) *DistArray[T] {
	a := Zeros[T](ctx, shape, opts...)
	a.local.Fill(v)
	return a
}

// Ones returns a distributed array of ones. Collective.
func Ones[T dense.Elem](ctx *Context, shape []int, opts ...Options) *DistArray[T] {
	var one T
	one++
	return Full(ctx, one, shape, opts...)
}

// FromFunc fills a new array from a function of the global multi-index —
// the P-independent way to create content. Collective.
func FromFunc[T dense.Elem](ctx *Context, shape []int, f func(gidx []int) T, opts ...Options) *DistArray[T] {
	a := Zeros[T](ctx, shape, opts...)
	me := ctx.Rank()
	gidx := make([]int, len(shape))
	a.local.EachIndexed(func(lidx []int, _ T) {
		copy(gidx, lidx)
		gidx[a.axis] = a.m.LocalToGlobal(me, lidx[a.axis])
		a.local.Set(f(gidx), lidx...)
	})
	return a
}

// Linspace returns n evenly spaced values from lo to hi inclusive as a 1-d
// distributed array — odin.linspace of §III.G. Collective.
func Linspace[T dense.Float](ctx *Context, lo, hi T, n int, opts ...Options) *DistArray[T] {
	if n < 1 {
		panic("core: Linspace needs n >= 1")
	}
	d := T(0)
	if n > 1 {
		d = (hi - lo) / T(n-1)
	}
	return FromFunc(ctx, []int{n}, func(g []int) T {
		if g[0] == n-1 {
			return hi
		}
		return lo + T(g[0])*d
	}, opts...)
}

// Arange returns [0, n) as a 1-d distributed array. Collective.
func Arange[T dense.Elem](ctx *Context, n int, opts ...Options) *DistArray[T] {
	ref := dense.Arange[T](n)
	return FromFunc(ctx, []int{n}, func(g []int) T { return ref.At(g[0]) }, opts...)
}

// Random returns a uniform [0,1) random array; each rank seeds its own
// stream from seed and its rank, matching §III.B's odin.rand ("a specified
// random seed, different for each node"). Collective.
func Random(ctx *Context, shape []int, seed int64, opts ...Options) *DistArray[float64] {
	a := Zeros[float64](ctx, shape, opts...)
	rng := rand.New(rand.NewSource(seed + int64(ctx.Rank())*2_654_435_761))
	raw := a.local.Raw()
	for i := range raw {
		raw[i] = rng.Float64()
	}
	return a
}

// FromDense scatters a replicated dense array (identical on every rank)
// into a distributed array. Collective.
func FromDense[T dense.Elem](ctx *Context, src *dense.Array[T], opts ...Options) *DistArray[T] {
	shape := src.Shape()
	a := Zeros[T](ctx, shape, opts...)
	me := ctx.Rank()
	gidx := make([]int, len(shape))
	a.local.EachIndexed(func(lidx []int, _ T) {
		copy(gidx, lidx)
		gidx[a.axis] = a.m.LocalToGlobal(me, lidx[a.axis])
		a.local.Set(src.At(gidx...), lidx...)
	})
	return a
}

// MapFromLocalGlobals builds the arbitrary distribution in which this rank
// owns exactly the given global indices; every global in [0, n) must be
// claimed by exactly one rank. This is the distributed-construction path a
// real cluster uses (each rank knows only its own indices; an allgather
// plays the role of the Epetra directory). Collective.
func MapFromLocalGlobals(ctx *Context, n int, mine []int) *distmap.Map {
	lists := comm.Allgather(ctx.Comm(), mine)
	return distmap.NewFromGlobalLists(n, lists)
}

// Shape returns a copy of the global shape.
func (a *DistArray[T]) Shape() []int {
	out := make([]int, len(a.shape))
	copy(out, a.shape)
	return out
}

// GlobalSize returns the total global element count.
func (a *DistArray[T]) GlobalSize() int {
	n := 1
	for _, s := range a.shape {
		n *= s
	}
	return n
}

// NDim returns the number of dimensions.
func (a *DistArray[T]) NDim() int { return len(a.shape) }

// Axis returns the distributed axis.
func (a *DistArray[T]) Axis() int { return a.axis }

// Map returns the distribution map of the distributed axis.
func (a *DistArray[T]) Map() *distmap.Map { return a.m }

// Context returns the owning ODIN context.
func (a *DistArray[T]) Context() *Context { return a.ctx }

// Local returns this rank's local segment (shared storage, not a copy) —
// the local mode of interaction.
func (a *DistArray[T]) Local() *dense.Array[T] { return a.local }

// ConformableWith reports whether two arrays share shape, axis, and
// distribution — the precondition for communication-free binary ufuncs
// (§III.D).
func (a *DistArray[T]) ConformableWith(b *DistArray[T]) bool {
	if len(a.shape) != len(b.shape) || a.axis != b.axis {
		return false
	}
	for d := range a.shape {
		if a.shape[d] != b.shape[d] {
			return false
		}
	}
	return a.m.SameAs(b.m)
}

// WithLocal returns a new DistArray sharing a's metadata with the given
// local segment, which must match the expected local shape. Used by the
// ufunc layer to wrap results.
func (a *DistArray[T]) WithLocal(local *dense.Array[T]) *DistArray[T] {
	want := a.local.Shape()
	got := local.Shape()
	if len(want) != len(got) {
		panic(fmt.Sprintf("core: WithLocal shape %v, want %v", got, want))
	}
	for d := range want {
		if want[d] != got[d] {
			panic(fmt.Sprintf("core: WithLocal shape %v, want %v", got, want))
		}
	}
	return &DistArray[T]{ctx: a.ctx, shape: a.Shape(), axis: a.axis, m: a.m, local: local}
}

// WithLocalLike wraps a local segment for a different element type U with
// a's distribution metadata.
func WithLocalLike[U, T dense.Elem](a *DistArray[T], local *dense.Array[U]) *DistArray[U] {
	return &DistArray[U]{ctx: a.ctx, shape: a.Shape(), axis: a.axis, m: a.m, local: local}
}

// Clone returns an independent deep copy. Collective only in bookkeeping.
func (a *DistArray[T]) Clone() *DistArray[T] {
	return a.WithLocal(a.local.Clone())
}

// At returns the element at the given global multi-index on every rank
// (the owner broadcasts it). Collective.
func (a *DistArray[T]) At(gidx ...int) T {
	a.ctx.Control(OpGather, 1)
	if len(gidx) != len(a.shape) {
		panic(fmt.Sprintf("core: At index %v for shape %v", gidx, a.shape))
	}
	owner, l := a.m.GlobalToLocal(gidx[a.axis])
	var v T
	if owner == a.ctx.Rank() {
		lidx := make([]int, len(gidx))
		copy(lidx, gidx)
		lidx[a.axis] = l
		v = a.local.At(lidx...)
	}
	return comm.BcastScalar(a.ctx.Comm(), owner, v)
}

// SetAt stores v at the given global multi-index (only the owner writes).
// Every rank must call it with the same arguments. Collective in ordering.
func (a *DistArray[T]) SetAt(v T, gidx ...int) {
	if len(gidx) != len(a.shape) {
		panic(fmt.Sprintf("core: SetAt index %v for shape %v", gidx, a.shape))
	}
	owner, l := a.m.GlobalToLocal(gidx[a.axis])
	if owner == a.ctx.Rank() {
		lidx := make([]int, len(gidx))
		copy(lidx, gidx)
		lidx[a.axis] = l
		a.local.Set(v, lidx...)
	}
}

// Gather materializes the full global array on every rank. Collective;
// intended for small arrays, tests, and IO.
func (a *DistArray[T]) Gather() *dense.Array[T] {
	a.ctx.Control(OpGather, int64(a.GlobalSize()))
	out := dense.Zeros[T](a.shape...)
	flat := comm.Allgather(a.ctx.Comm(), a.local.Flatten())
	// Reconstruct rank by rank: walk each rank's local shape in row-major
	// order and place slabs by global index.
	for r := 0; r < a.ctx.Size(); r++ {
		cnt := a.m.LocalCount(r)
		if cnt == 0 {
			continue
		}
		lshape := make([]int, len(a.shape))
		copy(lshape, a.shape)
		lshape[a.axis] = cnt
		seg := dense.FromSlice(flat[r], lshape...)
		gidx := make([]int, len(a.shape))
		seg.EachIndexed(func(lidx []int, v T) {
			copy(gidx, lidx)
			gidx[a.axis] = a.m.LocalToGlobal(r, lidx[a.axis])
			out.Set(v, gidx...)
		})
	}
	return out
}

// String describes the array without materializing it.
func (a *DistArray[T]) String() string {
	return fmt.Sprintf("DistArray%v{axis=%d, %v}", a.shape, a.axis, a.m)
}

// slabSize returns the number of elements in one cross-section
// perpendicular to the distributed axis.
func (a *DistArray[T]) slabSize() int {
	n := 1
	for d, s := range a.shape {
		if d != a.axis {
			n *= s
		}
	}
	return n
}

// Redistribute returns a copy of x distributed according to newMap (same
// global shape and axis). Communication volume is exactly the slabs whose
// ownership changes — the redistribution primitive behind ODIN's
// non-conformable binary ufuncs (§III.D, experiment E3). Collective.
func Redistribute[T dense.Elem](x *DistArray[T], newMap *distmap.Map) *DistArray[T] {
	ctx := x.ctx
	ctx.Control(OpRedistribute, int64(newMap.NumGlobal()))
	if newMap.NumGlobal() != x.shape[x.axis] {
		panic(fmt.Sprintf("core: Redistribute map size %d != axis extent %d", newMap.NumGlobal(), x.shape[x.axis]))
	}
	out := newDist[T](ctx, x.shape, Options{Axis: x.axis, Map: newMap})
	me := ctx.Rank()
	slab := x.slabSize()

	// The local segments must be walked slab-wise; flatten both with the
	// distributed axis outermost. For axis 0 the row-major layout already
	// has that property; otherwise transpose-copy through FromFunc-style
	// indexing. Axis 0 is the common case and is handled with bulk copies.
	getSlab := func(arr *dense.Array[T], l int, axis int) []T {
		if axis == 0 {
			if arr.IsContiguous() {
				return arr.Raw()[l*slab : (l+1)*slab]
			}
		}
		return arr.Slice(axis, dense.Range{Start: l, Stop: l + 1, Step: 1}).Flatten()
	}
	setSlab := func(arr *dense.Array[T], l int, axis int, vals []T) {
		if axis == 0 && arr.IsContiguous() {
			copy(arr.Raw()[l*slab:(l+1)*slab], vals)
			return
		}
		view := arr.Slice(axis, dense.Range{Start: l, Stop: l + 1, Step: 1})
		i := 0
		view.EachIndexed(func(idx []int, _ T) {
			view.Set(vals[i], idx...)
			i++
		})
	}

	// Pack outgoing slabs per destination rank, in increasing global order.
	outgoing := make([][]T, ctx.Size())
	for l := 0; l < x.m.LocalCount(me); l++ {
		g := x.m.LocalToGlobal(me, l)
		dst, dl := newMap.GlobalToLocal(g)
		vals := getSlab(x.local, l, x.axis)
		if dst == me {
			setSlab(out.local, dl, x.axis, vals)
			continue
		}
		outgoing[dst] = append(outgoing[dst], vals...)
	}
	incoming := comm.Alltoall(ctx.Comm(), outgoing)
	// Unpack: slabs from rank r arrive in increasing source-local (hence
	// increasing global) order; recompute their destinations the same way.
	for r, vals := range incoming {
		if r == me || len(vals) == 0 {
			continue
		}
		pos := 0
		for l := 0; l < x.m.LocalCount(r); l++ {
			g := x.m.LocalToGlobal(r, l)
			dst, dl := newMap.GlobalToLocal(g)
			if dst != me {
				continue
			}
			setSlab(out.local, dl, x.axis, vals[pos:pos+slab])
			pos += slab
		}
		if pos != len(vals) {
			panic(fmt.Sprintf("core: Redistribute unpacked %d of %d values from rank %d", pos, len(vals), r))
		}
	}
	return out
}

// RedistributeCost returns the total number of elements that would cross
// rank boundaries redistributing from x's map to newMap — the metric the
// ufunc strategy chooser minimizes. Collective.
func RedistributeCost[T dense.Elem](x *DistArray[T], newMap *distmap.Map) int {
	me := x.ctx.Rank()
	moved := 0
	for l := 0; l < x.m.LocalCount(me); l++ {
		g := x.m.LocalToGlobal(me, l)
		if newMap.Owner(g) != me {
			moved++
		}
	}
	total := comm.AllreduceScalar(x.ctx.Comm(), moved, comm.OpSum)
	return total * x.slabSize()
}
