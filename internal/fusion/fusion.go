// Package fusion implements ODIN's distributed array expression analysis
// and loop fusion (§III: "ODIN can optimize distributed array expressions.
// These optimizations include: loop fusion, array expression analysis to
// select the appropriate communication strategy between worker nodes").
//
// An Expr is a lazy expression graph over distributed arrays. Eval analyzes
// the graph once — aligning non-conformable leaves with a single
// redistribution each — and then executes the whole expression in one fused
// sweep over the local data, allocating exactly one output array.
// EvalNaive executes the same graph one operation at a time with a
// temporary per node, which is what experiment E5 compares against.
//
// The fused sweep itself runs on a blocked register VM (vm.go): the DAG is
// lowered once to a linear program over scratch vector registers (with
// constant folding and CSE), cached by structural identity, and evaluated
// block by block with tight slice loops — see the "fusion VM" sections of
// README.md and DESIGN.md.
package fusion

import (
	"fmt"
	"math"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
	"odinhpc/internal/exec"
	"odinhpc/internal/trace"
	"odinhpc/internal/ufunc"
)

// traceVM records one fused-sweep span: the plan key (Label), the VM block
// size (Tag), and the element bounds the sweep covered on this rank. s is
// non-nil by contract.
func traceVM(s *trace.Session, rank int32, block, lo, hi int, label string, t0 int64) {
	s.Emit(trace.Event{Kind: trace.KindVM, Rank: rank, Worker: -1,
		Peer: -1, Tag: int32(block), Start: t0, Dur: s.Now() - t0,
		A: int64(lo), B: int64(hi), Label: label})
}

// Expr is a node in a lazy expression graph over float64 DistArrays.
type Expr struct {
	kind  exprKind
	leaf  *core.DistArray[float64]
	slot  int     // leaf slot for kindSliceLeaf (see SliceSlot)
	value float64 // for constants
	un    func(float64) float64
	bin   func(float64, float64) float64
	name  string
	vop   vmOp // register-VM opcode (vmCallUn/vmCallBin for user closures)
	args  []*Expr
}

type exprKind int

const (
	kindLeaf exprKind = iota
	kindConst
	kindUnary
	kindBinary
	kindSliceLeaf
)

// Var wraps a distributed array as an expression leaf.
func Var(x *core.DistArray[float64]) *Expr {
	if x == nil {
		panic("fusion: Var(nil)")
	}
	return &Expr{kind: kindLeaf, leaf: x}
}

// Const wraps a scalar constant.
func Const(v float64) *Expr { return &Expr{kind: kindConst, value: v} }

// Unary builds a custom unary node. The function is opaque to the VM
// compiler: it is invoked per element (in blocked loops) and disables
// program caching and structural CSE for the node, since two closures can
// share a code pointer while capturing different state.
func Unary(name string, f func(float64) float64, a *Expr) *Expr {
	return &Expr{kind: kindUnary, un: f, name: name, vop: vmCallUn, args: []*Expr{a}}
}

// Binary builds a custom binary node (opaque to the VM, like Unary).
func Binary(name string, f func(float64, float64) float64, a, b *Expr) *Expr {
	return &Expr{kind: kindBinary, bin: f, name: name, vop: vmCallBin, args: []*Expr{a, b}}
}

// builtinUnary constructs a node the VM compiler recognizes by opcode; f is
// kept for the closure reference evaluator and for constant folding.
func builtinUnary(name string, op vmOp, f func(float64) float64, a *Expr) *Expr {
	return &Expr{kind: kindUnary, un: f, name: name, vop: op, args: []*Expr{a}}
}

func builtinBinary(name string, op vmOp, f func(float64, float64) float64, a, b *Expr) *Expr {
	return &Expr{kind: kindBinary, bin: f, name: name, vop: op, args: []*Expr{a, b}}
}

// Add returns e + o.
func (e *Expr) Add(o *Expr) *Expr {
	return builtinBinary("add", vmAdd, func(a, b float64) float64 { return a + b }, e, o)
}

// Sub returns e - o.
func (e *Expr) Sub(o *Expr) *Expr {
	return builtinBinary("sub", vmSub, func(a, b float64) float64 { return a - b }, e, o)
}

// Mul returns e * o.
func (e *Expr) Mul(o *Expr) *Expr {
	return builtinBinary("mul", vmMul, func(a, b float64) float64 { return a * b }, e, o)
}

// Div returns e / o.
func (e *Expr) Div(o *Expr) *Expr {
	return builtinBinary("div", vmDiv, func(a, b float64) float64 { return a / b }, e, o)
}

// Square returns e*e as a single unary node (no duplicated subtree walk).
func (e *Expr) Square() *Expr {
	return builtinUnary("square", vmSquare, func(v float64) float64 { return v * v }, e)
}

// Sqrt returns sqrt(e).
func Sqrt(e *Expr) *Expr { return builtinUnary("sqrt", vmSqrt, math.Sqrt, e) }

// Sin returns sin(e).
func Sin(e *Expr) *Expr { return builtinUnary("sin", vmSin, math.Sin, e) }

// Cos returns cos(e).
func Cos(e *Expr) *Expr { return builtinUnary("cos", vmCos, math.Cos, e) }

// Exp returns exp(e).
func Exp(e *Expr) *Expr { return builtinUnary("exp", vmExp, math.Exp, e) }

// Abs returns |e|.
func Abs(e *Expr) *Expr { return builtinUnary("abs", vmAbs, math.Abs, e) }

// Neg returns -e.
func Neg(e *Expr) *Expr { return builtinUnary("neg", vmNeg, func(v float64) float64 { return -v }, e) }

// Hypot returns sqrt(a^2 + b^2) — the paper's hypot example as one fused
// expression.
func Hypot(a, b *Expr) *Expr { return builtinBinary("hypot", vmHypot, math.Hypot, a, b) }

// Leaves returns the distinct leaf arrays of the expression, in first-visit
// order.
func (e *Expr) Leaves() []*core.DistArray[float64] {
	var out []*core.DistArray[float64]
	seen := map[*core.DistArray[float64]]bool{}
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x.kind == kindLeaf {
			if !seen[x.leaf] {
				seen[x.leaf] = true
				out = append(out, x.leaf)
			}
			return
		}
		for _, a := range x.args {
			walk(a)
		}
	}
	walk(e)
	return out
}

// CountOps returns the number of operation nodes (each of which the naive
// evaluator materializes as a full temporary array).
func (e *Expr) CountOps() int {
	n := 0
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x.kind == kindUnary || x.kind == kindBinary {
			n++
		}
		for _, a := range x.args {
			walk(a)
		}
	}
	walk(e)
	return n
}

func (e *Expr) String() string {
	switch e.kind {
	case kindLeaf:
		return "x"
	case kindSliceLeaf:
		return fmt.Sprintf("s%d", e.slot)
	case kindConst:
		return fmt.Sprintf("%g", e.value)
	case kindUnary:
		return fmt.Sprintf("%s(%s)", e.name, e.args[0])
	default:
		return fmt.Sprintf("%s(%s, %s)", e.name, e.args[0], e.args[1])
	}
}

// Plan is the result of analyzing an expression: the aligned leaves, the
// target distribution (that of the first leaf), and the compiled register
// program (cached across structurally equal expressions).
type Plan struct {
	model         *core.DistArray[float64]
	leafData      [][]float64
	prog          *vmProgram
	expr          *Expr
	slotOf        map[*core.DistArray[float64]]int
	Redistributed int // distinct leaf arrays that needed realignment
	Ops           int // fused operation nodes
}

// Program returns the compiled register program's size: the number of
// vector instructions and the scratch-register pool width.
func (p *Plan) Program() (instrs, regs int) { return len(p.prog.code), p.prog.nregs }

// ProgramString returns a disassembly of the compiled register program.
func (p *Plan) ProgramString() string { return p.prog.String() }

// Analyze validates the expression, aligns every leaf with the first leaf's
// distribution (redistributing where needed — the communication-strategy
// part of expression analysis), and compiles the register program (served
// from the plan cache when a structurally equal expression was compiled
// before). An array appearing k times in the expression is flattened and
// aligned once: leaves are deduplicated by identity, and Redistributed
// counts distinct arrays. Collective when redistribution occurs.
func Analyze(e *Expr) *Plan {
	leaves := e.Leaves()
	if len(leaves) == 0 {
		panic("fusion: expression has no array leaves")
	}
	model := leaves[0]
	p := &Plan{model: model, expr: e, Ops: e.CountOps()}
	aligned := map[*core.DistArray[float64]]*core.DistArray[float64]{}
	for _, l := range leaves {
		if !sameShape(l.Shape(), model.Shape()) {
			panic(fmt.Sprintf("fusion: leaf shapes differ: %v vs %v", l.Shape(), model.Shape()))
		}
		if l.ConformableWith(model) {
			aligned[l] = l
			continue
		}
		if l.Axis() != model.Axis() {
			panic("fusion: leaves distributed over different axes")
		}
		aligned[l] = core.Redistribute(l, model.Map())
		p.Redistributed++
	}
	// Flatten each aligned leaf once; program leaf slot i (first-visit
	// order, the same numbering Leaves() uses) binds to leafData[i].
	p.slotOf = map[*core.DistArray[float64]]int{}
	for _, l := range leaves {
		p.slotOf[l] = len(p.leafData)
		a := aligned[l].Local()
		if a.IsContiguous() {
			p.leafData = append(p.leafData, a.Raw())
		} else {
			p.leafData = append(p.leafData, a.Flatten())
		}
	}
	p.prog = compileProgram(e)
	return p
}

// compileClosure lowers the expression tree into a closure tree evaluated
// per element — the pre-VM fused loop body, kept as the internal reference
// evaluator that the register VM is property-tested against (results must
// agree bitwise for element-wise programs).
func compileClosure(e *Expr, p *Plan) func(int) float64 {
	switch e.kind {
	case kindLeaf:
		data := p.leafData[p.slotOf[e.leaf]]
		return func(i int) float64 { return data[i] }
	case kindConst:
		v := e.value
		return func(int) float64 { return v }
	case kindUnary:
		f := e.un
		arg := compileClosure(e.args[0], p)
		return func(i int) float64 { return f(arg(i)) }
	default:
		f := e.bin
		a := compileClosure(e.args[0], p)
		b := compileClosure(e.args[1], p)
		return func(i int) float64 { return f(a(i), b(i)) }
	}
}

// Execute runs the compiled register program over cache-sized blocks,
// producing the result array in one sweep. The block sweep is chunked over
// the exec engine, so the fused expression gets intra-rank parallelism on
// top of the rank parallelism of the leaves' distribution; every worker
// evaluates with private scratch registers, and the final instruction of
// each block writes directly into the output.
func (p *Plan) Execute() *core.DistArray[float64] {
	n := p.model.Local().Size()
	out := make([]float64, n)
	prog, leaves := p.prog, p.leafData
	block := BlockSize()
	rank := int32(p.model.Context().Comm().Rank())
	exec.Default().ParallelFor(n, func(lo, hi int) {
		s := trace.Active()
		var t0 int64
		if s != nil {
			t0 = s.Now()
		}
		st := prog.getState(block)
		prog.runSpan(st, leaves, out, lo, hi)
		prog.putState(st)
		if s != nil {
			traceVM(s, rank, block, lo, hi, prog.label, t0)
		}
	})
	return p.model.WithLocal(dense.FromSlice(out, p.model.Local().Shape()...))
}

// executeClosure is Execute on the closure reference evaluator.
func (p *Plan) executeClosure() *core.DistArray[float64] {
	n := p.model.Local().Size()
	out := make([]float64, n)
	kernel := compileClosure(p.expr, p)
	exec.Default().ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = kernel(i)
		}
	})
	return p.model.WithLocal(dense.FromSlice(out, p.model.Local().Shape()...))
}

// sumLocal folds the expression over the local elements with the register
// accumulator: each exec chunk runs the block program and adds the result
// blocks left-to-right, which is element-for-element the same association
// as the closure kernel's serial fold over that chunk.
func (p *Plan) sumLocal() float64 {
	n := p.model.Local().Size()
	prog, leaves := p.prog, p.leafData
	block := BlockSize()
	rank := int32(p.model.Context().Comm().Rank())
	return exec.ParallelReduce(exec.Default(), n, func(lo, hi int) float64 {
		if hi <= lo {
			return 0
		}
		s := trace.Active()
		var t0 int64
		if s != nil {
			t0 = s.Now()
		}
		st := prog.getState(block)
		defer prog.putState(st)
		v := prog.sumSpan(st, leaves, lo, hi)
		if s != nil {
			traceVM(s, rank, block, lo, hi, prog.label, t0)
		}
		return v
	}, func(a, b float64) float64 { return a + b })
}

// sumLocalClosure is sumLocal on the closure reference evaluator.
func (p *Plan) sumLocalClosure() float64 {
	n := p.model.Local().Size()
	kernel := compileClosure(p.expr, p)
	return exec.ParallelReduce(exec.Default(), n, func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += kernel(i)
		}
		return acc
	}, func(a, b float64) float64 { return a + b })
}

// Eval analyzes and executes the expression with loop fusion: one control
// message, at most one redistribution per non-conformable leaf, one output
// allocation, zero intermediate temporaries. Collective.
func Eval(e *Expr) *core.DistArray[float64] {
	leaves := e.Leaves()
	if len(leaves) == 0 {
		panic("fusion: expression has no array leaves")
	}
	ctx := leaves[0].Context()
	ctx.Control(core.OpUfunc, int64(e.CountOps()))
	saved := ctx.ControlMessagesEnabled()
	ctx.SetControlMessages(false)
	defer ctx.SetControlMessages(saved)
	return Analyze(e).Execute()
}

// SumEval evaluates the expression and reduces it to its global sum in the
// same fused sweep: no output array is materialized at all (reduction
// fusion, the natural extension of the paper's loop fusion). The reduction
// runs the same block program as Eval with a register accumulator, so the
// local fold is bitwise identical to the closure evaluator's at every pool
// size. Collective.
func SumEval(e *Expr) float64 {
	leaves := e.Leaves()
	if len(leaves) == 0 {
		panic("fusion: expression has no array leaves")
	}
	ctx := leaves[0].Context()
	ctx.Control(core.OpReduce, int64(e.CountOps()))
	saved := ctx.ControlMessagesEnabled()
	ctx.SetControlMessages(false)
	defer ctx.SetControlMessages(saved)
	return comm.AllreduceScalar(ctx.Comm(), Analyze(e).sumLocal(), comm.OpSum)
}

// EvalNaive executes the expression one node at a time, materializing a
// full distributed temporary per operation — NumPy-style eager evaluation,
// the E5 baseline. Its per-node loops run on the same exec engine as the
// fused sweep (through ufunc -> dense), so E5 compares fusion against
// temporaries at equal intra-rank parallelism.
func EvalNaive(e *Expr) *core.DistArray[float64] {
	switch e.kind {
	case kindLeaf:
		return e.leaf.Clone()
	case kindConst:
		panic("fusion: naive evaluation of a bare constant needs an array context")
	case kindUnary:
		arg := EvalNaive(e.args[0])
		return ufunc.Unary(arg, e.un)
	default:
		// Constants fold into Scalar ops to keep shapes consistent.
		if e.args[1].kind == kindConst {
			arg := EvalNaive(e.args[0])
			return ufunc.Scalar(arg, e.args[1].value, e.bin)
		}
		if e.args[0].kind == kindConst {
			arg := EvalNaive(e.args[1])
			v := e.args[0].value
			f := e.bin
			return ufunc.Unary(arg, func(b float64) float64 { return f(v, b) })
		}
		a := EvalNaive(e.args[0])
		b := EvalNaive(e.args[1])
		return ufunc.Binary(a, b, e.bin)
	}
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
