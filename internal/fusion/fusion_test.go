package fusion

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/distmap"
	"odinhpc/internal/ufunc"
)

func onRanks(t *testing.T, ps []int, fn func(ctx *core.Context) error) {
	t.Helper()
	for _, p := range ps {
		err := comm.Run(p, func(c *comm.Comm) error { return fn(core.NewContext(c)) })
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

var sizes = []int{1, 2, 3, 4}

func TestFusedMatchesNaive(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		n := 57
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0])/10 + 0.1 })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return math.Sin(float64(g[0])) })
		exprs := []*Expr{
			Var(x).Add(Var(y)),
			Sqrt(Var(x).Square().Add(Var(y).Square())), // hypot
			Exp(Neg(Var(x))).Mul(Var(y)).Sub(Const(0.5)).Div(Var(x)),
			Abs(Sin(Var(x)).Mul(Cos(Var(y)))),
			Hypot(Var(x), Var(y)),
		}
		for i, e := range exprs {
			fused := Eval(e)
			naive := EvalNaive(e)
			if !ufunc.AllClose(fused, naive, 1e-14, 1e-14) {
				return fmt.Errorf("expr %d (%s): fused != naive", i, e)
			}
		}
		return nil
	})
}

func TestFusedHypotMatchesDirect(t *testing.T) {
	// The paper's hypot example via fusion vs. the direct ufunc.
	onRanks(t, sizes, func(ctx *core.Context) error {
		x := core.Random(ctx, []int{100}, 1)
		y := core.Random(ctx, []int{100}, 2)
		fused := Eval(Sqrt(Var(x).Square().Add(Var(y).Square())))
		direct := ufunc.Hypot(x, y)
		if !ufunc.AllClose(fused, direct, 1e-14, 1e-14) {
			return fmt.Errorf("hypot mismatch")
		}
		return nil
	})
}

func TestFusionZeroCommunicationWhenConformable(t *testing.T) {
	stats, err := comm.RunStats(4, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false)
		x := core.Random(ctx, []int{500}, 1)
		y := core.Random(ctx, []int{500}, 2)
		c.Barrier()
		if c.Rank() == 0 {
			c.ResetStats()
		}
		c.Barrier()
		_ = Eval(Sqrt(Var(x).Square().Add(Var(y).Square())))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Snapshot().TotalBytes(); got > 64 {
		t.Fatalf("fused conformable expression moved %d bytes", got)
	}
}

func TestFusionRedistributesOnce(t *testing.T) {
	onRanks(t, []int{4}, func(ctx *core.Context) error {
		n := 32
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return 2 * float64(g[0]) },
			core.Options{Kind: distmap.Cyclic})
		// y appears twice but must be redistributed only once (distinct
		// leaves are deduplicated).
		e := Var(x).Add(Var(y)).Mul(Var(y))
		plan := Analyze(e)
		if plan.Redistributed != 1 {
			return fmt.Errorf("redistributed %d leaves, want 1", plan.Redistributed)
		}
		got := plan.Execute()
		for g := 0; g < n; g++ {
			want := (float64(g) + 2*float64(g)) * 2 * float64(g)
			if got.At(g) != want {
				return fmt.Errorf("[%d]=%g want %g", g, got.At(g), want)
			}
		}
		return nil
	})
}

func TestCountOpsAndLeaves(t *testing.T) {
	onRanks(t, []int{1}, func(ctx *core.Context) error {
		x := core.Zeros[float64](ctx, []int{4})
		y := core.Zeros[float64](ctx, []int{4})
		e := Sqrt(Var(x).Square().Add(Var(y).Square()))
		if e.CountOps() != 4 {
			return fmt.Errorf("ops=%d want 4", e.CountOps())
		}
		if len(e.Leaves()) != 2 {
			return fmt.Errorf("leaves=%d", len(e.Leaves()))
		}
		// Same leaf twice counts once.
		e2 := Var(x).Mul(Var(x))
		if len(e2.Leaves()) != 1 {
			return fmt.Errorf("dedup leaves=%d", len(e2.Leaves()))
		}
		return nil
	})
}

func TestExprString(t *testing.T) {
	onRanks(t, []int{1}, func(ctx *core.Context) error {
		x := core.Zeros[float64](ctx, []int{2})
		s := Sqrt(Var(x).Add(Const(1))).String()
		if !strings.Contains(s, "sqrt") || !strings.Contains(s, "add") || !strings.Contains(s, "1") {
			return fmt.Errorf("String = %q", s)
		}
		return nil
	})
}

func TestConstantsInExpressions(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		x := core.FromFunc(ctx, []int{10}, func(g []int) float64 { return float64(g[0]) })
		e := Var(x).Mul(Const(2)).Add(Const(3))
		fused := Eval(e)
		naive := EvalNaive(e)
		for g := 0; g < 10; g++ {
			want := 2*float64(g) + 3
			if fused.At(g) != want || naive.At(g) != want {
				return fmt.Errorf("[%d] fused=%g naive=%g want %g", g, fused.At(g), naive.At(g), want)
			}
		}
		// Constant on the left of a binary op.
		e2 := Const(10).Sub(Var(x))
		if got := EvalNaive(e2).At(3); got != 7 {
			return fmt.Errorf("const-left naive: %g", got)
		}
		if got := Eval(e2).At(3); got != 7 {
			return fmt.Errorf("const-left fused: %g", got)
		}
		return nil
	})
}

func TestFusionValidation(t *testing.T) {
	onRanks(t, []int{2}, func(ctx *core.Context) error {
		x := core.Zeros[float64](ctx, []int{8})
		short := core.Zeros[float64](ctx, []int{7})
		for name, fn := range map[string]func(){
			"no-leaves":      func() { Eval(Const(1).Add(Const(2))) },
			"shape-mismatch": func() { Eval(Var(x).Add(Var(short))) },
			"nil-leaf":       func() { Var(nil) },
		} {
			ok := func() (ok bool) {
				defer func() { ok = recover() != nil }()
				fn()
				return false
			}()
			if !ok {
				return fmt.Errorf("%s: expected panic", name)
			}
		}
		return nil
	})
}

func TestFusion2D(t *testing.T) {
	onRanks(t, []int{3}, func(ctx *core.Context) error {
		x := core.FromFunc(ctx, []int{7, 4}, func(g []int) float64 { return float64(g[0] + g[1]) })
		got := Eval(Var(x).Square())
		full := got.Gather()
		for i := 0; i < 7; i++ {
			for j := 0; j < 4; j++ {
				want := float64((i + j) * (i + j))
				if full.At(i, j) != want {
					return fmt.Errorf("[%d,%d]=%g", i, j, full.At(i, j))
				}
			}
		}
		return nil
	})
}

func TestSumEvalMatchesEvalThenSum(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		x := core.Random(ctx, []int{333}, 1)
		y := core.Random(ctx, []int{333}, 2)
		e := Sqrt(Var(x).Square().Add(Var(y).Square()))
		fusedSum := SumEval(e)
		twoStep := ufunc.Sum(Eval(e))
		if diff := fusedSum - twoStep; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("SumEval %g vs Eval+Sum %g", fusedSum, twoStep)
		}
		return nil
	})
}

func TestSumEvalWithRedistribution(t *testing.T) {
	onRanks(t, []int{3}, func(ctx *core.Context) error {
		n := 30
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return 1 },
			core.Options{Kind: distmap.Cyclic})
		got := SumEval(Var(x).Mul(Var(y)))
		want := float64(n*(n-1)) / 2
		if got != want {
			return fmt.Errorf("got %g want %g", got, want)
		}
		return nil
	})
}
