package fusion

// Single-flight semantics of the compiled-program cache: goroutines racing
// on a cold key must elect exactly one compiler (the sole counted miss);
// everyone else counts a hit and receives the same *vmProgram. Run under
// -race in verify.sh, this also guards the lookup/insert path itself.

import (
	"fmt"
	"sync"
	"testing"
)

// slotChain builds a structurally distinct cacheable expression per depth:
// s0*s1 + s0 + s0 + ... (depth extra adds). Fresh Expr nodes every call, so
// sharing can only come from the cache key.
func slotChain(depth int) *Expr {
	e := SliceSlot(0).Mul(SliceSlot(1))
	for i := 0; i < depth; i++ {
		e = e.Add(SliceSlot(0))
	}
	return e
}

// TestPlanCacheSingleFlight pins exactly-one-miss per cold key: G goroutines
// all compile a structurally equal expression from a cold cache; one miss,
// G-1 hits, and a single shared program must result.
func TestPlanCacheSingleFlight(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	const G = 16
	progs := make([]*vmProgram, G)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := slotChain(3)
			<-start
			progs[i] = compileProgram(e)
		}(i)
	}
	close(start)
	wg.Wait()
	hits, misses := PlanCacheStats()
	if misses != 1 {
		t.Errorf("misses = %d after %d racing compiles of one key, want exactly 1", misses, G)
	}
	if hits != G-1 {
		t.Errorf("hits = %d, want %d", hits, G-1)
	}
	for i := 1; i < G; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d got a distinct program for a shared key", i)
		}
	}
}

// TestPlanCacheConcurrentKeys sweeps G goroutines over K distinct keys each:
// the counters must land on exactly K misses and K*(G-1) hits no matter how
// the compilations interleave.
func TestPlanCacheConcurrentKeys(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	const G, K = 8, 12
	var wg sync.WaitGroup
	errs := make([]error, G)
	start := make(chan struct{})
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for k := 0; k < K; k++ {
				if p := compileProgram(slotChain(k)); p == nil {
					errs[i] = fmt.Errorf("nil program for depth %d", k)
					return
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	hits, misses := PlanCacheStats()
	if misses != K {
		t.Errorf("misses = %d over %d distinct keys, want exactly %d", misses, K, K)
	}
	if hits != K*(G-1) {
		t.Errorf("hits = %d, want %d", hits, K*(G-1))
	}
}
