// Slice-leaf evaluation: the register VM over plain local slices.
//
// The seamless compiled engine lowers whole-array kernel expressions to
// fusion programs, but its arrays are ordinary []float64 frame slots, not
// DistArrays. SliceSlot/EvalSlices give such embedders direct access to the
// VM: leaves are numbered slots bound to caller-supplied slices at
// evaluation time, and programs go through the same structural plan cache
// as Eval, so a kernel re-entered every solver iteration compiles once.
package fusion

import (
	"fmt"

	"odinhpc/internal/exec"
)

// SliceSlot returns a leaf bound to slot i of an EvalSlices call. A slot
// may appear any number of times in one expression; distinct slots must be
// numbered densely from 0, because slot i binds to leaves[i]. Slice leaves
// serialize into the cache key exactly like Var leaves, so a slice
// expression shares its cached program with the structurally identical
// DistArray expression. Mixing SliceSlot and Var leaves in one expression
// panics at lowering time.
func SliceSlot(i int) *Expr {
	if i < 0 {
		panic("fusion: SliceSlot index must be >= 0")
	}
	return &Expr{kind: kindSliceLeaf, slot: i}
}

// EvalSlices evaluates an expression over slice leaves, writing the fused
// result into out: slot i reads leaves[i], and every bound leaf must have
// len(out) elements. The sweep is chunked over the exec engine with
// per-worker scratch registers, like Plan.Execute. Results are bitwise
// identical to evaluating the expression element by element with float64
// closures, superinstructions included (their kernels force intermediate
// rounding).
func EvalSlices(e *Expr, leaves [][]float64, out []float64) {
	p := compileProgram(e)
	if p.nleaves > len(leaves) {
		panic(fmt.Sprintf("fusion: expression uses %d leaf slots, got %d slices", p.nleaves, len(leaves)))
	}
	for i := 0; i < p.nleaves; i++ {
		if len(leaves[i]) != len(out) {
			panic(fmt.Sprintf("fusion: leaf %d has %d elements, output has %d", i, len(leaves[i]), len(out)))
		}
	}
	block := BlockSize()
	exec.Default().ParallelFor(len(out), func(lo, hi int) {
		st := p.getState(block)
		p.runSpan(st, leaves, out, lo, hi)
		p.putState(st)
	})
}
