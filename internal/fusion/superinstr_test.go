package fusion

// Property tests for the superinstruction peephole pass: programs emitted
// with the pass on must be bitwise identical to the unfused programs and
// to the closure reference evaluator, over random mul/add-heavy DAGs
// (the shapes the pass actually rewrites), at every pool size, rank
// count, and block size, including NaN/Inf element paths. Shape tests pin
// the selection rules themselves — what fuses, and just as importantly
// what must not.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/exec"
)

// mulAddGen builds random DAGs biased toward the fusable shapes: long
// Horner chains, axpy-style const scaling, and shared products that the
// pass must leave materialized. Leaves include NaN and Inf elements.
type mulAddGen struct {
	r    *rand.Rand
	vars []*Expr
	pool []*Expr
}

func (g *mulAddGen) leaf() *Expr { return g.vars[g.r.Intn(len(g.vars))] }

func (g *mulAddGen) gen(h int) *Expr {
	if h <= 0 {
		return g.leaf()
	}
	roll := g.r.Float64()
	if roll < 0.15 && len(g.pool) > 0 {
		return g.pool[g.r.Intn(len(g.pool))]
	}
	a := g.gen(h - 1)
	var e *Expr
	switch g.r.Intn(10) {
	case 0, 1: // Horner step: the fma/fma2 shape
		e = a.Mul(g.gen(h - 1)).Add(g.leaf())
	case 2: // mirrored add: fmar
		e = g.leaf().Add(a.Mul(g.gen(h - 1)))
	case 3: // fms
		e = a.Mul(g.gen(h - 1)).Sub(g.leaf())
	case 4: // fmsr
		e = g.leaf().Sub(a.Mul(g.gen(h - 1)))
	case 5: // axpy: const scale then add
		e = a.Mul(Const(math.Round(g.r.NormFloat64()*8) / 4)).Add(g.leaf())
	case 6: // axpyr with the const on the other side of the product
		e = g.leaf().Add(Const(g.r.NormFloat64()).Mul(a))
	case 7: // shared product: both consumers must read a materialized mul
		m := a.Mul(g.leaf())
		e = m.Add(m.Mul(g.leaf()))
	case 8:
		e = a.Mul(g.gen(h - 1))
	default:
		e = a.Add(g.gen(h - 1))
	}
	g.pool = append(g.pool, e)
	return e
}

// opCount tallies the compiled program's opcodes.
func opCount(p *vmProgram) map[vmOp]int {
	m := map[vmOp]int{}
	for _, ins := range p.code {
		m[ins.op]++
	}
	return m
}

func TestSuperinstructionBitwise(t *testing.T) {
	const nExprs = 20
	const n = 163
	const maxDepth = 6
	old := exec.Default()
	defer exec.SetDefault(old)
	defer SetSuperinstructions(true)

	refs := make([][]uint64, nExprs)
	for _, w := range []int{1, 4, 7} {
		exec.SetDefault(exec.New(exec.WithWorkers(w)))
		for _, p := range []int{1, 2, 4} {
			label := fmt.Sprintf("w=%d/P=%d", w, p)
			err := comm.Run(p, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				ctx.SetControlMessages(false)
				// Element-wise leaves include a NaN with a distinctive
				// payload: kernels must propagate it exactly as the
				// two-instruction sequences do.
				vars := []*Expr{
					Var(core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0])/8 - 9 })),
					Var(core.FromFunc(ctx, []int{n}, func(g []int) float64 { return math.Cos(float64(2 * g[0])) })),
					Var(core.FromFunc(ctx, []int{n}, func(g []int) float64 {
						switch g[0] % 11 {
						case 0:
							return math.NaN()
						case 1:
							return math.Inf(1)
						case 2:
							return math.Inf(-1)
						case 3:
							return 0
						default:
							return float64(g[0]%13) - 6
						}
					})),
				}
				// Accumulator leaves carry Inf, signed zero, but no NaN
				// payloads: every NaN a fold meets is then the hardware's
				// canonical quiet NaN (0*Inf, Inf-Inf), so the comparison is
				// exact. Two *distinct* payloads meeting in `acc += v` are
				// outside the bitwise contract — the compiler may commute a
				// float add, and two differently-compiled folds can then keep
				// opposite operands' payloads (the elementwise kernels are
				// single rounded statements, where this cannot happen).
				sumVars := []*Expr{
					vars[0], vars[1],
					Var(core.FromFunc(ctx, []int{n}, func(g []int) float64 {
						switch g[0] % 11 {
						case 0:
							return math.Copysign(0, -1)
						case 1:
							return math.Inf(1)
						case 2:
							return math.Inf(-1)
						case 3:
							return 0
						default:
							return float64(g[0]%13) - 6
						}
					})),
				}
				for k := 0; k < nExprs; k++ {
					seed := int64(907 + 131*k)
					g := &mulAddGen{r: rand.New(rand.NewSource(seed)), vars: vars}
					e := g.gen(maxDepth)
					gs := &mulAddGen{r: rand.New(rand.NewSource(seed)), vars: sumVars}
					es := gs.gen(maxDepth) // same structure over the sum-safe leaves

					SetSuperinstructions(true)
					plan := Analyze(e)
					fused := gatherBits(plan.Execute())
					cl := gatherBits(plan.executeClosure())
					fusedSum := Analyze(es).sumLocal()

					SetSuperinstructions(false)
					planU := Analyze(e)
					unfused := gatherBits(planU.Execute())
					planUS := Analyze(es)
					unfusedSum := planUS.sumLocal()
					closureSum := planUS.sumLocalClosure()
					SetSuperinstructions(true)

					if err := diffBits(fused, unfused); err != nil {
						return fmt.Errorf("expr %d (%s): fused != unfused: %v", k, e, err)
					}
					if err := diffBits(fused, cl); err != nil {
						return fmt.Errorf("expr %d (%s): fused != closure: %v", k, e, err)
					}
					if fb, ub, cb := math.Float64bits(fusedSum), math.Float64bits(unfusedSum), math.Float64bits(closureSum); fb != ub || fb != cb {
						return fmt.Errorf("expr %d (%s): sums diverge: fused %x unfused %x closure %x", k, es, fb, ub, cb)
					}
					if c.Rank() == 0 {
						if refs[k] == nil {
							refs[k] = fused
						} else if err := diffBits(fused, refs[k]); err != nil {
							return fmt.Errorf("expr %d: diverged from first-combo reference: %v", k, err)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
	}
}

// TestSuperinstructionBlockInvariance pins that fused programs are
// block-size invariant: element-wise results bitwise identical, fused sum
// tails preserving the exact serial association per span.
func TestSuperinstructionBlockInvariance(t *testing.T) {
	defer SetBlockSize(DefaultBlockSize)
	defer SetSuperinstructions(true)
	err := comm.Run(1, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false)
		const n = 5003
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return math.Sin(float64(g[0])) * 3 })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]%17) - 8 })
		build := func() *Expr {
			e := Var(x)
			for i := 0; i < 16; i++ {
				e = e.Mul(Var(y)).Add(Var(x))
			}
			return e.Mul(Const(0.75)).Add(Var(y))
		}
		SetBlockSize(DefaultBlockSize)
		ref := gatherBits(Eval(build()))
		//lint:allow p2pmatch SumEval reduces through one Allreduce inside the fusion engine, vetted by the fusion suite
		refSum := math.Float64bits(SumEval(build()))
		for _, bs := range []int{16, 64, 1000, 4096, 1 << 16} {
			SetBlockSize(bs)
			if err := diffBits(gatherBits(Eval(build())), ref); err != nil {
				return fmt.Errorf("block=%d: %v", bs, err)
			}
			if s := math.Float64bits(SumEval(build())); s != refSum {
				return fmt.Errorf("block=%d: sum %x != %x", bs, s, refSum)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSuperinstructionShapes pins the selection rules on hand-built
// expressions: what fuses into which opcode, and which shapes must stay
// unfused.
func TestSuperinstructionShapes(t *testing.T) {
	defer SetSuperinstructions(true)
	err := comm.Run(1, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false)
		x := Var(core.Linspace[float64](ctx, 0, 1, 32))
		y := Var(core.Linspace[float64](ctx, 1, 2, 32))

		check := func(name string, e *Expr, want map[vmOp]int) error {
			prog := Analyze(e).prog
			got := opCount(prog)
			for op, n := range want {
				if got[op] != n {
					return fmt.Errorf("%s: want %d %s, got %d\n%s", name, n, vmOpNames[op], got[op], prog.String())
				}
			}
			total := 0
			for _, n := range want {
				total += n
			}
			if len(prog.code) != total {
				return fmt.Errorf("%s: want %d instrs total, got %d\n%s", name, total, len(prog.code), prog.String())
			}
			return nil
		}

		horner := x
		for i := 0; i < 16; i++ {
			horner = horner.Mul(y).Add(x)
		}
		for name, tc := range map[string]struct {
			e    *Expr
			want map[vmOp]int
		}{
			"fma":           {x.Mul(y).Add(x), map[vmOp]int{vmFMA: 1}},
			"fmar":          {x.Add(y.Mul(x)), map[vmOp]int{vmFMAR: 1}},
			"fms":           {x.Mul(y).Sub(x), map[vmOp]int{vmFMS: 1}},
			"fmsr":          {x.Sub(y.Mul(x)), map[vmOp]int{vmFMSR: 1}},
			"axpy":          {x.Mul(Const(2.5)).Add(y), map[vmOp]int{vmAXPY: 1}},
			"axpy-constl":   {Const(2.5).Mul(x).Add(y), map[vmOp]int{vmAXPY: 1}},
			"axpyr":         {y.Add(x.Mul(Const(-3))), map[vmOp]int{vmAXPYR: 1}},
			"horner-16":     {horner, map[vmOp]int{vmFMA2: 8}},
			"horner-odd":    {x.Mul(y).Add(x).Mul(y).Add(x).Mul(y).Add(x), map[vmOp]int{vmFMA2: 1, vmFMA: 1}},
			"plain-mul":     {x.Mul(y), map[vmOp]int{vmMul: 1}},
			"div-add":       {x.Div(y).Add(x), map[vmOp]int{vmDiv: 1, vmAdd: 1}},
			"sum-of-prods":  {x.Mul(y).Add(y.Mul(x).Square()), map[vmOp]int{vmMul: 1, vmSquare: 1, vmFMA: 1}},
			"axpy-nan-mul":  {x.Mul(Const(math.NaN())).Add(y), map[vmOp]int{vmFMA: 1}},
			"fma-const-add": {x.Mul(y).Add(Const(4)), map[vmOp]int{vmFMA: 1}},
		} {
			if err := check(name, tc.e, tc.want); err != nil {
				return err
			}
		}

		// A product with two consumers must stay materialized: CSE merges
		// the two x*y nodes, so the fused program keeps one mul and reads
		// its register twice.
		m1, m2 := x.Mul(y), x.Mul(y)
		shared := m1.Add(m2.Mul(m2))
		prog := Analyze(shared).prog
		got := opCount(prog)
		if got[vmMul] != 1 || got[vmFMA]+got[vmFMAR] != 1 {
			return fmt.Errorf("shared product: want 1 mul + 1 fma-family, got %v\n%s", got, prog.String())
		}

		// Toggling the pass off must produce pair-free programs.
		SetSuperinstructions(false)
		prog = Analyze(horner).prog
		for _, ins := range prog.code {
			switch ins.op {
			case vmFMA, vmFMAR, vmFMS, vmFMSR, vmAXPY, vmAXPYR, vmFMA2:
				return fmt.Errorf("superinstructions off, but emitted %s\n%s", vmOpNames[ins.op], prog.String())
			}
		}
		SetSuperinstructions(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSuperinstructionSumTails drives every fused op+sum tail: the last
// instruction of a SumEval program streams into the accumulator without
// materializing the result block, and must match the closure fold bitwise.
func TestSuperinstructionSumTails(t *testing.T) {
	defer SetBlockSize(DefaultBlockSize)
	defer SetSuperinstructions(true)
	err := comm.Run(1, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false)
		const n = 777
		x := Var(core.FromFunc(ctx, []int{n}, func(g []int) float64 {
			if g[0]%19 == 0 {
				return math.Inf(1)
			}
			return math.Sin(float64(g[0] * 3))
		}))
		y := Var(core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]%23)*0.5 - 5 }))
		horner := x
		for i := 0; i < 4; i++ {
			horner = horner.Mul(y).Add(x)
		}
		exprs := map[string]*Expr{
			"copy-tail":   x,
			"add-tail":    x.Add(y),
			"sub-tail":    x.Sub(y),
			"mul-tail":    x.Mul(y),
			"square-tail": x.Add(y).Square(),
			"fma-tail":    x.Mul(y).Add(x),
			"fmar-tail":   x.Add(y.Mul(x)),
			"fms-tail":    x.Mul(y).Sub(x),
			"fmsr-tail":   x.Sub(y.Mul(x)),
			"axpy-tail":   x.Mul(Const(1.5)).Add(y),
			"axpyr-tail":  y.Add(x.Mul(Const(-2))),
			"fma2-tail":   horner,
			"sqrt-tail":   Sqrt(x.Add(y)), // no fused accumulator: fallback path
			"div-tail":    x.Div(y),       // fallback path with Inf/zero divisors
		}
		for _, bs := range []int{64, DefaultBlockSize} {
			SetBlockSize(bs)
			for name, e := range exprs {
				plan := Analyze(e)
				got := math.Float64bits(plan.sumLocal())
				want := math.Float64bits(plan.sumLocalClosure())
				if got != want {
					return fmt.Errorf("%s (block=%d): sum %x != closure %x", name, bs, got, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSetSuperinstructionsResetsCache: flipping the pass must drop cached
// programs — they were emitted under the old setting and the structural
// key does not encode it.
func TestSetSuperinstructionsResetsCache(t *testing.T) {
	defer SetSuperinstructions(true)
	err := comm.Run(1, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false)
		x := Var(core.Linspace[float64](ctx, 0, 1, 16))
		y := Var(core.Linspace[float64](ctx, 1, 2, 16))
		SetSuperinstructions(true)
		ResetPlanCache()
		if got := opCount(Analyze(x.Mul(y).Add(x)).prog); got[vmFMA] != 1 {
			return fmt.Errorf("expected fused program, got %v", got)
		}
		SetSuperinstructions(false)
		if got := opCount(Analyze(x.Mul(y).Add(x)).prog); got[vmFMA] != 0 {
			return fmt.Errorf("stale fused program served after toggle: %v", got)
		}
		if hits, misses := PlanCacheStats(); hits != 0 || misses != 1 {
			return fmt.Errorf("toggle did not reset cache stats: hits=%d misses=%d", hits, misses)
		}
		SetSuperinstructions(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFusionCompile measures the compile path (lowering + cache
// lookup) for a depth-16 chain that is already cached — the steady state
// of a solver loop rebuilding its expression every iteration. The allocs
// number is what the constKey satellite fix targets.
func BenchmarkFusionCompile(b *testing.B) {
	err := comm.Run(1, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		ctx.SetControlMessages(false)
		x := core.Linspace[float64](ctx, 0, 1, 64)
		y := core.Linspace[float64](ctx, 1, 2, 64)
		build := func() *Expr {
			e := Var(x)
			for i := 0; i < 16; i++ {
				e = e.Mul(Var(y)).Add(Const(0.5))
			}
			return e
		}
		compileProgram(build()) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			compileProgram(build())
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
