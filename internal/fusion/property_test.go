package fusion

// Property test for the register VM: random expression DAGs (bounded
// depth, shared subtrees, constants, occasional user closures) must
// evaluate bitwise identically on the register VM, the closure reference
// evaluator, and the op-at-a-time naive path — at every worker-pool size
// and every rank count. Comparisons are on float64 bit patterns, so NaN
// and Inf paths (sqrt of negatives, division by zero) are covered too, and
// a global reference from the first (pool, ranks) combination pins
// cross-pool and cross-P bitwise stability.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/exec"
)

// exprGen builds random DAGs. Reusing a node from the pool creates shared
// subtrees (the DAG part); constants appear only as one operand of a
// binary node, which every evaluator (including EvalNaive's Scalar
// folding) supports.
type exprGen struct {
	r    *rand.Rand
	vars []*Expr
	pool []struct {
		e *Expr
		h int
	}
}

func (g *exprGen) record(e *Expr, h int) *Expr {
	g.pool = append(g.pool, struct {
		e *Expr
		h int
	}{e, h})
	return e
}

// gen returns an expression of height at most h (leaves have height 0).
func (g *exprGen) gen(h int) (*Expr, int) {
	if h <= 0 {
		return g.vars[g.r.Intn(len(g.vars))], 0
	}
	roll := g.r.Float64()
	if roll < 0.22 && len(g.pool) > 0 {
		// Shared subtree: reuse a previously built node that fits.
		for try := 0; try < 4; try++ {
			n := g.pool[g.r.Intn(len(g.pool))]
			if n.h <= h {
				return n.e, n.h
			}
		}
	}
	if roll < 0.55 {
		a, ah := g.gen(h - 1)
		var e *Expr
		switch g.r.Intn(8) {
		case 0:
			e = a.Square()
		case 1:
			e = Sqrt(a)
		case 2:
			e = Sin(a)
		case 3:
			e = Cos(a)
		case 4:
			e = Exp(a)
		case 5:
			e = Abs(a)
		case 6:
			e = Neg(a)
		default:
			k := g.r.NormFloat64()
			e = Unary("affine", func(v float64) float64 { return k*v + 0.5 }, a)
		}
		return g.record(e, ah+1), ah + 1
	}
	a, ah := g.gen(h - 1)
	var b *Expr
	bh := 0
	if g.r.Float64() < 0.25 {
		b = Const(math.Round(g.r.NormFloat64()*8) / 4) // includes 0 sometimes
	} else {
		b, bh = g.gen(h - 1)
	}
	if g.r.Intn(2) == 0 && b.kind != kindConst {
		a, b = b, a // exercise both operand orders
	}
	var e *Expr
	switch g.r.Intn(6) {
	case 0:
		e = a.Add(b)
	case 1:
		e = a.Sub(b)
	case 2:
		e = a.Mul(b)
	case 3:
		e = a.Div(b)
	case 4:
		e = Hypot(a, b)
	default:
		w := g.r.Float64()
		e = Binary("mix", func(x, y float64) float64 { return w*x + (1-w)*y }, a, b)
	}
	h = max(ah, bh) + 1
	return g.record(e, h), h
}

func gatherBits(a *core.DistArray[float64]) []uint64 {
	flat := a.Gather().Flatten()
	out := make([]uint64, len(flat))
	for i, v := range flat {
		out[i] = math.Float64bits(v)
	}
	return out
}

func diffBits(a, b []uint64) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("[%d] %x != %x (%g vs %g)",
				i, a[i], b[i], math.Float64frombits(a[i]), math.Float64frombits(b[i]))
		}
	}
	return nil
}

func TestPropertyRandomDAGs(t *testing.T) {
	const nExprs = 24
	const n = 171
	const maxDepth = 6
	old := exec.Default()
	defer exec.SetDefault(old)

	refs := make([][]uint64, nExprs) // global reference, written by rank 0 of the first combo
	for _, w := range []int{1, 4, 7} {
		exec.SetDefault(exec.New(exec.WithWorkers(w)))
		for _, p := range []int{1, 2, 4} {
			label := fmt.Sprintf("w=%d/P=%d", w, p)
			err := comm.Run(p, func(c *comm.Comm) error {
				ctx := core.NewContext(c)
				ctx.SetControlMessages(false)
				vars := []*Expr{
					Var(core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0])/16 - 5 })),
					Var(core.FromFunc(ctx, []int{n}, func(g []int) float64 { return math.Sin(float64(3 * g[0])) })),
					Var(core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]%7) - 3 })), // zeros for 1/x paths
				}
				for k := 0; k < nExprs; k++ {
					// Seeded per expression index: every rank, pool size,
					// and rank count builds the identical DAG.
					g := &exprGen{r: rand.New(rand.NewSource(int64(1357 + 31*k))), vars: vars}
					e, _ := g.gen(maxDepth)
					plan := Analyze(e)
					vm := gatherBits(plan.Execute())
					cl := gatherBits(plan.executeClosure())
					nv := gatherBits(EvalNaive(e))
					if err := diffBits(vm, cl); err != nil {
						return fmt.Errorf("expr %d (%s): VM != closure: %v", k, e, err)
					}
					if err := diffBits(vm, nv); err != nil {
						return fmt.Errorf("expr %d (%s): VM != naive: %v", k, e, err)
					}
					if c.Rank() == 0 {
						if refs[k] == nil {
							refs[k] = vm
						} else if err := diffBits(vm, refs[k]); err != nil {
							return fmt.Errorf("expr %d: diverged from first-combo reference: %v", k, err)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
	}
}
