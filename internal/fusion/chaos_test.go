package fusion

// Chaos parity for the fused reduction: SumEval ends in AllreduceScalar
// (after a control broadcast and, in the misaligned variant, a
// redistribution), so like every other distributed kernel it must be
// bitwise identical to its fault-free run under the seeded fault plans or
// fail with a typed *comm.FaultError. The register accumulator itself is
// local and deterministic; what this pins is the collective tail.

import (
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/comm/chaostest"
	"odinhpc/internal/core"
	"odinhpc/internal/distmap"
)

func TestChaosFusedSumEval(t *testing.T) {
	const n = 57
	kernels := []chaostest.Kernel{
		{Name: "fused-sumeval", Body: func(c *comm.Comm) (any, error) {
			ctx := core.NewContext(c)
			x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0])/8 - 2 })
			y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]%5) + 0.25 })
			return SumEval(Sqrt(Var(x).Square().Add(Var(y).Square()))), nil
		}},
		{Name: "fused-sumeval-redistributed", Body: func(c *comm.Comm) (any, error) {
			ctx := core.NewContext(c)
			x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
			y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return 1 / float64(g[0]+2) },
				core.Options{Kind: distmap.Cyclic})
			return SumEval(Var(x).Mul(Var(y)).Add(Const(0.5))), nil
		}},
	}
	chaostest.Run(t, []int{1, 2, 4}, 20260805, kernels...)
}
