// The fusion register VM: a NumExpr-style blocked virtual machine that
// replaces the per-element closure tree as the execution engine behind
// Eval/SumEval.
//
// compileProgram lowers the Expr DAG into a linear sequence of vector
// instructions over a small pool of scratch registers, with constant
// folding and common-subexpression elimination at compile time. Each
// instruction is then evaluated as one tight slice loop over a cache-sized
// block (internal/dense vec ops), so the per-element cost is a real float
// op, not an indirect closure call per DAG node. Element-wise results are
// bitwise identical to the closure evaluator: every opcode body performs
// exactly the float64 operations the corresponding closure performed, in
// the same per-element order, and block boundaries never change what is
// computed — only how many elements one dispatch covers.
//
// Programs for expressions built purely from the named constructors
// (Add/Mul/Sqrt/...) are cached under a structural serialization of the
// DAG, so solver loops that rebuild the same expression every iteration
// compile once. Expressions containing user closures (Unary/Binary) are
// never cached: two closures can share a code pointer while capturing
// different state, so identity of behavior cannot be established at
// compile time.
package fusion

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"odinhpc/internal/core"
	"odinhpc/internal/dense"
)

// vmOp is a register-VM opcode. The named opcodes get dedicated slice
// loops; vmCallUn/vmCallBin invoke an arbitrary user function per element
// (still blocked, so the loop overhead around the call is amortized).
type vmOp uint8

const (
	vmCopy vmOp = iota // dst = a (root-is-a-leaf programs)
	vmAdd
	vmSub
	vmMul
	vmDiv
	vmSquare
	vmSqrt
	vmNeg
	vmAbs
	vmSin
	vmCos
	vmExp
	vmHypot
	vmCallUn
	vmCallBin
	// Superinstructions: never produced by lowering (no Expr constructor
	// maps to them), only by the post-lowering peephole pass in emit. Their
	// kernel bodies force intermediate rounding (internal/dense/fused.go),
	// so each is bitwise identical to the pair it replaces.
	vmFMA   // dst = float64(a*b) + c
	vmFMAR  // dst = c + float64(a*b)
	vmFMS   // dst = float64(a*b) - c
	vmFMSR  // dst = c - float64(a*b)
	vmAXPY  // dst = float64(a*s) + c   (s = scalar constant)
	vmAXPYR // dst = c + float64(a*s)
	vmFMA2  // dst = float64((float64(a*b)+c)*d) + e — two Horner steps
)

var vmOpNames = [...]string{
	vmCopy: "copy", vmAdd: "add", vmSub: "sub", vmMul: "mul", vmDiv: "div",
	vmSquare: "square", vmSqrt: "sqrt", vmNeg: "neg", vmAbs: "abs",
	vmSin: "sin", vmCos: "cos", vmExp: "exp", vmHypot: "hypot",
	vmCallUn: "call", vmCallBin: "call2",
	vmFMA: "fma", vmFMAR: "fmar", vmFMS: "fms", vmFMSR: "fmsr",
	vmAXPY: "axpy", vmAXPYR: "axpyr", vmFMA2: "fma2",
}

// foldable reports whether an opcode may be evaluated at compile time when
// all operands are constants. User calls are excluded: a stateful closure
// must keep being invoked per element exactly as the closure evaluator
// would have.
func (op vmOp) foldable() bool { return op != vmCallUn && op != vmCallBin }

// Operand kinds. A register operand names a scratch block, a leaf operand
// names a flattened input array indexed by the current block offset, and a
// const operand names a pre-broadcast constant block.
const (
	roReg uint8 = iota
	roLeaf
	roConst
)

type vmOperand struct {
	kind uint8
	idx  int
}

// vmInstr is one vector instruction: dst register = op(a[, b[, c]]).
// Superinstructions use c for their third operand; axpy ops carry the
// scalar factor in s instead of a constant-block operand.
type vmInstr struct {
	op   vmOp
	dst  int
	a, b vmOperand
	c    vmOperand
	d, e vmOperand // fma2 only
	s    float64
	un   func(float64) float64
	bin  func(float64, float64) float64
}

// vmProgram is a compiled expression: immutable after compileProgram, safe
// for concurrent execution from any number of ranks/workers (scratch state
// comes from a sync.Pool, one vmState per in-flight block sweep).
type vmProgram struct {
	code      []vmInstr
	nregs     int
	nleaves   int
	consts    []float64 // distinct constant values, indexed by roConst idx
	outReg    int       // register holding the result after the last instr
	cacheable bool
	label     string // short hash of the structural cache key, for trace events

	pool sync.Pool // of *vmState
}

// vmState is one worker's scratch: register blocks plus materialized
// constant blocks, all sized to the block size the state was built for.
type vmState struct {
	block  int
	regs   [][]float64
	consts [][]float64
}

// DefaultBlockSize is the number of float64 elements one VM instruction
// covers per dispatch: 1024 elements = 8 KiB per register, so a handful of
// live registers plus two input spans stay comfortably inside L1/L2 while
// still amortizing instruction dispatch over a thousand elements.
const DefaultBlockSize = 1024

var vmBlockSize atomic.Int64

func init() { vmBlockSize.Store(DefaultBlockSize) }

// SetBlockSize sets the VM block size in elements (clamped to >= 16) and
// returns the previous value. Results are block-size-invariant — element-
// wise programs are bitwise identical and fused sums keep the exact same
// accumulation order — so this is a pure performance knob, exposed for the
// BenchmarkFusionVM sweep.
func SetBlockSize(n int) int {
	if n < 16 {
		n = 16
	}
	return int(vmBlockSize.Swap(int64(n)))
}

// BlockSize returns the current VM block size in elements.
func BlockSize() int { return int(vmBlockSize.Load()) }

var vmSuper atomic.Bool

func init() { vmSuper.Store(true) }

// SetSuperinstructions enables or disables the peephole superinstruction
// pass (on by default) and returns the previous setting. Fused and unfused
// programs are bitwise identical — the pass is a pure dispatch-count
// optimization — so this is a test/benchmark knob, not a semantics switch.
// Changing the setting drops the plan cache: cached programs were emitted
// under the old setting and the structural key does not encode it.
func SetSuperinstructions(on bool) bool {
	prev := vmSuper.Swap(on)
	if prev != on {
		ResetPlanCache()
	}
	return prev
}

// Superinstructions reports whether the peephole pass is enabled.
func Superinstructions() bool { return vmSuper.Load() }

func (p *vmProgram) getState(block int) *vmState {
	if st, _ := p.pool.Get().(*vmState); st != nil && st.block == block {
		return st
	}
	st := &vmState{block: block}
	slab := make([]float64, p.nregs*block)
	st.regs = make([][]float64, p.nregs)
	for r := range st.regs {
		st.regs[r] = slab[r*block : (r+1)*block]
	}
	if len(p.consts) > 0 {
		cslab := make([]float64, len(p.consts)*block)
		st.consts = make([][]float64, len(p.consts))
		for c, v := range p.consts {
			st.consts[c] = cslab[c*block : (c+1)*block]
			dense.VecFill(st.consts[c], v)
		}
	}
	return st
}

func (p *vmProgram) putState(st *vmState) { p.pool.Put(st) }

// resolveOp materializes one operand as a length hi-lo span: leaf operands
// window the flattened input, const operands use the pre-broadcast blocks,
// register operands the scratch blocks.
func (p *vmProgram) resolveOp(st *vmState, leaves [][]float64, o vmOperand, lo, hi int) []float64 {
	switch o.kind {
	case roLeaf:
		return leaves[o.idx][lo:hi]
	case roConst:
		return st.consts[o.idx][:hi-lo]
	default:
		return st.regs[o.idx][:hi-lo]
	}
}

// runBlock executes the whole program over elements [lo, hi) of the
// flattened leaves. The last instruction writes directly into out[lo:hi]
// when out is non-nil; otherwise the result block is left in regs[outReg].
func (p *vmProgram) runBlock(st *vmState, leaves [][]float64, out []float64, lo, hi int) {
	p.runCode(st, leaves, out, lo, hi, len(p.code))
}

// runCode executes the first ninstr instructions over [lo, hi) — the
// whole program for runBlock, the pre-tail prefix for sumBlock's fused
// accumulators.
func (p *vmProgram) runCode(st *vmState, leaves [][]float64, out []float64, lo, hi, ninstr int) {
	n := hi - lo
	resolve := func(o vmOperand) []float64 {
		return p.resolveOp(st, leaves, o, lo, hi)
	}
	last := ninstr - 1
	for k := 0; k < ninstr; k++ {
		ins := &p.code[k]
		var dst []float64
		if k == last && out != nil {
			dst = out[lo:hi]
		} else {
			dst = st.regs[ins.dst][:n]
		}
		a := resolve(ins.a)
		switch ins.op {
		case vmCopy:
			dense.VecCopy(dst, a)
		case vmSquare:
			dense.VecSquare(dst, a)
		case vmSqrt:
			dense.VecSqrt(dst, a)
		case vmNeg:
			dense.VecNeg(dst, a)
		case vmAbs:
			dense.VecAbs(dst, a)
		case vmSin:
			dense.VecSin(dst, a)
		case vmCos:
			dense.VecCos(dst, a)
		case vmExp:
			dense.VecExp(dst, a)
		case vmCallUn:
			dense.VecMap(dst, a, ins.un)
		case vmAdd:
			dense.VecAdd(dst, a, resolve(ins.b))
		case vmSub:
			dense.VecSub(dst, a, resolve(ins.b))
		case vmMul:
			dense.VecMul(dst, a, resolve(ins.b))
		case vmDiv:
			dense.VecDiv(dst, a, resolve(ins.b))
		case vmHypot:
			dense.VecHypot(dst, a, resolve(ins.b))
		case vmCallBin:
			dense.VecMap2(dst, a, resolve(ins.b), ins.bin)
		case vmFMA:
			dense.VecFMA(dst, a, resolve(ins.b), resolve(ins.c))
		case vmFMAR:
			dense.VecFMAR(dst, a, resolve(ins.b), resolve(ins.c))
		case vmFMS:
			dense.VecFMS(dst, a, resolve(ins.b), resolve(ins.c))
		case vmFMSR:
			dense.VecFMSR(dst, a, resolve(ins.b), resolve(ins.c))
		case vmAXPY:
			dense.VecAXPY(dst, a, ins.s, resolve(ins.c))
		case vmAXPYR:
			dense.VecAXPYR(dst, a, ins.s, resolve(ins.c))
		case vmFMA2:
			dense.VecFMA2(dst, a, resolve(ins.b), resolve(ins.c), resolve(ins.d), resolve(ins.e))
		}
	}
}

// runSpan sweeps [lo, hi) in block-size steps, writing results into out.
// It is the body handed to exec.ParallelFor; spans never share state.
func (p *vmProgram) runSpan(st *vmState, leaves [][]float64, out []float64, lo, hi int) {
	for b := lo; b < hi; b += st.block {
		bh := b + st.block
		if bh > hi {
			bh = hi
		}
		p.runBlock(st, leaves, out, b, bh)
	}
}

// sumSpan sweeps [lo, hi) and folds the result blocks into a scalar with
// the exact left-to-right element order of the serial loop `for i in
// [lo,hi) { acc += kernel(i) }`, so the fused reduction is bitwise
// identical to the closure-kernel fold over the same span.
func (p *vmProgram) sumSpan(st *vmState, leaves [][]float64, lo, hi int) float64 {
	var acc float64
	for b := lo; b < hi; b += st.block {
		bh := b + st.block
		if bh > hi {
			bh = hi
		}
		acc = p.sumBlock(st, leaves, b, bh, acc)
	}
	return acc
}

// sumBlock runs one block and folds the program's result into acc. When
// the final opcode has a fused op+sum accumulator, the result block is
// never materialized: the prefix runs normally and the tail instruction
// streams straight into the running fold, computing op(i) then acc +=
// op(i) per element — the same values in the same order as running the
// tail and folding its output with VecAccum.
func (p *vmProgram) sumBlock(st *vmState, leaves [][]float64, lo, hi int, acc float64) float64 {
	last := len(p.code) - 1
	ins := &p.code[last]
	switch ins.op {
	case vmCopy, vmAdd, vmSub, vmMul, vmSquare,
		vmFMA, vmFMAR, vmFMS, vmFMSR, vmAXPY, vmAXPYR, vmFMA2:
		p.runCode(st, leaves, nil, lo, hi, last)
	default:
		p.runBlock(st, leaves, nil, lo, hi)
		return dense.VecAccum(acc, st.regs[p.outReg][:hi-lo])
	}
	a := p.resolveOp(st, leaves, ins.a, lo, hi)
	switch ins.op {
	case vmCopy:
		return dense.VecAccum(acc, a)
	case vmAdd:
		return dense.VecAccumAdd(acc, a, p.resolveOp(st, leaves, ins.b, lo, hi))
	case vmSub:
		return dense.VecAccumSub(acc, a, p.resolveOp(st, leaves, ins.b, lo, hi))
	case vmMul:
		return dense.VecAccumMul(acc, a, p.resolveOp(st, leaves, ins.b, lo, hi))
	case vmSquare:
		return dense.VecAccumSquare(acc, a)
	case vmFMA:
		return dense.VecAccumFMA(acc, a, p.resolveOp(st, leaves, ins.b, lo, hi), p.resolveOp(st, leaves, ins.c, lo, hi))
	case vmFMAR:
		return dense.VecAccumFMAR(acc, a, p.resolveOp(st, leaves, ins.b, lo, hi), p.resolveOp(st, leaves, ins.c, lo, hi))
	case vmFMS:
		return dense.VecAccumFMS(acc, a, p.resolveOp(st, leaves, ins.b, lo, hi), p.resolveOp(st, leaves, ins.c, lo, hi))
	case vmFMSR:
		return dense.VecAccumFMSR(acc, a, p.resolveOp(st, leaves, ins.b, lo, hi), p.resolveOp(st, leaves, ins.c, lo, hi))
	case vmAXPY:
		return dense.VecAccumAXPY(acc, a, ins.s, p.resolveOp(st, leaves, ins.c, lo, hi))
	case vmAXPYR:
		return dense.VecAccumAXPYR(acc, a, ins.s, p.resolveOp(st, leaves, ins.c, lo, hi))
	default: // vmFMA2
		return dense.VecAccumFMA2(acc, a,
			p.resolveOp(st, leaves, ins.b, lo, hi), p.resolveOp(st, leaves, ins.c, lo, hi),
			p.resolveOp(st, leaves, ins.d, lo, hi), p.resolveOp(st, leaves, ins.e, lo, hi))
	}
}

// String disassembles the program (one instruction per line), for the
// hypot example and debugging.
func (p *vmProgram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: %d instrs, %d regs, %d leaves, %d consts\n",
		len(p.code), p.nregs, p.nleaves, len(p.consts))
	opd := func(o vmOperand) string {
		switch o.kind {
		case roLeaf:
			return fmt.Sprintf("leaf%d", o.idx)
		case roConst:
			return fmt.Sprintf("const[%g]", p.consts[o.idx])
		default:
			return fmt.Sprintf("r%d", o.idx)
		}
	}
	for _, ins := range p.code {
		switch ins.op {
		case vmAdd, vmSub, vmMul, vmDiv, vmHypot, vmCallBin:
			fmt.Fprintf(&b, "  r%d = %s %s, %s\n", ins.dst, vmOpNames[ins.op], opd(ins.a), opd(ins.b))
		case vmFMA, vmFMAR, vmFMS, vmFMSR:
			fmt.Fprintf(&b, "  r%d = %s %s, %s, %s\n", ins.dst, vmOpNames[ins.op], opd(ins.a), opd(ins.b), opd(ins.c))
		case vmFMA2:
			fmt.Fprintf(&b, "  r%d = %s %s, %s, %s, %s, %s\n", ins.dst, vmOpNames[ins.op],
				opd(ins.a), opd(ins.b), opd(ins.c), opd(ins.d), opd(ins.e))
		case vmAXPY, vmAXPYR:
			fmt.Fprintf(&b, "  r%d = %s %s, %g, %s\n", ins.dst, vmOpNames[ins.op], opd(ins.a), ins.s, opd(ins.c))
		default:
			fmt.Fprintf(&b, "  r%d = %s %s\n", ins.dst, vmOpNames[ins.op], opd(ins.a))
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Lowering: Expr DAG -> value-numbered IR -> register program.

type valKind uint8

const (
	valLeaf valKind = iota
	valConst
	valOp
)

// vmValue is one value-numbered node of the IR.
type vmValue struct {
	kind valKind
	leaf int     // leaf slot for valLeaf
	c    float64 // constant for valConst; scalar factor for axpy values
	op   vmOp
	un   func(float64) float64
	bin  func(float64, float64) float64
	args [5]int // value ids (unused slots = -1; args[2:] used by superinstructions)
	uses int
	dead bool // absorbed into a superinstruction; emits no instruction
}

// lowering accumulates the IR plus the structural cache key during one DFS
// over the expression DAG.
type lowering struct {
	vals      []vmValue
	byPtr     map[*Expr]int
	byKey     map[string]int
	leafSlot  map[*core.DistArray[float64]]int
	nSlices   int // 1 + highest SliceSlot index seen (0 when none)
	key       strings.Builder
	cacheable bool
}

// intern returns the id of an existing value with the same structural key
// (common-subexpression elimination) or appends v as a new value. Every
// first-seen key is also appended to the program's cache key, so the final
// key is a faithful serialization of the deduplicated DAG.
func (lw *lowering) intern(key string, v vmValue) int {
	if id, ok := lw.byKey[key]; ok {
		return id
	}
	id := len(lw.vals)
	lw.vals = append(lw.vals, v)
	lw.byKey[key] = id
	lw.key.WriteString(key)
	lw.key.WriteByte(';')
	return id
}

// key1 renders prefix+int keys ("L3", "R7") through a stack buffer.
func key1(p byte, a int) string {
	var buf [24]byte
	b := append(buf[:0], p)
	b = strconv.AppendInt(b, int64(a), 10)
	return string(b)
}

// keyOp renders op keys ("U5(2)", "B!12(4,7)") through a stack buffer; b2
// < 0 means unary. The bang marks user-closure nodes, whose keys embed a
// unique serial instead of structural identity.
func keyOp(p byte, bang bool, op vmOp, serial, a1, a2 int) string {
	var buf [48]byte
	b := append(buf[:0], p)
	if bang {
		b = append(b, '!')
		b = strconv.AppendInt(b, int64(serial), 10)
	} else {
		b = strconv.AppendInt(b, int64(op), 10)
	}
	b = append(b, '(')
	b = strconv.AppendInt(b, int64(a1), 10)
	if a2 >= 0 {
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(a2), 10)
	}
	b = append(b, ')')
	return string(b)
}

// constKey renders "C" + 16 lowercase hex digits of the value's bit
// pattern through a fixed stack buffer; the old fmt.Sprintf version
// allocated its formatting state on every constant of every lowering
// (BenchmarkFusionCompile pins the compile-path allocation count).
func constKey(v float64) string {
	const hexDigits = "0123456789abcdef"
	var buf [17]byte
	buf[0] = 'C'
	bits := math.Float64bits(v)
	for i := 16; i >= 1; i-- {
		buf[i] = hexDigits[bits&0xf]
		bits >>= 4
	}
	return string(buf[:])
}

// visit lowers one node, folding builtin ops whose operands are all
// constants (the fold calls the node's own function once — the same
// float64 computation the closure evaluator repeated per element).
func (lw *lowering) visit(e *Expr) int {
	if id, ok := lw.byPtr[e]; ok {
		return id
	}
	var id int
	switch e.kind {
	case kindLeaf:
		slot, ok := lw.leafSlot[e.leaf]
		if !ok {
			slot = len(lw.leafSlot)
			lw.leafSlot[e.leaf] = slot
		}
		id = lw.intern(key1('L', slot), vmValue{kind: valLeaf, leaf: slot})
	case kindSliceLeaf:
		// Slice leaves carry explicit slot numbers (the EvalSlices caller
		// owns the numbering) but serialize exactly like Var leaf slots, so
		// structurally equal slice and DistArray expressions share one cached
		// program.
		if e.slot+1 > lw.nSlices {
			lw.nSlices = e.slot + 1
		}
		id = lw.intern(key1('L', e.slot), vmValue{kind: valLeaf, leaf: e.slot})
	case kindConst:
		id = lw.intern(constKey(e.value), vmValue{kind: valConst, c: e.value})
	case kindUnary:
		a := lw.visit(e.args[0])
		if e.vop.foldable() && lw.vals[a].kind == valConst {
			id = lw.intern(constKey(e.un(lw.vals[a].c)), vmValue{kind: valConst, c: e.un(lw.vals[a].c)})
			break
		}
		bang := e.vop == vmCallUn
		if bang {
			// A user closure has no compile-time identity: never merge two
			// call nodes and never let the program into the cache.
			lw.cacheable = false
		}
		key := keyOp('U', bang, e.vop, len(lw.vals), a, -1)
		id = lw.intern(key, vmValue{kind: valOp, op: e.vop, un: e.un, args: [5]int{a, -1, -1, -1, -1}})
	default: // kindBinary
		a := lw.visit(e.args[0])
		b := lw.visit(e.args[1])
		if e.vop.foldable() && lw.vals[a].kind == valConst && lw.vals[b].kind == valConst {
			v := e.bin(lw.vals[a].c, lw.vals[b].c)
			id = lw.intern(constKey(v), vmValue{kind: valConst, c: v})
			break
		}
		bang := e.vop == vmCallBin
		if bang {
			lw.cacheable = false
		}
		key := keyOp('B', bang, e.vop, len(lw.vals), a, b)
		id = lw.intern(key, vmValue{kind: valOp, op: e.vop, bin: e.bin, args: [5]int{a, b, -1, -1, -1}})
	}
	lw.byPtr[e] = id
	return id
}

// lower builds the IR and cache key for e. The leaf-slot numbering is
// first-visit order over distinct arrays — identical to Expr.Leaves(), so
// slot i of the program binds to Plan.leafData[i].
func lower(e *Expr) (*lowering, int) {
	lw := &lowering{
		byPtr:     map[*Expr]int{},
		byKey:     map[string]int{},
		leafSlot:  map[*core.DistArray[float64]]int{},
		cacheable: true,
	}
	root := lw.visit(e)
	if len(lw.leafSlot) > 0 && lw.nSlices > 0 {
		panic("fusion: expression mixes Var and SliceSlot leaves")
	}
	lw.key.WriteString(key1('R', root))
	return lw, root
}

// superinstruct is the post-lowering peephole pass: it collapses an
// add/sub and the single-use multiply feeding it into one fused
// triple-operand instruction (mul+add -> fma, with mirrored variants
// preserving operand order for NaN-payload faithfulness), then refines
// fused multiplies with a constant factor into axpy, whose scalar rides in
// the instruction word instead of a broadcast block. It runs on IR values
// — before registers exist — so absorbed multiplies are simply marked dead
// and never cost a register or a dispatch. Selection rules:
//
//   - only multiplies with exactly one consumer fuse (a shared product
//     must stay materialized for its other readers, and CSE means shared
//     products are common);
//   - user-call values never fuse (they have no opcode to fuse into);
//   - a NaN constant factor stays in block form, because a*s and s*a are
//     guaranteed to agree bitwise only when at most one side can be NaN.
func (lw *lowering) superinstruct(root int) {
	fusableMul := func(id int) bool {
		v := &lw.vals[id]
		return v.kind == valOp && v.op == vmMul && v.uses == 1 && id != root
	}
	for id := range lw.vals {
		v := &lw.vals[id]
		if v.kind != valOp {
			continue
		}
		switch v.op {
		case vmAdd:
			if m := v.args[0]; fusableMul(m) {
				mv := &lw.vals[m]
				v.op = vmFMA
				v.args = [5]int{mv.args[0], mv.args[1], v.args[1], -1, -1}
				mv.dead = true
			} else if m := v.args[1]; fusableMul(m) {
				mv := &lw.vals[m]
				v.op = vmFMAR
				v.args = [5]int{mv.args[0], mv.args[1], v.args[0], -1, -1}
				mv.dead = true
			}
		case vmSub:
			if m := v.args[0]; fusableMul(m) {
				mv := &lw.vals[m]
				v.op = vmFMS
				v.args = [5]int{mv.args[0], mv.args[1], v.args[1], -1, -1}
				mv.dead = true
			} else if m := v.args[1]; fusableMul(m) {
				mv := &lw.vals[m]
				v.op = vmFMSR
				v.args = [5]int{mv.args[0], mv.args[1], v.args[0], -1, -1}
				mv.dead = true
			}
		}
		// Second stage, Horner chains: an fma whose multiplicand is itself
		// a single-use fma collapses into one five-operand fma2. Only the
		// a-position fuses — it is the only shape where the chained
		// product's operand order is preserved exactly.
		if v.op == vmFMA {
			if in := v.args[0]; in >= 0 {
				iv := &lw.vals[in]
				if iv.kind == valOp && iv.op == vmFMA && iv.uses == 1 && in != root {
					v.op = vmFMA2
					v.args = [5]int{iv.args[0], iv.args[1], iv.args[2], v.args[1], v.args[2]}
					iv.dead = true
				}
			}
		}
		if v.op == vmFMA || v.op == vmFMAR {
			a0, a1 := v.args[0], v.args[1]
			s, varArg := 0.0, -1
			if lw.vals[a0].kind == valConst && !math.IsNaN(lw.vals[a0].c) {
				s, varArg = lw.vals[a0].c, a1
			} else if lw.vals[a1].kind == valConst && !math.IsNaN(lw.vals[a1].c) {
				s, varArg = lw.vals[a1].c, a0
			}
			if varArg >= 0 {
				if v.op == vmFMA {
					v.op = vmAXPY
				} else {
					v.op = vmAXPYR
				}
				v.c = s
				v.args = [5]int{varArg, -1, v.args[2], -1, -1}
			}
		}
	}
}

// emit turns the IR into a register program. Registers are allocated
// lowest-free-first and released at each value's last use, so the pool
// stays as small as the expression's live width; an operand register freed
// in the same step may be reused as the destination (in-place ops are safe
// for every opcode body).
func (lw *lowering) emit(root int) *vmProgram {
	nleaves := len(lw.leafSlot)
	if lw.nSlices > nleaves {
		nleaves = lw.nSlices
	}
	p := &vmProgram{nleaves: nleaves, cacheable: lw.cacheable}

	// Count uses so registers can be freed at last use (and so the peephole
	// can prove a product has exactly one consumer).
	for _, v := range lw.vals {
		if v.kind != valOp {
			continue
		}
		for _, a := range v.args {
			if a >= 0 {
				lw.vals[a].uses++
			}
		}
	}
	lw.vals[root].uses++

	if vmSuper.Load() {
		lw.superinstruct(root)
	}

	constIdx := map[int]int{} // value id -> consts slot
	regOf := make([]int, len(lw.vals))
	var free []int
	alloc := func() int {
		if len(free) > 0 {
			// Lowest-numbered free register, for a deterministic, compact
			// numbering.
			best := 0
			for i := 1; i < len(free); i++ {
				if free[i] < free[best] {
					best = i
				}
			}
			r := free[best]
			free = append(free[:best], free[best+1:]...)
			return r
		}
		r := p.nregs
		p.nregs++
		return r
	}
	operand := func(id int) vmOperand {
		v := &lw.vals[id]
		switch v.kind {
		case valLeaf:
			return vmOperand{kind: roLeaf, idx: v.leaf}
		case valConst:
			ci, ok := constIdx[id]
			if !ok {
				ci = len(p.consts)
				p.consts = append(p.consts, v.c)
				constIdx[id] = ci
			}
			return vmOperand{kind: roConst, idx: ci}
		default:
			return vmOperand{kind: roReg, idx: regOf[id]}
		}
	}
	release := func(id int) {
		v := &lw.vals[id]
		if v.kind != valOp {
			return
		}
		v.uses--
		if v.uses == 0 {
			free = append(free, regOf[id])
		}
	}

	for id := range lw.vals {
		v := &lw.vals[id]
		if v.kind != valOp || v.dead {
			continue
		}
		ins := vmInstr{op: v.op, a: operand(v.args[0]), un: v.un, bin: v.bin}
		if v.op == vmAXPY || v.op == vmAXPYR {
			ins.s = v.c
		}
		if v.args[1] >= 0 {
			ins.b = operand(v.args[1])
		}
		if v.args[2] >= 0 {
			ins.c = operand(v.args[2])
		}
		if v.args[3] >= 0 {
			ins.d = operand(v.args[3])
		}
		if v.args[4] >= 0 {
			ins.e = operand(v.args[4])
		}
		for _, a := range v.args {
			if a >= 0 {
				release(a)
			}
		}
		ins.dst = alloc()
		regOf[id] = ins.dst
		p.code = append(p.code, ins)
	}

	// A root that is itself a leaf — or a constant, reachable only through
	// EvalSlices, since Analyze rejects leafless expressions — compiles to a
	// single copy.
	if lw.vals[root].kind != valOp {
		p.code = append(p.code, vmInstr{op: vmCopy, dst: alloc(), a: operand(root)})
		p.outReg = p.code[0].dst
	} else {
		p.outReg = p.code[len(p.code)-1].dst
	}
	return p
}

// ---------------------------------------------------------------------------
// Plan cache.

// progCacheCap bounds the cache; on overflow the whole map is dropped
// (NumExpr-style), which keeps eviction O(1) and the steady state of any
// real solver loop — a handful of distinct expressions — fully cached.
const progCacheCap = 512

// progEntry is one cache slot under single-flight compilation. The goroutine
// that creates the entry (the sole counted miss for its key) compiles outside
// the cache lock and closes ready when p is set; racing goroutines find the
// entry, count a hit, and block on ready instead of double-compiling.
type progEntry struct {
	ready chan struct{}
	p     *vmProgram
}

var progCache = struct {
	mu     sync.Mutex
	m      map[string]*progEntry
	hits   atomic.Int64
	misses atomic.Int64
}{m: map[string]*progEntry{}}

// PlanCacheStats returns the cumulative hit/miss counters of the compiled-
// program cache. Only cacheable programs (no user closures) are counted.
func PlanCacheStats() (hits, misses int64) {
	return progCache.hits.Load(), progCache.misses.Load()
}

// ResetPlanCache empties the program cache and zeroes its counters. In-flight
// compilations keep their detached entries and still release their waiters;
// they are simply no longer reachable from the fresh map.
func ResetPlanCache() {
	progCache.mu.Lock()
	progCache.m = map[string]*progEntry{}
	progCache.mu.Unlock()
	progCache.hits.Store(0)
	progCache.misses.Store(0)
}

// keyHash is a 32-bit FNV-1a over the structural cache key: the "plan key"
// stamped on trace events, stable across runs for structurally equal
// expressions (uncacheable programs hash their unique serialization, so
// distinct closure programs still get distinct labels within a process).
func keyHash(key string) string {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return fmt.Sprintf("%08x", h)
}

// compileProgram lowers e to a register program, consulting the cache
// keyed on the DAG's structural serialization. Two structurally equal
// expressions over different arrays share one program: leaf slots bind to
// concrete arrays only at Analyze time.
//
// Compilation is single-flight: server goroutines racing on a cold key elect
// one compiler (the only counted miss); the rest count hits and wait for its
// program instead of duplicating the work and skewing PlanCacheStats.
func compileProgram(e *Expr) *vmProgram {
	lw, root := lower(e)
	key := lw.key.String()
	if !lw.cacheable {
		p := lw.emit(root)
		p.label = keyHash(key)
		return p
	}
	progCache.mu.Lock()
	if ent, ok := progCache.m[key]; ok {
		progCache.mu.Unlock()
		progCache.hits.Add(1)
		<-ent.ready
		if ent.p == nil {
			// The elected compiler panicked and withdrew its entry; fall back
			// to a local compile rather than propagating its failure.
			p := lw.emit(root)
			p.label = keyHash(key)
			return p
		}
		return ent.p
	}
	if len(progCache.m) >= progCacheCap {
		progCache.m = map[string]*progEntry{}
	}
	ent := &progEntry{ready: make(chan struct{})}
	progCache.m[key] = ent
	progCache.mu.Unlock()
	progCache.misses.Add(1)
	defer func() {
		if ent.p == nil {
			// Compilation panicked: withdraw the poisoned entry so the next
			// caller retries, then release waiters to their local fallback.
			progCache.mu.Lock()
			if progCache.m[key] == ent {
				delete(progCache.m, key)
			}
			progCache.mu.Unlock()
		}
		close(ent.ready)
	}()
	p := lw.emit(root)
	p.label = keyHash(key)
	ent.p = p
	return p
}
