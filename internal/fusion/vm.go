// The fusion register VM: a NumExpr-style blocked virtual machine that
// replaces the per-element closure tree as the execution engine behind
// Eval/SumEval.
//
// compileProgram lowers the Expr DAG into a linear sequence of vector
// instructions over a small pool of scratch registers, with constant
// folding and common-subexpression elimination at compile time. Each
// instruction is then evaluated as one tight slice loop over a cache-sized
// block (internal/dense vec ops), so the per-element cost is a real float
// op, not an indirect closure call per DAG node. Element-wise results are
// bitwise identical to the closure evaluator: every opcode body performs
// exactly the float64 operations the corresponding closure performed, in
// the same per-element order, and block boundaries never change what is
// computed — only how many elements one dispatch covers.
//
// Programs for expressions built purely from the named constructors
// (Add/Mul/Sqrt/...) are cached under a structural serialization of the
// DAG, so solver loops that rebuild the same expression every iteration
// compile once. Expressions containing user closures (Unary/Binary) are
// never cached: two closures can share a code pointer while capturing
// different state, so identity of behavior cannot be established at
// compile time.
package fusion

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"odinhpc/internal/core"
	"odinhpc/internal/dense"
)

// vmOp is a register-VM opcode. The named opcodes get dedicated slice
// loops; vmCallUn/vmCallBin invoke an arbitrary user function per element
// (still blocked, so the loop overhead around the call is amortized).
type vmOp uint8

const (
	vmCopy vmOp = iota // dst = a (root-is-a-leaf programs)
	vmAdd
	vmSub
	vmMul
	vmDiv
	vmSquare
	vmSqrt
	vmNeg
	vmAbs
	vmSin
	vmCos
	vmExp
	vmHypot
	vmCallUn
	vmCallBin
)

var vmOpNames = [...]string{
	vmCopy: "copy", vmAdd: "add", vmSub: "sub", vmMul: "mul", vmDiv: "div",
	vmSquare: "square", vmSqrt: "sqrt", vmNeg: "neg", vmAbs: "abs",
	vmSin: "sin", vmCos: "cos", vmExp: "exp", vmHypot: "hypot",
	vmCallUn: "call", vmCallBin: "call2",
}

// foldable reports whether an opcode may be evaluated at compile time when
// all operands are constants. User calls are excluded: a stateful closure
// must keep being invoked per element exactly as the closure evaluator
// would have.
func (op vmOp) foldable() bool { return op != vmCallUn && op != vmCallBin }

// Operand kinds. A register operand names a scratch block, a leaf operand
// names a flattened input array indexed by the current block offset, and a
// const operand names a pre-broadcast constant block.
const (
	roReg uint8 = iota
	roLeaf
	roConst
)

type vmOperand struct {
	kind uint8
	idx  int
}

// vmInstr is one vector instruction: dst register = op(a[, b]).
type vmInstr struct {
	op   vmOp
	dst  int
	a, b vmOperand
	un   func(float64) float64
	bin  func(float64, float64) float64
}

// vmProgram is a compiled expression: immutable after compileProgram, safe
// for concurrent execution from any number of ranks/workers (scratch state
// comes from a sync.Pool, one vmState per in-flight block sweep).
type vmProgram struct {
	code      []vmInstr
	nregs     int
	nleaves   int
	consts    []float64 // distinct constant values, indexed by roConst idx
	outReg    int       // register holding the result after the last instr
	cacheable bool
	label     string // short hash of the structural cache key, for trace events

	pool sync.Pool // of *vmState
}

// vmState is one worker's scratch: register blocks plus materialized
// constant blocks, all sized to the block size the state was built for.
type vmState struct {
	block  int
	regs   [][]float64
	consts [][]float64
}

// DefaultBlockSize is the number of float64 elements one VM instruction
// covers per dispatch: 1024 elements = 8 KiB per register, so a handful of
// live registers plus two input spans stay comfortably inside L1/L2 while
// still amortizing instruction dispatch over a thousand elements.
const DefaultBlockSize = 1024

var vmBlockSize atomic.Int64

func init() { vmBlockSize.Store(DefaultBlockSize) }

// SetBlockSize sets the VM block size in elements (clamped to >= 16) and
// returns the previous value. Results are block-size-invariant — element-
// wise programs are bitwise identical and fused sums keep the exact same
// accumulation order — so this is a pure performance knob, exposed for the
// BenchmarkFusionVM sweep.
func SetBlockSize(n int) int {
	if n < 16 {
		n = 16
	}
	return int(vmBlockSize.Swap(int64(n)))
}

// BlockSize returns the current VM block size in elements.
func BlockSize() int { return int(vmBlockSize.Load()) }

func (p *vmProgram) getState(block int) *vmState {
	if st, _ := p.pool.Get().(*vmState); st != nil && st.block == block {
		return st
	}
	st := &vmState{block: block}
	slab := make([]float64, p.nregs*block)
	st.regs = make([][]float64, p.nregs)
	for r := range st.regs {
		st.regs[r] = slab[r*block : (r+1)*block]
	}
	if len(p.consts) > 0 {
		cslab := make([]float64, len(p.consts)*block)
		st.consts = make([][]float64, len(p.consts))
		for c, v := range p.consts {
			st.consts[c] = cslab[c*block : (c+1)*block]
			dense.VecFill(st.consts[c], v)
		}
	}
	return st
}

func (p *vmProgram) putState(st *vmState) { p.pool.Put(st) }

// runBlock executes the whole program over elements [lo, hi) of the
// flattened leaves. The last instruction writes directly into out[lo:hi]
// when out is non-nil; otherwise the result block is left in regs[outReg].
func (p *vmProgram) runBlock(st *vmState, leaves [][]float64, out []float64, lo, hi int) {
	n := hi - lo
	resolve := func(o vmOperand) []float64 {
		switch o.kind {
		case roLeaf:
			return leaves[o.idx][lo:hi]
		case roConst:
			return st.consts[o.idx][:n]
		default:
			return st.regs[o.idx][:n]
		}
	}
	last := len(p.code) - 1
	for k := range p.code {
		ins := &p.code[k]
		var dst []float64
		if k == last && out != nil {
			dst = out[lo:hi]
		} else {
			dst = st.regs[ins.dst][:n]
		}
		a := resolve(ins.a)
		switch ins.op {
		case vmCopy:
			dense.VecCopy(dst, a)
		case vmSquare:
			dense.VecSquare(dst, a)
		case vmSqrt:
			dense.VecSqrt(dst, a)
		case vmNeg:
			dense.VecNeg(dst, a)
		case vmAbs:
			dense.VecAbs(dst, a)
		case vmSin:
			dense.VecSin(dst, a)
		case vmCos:
			dense.VecCos(dst, a)
		case vmExp:
			dense.VecExp(dst, a)
		case vmCallUn:
			dense.VecMap(dst, a, ins.un)
		case vmAdd:
			dense.VecAdd(dst, a, resolve(ins.b))
		case vmSub:
			dense.VecSub(dst, a, resolve(ins.b))
		case vmMul:
			dense.VecMul(dst, a, resolve(ins.b))
		case vmDiv:
			dense.VecDiv(dst, a, resolve(ins.b))
		case vmHypot:
			dense.VecHypot(dst, a, resolve(ins.b))
		case vmCallBin:
			dense.VecMap2(dst, a, resolve(ins.b), ins.bin)
		}
	}
}

// runSpan sweeps [lo, hi) in block-size steps, writing results into out.
// It is the body handed to exec.ParallelFor; spans never share state.
func (p *vmProgram) runSpan(st *vmState, leaves [][]float64, out []float64, lo, hi int) {
	for b := lo; b < hi; b += st.block {
		bh := b + st.block
		if bh > hi {
			bh = hi
		}
		p.runBlock(st, leaves, out, b, bh)
	}
}

// sumSpan sweeps [lo, hi) and folds the result blocks into a scalar with
// the exact left-to-right element order of the serial loop `for i in
// [lo,hi) { acc += kernel(i) }`, so the fused reduction is bitwise
// identical to the closure-kernel fold over the same span.
func (p *vmProgram) sumSpan(st *vmState, leaves [][]float64, lo, hi int) float64 {
	var acc float64
	for b := lo; b < hi; b += st.block {
		bh := b + st.block
		if bh > hi {
			bh = hi
		}
		p.runBlock(st, leaves, nil, b, bh)
		acc = dense.VecAccum(acc, st.regs[p.outReg][:bh-b])
	}
	return acc
}

// String disassembles the program (one instruction per line), for the
// hypot example and debugging.
func (p *vmProgram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: %d instrs, %d regs, %d leaves, %d consts\n",
		len(p.code), p.nregs, p.nleaves, len(p.consts))
	opd := func(o vmOperand) string {
		switch o.kind {
		case roLeaf:
			return fmt.Sprintf("leaf%d", o.idx)
		case roConst:
			return fmt.Sprintf("const[%g]", p.consts[o.idx])
		default:
			return fmt.Sprintf("r%d", o.idx)
		}
	}
	for _, ins := range p.code {
		switch ins.op {
		case vmAdd, vmSub, vmMul, vmDiv, vmHypot, vmCallBin:
			fmt.Fprintf(&b, "  r%d = %s %s, %s\n", ins.dst, vmOpNames[ins.op], opd(ins.a), opd(ins.b))
		default:
			fmt.Fprintf(&b, "  r%d = %s %s\n", ins.dst, vmOpNames[ins.op], opd(ins.a))
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Lowering: Expr DAG -> value-numbered IR -> register program.

type valKind uint8

const (
	valLeaf valKind = iota
	valConst
	valOp
)

// vmValue is one value-numbered node of the IR.
type vmValue struct {
	kind valKind
	leaf int     // leaf slot for valLeaf
	c    float64 // constant for valConst
	op   vmOp
	un   func(float64) float64
	bin  func(float64, float64) float64
	args [2]int // value ids (args[1] = -1 for unary)
	uses int
}

// lowering accumulates the IR plus the structural cache key during one DFS
// over the expression DAG.
type lowering struct {
	vals      []vmValue
	byPtr     map[*Expr]int
	byKey     map[string]int
	leafSlot  map[*core.DistArray[float64]]int
	key       strings.Builder
	cacheable bool
}

// intern returns the id of an existing value with the same structural key
// (common-subexpression elimination) or appends v as a new value. Every
// first-seen key is also appended to the program's cache key, so the final
// key is a faithful serialization of the deduplicated DAG.
func (lw *lowering) intern(key string, v vmValue) int {
	if id, ok := lw.byKey[key]; ok {
		return id
	}
	id := len(lw.vals)
	lw.vals = append(lw.vals, v)
	lw.byKey[key] = id
	lw.key.WriteString(key)
	lw.key.WriteByte(';')
	return id
}

func constKey(v float64) string { return fmt.Sprintf("C%016x", math.Float64bits(v)) }

// visit lowers one node, folding builtin ops whose operands are all
// constants (the fold calls the node's own function once — the same
// float64 computation the closure evaluator repeated per element).
func (lw *lowering) visit(e *Expr) int {
	if id, ok := lw.byPtr[e]; ok {
		return id
	}
	var id int
	switch e.kind {
	case kindLeaf:
		slot, ok := lw.leafSlot[e.leaf]
		if !ok {
			slot = len(lw.leafSlot)
			lw.leafSlot[e.leaf] = slot
		}
		id = lw.intern(fmt.Sprintf("L%d", slot), vmValue{kind: valLeaf, leaf: slot})
	case kindConst:
		id = lw.intern(constKey(e.value), vmValue{kind: valConst, c: e.value})
	case kindUnary:
		a := lw.visit(e.args[0])
		if e.vop.foldable() && lw.vals[a].kind == valConst {
			id = lw.intern(constKey(e.un(lw.vals[a].c)), vmValue{kind: valConst, c: e.un(lw.vals[a].c)})
			break
		}
		key := fmt.Sprintf("U%d(%d)", e.vop, a)
		if e.vop == vmCallUn {
			// A user closure has no compile-time identity: never merge two
			// call nodes and never let the program into the cache.
			lw.cacheable = false
			key = fmt.Sprintf("U!%d(%d)", len(lw.vals), a)
		}
		id = lw.intern(key, vmValue{kind: valOp, op: e.vop, un: e.un, args: [2]int{a, -1}})
	default: // kindBinary
		a := lw.visit(e.args[0])
		b := lw.visit(e.args[1])
		if e.vop.foldable() && lw.vals[a].kind == valConst && lw.vals[b].kind == valConst {
			v := e.bin(lw.vals[a].c, lw.vals[b].c)
			id = lw.intern(constKey(v), vmValue{kind: valConst, c: v})
			break
		}
		key := fmt.Sprintf("B%d(%d,%d)", e.vop, a, b)
		if e.vop == vmCallBin {
			lw.cacheable = false
			key = fmt.Sprintf("B!%d(%d,%d)", len(lw.vals), a, b)
		}
		id = lw.intern(key, vmValue{kind: valOp, op: e.vop, bin: e.bin, args: [2]int{a, b}})
	}
	lw.byPtr[e] = id
	return id
}

// lower builds the IR and cache key for e. The leaf-slot numbering is
// first-visit order over distinct arrays — identical to Expr.Leaves(), so
// slot i of the program binds to Plan.leafData[i].
func lower(e *Expr) (*lowering, int) {
	lw := &lowering{
		byPtr:     map[*Expr]int{},
		byKey:     map[string]int{},
		leafSlot:  map[*core.DistArray[float64]]int{},
		cacheable: true,
	}
	root := lw.visit(e)
	fmt.Fprintf(&lw.key, "R%d", root)
	return lw, root
}

// emit turns the IR into a register program. Registers are allocated
// lowest-free-first and released at each value's last use, so the pool
// stays as small as the expression's live width; an operand register freed
// in the same step may be reused as the destination (in-place ops are safe
// for every opcode body).
func (lw *lowering) emit(root int) *vmProgram {
	p := &vmProgram{nleaves: len(lw.leafSlot), cacheable: lw.cacheable}

	// Count uses so registers can be freed at last use.
	for _, v := range lw.vals {
		if v.kind != valOp {
			continue
		}
		lw.vals[v.args[0]].uses++
		if v.args[1] >= 0 {
			lw.vals[v.args[1]].uses++
		}
	}
	lw.vals[root].uses++

	constIdx := map[int]int{} // value id -> consts slot
	regOf := make([]int, len(lw.vals))
	var free []int
	alloc := func() int {
		if len(free) > 0 {
			// Lowest-numbered free register, for a deterministic, compact
			// numbering.
			best := 0
			for i := 1; i < len(free); i++ {
				if free[i] < free[best] {
					best = i
				}
			}
			r := free[best]
			free = append(free[:best], free[best+1:]...)
			return r
		}
		r := p.nregs
		p.nregs++
		return r
	}
	operand := func(id int) vmOperand {
		v := &lw.vals[id]
		switch v.kind {
		case valLeaf:
			return vmOperand{kind: roLeaf, idx: v.leaf}
		case valConst:
			ci, ok := constIdx[id]
			if !ok {
				ci = len(p.consts)
				p.consts = append(p.consts, v.c)
				constIdx[id] = ci
			}
			return vmOperand{kind: roConst, idx: ci}
		default:
			return vmOperand{kind: roReg, idx: regOf[id]}
		}
	}
	release := func(id int) {
		v := &lw.vals[id]
		if v.kind != valOp {
			return
		}
		v.uses--
		if v.uses == 0 {
			free = append(free, regOf[id])
		}
	}

	for id := range lw.vals {
		v := &lw.vals[id]
		if v.kind != valOp {
			continue
		}
		ins := vmInstr{op: v.op, a: operand(v.args[0]), un: v.un, bin: v.bin}
		if v.args[1] >= 0 {
			ins.b = operand(v.args[1])
		}
		release(v.args[0])
		if v.args[1] >= 0 {
			release(v.args[1])
		}
		ins.dst = alloc()
		regOf[id] = ins.dst
		p.code = append(p.code, ins)
	}

	// A root that is itself a leaf compiles to a single copy (Analyze
	// rejects leafless expressions before lowering, so a const root is
	// unreachable).
	if lw.vals[root].kind == valLeaf {
		p.code = append(p.code, vmInstr{op: vmCopy, dst: alloc(), a: operand(root)})
		p.outReg = p.code[0].dst
	} else {
		p.outReg = p.code[len(p.code)-1].dst
	}
	return p
}

// ---------------------------------------------------------------------------
// Plan cache.

// progCacheCap bounds the cache; on overflow the whole map is dropped
// (NumExpr-style), which keeps eviction O(1) and the steady state of any
// real solver loop — a handful of distinct expressions — fully cached.
const progCacheCap = 512

var progCache = struct {
	mu     sync.Mutex
	m      map[string]*vmProgram
	hits   atomic.Int64
	misses atomic.Int64
}{m: map[string]*vmProgram{}}

// PlanCacheStats returns the cumulative hit/miss counters of the compiled-
// program cache. Only cacheable programs (no user closures) are counted.
func PlanCacheStats() (hits, misses int64) {
	return progCache.hits.Load(), progCache.misses.Load()
}

// ResetPlanCache empties the program cache and zeroes its counters.
func ResetPlanCache() {
	progCache.mu.Lock()
	progCache.m = map[string]*vmProgram{}
	progCache.mu.Unlock()
	progCache.hits.Store(0)
	progCache.misses.Store(0)
}

// keyHash is a 32-bit FNV-1a over the structural cache key: the "plan key"
// stamped on trace events, stable across runs for structurally equal
// expressions (uncacheable programs hash their unique serialization, so
// distinct closure programs still get distinct labels within a process).
func keyHash(key string) string {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return fmt.Sprintf("%08x", h)
}

// compileProgram lowers e to a register program, consulting the cache
// keyed on the DAG's structural serialization. Two structurally equal
// expressions over different arrays share one program: leaf slots bind to
// concrete arrays only at Analyze time.
func compileProgram(e *Expr) *vmProgram {
	lw, root := lower(e)
	key := lw.key.String()
	if !lw.cacheable {
		p := lw.emit(root)
		p.label = keyHash(key)
		return p
	}
	progCache.mu.Lock()
	p, ok := progCache.m[key]
	progCache.mu.Unlock()
	if ok {
		progCache.hits.Add(1)
		return p
	}
	progCache.misses.Add(1)
	p = lw.emit(root)
	p.label = keyHash(key)
	progCache.mu.Lock()
	if len(progCache.m) >= progCacheCap {
		progCache.m = map[string]*vmProgram{}
	}
	progCache.m[key] = p
	progCache.mu.Unlock()
	return p
}
