package fusion

import (
	"math"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/exec"
)

func sliceRef(e *Expr, leaves [][]float64, out []float64) {
	// Closure-tree reference for EvalSlices: evaluate elementwise with the
	// same per-node rounding the VM (and its superinstructions) perform.
	var ev func(e *Expr, i int) float64
	ev = func(e *Expr, i int) float64 {
		switch e.kind {
		case kindSliceLeaf:
			return leaves[e.slot][i]
		case kindConst:
			return e.value
		case kindUnary:
			return e.un(ev(e.args[0], i))
		default:
			return e.bin(ev(e.args[0], i), ev(e.args[1], i))
		}
	}
	for i := range out {
		out[i] = ev(e, i)
	}
}

func TestEvalSlicesMatchesReference(t *testing.T) {
	old := exec.Default()
	defer exec.SetDefault(old)
	exprs := map[string]struct {
		build func() *Expr
		nin   int
	}{
		"axpy":  {func() *Expr { return Const(2.5).Mul(SliceSlot(0)).Add(SliceSlot(1)) }, 2},
		"dedup": {func() *Expr { x := SliceSlot(0); return x.Mul(x).Add(x) }, 1},
		"mix": {func() *Expr {
			t := SliceSlot(0).Mul(SliceSlot(1)).Sub(SliceSlot(2))
			return Sqrt(Abs(t)).Add(Exp(Neg(Abs(t)))).Div(Const(1).Add(Sqrt(Abs(t))))
		}, 3},
		"deep16": {func() *Expr {
			e := SliceSlot(0)
			for i := 0; i < 16; i++ {
				e = e.Mul(Const(1.000001)).Add(SliceSlot(1))
			}
			return e
		}, 2},
	}
	for _, workers := range []int{1, 2, 4} {
		exec.SetDefaultWorkers(workers)
		for name, tc := range exprs {
			for _, n := range []int{0, 1, 17, 1000} {
				leaves := make([][]float64, tc.nin)
				for s := range leaves {
					leaves[s] = make([]float64, n)
					for i := range leaves[s] {
						leaves[s][i] = float64((i+1)*(s+2)%37)/7 - 2
					}
				}
				got := make([]float64, n)
				EvalSlices(tc.build(), leaves, got)
				want := make([]float64, n)
				sliceRef(tc.build(), leaves, want)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s w=%d n=%d: [%d] = %x, want %x", name, workers, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestEvalSlicesConstRoot(t *testing.T) {
	// A leafless expression is rejected by Analyze but legal here: the root
	// constant folds and the program is a single copy from the const block.
	out := []float64{1, 2, 3}
	EvalSlices(Const(3).Add(Const(4)), nil, out)
	for i, v := range out {
		if v != 7 {
			t.Fatalf("[%d] = %g, want 7", i, v)
		}
	}
}

func TestEvalSlicesSharesPlanCache(t *testing.T) {
	ResetPlanCache()
	mk := func() *Expr { return SliceSlot(0).Mul(Const(3)).Add(SliceSlot(1)) }
	x, y := []float64{1, 2}, []float64{3, 4}
	out := make([]float64, 2)
	EvalSlices(mk(), [][]float64{x, y}, out)
	_, misses0 := PlanCacheStats()
	EvalSlices(mk(), [][]float64{x, y}, out)
	hits, misses := PlanCacheStats()
	if hits < 1 || misses != misses0 {
		t.Fatalf("rebuilt template should hit the plan cache: hits=%d misses=%d->%d", hits, misses0, misses)
	}
}

func TestSliceAndVarTemplatesShareOneProgram(t *testing.T) {
	// A slice expression and the structurally identical DistArray expression
	// serialize to the same key, so the second compiles to a cache hit.
	err := comm.Run(1, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		n := 32
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return 2 })
		ResetPlanCache()
		Eval(Var(x).Mul(Const(2)).Add(Var(y)))
		hits0, misses0 := PlanCacheStats()
		out := make([]float64, 8)
		EvalSlices(SliceSlot(0).Mul(Const(2)).Add(SliceSlot(1)),
			[][]float64{make([]float64, 8), make([]float64, 8)}, out)
		hits, misses := PlanCacheStats()
		if hits != hits0+1 || misses != misses0 {
			t.Errorf("slice template should reuse the Var program: hits %d->%d misses %d->%d",
				hits0, hits, misses0, misses)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvalSlicesPanics(t *testing.T) {
	expect := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expect("negative slot", func() { SliceSlot(-1) })
	expect("too few slices", func() {
		EvalSlices(SliceSlot(0).Add(SliceSlot(1)), [][]float64{{1}}, []float64{0})
	})
	expect("length mismatch", func() {
		EvalSlices(SliceSlot(0).Add(SliceSlot(1)), [][]float64{{1}, {1, 2}}, []float64{0})
	})
	expect("mixing Var and SliceSlot", func() {
		// comm.Run recovers callback panics into its error; re-raise.
		err := comm.Run(1, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			x := core.FromFunc(ctx, []int{4}, func(g []int) float64 { return 1 })
			EvalSlices(Var(x).Add(SliceSlot(0)), [][]float64{{1, 2, 3, 4}}, make([]float64, 4))
			return nil
		})
		if err != nil {
			panic(err)
		}
	})
}
