package fusion

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"odinhpc/internal/core"
	"odinhpc/internal/distmap"
	"odinhpc/internal/exec"
)

// bitsEqual compares two local arrays bitwise (NaN-safe, unlike ==).
func bitsEqual(a, b *core.DistArray[float64]) error {
	af, bf := a.Local().Flatten(), b.Local().Flatten()
	if len(af) != len(bf) {
		return fmt.Errorf("local sizes differ: %d vs %d", len(af), len(bf))
	}
	for i := range af {
		if math.Float64bits(af[i]) != math.Float64bits(bf[i]) {
			return fmt.Errorf("[%d] %x != %x (%g vs %g)",
				i, math.Float64bits(af[i]), math.Float64bits(bf[i]), af[i], bf[i])
		}
	}
	return nil
}

func TestVMMatchesClosureReference(t *testing.T) {
	onRanks(t, sizes, func(ctx *core.Context) error {
		n := 143
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0])/10 - 3 })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return math.Cos(float64(g[0])) })
		exprs := []*Expr{
			Var(x),
			Var(x).Add(Var(y)),
			Sqrt(Var(x).Square().Add(Var(y).Square())),
			Exp(Neg(Var(x))).Mul(Var(y)).Sub(Const(0.5)).Div(Var(x)),
			Abs(Sin(Var(x)).Mul(Cos(Var(y)))),
			Hypot(Var(x), Var(y)),
			Var(x).Div(Var(y)), // hits zeros of cos -> Inf paths
			Sqrt(Var(x)),       // negative inputs -> NaN paths
			Unary("scaled", func(v float64) float64 { return 3*v + 1 }, Var(x).Mul(Var(y))),
			Binary("wsum", func(a, b float64) float64 { return 0.25*a + 0.75*b }, Var(x), Var(y)),
		}
		for i, e := range exprs {
			p := Analyze(e)
			if err := bitsEqual(p.Execute(), p.executeClosure()); err != nil {
				return fmt.Errorf("expr %d (%s): VM != closure: %v", i, e, err)
			}
		}
		return nil
	})
}

func TestVMSumMatchesClosureReferenceAllPools(t *testing.T) {
	old := exec.Default()
	defer exec.SetDefault(old)
	for _, w := range []int{1, 2, 4, 7} {
		exec.SetDefault(exec.New(exec.WithWorkers(w)))
		onRanks(t, []int{1, 3}, func(ctx *core.Context) error {
			x := core.Random(ctx, []int{977}, 5)
			y := core.Random(ctx, []int{977}, 6)
			p := Analyze(Sqrt(Var(x).Square().Add(Var(y).Square())))
			vm, cl := p.sumLocal(), p.sumLocalClosure()
			if math.Float64bits(vm) != math.Float64bits(cl) {
				return fmt.Errorf("w=%d: register-accumulator sum %x != closure sum %x", w, math.Float64bits(vm), math.Float64bits(cl))
			}
			return nil
		})
	}
}

func TestPlanCacheHitOnRebuiltExpression(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	onRanks(t, []int{1}, func(ctx *core.Context) error {
		x := core.Random(ctx, []int{100}, 1)
		y := core.Random(ctx, []int{100}, 2)
		build := func() *Expr { return Sqrt(Var(x).Square().Add(Var(y).Square())) }
		_ = Eval(build())
		h, m := PlanCacheStats()
		if h != 0 || m != 1 {
			return fmt.Errorf("after first Eval: hits=%d misses=%d, want 0/1", h, m)
		}
		// A solver loop rebuilds the expression every iteration; each
		// rebuild must hit the cache, not recompile.
		for i := 0; i < 5; i++ {
			_ = Eval(build())
		}
		h, m = PlanCacheStats()
		if h != 5 || m != 1 {
			return fmt.Errorf("after rebuilds: hits=%d misses=%d, want 5/1", h, m)
		}
		// Structurally equal expression over different arrays shares the
		// same program.
		z := core.Random(ctx, []int{100}, 3)
		w := core.Random(ctx, []int{100}, 4)
		_ = Eval(Sqrt(Var(z).Square().Add(Var(w).Square())))
		h, m = PlanCacheStats()
		if h != 6 || m != 1 {
			return fmt.Errorf("different arrays, same structure: hits=%d misses=%d, want 6/1", h, m)
		}
		return nil
	})
}

func TestUserClosuresAreNotCached(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	onRanks(t, []int{1}, func(ctx *core.Context) error {
		x := core.FromFunc(ctx, []int{20}, func(g []int) float64 { return float64(g[0]) })
		scaled := func(k float64) *Expr {
			return Unary("scale", func(v float64) float64 { return k * v }, Var(x))
		}
		// Two closures from the same code pointer capture different state;
		// a cached program would silently reuse the first k.
		a := Eval(scaled(2))
		b := Eval(scaled(3))
		for g := 0; g < 20; g++ {
			if a.At(g) != 2*float64(g) || b.At(g) != 3*float64(g) {
				return fmt.Errorf("[%d] got %g/%g want %g/%g", g, a.At(g), b.At(g), 2*float64(g), 3*float64(g))
			}
		}
		if h, m := PlanCacheStats(); h != 0 || m != 0 {
			return fmt.Errorf("closure programs touched the cache: hits=%d misses=%d", h, m)
		}
		return nil
	})
}

func TestCSEMergesStructuralDuplicates(t *testing.T) {
	onRanks(t, []int{1}, func(ctx *core.Context) error {
		x := core.Random(ctx, []int{50}, 1)
		y := core.Random(ctx, []int{50}, 2)
		// Pointer-shared subtree.
		s := Var(x).Mul(Var(y))
		shared := s.Add(s)
		// Structurally equal but distinct nodes.
		dup := Var(x).Mul(Var(y)).Add(Var(x).Mul(Var(y)))
		for name, e := range map[string]*Expr{"shared": shared, "dup": dup} {
			p := Analyze(e)
			instrs, _ := p.Program()
			if instrs != 2 { // one mul + one add, not two muls
				return fmt.Errorf("%s: %d instructions, want 2\n%s", name, instrs, p.ProgramString())
			}
			if err := bitsEqual(p.Execute(), p.executeClosure()); err != nil {
				return fmt.Errorf("%s: %v", name, err)
			}
		}
		return nil
	})
}

func TestConstantFolding(t *testing.T) {
	onRanks(t, []int{1}, func(ctx *core.Context) error {
		x := core.FromFunc(ctx, []int{10}, func(g []int) float64 { return float64(g[0]) })
		// sin(0) + 2*3 folds to a single add of const 6... with sin(0)=0:
		// (x + (sin(0) + 2*3)) -> x + 6.
		e := Var(x).Add(Sin(Const(0)).Add(Const(2).Mul(Const(3))))
		p := Analyze(e)
		instrs, _ := p.Program()
		if instrs != 1 {
			return fmt.Errorf("%d instructions, want 1 (constants not folded)\n%s", instrs, p.ProgramString())
		}
		if len(p.prog.consts) != 1 || p.prog.consts[0] != 6 {
			return fmt.Errorf("consts = %v, want [6]", p.prog.consts)
		}
		got := p.Execute()
		for g := 0; g < 10; g++ {
			if got.At(g) != float64(g)+6 {
				return fmt.Errorf("[%d] = %g", g, got.At(g))
			}
		}
		// User closures must NOT be folded: a stateful closure is invoked
		// per element by the closure evaluator, so the VM keeps calling it.
		calls := 0
		st := Unary("counted", func(v float64) float64 { calls++; return v + 1 }, Const(1))
		_ = Eval(Var(x).Mul(st))
		if calls < 10 {
			return fmt.Errorf("user closure folded at compile time (%d calls)", calls)
		}
		return nil
	})
}

func TestRegisterPoolStaysSmall(t *testing.T) {
	onRanks(t, []int{1}, func(ctx *core.Context) error {
		x := core.Random(ctx, []int{64}, 1)
		y := core.Random(ctx, []int{64}, 2)
		// The hypot program needs exactly 2 registers: square/square/add/sqrt.
		p := Analyze(Sqrt(Var(x).Square().Add(Var(y).Square())))
		if instrs, regs := p.Program(); instrs != 4 || regs != 2 {
			return fmt.Errorf("hypot program: %d instrs, %d regs, want 4/2\n%s", instrs, regs, p.ProgramString())
		}
		// A long left-leaning chain reuses one register.
		e := Var(x).Add(Const(1))
		for i := 0; i < 30; i++ {
			e = Sqrt(e.Square().Add(Const(1)))
		}
		p = Analyze(e)
		if _, regs := p.Program(); regs > 2 {
			return fmt.Errorf("chain program uses %d regs, want <= 2", regs)
		}
		if err := bitsEqual(p.Execute(), p.executeClosure()); err != nil {
			return err
		}
		return nil
	})
}

func TestBlockSizeInvariance(t *testing.T) {
	defer SetBlockSize(DefaultBlockSize)
	onRanks(t, []int{1, 2}, func(ctx *core.Context) error {
		x := core.Random(ctx, []int{5000}, 7)
		y := core.Random(ctx, []int{5000}, 8)
		e := Exp(Neg(Var(x).Square())).Mul(Cos(Var(y))).Add(Var(x).Div(Var(y)))
		SetBlockSize(DefaultBlockSize)
		ref := Eval(e)
		refSum := SumEval(e)
		for _, bs := range []int{16, 100, 1 << 16} {
			SetBlockSize(bs)
			if err := bitsEqual(Eval(e), ref); err != nil {
				return fmt.Errorf("block=%d: %v", bs, err)
			}
			if s := SumEval(e); math.Float64bits(s) != math.Float64bits(refSum) {
				return fmt.Errorf("block=%d: sum %g != %g", bs, s, refSum)
			}
		}
		return nil
	})
}

func TestRootLeafCompilesToCopy(t *testing.T) {
	onRanks(t, []int{1, 3}, func(ctx *core.Context) error {
		x := core.Random(ctx, []int{77}, 9)
		p := Analyze(Var(x))
		if instrs, regs := p.Program(); instrs != 1 || regs != 1 {
			return fmt.Errorf("leaf program: %d instrs %d regs, want 1/1", instrs, regs)
		}
		got := p.Execute()
		if err := bitsEqual(got, x); err != nil {
			return err
		}
		// The result is a copy, not a view over x's storage.
		got.Local().Fill(0)
		if x.Local().At(0) == 0 && x.Local().Size() > 0 {
			return fmt.Errorf("Execute aliased the leaf storage")
		}
		return nil
	})
}

func TestPlanRedistributedCountsDistinctArrays(t *testing.T) {
	onRanks(t, []int{4}, func(ctx *core.Context) error {
		n := 48
		x := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) })
		y := core.FromFunc(ctx, []int{n}, func(g []int) float64 { return float64(g[0]) + 1 },
			core.Options{Kind: distmap.Cyclic})
		// y appears three times (twice via one Var node, once via a fresh
		// Var node): one distinct array, one redistribution, one leaf slot.
		vy := Var(y)
		e := vy.Mul(vy).Add(Var(y)).Add(Var(x))
		if got := len(e.Leaves()); got != 2 {
			return fmt.Errorf("Leaves() = %d distinct arrays, want 2", got)
		}
		p := Analyze(e)
		if p.Redistributed != 1 {
			return fmt.Errorf("Redistributed = %d, want 1 (distinct arrays only)", p.Redistributed)
		}
		if len(p.leafData) != 2 || p.prog.nleaves != 2 {
			return fmt.Errorf("flattened %d leaves, program binds %d, want 2/2", len(p.leafData), p.prog.nleaves)
		}
		got := p.Execute()
		for g := 0; g < n; g++ {
			v := float64(g)
			want := (v+1)*(v+1) + (v + 1) + v
			if got.At(g) != want {
				return fmt.Errorf("[%d] = %g want %g", g, got.At(g), want)
			}
		}
		return nil
	})
}

func TestProgramString(t *testing.T) {
	onRanks(t, []int{1}, func(ctx *core.Context) error {
		x := core.Random(ctx, []int{10}, 1)
		y := core.Random(ctx, []int{10}, 2)
		p := Analyze(Sqrt(Var(x).Square().Add(Var(y).Square())))
		s := p.ProgramString()
		for _, want := range []string{"square", "add", "sqrt", "leaf0", "leaf1", "4 instrs", "2 regs"} {
			if !strings.Contains(s, want) {
				return fmt.Errorf("disassembly missing %q:\n%s", want, s)
			}
		}
		return nil
	})
}
