package iodist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/distmap"
)

func TestSaveLoadRoundTrip1D(t *testing.T) {
	dir := t.TempDir()
	for _, p := range []int{1, 2, 3, 4} {
		path := filepath.Join(dir, fmt.Sprintf("a%d.odn", p))
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			x := core.FromFunc(ctx, []int{37}, func(g []int) float64 { return float64(g[0]) * 1.5 })
			//lint:allow p2pmatch Save funnels shards to rank 0 with a gather protocol vetted by this suite at several P
			if err := Save(x, path); err != nil {
				return err
			}
			y, err := Load[float64](ctx, path)
			if err != nil {
				return err
			}
			full := y.Gather()
			for g := 0; g < 37; g++ {
				if full.At(g) != float64(g)*1.5 {
					return fmt.Errorf("[%d]=%g", g, full.At(g))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestSaveLoadAcrossRankCounts(t *testing.T) {
	// Write with 4 ranks, read with 3 and 1: the file format is
	// distribution-independent.
	dir := t.TempDir()
	path := filepath.Join(dir, "cross.odn")
	err := comm.Run(4, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.FromFunc(ctx, []int{50}, func(g []int) float64 { return float64(g[0] * g[0]) })
		//lint:allow p2pmatch Save funnels shards to rank 0 with a gather protocol vetted by this suite at several P
		return Save(x, path)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3} {
		err := comm.Run(p, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			y, err := Load[float64](ctx, path)
			if err != nil {
				return err
			}
			if y.GlobalSize() != 50 {
				return fmt.Errorf("size %d", y.GlobalSize())
			}
			for g := 0; g < 50; g++ {
				if y.At(g) != float64(g*g) {
					return fmt.Errorf("[%d]=%g", g, y.At(g))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("read p=%d: %v", p, err)
		}
	}
}

func TestSaveLoad2D(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.odn")
	err := comm.Run(3, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.FromFunc(ctx, []int{7, 4}, func(g []int) float64 { return float64(100*g[0] + g[1]) })
		//lint:allow p2pmatch Save funnels shards to rank 0 with a gather protocol vetted by this suite at several P
		if err := Save(x, path); err != nil {
			return err
		}
		y, err := Load[float64](ctx, path, core.Options{Kind: distmap.Cyclic})
		if err != nil {
			return err
		}
		full := y.Gather()
		for i := 0; i < 7; i++ {
			for j := 0; j < 4; j++ {
				if full.At(i, j) != float64(100*i+j) {
					return fmt.Errorf("[%d,%d]=%g", i, j, full.At(i, j))
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadInt64(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "i.odn")
	err := comm.Run(2, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.Arange[int64](ctx, 20)
		//lint:allow p2pmatch Save funnels shards to rank 0 with a gather protocol vetted by this suite at several P
		if err := Save(x, path); err != nil {
			return err
		}
		y, err := Load[int64](ctx, path)
		if err != nil {
			return err
		}
		for g := 0; g < 20; g++ {
			if y.At(g) != int64(g) {
				return fmt.Errorf("[%d]=%d", g, y.At(g))
			}
		}
		// Loading with the wrong dtype fails cleanly on every rank.
		if _, err := Load[float64](ctx, path); err == nil {
			return fmt.Errorf("dtype mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadCyclicSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.odn")
	err := comm.Run(3, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.FromFunc(ctx, []int{17}, func(g []int) float64 { return float64(g[0]) },
			core.Options{Kind: distmap.Cyclic})
		//lint:allow p2pmatch Save funnels shards to rank 0 with a gather protocol vetted by this suite at several P
		if err := Save(x, path); err != nil {
			return err
		}
		y, err := Load[float64](ctx, path)
		if err != nil {
			return err
		}
		for g := 0; g < 17; g++ {
			if y.At(g) != float64(g) {
				return fmt.Errorf("[%d]=%g", g, y.At(g))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	err := comm.Run(2, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		if _, err := Load[float64](ctx, filepath.Join(dir, "missing.odn")); err == nil {
			return fmt.Errorf("missing file accepted")
		}
		// Corrupt magic.
		bad := filepath.Join(dir, "bad.odn")
		if c.Rank() == 0 {
			os.WriteFile(bad, []byte("NOPEnopenopenopenope"), 0o644)
		}
		c.Barrier()
		if _, err := Load[float64](ctx, bad); err == nil {
			return fmt.Errorf("bad magic accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSaveUnsupportedType(t *testing.T) {
	err := comm.Run(1, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.Zeros[float32](ctx, []int{4})
		//lint:allow p2pmatch Save on a single rank; the rejected-dtype error path returns before any exchange
		if err := Save(x, "/tmp/nope.odn"); err == nil {
			return fmt.Errorf("float32 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSaveCreateFailurePropagates(t *testing.T) {
	err := comm.Run(3, func(c *comm.Comm) error {
		ctx := core.NewContext(c)
		x := core.Zeros[float64](ctx, []int{4})
		// Directory that does not exist: rank 0 fails, all ranks must
		// return an error rather than deadlock.
		//lint:allow p2pmatch Deliberate failure injection: rank 0's create fails and every rank must see the error, not a hang
		if err := Save(x, "/nonexistent-dir-odin/x.odn"); err == nil {
			return fmt.Errorf("expected create failure")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
