package iodist

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/distmap"
)

// TestSaveLoadQuick: random shapes, random contents, random writer and
// reader rank counts and distributions — the file contract is exact.
func TestSaveLoadQuick(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(3)
		shape := make([]int, nd)
		total := 1
		for d := range shape {
			shape[d] = 1 + rng.Intn(6)
			total *= shape[d]
		}
		pw := 1 + rng.Intn(4)
		pr := 1 + rng.Intn(4)
		vals := make([]float64, total)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		path := filepath.Join(dir, fmt.Sprintf("q%d.odn", seed&0xffff))
		// Write under pw ranks.
		err := comm.Run(pw, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			x := core.FromFunc(ctx, shape, func(g []int) float64 {
				idx := 0
				for d, i := range g {
					idx = idx*shape[d] + i
				}
				return vals[idx]
			})
			//lint:allow p2pmatch Save funnels shards to rank 0 with a gather protocol vetted by the iodist suite at several P
			return Save(x, path)
		})
		if err != nil {
			return false
		}
		// Read under pr ranks with a random distribution.
		var opt core.Options
		if rng.Intn(2) == 0 {
			opt.Kind = distmap.Cyclic
		}
		err = comm.Run(pr, func(c *comm.Comm) error {
			ctx := core.NewContext(c)
			y, err := Load[float64](ctx, path, opt)
			if err != nil {
				return err
			}
			full := y.Gather()
			i := 0
			var bad error
			full.Each(func(v float64) {
				if v != vals[i] && bad == nil {
					bad = fmt.Errorf("flat %d: %g want %g", i, v, vals[i])
				}
				i++
			})
			return bad
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
