// Package iodist implements parallel file IO for distributed arrays
// (paper §III.H): every rank writes and reads exactly its own slabs of a
// shared binary file, with no gather through a master rank. The format is a
// fixed self-describing header followed by the array body in global
// row-major order, so files written under one distribution or rank count
// load correctly under any other.
package iodist

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"odinhpc/internal/comm"
	"odinhpc/internal/core"
	"odinhpc/internal/dense"
)

var magic = [4]byte{'O', 'D', 'N', '1'}

// dtype codes stored in the header.
const (
	dtFloat64 uint32 = 1
	dtInt64   uint32 = 2
)

func dtypeOf[T dense.Elem]() (uint32, error) {
	var z T
	switch any(z).(type) {
	case float64:
		return dtFloat64, nil
	case int64:
		return dtInt64, nil
	default:
		return 0, fmt.Errorf("iodist: unsupported element type %T (float64 and int64 files only)", z)
	}
}

// headerSize returns the byte length of the header for ndim dimensions.
func headerSize(ndim int) int64 {
	// magic + version + dtype + ndim + dims.
	return int64(4 + 4 + 4 + 4 + 8*ndim)
}

func encodeHeader(dtype uint32, shape []int) []byte {
	buf := make([]byte, headerSize(len(shape)))
	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint32(buf[4:], 1) // version
	binary.LittleEndian.PutUint32(buf[8:], dtype)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(shape)))
	for d, s := range shape {
		binary.LittleEndian.PutUint64(buf[16+8*d:], uint64(s))
	}
	return buf
}

func decodeHeader(f *os.File) (dtype uint32, shape []int, err error) {
	fixed := make([]byte, 16)
	if _, err := f.ReadAt(fixed, 0); err != nil {
		return 0, nil, fmt.Errorf("iodist: short header: %w", err)
	}
	if [4]byte(fixed[0:4]) != magic {
		return 0, nil, fmt.Errorf("iodist: bad magic %q", fixed[0:4])
	}
	if v := binary.LittleEndian.Uint32(fixed[4:]); v != 1 {
		return 0, nil, fmt.Errorf("iodist: unsupported version %d", v)
	}
	dtype = binary.LittleEndian.Uint32(fixed[8:])
	ndim := int(binary.LittleEndian.Uint32(fixed[12:]))
	if ndim <= 0 || ndim > 32 {
		return 0, nil, fmt.Errorf("iodist: implausible ndim %d", ndim)
	}
	dims := make([]byte, 8*ndim)
	if _, err := f.ReadAt(dims, 16); err != nil {
		return 0, nil, fmt.Errorf("iodist: short dims: %w", err)
	}
	shape = make([]int, ndim)
	for d := range shape {
		shape[d] = int(binary.LittleEndian.Uint64(dims[8*d:]))
	}
	return dtype, shape, nil
}

func toBytes[T dense.Elem](vals []T) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		switch x := any(v).(type) {
		case float64:
			binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
		case int64:
			binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
		}
	}
	return out
}

func fromBytes[T dense.Elem](buf []byte, vals []T) {
	for i := range vals {
		u := binary.LittleEndian.Uint64(buf[8*i:])
		switch p := any(&vals[i]).(type) {
		case *float64:
			*p = math.Float64frombits(u)
		case *int64:
			*p = int64(u)
		}
	}
}

// Save writes a distributed array to path. Rank 0 creates the file and
// writes the header; every rank then writes its own slabs in place with
// WriteAt — the "full control to read or write any arbitrary distributed
// file format" path of §III.H. Collective.
func Save[T dense.Elem](x *core.DistArray[T], path string) error {
	dtype, err := dtypeOf[T]()
	if err != nil {
		return err
	}
	ctx := x.Context()
	ctx.Control(core.OpIO, 1)
	shape := x.Shape()
	hs := headerSize(len(shape))
	var createErr error
	if ctx.Rank() == 0 {
		f, err := os.Create(path)
		if err != nil {
			createErr = err
		} else {
			if _, err := f.WriteAt(encodeHeader(dtype, shape), 0); err != nil {
				createErr = err
			}
			// Pre-size the file so concurrent WriteAt never races the end.
			if err := f.Truncate(hs + int64(x.GlobalSize())*8); err != nil && createErr == nil {
				createErr = err
			}
			f.Close()
		}
	}
	// Propagate rank-0 failure everywhere rather than deadlocking.
	okFlag := 1
	if createErr != nil {
		okFlag = 0
	}
	if got := bcastInt(ctx, okFlag); got == 0 {
		if createErr != nil {
			return fmt.Errorf("iodist: create %s: %w", path, createErr)
		}
		return fmt.Errorf("iodist: create %s failed on rank 0", path)
	}
	ctx.Comm().Barrier()

	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("iodist: open for write: %w", err)
	}
	defer f.Close()
	me := ctx.Rank()
	for l := 0; l < x.Map().LocalCount(me); l++ {
		g := x.Map().LocalToGlobal(me, l)
		vals := slabValues(x, l)
		off := hs + globalOffset(shape, x.Axis(), g)*8
		if _, err := f.WriteAt(toBytes(vals), off); err != nil {
			return fmt.Errorf("iodist: write slab %d: %w", g, err)
		}
	}
	ctx.Comm().Barrier() // file complete once everyone returns
	return nil
}

// Load reads a distributed array from path, distributing it according to
// opts (block over axis 0 by default). Collective.
func Load[T dense.Elem](ctx *core.Context, path string, opts ...core.Options) (*core.DistArray[T], error) {
	wantDtype, err := dtypeOf[T]()
	if err != nil {
		return nil, err
	}
	ctx.Control(core.OpIO, 2)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("iodist: open: %w", err)
	}
	defer f.Close()
	dtype, shape, err := decodeHeader(f)
	if err != nil {
		return nil, err
	}
	if dtype != wantDtype {
		return nil, fmt.Errorf("iodist: file dtype code %d, requested %d", dtype, wantDtype)
	}
	saved := ctx.ControlMessagesEnabled()
	ctx.SetControlMessages(false)
	defer ctx.SetControlMessages(saved)
	x := core.Zeros[T](ctx, shape, opts...)
	hs := headerSize(len(shape))
	slab := slabElems(shape, x.Axis())
	me := ctx.Rank()
	buf := make([]byte, 8*slab)
	vals := make([]T, slab)
	for l := 0; l < x.Map().LocalCount(me); l++ {
		g := x.Map().LocalToGlobal(me, l)
		off := hs + globalOffset(shape, x.Axis(), g)*8
		if _, err := f.ReadAt(buf, off); err != nil {
			return nil, fmt.Errorf("iodist: read slab %d: %w", g, err)
		}
		fromBytes(buf, vals)
		setSlab(x, l, vals)
	}
	return x, nil
}

// globalOffset returns the element offset of slab g in global row-major
// order. Only axis 0 keeps slabs contiguous; other axes are rejected at
// save time by slabValues.
func globalOffset(shape []int, axis, g int) int64 {
	slab := slabElems(shape, axis)
	return int64(g) * int64(slab)
}

func slabElems(shape []int, axis int) int {
	n := 1
	for d, s := range shape {
		if d != axis {
			n *= s
		}
	}
	return n
}

func slabValues[T dense.Elem](x *core.DistArray[T], l int) []T {
	if x.Axis() != 0 {
		panic("iodist: only axis-0 distributions are file-mappable")
	}
	a := x.Local()
	slab := slabElems(x.Shape(), 0)
	if a.IsContiguous() {
		return a.Raw()[l*slab : (l+1)*slab]
	}
	return a.Slice(0, dense.Range{Start: l, Stop: l + 1, Step: 1}).Flatten()
}

func setSlab[T dense.Elem](x *core.DistArray[T], l int, vals []T) {
	if x.Axis() != 0 {
		panic("iodist: only axis-0 distributions are file-mappable")
	}
	a := x.Local()
	slab := len(vals)
	if a.IsContiguous() {
		copy(a.Raw()[l*slab:(l+1)*slab], vals)
		return
	}
	view := a.Slice(0, dense.Range{Start: l, Stop: l + 1, Step: 1})
	i := 0
	view.EachIndexed(func(idx []int, _ T) {
		view.Set(vals[i], idx...)
		i++
	})
}

func bcastInt(ctx *core.Context, v int) int {
	return comm.BcastScalar(ctx.Comm(), 0, v)
}
