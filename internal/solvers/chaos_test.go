package solvers_test

// Chaos conformance of the distributed Krylov solvers: a full CG and
// BiCGSTAB solve — dozens of collectives plus halo exchanges per iteration —
// must converge to the bitwise-identical solution under comm-fabric
// perturbation, or fail with a typed comm.FaultError. This is the
// end-to-end gate: if any reduction tree, ghost exchange, or redistribution
// silently reordered arithmetic under faults, the iterate history would
// diverge immediately.

import (
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/comm/chaostest"
	"odinhpc/internal/distmap"
	"odinhpc/internal/galeri"
	"odinhpc/internal/solvers"
	"odinhpc/internal/tpetra"
)

func TestChaosSolvers(t *testing.T) {
	const n = 24
	setup := func(c *comm.Comm) (*tpetra.CrsMatrix, *tpetra.Vector, *tpetra.Vector) {
		m := distmap.NewBlock(n, c.Size())
		a := galeri.Laplace1DDist(c, m)
		b := tpetra.NewVector(c, m)
		b.FillFromGlobal(func(g int) float64 { return 1 + float64(g%5)*0.125 })
		x := tpetra.NewVector(c, m)
		return a, b, x
	}
	kernels := []chaostest.Kernel{
		{Name: "cg-laplace1d", Body: func(c *comm.Comm) (any, error) {
			a, b, x := setup(c)
			res, err := solvers.CG(a, b, x, solvers.Options{Tol: 1e-10, MaxIter: 200, RecordHistory: true})
			if err != nil {
				return nil, err
			}
			out := append(x.GatherAll(), float64(res.Iterations), res.Residual)
			return append(out, res.History...), nil
		}},
		{Name: "bicgstab-laplace1d", Body: func(c *comm.Comm) (any, error) {
			a, b, x := setup(c)
			res, err := solvers.BiCGSTAB(a, b, x, solvers.Options{Tol: 1e-10, MaxIter: 200})
			if err != nil {
				return nil, err
			}
			return append(x.GatherAll(), float64(res.Iterations), res.Residual), nil
		}},
	}
	chaostest.Run(t, []int{1, 2, 4}, 9090, kernels...)
}
