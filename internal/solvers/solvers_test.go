package solvers

import (
	"fmt"
	"math"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
	"odinhpc/internal/galeri"
	"odinhpc/internal/teuchos"
	"odinhpc/internal/tpetra"
)

var sizes = []int{1, 2, 4}

func onRanks(t *testing.T, ps []int, fn func(c *comm.Comm) error) {
	t.Helper()
	for _, p := range ps {
		if err := comm.Run(p, fn); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// diagPrec is an inline Jacobi preconditioner used before internal/precond
// exists in the dependency chain.
type diagPrec struct{ inv *tpetra.Vector }

func newDiagPrec(a *tpetra.CrsMatrix) *diagPrec {
	d := a.Diagonal()
	inv := tpetra.NewVector(d.Comm(), d.Map())
	inv.Reciprocal(d)
	return &diagPrec{inv: inv}
}

func (p *diagPrec) ApplyInverse(r, z *tpetra.Vector) { z.ElementWiseMultiply(p.inv, r) }

// manufactured returns (A, b, xTrue) for the 1-D Laplacian with a known
// solution, distributed over the block map.
func manufactured(c *comm.Comm, n int) (*tpetra.CrsMatrix, *tpetra.Vector, *tpetra.Vector) {
	m := distmap.NewBlock(n, c.Size())
	a := galeri.Laplace1DDist(c, m)
	xTrue := tpetra.NewVector(c, m)
	xTrue.FillFromGlobal(func(g int) float64 { return math.Sin(0.1 * float64(g)) })
	b := tpetra.NewVector(c, m)
	a.Apply(xTrue, b)
	return a, b, xTrue
}

func checkSolution(x, xTrue *tpetra.Vector, tol float64) error {
	d := x.Clone()
	d.Axpy(-1, xTrue)
	if err := d.Norm2() / xTrue.Norm2(); err > tol {
		return fmt.Errorf("solution error %g > %g", err, tol)
	}
	return nil
}

func TestCGOnLaplacian(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		a, b, xTrue := manufactured(c, 64)
		x := tpetra.NewVector(c, a.Map())
		res, err := CG(a, b, x, Options{Tol: 1e-10, RecordHistory: true})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("CG did not converge: %v", res)
		}
		if got := ResidualNorm(a, b, x); got > 1e-9 {
			return fmt.Errorf("true residual %g", got)
		}
		if len(res.History) != res.Iterations+1 {
			return fmt.Errorf("history len %d, iters %d", len(res.History), res.Iterations)
		}
		// Monotone-ish decrease overall: final << initial.
		if res.History[len(res.History)-1] > 1e-2*res.History[0] == false && res.History[0] != 0 {
			_ = res
		}
		return checkSolution(x, xTrue, 1e-7)
	})
}

func TestCGIterationCountsIndependentOfP(t *testing.T) {
	// The distributed solver must be algorithmically identical to serial:
	// same iteration count for every rank count.
	var iters []int
	for _, p := range []int{1, 2, 3, 4} {
		err := comm.Run(p, func(c *comm.Comm) error {
			a, b, _ := manufactured(c, 48)
			x := tpetra.NewVector(c, a.Map())
			res, err := CG(a, b, x, Options{Tol: 1e-8})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = append(iters, res.Iterations)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range iters[1:] {
		if it != iters[0] {
			t.Fatalf("iteration counts vary with P: %v", iters)
		}
	}
}

func TestCGWithJacobiConvergesFaster(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		// Jacobi helps when the diagonal varies; scale the Laplacian
		// symmetrically (S A S stays SPD) with widely varying S.
		n := 80
		m := distmap.NewBlock(n, c.Size())
		scale := func(i int) float64 { return 1 + 10*float64(i%7) }
		a := galeri.BuildDist(c, m, func(i int) ([]int, []float64) {
			cols, vals := galeri.Laplace1DRow(n)(i)
			for k := range vals {
				vals[k] *= scale(i) * scale(cols[k])
			}
			return cols, vals
		})
		b := tpetra.NewVector(c, m)
		b.FillFromGlobal(func(g int) float64 { return 1 })
		x1 := tpetra.NewVector(c, m)
		plain, err := CG(a, b, x1, Options{Tol: 1e-8, MaxIter: 5000})
		if err != nil {
			return err
		}
		x2 := tpetra.NewVector(c, m)
		prec, err := CG(a, b, x2, Options{Tol: 1e-8, MaxIter: 5000, Precond: newDiagPrec(a)})
		if err != nil {
			return err
		}
		if !plain.Converged || !prec.Converged {
			return fmt.Errorf("not converged: %v / %v", plain, prec)
		}
		if prec.Iterations >= plain.Iterations {
			return fmt.Errorf("Jacobi did not help: %d vs %d", prec.Iterations, plain.Iterations)
		}
		return nil
	})
}

func TestBiCGSTABOnNonSymmetric(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		nx, ny := 10, 10
		m := distmap.NewBlock(nx*ny, c.Size())
		a := galeri.ConvDiff2DDist(c, m, nx, ny, 8, 5)
		xTrue := tpetra.NewVector(c, m)
		xTrue.FillFromGlobal(func(g int) float64 { return math.Cos(0.3 * float64(g)) })
		b := tpetra.NewVector(c, m)
		a.Apply(xTrue, b)
		x := tpetra.NewVector(c, m)
		res, err := BiCGSTAB(a, b, x, Options{Tol: 1e-10, MaxIter: 500})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("BiCGSTAB: %v", res)
		}
		return checkSolution(x, xTrue, 1e-6)
	})
}

func TestGMRESOnNonSymmetric(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		nx, ny := 9, 9
		m := distmap.NewBlock(nx*ny, c.Size())
		a := galeri.ConvDiff2DDist(c, m, nx, ny, -6, 4)
		xTrue := tpetra.NewVector(c, m)
		xTrue.FillFromGlobal(func(g int) float64 { return float64(g%5) - 2 })
		b := tpetra.NewVector(c, m)
		a.Apply(xTrue, b)
		x := tpetra.NewVector(c, m)
		res, err := GMRES(a, b, x, 20, Options{Tol: 1e-10, MaxIter: 500})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("GMRES: %v", res)
		}
		return checkSolution(x, xTrue, 1e-6)
	})
}

func TestGMRESRestartStress(t *testing.T) {
	// A tiny restart forces many outer cycles but must still converge.
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		a, b, xTrue := manufactured(c, 40)
		x := tpetra.NewVector(c, a.Map())
		res, err := GMRES(a, b, x, 5, Options{Tol: 1e-9, MaxIter: 2000})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("GMRES(5): %v", res)
		}
		return checkSolution(x, xTrue, 1e-5)
	})
}

func TestGMRESWithPreconditioner(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		nx, ny := 12, 12
		m := distmap.NewBlock(nx*ny, c.Size())
		a := galeri.ConvDiff2DDist(c, m, nx, ny, 10, 0)
		b := tpetra.NewVector(c, m)
		b.PutScalar(1)
		x1 := tpetra.NewVector(c, m)
		plain, err := GMRES(a, b, x1, 30, Options{Tol: 1e-8, MaxIter: 2000})
		if err != nil {
			return err
		}
		x2 := tpetra.NewVector(c, m)
		prec, err := GMRES(a, b, x2, 30, Options{Tol: 1e-8, MaxIter: 2000, Precond: newDiagPrec(a)})
		if err != nil {
			return err
		}
		if !plain.Converged || !prec.Converged {
			return fmt.Errorf("not converged: %v / %v", plain, prec)
		}
		if prec.Iterations > plain.Iterations {
			return fmt.Errorf("preconditioned slower: %d vs %d", prec.Iterations, plain.Iterations)
		}
		return nil
	})
}

func TestMINRESOnSPD(t *testing.T) {
	onRanks(t, sizes, func(c *comm.Comm) error {
		a, b, xTrue := manufactured(c, 50)
		x := tpetra.NewVector(c, a.Map())
		res, err := MINRES(a, b, x, Options{Tol: 1e-10, MaxIter: 500, RecordHistory: true})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("MINRES: %v", res)
		}
		return checkSolution(x, xTrue, 1e-6)
	})
}

func TestMINRESOnIndefinite(t *testing.T) {
	// Symmetric indefinite: Laplacian shifted to straddle zero. CG fails on
	// this; MINRES is the designed tool.
	onRanks(t, []int{1, 2}, func(c *comm.Comm) error {
		n := 30
		m := distmap.NewBlock(n, c.Size())
		a := galeri.BuildDist(c, m, func(i int) ([]int, []float64) {
			cols, vals := galeri.Laplace1DRow(n)(i)
			for k := range cols {
				if cols[k] == i {
					vals[k] -= 1.0 // shift: eigenvalues 2-2cos(t)-1 straddle 0
				}
			}
			return cols, vals
		})
		xTrue := tpetra.NewVector(c, m)
		xTrue.FillFromGlobal(func(g int) float64 { return math.Sin(float64(g)) })
		b := tpetra.NewVector(c, m)
		a.Apply(xTrue, b)
		x := tpetra.NewVector(c, m)
		res, err := MINRES(a, b, x, Options{Tol: 1e-9, MaxIter: 2000})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("MINRES indefinite: %v", res)
		}
		return checkSolution(x, xTrue, 1e-5)
	})
}

func TestRichardsonWithStrongPrecond(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		// With an exact-diagonal preconditioner on a diagonal matrix,
		// Richardson converges in one step.
		n := 16
		m := distmap.NewBlock(n, c.Size())
		a := galeri.BuildDist(c, m, func(i int) ([]int, []float64) {
			return []int{i}, []float64{float64(i + 1)}
		})
		b := tpetra.NewVector(c, m)
		b.FillFromGlobal(func(g int) float64 { return float64((g + 1) * 2) })
		x := tpetra.NewVector(c, m)
		res, err := Richardson(a, b, x, 1.0, Options{Tol: 1e-12, MaxIter: 5, Precond: newDiagPrec(a)})
		if err != nil {
			return err
		}
		if !res.Converged || res.Iterations > 1 {
			return fmt.Errorf("Richardson: %v", res)
		}
		if got := x.GetGlobal(3); math.Abs(got-2) > 1e-12 {
			return fmt.Errorf("x[3]=%g", got)
		}
		return nil
	})
}

func TestRichardsonDivergesWithoutDamping(t *testing.T) {
	onRanks(t, []int{1}, func(c *comm.Comm) error {
		a, b, _ := manufactured(c, 30)
		x := tpetra.NewVector(c, a.Map())
		res, err := Richardson(a, b, x, 1.0, Options{Tol: 1e-10, MaxIter: 50})
		if err != nil {
			return err
		}
		if res.Converged {
			return fmt.Errorf("undamped Richardson on the Laplacian should not converge in 50 iters")
		}
		return nil
	})
}

func TestSolveParameterListDispatch(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		a, b, xTrue := manufactured(c, 40)
		for _, method := range []string{"cg", "bicgstab", "gmres", "minres"} {
			p := teuchos.NewParameterList("aztec")
			p.Set("method", method).Set("tolerance", 1e-9).Set("max iterations", 2000)
			x := tpetra.NewVector(c, a.Map())
			res, err := Solve(a, b, x, nil, p)
			if err != nil {
				return fmt.Errorf("%s: %v", method, err)
			}
			if !res.Converged {
				return fmt.Errorf("%s: %v", method, res)
			}
			if err := checkSolution(x, xTrue, 1e-4); err != nil {
				return fmt.Errorf("%s: %v", method, err)
			}
		}
		p := teuchos.NewParameterList("aztec")
		p.Set("method", "simplex")
		x := tpetra.NewVector(c, a.Map())
		if _, err := Solve(a, b, x, nil, p); err == nil {
			return fmt.Errorf("unknown method accepted")
		}
		return nil
	})
}

func TestZeroRHS(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		a, _, _ := manufactured(c, 20)
		b := tpetra.NewVector(c, a.Map()) // zero
		x := tpetra.NewVector(c, a.Map())
		res, err := CG(a, b, x, Options{})
		if err != nil {
			return err
		}
		if !res.Converged || res.Iterations != 0 {
			return fmt.Errorf("zero RHS: %v", res)
		}
		if x.Norm2() != 0 {
			return fmt.Errorf("x must remain zero")
		}
		return nil
	})
}

func TestNonzeroInitialGuess(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		a, b, xTrue := manufactured(c, 40)
		x := xTrue.Clone() // exact initial guess: must converge immediately
		res, err := CG(a, b, x, Options{Tol: 1e-8})
		if err != nil {
			return err
		}
		if res.Iterations != 0 || !res.Converged {
			return fmt.Errorf("exact guess: %v", res)
		}
		return nil
	})
}

func TestResultString(t *testing.T) {
	r := Result{Converged: true, Iterations: 5, Residual: 1e-9}
	if r.String() == "" {
		t.Fatal("String")
	}
	r2 := Result{}
	if r2.String() == "" {
		t.Fatal("String unconverged")
	}
}

func TestMaxIterRespected(t *testing.T) {
	onRanks(t, []int{1}, func(c *comm.Comm) error {
		a, b, _ := manufactured(c, 100)
		x := tpetra.NewVector(c, a.Map())
		res, err := CG(a, b, x, Options{Tol: 1e-14, MaxIter: 3})
		if err != nil {
			return err
		}
		if res.Iterations > 3 {
			return fmt.Errorf("ran %d > 3 iterations", res.Iterations)
		}
		if res.Converged {
			return fmt.Errorf("cannot converge in 3 iterations to 1e-14")
		}
		return nil
	})
}
