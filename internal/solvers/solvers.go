// Package solvers implements the iterative Krylov-space linear solvers of
// the Trilinos analog (AztecOO, paper Table I): CG, BiCGSTAB, restarted
// GMRES, MINRES, and Richardson iteration, each accepting any distributed
// tpetra.Operator and an optional preconditioner. A ParameterList-driven
// front end (Solve) mirrors how PyTrilinos users configure AztecOO.
package solvers

import (
	"errors"
	"fmt"
	"math"

	"odinhpc/internal/teuchos"
	"odinhpc/internal/tpetra"
)

// Preconditioner applies an approximate inverse: z = M^{-1} r. The identity
// is represented by a nil Preconditioner.
type Preconditioner interface {
	ApplyInverse(r, z *tpetra.Vector)
}

// Options configures an iterative solve.
type Options struct {
	MaxIter       int            // maximum iterations (default 1000)
	Tol           float64        // relative residual tolerance (default 1e-8)
	Precond       Preconditioner // nil for unpreconditioned
	RecordHistory bool           // store per-iteration residual norms
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	return o
}

// Result reports the outcome of an iterative solve.
type Result struct {
	Converged  bool
	Iterations int
	Residual   float64   // final relative residual ||b-Ax|| / ||b||
	History    []float64 // per-iteration relative residuals if recorded
}

func (r Result) String() string {
	state := "converged"
	if !r.Converged {
		state = "NOT converged"
	}
	return fmt.Sprintf("%s in %d iterations, rel. residual %.3e", state, r.Iterations, r.Residual)
}

// ErrBreakdown is returned when a Krylov recurrence hits a (near-)zero
// denominator before convergence.
var ErrBreakdown = errors.New("solvers: Krylov recurrence breakdown")

func applyPrec(p Preconditioner, r, z *tpetra.Vector) {
	if p == nil {
		z.CopyFrom(r)
		return
	}
	p.ApplyInverse(r, z)
}

// CG solves A x = b for symmetric positive-definite A using the
// preconditioned conjugate gradient method. x holds the initial guess on
// entry and the solution on exit. Collective.
func CG(a tpetra.Operator, b, x *tpetra.Vector, opt Options) (Result, error) {
	opt = opt.withDefaults()
	res := Result{}
	c := b.Comm()
	m := a.Map()
	r := tpetra.NewVector(c, m)
	z := tpetra.NewVector(c, m)
	p := tpetra.NewVector(c, m)
	ap := tpetra.NewVector(c, m)

	bnorm := b.Norm2()
	if bnorm == 0 {
		bnorm = 1
	}
	a.Apply(x, r)
	r.Update(1, b, -1) // r = b - Ax
	applyPrec(opt.Precond, r, z)
	p.CopyFrom(z)
	rz := r.Dot(z)
	rnorm := r.Norm2()
	record := func() {
		if opt.RecordHistory {
			res.History = append(res.History, rnorm/bnorm)
		}
	}
	record()
	for k := 0; k < opt.MaxIter; k++ {
		if rnorm/bnorm <= opt.Tol {
			res.Converged = true
			break
		}
		a.Apply(p, ap)
		pap := p.Dot(ap)
		if pap == 0 {
			res.Residual = rnorm / bnorm
			return res, ErrBreakdown
		}
		alpha := rz / pap
		x.Axpy(alpha, p)
		r.Axpy(-alpha, ap)
		applyPrec(opt.Precond, r, z)
		rzNew := r.Dot(z)
		if rz == 0 {
			res.Residual = rnorm / bnorm
			return res, ErrBreakdown
		}
		beta := rzNew / rz
		p.Update(1, z, beta) // p = z + beta p
		rz = rzNew
		rnorm = r.Norm2()
		res.Iterations = k + 1
		record()
	}
	if rnorm/bnorm <= opt.Tol {
		res.Converged = true
	}
	res.Residual = rnorm / bnorm
	return res, nil
}

// BiCGSTAB solves A x = b for general (non-symmetric) A using the
// preconditioned BiCGSTAB method. Collective.
func BiCGSTAB(a tpetra.Operator, b, x *tpetra.Vector, opt Options) (Result, error) {
	opt = opt.withDefaults()
	res := Result{}
	c := b.Comm()
	m := a.Map()
	r := tpetra.NewVector(c, m)
	rhat := tpetra.NewVector(c, m)
	p := tpetra.NewVector(c, m)
	v := tpetra.NewVector(c, m)
	s := tpetra.NewVector(c, m)
	t := tpetra.NewVector(c, m)
	phat := tpetra.NewVector(c, m)
	shat := tpetra.NewVector(c, m)

	bnorm := b.Norm2()
	if bnorm == 0 {
		bnorm = 1
	}
	a.Apply(x, r)
	r.Update(1, b, -1)
	rhat.CopyFrom(r)
	rho, alpha, omega := 1.0, 1.0, 1.0
	rnorm := r.Norm2()
	record := func() {
		if opt.RecordHistory {
			res.History = append(res.History, rnorm/bnorm)
		}
	}
	record()
	for k := 0; k < opt.MaxIter; k++ {
		if rnorm/bnorm <= opt.Tol {
			res.Converged = true
			break
		}
		rhoNew := rhat.Dot(r)
		if rhoNew == 0 || omega == 0 {
			res.Residual = rnorm / bnorm
			return res, ErrBreakdown
		}
		if k == 0 {
			p.CopyFrom(r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			// p = r + beta*(p - omega*v)
			p.Axpy(-omega, v)
			p.Update(1, r, beta)
		}
		rho = rhoNew
		applyPrec(opt.Precond, p, phat)
		a.Apply(phat, v)
		rhv := rhat.Dot(v)
		if rhv == 0 {
			res.Residual = rnorm / bnorm
			return res, ErrBreakdown
		}
		alpha = rho / rhv
		s.CopyFrom(r)
		s.Axpy(-alpha, v)
		if sn := s.Norm2(); sn/bnorm <= opt.Tol {
			x.Axpy(alpha, phat)
			rnorm = sn
			res.Iterations = k + 1
			res.Converged = true
			record()
			break
		}
		applyPrec(opt.Precond, s, shat)
		a.Apply(shat, t)
		tt := t.Dot(t)
		if tt == 0 {
			res.Residual = s.Norm2() / bnorm
			return res, ErrBreakdown
		}
		omega = t.Dot(s) / tt
		x.Axpy(alpha, phat)
		x.Axpy(omega, shat)
		r.CopyFrom(s)
		r.Axpy(-omega, t)
		rnorm = r.Norm2()
		res.Iterations = k + 1
		record()
	}
	if rnorm/bnorm <= opt.Tol {
		res.Converged = true
	}
	res.Residual = rnorm / bnorm
	return res, nil
}

// Richardson performs damped Richardson iteration
// x <- x + omega * M^{-1} (b - A x). With a strong preconditioner it is the
// classic stationary smoother; it is also the fallback AztecOO method.
func Richardson(a tpetra.Operator, b, x *tpetra.Vector, omega float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	res := Result{}
	c := b.Comm()
	m := a.Map()
	r := tpetra.NewVector(c, m)
	z := tpetra.NewVector(c, m)
	bnorm := b.Norm2()
	if bnorm == 0 {
		bnorm = 1
	}
	for k := 0; k < opt.MaxIter; k++ {
		a.Apply(x, r)
		r.Update(1, b, -1)
		rnorm := r.Norm2()
		if opt.RecordHistory {
			res.History = append(res.History, rnorm/bnorm)
		}
		res.Residual = rnorm / bnorm
		if res.Residual <= opt.Tol {
			res.Converged = true
			return res, nil
		}
		applyPrec(opt.Precond, r, z)
		x.Axpy(omega, z)
		res.Iterations = k + 1
	}
	a.Apply(x, r)
	r.Update(1, b, -1)
	res.Residual = r.Norm2() / bnorm
	res.Converged = res.Residual <= opt.Tol
	return res, nil
}

// Solve is the AztecOO-style front end: it reads the method and its
// parameters from a Teuchos parameter list and dispatches. Recognized
// parameters: "method" (cg | bicgstab | gmres | minres | richardson),
// "max iterations", "tolerance", "restart" (gmres), "omega" (richardson).
func Solve(a tpetra.Operator, b, x *tpetra.Vector, prec Preconditioner, params *teuchos.ParameterList) (Result, error) {
	opt := Options{
		MaxIter: params.GetInt("max iterations", 1000),
		Tol:     params.GetFloat("tolerance", 1e-8),
		Precond: prec,
	}
	method := params.GetString("method", "cg")
	switch method {
	case "cg":
		return CG(a, b, x, opt)
	case "bicgstab":
		return BiCGSTAB(a, b, x, opt)
	case "gmres":
		return GMRES(a, b, x, params.GetInt("restart", 30), opt)
	case "minres":
		return MINRES(a, b, x, opt)
	case "richardson":
		return Richardson(a, b, x, params.GetFloat("omega", 1.0), opt)
	default:
		return Result{}, fmt.Errorf("solvers: unknown method %q", method)
	}
}

// ResidualNorm computes ||b - A x|| / ||b|| directly; used by tests and the
// experiment harness to verify solver-reported residuals.
func ResidualNorm(a tpetra.Operator, b, x *tpetra.Vector) float64 {
	r := tpetra.NewVector(b.Comm(), a.Map())
	a.Apply(x, r)
	r.Update(1, b, -1)
	bn := b.Norm2()
	if bn == 0 {
		bn = 1
	}
	return r.Norm2() / bn
}

// nonFinite reports whether v is NaN or infinite.
func nonFinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
