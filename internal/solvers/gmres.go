package solvers

import (
	"math"

	"odinhpc/internal/tpetra"
)

// GMRES solves A x = b for general A using right-preconditioned restarted
// GMRES(m). The Arnoldi basis is orthogonalized with modified Gram-Schmidt
// and the Hessenberg least-squares problem is updated with Givens rotations,
// so the residual norm is available at every inner step without forming x.
// Collective.
func GMRES(a tpetra.Operator, b, x *tpetra.Vector, restart int, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if restart <= 0 {
		restart = 30
	}
	res := Result{}
	c := b.Comm()
	mp := a.Map()

	bnorm := b.Norm2()
	if bnorm == 0 {
		bnorm = 1
	}

	r := tpetra.NewVector(c, mp)
	w := tpetra.NewVector(c, mp)
	z := tpetra.NewVector(c, mp)

	record := func(rel float64) {
		if opt.RecordHistory {
			res.History = append(res.History, rel)
		}
	}

	totalIters := 0
	for totalIters < opt.MaxIter {
		// Outer (restart) loop: compute true residual.
		a.Apply(x, r)
		r.Update(1, b, -1)
		beta := r.Norm2()
		rel := beta / bnorm
		if totalIters == 0 {
			record(rel)
		}
		if rel <= opt.Tol {
			res.Converged = true
			res.Residual = rel
			return res, nil
		}

		// Arnoldi basis and Hessenberg factors.
		v := make([]*tpetra.Vector, 0, restart+1)
		v0 := r.Clone()
		v0.Scale(1 / beta)
		v = append(v, v0)
		h := make([][]float64, restart+1) // h[i][j], i row, j column
		for i := range h {
			h[i] = make([]float64, restart)
		}
		cs := make([]float64, restart)
		sn := make([]float64, restart)
		g := make([]float64, restart+1)
		g[0] = beta

		inner := 0
		for j := 0; j < restart && totalIters < opt.MaxIter; j++ {
			// w = A M^{-1} v_j  (right preconditioning).
			applyPrec(opt.Precond, v[j], z)
			a.Apply(z, w)
			// Modified Gram-Schmidt.
			for i := 0; i <= j; i++ {
				h[i][j] = w.Dot(v[i])
				w.Axpy(-h[i][j], v[i])
			}
			h[j+1][j] = w.Norm2()
			if nonFinite(h[j+1][j]) {
				res.Residual = rel
				return res, ErrBreakdown
			}
			happy := h[j+1][j] == 0 // lucky breakdown: Krylov space exhausted
			if !happy {
				vj1 := w.Clone()
				vj1.Scale(1 / h[j+1][j])
				v = append(v, vj1)
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < j; i++ {
				t := cs[i]*h[i][j] + sn[i]*h[i+1][j]
				h[i+1][j] = -sn[i]*h[i][j] + cs[i]*h[i+1][j]
				h[i][j] = t
			}
			// New rotation annihilating h[j+1][j].
			denom := math.Hypot(h[j][j], h[j+1][j])
			if denom == 0 {
				res.Residual = rel
				return res, ErrBreakdown
			}
			cs[j] = h[j][j] / denom
			sn[j] = h[j+1][j] / denom
			h[j][j] = denom
			h[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]

			totalIters++
			res.Iterations = totalIters
			inner = j + 1
			rel = math.Abs(g[j+1]) / bnorm
			record(rel)
			if rel <= opt.Tol || happy {
				break
			}
		}

		// Back-substitute y from the triangularized system and update x:
		// x += M^{-1} (V y).
		y := make([]float64, inner)
		for i := inner - 1; i >= 0; i-- {
			s := g[i]
			for k := i + 1; k < inner; k++ {
				s -= h[i][k] * y[k]
			}
			y[i] = s / h[i][i]
		}
		update := tpetra.NewVector(c, mp)
		for i := 0; i < inner; i++ {
			update.Axpy(y[i], v[i])
		}
		applyPrec(opt.Precond, update, z)
		x.Axpy(1, z)

		if rel <= opt.Tol {
			// Confirm with the true residual (right preconditioning keeps
			// them equal up to round-off).
			a.Apply(x, r)
			r.Update(1, b, -1)
			res.Residual = r.Norm2() / bnorm
			res.Converged = res.Residual <= opt.Tol*10
			return res, nil
		}
	}
	a.Apply(x, r)
	r.Update(1, b, -1)
	res.Residual = r.Norm2() / bnorm
	res.Converged = res.Residual <= opt.Tol
	return res, nil
}

// MINRES solves A x = b for symmetric (possibly indefinite) A using the
// minimum-residual method of Paige and Saunders. Unpreconditioned; use
// GMRES for preconditioned indefinite systems. Collective.
func MINRES(a tpetra.Operator, b, x *tpetra.Vector, opt Options) (Result, error) {
	opt = opt.withDefaults()
	res := Result{}
	c := b.Comm()
	mp := a.Map()

	bnorm := b.Norm2()
	if bnorm == 0 {
		bnorm = 1
	}

	// Lanczos vectors.
	r := tpetra.NewVector(c, mp)
	a.Apply(x, r)
	r.Update(1, b, -1)
	beta := r.Norm2()
	rel := beta / bnorm
	if opt.RecordHistory {
		res.History = append(res.History, rel)
	}
	if rel <= opt.Tol {
		res.Converged = true
		res.Residual = rel
		return res, nil
	}

	vPrev := tpetra.NewVector(c, mp) // v_{k-1}
	v := r.Clone()                   // v_k
	v.Scale(1 / beta)
	av := tpetra.NewVector(c, mp)

	// Update directions.
	wPrev2 := tpetra.NewVector(c, mp)
	wPrev1 := tpetra.NewVector(c, mp)
	w := tpetra.NewVector(c, mp)

	// Givens state.
	gammaPrev, gamma := 1.0, 1.0 // c_{k-1}, c_k
	sigmaPrev, sigma := 0.0, 0.0 // s_{k-1}, s_k
	eta := beta
	betaK := beta

	for k := 1; k <= opt.MaxIter; k++ {
		// Lanczos step.
		a.Apply(v, av)
		alpha := v.Dot(av)
		av.Axpy(-alpha, v)
		av.Axpy(-betaK, vPrev)
		betaNext := av.Norm2()

		// Two previous rotations applied to the new tridiagonal column.
		delta := gamma*alpha - gammaPrev*sigma*betaK
		rho1 := math.Hypot(delta, betaNext)
		rho2 := sigma*alpha + gammaPrev*gamma*betaK
		rho3 := sigmaPrev * betaK
		if rho1 == 0 || nonFinite(rho1) {
			res.Residual = rel
			return res, ErrBreakdown
		}
		gammaNext := delta / rho1
		sigmaNext := betaNext / rho1

		// Direction update: w = (v - rho3 w_{k-2} - rho2 w_{k-1}) / rho1.
		w.CopyFrom(v)
		w.Axpy(-rho3, wPrev2)
		w.Axpy(-rho2, wPrev1)
		w.Scale(1 / rho1)
		x.Axpy(gammaNext*eta, w)

		rel = rel * math.Abs(sigmaNext)
		eta = -sigmaNext * eta
		res.Iterations = k
		if opt.RecordHistory {
			res.History = append(res.History, rel)
		}
		if rel <= opt.Tol {
			break
		}
		if betaNext == 0 {
			break // invariant subspace found; solution is exact
		}

		// Shift state.
		vPrev.CopyFrom(v)
		v.CopyFrom(av)
		v.Scale(1 / betaNext)
		wPrev2.CopyFrom(wPrev1)
		wPrev1.CopyFrom(w)
		gammaPrev, gamma = gamma, gammaNext
		sigmaPrev, sigma = sigma, sigmaNext
		betaK = betaNext
	}
	// Report the true residual.
	a.Apply(x, r)
	r.Update(1, b, -1)
	res.Residual = r.Norm2() / bnorm
	res.Converged = res.Residual <= opt.Tol*10
	return res, nil
}
