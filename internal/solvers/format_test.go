package solvers

import (
	"fmt"
	"math"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
	"odinhpc/internal/galeri"
	"odinhpc/internal/sparse"
	"odinhpc/internal/tpetra"
)

// TestSolversFormatInvariant pins the SELL-C-sigma acceptance criterion:
// forcing either sparse format produces bit-for-bit identical Krylov
// iterations, because the SELL kernels accumulate rows in CSR order. The
// matrix is rebuilt under each override since the format is chosen at
// FillComplete.
func TestSolversFormatInvariant(t *testing.T) {
	run := func(format string, nx, ny, p int, bicg bool) ([]float64, sparse.Format, error) {
		t.Setenv(sparse.SpmvEnv, format)
		var out []float64
		var chosen sparse.Format
		err := comm.Run(p, func(c *comm.Comm) error {
			m := distmap.NewBlock(nx*ny, c.Size())
			a := galeri.Laplace2DDist(c, m, nx, ny)
			xTrue := tpetra.NewVector(c, m)
			xTrue.FillFromGlobal(func(g int) float64 { return math.Cos(0.3 * float64(g)) })
			b := tpetra.NewVector(c, m)
			a.Apply(xTrue, b)
			x := tpetra.NewVector(c, m)
			var err error
			if bicg {
				_, err = BiCGSTAB(a, b, x, Options{Tol: 1e-10})
			} else {
				_, err = CG(a, b, x, Options{Tol: 1e-10})
			}
			if err != nil {
				return err
			}
			full := x.GatherAll()
			if c.Rank() == 0 {
				out = full
				chosen = a.SpmvFormat()
			}
			return nil
		})
		return out, chosen, err
	}
	for _, tc := range []struct {
		nx, ny, p int
		bicg      bool
	}{
		{12, 11, 1, false},
		{12, 11, 4, false},
		{9, 8, 2, true},
	} {
		t.Run(fmt.Sprintf("nx%d-ny%d-p%d-bicg%v", tc.nx, tc.ny, tc.p, tc.bicg), func(t *testing.T) {
			xc, fc, err := run("csr", tc.nx, tc.ny, tc.p, tc.bicg)
			if err != nil {
				t.Fatal(err)
			}
			xs, fs, err := run("sell", tc.nx, tc.ny, tc.p, tc.bicg)
			if err != nil {
				t.Fatal(err)
			}
			if fc != sparse.FormatCSR || fs != sparse.FormatSELL {
				t.Fatalf("formats not forced: csr-run=%v sell-run=%v", fc, fs)
			}
			for i := range xc {
				if math.Float64bits(xc[i]) != math.Float64bits(xs[i]) {
					t.Fatalf("x[%d] differs between formats: %x vs %x", i, xc[i], xs[i])
				}
			}
		})
	}
}
