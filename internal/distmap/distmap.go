// Package distmap provides global-to-local index mappings that describe how
// a one-dimensional global index space of N elements is distributed over P
// ranks. It is the analog of the Epetra/Tpetra Map classes that underlie both
// PyTrilinos vectors and ODIN distributed arrays.
//
// Four distribution kinds are supported, matching the paper's §III.A list of
// controllable distributions: block, cyclic, block-cyclic, and arbitrary
// ("another arbitrary global-to-local index mapping can be specified").
package distmap

import (
	"fmt"
	"sort"
)

// Kind identifies the distribution family of a Map.
type Kind int

// Distribution kinds.
const (
	Block Kind = iota
	Cyclic
	BlockCyclic
	Arbitrary
)

func (k Kind) String() string {
	switch k {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case BlockCyclic:
		return "block-cyclic"
	case Arbitrary:
		return "arbitrary"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Map describes the distribution of global indices 0..n-1 over ranks
// 0..size-1. Maps are immutable after construction and safe for concurrent
// use by all ranks.
type Map struct {
	n    int
	size int
	kind Kind
	bs   int // block size for BlockCyclic

	// Arbitrary maps carry explicit tables; nil otherwise.
	owner    []int   // global -> owning rank
	localIdx []int   // global -> local index on owner
	globals  [][]int // rank -> sorted list of owned globals
	counts   []int   // rank -> local count (all kinds, precomputed)
}

// NewBlock returns a balanced contiguous block map: the first n%size ranks
// own ceil(n/size) elements, the rest floor(n/size).
func NewBlock(n, size int) *Map {
	checkArgs(n, size)
	m := &Map{n: n, size: size, kind: Block}
	m.counts = make([]int, size)
	base, rem := n/size, n%size
	for r := 0; r < size; r++ {
		m.counts[r] = base
		if r < rem {
			m.counts[r]++
		}
	}
	return m
}

// NewCyclic returns a cyclic (round-robin) map: global g lives on rank g%size
// at local index g/size.
func NewCyclic(n, size int) *Map {
	checkArgs(n, size)
	m := &Map{n: n, size: size, kind: Cyclic}
	m.counts = make([]int, size)
	for r := 0; r < size; r++ {
		m.counts[r] = (n - r + size - 1) / size
	}
	return m
}

// NewBlockCyclic returns a block-cyclic map with block size bs: consecutive
// blocks of bs globals are dealt round-robin to ranks.
func NewBlockCyclic(n, size, bs int) *Map {
	checkArgs(n, size)
	if bs <= 0 {
		panic(fmt.Sprintf("distmap: block size must be positive, got %d", bs))
	}
	m := &Map{n: n, size: size, kind: BlockCyclic, bs: bs}
	m.counts = make([]int, size)
	nblocks := (n + bs - 1) / bs
	for b := 0; b < nblocks; b++ {
		lo := b * bs
		hi := min(lo+bs, n)
		m.counts[b%size] += hi - lo
	}
	return m
}

// NewArbitrary builds a map from an explicit owners table: owners[g] is the
// rank owning global g. Local indices on each rank follow increasing global
// order, matching how ODIN assigns local segments.
func NewArbitrary(owners []int, size int) *Map {
	n := len(owners)
	checkArgs(n, size)
	m := &Map{n: n, size: size, kind: Arbitrary}
	m.owner = make([]int, n)
	copy(m.owner, owners)
	m.localIdx = make([]int, n)
	m.counts = make([]int, size)
	m.globals = make([][]int, size)
	for g, r := range m.owner {
		if r < 0 || r >= size {
			panic(fmt.Sprintf("distmap: owners[%d]=%d out of range [0,%d)", g, r, size))
		}
		m.localIdx[g] = m.counts[r]
		m.counts[r]++
		m.globals[r] = append(m.globals[r], g)
	}
	return m
}

// NewFromGlobalLists builds an arbitrary map from per-rank lists of owned
// globals. Every global in [0,n) must appear exactly once across the lists.
func NewFromGlobalLists(n int, lists [][]int) *Map {
	owners := make([]int, n)
	for i := range owners {
		owners[i] = -1
	}
	for r, lst := range lists {
		for _, g := range lst {
			if g < 0 || g >= n {
				panic(fmt.Sprintf("distmap: global %d out of range [0,%d)", g, n))
			}
			if owners[g] != -1 {
				panic(fmt.Sprintf("distmap: global %d owned by both rank %d and %d", g, owners[g], r))
			}
			owners[g] = r
		}
	}
	for g, r := range owners {
		if r == -1 {
			panic(fmt.Sprintf("distmap: global %d has no owner", g))
		}
	}
	return NewArbitrary(owners, len(lists))
}

func checkArgs(n, size int) {
	if n < 0 {
		panic(fmt.Sprintf("distmap: global count must be non-negative, got %d", n))
	}
	if size <= 0 {
		panic(fmt.Sprintf("distmap: rank count must be positive, got %d", size))
	}
}

// NumGlobal returns the global element count N.
func (m *Map) NumGlobal() int { return m.n }

// NumRanks returns the number of ranks P the map distributes over.
func (m *Map) NumRanks() int { return m.size }

// Kind returns the distribution family.
func (m *Map) Kind() Kind { return m.kind }

// BlockSize returns the block size for block-cyclic maps and 0 otherwise.
func (m *Map) BlockSize() int { return m.bs }

// LocalCount returns the number of globals owned by the given rank.
func (m *Map) LocalCount(rank int) int {
	m.checkRank(rank)
	return m.counts[rank]
}

// MaxLocalCount returns the largest per-rank count (load-imbalance metric).
func (m *Map) MaxLocalCount() int {
	mx := 0
	for _, c := range m.counts {
		if c > mx {
			mx = c
		}
	}
	return mx
}

// Owner returns the rank owning global index g.
func (m *Map) Owner(g int) int {
	m.checkGlobal(g)
	switch m.kind {
	case Block:
		base, rem := m.n/m.size, m.n%m.size
		// First rem ranks own base+1 elements.
		cut := rem * (base + 1)
		if g < cut {
			return g / (base + 1)
		}
		if base == 0 {
			return rem - 1 // unreachable: g >= cut and base==0 implies g >= n
		}
		return rem + (g-cut)/base
	case Cyclic:
		return g % m.size
	case BlockCyclic:
		return (g / m.bs) % m.size
	default:
		return m.owner[g]
	}
}

// GlobalToLocal returns the owning rank and the local index of global g.
func (m *Map) GlobalToLocal(g int) (rank, local int) {
	m.checkGlobal(g)
	switch m.kind {
	case Block:
		r := m.Owner(g)
		lo, _ := m.BlockRange(r)
		return r, g - lo
	case Cyclic:
		return g % m.size, g / m.size
	case BlockCyclic:
		b := g / m.bs
		r := b % m.size
		return r, (b/m.size)*m.bs + g%m.bs
	default:
		return m.owner[g], m.localIdx[g]
	}
}

// LocalToGlobal returns the global index of the l-th local element on rank.
func (m *Map) LocalToGlobal(rank, l int) int {
	m.checkRank(rank)
	if l < 0 || l >= m.counts[rank] {
		panic(fmt.Sprintf("distmap: local index %d out of range [0,%d) on rank %d", l, m.counts[rank], rank))
	}
	switch m.kind {
	case Block:
		lo, _ := m.BlockRange(rank)
		return lo + l
	case Cyclic:
		return l*m.size + rank
	case BlockCyclic:
		blk := l / m.bs
		return (blk*m.size+rank)*m.bs + l%m.bs
	default:
		return m.globals[rank][l]
	}
}

// BlockRange returns the half-open global range [lo,hi) owned by rank. It is
// only meaningful for Block maps and panics otherwise.
func (m *Map) BlockRange(rank int) (lo, hi int) {
	m.checkRank(rank)
	if m.kind != Block {
		panic("distmap: BlockRange requires a block map")
	}
	base, rem := m.n/m.size, m.n%m.size
	if rank < rem {
		lo = rank * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (rank-rem)*base
	return lo, lo + base
}

// GlobalsOn returns the sorted list of globals owned by rank. The returned
// slice is freshly allocated for uniform maps and must not be mutated for
// arbitrary maps.
func (m *Map) GlobalsOn(rank int) []int {
	m.checkRank(rank)
	if m.kind == Arbitrary {
		return m.globals[rank]
	}
	out := make([]int, m.counts[rank])
	for l := range out {
		out[l] = m.LocalToGlobal(rank, l)
	}
	return out
}

// IsContiguous reports whether every rank's globals form one contiguous run,
// which enables the zero-copy bridge to tpetra vectors.
func (m *Map) IsContiguous() bool {
	switch m.kind {
	case Block:
		return true
	case Cyclic:
		return m.size == 1
	case BlockCyclic:
		return m.size == 1 || m.bs >= m.n
	default:
		for r := 0; r < m.size; r++ {
			gs := m.globals[r]
			for i := 1; i < len(gs); i++ {
				if gs[i] != gs[i-1]+1 {
					return false
				}
			}
		}
		return true
	}
}

// SameAs reports whether two maps describe the identical distribution — the
// conformability test ODIN uses to decide whether a binary ufunc needs
// communication.
func (m *Map) SameAs(o *Map) bool {
	if m == o {
		return true
	}
	if m == nil || o == nil || m.n != o.n || m.size != o.size {
		return false
	}
	if m.kind == o.kind {
		switch m.kind {
		case Block, Cyclic:
			return true
		case BlockCyclic:
			return m.bs == o.bs
		}
	}
	// Fall back to element-wise comparison (covers arbitrary maps that happen
	// to equal uniform ones, and block-cyclic degenerate cases).
	for g := 0; g < m.n; g++ {
		r1, l1 := m.GlobalToLocal(g)
		r2, l2 := o.GlobalToLocal(g)
		if r1 != r2 || l1 != l2 {
			return false
		}
	}
	return true
}

// Imbalance returns max local count divided by the ideal N/P; 1.0 is perfect.
func (m *Map) Imbalance() float64 {
	if m.n == 0 {
		return 1.0
	}
	ideal := float64(m.n) / float64(m.size)
	return float64(m.MaxLocalCount()) / ideal
}

func (m *Map) String() string {
	return fmt.Sprintf("Map{%s, n=%d, ranks=%d}", m.kind, m.n, m.size)
}

func (m *Map) checkRank(rank int) {
	if rank < 0 || rank >= m.size {
		panic(fmt.Sprintf("distmap: rank %d out of range [0,%d)", rank, m.size))
	}
}

func (m *Map) checkGlobal(g int) {
	if g < 0 || g >= m.n {
		panic(fmt.Sprintf("distmap: global index %d out of range [0,%d)", g, m.n))
	}
}

// OwnersTable materializes the full global->owner table for any map kind.
func (m *Map) OwnersTable() []int {
	out := make([]int, m.n)
	for g := range out {
		out[g] = m.Owner(g)
	}
	return out
}

// Restrict returns the arbitrary map induced by keeping only the globals in
// keep (which must be sorted and unique), renumbered densely 0..len(keep)-1,
// with ownership inherited from m.
func (m *Map) Restrict(keep []int) *Map {
	owners := make([]int, len(keep))
	for i, g := range keep {
		if i > 0 && keep[i] <= keep[i-1] {
			panic("distmap: Restrict requires sorted unique globals")
		}
		owners[i] = m.Owner(g)
	}
	return NewArbitrary(owners, m.size)
}

// SortedGlobalsCheck verifies internal consistency of an arbitrary map; it is
// exported for use in property tests.
func (m *Map) SortedGlobalsCheck() error {
	for r := 0; r < m.size; r++ {
		gs := m.GlobalsOn(r)
		if !sort.IntsAreSorted(gs) {
			return fmt.Errorf("distmap: globals on rank %d not sorted", r)
		}
	}
	return nil
}
