package distmap_test

// Chaos conformance of distributed map construction: the ownership-census
// pattern (each rank contributes its owned globals, the full table is
// rebuilt collectively) must survive comm-fabric perturbation bitwise or
// fail with a typed comm.FaultError.

import (
	"fmt"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/comm/chaostest"
	"odinhpc/internal/distmap"
)

func TestChaosOwnershipCensus(t *testing.T) {
	const n = 41
	kernels := []chaostest.Kernel{
		{Name: "census-cyclic", Body: func(c *comm.Comm) (any, error) {
			base := distmap.NewCyclic(n, c.Size())
			lists := comm.Allgather(c, base.GlobalsOn(c.Rank()))
			rebuilt := distmap.NewFromGlobalLists(n, lists)
			if !rebuilt.SameAs(base) {
				return nil, fmt.Errorf("rebuilt map differs from cyclic source")
			}
			total := comm.AllreduceScalar(c, rebuilt.LocalCount(c.Rank()), comm.OpSum)
			if total != n {
				return nil, fmt.Errorf("census counted %d globals, want %d", total, n)
			}
			return rebuilt.OwnersTable(), nil
		}},
		{Name: "census-blockcyclic-restrict", Body: func(c *comm.Comm) (any, error) {
			base := distmap.NewBlockCyclic(n, c.Size(), 3)
			// Exchange per-rank counts over the wire and cross-check them
			// against the map's own bookkeeping.
			counts := comm.AllgatherFlat(c, []int{base.LocalCount(c.Rank())})
			for r, cnt := range counts {
				if cnt != base.LocalCount(r) {
					return nil, fmt.Errorf("rank %d count %d, map says %d", r, cnt, base.LocalCount(r))
				}
			}
			keep := make([]int, 0, n/2)
			for g := 0; g < n; g += 2 {
				keep = append(keep, g)
			}
			sub := base.Restrict(keep)
			if err := sub.SortedGlobalsCheck(); err != nil {
				return nil, err
			}
			// One roundtrip through the fabric for the restricted table too.
			table := comm.BcastScalar(c, 0, sub.NumGlobal())
			if table != len(keep) {
				return nil, fmt.Errorf("restricted size %d, want %d", table, len(keep))
			}
			return append(sub.OwnersTable(), counts...), nil
		}},
	}
	chaostest.Run(t, []int{1, 2, 4}, 2025, kernels...)
}
