package distmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allKinds(n, size int) map[string]*Map {
	ms := map[string]*Map{
		"block":         NewBlock(n, size),
		"cyclic":        NewCyclic(n, size),
		"blockcyclic-1": NewBlockCyclic(n, size, 1),
		"blockcyclic-3": NewBlockCyclic(n, size, 3),
		"blockcyclic-8": NewBlockCyclic(n, size, 8),
	}
	if n > 0 {
		rng := rand.New(rand.NewSource(42))
		owners := make([]int, n)
		for i := range owners {
			owners[i] = rng.Intn(size)
		}
		// Guarantee every rank appears when possible so counts are non-trivial.
		for r := 0; r < size && r < n; r++ {
			owners[r] = r
		}
		ms["arbitrary"] = NewArbitrary(owners, size)
	}
	return ms
}

// TestBijection is the core property: LocalToGlobal and GlobalToLocal are
// mutually inverse and cover the global space exactly once.
func TestBijection(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 100} {
		for _, p := range []int{1, 2, 3, 4, 7, 8} {
			for name, m := range allKinds(n, p) {
				seen := make([]bool, n)
				total := 0
				for r := 0; r < p; r++ {
					total += m.LocalCount(r)
					for l := 0; l < m.LocalCount(r); l++ {
						g := m.LocalToGlobal(r, l)
						if seen[g] {
							t.Fatalf("%s n=%d p=%d: global %d covered twice", name, n, p, g)
						}
						seen[g] = true
						r2, l2 := m.GlobalToLocal(g)
						if r2 != r || l2 != l {
							t.Fatalf("%s n=%d p=%d: G2L(L2G(%d,%d)) = (%d,%d)", name, n, p, r, l, r2, l2)
						}
						if m.Owner(g) != r {
							t.Fatalf("%s: Owner(%d)=%d want %d", name, g, m.Owner(g), r)
						}
					}
				}
				if total != n {
					t.Fatalf("%s n=%d p=%d: counts sum to %d", name, n, p, total)
				}
			}
		}
	}
}

func TestBijectionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		p := 1 + rng.Intn(9)
		for _, m := range allKinds(n, p) {
			for g := 0; g < n; g++ {
				r, l := m.GlobalToLocal(g)
				if m.LocalToGlobal(r, l) != g {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRanges(t *testing.T) {
	m := NewBlock(10, 3) // counts 4,3,3
	wantCounts := []int{4, 3, 3}
	wantLo := []int{0, 4, 7}
	for r := 0; r < 3; r++ {
		if m.LocalCount(r) != wantCounts[r] {
			t.Errorf("LocalCount(%d)=%d want %d", r, m.LocalCount(r), wantCounts[r])
		}
		lo, hi := m.BlockRange(r)
		if lo != wantLo[r] || hi != wantLo[r]+wantCounts[r] {
			t.Errorf("BlockRange(%d)=[%d,%d)", r, lo, hi)
		}
	}
}

func TestBlockRangePanicsOnNonBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCyclic(10, 2).BlockRange(0)
}

func TestCyclicLayout(t *testing.T) {
	m := NewCyclic(7, 3)
	// globals on rank 0: 0,3,6; rank 1: 1,4; rank 2: 2,5
	want := [][]int{{0, 3, 6}, {1, 4}, {2, 5}}
	for r, w := range want {
		got := m.GlobalsOn(r)
		if len(got) != len(w) {
			t.Fatalf("rank %d globals %v want %v", r, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("rank %d globals %v want %v", r, got, w)
			}
		}
	}
}

func TestBlockCyclicLayout(t *testing.T) {
	m := NewBlockCyclic(10, 2, 2)
	// blocks: [0,1]->r0, [2,3]->r1, [4,5]->r0, [6,7]->r1, [8,9]->r0
	want0 := []int{0, 1, 4, 5, 8, 9}
	got0 := m.GlobalsOn(0)
	if len(got0) != len(want0) {
		t.Fatalf("rank0 %v", got0)
	}
	for i := range want0 {
		if got0[i] != want0[i] {
			t.Fatalf("rank0 %v want %v", got0, want0)
		}
	}
	if m.BlockSize() != 2 {
		t.Fatal("BlockSize")
	}
}

func TestArbitraryFromGlobalLists(t *testing.T) {
	m := NewFromGlobalLists(6, [][]int{{0, 5}, {1, 3}, {2, 4}})
	if m.Owner(5) != 0 || m.Owner(3) != 1 || m.Owner(4) != 2 {
		t.Fatal("ownership wrong")
	}
	if err := m.SortedGlobalsCheck(); err != nil {
		t.Fatal(err)
	}
	r, l := m.GlobalToLocal(5)
	if r != 0 || l != 1 {
		t.Fatalf("G2L(5) = (%d,%d)", r, l)
	}
}

func TestFromGlobalListsValidation(t *testing.T) {
	for name, lists := range map[string][][]int{
		"duplicate": {{0, 1}, {1, 2}},
		"missing":   {{0}, {2}},
		"oob":       {{0, 7}, {1, 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			n := 3
			if name == "oob" {
				n = 3
			}
			NewFromGlobalLists(n, lists)
		}()
	}
}

func TestArbitraryOwnerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range owner")
		}
	}()
	NewArbitrary([]int{0, 5}, 2)
}

func TestSameAs(t *testing.T) {
	a := NewBlock(100, 4)
	b := NewBlock(100, 4)
	if !a.SameAs(b) || !a.SameAs(a) {
		t.Fatal("identical block maps must be SameAs")
	}
	if a.SameAs(NewCyclic(100, 4)) {
		t.Fatal("block vs cyclic must differ")
	}
	if a.SameAs(NewBlock(100, 5)) || a.SameAs(NewBlock(99, 4)) {
		t.Fatal("different shape must differ")
	}
	// An arbitrary map that reproduces the block layout is SameAs block.
	owners := a.OwnersTable()
	arb := NewArbitrary(owners, 4)
	if !arb.SameAs(a) || !a.SameAs(arb) {
		t.Fatal("equivalent arbitrary map must be SameAs block map")
	}
	if a.SameAs(nil) {
		t.Fatal("nil must differ")
	}
}

func TestIsContiguous(t *testing.T) {
	if !NewBlock(10, 3).IsContiguous() {
		t.Fatal("block must be contiguous")
	}
	if NewCyclic(10, 3).IsContiguous() {
		t.Fatal("cyclic with p>1 must not be contiguous")
	}
	if !NewCyclic(10, 1).IsContiguous() {
		t.Fatal("single-rank cyclic is contiguous")
	}
	if NewBlockCyclic(10, 2, 2).IsContiguous() {
		t.Fatal("block-cyclic p=2 bs=2 not contiguous")
	}
	if !NewBlockCyclic(10, 2, 100).IsContiguous() {
		t.Fatal("block-cyclic with bs>=n is contiguous")
	}
	if !NewArbitrary([]int{0, 0, 1, 1}, 2).IsContiguous() {
		t.Fatal("contiguous arbitrary map")
	}
	if NewArbitrary([]int{0, 1, 0, 1}, 2).IsContiguous() {
		t.Fatal("interleaved arbitrary map is not contiguous")
	}
}

func TestImbalance(t *testing.T) {
	if got := NewBlock(100, 4).Imbalance(); got != 1.0 {
		t.Fatalf("balanced block imbalance = %g", got)
	}
	m := NewArbitrary([]int{0, 0, 0, 1}, 2) // 3 vs 1, ideal 2
	if got := m.Imbalance(); got != 1.5 {
		t.Fatalf("imbalance = %g want 1.5", got)
	}
	if got := NewBlock(0, 4).Imbalance(); got != 1.0 {
		t.Fatalf("empty map imbalance = %g", got)
	}
}

func TestRestrict(t *testing.T) {
	m := NewBlock(10, 2) // 0-4 on r0, 5-9 on r1
	sub := m.Restrict([]int{2, 3, 7})
	if sub.NumGlobal() != 3 {
		t.Fatal("size")
	}
	if sub.Owner(0) != 0 || sub.Owner(1) != 0 || sub.Owner(2) != 1 {
		t.Fatal("inherited ownership wrong")
	}
}

func TestRestrictValidatesSorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlock(10, 2).Restrict([]int{3, 2})
}

func TestBoundsPanics(t *testing.T) {
	m := NewBlock(10, 2)
	for name, fn := range map[string]func(){
		"owner-neg":    func() { m.Owner(-1) },
		"owner-big":    func() { m.Owner(10) },
		"l2g-bad-rank": func() { m.LocalToGlobal(9, 0) },
		"l2g-bad-loc":  func() { m.LocalToGlobal(0, 99) },
		"count-bad":    func() { m.LocalCount(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"neg-n":   func() { NewBlock(-1, 2) },
		"zero-p":  func() { NewBlock(10, 0) },
		"zero-bs": func() { NewBlockCyclic(10, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Block: "block", Cyclic: "cyclic", BlockCyclic: "block-cyclic", Arbitrary: "arbitrary", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind.String() = %q want %q", k.String(), want)
		}
	}
	m := NewBlock(4, 2)
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMaxLocalCount(t *testing.T) {
	m := NewBlock(10, 3)
	if m.MaxLocalCount() != 4 {
		t.Fatalf("MaxLocalCount=%d", m.MaxLocalCount())
	}
}

func TestOwnersTableMatchesOwner(t *testing.T) {
	for name, m := range allKinds(37, 5) {
		tab := m.OwnersTable()
		for g, r := range tab {
			if m.Owner(g) != r {
				t.Fatalf("%s: OwnersTable[%d]=%d Owner=%d", name, g, r, m.Owner(g))
			}
		}
	}
}
