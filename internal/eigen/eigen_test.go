package eigen

import (
	"fmt"
	"math"
	"testing"

	"odinhpc/internal/comm"
	"odinhpc/internal/distmap"
	"odinhpc/internal/galeri"
	"odinhpc/internal/solvers"
	"odinhpc/internal/tpetra"
)

func onRanks(t *testing.T, ps []int, fn func(c *comm.Comm) error) {
	t.Helper()
	for _, p := range ps {
		if err := comm.Run(p, fn); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// laplace1DEigen returns the k-th eigenvalue of the n-point [-1 2 -1]
// matrix: 2 - 2 cos(k*pi/(n+1)), k = 1..n.
func laplace1DEigen(n, k int) float64 {
	return 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
}

func TestPowerMethodDiagonal(t *testing.T) {
	onRanks(t, []int{1, 2, 4}, func(c *comm.Comm) error {
		n := 12
		m := distmap.NewBlock(n, c.Size())
		a := galeri.BuildDist(c, m, func(i int) ([]int, []float64) {
			return []int{i}, []float64{float64(i + 1)}
		})
		model := tpetra.NewVector(c, m)
		res, err := PowerMethod(a, model, Options{Tol: 1e-12, MaxIter: 5000})
		if err != nil {
			return err
		}
		if math.Abs(res.Value-float64(n)) > 1e-6 {
			return fmt.Errorf("lambda=%g want %d", res.Value, n)
		}
		// Eigenvector concentrates on the last coordinate.
		if got := math.Abs(res.Vector.GetGlobal(n - 1)); got < 0.99 {
			return fmt.Errorf("eigenvector component %g", got)
		}
		if res.Residual > 1e-6 {
			return fmt.Errorf("residual %g", res.Residual)
		}
		return nil
	})
}

func TestPowerMethodLaplacian(t *testing.T) {
	onRanks(t, []int{1, 3}, func(c *comm.Comm) error {
		n := 30
		m := distmap.NewBlock(n, c.Size())
		a := galeri.Laplace1DDist(c, m)
		model := tpetra.NewVector(c, m)
		res, err := PowerMethod(a, model, Options{Tol: 1e-11, MaxIter: 20000})
		if err != nil {
			return err
		}
		want := laplace1DEigen(n, n)
		if math.Abs(res.Value-want) > 1e-5 {
			return fmt.Errorf("lambda=%g want %g", res.Value, want)
		}
		return nil
	})
}

func TestPowerMethodHitsBudget(t *testing.T) {
	onRanks(t, []int{1}, func(c *comm.Comm) error {
		n := 40
		m := distmap.NewBlock(n, c.Size())
		a := galeri.Laplace1DDist(c, m)
		model := tpetra.NewVector(c, m)
		_, err := PowerMethod(a, model, Options{Tol: 1e-15, MaxIter: 2})
		if err != ErrNoConvergence {
			return fmt.Errorf("want ErrNoConvergence, got %v", err)
		}
		return nil
	})
}

func TestInverseIterationFindsSmallest(t *testing.T) {
	onRanks(t, []int{1, 2}, func(c *comm.Comm) error {
		n := 20
		m := distmap.NewBlock(n, c.Size())
		a := galeri.Laplace1DDist(c, m)
		// Shift 0: find the smallest eigenvalue. Inner solve via CG on A.
		solve := func(b, x *tpetra.Vector) error {
			x.PutScalar(0)
			res, err := solvers.CG(a, b, x, solvers.Options{Tol: 1e-12, MaxIter: 2000})
			if err != nil {
				return err
			}
			if !res.Converged {
				return fmt.Errorf("inner CG: %v", res)
			}
			return nil
		}
		model := tpetra.NewVector(c, m)
		res, err := InverseIteration(a, 0, solve, model, Options{Tol: 1e-12, MaxIter: 500})
		if err != nil {
			return err
		}
		want := laplace1DEigen(n, 1)
		if math.Abs(res.Value-want) > 1e-8 {
			return fmt.Errorf("lambda=%g want %g", res.Value, want)
		}
		return nil
	})
}

func TestLanczosFullSpectrum(t *testing.T) {
	onRanks(t, []int{1, 2}, func(c *comm.Comm) error {
		n := 12
		m := distmap.NewBlock(n, c.Size())
		a := galeri.Laplace1DDist(c, m)
		model := tpetra.NewVector(c, m)
		vals, err := Lanczos(a, model, n, Options{})
		if err != nil {
			return err
		}
		if len(vals) != n {
			return fmt.Errorf("got %d Ritz values", len(vals))
		}
		for k := 1; k <= n; k++ {
			want := laplace1DEigen(n, k)
			if math.Abs(vals[k-1]-want) > 1e-8 {
				return fmt.Errorf("eig %d: %g want %g", k, vals[k-1], want)
			}
		}
		return nil
	})
}

func TestLanczosPartialExtremes(t *testing.T) {
	// A modest Krylov dimension must capture the extreme eigenvalues well.
	onRanks(t, []int{1, 2}, func(c *comm.Comm) error {
		n := 100
		m := distmap.NewBlock(n, c.Size())
		a := galeri.Laplace1DDist(c, m)
		model := tpetra.NewVector(c, m)
		vals, err := Lanczos(a, model, 40, Options{})
		if err != nil {
			return err
		}
		loWant := laplace1DEigen(n, 1)
		hiWant := laplace1DEigen(n, n)
		if math.Abs(vals[len(vals)-1]-hiWant) > 5e-3 {
			return fmt.Errorf("hi=%g want %g", vals[len(vals)-1], hiWant)
		}
		if vals[0] < loWant-1e-8 {
			return fmt.Errorf("lo=%g below true minimum %g", vals[0], loWant)
		}
		return nil
	})
}

func TestSpectralBounds(t *testing.T) {
	onRanks(t, []int{2}, func(c *comm.Comm) error {
		n := 50
		m := distmap.NewBlock(n, c.Size())
		a := galeri.Laplace1DDist(c, m)
		model := tpetra.NewVector(c, m)
		lo, hi, err := SpectralBounds(a, model, 30)
		if err != nil {
			return err
		}
		if lo <= 0 || hi >= 4.0001 || hi <= 3.5 {
			return fmt.Errorf("bounds [%g, %g] implausible for the 1-D Laplacian", lo, hi)
		}
		return nil
	})
}

func TestLanczosValidation(t *testing.T) {
	onRanks(t, []int{1}, func(c *comm.Comm) error {
		m := distmap.NewBlock(5, 1)
		a := galeri.Laplace1DDist(c, m)
		model := tpetra.NewVector(c, m)
		if _, err := Lanczos(a, model, 0, Options{}); err == nil {
			return fmt.Errorf("k=0 accepted")
		}
		// k > n is clamped, not an error.
		vals, err := Lanczos(a, model, 50, Options{})
		if err != nil {
			return err
		}
		if len(vals) > 5 {
			return fmt.Errorf("k clamp failed: %d values", len(vals))
		}
		return nil
	})
}

func TestTqliSmall(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	d := []float64{2, 2}
	e := []float64{0, 1}
	if err := tqli(d, e); err != nil {
		t.Fatal(err)
	}
	sortFloats(d)
	if math.Abs(d[0]-1) > 1e-12 || math.Abs(d[1]-3) > 1e-12 {
		t.Fatalf("eigs=%v", d)
	}
	// Empty input is a no-op.
	if err := tqli(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIterationCountsIndependentOfP(t *testing.T) {
	var iters []int
	for _, p := range []int{1, 2, 4} {
		err := comm.Run(p, func(c *comm.Comm) error {
			n := 24
			m := distmap.NewBlock(n, c.Size())
			a := galeri.Laplace1DDist(c, m)
			model := tpetra.NewVector(c, m)
			res, err := PowerMethod(a, model, Options{Tol: 1e-9, MaxIter: 50000, Seed: 3})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = append(iters, res.Iterations)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Randomize is rank-local, so starting vectors differ with P; iteration
	// counts may differ slightly but must be in the same regime.
	for _, it := range iters {
		if it < 10 || it > 100000 {
			t.Fatalf("iteration counts out of regime: %v", iters)
		}
	}
}
