// Package eigen implements the eigensolver layer of the Trilinos analog
// (Anasazi, paper Table I): power iteration, shifted inverse iteration, and
// a Lanczos method with full reorthogonalization for symmetric operators,
// backed by a dense symmetric-tridiagonal QL eigenvalue kernel.
package eigen

import (
	"errors"
	"fmt"
	"math"

	"odinhpc/internal/tpetra"
)

// ErrNoConvergence is returned when an iteration hits its budget before the
// requested tolerance.
var ErrNoConvergence = errors.New("eigen: iteration did not converge")

// Options configures the iterative eigensolvers.
type Options struct {
	MaxIter int     // default 1000
	Tol     float64 // eigenvalue change / residual tolerance, default 1e-10
	Seed    int64   // starting-vector seed (default 1)
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result reports a single converged eigenpair.
type Result struct {
	Value      float64
	Vector     *tpetra.Vector
	Iterations int
	Residual   float64 // ||A v - lambda v||
}

// PowerMethod computes the dominant eigenpair of a by power iteration.
// Collective.
func PowerMethod(a tpetra.Operator, model *tpetra.Vector, opt Options) (Result, error) {
	opt = opt.withDefaults()
	c := model.Comm()
	v := tpetra.NewVector(c, a.Map())
	v.Randomize(opt.Seed)
	n := v.Norm2()
	if n == 0 {
		return Result{}, fmt.Errorf("eigen: zero starting vector")
	}
	v.Scale(1 / n)
	w := tpetra.NewVector(c, a.Map())
	lambda := 0.0
	for k := 1; k <= opt.MaxIter; k++ {
		a.Apply(v, w)
		// Rayleigh quotient (v normalized).
		newLambda := v.Dot(w)
		// Residual ||Av - lambda v||.
		r := w.Clone()
		r.Axpy(-newLambda, v)
		resid := r.Norm2()
		wn := w.Norm2()
		if wn == 0 {
			return Result{}, fmt.Errorf("eigen: operator annihilated the iterate")
		}
		v.CopyFrom(w)
		v.Scale(1 / wn)
		if math.Abs(newLambda-lambda) <= opt.Tol*math.Abs(newLambda) && resid <= opt.Tol*math.Abs(newLambda)*10 {
			return Result{Value: newLambda, Vector: v, Iterations: k, Residual: resid}, nil
		}
		lambda = newLambda
	}
	return Result{Value: lambda, Vector: v, Iterations: opt.MaxIter}, ErrNoConvergence
}

// LinearSolver abstracts the inner solve of inverse iteration, decoupling
// this package from a specific solver choice.
type LinearSolver func(b, x *tpetra.Vector) error

// InverseIteration computes the eigenvalue of a closest to shift by inverse
// iteration, using solve to apply (A - shift I)^{-1}. The operator passed in
// must already be shifted; solve receives the current iterate as the
// right-hand side. Collective.
func InverseIteration(a tpetra.Operator, shift float64, solve LinearSolver, model *tpetra.Vector, opt Options) (Result, error) {
	opt = opt.withDefaults()
	c := model.Comm()
	v := tpetra.NewVector(c, a.Map())
	v.Randomize(opt.Seed)
	v.Scale(1 / v.Norm2())
	w := tpetra.NewVector(c, a.Map())
	av := tpetra.NewVector(c, a.Map())
	lambda := shift
	for k := 1; k <= opt.MaxIter; k++ {
		if err := solve(v, w); err != nil {
			return Result{}, fmt.Errorf("eigen: inner solve failed: %w", err)
		}
		wn := w.Norm2()
		if wn == 0 {
			return Result{}, fmt.Errorf("eigen: inverse iteration broke down")
		}
		w.Scale(1 / wn)
		v.CopyFrom(w)
		// Rayleigh quotient with the original operator.
		a.Apply(v, av)
		newLambda := v.Dot(av)
		r := av.Clone()
		r.Axpy(-newLambda, v)
		resid := r.Norm2()
		if math.Abs(newLambda-lambda) <= opt.Tol*math.Max(1, math.Abs(newLambda)) {
			return Result{Value: newLambda, Vector: v, Iterations: k, Residual: resid}, nil
		}
		lambda = newLambda
	}
	return Result{Value: lambda, Vector: v, Iterations: opt.MaxIter}, ErrNoConvergence
}

// Lanczos runs k steps of the symmetric Lanczos process with full
// reorthogonalization and returns the Ritz values (approximate eigenvalues)
// in ascending order. For k >= n it returns the full spectrum to tridiagonal
// accuracy. Collective.
func Lanczos(a tpetra.Operator, model *tpetra.Vector, k int, opt Options) ([]float64, error) {
	opt = opt.withDefaults()
	if k < 1 {
		return nil, fmt.Errorf("eigen: Lanczos needs k >= 1, got %d", k)
	}
	n := a.Map().NumGlobal()
	if k > n {
		k = n
	}
	c := model.Comm()
	q := make([]*tpetra.Vector, 0, k+1)
	v := tpetra.NewVector(c, a.Map())
	v.Randomize(opt.Seed)
	v.Scale(1 / v.Norm2())
	q = append(q, v)
	alphas := make([]float64, 0, k)
	betas := make([]float64, 0, k) // betas[j] couples q_j and q_{j+1}
	w := tpetra.NewVector(c, a.Map())
	for j := 0; j < k; j++ {
		a.Apply(q[j], w)
		if j > 0 {
			w.Axpy(-betas[j-1], q[j-1])
		}
		alpha := q[j].Dot(w)
		w.Axpy(-alpha, q[j])
		// Full reorthogonalization for numerical robustness.
		for _, qi := range q {
			w.Axpy(-w.Dot(qi), qi)
		}
		alphas = append(alphas, alpha)
		beta := w.Norm2()
		if beta <= 1e-14 || j == k-1 {
			break // invariant subspace found or budget reached
		}
		betas = append(betas, beta)
		nq := w.Clone()
		nq.Scale(1 / beta)
		q = append(q, nq)
	}
	vals := make([]float64, len(alphas))
	copy(vals, alphas)
	off := make([]float64, len(alphas))
	copy(off[1:], betas)
	if err := tqli(vals, off); err != nil {
		return nil, err
	}
	sortFloats(vals)
	return vals, nil
}

// SpectralBounds estimates (lambda_min, lambda_max) of a symmetric operator
// from a k-step Lanczos run — the input the Chebyshev preconditioner needs.
func SpectralBounds(a tpetra.Operator, model *tpetra.Vector, k int) (lo, hi float64, err error) {
	vals, err := Lanczos(a, model, k, Options{})
	if err != nil {
		return 0, 0, err
	}
	return vals[0], vals[len(vals)-1], nil
}

// tqli computes all eigenvalues of a symmetric tridiagonal matrix with
// diagonal d and sub-diagonal e (e[0] unused), by the implicit-shift QL
// algorithm. d is overwritten with the eigenvalues (unsorted).
func tqli(d, e []float64) error {
	n := len(d)
	if n == 0 {
		return nil
	}
	// Shift the off-diagonal for the standard indexing.
	e = append(e[1:], 0)
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter > 50 {
				return fmt.Errorf("eigen: tqli failed to converge at row %d", l)
			}
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-18*dd || e[m] == 0 {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, cc := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := cc * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				cc = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*cc*b
				p = s * r
				d[i+1] = g + p
				g = cc*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
