package compile

import (
	"fmt"

	"odinhpc/internal/seamless"
)

func (cc *fnCompiler) block(stmts []seamless.Stmt) ([]func(*frame) flow, error) {
	out := make([]func(*frame) flow, 0, len(stmts))
	for _, s := range stmts {
		st, err := cc.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func runBlock(body []func(*frame) flow, fr *frame) flow {
	for _, st := range body {
		if f := st(fr); f != flowNormal {
			return f
		}
	}
	return flowNormal
}

func (cc *fnCompiler) stmt(s seamless.Stmt) (func(*frame) flow, error) {
	switch st := s.(type) {
	case *seamless.AssignStmt:
		ref := cc.slot(st.Name)
		return cc.store(ref, st.X)
	case *seamless.AugAssignStmt:
		ref := cc.slot(st.Name)
		// Desugar: name = name op expr, preserving the variable's type.
		read := &seamless.NameExpr{Pos: st.Pos, Name: st.Name}
		cc.tf.ExprTypes[read] = ref.t
		combined := &seamless.BinExpr{Pos: st.Pos, Op: st.Op, L: read, R: st.X}
		rt, err := augType(st.Op, ref.t, cc.typeOf(st.X))
		if err != nil {
			return nil, err
		}
		cc.tf.ExprTypes[combined] = rt
		return cc.store(ref, combined)
	case *seamless.IndexAssignStmt:
		ref := cc.slot(st.Name)
		idx, err := cc.intExpr(st.Index)
		if err != nil {
			return nil, err
		}
		var rhs seamless.Expr = st.X
		if st.Op != "" {
			read := &seamless.IndexExpr{Pos: st.Pos, Arr: &seamless.NameExpr{Pos: st.Pos, Name: st.Name}, Index: st.Index}
			elem := seamless.TFloat
			if ref.t == seamless.TArrInt {
				elem = seamless.TInt
			}
			cc.tf.ExprTypes[read.Arr] = ref.t
			cc.tf.ExprTypes[read] = elem
			combined := &seamless.BinExpr{Pos: st.Pos, Op: st.Op, L: read, R: st.X}
			rt, err := augType(st.Op, elem, cc.typeOf(st.X))
			if err != nil {
				return nil, err
			}
			cc.tf.ExprTypes[combined] = rt
			rhs = combined
		}
		if ref.t == seamless.TArrFloat {
			val, err := cc.floatExpr(rhs)
			if err != nil {
				return nil, err
			}
			slot := ref.slot
			return func(fr *frame) flow {
				fr.af[slot][idx(fr)] = val(fr)
				return flowNormal
			}, nil
		}
		val, err := cc.intExpr(rhs)
		if err != nil {
			return nil, err
		}
		slot := ref.slot
		return func(fr *frame) flow {
			fr.ai[slot][idx(fr)] = val(fr)
			return flowNormal
		}, nil
	case *seamless.ReturnStmt:
		if st.X == nil {
			return func(*frame) flow { return flowReturn }, nil
		}
		switch cc.out.Ret {
		case seamless.TFloat:
			v, err := cc.floatExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { fr.retF = v(fr); return flowReturn }, nil
		case seamless.TInt:
			v, err := cc.intExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { fr.retI = v(fr); return flowReturn }, nil
		case seamless.TBool:
			v, err := cc.boolExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { fr.retB = v(fr); return flowReturn }, nil
		case seamless.TArrFloat:
			v, err := cc.arrFExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { fr.retAF = v(fr); return flowReturn }, nil
		case seamless.TArrInt:
			v, err := cc.arrIExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { fr.retAI = v(fr); return flowReturn }, nil
		}
		return nil, fmt.Errorf("compile: return with value in %v function", cc.out.Ret)
	case *seamless.ExprStmt:
		// Evaluate for effect; only calls can have effects.
		switch cc.typeOf(st.X) {
		case seamless.TFloat:
			v, err := cc.floatExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { v(fr); return flowNormal }, nil
		case seamless.TInt:
			v, err := cc.intExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { v(fr); return flowNormal }, nil
		case seamless.TBool:
			v, err := cc.boolExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { v(fr); return flowNormal }, nil
		case seamless.TArrFloat:
			v, err := cc.arrFExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { v(fr); return flowNormal }, nil
		case seamless.TArrInt:
			v, err := cc.arrIExpr(st.X)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { v(fr); return flowNormal }, nil
		default: // TNone: a void call
			call, ok := st.X.(*seamless.CallExpr)
			if !ok {
				return func(*frame) flow { return flowNormal }, nil
			}
			run, err := cc.voidCall(call)
			if err != nil {
				return nil, err
			}
			return func(fr *frame) flow { run(fr); return flowNormal }, nil
		}
	case *seamless.PassStmt:
		return func(*frame) flow { return flowNormal }, nil
	case *seamless.BreakStmt:
		return func(*frame) flow { return flowBreak }, nil
	case *seamless.ContinueStmt:
		return func(*frame) flow { return flowContinue }, nil
	case *seamless.IfStmt:
		cond, err := cc.boolExpr(st.Cond)
		if err != nil {
			return nil, err
		}
		then, err := cc.block(st.Then)
		if err != nil {
			return nil, err
		}
		if len(st.Else) == 0 {
			return func(fr *frame) flow {
				if cond(fr) {
					return runBlock(then, fr)
				}
				return flowNormal
			}, nil
		}
		els, err := cc.block(st.Else)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) flow {
			if cond(fr) {
				return runBlock(then, fr)
			}
			return runBlock(els, fr)
		}, nil
	case *seamless.WhileStmt:
		cond, err := cc.boolExpr(st.Cond)
		if err != nil {
			return nil, err
		}
		body, err := cc.block(st.Body)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) flow {
			for cond(fr) {
				switch runBlock(body, fr) {
				case flowBreak:
					return flowNormal
				case flowReturn:
					return flowReturn
				}
			}
			return flowNormal
		}, nil
	case *seamless.ForStmt:
		return cc.forStmt(st)
	}
	return nil, fmt.Errorf("compile: unknown statement %T", s)
}

func (cc *fnCompiler) forStmt(st *seamless.ForStmt) (func(*frame) flow, error) {
	vRef := cc.slot(st.Var)
	if vRef.t != seamless.TInt {
		return nil, fmt.Errorf("compile: loop variable %q must be int", st.Var)
	}
	var start, stop, step func(*frame) int64
	var err error
	if st.Start != nil {
		if start, err = cc.intExpr(st.Start); err != nil {
			return nil, err
		}
	} else {
		start = func(*frame) int64 { return 0 }
	}
	if stop, err = cc.intExpr(st.Stop); err != nil {
		return nil, err
	}
	if st.Step != nil {
		if step, err = cc.intExpr(st.Step); err != nil {
			return nil, err
		}
	} else {
		step = func(*frame) int64 { return 1 }
	}
	body, err := cc.block(st.Body)
	if err != nil {
		return nil, err
	}
	vSlot := vRef.slot
	return func(fr *frame) flow {
		lo := start(fr)
		hi := stop(fr)
		d := step(fr)
		if d == 0 {
			panic("range() step must not be zero")
		}
		for v := lo; (d > 0 && v < hi) || (d < 0 && v > hi); v += d {
			fr.i[vSlot] = v
			switch runBlock(body, fr) {
			case flowBreak:
				return flowNormal
			case flowReturn:
				return flowReturn
			}
			// The body may have mutated the loop variable (Python allows
			// it, but range() resets on the next iteration).
			v = fr.i[vSlot]
		}
		return flowNormal
	}, nil
}

// store compiles "ref = expr" with int->float coercion.
func (cc *fnCompiler) store(ref slotRef, x seamless.Expr) (func(*frame) flow, error) {
	switch ref.t {
	case seamless.TFloat:
		v, err := cc.floatExpr(x)
		if err != nil {
			return nil, err
		}
		slot := ref.slot
		return func(fr *frame) flow { fr.f[slot] = v(fr); return flowNormal }, nil
	case seamless.TInt:
		v, err := cc.intExpr(x)
		if err != nil {
			return nil, err
		}
		slot := ref.slot
		return func(fr *frame) flow { fr.i[slot] = v(fr); return flowNormal }, nil
	case seamless.TBool:
		v, err := cc.boolExpr(x)
		if err != nil {
			return nil, err
		}
		slot := ref.slot
		return func(fr *frame) flow { fr.b[slot] = v(fr); return flowNormal }, nil
	case seamless.TArrFloat:
		v, err := cc.arrFExpr(x)
		if err != nil {
			return nil, err
		}
		slot := ref.slot
		return func(fr *frame) flow { fr.af[slot] = v(fr); return flowNormal }, nil
	case seamless.TArrInt:
		v, err := cc.arrIExpr(x)
		if err != nil {
			return nil, err
		}
		slot := ref.slot
		return func(fr *frame) flow { fr.ai[slot] = v(fr); return flowNormal }, nil
	}
	return nil, fmt.Errorf("compile: cannot store into %v", ref.t)
}

func augType(op string, l, r seamless.Type) (seamless.Type, error) {
	if l == seamless.TArrFloat || r == seamless.TArrFloat {
		ok := func(t seamless.Type) bool { return t == seamless.TArrFloat || t.IsNumeric() }
		if !ok(l) || !ok(r) {
			return seamless.TUnknown, fmt.Errorf("compile: %q cannot combine %v and %v", op, l, r)
		}
		return seamless.TArrFloat, nil
	}
	if op == "/" {
		return seamless.TFloat, nil
	}
	if l == seamless.TInt && r == seamless.TInt {
		return seamless.TInt, nil
	}
	if l.IsNumeric() && r.IsNumeric() {
		return seamless.TFloat, nil
	}
	return seamless.TUnknown, fmt.Errorf("compile: %q needs numeric operands", op)
}
