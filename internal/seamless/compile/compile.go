// Package compile implements the compiled execution engine of the Seamless
// analog: typed ASTs are lowered to statically typed Go closures operating
// on unboxed slot frames — no Value boxing, no per-op dynamic dispatch, and
// builtins resolved to direct math calls. This is the LLVM-JIT stand-in of
// paper §IV.A/§IV.B: the same source the vm package interprets runs here at
// compiled-code speed (experiment E6 measures the ratio), and compiled
// kernels can be exported as ordinary Go funcs (§IV.D, package export).
package compile

import (
	"fmt"

	"odinhpc/internal/seamless"
)

// flow is the control-flow signal a compiled statement returns.
type flow int

const (
	flowNormal flow = iota
	flowBreak
	flowContinue
	flowReturn
)

// frame is the unboxed activation record: one slice per slot bank.
type frame struct {
	f  []float64
	i  []int64
	b  []bool
	af [][]float64
	ai [][]int64

	retF  float64
	retI  int64
	retB  bool
	retAF []float64
	retAI []int64
}

// slotRef locates a variable in its typed bank.
type slotRef struct {
	t    seamless.Type
	slot int
}

// Compiled is one natively compiled function specialization.
type Compiled struct {
	Name                 string
	Ret                  seamless.Type
	tf                   *seamless.TypedFn
	params               []slotRef
	nF, nI, nB, nAF, nAI int
	body                 []func(*frame) flow
}

// Engine compiles typed functions into closures, memoized per
// specialization.
type Engine struct {
	prog *seamless.Program
	fns  map[*seamless.TypedFn]*Compiled
}

// NewEngine wraps a program. An Engine is owned by one goroutine (its
// compilation caches are unsynchronized); give each rank its own, or
// compile before entering the parallel region as the examples do.
func NewEngine(prog *seamless.Program) *Engine {
	return &Engine{prog: prog, fns: map[*seamless.TypedFn]*Compiled{}}
}

// CompileFor compiles (and caches) one specialization. Mutual and direct
// recursion are supported: the entry is registered before its body is
// built.
func (e *Engine) CompileFor(tf *seamless.TypedFn) (*Compiled, error) {
	if c, ok := e.fns[tf]; ok {
		return c, nil
	}
	c := &Compiled{Name: tf.Fn.Name, Ret: tf.Ret, tf: tf}
	e.fns[tf] = c
	cc := &fnCompiler{engine: e, tf: tf, out: c, slots: map[string]slotRef{}}
	for i, p := range tf.Fn.Params {
		ref := cc.slot(p.Name)
		_ = i
		c.params = append(c.params, ref)
	}
	for _, s := range tf.Fn.Body {
		st, err := cc.stmt(s)
		if err != nil {
			delete(e.fns, tf)
			return nil, err
		}
		c.body = append(c.body, st)
	}
	c.nF, c.nI, c.nB, c.nAF, c.nAI = cc.nF, cc.nI, cc.nB, cc.nAF, cc.nAI
	return c, nil
}

// Call specializes, compiles, and invokes a function on boxed arguments
// (boxing happens only at this outer boundary).
func (e *Engine) Call(name string, args ...seamless.Value) (out seamless.Value, err error) {
	types := make([]seamless.Type, len(args))
	for i, a := range args {
		types[i] = a.K
	}
	tf, err := e.prog.Specialize(name, types)
	if err != nil {
		return seamless.NoneV(), err
	}
	c, err := e.CompileFor(tf)
	if err != nil {
		return seamless.NoneV(), err
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compile: %s: runtime fault: %v", name, r)
		}
	}()
	fr := c.newFrame()
	for i, a := range args {
		c.storeArg(fr, i, a)
	}
	c.run(fr)
	return c.boxedResult(fr), nil
}

func (c *Compiled) newFrame() *frame {
	return &frame{
		f:  make([]float64, c.nF),
		i:  make([]int64, c.nI),
		b:  make([]bool, c.nB),
		af: make([][]float64, c.nAF),
		ai: make([][]int64, c.nAI),
	}
}

func (c *Compiled) storeArg(fr *frame, i int, v seamless.Value) {
	ref := c.params[i]
	switch ref.t {
	case seamless.TFloat:
		fr.f[ref.slot] = v.AsFloat()
	case seamless.TInt:
		fr.i[ref.slot] = v.AsInt()
	case seamless.TBool:
		fr.b[ref.slot] = v.B
	case seamless.TArrFloat:
		fr.af[ref.slot] = v.AF
	case seamless.TArrInt:
		fr.ai[ref.slot] = v.AI
	}
}

func (c *Compiled) run(fr *frame) {
	for _, st := range c.body {
		if st(fr) == flowReturn {
			return
		}
	}
}

func (c *Compiled) boxedResult(fr *frame) seamless.Value {
	switch c.Ret {
	case seamless.TFloat:
		return seamless.FloatV(fr.retF)
	case seamless.TInt:
		return seamless.IntV(fr.retI)
	case seamless.TBool:
		return seamless.BoolV(fr.retB)
	case seamless.TArrFloat:
		return seamless.ArrFV(fr.retAF)
	case seamless.TArrInt:
		return seamless.ArrIV(fr.retAI)
	}
	return seamless.NoneV()
}

// fnCompiler holds per-function compilation state.
type fnCompiler struct {
	engine               *Engine
	tf                   *seamless.TypedFn
	out                  *Compiled
	slots                map[string]slotRef
	nF, nI, nB, nAF, nAI int
}

// slot assigns (or returns) the typed slot of a variable.
func (cc *fnCompiler) slot(name string) slotRef {
	if r, ok := cc.slots[name]; ok {
		return r
	}
	t, ok := cc.tf.VarTypes[name]
	if !ok {
		panic(fmt.Sprintf("compile: variable %q missing from inference", name))
	}
	var r slotRef
	switch t {
	case seamless.TFloat:
		r = slotRef{t, cc.nF}
		cc.nF++
	case seamless.TInt:
		r = slotRef{t, cc.nI}
		cc.nI++
	case seamless.TBool:
		r = slotRef{t, cc.nB}
		cc.nB++
	case seamless.TArrFloat:
		r = slotRef{t, cc.nAF}
		cc.nAF++
	case seamless.TArrInt:
		r = slotRef{t, cc.nAI}
		cc.nAI++
	default:
		panic(fmt.Sprintf("compile: variable %q has type %v", name, t))
	}
	cc.slots[name] = r
	return r
}

func (cc *fnCompiler) typeOf(e seamless.Expr) seamless.Type {
	t, ok := cc.tf.ExprTypes[e]
	if !ok {
		panic(fmt.Sprintf("compile: expression %T missing from inference", e))
	}
	return t
}
