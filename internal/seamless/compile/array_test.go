package compile

import (
	"math"
	"math/rand"
	"testing"

	"odinhpc/internal/fusion"
	"odinhpc/internal/seamless"
	"odinhpc/internal/seamless/vm"
)

// arrayKernels exercises every whole-array expression path: fused VM ops
// (saxpy, chains, neg, elementwise builtins), closure fallbacks (dynamic
// scalars, **, //, %, log), broadcasts on both sides, augmented
// assignment, and fused templates re-entered from a loop.
const arrayKernels = `
def saxpy(x, y):
    return 2.5 * x + y

def chain(x, y, z):
    t = x * y - z
    u = sqrt(abs(t)) + exp(0.0 - abs(t))
    return u / (1.0 + u)

def dynscale(a, x, y):
    return a * x + y

def pymods(x):
    return x % 3.0 + x // 2.0 - x ** 2.0

def broadcast(x):
    return 2.0 / (x * x + 1.0) - (x - 1) * -3.0

def negate(x):
    return -(x + 0.5)

def logmix(x):
    return log(abs(x) + 1.0) * 2.0

def trig(x):
    return sin(x) * cos(x) + sqrt(abs(x))

def augarr(x, y):
    x = x + y
    x += y * 2.0
    x *= 1.5
    x /= 2.0
    return x

def deep(x, y):
    acc = x
    for i in range(16):
        acc = acc * 1.000001 + y
    return acc

def helper(x):
    return sin(x) * cos(x)

def throughcall(x, y):
    return helper(x + y) - helper(x - y)
`

func randArr(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 3
	}
	return out
}

// TestArrayExprEnginesAgree pins the tentpole acceptance criterion: the
// compiled engine's fusion fast path (and its closure fallbacks) produce
// bit-for-bit the results of the vm engine's boxed elementwise loops.
func TestArrayExprEnginesAgree(t *testing.T) {
	pc, err := seamless.CompileSource(arrayKernels)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := seamless.CompileSource(arrayKernels)
	if err != nil {
		t.Fatal(err)
	}
	ec, ev := NewEngine(pc), vm.NewEngine(pv)
	rng := rand.New(rand.NewSource(1))
	clone := func(a []float64) seamless.Value {
		return seamless.ArrFV(append([]float64(nil), a...))
	}
	check := func(name string, args ...[]float64) {
		t.Helper()
		cargs := make([]seamless.Value, len(args))
		vargs := make([]seamless.Value, len(args))
		for i, a := range args {
			cargs[i], vargs[i] = clone(a), clone(a)
		}
		cv, err := ec.Call(name, cargs...)
		if err != nil {
			t.Fatalf("%s compiled: %v", name, err)
		}
		vv, err := ev.Call(name, vargs...)
		if err != nil {
			t.Fatalf("%s vm: %v", name, err)
		}
		if cv.K != seamless.TArrFloat || vv.K != seamless.TArrFloat {
			t.Fatalf("%s: kinds %v / %v, want float arrays", name, cv.K, vv.K)
		}
		if len(cv.AF) != len(vv.AF) {
			t.Fatalf("%s: lengths %d vs %d", name, len(cv.AF), len(vv.AF))
		}
		for i := range cv.AF {
			if math.Float64bits(cv.AF[i]) != math.Float64bits(vv.AF[i]) {
				t.Fatalf("%s: [%d] differs: %x vs %x", name, i, cv.AF[i], vv.AF[i])
			}
		}
	}
	// Sizes straddle the VM block boundary; zero-length arrays included.
	for _, n := range []int{0, 1, 7, 100, 1500} {
		x, y, z := randArr(rng, n), randArr(rng, n), randArr(rng, n)
		check("saxpy", x, y)
		check("chain", x, y, z)
		check("pymods", x)
		check("broadcast", x)
		check("negate", x)
		check("logmix", x)
		check("trig", x)
		check("augarr", x, y)
		check("deep", x, y)
		check("throughcall", x, y)
	}
	// Dynamic scalar argument: falls back per value, results still agree.
	x, y := randArr(rng, 64), randArr(rng, 64)
	for _, a := range []float64{0, -1.5, 3.25} {
		ca, err := ec.Call("dynscale", seamless.FloatV(a), clone(x), clone(x))
		if err != nil {
			t.Fatal(err)
		}
		va, err := ev.Call("dynscale", seamless.FloatV(a), clone(x), clone(x))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ca.AF {
			if math.Float64bits(ca.AF[i]) != math.Float64bits(va.AF[i]) {
				t.Fatalf("dynscale(%g): [%d] differs", a, i)
			}
		}
	}
	_ = y
}

// TestArrayFusionPlanCacheHits verifies the fast path actually runs on the
// fusion VM: the first call compiles a plan, repeat calls hit the shared
// plan cache (the acceptance criterion's PlanCacheStats visibility).
func TestArrayFusionPlanCacheHits(t *testing.T) {
	prog, err := seamless.CompileSource("def saxpy(x, y):\n    return 2.5 * x + y\n")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(prog)
	x := seamless.ArrFV([]float64{1, 2, 3, 4})
	y := seamless.ArrFV([]float64{5, 6, 7, 8})
	fusion.ResetPlanCache()
	if _, err := e.Call("saxpy", x, y); err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := fusion.PlanCacheStats()
	if misses0 == 0 {
		t.Fatal("first call should have compiled a fusion plan (cache miss)")
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Call("saxpy", x, y); err != nil {
			t.Fatal(err)
		}
	}
	hits1, misses1 := fusion.PlanCacheStats()
	if hits1 < hits0+3 {
		t.Fatalf("repeat calls should hit the plan cache: hits %d -> %d", hits0, hits1)
	}
	if misses1 != misses0 {
		t.Fatalf("repeat calls recompiled: misses %d -> %d", misses0, misses1)
	}
}

// TestArrayExprErrors pins the rejection and runtime-fault behavior of
// whole-array expressions in both engines.
func TestArrayExprErrors(t *testing.T) {
	const src = `
def add(a, b):
    return a + b

def neg(a):
    return -a
`
	for _, mk := range []func(*seamless.Program) interface {
		Call(string, ...seamless.Value) (seamless.Value, error)
	}{
		func(p *seamless.Program) interface {
			Call(string, ...seamless.Value) (seamless.Value, error)
		} {
			return NewEngine(p)
		},
		func(p *seamless.Program) interface {
			Call(string, ...seamless.Value) (seamless.Value, error)
		} {
			return vm.NewEngine(p)
		},
	} {
		prog, err := seamless.CompileSource(src)
		if err != nil {
			t.Fatal(err)
		}
		e := mk(prog)
		// Int arrays have no whole-array arithmetic.
		if _, err := e.Call("add", seamless.ArrIV([]int64{1}), seamless.ArrIV([]int64{2})); err == nil {
			t.Fatal("int-array arithmetic should be rejected")
		}
		if _, err := e.Call("neg", seamless.ArrIV([]int64{1})); err == nil {
			t.Fatal("int-array negation should be rejected")
		}
		// Mixed element kinds are rejected.
		if _, err := e.Call("add", seamless.ArrFV([]float64{1}), seamless.ArrIV([]int64{2})); err == nil {
			t.Fatal("float-array + int-array should be rejected")
		}
		// Length mismatches are runtime faults, not silent truncation.
		if _, err := e.Call("add", seamless.ArrFV([]float64{1, 2}), seamless.ArrFV([]float64{1, 2, 3})); err == nil {
			t.Fatal("length mismatch should be a runtime fault")
		}
	}
}
