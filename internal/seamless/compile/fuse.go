package compile

import (
	"fmt"

	"odinhpc/internal/fusion"
	"odinhpc/internal/seamless"
)

// Whole-array expressions compile through the fusion register VM instead of
// nested closure loops: the expression tree is translated once, at compile
// time, into a fusion.Expr template over SliceSlot leaves, and each call
// binds the current frame's arrays to the slots and runs the fused sweep
// (one output allocation, blocked vector kernels, superinstructions). The
// template's structural key is call-count invariant, so solver-style
// kernels hit the fusion plan cache on every call after the first —
// visible via fusion.PlanCacheStats.
//
// The VM path is taken per node, not all-or-nothing: a subtree the VM
// cannot express is compiled by the closure fallbacks in expr.go and
// enters the fused program as one leaf. Inexpressible shapes are //, %, **
// (Python semantics have no VM opcode), log (no opcode), and non-literal
// scalar operands — baking a dynamic scalar into the template as a
// constant would put its current value in the plan-cache key and compile a
// fresh program per value.

// fuseOp reports whether a float-array expression's root node maps to a
// fusion VM opcode with expressible operands.
func (cc *fnCompiler) fuseOp(e seamless.Expr) bool {
	switch x := e.(type) {
	case *seamless.UnaryExpr:
		return x.Op != "not"
	case *seamless.BinExpr:
		switch x.Op {
		case "+", "-", "*", "/":
		default:
			return false
		}
		for _, o := range []seamless.Expr{x.L, x.R} {
			if cc.typeOf(o) == seamless.TArrFloat {
				continue
			}
			if _, ok := literalScalar(o); !ok {
				return false
			}
		}
		return true
	case *seamless.CallExpr:
		switch x.Name {
		case "sqrt", "sin", "cos", "exp", "abs":
			return len(x.Args) == 1 && cc.typeOf(x.Args[0]) == seamless.TArrFloat
		}
	}
	return false
}

// literalScalar extracts a compile-time numeric constant: int and float
// literals, possibly under unary minus.
func literalScalar(e seamless.Expr) (float64, bool) {
	switch x := e.(type) {
	case *seamless.IntLit:
		return float64(x.V), true
	case *seamless.FloatLit:
		return x.V, true
	case *seamless.UnaryExpr:
		if x.Op != "not" {
			if v, ok := literalScalar(x.X); ok {
				return -v, true
			}
		}
	}
	return 0, false
}

// fuseBuilder accumulates the leaf bindings of one template: leafFns[i]
// produces the slice bound to SliceSlot(i) at call time.
type fuseBuilder struct {
	cc      *fnCompiler
	leafFns []func(*frame) []float64
	byName  map[string]*fusion.Expr // NameExpr leaves dedup to one slot
}

// node translates a float-array expression into a template node: a VM op
// over translated operands when expressible, otherwise one leaf evaluated
// by the closure path.
func (fb *fuseBuilder) node(e seamless.Expr) (*fusion.Expr, error) {
	if !fb.cc.fuseOp(e) {
		return fb.leaf(e)
	}
	switch x := e.(type) {
	case *seamless.UnaryExpr:
		a, err := fb.node(x.X)
		if err != nil {
			return nil, err
		}
		return fusion.Neg(a), nil
	case *seamless.BinExpr:
		l, err := fb.operand(x.L)
		if err != nil {
			return nil, err
		}
		r, err := fb.operand(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return l.Add(r), nil
		case "-":
			return l.Sub(r), nil
		case "*":
			return l.Mul(r), nil
		default:
			return l.Div(r), nil
		}
	default: // *seamless.CallExpr; fuseOp admits nothing else
		call := e.(*seamless.CallExpr)
		a, err := fb.node(call.Args[0])
		if err != nil {
			return nil, err
		}
		switch call.Name {
		case "sqrt":
			return fusion.Sqrt(a), nil
		case "sin":
			return fusion.Sin(a), nil
		case "cos":
			return fusion.Cos(a), nil
		case "exp":
			return fusion.Exp(a), nil
		default:
			return fusion.Abs(a), nil
		}
	}
}

// operand translates a binary operand: arrays recurse, literal scalars
// become constant nodes (fuseOp already verified literalness).
func (fb *fuseBuilder) operand(e seamless.Expr) (*fusion.Expr, error) {
	if fb.cc.typeOf(e) == seamless.TArrFloat {
		return fb.node(e)
	}
	v, _ := literalScalar(e)
	return fusion.Const(v), nil
}

// leaf allocates the next slice slot for an array expression the VM cannot
// express. Variable reads bind straight to their frame slot and dedup by
// name, so `x*x + x` uses one slot; anything else compiles through the
// regular array path.
func (fb *fuseBuilder) leaf(e seamless.Expr) (*fusion.Expr, error) {
	if nx, ok := e.(*seamless.NameExpr); ok {
		if l, seen := fb.byName[nx.Name]; seen {
			return l, nil
		}
		slot := fb.cc.slot(nx.Name).slot
		l := fusion.SliceSlot(len(fb.leafFns))
		fb.leafFns = append(fb.leafFns, func(fr *frame) []float64 { return fr.af[slot] })
		fb.byName[nx.Name] = l
		return l, nil
	}
	fn, err := fb.cc.arrFExpr(e)
	if err != nil {
		return nil, err
	}
	l := fusion.SliceSlot(len(fb.leafFns))
	fb.leafFns = append(fb.leafFns, fn)
	return l, nil
}

// fuseArrExpr compiles a whole-array expression to a fused-VM closure,
// reporting ok=false when the root is not a fusable op (a bare variable or
// call should not pay a vmCopy program).
func (cc *fnCompiler) fuseArrExpr(e seamless.Expr) (func(*frame) []float64, bool, error) {
	if !cc.fuseOp(e) {
		return nil, false, nil
	}
	fb := &fuseBuilder{cc: cc, byName: map[string]*fusion.Expr{}}
	root, err := fb.node(e)
	if err != nil {
		return nil, false, err
	}
	leafFns := fb.leafFns
	return func(fr *frame) []float64 {
		leaves := make([][]float64, len(leafFns))
		n := -1
		for i, lf := range leafFns {
			leaves[i] = lf(fr)
			if n < 0 {
				n = len(leaves[i])
			} else if len(leaves[i]) != n {
				panic(fmt.Sprintf("array length mismatch: %d vs %d", n, len(leaves[i])))
			}
		}
		out := make([]float64, n)
		fusion.EvalSlices(root, leaves, out)
		return out
	}, true, nil
}
