package compile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"odinhpc/internal/seamless"
	"odinhpc/internal/seamless/vm"
)

// corpus is the shared program set both engines must agree on — the central
// correctness property of the Seamless reproduction: compilation changes
// speed, never results.
const corpus = `
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res

def dot(a, b):
    acc = 0.0
    for i in range(len(a)):
        acc += a[i] * b[i]
    return acc

def saxpy(alpha, x, y):
    out = zeros(len(x))
    for i in range(len(x)):
        out[i] = alpha * x[i] + y[i]
    return out

def mandel(cr, ci, maxiter):
    zr = 0.0
    zi = 0.0
    n = 0
    while n < maxiter and zr * zr + zi * zi <= 4.0:
        t = zr * zr - zi * zi + cr
        zi = 2.0 * zr * zi + ci
        zr = t
        n += 1
    return n

def fib(n) -> int:
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def gcd(a, b) -> int:
    while b != 0:
        t = b
        b = a % b
        a = t
    return a

def poly(x):
    return ((2.0 * x + 1.0) * x - 3.0) * x + 0.5

def clip(x, lo, hi):
    return min(max(x, lo), hi)

def stats(xs):
    n = len(xs)
    mean = 0.0
    for i in range(n):
        mean += xs[i]
    mean = mean / float(n)
    var = 0.0
    for i in range(n):
        d = xs[i] - mean
        var += d * d
    return sqrt(var / float(n))

def strange(a, b):
    x = a // b + a % b + a ** 2
    if x > 10 and not (x > 1000) or b == 1:
        return x
    return -x
`

func engines(t *testing.T) (*Engine, *vm.Engine, *Engine) {
	t.Helper()
	progC, err := seamless.CompileSource(corpus)
	if err != nil {
		t.Fatal(err)
	}
	progV, err := seamless.CompileSource(corpus)
	if err != nil {
		t.Fatal(err)
	}
	ec := NewEngine(progC)
	ev := vm.NewEngine(progV)
	return ec, ev, ec
}

func agree(t *testing.T, ec *Engine, ev *vm.Engine, name string, args ...seamless.Value) seamless.Value {
	t.Helper()
	cv, cerr := ec.Call(name, args...)
	vv, verr := ev.Call(name, args...)
	if (cerr == nil) != (verr == nil) {
		t.Fatalf("%s: error disagreement: compile=%v vm=%v", name, cerr, verr)
	}
	if cerr != nil {
		return seamless.NoneV()
	}
	if cv.K != vv.K {
		t.Fatalf("%s: kind %v vs %v", name, cv.K, vv.K)
	}
	switch cv.K {
	case seamless.TFloat:
		if cv.F != vv.F && !(math.IsNaN(cv.F) && math.IsNaN(vv.F)) {
			t.Fatalf("%s: %v vs %v", name, cv.F, vv.F)
		}
	case seamless.TInt:
		if cv.I != vv.I {
			t.Fatalf("%s: %v vs %v", name, cv.I, vv.I)
		}
	case seamless.TBool:
		if cv.B != vv.B {
			t.Fatalf("%s: %v vs %v", name, cv.B, vv.B)
		}
	case seamless.TArrFloat:
		if len(cv.AF) != len(vv.AF) {
			t.Fatalf("%s: lengths %d vs %d", name, len(cv.AF), len(vv.AF))
		}
		for i := range cv.AF {
			if cv.AF[i] != vv.AF[i] {
				t.Fatalf("%s: [%d] %v vs %v", name, i, cv.AF[i], vv.AF[i])
			}
		}
	}
	return cv
}

func TestEnginesAgreeOnCorpus(t *testing.T) {
	ec, ev, _ := engines(t)
	xs := seamless.ArrFV([]float64{1.5, -2, 3.25, 0, 7})
	ys := seamless.ArrFV([]float64{2, 0.5, -1, 4, 0.25})
	if got := agree(t, ec, ev, "sum", xs); got.F != 9.75 {
		t.Fatalf("sum = %v", got.F)
	}
	agree(t, ec, ev, "dot", xs, ys)
	agree(t, ec, ev, "saxpy", seamless.FloatV(2.5), xs, ys)
	agree(t, ec, ev, "mandel", seamless.FloatV(-0.75), seamless.FloatV(0.1), seamless.IntV(500))
	if got := agree(t, ec, ev, "fib", seamless.IntV(18)); got.I != 2584 {
		t.Fatalf("fib = %v", got.I)
	}
	if got := agree(t, ec, ev, "gcd", seamless.IntV(462), seamless.IntV(1071)); got.I != 21 {
		t.Fatalf("gcd = %v", got.I)
	}
	agree(t, ec, ev, "poly", seamless.FloatV(1.3))
	agree(t, ec, ev, "clip", seamless.FloatV(11), seamless.FloatV(0), seamless.FloatV(10))
	agree(t, ec, ev, "stats", xs)
	for a := int64(-8); a <= 8; a++ {
		for b := int64(1); b <= 4; b++ {
			agree(t, ec, ev, "strange", seamless.IntV(a), seamless.IntV(b))
		}
	}
}

// TestEnginesAgreeQuick fuzzes the numeric kernels with random inputs.
func TestEnginesAgreeQuick(t *testing.T) {
	ec, ev, _ := engines(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ys[i] = rng.NormFloat64() * 10
		}
		agree(t, ec, ev, "sum", seamless.ArrFV(xs))
		agree(t, ec, ev, "dot", seamless.ArrFV(xs), seamless.ArrFV(ys))
		agree(t, ec, ev, "saxpy", seamless.FloatV(rng.NormFloat64()), seamless.ArrFV(xs), seamless.ArrFV(ys))
		agree(t, ec, ev, "stats", seamless.ArrFV(xs))
		agree(t, ec, ev, "mandel", seamless.FloatV(rng.NormFloat64()), seamless.FloatV(rng.NormFloat64()), seamless.IntV(int64(rng.Intn(200))))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledCorrectness(t *testing.T) {
	ec, _, _ := engines(t)
	out, err := ec.Call("sum", seamless.ArrFV([]float64{1, 2, 3.5}))
	if err != nil {
		t.Fatal(err)
	}
	if out.F != 6.5 {
		t.Fatalf("sum = %v", out)
	}
	out, err = ec.Call("saxpy", seamless.FloatV(2), seamless.ArrFV([]float64{1, 2}), seamless.ArrFV([]float64{10, 20}))
	if err != nil {
		t.Fatal(err)
	}
	if out.AF[0] != 12 || out.AF[1] != 24 {
		t.Fatalf("saxpy = %v", out.AF)
	}
}

func TestCompiledMutatesCallerArrays(t *testing.T) {
	src := `
def bump(xs):
    for i in range(len(xs)):
        xs[i] += 1.0
`
	prog, err := seamless.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(prog)
	buf := []float64{1, 2}
	if _, err := e.Call("bump", seamless.ArrFV(buf)); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 || buf[1] != 3 {
		t.Fatalf("mutation lost: %v", buf)
	}
}

func TestCompiledRuntimeFaults(t *testing.T) {
	src := "def oob(xs):\n    return xs[100]\n"
	prog, _ := seamless.CompileSource(src)
	e := NewEngine(prog)
	if _, err := e.Call("oob", seamless.ArrFV([]float64{1})); err == nil {
		t.Fatal("out of bounds accepted")
	}
}

func TestCompiledExtern(t *testing.T) {
	prog, _ := seamless.CompileSource("def f(y, x):\n    return at2(y, x) + at2(1.0, 1.0)\n")
	prog.Bind("at2", seamless.Extern{NArgs: 2, Fn: func(a ...float64) float64 { return math.Atan2(a[0], a[1]) }})
	e := NewEngine(prog)
	out, err := e.Call("f", seamless.FloatV(1), seamless.FloatV(2))
	if err != nil {
		t.Fatal(err)
	}
	want := math.Atan2(1, 2) + math.Pi/4
	if math.Abs(out.F-want) > 1e-15 {
		t.Fatalf("extern = %v want %v", out.F, want)
	}
}

func TestCompiledShortCircuit(t *testing.T) {
	src := `
def f(x):
    if x > 0.0 and 1.0 / x > 0.5:
        return 1
    return 0
`
	prog, _ := seamless.CompileSource(src)
	e := NewEngine(prog)
	out, err := e.Call("f", seamless.FloatV(0))
	if err != nil || out.I != 0 {
		t.Fatalf("short circuit: %v %v", out, err)
	}
}

func TestCompiledVoidAndBoolFns(t *testing.T) {
	src := `
def even(n):
    return n % 2 == 0

def fill(xs, v):
    for i in range(len(xs)):
        xs[i] = v

def main(xs):
    fill(xs, 3.0)
    if even(4):
        return xs[0]
    return 0.0
`
	prog, _ := seamless.CompileSource(src)
	e := NewEngine(prog)
	out, err := e.Call("main", seamless.ArrFV(make([]float64, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if out.F != 3 {
		t.Fatalf("main = %v", out)
	}
	// Direct bool call.
	b, err := e.Call("even", seamless.IntV(5))
	if err != nil || b.B {
		t.Fatalf("even(5) = %v %v", b, err)
	}
}

func TestCompiledIntArrays(t *testing.T) {
	src := `
def histo(xs, nb):
    h = izeros(nb)
    for i in range(len(xs)):
        b = int(xs[i])
        if b >= 0 and b < nb:
            h[b] += 1
    return h
`
	prog, _ := seamless.CompileSource(src)
	e := NewEngine(prog)
	out, err := e.Call("histo", seamless.ArrFV([]float64{0.1, 1.2, 1.9, 3.5}), seamless.IntV(4))
	if err != nil {
		t.Fatal(err)
	}
	if out.AI[0] != 1 || out.AI[1] != 2 || out.AI[2] != 0 || out.AI[3] != 1 {
		t.Fatalf("histo = %v", out.AI)
	}
}

// TestCompiledFasterThanVM is the qualitative E6 check inside the test
// suite: on a numeric kernel the compiled engine must beat the interpreter
// by a wide margin. (The full measured table lives in the benchmarks.)
func TestCompiledFasterThanVM(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ec, ev, _ := engines(t)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = float64(i % 17)
	}
	arg := seamless.ArrFV(xs)
	// Warm up both (specialization + lowering).
	if _, err := ec.Call("sum", arg); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Call("sum", arg); err != nil {
		t.Fatal(err)
	}
	timeIt := func(f func()) float64 {
		const reps = 5
		best := math.Inf(1)
		for r := 0; r < reps; r++ {
			start := nowNanos()
			f()
			if d := float64(nowNanos() - start); d < best {
				best = d
			}
		}
		return best
	}
	tc := timeIt(func() { ec.Call("sum", arg) })
	tv := timeIt(func() { ev.Call("sum", arg) })
	if tv < 3*tc {
		t.Fatalf("compiled not clearly faster: vm=%.0fns compiled=%.0fns", tv, tc)
	}
}

func TestChainedComparisonBothEngines(t *testing.T) {
	src := `
def inrange(x, lo, hi):
    if lo <= x < hi:
        return 1
    return 0

def tri(a, b, c):
    return 0.0 < a < b < c
`
	pv, _ := seamless.CompileSource(src)
	pc, _ := seamless.CompileSource(src)
	ev := vm.NewEngine(pv)
	ec := NewEngine(pc)
	for _, tc := range []struct {
		x    float64
		want int64
	}{{0.5, 1}, {-1, 0}, {1, 0}, {0, 1}} {
		args := []seamless.Value{seamless.FloatV(tc.x), seamless.FloatV(0), seamless.FloatV(1)}
		cv, err := ec.Call("inrange", args...)
		if err != nil {
			t.Fatal(err)
		}
		vv, err := ev.Call("inrange", args...)
		if err != nil {
			t.Fatal(err)
		}
		if cv.I != tc.want || vv.I != tc.want {
			t.Fatalf("inrange(%g): compiled %d vm %d want %d", tc.x, cv.I, vv.I, tc.want)
		}
	}
	cv, err := ec.Call("tri", seamless.FloatV(1), seamless.FloatV(2), seamless.FloatV(3))
	if err != nil || !cv.B {
		t.Fatalf("tri ascending: %v %v", cv, err)
	}
	cv, _ = ec.Call("tri", seamless.FloatV(1), seamless.FloatV(3), seamless.FloatV(2))
	if cv.B {
		t.Fatal("tri non-ascending accepted")
	}
}

func TestSpecializationReuse(t *testing.T) {
	prog, _ := seamless.CompileSource("def double(x):\n    return x + x\n")
	e := NewEngine(prog)
	a, err := e.Call("double", seamless.IntV(21))
	if err != nil || a.I != 42 {
		t.Fatalf("int: %v %v", a, err)
	}
	b, err := e.Call("double", seamless.FloatV(1.5))
	if err != nil || b.F != 3 {
		t.Fatalf("float: %v %v", b, err)
	}
	if len(e.fns) != 2 {
		t.Fatalf("compiled %d specializations", len(e.fns))
	}
	// Second int call reuses the compiled body.
	e.Call("double", seamless.IntV(1))
	if len(e.fns) != 2 {
		t.Fatal("re-compiled")
	}
}
