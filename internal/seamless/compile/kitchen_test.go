package compile

import (
	"testing"

	"odinhpc/internal/seamless"
	"odinhpc/internal/seamless/vm"
)

// kitchenSink touches every statement form and every typed expression path
// of both engines: bool variables and parameters, float // and %, unary
// not, int arrays end to end, augmented index assignments with each
// operator, pass/continue/break, void calls, nested calls in every result
// position, and while-loop mutation of state.
const kitchenSink = `
def boolparam(flag, x):
    ok = flag and not (x < 0.0)
    if ok == True:
        return 1
    return 0

def floatops(a, b):
    q = a // b
    r = a % b
    s = a ** 2.0
    return q * 1000.0 + r * 10.0 + s / 100.0

def intarrays(src):
    out = izeros(len(src))
    for i in range(len(src)):
        out[i] = src[i] * 2
    t = 0
    for i in range(len(out)):
        t += out[i]
    return t

def augindex(xs):
    xs[0] += 1.0
    xs[1] -= 2.0
    xs[2] *= 3.0
    xs[3] /= 4.0
    s = 0.0
    for i in range(len(xs)):
        s += xs[i]
    return s

def controlsoup(n):
    total = 0
    i = 0
    while True == (i < n):
        i += 1
        if i % 3 == 0:
            continue
        if i > 17:
            break
        total += i
    j = n
    while j > 0:
        j -= 1
        pass
    return total

def helper_arrf(n):
    a = zeros(n)
    for i in range(n):
        a[i] = float(i) + 0.5
    return a

def helper_arri(n):
    a = izeros(n)
    for i in range(n):
        a[i] = i * i
    return a

def helper_bool(x):
    return x > 0.0

def callpositions(n):
    fa = helper_arrf(n)
    ia = helper_arri(n)
    acc = 0.0
    if helper_bool(fa[0]):
        acc += fa[n - 1]
    acc += float(ia[n - 1])
    return acc

def negint(a):
    return -a

def intfloatmix(i, f):
    return i + f * 2.0 - i / 2
`

func kitchenEngines(t *testing.T) (*Engine, *vm.Engine) {
	t.Helper()
	pc, err := seamless.CompileSource(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := seamless.CompileSource(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(pc), vm.NewEngine(pv)
}

func TestKitchenSinkBothEngines(t *testing.T) {
	ec, ev := kitchenEngines(t)
	// Kernels may mutate array arguments, so each engine gets its own copy.
	cloneArgs := func(args []seamless.Value) []seamless.Value {
		out := make([]seamless.Value, len(args))
		for i, a := range args {
			switch a.K {
			case seamless.TArrFloat:
				out[i] = seamless.ArrFV(append([]float64(nil), a.AF...))
			case seamless.TArrInt:
				out[i] = seamless.ArrIV(append([]int64(nil), a.AI...))
			default:
				out[i] = a
			}
		}
		return out
	}
	check := func(name string, want seamless.Value, args ...seamless.Value) {
		t.Helper()
		cv, err := ec.Call(name, cloneArgs(args)...)
		if err != nil {
			t.Fatalf("%s compiled: %v", name, err)
		}
		vv, err := ev.Call(name, cloneArgs(args)...)
		if err != nil {
			t.Fatalf("%s vm: %v", name, err)
		}
		if cv.K != vv.K || cv.I != vv.I || cv.F != vv.F || cv.B != vv.B {
			t.Fatalf("%s: engines disagree: %v vs %v", name, cv, vv)
		}
		if want.K != seamless.TNone {
			if cv.K != want.K {
				t.Fatalf("%s: kind %v want %v", name, cv.K, want.K)
			}
			switch want.K {
			case seamless.TInt:
				if cv.I != want.I {
					t.Fatalf("%s: %d want %d", name, cv.I, want.I)
				}
			case seamless.TFloat:
				if cv.F != want.F {
					t.Fatalf("%s: %g want %g", name, cv.F, want.F)
				}
			case seamless.TBool:
				if cv.B != want.B {
					t.Fatalf("%s: %v want %v", name, cv.B, want.B)
				}
			}
		}
	}

	check("boolparam", seamless.IntV(1), seamless.BoolV(true), seamless.FloatV(2))
	check("boolparam", seamless.IntV(0), seamless.BoolV(true), seamless.FloatV(-2))
	check("boolparam", seamless.IntV(0), seamless.BoolV(false), seamless.FloatV(2))

	// floatops(7.5, 2): q=3, r=1.5, s=56.25 -> 3000 + 15 + 0.5625.
	check("floatops", seamless.FloatV(3015.5625), seamless.FloatV(7.5), seamless.FloatV(2))

	check("intarrays", seamless.IntV(2*(1+2+3+4)), seamless.ArrIV([]int64{1, 2, 3, 4}))

	// augindex([1,2,3,4]): [2, 0, 9, 1] -> 12.
	check("augindex", seamless.FloatV(12), seamless.ArrFV([]float64{1, 2, 3, 4}))

	// controlsoup(100): sums i in 1..17 skipping multiples of 3:
	// 1+2+4+5+7+8+10+11+13+14+16+17 = 108.
	check("controlsoup", seamless.IntV(108), seamless.IntV(100))

	// callpositions(4): fa[0]=0.5>0 so acc = fa[3]=3.5 + ia[3]=9 -> 12.5.
	check("callpositions", seamless.FloatV(12.5), seamless.IntV(4))

	check("negint", seamless.IntV(-7), seamless.IntV(7))

	// intfloatmix(5, 1.5): 5 + 3.0 - 2.5 = 5.5 (int/int is true division).
	check("intfloatmix", seamless.FloatV(5.5), seamless.IntV(5), seamless.FloatV(1.5))

	// Array-returning functions called at the boundary.
	arr, err := ec.Call("helper_arrf", seamless.IntV(3))
	if err != nil || len(arr.AF) != 3 || arr.AF[2] != 2.5 {
		t.Fatalf("helper_arrf: %v %v", arr, err)
	}
	iarr, err := ec.Call("helper_arri", seamless.IntV(3))
	if err != nil || len(iarr.AI) != 3 || iarr.AI[2] != 4 {
		t.Fatalf("helper_arri: %v %v", iarr, err)
	}
	bv, err := ec.Call("helper_bool", seamless.FloatV(-1))
	if err != nil || bv.B {
		t.Fatalf("helper_bool: %v %v", bv, err)
	}
}

func TestForLoopNegativeStepCompiled(t *testing.T) {
	src := `
def down(a, b, s):
    t = 0
    for i in range(a, b, s):
        t += i
    return t

def zerostep(n):
    t = 0
    for i in range(0, n, n - n):
        t += 1
    return t
`
	pc, _ := seamless.CompileSource(src)
	ec := NewEngine(pc)
	out, err := ec.Call("down", seamless.IntV(10), seamless.IntV(0), seamless.IntV(-2))
	if err != nil {
		t.Fatal(err)
	}
	if out.I != 10+8+6+4+2 {
		t.Fatalf("down = %d", out.I)
	}
	// Zero step faults at runtime in both engines.
	if _, err := ec.Call("zerostep", seamless.IntV(3)); err == nil {
		t.Fatal("zero step accepted (compiled)")
	}
	pv, _ := seamless.CompileSource(src)
	ev := vm.NewEngine(pv)
	if out, err := ev.Call("down", seamless.IntV(10), seamless.IntV(0), seamless.IntV(-2)); err != nil || out.I != 30 {
		t.Fatalf("vm down: %v %v", out, err)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	// Inference failures must arrive as errors from Call, not panics.
	pc, err := seamless.CompileSource("def f(x):\n    return x + unknownfn(x)\n")
	if err != nil {
		t.Fatal(err)
	}
	ec := NewEngine(pc)
	if _, err := ec.Call("f", seamless.FloatV(1)); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := ec.Call("nosuch", seamless.FloatV(1)); err == nil {
		t.Fatal("unknown entry point accepted")
	}
	if _, err := ec.Call("f"); err == nil {
		t.Fatal("wrong arity accepted")
	}
}
