package compile

import (
	"fmt"
	"math"

	"odinhpc/internal/seamless"
)

// moduleInvoker compiles a call to another module function into a closure
// that builds the callee frame, evaluates the arguments straight into it
// (no boxing), runs the body, and returns the callee frame for result
// extraction.
func (cc *fnCompiler) moduleInvoker(x *seamless.CallExpr) (func(*frame) *frame, *Compiled, error) {
	fnDef, ok := cc.engine.prog.Module.ByName[x.Name]
	if !ok {
		return nil, nil, fmt.Errorf("compile: unknown function %q at line %d", x.Name, x.Line)
	}
	args := make([]seamless.Type, len(x.Args))
	for i, a := range x.Args {
		args[i] = cc.typeOf(a)
	}
	for i, p := range fnDef.Params {
		if i < len(args) && p.Ann == seamless.TFloat && args[i] == seamless.TInt {
			args[i] = seamless.TFloat
		}
	}
	tf, err := cc.engine.prog.Specialize(x.Name, args)
	if err != nil {
		return nil, nil, err
	}
	callee, err := cc.engine.CompileFor(tf)
	if err != nil {
		return nil, nil, err
	}
	setters := make([]func(src, dst *frame), len(x.Args))
	for i, a := range x.Args {
		ref := callee.params[i]
		switch ref.t {
		case seamless.TFloat:
			fv, err := cc.floatExpr(a)
			if err != nil {
				return nil, nil, err
			}
			slot := ref.slot
			setters[i] = func(src, dst *frame) { dst.f[slot] = fv(src) }
		case seamless.TInt:
			iv, err := cc.intExpr(a)
			if err != nil {
				return nil, nil, err
			}
			slot := ref.slot
			setters[i] = func(src, dst *frame) { dst.i[slot] = iv(src) }
		case seamless.TBool:
			bv, err := cc.boolExpr(a)
			if err != nil {
				return nil, nil, err
			}
			slot := ref.slot
			setters[i] = func(src, dst *frame) { dst.b[slot] = bv(src) }
		case seamless.TArrFloat:
			av, err := cc.arrFExpr(a)
			if err != nil {
				return nil, nil, err
			}
			slot := ref.slot
			setters[i] = func(src, dst *frame) { dst.af[slot] = av(src) }
		case seamless.TArrInt:
			av, err := cc.arrIExpr(a)
			if err != nil {
				return nil, nil, err
			}
			slot := ref.slot
			setters[i] = func(src, dst *frame) { dst.ai[slot] = av(src) }
		}
	}
	invoke := func(fr *frame) *frame {
		nf := callee.newFrame()
		for _, set := range setters {
			set(fr, nf)
		}
		callee.run(nf)
		return nf
	}
	return invoke, callee, nil
}

// externCall compiles an FFI call into a direct closure over the native
// function.
func (cc *fnCompiler) externCall(x *seamless.CallExpr, ext seamless.Extern) (func(*frame) float64, error) {
	argFns := make([]func(*frame) float64, len(x.Args))
	for i, a := range x.Args {
		fv, err := cc.floatExpr(a)
		if err != nil {
			return nil, err
		}
		argFns[i] = fv
	}
	fn := ext.Fn
	switch len(argFns) {
	case 1:
		a0 := argFns[0]
		return func(fr *frame) float64 { return fn(a0(fr)) }, nil
	case 2:
		a0, a1 := argFns[0], argFns[1]
		return func(fr *frame) float64 { return fn(a0(fr), a1(fr)) }, nil
	default:
		return func(fr *frame) float64 {
			buf := make([]float64, len(argFns))
			for i, af := range argFns {
				buf[i] = af(fr)
			}
			return fn(buf...)
		}, nil
	}
}

func (cc *fnCompiler) floatCall(x *seamless.CallExpr) (func(*frame) float64, error) {
	switch x.Name {
	case "sqrt", "sin", "cos", "exp", "log":
		a, err := cc.floatExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		var f func(float64) float64
		switch x.Name {
		case "sqrt":
			f = math.Sqrt
		case "sin":
			f = math.Sin
		case "cos":
			f = math.Cos
		case "exp":
			f = math.Exp
		case "log":
			f = math.Log
		}
		return func(fr *frame) float64 { return f(a(fr)) }, nil
	case "abs":
		a, err := cc.floatExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) float64 { return math.Abs(a(fr)) }, nil
	case "min":
		l, err := cc.floatExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := cc.floatExpr(x.Args[1])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) float64 { return math.Min(l(fr), r(fr)) }, nil
	case "max":
		l, err := cc.floatExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := cc.floatExpr(x.Args[1])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) float64 { return math.Max(l(fr), r(fr)) }, nil
	case "float":
		return cc.floatExpr(x.Args[0])
	}
	if ext, ok := cc.engine.prog.Externs[x.Name]; ok {
		if _, shadowed := cc.engine.prog.Module.ByName[x.Name]; !shadowed {
			return cc.externCall(x, ext)
		}
	}
	invoke, callee, err := cc.moduleInvoker(x)
	if err != nil {
		return nil, err
	}
	switch callee.Ret {
	case seamless.TFloat:
		return func(fr *frame) float64 { return invoke(fr).retF }, nil
	case seamless.TInt:
		return func(fr *frame) float64 { return float64(invoke(fr).retI) }, nil
	}
	return nil, fmt.Errorf("compile: call %q returns %v, wanted float", x.Name, callee.Ret)
}

func (cc *fnCompiler) intCall(x *seamless.CallExpr) (func(*frame) int64, error) {
	switch x.Name {
	case "len":
		t := cc.typeOf(x.Args[0])
		if t == seamless.TArrFloat {
			a, err := cc.arrFExpr(x.Args[0])
			if err != nil {
				return nil, err
			}
			return func(fr *frame) int64 { return int64(len(a(fr))) }, nil
		}
		a, err := cc.arrIExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) int64 { return int64(len(a(fr))) }, nil
	case "abs":
		a, err := cc.intExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) int64 {
			v := a(fr)
			if v < 0 {
				return -v
			}
			return v
		}, nil
	case "min":
		l, err := cc.intExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := cc.intExpr(x.Args[1])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) int64 {
			a, b := l(fr), r(fr)
			if a < b {
				return a
			}
			return b
		}, nil
	case "max":
		l, err := cc.intExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := cc.intExpr(x.Args[1])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) int64 {
			a, b := l(fr), r(fr)
			if a > b {
				return a
			}
			return b
		}, nil
	case "int":
		t := cc.typeOf(x.Args[0])
		if t == seamless.TInt {
			return cc.intExpr(x.Args[0])
		}
		a, err := cc.floatExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) int64 { return int64(a(fr)) }, nil
	}
	invoke, callee, err := cc.moduleInvoker(x)
	if err != nil {
		return nil, err
	}
	if callee.Ret != seamless.TInt {
		return nil, fmt.Errorf("compile: call %q returns %v, wanted int", x.Name, callee.Ret)
	}
	return func(fr *frame) int64 { return invoke(fr).retI }, nil
}

func (cc *fnCompiler) boolCall(x *seamless.CallExpr) (func(*frame) bool, error) {
	invoke, callee, err := cc.moduleInvoker(x)
	if err != nil {
		return nil, err
	}
	if callee.Ret != seamless.TBool {
		return nil, fmt.Errorf("compile: call %q returns %v, wanted bool", x.Name, callee.Ret)
	}
	return func(fr *frame) bool { return invoke(fr).retB }, nil
}

func (cc *fnCompiler) arrFCall(x *seamless.CallExpr) (func(*frame) []float64, error) {
	switch x.Name {
	// Elementwise math over whole arrays. Of these only log reaches this
	// closure in practice (it has no fusion opcode); the rest are claimed
	// by the fused fast path in fuse.go.
	case "sqrt", "sin", "cos", "exp", "log", "abs":
		f := map[string]func(float64) float64{
			"sqrt": math.Sqrt, "sin": math.Sin, "cos": math.Cos,
			"exp": math.Exp, "log": math.Log, "abs": math.Abs,
		}[x.Name]
		a, err := cc.arrFExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) []float64 {
			av := a(fr)
			out := make([]float64, len(av))
			for i, v := range av {
				out[i] = f(v)
			}
			return out
		}, nil
	}
	if x.Name == "zeros" {
		n, err := cc.intExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) []float64 { return make([]float64, n(fr)) }, nil
	}
	invoke, callee, err := cc.moduleInvoker(x)
	if err != nil {
		return nil, err
	}
	if callee.Ret != seamless.TArrFloat {
		return nil, fmt.Errorf("compile: call %q returns %v, wanted float array", x.Name, callee.Ret)
	}
	return func(fr *frame) []float64 { return invoke(fr).retAF }, nil
}

func (cc *fnCompiler) arrICall(x *seamless.CallExpr) (func(*frame) []int64, error) {
	if x.Name == "izeros" {
		n, err := cc.intExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		return func(fr *frame) []int64 { return make([]int64, n(fr)) }, nil
	}
	invoke, callee, err := cc.moduleInvoker(x)
	if err != nil {
		return nil, err
	}
	if callee.Ret != seamless.TArrInt {
		return nil, fmt.Errorf("compile: call %q returns %v, wanted int array", x.Name, callee.Ret)
	}
	return func(fr *frame) []int64 { return invoke(fr).retAI }, nil
}

func (cc *fnCompiler) voidCall(x *seamless.CallExpr) (func(*frame), error) {
	invoke, _, err := cc.moduleInvoker(x)
	if err != nil {
		return nil, err
	}
	return func(fr *frame) { invoke(fr) }, nil
}
