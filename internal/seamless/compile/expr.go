package compile

import (
	"fmt"
	"math"

	"odinhpc/internal/seamless"
)

// floatExpr compiles an expression to an unboxed float64 closure, coercing
// int-typed subexpressions.
func (cc *fnCompiler) floatExpr(e seamless.Expr) (func(*frame) float64, error) {
	t := cc.typeOf(e)
	if t == seamless.TInt {
		iv, err := cc.intExpr(e)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) float64 { return float64(iv(fr)) }, nil
	}
	if t != seamless.TFloat {
		return nil, fmt.Errorf("compile: expected float expression, got %v", t)
	}
	switch x := e.(type) {
	case *seamless.FloatLit:
		v := x.V
		return func(*frame) float64 { return v }, nil
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) float64 { return fr.f[slot] }, nil
	case *seamless.UnaryExpr:
		a, err := cc.floatExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) float64 { return -a(fr) }, nil
	case *seamless.BinExpr:
		l, err := cc.floatExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.floatExpr(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return func(fr *frame) float64 { return l(fr) + r(fr) }, nil
		case "-":
			return func(fr *frame) float64 { return l(fr) - r(fr) }, nil
		case "*":
			return func(fr *frame) float64 { return l(fr) * r(fr) }, nil
		case "/":
			return func(fr *frame) float64 { return l(fr) / r(fr) }, nil
		case "//":
			return func(fr *frame) float64 { return math.Floor(l(fr) / r(fr)) }, nil
		case "%":
			return func(fr *frame) float64 {
				m := math.Mod(l(fr), r(fr))
				if m != 0 && (m < 0) != (r(fr) < 0) {
					m += r(fr)
				}
				return m
			}, nil
		case "**":
			return func(fr *frame) float64 { return math.Pow(l(fr), r(fr)) }, nil
		}
		return nil, fmt.Errorf("compile: float op %q", x.Op)
	case *seamless.IndexExpr:
		arr, err := cc.arrFExpr(x.Arr)
		if err != nil {
			return nil, err
		}
		idx, err := cc.intExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) float64 { return arr(fr)[idx(fr)] }, nil
	case *seamless.CallExpr:
		return cc.floatCall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as float", e)
}

func (cc *fnCompiler) intExpr(e seamless.Expr) (func(*frame) int64, error) {
	if t := cc.typeOf(e); t != seamless.TInt {
		return nil, fmt.Errorf("compile: expected int expression, got %v", t)
	}
	switch x := e.(type) {
	case *seamless.IntLit:
		v := x.V
		return func(*frame) int64 { return v }, nil
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) int64 { return fr.i[slot] }, nil
	case *seamless.UnaryExpr:
		a, err := cc.intExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) int64 { return -a(fr) }, nil
	case *seamless.BinExpr:
		l, err := cc.intExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.intExpr(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return func(fr *frame) int64 { return l(fr) + r(fr) }, nil
		case "-":
			return func(fr *frame) int64 { return l(fr) - r(fr) }, nil
		case "*":
			return func(fr *frame) int64 { return l(fr) * r(fr) }, nil
		case "//":
			return func(fr *frame) int64 { return floorDivInt(l(fr), r(fr)) }, nil
		case "%":
			return func(fr *frame) int64 { return pythonModInt(l(fr), r(fr)) }, nil
		case "**":
			return func(fr *frame) int64 { return powInt(l(fr), r(fr)) }, nil
		}
		return nil, fmt.Errorf("compile: int op %q", x.Op)
	case *seamless.IndexExpr:
		arr, err := cc.arrIExpr(x.Arr)
		if err != nil {
			return nil, err
		}
		idx, err := cc.intExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) int64 { return arr(fr)[idx(fr)] }, nil
	case *seamless.CallExpr:
		return cc.intCall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as int", e)
}

func (cc *fnCompiler) boolExpr(e seamless.Expr) (func(*frame) bool, error) {
	if t := cc.typeOf(e); t != seamless.TBool {
		return nil, fmt.Errorf("compile: expected bool expression, got %v", t)
	}
	switch x := e.(type) {
	case *seamless.BoolLit:
		v := x.V
		return func(*frame) bool { return v }, nil
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) bool { return fr.b[slot] }, nil
	case *seamless.UnaryExpr: // not
		a, err := cc.boolExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) bool { return !a(fr) }, nil
	case *seamless.BoolOpExpr:
		l, err := cc.boolExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.boolExpr(x.R)
		if err != nil {
			return nil, err
		}
		if x.Op == "and" {
			return func(fr *frame) bool { return l(fr) && r(fr) }, nil
		}
		return func(fr *frame) bool { return l(fr) || r(fr) }, nil
	case *seamless.CmpExpr:
		lt, rt := cc.typeOf(x.L), cc.typeOf(x.R)
		if lt == seamless.TBool && rt == seamless.TBool {
			l, err := cc.boolExpr(x.L)
			if err != nil {
				return nil, err
			}
			r, err := cc.boolExpr(x.R)
			if err != nil {
				return nil, err
			}
			if x.Op == "==" {
				return func(fr *frame) bool { return l(fr) == r(fr) }, nil
			}
			return func(fr *frame) bool { return l(fr) != r(fr) }, nil
		}
		if lt == seamless.TInt && rt == seamless.TInt {
			l, err := cc.intExpr(x.L)
			if err != nil {
				return nil, err
			}
			r, err := cc.intExpr(x.R)
			if err != nil {
				return nil, err
			}
			switch x.Op {
			case "<":
				return func(fr *frame) bool { return l(fr) < r(fr) }, nil
			case "<=":
				return func(fr *frame) bool { return l(fr) <= r(fr) }, nil
			case ">":
				return func(fr *frame) bool { return l(fr) > r(fr) }, nil
			case ">=":
				return func(fr *frame) bool { return l(fr) >= r(fr) }, nil
			case "==":
				return func(fr *frame) bool { return l(fr) == r(fr) }, nil
			case "!=":
				return func(fr *frame) bool { return l(fr) != r(fr) }, nil
			}
		}
		l, err := cc.floatExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.floatExpr(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "<":
			return func(fr *frame) bool { return l(fr) < r(fr) }, nil
		case "<=":
			return func(fr *frame) bool { return l(fr) <= r(fr) }, nil
		case ">":
			return func(fr *frame) bool { return l(fr) > r(fr) }, nil
		case ">=":
			return func(fr *frame) bool { return l(fr) >= r(fr) }, nil
		case "==":
			return func(fr *frame) bool { return l(fr) == r(fr) }, nil
		case "!=":
			return func(fr *frame) bool { return l(fr) != r(fr) }, nil
		}
		return nil, fmt.Errorf("compile: comparison %q", x.Op)
	case *seamless.CallExpr:
		return cc.boolCall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as bool", e)
}

func (cc *fnCompiler) arrFExpr(e seamless.Expr) (func(*frame) []float64, error) {
	if t := cc.typeOf(e); t != seamless.TArrFloat {
		return nil, fmt.Errorf("compile: expected float array, got %v", t)
	}
	switch x := e.(type) {
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) []float64 { return fr.af[slot] }, nil
	case *seamless.CallExpr:
		return cc.arrFCall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as float array", e)
}

func (cc *fnCompiler) arrIExpr(e seamless.Expr) (func(*frame) []int64, error) {
	if t := cc.typeOf(e); t != seamless.TArrInt {
		return nil, fmt.Errorf("compile: expected int array, got %v", t)
	}
	switch x := e.(type) {
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) []int64 { return fr.ai[slot] }, nil
	case *seamless.CallExpr:
		return cc.arrICall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as int array", e)
}

func floorDivInt(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func pythonModInt(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

func powInt(base, exp int64) int64 {
	if exp < 0 {
		panic("negative integer exponent")
	}
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}
