package compile

import (
	"fmt"
	"math"

	"odinhpc/internal/seamless"
)

// floatExpr compiles an expression to an unboxed float64 closure, coercing
// int-typed subexpressions.
func (cc *fnCompiler) floatExpr(e seamless.Expr) (func(*frame) float64, error) {
	t := cc.typeOf(e)
	if t == seamless.TInt {
		iv, err := cc.intExpr(e)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) float64 { return float64(iv(fr)) }, nil
	}
	if t != seamless.TFloat {
		return nil, fmt.Errorf("compile: expected float expression, got %v", t)
	}
	switch x := e.(type) {
	case *seamless.FloatLit:
		v := x.V
		return func(*frame) float64 { return v }, nil
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) float64 { return fr.f[slot] }, nil
	case *seamless.UnaryExpr:
		a, err := cc.floatExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) float64 { return -a(fr) }, nil
	case *seamless.BinExpr:
		l, err := cc.floatExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.floatExpr(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return func(fr *frame) float64 { return l(fr) + r(fr) }, nil
		case "-":
			return func(fr *frame) float64 { return l(fr) - r(fr) }, nil
		case "*":
			return func(fr *frame) float64 { return l(fr) * r(fr) }, nil
		case "/":
			return func(fr *frame) float64 { return l(fr) / r(fr) }, nil
		case "//":
			return func(fr *frame) float64 { return math.Floor(l(fr) / r(fr)) }, nil
		case "%":
			return func(fr *frame) float64 {
				m := math.Mod(l(fr), r(fr))
				if m != 0 && (m < 0) != (r(fr) < 0) {
					m += r(fr)
				}
				return m
			}, nil
		case "**":
			return func(fr *frame) float64 { return math.Pow(l(fr), r(fr)) }, nil
		}
		return nil, fmt.Errorf("compile: float op %q", x.Op)
	case *seamless.IndexExpr:
		arr, err := cc.arrFExpr(x.Arr)
		if err != nil {
			return nil, err
		}
		idx, err := cc.intExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) float64 { return arr(fr)[idx(fr)] }, nil
	case *seamless.CallExpr:
		return cc.floatCall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as float", e)
}

func (cc *fnCompiler) intExpr(e seamless.Expr) (func(*frame) int64, error) {
	if t := cc.typeOf(e); t != seamless.TInt {
		return nil, fmt.Errorf("compile: expected int expression, got %v", t)
	}
	switch x := e.(type) {
	case *seamless.IntLit:
		v := x.V
		return func(*frame) int64 { return v }, nil
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) int64 { return fr.i[slot] }, nil
	case *seamless.UnaryExpr:
		a, err := cc.intExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) int64 { return -a(fr) }, nil
	case *seamless.BinExpr:
		l, err := cc.intExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.intExpr(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return func(fr *frame) int64 { return l(fr) + r(fr) }, nil
		case "-":
			return func(fr *frame) int64 { return l(fr) - r(fr) }, nil
		case "*":
			return func(fr *frame) int64 { return l(fr) * r(fr) }, nil
		case "//":
			return func(fr *frame) int64 { return floorDivInt(l(fr), r(fr)) }, nil
		case "%":
			return func(fr *frame) int64 { return pythonModInt(l(fr), r(fr)) }, nil
		case "**":
			return func(fr *frame) int64 { return powInt(l(fr), r(fr)) }, nil
		}
		return nil, fmt.Errorf("compile: int op %q", x.Op)
	case *seamless.IndexExpr:
		arr, err := cc.arrIExpr(x.Arr)
		if err != nil {
			return nil, err
		}
		idx, err := cc.intExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) int64 { return arr(fr)[idx(fr)] }, nil
	case *seamless.CallExpr:
		return cc.intCall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as int", e)
}

func (cc *fnCompiler) boolExpr(e seamless.Expr) (func(*frame) bool, error) {
	if t := cc.typeOf(e); t != seamless.TBool {
		return nil, fmt.Errorf("compile: expected bool expression, got %v", t)
	}
	switch x := e.(type) {
	case *seamless.BoolLit:
		v := x.V
		return func(*frame) bool { return v }, nil
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) bool { return fr.b[slot] }, nil
	case *seamless.UnaryExpr: // not
		a, err := cc.boolExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) bool { return !a(fr) }, nil
	case *seamless.BoolOpExpr:
		l, err := cc.boolExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.boolExpr(x.R)
		if err != nil {
			return nil, err
		}
		if x.Op == "and" {
			return func(fr *frame) bool { return l(fr) && r(fr) }, nil
		}
		return func(fr *frame) bool { return l(fr) || r(fr) }, nil
	case *seamless.CmpExpr:
		lt, rt := cc.typeOf(x.L), cc.typeOf(x.R)
		if lt == seamless.TBool && rt == seamless.TBool {
			l, err := cc.boolExpr(x.L)
			if err != nil {
				return nil, err
			}
			r, err := cc.boolExpr(x.R)
			if err != nil {
				return nil, err
			}
			if x.Op == "==" {
				return func(fr *frame) bool { return l(fr) == r(fr) }, nil
			}
			return func(fr *frame) bool { return l(fr) != r(fr) }, nil
		}
		if lt == seamless.TInt && rt == seamless.TInt {
			l, err := cc.intExpr(x.L)
			if err != nil {
				return nil, err
			}
			r, err := cc.intExpr(x.R)
			if err != nil {
				return nil, err
			}
			switch x.Op {
			case "<":
				return func(fr *frame) bool { return l(fr) < r(fr) }, nil
			case "<=":
				return func(fr *frame) bool { return l(fr) <= r(fr) }, nil
			case ">":
				return func(fr *frame) bool { return l(fr) > r(fr) }, nil
			case ">=":
				return func(fr *frame) bool { return l(fr) >= r(fr) }, nil
			case "==":
				return func(fr *frame) bool { return l(fr) == r(fr) }, nil
			case "!=":
				return func(fr *frame) bool { return l(fr) != r(fr) }, nil
			}
		}
		l, err := cc.floatExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.floatExpr(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "<":
			return func(fr *frame) bool { return l(fr) < r(fr) }, nil
		case "<=":
			return func(fr *frame) bool { return l(fr) <= r(fr) }, nil
		case ">":
			return func(fr *frame) bool { return l(fr) > r(fr) }, nil
		case ">=":
			return func(fr *frame) bool { return l(fr) >= r(fr) }, nil
		case "==":
			return func(fr *frame) bool { return l(fr) == r(fr) }, nil
		case "!=":
			return func(fr *frame) bool { return l(fr) != r(fr) }, nil
		}
		return nil, fmt.Errorf("compile: comparison %q", x.Op)
	case *seamless.CallExpr:
		return cc.boolCall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as bool", e)
}

func (cc *fnCompiler) arrFExpr(e seamless.Expr) (func(*frame) []float64, error) {
	if t := cc.typeOf(e); t != seamless.TArrFloat {
		return nil, fmt.Errorf("compile: expected float array, got %v", t)
	}
	// Whole-array expressions run on the fusion register VM whenever the
	// tree is expressible (fuse.go); the closure loops below are the
	// fallback for the shapes it cannot express.
	if fn, ok, err := cc.fuseArrExpr(e); err != nil || ok {
		return fn, err
	}
	switch x := e.(type) {
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) []float64 { return fr.af[slot] }, nil
	case *seamless.UnaryExpr:
		a, err := cc.arrFExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) []float64 {
			av := a(fr)
			out := make([]float64, len(av))
			for i, v := range av {
				out[i] = -v
			}
			return out
		}, nil
	case *seamless.BinExpr:
		return cc.arrFBin(x)
	case *seamless.CallExpr:
		return cc.arrFCall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as float array", e)
}

// arrFBin is the closure fallback for whole-array binary expressions the
// fusion VM cannot express (dynamic scalar operands, //, %, **). The loops
// match the vm engine's boxed elementwise semantics bit for bit.
func (cc *fnCompiler) arrFBin(x *seamless.BinExpr) (func(*frame) []float64, error) {
	var f func(a, b float64) float64
	switch x.Op {
	case "+":
		f = func(a, b float64) float64 { return a + b }
	case "-":
		f = func(a, b float64) float64 { return a - b }
	case "*":
		f = func(a, b float64) float64 { return a * b }
	case "/":
		f = func(a, b float64) float64 { return a / b }
	case "//":
		f = func(a, b float64) float64 { return math.Floor(a / b) }
	case "%":
		f = pythonModFloat
	case "**":
		f = math.Pow
	default:
		return nil, fmt.Errorf("compile: array op %q", x.Op)
	}
	lt, rt := cc.typeOf(x.L), cc.typeOf(x.R)
	switch {
	case lt == seamless.TArrFloat && rt == seamless.TArrFloat:
		l, err := cc.arrFExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.arrFExpr(x.R)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) []float64 {
			la, ra := l(fr), r(fr)
			if len(la) != len(ra) {
				panic(fmt.Sprintf("array length mismatch: %d vs %d", len(la), len(ra)))
			}
			out := make([]float64, len(la))
			for i := range out {
				out[i] = f(la[i], ra[i])
			}
			return out
		}, nil
	case lt == seamless.TArrFloat: // array op broadcast-scalar
		l, err := cc.arrFExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.floatExpr(x.R)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) []float64 {
			la, s := l(fr), r(fr)
			out := make([]float64, len(la))
			for i := range out {
				out[i] = f(la[i], s)
			}
			return out
		}, nil
	default: // broadcast-scalar op array
		l, err := cc.floatExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.arrFExpr(x.R)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) []float64 {
			s, ra := l(fr), r(fr)
			out := make([]float64, len(ra))
			for i := range out {
				out[i] = f(s, ra[i])
			}
			return out
		}, nil
	}
}

func (cc *fnCompiler) arrIExpr(e seamless.Expr) (func(*frame) []int64, error) {
	if t := cc.typeOf(e); t != seamless.TArrInt {
		return nil, fmt.Errorf("compile: expected int array, got %v", t)
	}
	switch x := e.(type) {
	case *seamless.NameExpr:
		slot := cc.slot(x.Name).slot
		return func(fr *frame) []int64 { return fr.ai[slot] }, nil
	case *seamless.CallExpr:
		return cc.arrICall(x)
	}
	return nil, fmt.Errorf("compile: cannot compile %T as int array", e)
}

func floorDivInt(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func pythonModInt(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

func pythonModFloat(a, b float64) float64 {
	m := math.Mod(a, b)
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

func powInt(base, exp int64) int64 {
	if exp < 0 {
		panic("negative integer exponent")
	}
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}
