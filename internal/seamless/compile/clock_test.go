package compile

import "time"

// nowNanos isolates the wall clock for the qualitative timing test.
func nowNanos() int64 { return time.Now().UnixNano() }
