package seamless

import (
	"fmt"
	"strconv"
)

// Parse lexes and parses a module of function definitions.
func Parse(src string) (*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m := &Module{ByName: map[string]*FuncDef{}, Source: src}
	for !p.at(TokEOF, "") {
		// Allow stray newlines between defs.
		if p.at(TokNewline, "") {
			p.next()
			continue
		}
		fn, err := p.parseDef()
		if err != nil {
			return nil, err
		}
		if _, dup := m.ByName[fn.Name]; dup {
			return nil, errAt(fn.Line, 1, "duplicate function %q", fn.Name)
		}
		m.Funcs = append(m.Funcs, fn)
		m.ByName[fn.Name] = fn
	}
	if len(m.Funcs) == 0 {
		return nil, errAt(1, 1, "module defines no functions")
	}
	return m, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = kind.String()
		}
		return t, errAt(t.Line, t.Col, "expected %q, found %v", want, t)
	}
	return p.next(), nil
}

func (p *parser) parseDef() (*FuncDef, error) {
	start, err := p.expect(TokKeyword, "def")
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokName, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	fn := &FuncDef{Name: nameTok.Text, Line: start.Line}
	for !p.at(TokOp, ")") {
		pt, err := p.expect(TokName, "")
		if err != nil {
			return nil, err
		}
		param := Param{Name: pt.Text, Ann: TUnknown}
		if p.accept(TokOp, ":") {
			ann, err := p.parseType()
			if err != nil {
				return nil, err
			}
			param.Ann = ann
		}
		fn.Params = append(fn.Params, param)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	fn.RetAnn = TUnknown
	if p.accept(TokOp, "->") {
		ann, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn.RetAnn = ann
	}
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseType parses "int", "float", "bool", optionally suffixed "[:]" for
// arrays.
func (p *parser) parseType() (Type, error) {
	t, err := p.expect(TokName, "")
	if err != nil {
		return TUnknown, err
	}
	var base Type
	switch t.Text {
	case "int":
		base = TInt
	case "float":
		base = TFloat
	case "bool":
		base = TBool
	default:
		return TUnknown, errAt(t.Line, t.Col, "unknown type %q", t.Text)
	}
	if p.accept(TokOp, "[") {
		if _, err := p.expect(TokOp, ":"); err != nil {
			return TUnknown, err
		}
		if _, err := p.expect(TokOp, "]"); err != nil {
			return TUnknown, err
		}
		switch base {
		case TInt:
			return TArrInt, nil
		case TFloat:
			return TArrFloat, nil
		default:
			return TUnknown, errAt(t.Line, t.Col, "no array of %v", base)
		}
	}
	return base, nil
}

// parseBlock parses NEWLINE INDENT stmts DEDENT.
func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIndent, ""); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.at(TokDedent, "") && !p.at(TokEOF, "") {
		if p.accept(TokNewline, "") {
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if _, err := p.expect(TokDedent, ""); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		t := p.cur()
		return nil, errAt(t.Line, t.Col, "empty block")
	}
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	pos := Pos{t.Line, t.Col}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "pass":
			p.next()
			_, err := p.expect(TokNewline, "")
			return &PassStmt{pos}, err
		case "break":
			p.next()
			_, err := p.expect(TokNewline, "")
			return &BreakStmt{pos}, err
		case "continue":
			p.next()
			_, err := p.expect(TokNewline, "")
			return &ContinueStmt{pos}, err
		case "return":
			p.next()
			if p.accept(TokNewline, "") {
				return &ReturnStmt{Pos: pos}, nil
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokNewline, ""); err != nil {
				return nil, err
			}
			return &ReturnStmt{Pos: pos, X: x}, nil
		case "if":
			return p.parseIf()
		case "while":
			p.next()
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ":"); err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
		case "for":
			return p.parseFor()
		}
	}
	// Assignment forms start with NAME.
	if t.Kind == TokName {
		nxt := p.toks[p.pos+1]
		if nxt.Kind == TokOp {
			switch nxt.Text {
			case "=":
				p.next()
				p.next()
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokNewline, ""); err != nil {
					return nil, err
				}
				return &AssignStmt{Pos: pos, Name: t.Text, X: x}, nil
			case "+=", "-=", "*=", "/=", "%=":
				p.next()
				p.next()
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokNewline, ""); err != nil {
					return nil, err
				}
				return &AugAssignStmt{Pos: pos, Name: t.Text, Op: nxt.Text[:1], X: x}, nil
			case "[":
				// Could be an index assignment or an index expression
				// statement; parse the subscript then decide.
				save := p.pos
				p.next() // name
				p.next() // [
				idx, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokOp, "]"); err != nil {
					return nil, err
				}
				op := p.cur()
				if op.Kind == TokOp {
					switch op.Text {
					case "=":
						p.next()
						x, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						if _, err := p.expect(TokNewline, ""); err != nil {
							return nil, err
						}
						return &IndexAssignStmt{Pos: pos, Name: t.Text, Index: idx, X: x}, nil
					case "+=", "-=", "*=", "/=", "%=":
						p.next()
						x, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						if _, err := p.expect(TokNewline, ""); err != nil {
							return nil, err
						}
						return &IndexAssignStmt{Pos: pos, Name: t.Text, Index: idx, Op: op.Text[:1], X: x}, nil
					}
				}
				// Rewind: plain expression statement.
				p.pos = save
			}
		}
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: pos, X: x}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.next() // if / elif
	pos := Pos{t.Line, t.Col}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &IfStmt{Pos: pos, Cond: cond, Then: then}
	switch {
	case p.at(TokKeyword, "elif"):
		sub, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		node.Else = []Stmt{sub}
	case p.accept(TokKeyword, "else"):
		if _, err := p.expect(TokOp, ":"); err != nil {
			return nil, err
		}
		els, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.next() // for
	pos := Pos{t.Line, t.Col}
	v, err := p.expect(TokName, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "in"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "range"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	var args []Expr
	for {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, x)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f := &ForStmt{Pos: pos, Var: v.Text, Body: body}
	switch len(args) {
	case 1:
		f.Stop = args[0]
	case 2:
		f.Start, f.Stop = args[0], args[1]
	case 3:
		f.Start, f.Stop, f.Step = args[0], args[1], args[2]
	default:
		return nil, errAt(t.Line, t.Col, "range() takes 1-3 arguments, got %d", len(args))
	}
	return f, nil
}

// Expression grammar: or > and > not > comparison > addition >
// multiplication > unary > power > atom.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "or") {
		t := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BoolOpExpr{Pos: Pos{t.Line, t.Col}, Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "and") {
		t := p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BoolOpExpr{Pos: Pos{t.Line, t.Col}, Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.at(TokKeyword, "not") {
		t := p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: Pos{t.Line, t.Col}, Op: "not", X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]bool{"<": true, "<=": true, ">": true, ">=": true, "==": true, "!=": true}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Python chained comparisons: a < b <= c desugars to
	// (a < b) and (b <= c). Note the middle operand is re-evaluated, which
	// is observable only for side-effecting calls; numeric kernels are pure.
	var chain Expr
	prev := l
	for p.cur().Kind == TokOp && cmpOps[p.cur().Text] {
		t := p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		cmp := &CmpExpr{Pos: Pos{t.Line, t.Col}, Op: t.Text, L: prev, R: r}
		if chain == nil {
			chain = cmp
		} else {
			chain = &BoolOpExpr{Pos: Pos{t.Line, t.Col}, Op: "and", L: chain, R: cmp}
		}
		prev = r
	}
	if chain != nil {
		return chain, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOp && (p.cur().Text == "+" || p.cur().Text == "-") {
		t := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: Pos{t.Line, t.Col}, Op: t.Text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOp {
		op := p.cur().Text
		if op != "*" && op != "/" && op != "//" && op != "%" {
			break
		}
		t := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: Pos{t.Line, t.Col}, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.at(TokOp, "-") || p.at(TokOp, "+") {
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Text == "+" {
			return x, nil
		}
		return &UnaryExpr{Pos: Pos{t.Line, t.Col}, Op: "-", X: x}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (Expr, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.at(TokOp, "**") {
		t := p.next()
		// Right associative; exponent binds unary minus.
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Pos: Pos{t.Line, t.Col}, Op: "**", L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	pos := Pos{t.Line, t.Col}
	switch {
	case t.Kind == TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "bad integer literal %q", t.Text)
		}
		return &IntLit{Pos: pos, V: v}, nil
	case t.Kind == TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "bad float literal %q", t.Text)
		}
		return &FloatLit{Pos: pos, V: v}, nil
	case t.Kind == TokKeyword && (t.Text == "True" || t.Text == "False"):
		p.next()
		return &BoolLit{Pos: pos, V: t.Text == "True"}, nil
	case t.Kind == TokName:
		p.next()
		name := t.Text
		if p.accept(TokOp, "(") {
			var args []Expr
			for !p.at(TokOp, ")") {
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, x)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return p.parseTrailer(&CallExpr{Pos: pos, Name: name, Args: args})
		}
		return p.parseTrailer(&NameExpr{Pos: pos, Name: name})
	case t.Kind == TokOp && t.Text == "(":
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return p.parseTrailer(x)
	}
	return nil, errAt(t.Line, t.Col, "unexpected token %v in expression", t)
}

// parseTrailer handles chained subscripts after an atom.
func (p *parser) parseTrailer(x Expr) (Expr, error) {
	for p.at(TokOp, "[") {
		t := p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "]"); err != nil {
			return nil, err
		}
		x = &IndexExpr{Pos: Pos{t.Line, t.Col}, Arr: x, Index: idx}
	}
	return x, nil
}

// mustParse is a test helper that panics on parse errors.
func mustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("mustParse: %v", err))
	}
	return m
}
