package seamless

import (
	"fmt"
	"sort"
	"strings"
)

// Extern describes a foreign function made visible to kernels through the
// FFI layer (paper §IV.C): libm-style scalar functions taking and returning
// float64.
type Extern struct {
	NArgs int
	Fn    func(args ...float64) float64
}

// TypedFn is one type specialization of a function definition: the AST plus
// the inferred type of every variable and expression. Specializations are
// created per distinct argument-type tuple, the way tracing JITs
// specialize.
type TypedFn struct {
	Fn         *FuncDef
	ParamTypes []Type
	Ret        Type
	VarTypes   map[string]Type
	ExprTypes  map[Expr]Type
	prog       *Program
	retSeen    []Type // working list of return-expression types
}

// Program owns a parsed module, its FFI bindings, and the memoized type
// specializations both execution engines share.
type Program struct {
	Module  *Module
	Externs map[string]Extern
	specs   map[string]*TypedFn
	inProg  map[string]bool
}

// NewProgram wraps a parsed module.
func NewProgram(m *Module) *Program {
	return &Program{
		Module:  m,
		Externs: map[string]Extern{},
		specs:   map[string]*TypedFn{},
		inProg:  map[string]bool{},
	}
}

// CompileSource parses src and wraps it in a Program.
func CompileSource(src string) (*Program, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return NewProgram(m), nil
}

// Bind registers an extern under the given name (overwriting any previous
// binding). Kernels call it like a builtin.
func (pr *Program) Bind(name string, ext Extern) { pr.Externs[name] = ext }

// sigKey builds the memoization key of a specialization.
func sigKey(name string, args []Type) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Specializations returns the keys of all memoized specializations, sorted.
func (pr *Program) Specializations() []string {
	out := make([]string, 0, len(pr.specs))
	for k := range pr.specs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Specialize infers types for fn called with the given argument types,
// memoizing the result. Recursive calls require a return annotation.
func (pr *Program) Specialize(name string, argTypes []Type) (*TypedFn, error) {
	fn, ok := pr.Module.ByName[name]
	if !ok {
		return nil, fmt.Errorf("seamless: no function %q", name)
	}
	if len(argTypes) != len(fn.Params) {
		return nil, errAt(fn.Line, 1, "%s takes %d arguments, got %d", name, len(fn.Params), len(argTypes))
	}
	key := sigKey(name, argTypes)
	if tf, ok := pr.specs[key]; ok {
		return tf, nil
	}
	if pr.inProg[key] {
		if fn.RetAnn == TUnknown {
			return nil, errAt(fn.Line, 1, "recursive function %q needs a return annotation", name)
		}
		// Provisional entry carrying only the annotated return type.
		return &TypedFn{Fn: fn, ParamTypes: argTypes, Ret: fn.RetAnn, prog: pr}, nil
	}
	pr.inProg[key] = true
	defer delete(pr.inProg, key)

	tf := &TypedFn{
		Fn:         fn,
		ParamTypes: append([]Type(nil), argTypes...),
		VarTypes:   map[string]Type{},
		ExprTypes:  map[Expr]Type{},
		prog:       pr,
	}
	for i, p := range fn.Params {
		at := argTypes[i]
		if p.Ann != TUnknown && p.Ann != at {
			// Allow int arguments into float-annotated params.
			if !(p.Ann == TFloat && at == TInt) {
				return nil, errAt(fn.Line, 1, "%s: parameter %q annotated %v, called with %v", name, p.Name, p.Ann, at)
			}
			at = TFloat
		}
		tf.VarTypes[p.Name] = at
	}
	// Fixpoint iteration: assignments may promote variable types (int ->
	// float), which can re-type earlier expressions in loops.
	var inferErr error
	for pass := 0; pass < 16; pass++ {
		changed := false
		tf.retSeen = tf.retSeen[:0]
		for _, s := range fn.Body {
			c, err := tf.inferStmt(s)
			if err != nil {
				inferErr = err
				break
			}
			changed = changed || c
		}
		if inferErr != nil || !changed {
			break
		}
		if pass == 15 {
			inferErr = errAt(fn.Line, 1, "%s: type inference did not converge", name)
		}
	}
	if inferErr != nil {
		return nil, inferErr
	}
	// Unify return types.
	ret := TNone
	for _, rt := range tf.retSeen {
		if ret == TNone {
			ret = rt
			continue
		}
		u, ok := unify(ret, rt)
		if !ok {
			return nil, errAt(fn.Line, 1, "%s: conflicting return types %v and %v", name, ret, rt)
		}
		ret = u
	}
	if fn.RetAnn != TUnknown {
		if ret == TInt && fn.RetAnn == TFloat {
			ret = TFloat
		}
		if ret != fn.RetAnn && !(ret == TNone && fn.RetAnn == TNone) {
			return nil, errAt(fn.Line, 1, "%s: annotated -> %v but returns %v", name, fn.RetAnn, ret)
		}
	}
	tf.Ret = ret
	pr.specs[key] = tf
	return tf, nil
}

// unify returns the least common supertype of two scalar types.
func unify(a, b Type) (Type, bool) {
	if a == b {
		return a, true
	}
	if a == TInt && b == TFloat || a == TFloat && b == TInt {
		return TFloat, true
	}
	return TUnknown, false
}

func (tf *TypedFn) inferStmt(s Stmt) (changed bool, err error) {
	switch st := s.(type) {
	case *AssignStmt:
		t, err := tf.inferExpr(st.X)
		if err != nil {
			return false, err
		}
		old, seen := tf.VarTypes[st.Name]
		if !seen {
			tf.VarTypes[st.Name] = t
			return true, nil
		}
		u, ok := unify(old, t)
		if !ok {
			return false, errAt(st.Line, st.Col, "variable %q changes type from %v to %v", st.Name, old, t)
		}
		if u != old {
			tf.VarTypes[st.Name] = u
			return true, nil
		}
		return false, nil
	case *AugAssignStmt:
		t, err := tf.inferExpr(st.X)
		if err != nil {
			return false, err
		}
		old, seen := tf.VarTypes[st.Name]
		if !seen {
			return false, errAt(st.Line, st.Col, "augmented assignment to undefined %q", st.Name)
		}
		res, err := binType(st.Op, old, t, st.Pos)
		if err != nil {
			return false, err
		}
		u, ok := unify(old, res)
		if !ok {
			return false, errAt(st.Line, st.Col, "augmented assignment changes %q from %v to %v", st.Name, old, res)
		}
		if u != old {
			tf.VarTypes[st.Name] = u
			return true, nil
		}
		return false, nil
	case *IndexAssignStmt:
		at, seen := tf.VarTypes[st.Name]
		if !seen {
			return false, errAt(st.Line, st.Col, "index assignment to undefined %q", st.Name)
		}
		if !at.IsArray() {
			return false, errAt(st.Line, st.Col, "%q is %v, not an array", st.Name, at)
		}
		it, err := tf.inferExpr(st.Index)
		if err != nil {
			return false, err
		}
		if it != TInt {
			return false, errAt(st.Line, st.Col, "array index must be int, got %v", it)
		}
		vt, err := tf.inferExpr(st.X)
		if err != nil {
			return false, err
		}
		want := TFloat
		if at == TArrInt {
			want = TInt
		}
		if vt != want && !(want == TFloat && vt == TInt) {
			return false, errAt(st.Line, st.Col, "cannot store %v into %v", vt, at)
		}
		return false, nil
	case *ReturnStmt:
		if st.X == nil {
			tf.retSeen = append(tf.retSeen, TNone)
			return false, nil
		}
		t, err := tf.inferExpr(st.X)
		if err != nil {
			return false, err
		}
		tf.retSeen = append(tf.retSeen, t)
		return false, nil
	case *IfStmt:
		ct, err := tf.inferExpr(st.Cond)
		if err != nil {
			return false, err
		}
		if ct != TBool {
			return false, errAt(st.Line, st.Col, "if condition must be bool, got %v", ct)
		}
		changed := false
		for _, sub := range st.Then {
			c, err := tf.inferStmt(sub)
			if err != nil {
				return false, err
			}
			changed = changed || c
		}
		for _, sub := range st.Else {
			c, err := tf.inferStmt(sub)
			if err != nil {
				return false, err
			}
			changed = changed || c
		}
		return changed, nil
	case *WhileStmt:
		ct, err := tf.inferExpr(st.Cond)
		if err != nil {
			return false, err
		}
		if ct != TBool {
			return false, errAt(st.Line, st.Col, "while condition must be bool, got %v", ct)
		}
		changed := false
		for _, sub := range st.Body {
			c, err := tf.inferStmt(sub)
			if err != nil {
				return false, err
			}
			changed = changed || c
		}
		return changed, nil
	case *ForStmt:
		for _, bound := range []Expr{st.Start, st.Stop, st.Step} {
			if bound == nil {
				continue
			}
			bt, err := tf.inferExpr(bound)
			if err != nil {
				return false, err
			}
			if bt != TInt {
				return false, errAt(st.Line, st.Col, "range() bounds must be int, got %v", bt)
			}
		}
		changed := false
		if old, seen := tf.VarTypes[st.Var]; !seen {
			tf.VarTypes[st.Var] = TInt
			changed = true
		} else if old != TInt {
			return false, errAt(st.Line, st.Col, "loop variable %q already %v", st.Var, old)
		}
		for _, sub := range st.Body {
			c, err := tf.inferStmt(sub)
			if err != nil {
				return false, err
			}
			changed = changed || c
		}
		return changed, nil
	case *ExprStmt:
		_, err := tf.inferExpr(st.X)
		return false, err
	case *PassStmt, *BreakStmt, *ContinueStmt:
		return false, nil
	}
	return false, fmt.Errorf("seamless: unknown statement %T", s)
}

func binType(op string, l, r Type, pos Pos) (Type, error) {
	// Whole-array arithmetic: float arrays combine elementwise with float
	// arrays and broadcast against numeric scalars, always yielding a fresh
	// float array. Int arrays stay element-access only — silent elementwise
	// promotion to float would hide the copy a user asked to avoid.
	if l == TArrFloat || r == TArrFloat {
		ok := func(t Type) bool { return t == TArrFloat || t.IsNumeric() }
		if !ok(l) || !ok(r) {
			return TUnknown, errAt(pos.Line, pos.Col, "operator %q cannot combine %v and %v", op, l, r)
		}
		switch op {
		case "+", "-", "*", "/", "//", "%", "**":
			return TArrFloat, nil
		}
		return TUnknown, errAt(pos.Line, pos.Col, "unknown operator %q", op)
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return TUnknown, errAt(pos.Line, pos.Col, "operator %q needs numeric operands, got %v and %v", op, l, r)
	}
	switch op {
	case "/":
		return TFloat, nil // true division, Python 3 semantics
	case "+", "-", "*", "%", "//", "**":
		if l == TInt && r == TInt {
			return TInt, nil
		}
		return TFloat, nil
	}
	return TUnknown, errAt(pos.Line, pos.Col, "unknown operator %q", op)
}

func (tf *TypedFn) inferExpr(e Expr) (Type, error) {
	t, err := tf.inferExprInner(e)
	if err != nil {
		return TUnknown, err
	}
	tf.ExprTypes[e] = t
	return t, nil
}

func (tf *TypedFn) inferExprInner(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return TInt, nil
	case *FloatLit:
		return TFloat, nil
	case *BoolLit:
		return TBool, nil
	case *NameExpr:
		t, ok := tf.VarTypes[x.Name]
		if !ok {
			return TUnknown, errAt(x.Line, x.Col, "undefined variable %q", x.Name)
		}
		return t, nil
	case *UnaryExpr:
		t, err := tf.inferExpr(x.X)
		if err != nil {
			return TUnknown, err
		}
		if x.Op == "not" {
			if t != TBool {
				return TUnknown, errAt(x.Line, x.Col, "'not' needs bool, got %v", t)
			}
			return TBool, nil
		}
		if t == TArrFloat {
			return TArrFloat, nil
		}
		if !t.IsNumeric() {
			return TUnknown, errAt(x.Line, x.Col, "unary minus needs a number or float array, got %v", t)
		}
		return t, nil
	case *BinExpr:
		l, err := tf.inferExpr(x.L)
		if err != nil {
			return TUnknown, err
		}
		r, err := tf.inferExpr(x.R)
		if err != nil {
			return TUnknown, err
		}
		return binType(x.Op, l, r, x.Pos)
	case *CmpExpr:
		l, err := tf.inferExpr(x.L)
		if err != nil {
			return TUnknown, err
		}
		r, err := tf.inferExpr(x.R)
		if err != nil {
			return TUnknown, err
		}
		if l == TBool && r == TBool && (x.Op == "==" || x.Op == "!=") {
			return TBool, nil
		}
		if !l.IsNumeric() || !r.IsNumeric() {
			return TUnknown, errAt(x.Line, x.Col, "comparison needs numbers, got %v and %v", l, r)
		}
		return TBool, nil
	case *BoolOpExpr:
		l, err := tf.inferExpr(x.L)
		if err != nil {
			return TUnknown, err
		}
		r, err := tf.inferExpr(x.R)
		if err != nil {
			return TUnknown, err
		}
		if l != TBool || r != TBool {
			return TUnknown, errAt(x.Line, x.Col, "%q needs bool operands, got %v and %v", x.Op, l, r)
		}
		return TBool, nil
	case *IndexExpr:
		at, err := tf.inferExpr(x.Arr)
		if err != nil {
			return TUnknown, err
		}
		if !at.IsArray() {
			return TUnknown, errAt(x.Line, x.Col, "cannot index %v", at)
		}
		it, err := tf.inferExpr(x.Index)
		if err != nil {
			return TUnknown, err
		}
		if it != TInt {
			return TUnknown, errAt(x.Line, x.Col, "array index must be int, got %v", it)
		}
		if at == TArrInt {
			return TInt, nil
		}
		return TFloat, nil
	case *CallExpr:
		return tf.inferCall(x)
	}
	return TUnknown, fmt.Errorf("seamless: unknown expression %T", e)
}

func (tf *TypedFn) inferCall(x *CallExpr) (Type, error) {
	args := make([]Type, len(x.Args))
	for i, a := range x.Args {
		t, err := tf.inferExpr(a)
		if err != nil {
			return TUnknown, err
		}
		args[i] = t
	}
	// Builtins first, then module functions, then externs.
	if t, ok, err := builtinType(x, args); ok || err != nil {
		return t, err
	}
	if _, ok := tf.prog.Module.ByName[x.Name]; ok {
		// Int arguments promote into float-annotated parameters.
		callee := tf.prog.Module.ByName[x.Name]
		for i, p := range callee.Params {
			if i < len(args) && p.Ann == TFloat && args[i] == TInt {
				args[i] = TFloat
			}
		}
		sub, err := tf.prog.Specialize(x.Name, args)
		if err != nil {
			return TUnknown, err
		}
		return sub.Ret, nil
	}
	if ext, ok := tf.prog.Externs[x.Name]; ok {
		if len(args) != ext.NArgs {
			return TUnknown, errAt(x.Line, x.Col, "extern %q takes %d arguments, got %d", x.Name, ext.NArgs, len(args))
		}
		for i, t := range args {
			if !t.IsNumeric() {
				return TUnknown, errAt(x.Line, x.Col, "extern %q argument %d must be numeric, got %v", x.Name, i+1, t)
			}
		}
		return TFloat, nil
	}
	return TUnknown, errAt(x.Line, x.Col, "unknown function %q", x.Name)
}

// builtinType reports (type, known, error) for builtin calls.
func builtinType(x *CallExpr, args []Type) (Type, bool, error) {
	bad := func(format string, a ...any) (Type, bool, error) {
		return TUnknown, true, errAt(x.Line, x.Col, format, a...)
	}
	switch x.Name {
	case "len":
		if len(args) != 1 || !args[0].IsArray() {
			return bad("len() takes one array argument")
		}
		return TInt, true, nil
	case "sqrt", "sin", "cos", "exp", "log":
		if len(args) == 1 && args[0] == TArrFloat {
			return TArrFloat, true, nil // elementwise over the whole array
		}
		if len(args) != 1 || !args[0].IsNumeric() {
			return bad("%s() takes one numeric or float-array argument", x.Name)
		}
		return TFloat, true, nil
	case "abs":
		if len(args) == 1 && args[0] == TArrFloat {
			return TArrFloat, true, nil
		}
		if len(args) != 1 || !args[0].IsNumeric() {
			return bad("abs() takes one numeric or float-array argument")
		}
		return args[0], true, nil
	case "min", "max":
		if len(args) != 2 || !args[0].IsNumeric() || !args[1].IsNumeric() {
			return bad("%s() takes two numeric arguments", x.Name)
		}
		u, _ := unify(args[0], args[1])
		return u, true, nil
	case "int":
		if len(args) != 1 || !args[0].IsNumeric() {
			return bad("int() takes one numeric argument")
		}
		return TInt, true, nil
	case "float":
		if len(args) != 1 || !args[0].IsNumeric() {
			return bad("float() takes one numeric argument")
		}
		return TFloat, true, nil
	case "zeros":
		if len(args) != 1 || args[0] != TInt {
			return bad("zeros() takes one int argument")
		}
		return TArrFloat, true, nil
	case "izeros":
		if len(args) != 1 || args[0] != TInt {
			return bad("izeros() takes one int argument")
		}
		return TArrInt, true, nil
	}
	return TUnknown, false, nil
}

// IsBuiltin reports whether name is a language builtin.
func IsBuiltin(name string) bool {
	switch name {
	case "len", "sqrt", "sin", "cos", "exp", "log", "abs", "min", "max", "int", "float", "zeros", "izeros":
		return true
	}
	return false
}
