package vm

import (
	"fmt"

	"odinhpc/internal/seamless"
)

// lower translates a typed function into bytecode.
func (e *Engine) lower(tf *seamless.TypedFn) (*Proc, error) {
	l := &lowerer{
		engine: e,
		tf:     tf,
		proc: &Proc{
			Name:    tf.Fn.Name,
			NParams: len(tf.Fn.Params),
			slotOf:  map[string]int{},
		},
	}
	// Parameters occupy the first slots in order.
	for _, p := range tf.Fn.Params {
		l.slot(p.Name)
	}
	for _, s := range tf.Fn.Body {
		if err := l.stmt(s); err != nil {
			return nil, err
		}
	}
	l.emit(Instr{Op: OpRetNone})
	l.proc.NSlots = len(l.proc.slotOf)
	return l.proc, nil
}

type loopLabels struct {
	breakJumps []int // instruction indices to patch to loop end
	contTarget int   // -1 until known (patched after body)
	contJumps  []int
}

type lowerer struct {
	engine *Engine
	tf     *seamless.TypedFn
	proc   *Proc
	loops  []*loopLabels
}

func (l *lowerer) emit(i Instr) int {
	l.proc.Code = append(l.proc.Code, i)
	return len(l.proc.Code) - 1
}

func (l *lowerer) here() int { return len(l.proc.Code) }

func (l *lowerer) patch(at, target int) { l.proc.Code[at].A = target }

func (l *lowerer) slot(name string) int {
	if s, ok := l.proc.slotOf[name]; ok {
		return s
	}
	s := len(l.proc.slotOf)
	l.proc.slotOf[name] = s
	return s
}

func (l *lowerer) calleeID(c callee) int {
	l.proc.callees = append(l.proc.callees, c)
	return len(l.proc.callees) - 1
}

func (l *lowerer) stmt(s seamless.Stmt) error {
	switch st := s.(type) {
	case *seamless.AssignStmt:
		if err := l.expr(st.X); err != nil {
			return err
		}
		l.emit(Instr{Op: OpStore, A: l.slot(st.Name)})
	case *seamless.AugAssignStmt:
		l.emit(Instr{Op: OpLoad, A: l.slot(st.Name)})
		if err := l.expr(st.X); err != nil {
			return err
		}
		l.emit(Instr{Op: binOp(st.Op)})
		l.emit(Instr{Op: OpStore, A: l.slot(st.Name)})
	case *seamless.IndexAssignStmt:
		if err := l.expr(st.Index); err != nil {
			return err
		}
		if st.Op == "" {
			if err := l.expr(st.X); err != nil {
				return err
			}
		} else {
			// arr[i] op= v  ->  load arr[i]; v; op.
			l.emit(Instr{Op: OpLoad, A: l.slot(st.Name)})
			// Index is already on the stack below the array; re-evaluate it
			// for the read (cheap and simple).
			if err := l.expr(st.Index); err != nil {
				return err
			}
			l.emit(Instr{Op: OpIndex})
			if err := l.expr(st.X); err != nil {
				return err
			}
			l.emit(Instr{Op: binOp(st.Op)})
		}
		l.emit(Instr{Op: OpStoreIndex, A: l.slot(st.Name)})
	case *seamless.ReturnStmt:
		if st.X == nil {
			l.emit(Instr{Op: OpRetNone})
			return nil
		}
		if err := l.expr(st.X); err != nil {
			return err
		}
		l.emit(Instr{Op: OpRet})
	case *seamless.ExprStmt:
		if err := l.expr(st.X); err != nil {
			return err
		}
		l.emit(Instr{Op: OpPop})
	case *seamless.PassStmt:
	case *seamless.BreakStmt:
		if len(l.loops) == 0 {
			return fmt.Errorf("vm: break outside loop at line %d", st.Line)
		}
		top := l.loops[len(l.loops)-1]
		top.breakJumps = append(top.breakJumps, l.emit(Instr{Op: OpJmp}))
	case *seamless.ContinueStmt:
		if len(l.loops) == 0 {
			return fmt.Errorf("vm: continue outside loop at line %d", st.Line)
		}
		top := l.loops[len(l.loops)-1]
		top.contJumps = append(top.contJumps, l.emit(Instr{Op: OpJmp}))
	case *seamless.IfStmt:
		if err := l.expr(st.Cond); err != nil {
			return err
		}
		jfalse := l.emit(Instr{Op: OpJmpFalse})
		for _, sub := range st.Then {
			if err := l.stmt(sub); err != nil {
				return err
			}
		}
		if len(st.Else) == 0 {
			l.patch(jfalse, l.here())
			return nil
		}
		jend := l.emit(Instr{Op: OpJmp})
		l.patch(jfalse, l.here())
		for _, sub := range st.Else {
			if err := l.stmt(sub); err != nil {
				return err
			}
		}
		l.patch(jend, l.here())
	case *seamless.WhileStmt:
		top := &loopLabels{}
		l.loops = append(l.loops, top)
		condAt := l.here()
		if err := l.expr(st.Cond); err != nil {
			return err
		}
		jfalse := l.emit(Instr{Op: OpJmpFalse})
		for _, sub := range st.Body {
			if err := l.stmt(sub); err != nil {
				return err
			}
		}
		for _, j := range top.contJumps {
			l.patch(j, condAt)
		}
		l.emit(Instr{Op: OpJmp, A: condAt})
		end := l.here()
		l.patch(jfalse, end)
		for _, j := range top.breakJumps {
			l.patch(j, end)
		}
		l.loops = l.loops[:len(l.loops)-1]
	case *seamless.ForStmt:
		return l.forStmt(st)
	default:
		return fmt.Errorf("vm: unknown statement %T", s)
	}
	return nil
}

// forStmt lowers "for v in range(start, stop, step)". Stop and step are
// evaluated once into hidden slots, matching Python semantics.
func (l *lowerer) forStmt(st *seamless.ForStmt) error {
	vSlot := l.slot(st.Var)
	stopSlot := l.slot(fmt.Sprintf("$stop%d", l.here()))
	stepSlot := l.slot(fmt.Sprintf("$step%d", l.here()))
	// v = start (default 0).
	if st.Start != nil {
		if err := l.expr(st.Start); err != nil {
			return err
		}
	} else {
		l.emit(Instr{Op: OpConstI, I: 0})
	}
	l.emit(Instr{Op: OpStore, A: vSlot})
	if err := l.expr(st.Stop); err != nil {
		return err
	}
	l.emit(Instr{Op: OpStore, A: stopSlot})
	if st.Step != nil {
		if err := l.expr(st.Step); err != nil {
			return err
		}
	} else {
		l.emit(Instr{Op: OpConstI, I: 1})
	}
	l.emit(Instr{Op: OpStore, A: stepSlot})

	top := &loopLabels{}
	l.loops = append(l.loops, top)
	// Condition: (step > 0 and v < stop) or (step < 0 and v > stop).
	condAt := l.here()
	l.emit(Instr{Op: OpLoad, A: stepSlot})
	l.emit(Instr{Op: OpConstI, I: 0})
	l.emit(Instr{Op: OpGT})
	jNeg := l.emit(Instr{Op: OpJmpFalse})
	l.emit(Instr{Op: OpLoad, A: vSlot})
	l.emit(Instr{Op: OpLoad, A: stopSlot})
	l.emit(Instr{Op: OpLT})
	jCheck := l.emit(Instr{Op: OpJmp})
	l.patch(jNeg, l.here())
	l.emit(Instr{Op: OpLoad, A: vSlot})
	l.emit(Instr{Op: OpLoad, A: stopSlot})
	l.emit(Instr{Op: OpGT})
	l.patch(jCheck, l.here())
	jfalse := l.emit(Instr{Op: OpJmpFalse})

	for _, sub := range st.Body {
		if err := l.stmt(sub); err != nil {
			return err
		}
	}
	// Increment target for continue.
	incrAt := l.here()
	for _, j := range top.contJumps {
		l.patch(j, incrAt)
	}
	l.emit(Instr{Op: OpLoad, A: vSlot})
	l.emit(Instr{Op: OpLoad, A: stepSlot})
	l.emit(Instr{Op: OpAdd})
	l.emit(Instr{Op: OpStore, A: vSlot})
	l.emit(Instr{Op: OpJmp, A: condAt})
	end := l.here()
	l.patch(jfalse, end)
	for _, j := range top.breakJumps {
		l.patch(j, end)
	}
	l.loops = l.loops[:len(l.loops)-1]
	return nil
}

func binOp(op string) Op {
	switch op {
	case "+":
		return OpAdd
	case "-":
		return OpSub
	case "*":
		return OpMul
	case "/":
		return OpDiv
	case "//":
		return OpFloorDiv
	case "%":
		return OpMod
	case "**":
		return OpPow
	}
	panic(fmt.Sprintf("vm: unknown binary operator %q", op))
}

func cmpOp(op string) Op {
	switch op {
	case "<":
		return OpLT
	case "<=":
		return OpLE
	case ">":
		return OpGT
	case ">=":
		return OpGE
	case "==":
		return OpEQ
	case "!=":
		return OpNE
	}
	panic(fmt.Sprintf("vm: unknown comparison %q", op))
}

func (l *lowerer) expr(e seamless.Expr) error {
	switch x := e.(type) {
	case *seamless.IntLit:
		l.emit(Instr{Op: OpConstI, I: x.V})
	case *seamless.FloatLit:
		l.emit(Instr{Op: OpConstF, F: x.V})
	case *seamless.BoolLit:
		a := 0
		if x.V {
			a = 1
		}
		l.emit(Instr{Op: OpConstB, A: a})
	case *seamless.NameExpr:
		l.emit(Instr{Op: OpLoad, A: l.slot(x.Name)})
	case *seamless.UnaryExpr:
		if err := l.expr(x.X); err != nil {
			return err
		}
		if x.Op == "not" {
			l.emit(Instr{Op: OpNot})
		} else {
			l.emit(Instr{Op: OpNeg})
		}
	case *seamless.BinExpr:
		if err := l.expr(x.L); err != nil {
			return err
		}
		if err := l.expr(x.R); err != nil {
			return err
		}
		l.emit(Instr{Op: binOp(x.Op)})
	case *seamless.CmpExpr:
		if err := l.expr(x.L); err != nil {
			return err
		}
		if err := l.expr(x.R); err != nil {
			return err
		}
		l.emit(Instr{Op: cmpOp(x.Op)})
	case *seamless.BoolOpExpr:
		if err := l.expr(x.L); err != nil {
			return err
		}
		var j int
		if x.Op == "or" {
			j = l.emit(Instr{Op: OpJmpTrue})
		} else {
			j = l.emit(Instr{Op: OpJmpFalseKeep})
		}
		if err := l.expr(x.R); err != nil {
			return err
		}
		l.patch(j, l.here())
	case *seamless.IndexExpr:
		if err := l.expr(x.Arr); err != nil {
			return err
		}
		if err := l.expr(x.Index); err != nil {
			return err
		}
		l.emit(Instr{Op: OpIndex})
	case *seamless.CallExpr:
		for _, a := range x.Args {
			if err := l.expr(a); err != nil {
				return err
			}
		}
		c, err := l.resolveCall(x)
		if err != nil {
			return err
		}
		l.emit(Instr{Op: OpCall, A: l.calleeID(c), B: len(x.Args)})
	default:
		return fmt.Errorf("vm: unknown expression %T", e)
	}
	return nil
}

func (l *lowerer) resolveCall(x *seamless.CallExpr) (callee, error) {
	if seamless.IsBuiltin(x.Name) {
		return callee{kind: calleeBuiltin, name: x.Name}, nil
	}
	if _, ok := l.engine.prog.Module.ByName[x.Name]; ok {
		args := make([]seamless.Type, len(x.Args))
		for i, a := range x.Args {
			args[i] = l.tf.ExprTypes[a]
		}
		// Mirror inference-time promotion into float-annotated params.
		cfn := l.engine.prog.Module.ByName[x.Name]
		for i, p := range cfn.Params {
			if i < len(args) && p.Ann == seamless.TFloat && args[i] == seamless.TInt {
				args[i] = seamless.TFloat
			}
		}
		sub, err := l.engine.prog.Specialize(x.Name, args)
		if err != nil {
			return callee{}, err
		}
		return callee{kind: calleeModule, name: x.Name, tf: sub}, nil
	}
	if ext, ok := l.engine.prog.Externs[x.Name]; ok {
		return callee{kind: calleeExtern, name: x.Name, ext: ext}, nil
	}
	return callee{}, fmt.Errorf("vm: unknown function %q at line %d", x.Name, x.Line)
}
