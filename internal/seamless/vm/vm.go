// Package vm implements the interpreted execution engine of the Seamless
// analog: typed ASTs are lowered to a compact stack bytecode executed with
// boxed values and per-instruction dynamic dispatch — deliberately paying
// the overheads a CPython-style interpreter pays, so the compiled engine
// (internal/seamless/compile) has an honest baseline (experiment E6).
package vm

import (
	"fmt"
	"math"

	"odinhpc/internal/seamless"
)

// Op is a bytecode opcode.
type Op byte

// Opcodes.
const (
	OpConstI Op = iota
	OpConstF
	OpConstB
	OpLoad
	OpStore
	OpPop
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpFloorDiv
	OpMod
	OpPow
	OpNeg
	OpNot
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpJmp
	OpJmpFalse     // pops the condition
	OpJmpTrue      // peeks: jumps keeping the value (short-circuit or)
	OpJmpFalseKeep // peeks: jumps keeping the value (short-circuit and)
	OpIndex
	OpStoreIndex
	OpCall
	OpRet
	OpRetNone
)

// Instr is one instruction; A/B are operands (slots, targets, callee ids).
type Instr struct {
	Op Op
	A  int
	B  int
	F  float64
	I  int64
}

// calleeKind discriminates call targets.
type calleeKind int

const (
	calleeBuiltin calleeKind = iota
	calleeModule
	calleeExtern
)

type callee struct {
	kind calleeKind
	name string
	tf   *seamless.TypedFn
	ext  seamless.Extern
}

// Proc is one compiled-to-bytecode function specialization.
type Proc struct {
	Name    string
	NParams int
	NSlots  int
	Code    []Instr
	callees []callee
	slotOf  map[string]int
}

// Disassemble renders the bytecode for inspection (cmd/seamless disasm).
func (p *Proc) Disassemble() string {
	names := map[Op]string{
		OpConstI: "consti", OpConstF: "constf", OpConstB: "constb",
		OpLoad: "load", OpStore: "store", OpPop: "pop",
		OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
		OpFloorDiv: "floordiv", OpMod: "mod", OpPow: "pow", OpNeg: "neg",
		OpNot: "not", OpLT: "lt", OpLE: "le", OpGT: "gt", OpGE: "ge",
		OpEQ: "eq", OpNE: "ne", OpJmp: "jmp", OpJmpFalse: "jmpfalse",
		OpJmpTrue: "jmptrue", OpJmpFalseKeep: "jmpfalsekeep",
		OpIndex: "index", OpStoreIndex: "storeindex",
		OpCall: "call", OpRet: "ret", OpRetNone: "retnone",
	}
	out := fmt.Sprintf("proc %s (params=%d slots=%d)\n", p.Name, p.NParams, p.NSlots)
	for i, ins := range p.Code {
		out += fmt.Sprintf("%4d  %-10s A=%d B=%d", i, names[ins.Op], ins.A, ins.B)
		switch ins.Op {
		case OpConstF:
			out += fmt.Sprintf(" F=%g", ins.F)
		case OpConstI:
			out += fmt.Sprintf(" I=%d", ins.I)
		case OpCall:
			out += fmt.Sprintf(" callee=%s", p.callees[ins.A].name)
		}
		out += "\n"
	}
	return out
}

// Engine compiles typed functions to bytecode and runs them. It memoizes
// procs per specialization.
type Engine struct {
	prog  *seamless.Program
	procs map[*seamless.TypedFn]*Proc
}

// NewEngine wraps a program. An Engine is owned by one goroutine (its
// specialization caches are unsynchronized); give each rank its own.
func NewEngine(prog *seamless.Program) *Engine {
	return &Engine{prog: prog, procs: map[*seamless.TypedFn]*Proc{}}
}

// ProcFor lowers (and caches) the bytecode of one specialization.
func (e *Engine) ProcFor(tf *seamless.TypedFn) (*Proc, error) {
	if p, ok := e.procs[tf]; ok {
		return p, nil
	}
	p, err := e.lower(tf)
	if err != nil {
		return nil, err
	}
	e.procs[tf] = p
	return p, nil
}

// Call specializes, lowers, and runs a function on boxed arguments.
func (e *Engine) Call(name string, args ...seamless.Value) (seamless.Value, error) {
	types := make([]seamless.Type, len(args))
	for i, a := range args {
		types[i] = a.K
	}
	tf, err := e.prog.Specialize(name, types)
	if err != nil {
		return seamless.NoneV(), err
	}
	p, err := e.ProcFor(tf)
	if err != nil {
		return seamless.NoneV(), err
	}
	return e.Run(p, args)
}

// Run executes a proc. Runtime faults (index out of range, division by
// zero) surface as errors.
func (e *Engine) Run(p *Proc, args []seamless.Value) (out seamless.Value, err error) {
	if len(args) != p.NParams {
		return seamless.NoneV(), fmt.Errorf("vm: %s takes %d arguments, got %d", p.Name, p.NParams, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("vm: %s: runtime fault: %v", p.Name, r)
		}
	}()
	return e.exec(p, args), nil
}

func (e *Engine) exec(p *Proc, args []seamless.Value) seamless.Value {
	slots := make([]seamless.Value, p.NSlots)
	copy(slots, args)
	stack := make([]seamless.Value, 0, 16)
	push := func(v seamless.Value) { stack = append(stack, v) }
	pop := func() seamless.Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	pc := 0
	for pc < len(p.Code) {
		ins := p.Code[pc]
		switch ins.Op {
		case OpConstI:
			push(seamless.IntV(ins.I))
		case OpConstF:
			push(seamless.FloatV(ins.F))
		case OpConstB:
			push(seamless.BoolV(ins.A != 0))
		case OpLoad:
			push(slots[ins.A])
		case OpStore:
			slots[ins.A] = pop()
		case OpPop:
			pop()
		case OpAdd, OpSub, OpMul, OpDiv, OpFloorDiv, OpMod, OpPow:
			r := pop()
			l := pop()
			push(arith(ins.Op, l, r))
		case OpNeg:
			v := pop()
			switch v.K {
			case seamless.TInt:
				push(seamless.IntV(-v.I))
			case seamless.TArrFloat:
				push(arrMap(v, func(x float64) float64 { return -x }))
			default:
				push(seamless.FloatV(-v.AsFloat()))
			}
		case OpNot:
			push(seamless.BoolV(!pop().B))
		case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
			r := pop()
			l := pop()
			push(seamless.BoolV(compare(ins.Op, l, r)))
		case OpJmp:
			pc = ins.A
			continue
		case OpJmpFalse:
			if !pop().B {
				pc = ins.A
				continue
			}
		case OpJmpTrue:
			// Peek-style for short-circuit or: jump keeps the value.
			if stack[len(stack)-1].B {
				pc = ins.A
				continue
			}
			pop()
		case OpJmpFalseKeep:
			if !stack[len(stack)-1].B {
				pc = ins.A
				continue
			}
			pop()
		case OpIndex:
			idx := pop().AsInt()
			arr := pop()
			if arr.K == seamless.TArrFloat {
				push(seamless.FloatV(arr.AF[idx]))
			} else {
				push(seamless.IntV(arr.AI[idx]))
			}
		case OpStoreIndex:
			val := pop()
			idx := pop().AsInt()
			arr := slots[ins.A]
			if arr.K == seamless.TArrFloat {
				arr.AF[idx] = val.AsFloat()
			} else {
				arr.AI[idx] = val.AsInt()
			}
		case OpCall:
			c := p.callees[ins.A]
			n := ins.B
			callArgs := make([]seamless.Value, n)
			for i := n - 1; i >= 0; i-- {
				callArgs[i] = pop()
			}
			push(e.invoke(c, callArgs))
		case OpRet:
			return pop()
		case OpRetNone:
			return seamless.NoneV()
		}
		pc++
	}
	return seamless.NoneV()
}

func (e *Engine) invoke(c callee, args []seamless.Value) seamless.Value {
	switch c.kind {
	case calleeBuiltin:
		return callBuiltin(c.name, args)
	case calleeExtern:
		fargs := make([]float64, len(args))
		for i, a := range args {
			fargs[i] = a.AsFloat()
		}
		return seamless.FloatV(c.ext.Fn(fargs...))
	default:
		p, err := e.ProcFor(c.tf)
		if err != nil {
			panic(err.Error())
		}
		return e.exec(p, args)
	}
}

func arith(op Op, l, r seamless.Value) seamless.Value {
	if l.K == seamless.TArrFloat || r.K == seamless.TArrFloat {
		return arithArr(op, l, r)
	}
	bothInt := l.K == seamless.TInt && r.K == seamless.TInt
	switch op {
	case OpAdd:
		if bothInt {
			return seamless.IntV(l.I + r.I)
		}
		return seamless.FloatV(l.AsFloat() + r.AsFloat())
	case OpSub:
		if bothInt {
			return seamless.IntV(l.I - r.I)
		}
		return seamless.FloatV(l.AsFloat() - r.AsFloat())
	case OpMul:
		if bothInt {
			return seamless.IntV(l.I * r.I)
		}
		return seamless.FloatV(l.AsFloat() * r.AsFloat())
	case OpDiv:
		return seamless.FloatV(l.AsFloat() / r.AsFloat())
	case OpFloorDiv:
		if bothInt {
			return seamless.IntV(floorDivInt(l.I, r.I))
		}
		return seamless.FloatV(math.Floor(l.AsFloat() / r.AsFloat()))
	case OpMod:
		if bothInt {
			return seamless.IntV(pythonModInt(l.I, r.I))
		}
		return seamless.FloatV(pythonModFloat(l.AsFloat(), r.AsFloat()))
	case OpPow:
		if bothInt {
			return seamless.IntV(powInt(l.I, r.I))
		}
		return seamless.FloatV(math.Pow(l.AsFloat(), r.AsFloat()))
	}
	panic("vm: bad arithmetic op")
}

// arithArr implements whole-array arithmetic: elementwise over float
// arrays, broadcasting scalar operands, each result a fresh array. These
// boxed loops are the reference semantics the compiled engine's fusion fast
// path must reproduce bitwise.
func arithArr(op Op, l, r seamless.Value) seamless.Value {
	var f func(a, b float64) float64
	switch op {
	case OpAdd:
		f = func(a, b float64) float64 { return a + b }
	case OpSub:
		f = func(a, b float64) float64 { return a - b }
	case OpMul:
		f = func(a, b float64) float64 { return a * b }
	case OpDiv:
		f = func(a, b float64) float64 { return a / b }
	case OpFloorDiv:
		f = func(a, b float64) float64 { return math.Floor(a / b) }
	case OpMod:
		f = pythonModFloat
	case OpPow:
		f = math.Pow
	default:
		panic("vm: bad array arithmetic op")
	}
	switch {
	case l.K == seamless.TArrFloat && r.K == seamless.TArrFloat:
		if len(l.AF) != len(r.AF) {
			panic(fmt.Sprintf("array length mismatch: %d vs %d", len(l.AF), len(r.AF)))
		}
		out := make([]float64, len(l.AF))
		for i := range out {
			out[i] = f(l.AF[i], r.AF[i])
		}
		return seamless.ArrFV(out)
	case l.K == seamless.TArrFloat:
		s := r.AsFloat()
		out := make([]float64, len(l.AF))
		for i := range out {
			out[i] = f(l.AF[i], s)
		}
		return seamless.ArrFV(out)
	default:
		s := l.AsFloat()
		out := make([]float64, len(r.AF))
		for i := range out {
			out[i] = f(s, r.AF[i])
		}
		return seamless.ArrFV(out)
	}
}

// arrMap applies f elementwise to a float array, allocating the result.
func arrMap(a seamless.Value, f func(float64) float64) seamless.Value {
	out := make([]float64, len(a.AF))
	for i, x := range a.AF {
		out[i] = f(x)
	}
	return seamless.ArrFV(out)
}

func compare(op Op, l, r seamless.Value) bool {
	if l.K == seamless.TBool || r.K == seamless.TBool {
		switch op {
		case OpEQ:
			return l.B == r.B
		case OpNE:
			return l.B != r.B
		}
		panic("vm: bool comparison")
	}
	if l.K == seamless.TInt && r.K == seamless.TInt {
		switch op {
		case OpLT:
			return l.I < r.I
		case OpLE:
			return l.I <= r.I
		case OpGT:
			return l.I > r.I
		case OpGE:
			return l.I >= r.I
		case OpEQ:
			return l.I == r.I
		case OpNE:
			return l.I != r.I
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch op {
	case OpLT:
		return lf < rf
	case OpLE:
		return lf <= rf
	case OpGT:
		return lf > rf
	case OpGE:
		return lf >= rf
	case OpEQ:
		return lf == rf
	case OpNE:
		return lf != rf
	}
	panic("vm: bad comparison op")
}

// floorDivInt implements Python's floor division for int64.
func floorDivInt(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// pythonModInt implements Python's modulo (sign of divisor).
func pythonModInt(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

func pythonModFloat(a, b float64) float64 {
	m := math.Mod(a, b)
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

// powInt is integer exponentiation; negative exponents fault like Python's
// int pow into fractions would change type.
func powInt(base, exp int64) int64 {
	if exp < 0 {
		panic("negative integer exponent")
	}
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

func callBuiltin(name string, args []seamless.Value) seamless.Value {
	switch name {
	case "len":
		a := args[0]
		if a.K == seamless.TArrFloat {
			return seamless.IntV(int64(len(a.AF)))
		}
		return seamless.IntV(int64(len(a.AI)))
	case "sqrt", "sin", "cos", "exp", "log":
		f := map[string]func(float64) float64{
			"sqrt": math.Sqrt, "sin": math.Sin, "cos": math.Cos,
			"exp": math.Exp, "log": math.Log,
		}[name]
		if args[0].K == seamless.TArrFloat {
			return arrMap(args[0], f)
		}
		return seamless.FloatV(f(args[0].AsFloat()))
	case "abs":
		if args[0].K == seamless.TArrFloat {
			return arrMap(args[0], math.Abs)
		}
		if args[0].K == seamless.TInt {
			if args[0].I < 0 {
				return seamless.IntV(-args[0].I)
			}
			return args[0]
		}
		return seamless.FloatV(math.Abs(args[0].AsFloat()))
	case "min":
		l, r := args[0], args[1]
		if l.K == seamless.TInt && r.K == seamless.TInt {
			if l.I < r.I {
				return l
			}
			return r
		}
		return seamless.FloatV(math.Min(l.AsFloat(), r.AsFloat()))
	case "max":
		l, r := args[0], args[1]
		if l.K == seamless.TInt && r.K == seamless.TInt {
			if l.I > r.I {
				return l
			}
			return r
		}
		return seamless.FloatV(math.Max(l.AsFloat(), r.AsFloat()))
	case "int":
		return seamless.IntV(args[0].AsInt())
	case "float":
		return seamless.FloatV(args[0].AsFloat())
	case "zeros":
		return seamless.ArrFV(make([]float64, args[0].AsInt()))
	case "izeros":
		return seamless.ArrIV(make([]int64, args[0].AsInt()))
	}
	panic(fmt.Sprintf("vm: unknown builtin %q", name))
}
