package vm

import (
	"math"
	"strings"
	"testing"

	"odinhpc/internal/seamless"
)

func engine(t *testing.T, src string) *Engine {
	t.Helper()
	prog, err := seamless.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(prog)
}

func TestSumKernel(t *testing.T) {
	// The paper's §IV.A decorated sum example, verbatim logic.
	src := `
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res
`
	e := engine(t, src)
	out, err := e.Call("sum", seamless.ArrFV([]float64{1, 2, 3.5}))
	if err != nil {
		t.Fatal(err)
	}
	if out.F != 6.5 {
		t.Fatalf("sum = %v", out)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	src := `
def f(a, b):
    return a / b

def fd(a, b):
    return a // b

def md(a, b):
    return a % b

def pw(a, b):
    return a ** b
`
	e := engine(t, src)
	call := func(name string, a, b seamless.Value) seamless.Value {
		out, err := e.Call(name, a, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return out
	}
	// True division of ints yields float.
	if v := call("f", seamless.IntV(7), seamless.IntV(2)); v.K != seamless.TFloat || v.F != 3.5 {
		t.Fatalf("7/2 = %v", v)
	}
	// Floor division follows Python (toward -inf).
	if v := call("fd", seamless.IntV(-7), seamless.IntV(2)); v.I != -4 {
		t.Fatalf("-7//2 = %v", v)
	}
	if v := call("fd", seamless.FloatV(-7), seamless.FloatV(2)); v.F != -3.5-0.5 {
		t.Fatalf("-7.0//2.0 = %v", v)
	}
	// Modulo takes the divisor's sign.
	if v := call("md", seamless.IntV(-7), seamless.IntV(3)); v.I != 2 {
		t.Fatalf("-7%%3 = %v", v)
	}
	if v := call("md", seamless.FloatV(-7), seamless.FloatV(3)); v.F != 2 {
		t.Fatalf("-7.0%%3.0 = %v", v)
	}
	// Integer power stays integer.
	if v := call("pw", seamless.IntV(2), seamless.IntV(10)); v.K != seamless.TInt || v.I != 1024 {
		t.Fatalf("2**10 = %v", v)
	}
	if v := call("pw", seamless.FloatV(2), seamless.IntV(-1)); v.F != 0.5 {
		t.Fatalf("2.0**-1 = %v", v)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
def collatz(n) -> int:
    steps = 0
    while n != 1:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps += 1
    return steps

def loops(n):
    total = 0
    for i in range(n):
        if i == 2:
            continue
        if i == 7:
            break
        total += i
    return total

def down(n):
    total = 0
    for i in range(n, 0, -1):
        total += i
    return total
`
	e := engine(t, src)
	out, err := e.Call("collatz", seamless.IntV(27))
	if err != nil {
		t.Fatal(err)
	}
	if out.I != 111 {
		t.Fatalf("collatz(27) = %v", out)
	}
	out, _ = e.Call("loops", seamless.IntV(100))
	if out.I != 0+1+3+4+5+6 {
		t.Fatalf("loops = %v", out)
	}
	out, _ = e.Call("down", seamless.IntV(4))
	if out.I != 10 {
		t.Fatalf("down = %v", out)
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right of "and" must not run when the left
	// side is false.
	src := `
def f(x):
    if x > 0 and 1.0 / x > 0.5:
        return 1
    return 0

def g(x):
    if x == 0 or 1.0 / x > 0.0:
        return 1
    return 0
`
	e := engine(t, src)
	if out, err := e.Call("f", seamless.FloatV(0)); err != nil || out.I != 0 {
		t.Fatalf("and: %v %v", out, err)
	}
	if out, err := e.Call("f", seamless.FloatV(1)); err != nil || out.I != 1 {
		t.Fatalf("and true: %v %v", out, err)
	}
	if out, err := e.Call("g", seamless.FloatV(0)); err != nil || out.I != 1 {
		t.Fatalf("or: %v %v", out, err)
	}
}

func TestRecursionAndCalls(t *testing.T) {
	src := `
def fib(n) -> int:
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def square(x):
    return x * x

def sumsq(a, b):
    return square(a) + square(b)
`
	e := engine(t, src)
	out, err := e.Call("fib", seamless.IntV(15))
	if err != nil {
		t.Fatal(err)
	}
	if out.I != 610 {
		t.Fatalf("fib(15) = %v", out)
	}
	out, _ = e.Call("sumsq", seamless.FloatV(3), seamless.FloatV(4))
	if out.F != 25 {
		t.Fatalf("sumsq = %v", out)
	}
}

func TestArrayMutationAndAllocation(t *testing.T) {
	src := `
def scale(xs, alpha):
    out = zeros(len(xs))
    for i in range(len(xs)):
        out[i] = xs[i] * alpha
    return out

def bump(xs):
    for i in range(len(xs)):
        xs[i] += 1.0
    return 0

def counts(n):
    c = izeros(n)
    for i in range(n):
        c[i] = i * i
    return c
`
	e := engine(t, src)
	out, err := e.Call("scale", seamless.ArrFV([]float64{1, 2, 3}), seamless.FloatV(10))
	if err != nil {
		t.Fatal(err)
	}
	if out.AF[2] != 30 {
		t.Fatalf("scale = %v", out.AF)
	}
	// In-place mutation is visible to the caller (arrays are references).
	buf := []float64{5, 5}
	if _, err := e.Call("bump", seamless.ArrFV(buf)); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 6 || buf[1] != 6 {
		t.Fatalf("bump did not mutate: %v", buf)
	}
	out, _ = e.Call("counts", seamless.IntV(4))
	if out.AI[3] != 9 {
		t.Fatalf("counts = %v", out.AI)
	}
}

func TestBuiltins(t *testing.T) {
	src := `
def f(x):
    return sqrt(x) + sin(0.0) + cos(0.0) + exp(0.0) + log(1.0) + abs(-x) + min(x, 100.0) + max(x, -1.0) + float(int(x))
`
	e := engine(t, src)
	out, err := e.Call("f", seamless.FloatV(4))
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 + 0 + 1 + 1 + 0 + 4 + 4 + 4 + 4
	if math.Abs(out.F-want) > 1e-12 {
		t.Fatalf("builtins = %v want %v", out.F, want)
	}
}

func TestExternCallVM(t *testing.T) {
	prog, err := seamless.CompileSource("def f(y, x):\n    return myatan2(y, x)\n")
	if err != nil {
		t.Fatal(err)
	}
	prog.Bind("myatan2", seamless.Extern{NArgs: 2, Fn: func(a ...float64) float64 { return math.Atan2(a[0], a[1]) }})
	e := NewEngine(prog)
	out, err := e.Call("f", seamless.FloatV(1), seamless.FloatV(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.F-math.Atan2(1, 2)) > 1e-15 {
		t.Fatalf("extern = %v", out.F)
	}
}

func TestRuntimeFaults(t *testing.T) {
	src := `
def oob(xs):
    return xs[100]

def divz(a, b):
    return a // b
`
	e := engine(t, src)
	if _, err := e.Call("oob", seamless.ArrFV([]float64{1})); err == nil {
		t.Fatal("out of bounds accepted")
	}
	if _, err := e.Call("divz", seamless.IntV(1), seamless.IntV(0)); err == nil {
		t.Fatal("int division by zero accepted")
	}
}

func TestVoidFunction(t *testing.T) {
	src := `
def fill(xs, v):
    for i in range(len(xs)):
        xs[i] = v

def main(xs):
    fill(xs, 7.0)
    return xs[0]
`
	e := engine(t, src)
	out, err := e.Call("main", seamless.ArrFV(make([]float64, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if out.F != 7 {
		t.Fatalf("void call: %v", out)
	}
}

func TestDisassemble(t *testing.T) {
	src := "def f(x):\n    return x + 1.5\n"
	prog, _ := seamless.CompileSource(src)
	e := NewEngine(prog)
	tf, err := prog.Specialize("f", []seamless.Type{seamless.TFloat})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.ProcFor(tf)
	if err != nil {
		t.Fatal(err)
	}
	dis := p.Disassemble()
	for _, want := range []string{"proc f", "load", "constf", "add", "ret"} {
		if !strings.Contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestArgumentCountChecked(t *testing.T) {
	e := engine(t, "def f(a, b):\n    return a\n")
	if _, err := e.Call("f", seamless.IntV(1)); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestBreakContinueOutsideLoop(t *testing.T) {
	e := engine(t, "def f():\n    break\n")
	if _, err := e.Call("f"); err == nil {
		t.Fatal("break outside loop accepted")
	}
}

func TestPowNegativeIntFaults(t *testing.T) {
	e := engine(t, "def f(a, b):\n    return a ** b\n")
	if _, err := e.Call("f", seamless.IntV(2), seamless.IntV(-3)); err == nil {
		t.Fatal("negative int exponent accepted")
	}
}
