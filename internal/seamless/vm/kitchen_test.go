package vm

import (
	"testing"

	"odinhpc/internal/seamless"
)

// TestVMKitchenSink exercises the interpreter paths the standard tests
// leave cold: bool parameters and comparisons, chained comparisons,
// short-circuit keep-jumps, float floor/mod, integer arrays, augmented
// index assignment, and nested while/pass.
func TestVMKitchenSink(t *testing.T) {
	src := `
def boolsoup(flag, x):
    ok = flag and not (x < 0.0)
    bad = flag == False or x != x
    if ok and not bad:
        return 1
    return 0

def chain(a, b, c):
    if a < b < c:
        return 1
    return 0

def ffloor(a, b):
    return a // b + a % b

def iarr(n):
    h = izeros(n)
    for i in range(n):
        h[i] = i
    h[0] += 10
    h[1] *= 5
    t = 0
    for i in range(len(h)):
        t += h[i]
    return t

def spin(n):
    i = 0
    while i < n:
        i += 1
        pass
    return i
`
	e := engine(t, src)
	cases := []struct {
		name string
		args []seamless.Value
		want int64
	}{
		{"boolsoup", []seamless.Value{seamless.BoolV(true), seamless.FloatV(1)}, 1},
		{"boolsoup", []seamless.Value{seamless.BoolV(true), seamless.FloatV(-1)}, 0},
		{"boolsoup", []seamless.Value{seamless.BoolV(false), seamless.FloatV(1)}, 0},
		{"chain", []seamless.Value{seamless.IntV(1), seamless.IntV(2), seamless.IntV(3)}, 1},
		{"chain", []seamless.Value{seamless.IntV(1), seamless.IntV(3), seamless.IntV(2)}, 0},
		// iarr(4): [10,5,2,3] -> 20.
		{"iarr", []seamless.Value{seamless.IntV(4)}, 20},
		{"spin", []seamless.Value{seamless.IntV(9)}, 9},
	}
	for _, tc := range cases {
		out, err := e.Call(tc.name, tc.args...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if out.I != tc.want {
			t.Fatalf("%s%v = %d want %d", tc.name, tc.args, out.I, tc.want)
		}
	}
	// Float floor-div + Python modulo: -7.5//2 = -4, -7.5%2 = 0.5 -> -3.5.
	out, err := e.Call("ffloor", seamless.FloatV(-7.5), seamless.FloatV(2))
	if err != nil {
		t.Fatal(err)
	}
	if out.F != -3.5 {
		t.Fatalf("ffloor = %v", out.F)
	}
}
