package seamless

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("def f(x):\n    return x + 1\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"def", "f", "(", "x", ")", ":", "", "", "return", "x", "+", "1", "", "", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v", len(texts), texts)
	}
	for i, w := range want {
		if texts[i] != w {
			t.Fatalf("token %d = %q want %q (all: %v)", i, texts[i], w, texts)
		}
	}
	// Kind spot checks.
	if kinds[0] != TokKeyword || kinds[1] != TokName || kinds[6] != TokNewline || kinds[7] != TokIndent {
		t.Fatalf("kinds: %v", kinds)
	}
	if kinds[len(kinds)-1] != TokEOF || kinds[len(kinds)-2] != TokDedent {
		t.Fatalf("tail kinds: %v", kinds)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("def f():\n    return 1.5e-3 + 42 + .5\n")
	if err != nil {
		t.Fatal(err)
	}
	var nums []Token
	for _, tk := range toks {
		if tk.Kind == TokInt || tk.Kind == TokFloat {
			nums = append(nums, tk)
		}
	}
	if len(nums) != 3 {
		t.Fatalf("nums: %v", nums)
	}
	if nums[0].Kind != TokFloat || nums[0].Text != "1.5e-3" {
		t.Fatalf("float: %v", nums[0])
	}
	if nums[1].Kind != TokInt || nums[1].Text != "42" {
		t.Fatalf("int: %v", nums[1])
	}
	if nums[2].Kind != TokFloat || nums[2].Text != ".5" {
		t.Fatalf("leading-dot float: %v", nums[2])
	}
}

func TestLexCommentsAndBlankLines(t *testing.T) {
	src := "# header comment\n\ndef f():  # trailing\n\n    # indented comment\n    return 1\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range toks {
		if strings.Contains(tk.Text, "#") {
			t.Fatalf("comment leaked: %v", tk)
		}
	}
}

func TestLexIndentErrors(t *testing.T) {
	_, err := Lex("def f():\n        return 1\n    x = 2\n")
	if err == nil {
		t.Fatal("inconsistent dedent accepted")
	}
}

func TestLexUnknownChar(t *testing.T) {
	if _, err := Lex("def f():\n    return 1 @ 2\n"); err == nil {
		t.Fatal("@ accepted")
	}
}

func TestLexImplicitLineJoin(t *testing.T) {
	src := "def f(a,\n      b):\n    return a + b\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs[0].Params) != 2 {
		t.Fatal("params across lines")
	}
}

func TestParseFullGrammar(t *testing.T) {
	src := `
def kernel(xs: float[:], n: int) -> float:
    total = 0.0
    i = 0
    while i < n:
        v = xs[i]
        if v > 0.0 and not (v > 100.0):
            total += v
        elif v < -1.0 or v == -5.0:
            total -= v
        else:
            pass
        i += 1
    for j in range(0, n, 2):
        if j == 4:
            continue
        if j > 10:
            break
        total = total + 0.5
    return total

def helper(a, b):
    return max(a, b) ** 2
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("funcs: %d", len(m.Funcs))
	}
	k := m.ByName["kernel"]
	if k.RetAnn != TFloat {
		t.Fatalf("ret ann %v", k.RetAnn)
	}
	if k.Params[0].Ann != TArrFloat || k.Params[1].Ann != TInt {
		t.Fatalf("param anns: %+v", k.Params)
	}
	if len(k.Body) != 5 {
		t.Fatalf("body stmts: %d", len(k.Body))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no-colon":       "def f()\n    return 1\n",
		"dup-func":       "def f():\n    return 1\ndef f():\n    return 2\n",
		"bad-type":       "def f(x: str):\n    return 1\n",
		"empty-block":    "def f():\ndef g():\n    return 1\n",
		"range-arity":    "def f():\n    for i in range(1,2,3,4):\n        pass\n",
		"stray-op":       "def f():\n    return +\n",
		"bad-array-type": "def f(x: bool[:]):\n    return 1\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	m := mustParse("def f():\n    return 1 + 2 * 3 ** 2\n")
	ret := m.Funcs[0].Body[0].(*ReturnStmt)
	add, ok := ret.X.(*BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top is %T", ret.X)
	}
	mul, ok := add.R.(*BinExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("right of + is %T", add.R)
	}
	pow, ok := mul.R.(*BinExpr)
	if !ok || pow.Op != "**" {
		t.Fatalf("right of * is %T", mul.R)
	}
}

func TestParseChainedComparisons(t *testing.T) {
	m := mustParse("def f(a, b, c):\n    return a < b <= c\n")
	ret := m.Funcs[0].Body[0].(*ReturnStmt)
	and, ok := ret.X.(*BoolOpExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("chain top is %T", ret.X)
	}
	l, ok := and.L.(*CmpExpr)
	if !ok || l.Op != "<" {
		t.Fatalf("left is %T", and.L)
	}
	r, ok := and.R.(*CmpExpr)
	if !ok || r.Op != "<=" {
		t.Fatalf("right is %T", and.R)
	}
	// The middle operand is shared.
	if l.R != r.L {
		t.Fatal("middle operand not shared")
	}
}

func TestParseUnaryPlusDropped(t *testing.T) {
	m := mustParse("def f():\n    return +5\n")
	ret := m.Funcs[0].Body[0].(*ReturnStmt)
	if _, ok := ret.X.(*IntLit); !ok {
		t.Fatalf("unary plus not dropped: %T", ret.X)
	}
}

func inferOf(t *testing.T, src, fn string, args ...Type) (*TypedFn, error) {
	t.Helper()
	prog, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Specialize(fn, args)
}

func TestInferSum(t *testing.T) {
	src := `
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res
`
	tf, err := inferOf(t, src, "sum", TArrFloat)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Ret != TFloat {
		t.Fatalf("ret %v", tf.Ret)
	}
	if tf.VarTypes["res"] != TFloat || tf.VarTypes["i"] != TInt || tf.VarTypes["it"] != TArrFloat {
		t.Fatalf("vars: %v", tf.VarTypes)
	}
}

func TestInferIntToFloatPromotion(t *testing.T) {
	src := `
def f(n):
    x = 0
    for i in range(n):
        x = x + 0.5
    return x
`
	tf, err := inferOf(t, src, "f", TInt)
	if err != nil {
		t.Fatal(err)
	}
	if tf.VarTypes["x"] != TFloat || tf.Ret != TFloat {
		t.Fatalf("promotion failed: %v ret %v", tf.VarTypes, tf.Ret)
	}
}

func TestInferTrueDivision(t *testing.T) {
	tf, err := inferOf(t, "def f(a, b):\n    return a / b\n", "f", TInt, TInt)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Ret != TFloat {
		t.Fatalf("int/int must be float, got %v", tf.Ret)
	}
	tf2, err := inferOf(t, "def g(a, b):\n    return a // b\n", "g", TInt, TInt)
	if err != nil {
		t.Fatal(err)
	}
	if tf2.Ret != TInt {
		t.Fatalf("int//int must be int, got %v", tf2.Ret)
	}
}

func TestInferSpecializationPerType(t *testing.T) {
	src := "def double(x):\n    return x + x\n"
	prog, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := prog.Specialize("double", []Type{TInt})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := prog.Specialize("double", []Type{TFloat})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Ret != TInt || ff.Ret != TFloat {
		t.Fatalf("specializations: %v %v", fi.Ret, ff.Ret)
	}
	if len(prog.Specializations()) != 2 {
		t.Fatalf("specs: %v", prog.Specializations())
	}
	// Memoized: same pointer.
	fi2, _ := prog.Specialize("double", []Type{TInt})
	if fi2 != fi {
		t.Fatal("not memoized")
	}
}

func TestInferAnnotationEnforced(t *testing.T) {
	src := "def f(x: float) -> int:\n    return x\n"
	if _, err := inferOf(t, src, "f", TFloat); err == nil {
		t.Fatal("float return into int annotation accepted")
	}
	// Int argument into float annotation promotes.
	src2 := "def g(x: float):\n    return x * 2.0\n"
	tf, err := inferOf(t, src2, "g", TInt)
	if err != nil {
		t.Fatal(err)
	}
	if tf.VarTypes["x"] != TFloat {
		t.Fatal("int->float param promotion")
	}
	// Bool argument into float annotation fails.
	if _, err := inferOf(t, src2, "g", TBool); err == nil {
		t.Fatal("bool into float annotation accepted")
	}
}

func TestInferRecursionNeedsAnnotation(t *testing.T) {
	bad := "def fib(n):\n    if n < 2:\n        return n\n    return fib(n-1) + fib(n-2)\n"
	if _, err := inferOf(t, bad, "fib", TInt); err == nil {
		t.Fatal("unannotated recursion accepted")
	}
	good := "def fib(n) -> int:\n    if n < 2:\n        return n\n    return fib(n-1) + fib(n-2)\n"
	tf, err := inferOf(t, good, "fib", TInt)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Ret != TInt {
		t.Fatalf("ret %v", tf.Ret)
	}
}

func TestInferErrors(t *testing.T) {
	cases := map[string]struct {
		src  string
		args []Type
	}{
		"undefined-var":   {"def f():\n    return y\n", nil},
		"bool-arith":      {"def f(b: bool):\n    return b + 1\n", []Type{TBool}},
		"type-flip":       {"def f(x: float[:]):\n    a = 1\n    a = x\n    return 0\n", []Type{TArrFloat}},
		"non-bool-cond":   {"def f(x):\n    if x:\n        pass\n    return 0\n", []Type{TInt}},
		"float-range":     {"def f(x):\n    for i in range(x):\n        pass\n    return 0\n", []Type{TFloat}},
		"index-non-array": {"def f(x):\n    return x[0]\n", []Type{TInt}},
		"float-index":     {"def f(a: float[:], i):\n    return a[i]\n", []Type{TArrFloat, TFloat}},
		"unknown-call":    {"def f():\n    return mystery(1)\n", nil},
		"arity":           {"def f(a, b):\n    return a\ndef g():\n    return f(1)\n", nil},
		"store-arr-type":  {"def f(a: int[:]):\n    a[0] = 1.5\n    return 0\n", []Type{TArrInt}},
		"aug-undefined":   {"def f():\n    z += 1\n    return 0\n", nil},
		"ret-conflict":    {"def f(b: bool):\n    if b:\n        return 1\n    return True\n", []Type{TBool}},
	}
	for name, tc := range cases {
		src := tc.src
		fnName := "f"
		if name == "arity" {
			fnName = "g"
		}
		if _, err := inferOf(t, src, fnName, tc.args...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuiltinTypes(t *testing.T) {
	src := `
def f(a: float[:], n: int):
    x = len(a)
    y = sqrt(n)
    z = abs(-3)
    w = abs(-3.5)
    m = min(1, 2)
    mf = max(1.0, 2)
    b = zeros(4)
    c = izeros(4)
    return float(x) + y + float(z) + w + float(m) + mf + b[0] + float(c[0])
`
	tf, err := inferOf(t, src, "f", TArrFloat, TInt)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Type{"x": TInt, "y": TFloat, "z": TInt, "w": TFloat, "m": TInt, "mf": TFloat, "b": TArrFloat, "c": TArrInt}
	for v, wt := range want {
		if tf.VarTypes[v] != wt {
			t.Errorf("%s: %v want %v", v, tf.VarTypes[v], wt)
		}
	}
}

func TestExternInference(t *testing.T) {
	prog, err := CompileSource("def f(x):\n    return myatan2(x, 2)\n")
	if err != nil {
		t.Fatal(err)
	}
	prog.Bind("myatan2", Extern{NArgs: 2, Fn: func(a ...float64) float64 { return a[0] }})
	tf, err := prog.Specialize("f", []Type{TFloat})
	if err != nil {
		t.Fatal(err)
	}
	if tf.Ret != TFloat {
		t.Fatalf("extern ret %v", tf.Ret)
	}
	// Wrong arity.
	prog2, _ := CompileSource("def f(x):\n    return myatan2(x)\n")
	prog2.Bind("myatan2", Extern{NArgs: 2, Fn: func(a ...float64) float64 { return a[0] }})
	if _, err := prog2.Specialize("f", []Type{TFloat}); err == nil {
		t.Fatal("extern arity accepted")
	}
}

func TestErrorPositions(t *testing.T) {
	// Front-end errors carry 1-based line:col positions.
	_, err := Parse("def f():\n    return 1 +\n")
	if err == nil {
		t.Fatal("accepted")
	}
	var fe *Error
	if !errorsAs(err, &fe) {
		t.Fatalf("error type %T", err)
	}
	if fe.Line != 2 {
		t.Fatalf("error line %d, want 2", fe.Line)
	}
	if fe.Error() == "" {
		t.Fatal("empty message")
	}
}

// errorsAs is a tiny local stand-in for errors.As to keep imports minimal.
func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestTokenStrings(t *testing.T) {
	toks, err := Lex("def f():\n    return 1\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range toks {
		if tk.String() == "" || tk.Kind.String() == "" {
			t.Fatal("empty token rendering")
		}
	}
	if TokKind(99).String() == "" {
		t.Fatal("unknown kind rendering")
	}
}

func TestParenthesizedTrailers(t *testing.T) {
	// Subscripts chain off parenthesized expressions.
	src := "def f(a: float[:], i):\n    return (a)[i] + (a)[i + 1]\n"
	tf, err := inferOf(t, src, "f", TArrFloat, TInt)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Ret != TFloat {
		t.Fatalf("ret %v", tf.Ret)
	}
}

func TestLexAllOperators(t *testing.T) {
	src := "def f(a, b):\n    c = a ** b // 2 % 3\n    c += 1\n    c -= 1\n    c *= 2\n    c /= 2.0\n    c %= 5\n    return c <= b != a >= 0\n"
	if _, err := Lex(src); err != nil {
		t.Fatal(err)
	}
}

func TestValueHelpers(t *testing.T) {
	if IntV(3).AsFloat() != 3.0 || FloatV(2.7).AsInt() != 2 {
		t.Fatal("conversions")
	}
	vals := []Value{IntV(1), FloatV(1.5), BoolV(true), ArrFV([]float64{1}), ArrIV([]int64{2}), NoneV()}
	for _, v := range vals {
		if v.String() == "" {
			t.Fatal("String")
		}
	}
	if TypeOfValue(IntV(1)) != TInt {
		t.Fatal("TypeOfValue")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AsFloat on bool should panic")
		}
	}()
	BoolV(true).AsFloat()
}

// TestParserNeverPanics fuzzes the front end with random token soup and
// with random mutations of a valid program: every input must produce
// either a Module or an error, never a panic.
func TestParserNeverPanics(t *testing.T) {
	base := "def f(a, b):\n    c = a + b\n    for i in range(10):\n        c += float(i)\n    if c > 0.0:\n        return c\n    return -c\n"
	words := []string{
		"def", "return", "if", "elif", "else", "while", "for", "in", "range",
		"(", ")", "[", "]", ":", ",", "+", "-", "*", "/", "//", "%", "**",
		"<", "<=", "==", "!=", "=", "->", "x", "y", "f", "1", "2.5", "True",
		"not", "and", "or", "\n", "    ", "pass", "break", "continue",
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("seed %d: parser panicked: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var src string
		if seed%2 == 0 {
			// Random token soup.
			var b []byte
			for i := 0; i < rng.Intn(80); i++ {
				b = append(b, words[rng.Intn(len(words))]...)
				if rng.Intn(3) == 0 {
					b = append(b, ' ')
				}
			}
			src = string(b)
		} else {
			// Mutate a valid program: delete a random span.
			lo := rng.Intn(len(base))
			hi := lo + rng.Intn(len(base)-lo)
			src = base[:lo] + base[hi:]
		}
		m, err := Parse(src)
		if err == nil && m != nil {
			// If it parsed, inference must also not panic.
			prog := NewProgram(m)
			for _, fn := range m.Funcs {
				args := make([]Type, len(fn.Params))
				for i := range args {
					args[i] = TFloat
				}
				_, _ = prog.Specialize(fn.Name, args)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeStrings(t *testing.T) {
	for ty, want := range map[Type]string{TInt: "int", TFloat: "float", TBool: "bool", TArrFloat: "float[:]", TArrInt: "int[:]", TNone: "none", TUnknown: "unknown"} {
		if ty.String() != want {
			t.Errorf("%v", ty)
		}
	}
	if !TArrFloat.IsArray() || TInt.IsArray() || !TInt.IsNumeric() || TBool.IsNumeric() {
		t.Fatal("predicates")
	}
}
