// Package seamless implements the front end of the Seamless analog (paper
// §IV): a lexer, parser, and type-inference pass for a Python-like numeric
// kernel language. Two execution engines consume the typed AST: a boxed
// bytecode interpreter (internal/seamless/vm — the "CPython" stand-in) and
// a compiler to statically typed Go closures (internal/seamless/compile —
// the "LLVM JIT" stand-in). The measurable content of the paper's JIT claim
// — the same decorated source running orders of magnitude faster once
// compiled — is reproduced by the interpreter/compiler speed ratio on
// identical programs (experiment E6).
package seamless

import "fmt"

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokName
	TokInt
	TokFloat
	TokKeyword // def return if elif else while for in pass break continue and or not True False range
	TokOp      // operators and punctuation
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "NEWLINE"
	case TokIndent:
		return "INDENT"
	case TokDedent:
		return "DEDENT"
	case TokName:
		return "NAME"
	case TokInt:
		return "INT"
	case TokFloat:
		return "FLOAT"
	case TokKeyword:
		return "KEYWORD"
	case TokOp:
		return "OP"
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Token is one lexical unit with its source position (1-based line/col).
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%v(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

var keywords = map[string]bool{
	"def": true, "return": true, "if": true, "elif": true, "else": true,
	"while": true, "for": true, "in": true, "pass": true, "break": true,
	"continue": true, "and": true, "or": true, "not": true,
	"True": true, "False": true, "range": true,
}

// Error is a front-end error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("seamless: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
