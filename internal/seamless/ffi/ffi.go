// Package ffi implements the Seamless foreign-function layer (paper §IV.C):
// given a C header, the argument and return types of every declared
// function are discovered automatically and the functions become callable —
// the paper's two-line cmath example. Since cgo is out of scope, the
// "shared libraries" are in-process providers (libm backed by Go's math
// package); the measurable claims — signature auto-discovery from headers,
// no per-function manual binding, call-through overhead — are preserved.
package ffi

import (
	"fmt"
	"math"
	"strings"

	"odinhpc/internal/seamless"
)

// CType is a C scalar type appearing in a header declaration.
type CType int

// Supported C types. All numeric C scalars map to float64 at the call
// boundary, as in ctypes' automatic conversions.
const (
	CDouble CType = iota
	CFloat
	CInt
	CLong
)

func (t CType) String() string {
	switch t {
	case CDouble:
		return "double"
	case CFloat:
		return "float"
	case CInt:
		return "int"
	case CLong:
		return "long"
	}
	return fmt.Sprintf("CType(%d)", int(t))
}

// Decl is one parsed function declaration.
type Decl struct {
	Name   string
	Ret    CType
	Params []CType
}

// Signature renders the declaration in C syntax.
func (d Decl) Signature() string {
	ps := make([]string, len(d.Params))
	for i, p := range d.Params {
		ps[i] = p.String()
	}
	return fmt.Sprintf("%s %s(%s)", d.Ret, d.Name, strings.Join(ps, ", "))
}

// ParseHeader parses C-style scalar function declarations:
//
//	double atan2(double y, double x);
//	double sin(double);   /* comments allowed */
//
// Parameter names are optional. Only scalar numeric types are supported.
func ParseHeader(src string) ([]Decl, error) {
	// Strip comments.
	src = stripComments(src)
	var out []Decl
	for _, raw := range strings.Split(src, ";") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		open := strings.IndexByte(line, '(')
		closePos := strings.LastIndexByte(line, ')')
		if open < 0 || closePos < open {
			return nil, fmt.Errorf("ffi: malformed declaration %q", line)
		}
		head := strings.Fields(line[:open])
		if len(head) < 2 {
			return nil, fmt.Errorf("ffi: malformed declaration head %q", line)
		}
		name := head[len(head)-1]
		ret, err := parseCType(strings.Join(head[:len(head)-1], " "))
		if err != nil {
			return nil, fmt.Errorf("ffi: %q: %w", line, err)
		}
		d := Decl{Name: name, Ret: ret}
		inner := strings.TrimSpace(line[open+1 : closePos])
		if inner != "" && inner != "void" {
			for _, param := range strings.Split(inner, ",") {
				fields := strings.Fields(strings.TrimSpace(param))
				if len(fields) == 0 {
					return nil, fmt.Errorf("ffi: empty parameter in %q", line)
				}
				// Drop an optional trailing parameter name.
				typeStr := strings.Join(fields, " ")
				if len(fields) > 1 && !isTypeWord(fields[len(fields)-1]) {
					typeStr = strings.Join(fields[:len(fields)-1], " ")
				}
				pt, err := parseCType(typeStr)
				if err != nil {
					return nil, fmt.Errorf("ffi: %q: %w", line, err)
				}
				d.Params = append(d.Params, pt)
			}
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ffi: header declares no functions")
	}
	return out, nil
}

func stripComments(src string) string {
	var b strings.Builder
	for {
		i := strings.Index(src, "/*")
		if i < 0 {
			break
		}
		j := strings.Index(src[i:], "*/")
		if j < 0 {
			src = src[:i]
			break
		}
		b.WriteString(src[:i])
		src = src[i+j+2:]
	}
	b.WriteString(src)
	lines := strings.Split(b.String(), "\n")
	for k, ln := range lines {
		if i := strings.Index(ln, "//"); i >= 0 {
			lines[k] = ln[:i]
		}
	}
	return strings.Join(lines, "\n")
}

func isTypeWord(w string) bool {
	switch w {
	case "double", "float", "int", "long", "unsigned", "signed", "void":
		return true
	}
	return false
}

func parseCType(s string) (CType, error) {
	switch strings.TrimSpace(s) {
	case "double":
		return CDouble, nil
	case "float":
		return CFloat, nil
	case "int", "signed int", "unsigned int", "unsigned":
		return CInt, nil
	case "long", "long int", "unsigned long":
		return CLong, nil
	}
	return CDouble, fmt.Errorf("unsupported C type %q", s)
}

// Provider supplies native implementations for a library name.
type Provider map[string]func(...float64) float64

var providers = map[string]Provider{
	"m": libm(),
}

// RegisterProvider installs (or replaces) the implementation set for a
// library name, allowing tests and applications to expose their own
// "shared libraries".
func RegisterProvider(name string, p Provider) { providers[name] = p }

// libm is the built-in math library backing the paper's cmath example.
func libm() Provider {
	u1 := func(f func(float64) float64) func(...float64) float64 {
		return func(a ...float64) float64 { return f(a[0]) }
	}
	u2 := func(f func(a, b float64) float64) func(...float64) float64 {
		return func(a ...float64) float64 { return f(a[0], a[1]) }
	}
	return Provider{
		"sin": u1(math.Sin), "cos": u1(math.Cos), "tan": u1(math.Tan),
		"asin": u1(math.Asin), "acos": u1(math.Acos), "atan": u1(math.Atan),
		"sinh": u1(math.Sinh), "cosh": u1(math.Cosh), "tanh": u1(math.Tanh),
		"exp": u1(math.Exp), "log": u1(math.Log), "log2": u1(math.Log2),
		"log10": u1(math.Log10), "sqrt": u1(math.Sqrt), "cbrt": u1(math.Cbrt),
		"fabs": u1(math.Abs), "floor": u1(math.Floor), "ceil": u1(math.Ceil),
		"round": u1(math.Round), "trunc": u1(math.Trunc), "erf": u1(math.Erf),
		"erfc": u1(math.Erfc), "tgamma": u1(math.Gamma),
		"atan2": u2(math.Atan2), "pow": u2(math.Pow), "fmod": u2(math.Mod),
		"hypot": u2(math.Hypot), "fmin": u2(math.Min), "fmax": u2(math.Max),
		"copysign": u2(math.Copysign),
	}
}

// Library is an opened library: parsed declarations bound to a provider.
// It is the Go analog of the paper's
//
//	class cmath(CModule): Header = "math.h"
//	libm = cmath("m")
type Library struct {
	Name  string
	decls map[string]Decl
	impls Provider
}

// Open parses the header, looks up the named provider, and binds every
// declared function that the provider implements. Declared-but-missing
// symbols fail at Call time, matching lazy dynamic linking.
func Open(name, header string) (*Library, error) {
	p, ok := providers[name]
	if !ok {
		return nil, fmt.Errorf("ffi: no library %q", name)
	}
	decls, err := ParseHeader(header)
	if err != nil {
		return nil, err
	}
	lib := &Library{Name: name, decls: map[string]Decl{}, impls: p}
	for _, d := range decls {
		lib.decls[d.Name] = d
	}
	return lib, nil
}

// MathHeader is a math.h subset sufficient for the examples and tests.
const MathHeader = `
/* math.h (subset) */
double sin(double x); double cos(double x); double tan(double x);
double asin(double x); double acos(double x); double atan(double x);
double atan2(double y, double x);
double exp(double x); double log(double x); double log10(double x);
double sqrt(double x); double cbrt(double x);
double pow(double base, double exponent);
double fabs(double x); double floor(double x); double ceil(double x);
double fmod(double x, double y); double hypot(double x, double y);
double fmin(double x, double y); double fmax(double x, double y);
double copysign(double x, double y);
double erf(double x); double tgamma(double x);
`

// OpenM opens the built-in libm with the bundled header — the full
// two-line experience of §IV.C.
func OpenM() (*Library, error) { return Open("m", MathHeader) }

// Decls returns the parsed declarations, keyed by name.
func (l *Library) Decls() map[string]Decl {
	out := make(map[string]Decl, len(l.decls))
	for k, v := range l.decls {
		out[k] = v
	}
	return out
}

// Call invokes a declared function with automatic arity checking against
// the discovered signature.
func (l *Library) Call(name string, args ...float64) (float64, error) {
	d, ok := l.decls[name]
	if !ok {
		return 0, fmt.Errorf("ffi: %s declares no function %q", l.Name, name)
	}
	if len(args) != len(d.Params) {
		return 0, fmt.Errorf("ffi: %s takes %d arguments (%s), got %d", name, len(d.Params), d.Signature(), len(args))
	}
	impl, ok := l.impls[name]
	if !ok {
		return 0, fmt.Errorf("ffi: %s has no symbol %q", l.Name, name)
	}
	return impl(args...), nil
}

// BindAll registers every declared-and-implemented function as an extern
// of the given Seamless program, making the whole library callable from
// kernels.
func (l *Library) BindAll(prog *seamless.Program) int {
	n := 0
	for name, d := range l.decls {
		impl, ok := l.impls[name]
		if !ok {
			continue
		}
		prog.Bind(name, seamless.Extern{NArgs: len(d.Params), Fn: impl})
		n++
	}
	return n
}
