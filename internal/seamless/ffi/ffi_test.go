package ffi

import (
	"math"
	"testing"

	"odinhpc/internal/seamless"
	"odinhpc/internal/seamless/compile"
	"odinhpc/internal/seamless/vm"
)

func TestParseHeaderBasics(t *testing.T) {
	decls, err := ParseHeader("double atan2(double y, double x); double sin(double);")
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 2 {
		t.Fatalf("decls: %d", len(decls))
	}
	if decls[0].Name != "atan2" || len(decls[0].Params) != 2 || decls[0].Ret != CDouble {
		t.Fatalf("atan2: %+v", decls[0])
	}
	if decls[1].Name != "sin" || len(decls[1].Params) != 1 {
		t.Fatalf("sin: %+v", decls[1])
	}
	if decls[0].Signature() != "double atan2(double, double)" {
		t.Fatalf("signature: %q", decls[0].Signature())
	}
}

func TestParseHeaderComments(t *testing.T) {
	src := `
/* block
   comment */
double sin(double x); // line comment
int ilogb(double x);
long lrint(double x);
float fun(float a, int b);
`
	decls, err := ParseHeader(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 4 {
		t.Fatalf("decls: %v", decls)
	}
	if decls[1].Ret != CInt || decls[2].Ret != CLong || decls[3].Ret != CFloat {
		t.Fatalf("ret types: %+v", decls)
	}
	if decls[3].Params[1] != CInt {
		t.Fatalf("param types: %+v", decls[3])
	}
}

func TestParseHeaderNoParamNames(t *testing.T) {
	decls, err := ParseHeader("double pow(double, double);")
	if err != nil {
		t.Fatal(err)
	}
	if len(decls[0].Params) != 2 {
		t.Fatalf("params: %+v", decls[0])
	}
}

func TestParseHeaderVoidParams(t *testing.T) {
	decls, err := ParseHeader("double pi(void);")
	if err != nil {
		t.Fatal(err)
	}
	if len(decls[0].Params) != 0 {
		t.Fatalf("void params: %+v", decls[0])
	}
}

func TestParseHeaderErrors(t *testing.T) {
	for name, src := range map[string]string{
		"empty":     "",
		"no-parens": "double sin;",
		"bad-type":  "char *strdup(char *);",
		"bare":      "double;",
	} {
		if _, err := ParseHeader(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCTypeStrings(t *testing.T) {
	for ct, want := range map[CType]string{CDouble: "double", CFloat: "float", CInt: "int", CLong: "long"} {
		if ct.String() != want {
			t.Errorf("%v != %s", ct, want)
		}
	}
}

// TestTwoLineLibm is the paper's §IV.C example: open libm and everything in
// the header is immediately callable with auto-discovered signatures.
func TestTwoLineLibm(t *testing.T) {
	libm, err := OpenM()
	if err != nil {
		t.Fatal(err)
	}
	got, err := libm.Call("atan2", 1.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Atan2(1, 2)) > 1e-15 {
		t.Fatalf("atan2 = %v", got)
	}
	// A sampling of the rest of the library.
	checks := map[string]struct {
		args []float64
		want float64
	}{
		"sin":      {[]float64{1}, math.Sin(1)},
		"sqrt":     {[]float64{2}, math.Sqrt2},
		"pow":      {[]float64{2, 10}, 1024},
		"hypot":    {[]float64{3, 4}, 5},
		"floor":    {[]float64{2.7}, 2},
		"fmod":     {[]float64{7, 3}, 1},
		"copysign": {[]float64{3, -1}, -3},
		"tgamma":   {[]float64{5}, 24},
	}
	for name, c := range checks {
		got, err := libm.Call(name, c.args...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%s = %v want %v", name, got, c.want)
		}
	}
	if len(libm.Decls()) < 20 {
		t.Fatalf("header only declared %d functions", len(libm.Decls()))
	}
}

func TestCallValidation(t *testing.T) {
	libm, _ := OpenM()
	if _, err := libm.Call("nosuchfn", 1); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := libm.Call("sin", 1, 2); err == nil {
		t.Fatal("wrong arity accepted")
	}
	// Declared but not implemented by the provider.
	lib, err := Open("m", "double nonexistent_symbol(double);")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Call("nonexistent_symbol", 1); err == nil {
		t.Fatal("missing symbol accepted")
	}
}

func TestOpenUnknownLibrary(t *testing.T) {
	if _, err := Open("nota_lib", "double sin(double);"); err == nil {
		t.Fatal("unknown library accepted")
	}
}

func TestRegisterProvider(t *testing.T) {
	RegisterProvider("testlib", Provider{
		"tripler": func(a ...float64) float64 { return 3 * a[0] },
	})
	lib, err := Open("testlib", "double tripler(double x);")
	if err != nil {
		t.Fatal(err)
	}
	got, err := lib.Call("tripler", 7)
	if err != nil || got != 21 {
		t.Fatalf("tripler: %v %v", got, err)
	}
}

// TestBindAllIntoKernels wires libm into a Seamless program and calls it
// from both engines — FFI composing with the JIT, the §IV synthesis.
func TestBindAllIntoKernels(t *testing.T) {
	src := `
def angle(y, x):
    return atan2(y, x)

def dist(x1, y1, x2, y2):
    return hypot(x2 - x1, y2 - y1)
`
	for _, engine := range []string{"vm", "compiled"} {
		prog, err := seamless.CompileSource(src)
		if err != nil {
			t.Fatal(err)
		}
		libm, _ := OpenM()
		if n := libm.BindAll(prog); n < 20 {
			t.Fatalf("BindAll bound %d", n)
		}
		var call func(name string, args ...seamless.Value) (seamless.Value, error)
		if engine == "vm" {
			call = vm.NewEngine(prog).Call
		} else {
			call = compile.NewEngine(prog).Call
		}
		out, err := call("angle", seamless.FloatV(1), seamless.FloatV(1))
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if math.Abs(out.F-math.Pi/4) > 1e-15 {
			t.Fatalf("%s: angle = %v", engine, out.F)
		}
		out, err = call("dist", seamless.FloatV(0), seamless.FloatV(0), seamless.FloatV(3), seamless.FloatV(4))
		if err != nil || out.F != 5 {
			t.Fatalf("%s: dist = %v %v", engine, out, err)
		}
	}
}
