package seamless

import "fmt"

// Type is a static type in the Seamless kernel language.
type Type int

// Types. TUnknown marks unannotated slots before inference; TNone is the
// return type of functions without a return value.
const (
	TUnknown Type = iota
	TInt
	TFloat
	TBool
	TArrFloat
	TArrInt
	TNone
)

func (t Type) String() string {
	switch t {
	case TUnknown:
		return "unknown"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TArrFloat:
		return "float[:]"
	case TArrInt:
		return "int[:]"
	case TNone:
		return "none"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t == TArrFloat || t == TArrInt }

// IsNumeric reports whether t is a scalar numeric type.
func (t Type) IsNumeric() bool { return t == TInt || t == TFloat }

// Module is a parsed source file: an ordered list of function definitions.
type Module struct {
	Funcs  []*FuncDef
	ByName map[string]*FuncDef
	Source string
}

// FuncDef is one "def".
type FuncDef struct {
	Name   string
	Params []Param
	RetAnn Type // TUnknown when unannotated
	Body   []Stmt
	Line   int
}

// Param is one formal parameter with an optional annotation.
type Param struct {
	Name string
	Ann  Type // TUnknown when unannotated
}

// Pos is an embedded source position.
type Pos struct {
	Line, Col int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// AssignStmt is "name = expr".
type AssignStmt struct {
	Pos
	Name string
	X    Expr
}

// AugAssignStmt is "name op= expr".
type AugAssignStmt struct {
	Pos
	Name string
	Op   string // "+", "-", "*", "/", "%"
	X    Expr
}

// IndexAssignStmt is "name[idx] = expr" or "name[idx] op= expr".
type IndexAssignStmt struct {
	Pos
	Name  string
	Index Expr
	Op    string // "" for plain assignment
	X     Expr
}

// ReturnStmt is "return [expr]".
type ReturnStmt struct {
	Pos
	X Expr // nil for bare return
}

// IfStmt is an if/elif/else chain (elif is a nested IfStmt in Else).
type IfStmt struct {
	Pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
}

// WhileStmt is "while cond:".
type WhileStmt struct {
	Pos
	Cond Expr
	Body []Stmt
}

// ForStmt is "for v in range(start, stop, step):". Start and Step may be
// nil (defaults 0 and 1).
type ForStmt struct {
	Pos
	Var   string
	Start Expr
	Stop  Expr
	Step  Expr
	Body  []Stmt
}

// ExprStmt is a bare expression evaluated for effect.
type ExprStmt struct {
	Pos
	X Expr
}

// PassStmt is "pass".
type PassStmt struct{ Pos }

// BreakStmt is "break".
type BreakStmt struct{ Pos }

// ContinueStmt is "continue".
type ContinueStmt struct{ Pos }

func (*AssignStmt) stmt()      {}
func (*AugAssignStmt) stmt()   {}
func (*IndexAssignStmt) stmt() {}
func (*ReturnStmt) stmt()      {}
func (*IfStmt) stmt()          {}
func (*WhileStmt) stmt()       {}
func (*ForStmt) stmt()         {}
func (*ExprStmt) stmt()        {}
func (*PassStmt) stmt()        {}
func (*BreakStmt) stmt()       {}
func (*ContinueStmt) stmt()    {}

// Expr is an expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Pos
	V int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Pos
	V float64
}

// BoolLit is True or False.
type BoolLit struct {
	Pos
	V bool
}

// NameExpr references a variable or parameter.
type NameExpr struct {
	Pos
	Name string
}

// UnaryExpr is "-x" or "not x".
type UnaryExpr struct {
	Pos
	Op string
	X  Expr
}

// BinExpr is an arithmetic binary operation: + - * / // % **.
type BinExpr struct {
	Pos
	Op   string
	L, R Expr
}

// CmpExpr is a comparison: < <= > >= == !=.
type CmpExpr struct {
	Pos
	Op   string
	L, R Expr
}

// BoolOpExpr is short-circuit "and"/"or".
type BoolOpExpr struct {
	Pos
	Op   string
	L, R Expr
}

// IndexExpr is "arr[idx]".
type IndexExpr struct {
	Pos
	Arr   Expr
	Index Expr
}

// CallExpr calls a builtin, a module function, or an FFI binding.
type CallExpr struct {
	Pos
	Name string
	Args []Expr
}

func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*BoolLit) expr()    {}
func (*NameExpr) expr()   {}
func (*UnaryExpr) expr()  {}
func (*BinExpr) expr()    {}
func (*CmpExpr) expr()    {}
func (*BoolOpExpr) expr() {}
func (*IndexExpr) expr()  {}
func (*CallExpr) expr()   {}

// exprPos extracts the source position of any expression.
func exprPos(e Expr) Pos {
	switch x := e.(type) {
	case *IntLit:
		return x.Pos
	case *FloatLit:
		return x.Pos
	case *BoolLit:
		return x.Pos
	case *NameExpr:
		return x.Pos
	case *UnaryExpr:
		return x.Pos
	case *BinExpr:
		return x.Pos
	case *CmpExpr:
		return x.Pos
	case *BoolOpExpr:
		return x.Pos
	case *IndexExpr:
		return x.Pos
	case *CallExpr:
		return x.Pos
	}
	return Pos{}
}
