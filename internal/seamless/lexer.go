package seamless

import (
	"strings"
)

// Lex tokenizes source text, synthesizing INDENT/DEDENT tokens from leading
// whitespace in the Python manner. Tabs count as 8 columns. Blank lines and
// comment-only lines produce no tokens.
func Lex(src string) ([]Token, error) {
	var toks []Token
	indents := []int{0}
	lines := strings.Split(src, "\n")
	parenDepth := 0

	for ln := 0; ln < len(lines); ln++ {
		line := lines[ln]
		lineNo := ln + 1
		// Strip comments (no string literals in the language).
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		// Measure indentation (unless inside brackets — implicit joining).
		col := 0
		i := 0
		for i < len(line) {
			if line[i] == ' ' {
				col++
			} else if line[i] == '\t' {
				col += 8 - col%8
			} else {
				break
			}
			i++
		}
		if parenDepth == 0 {
			cur := indents[len(indents)-1]
			if col > cur {
				indents = append(indents, col)
				toks = append(toks, Token{Kind: TokIndent, Line: lineNo, Col: 1})
			}
			for col < indents[len(indents)-1] {
				indents = indents[:len(indents)-1]
				toks = append(toks, Token{Kind: TokDedent, Line: lineNo, Col: 1})
			}
			if col != indents[len(indents)-1] {
				return nil, errAt(lineNo, 1, "inconsistent indentation")
			}
		}
		// Tokenize the rest of the line.
		for i < len(line) {
			c := line[i]
			colNo := i + 1
			switch {
			case c == ' ' || c == '\t':
				i++
			case isDigit(c) || (c == '.' && i+1 < len(line) && isDigit(line[i+1])):
				j := i
				isFloat := false
				for j < len(line) && (isDigit(line[j]) || line[j] == '.' || line[j] == 'e' || line[j] == 'E' ||
					((line[j] == '+' || line[j] == '-') && j > i && (line[j-1] == 'e' || line[j-1] == 'E'))) {
					if line[j] == '.' || line[j] == 'e' || line[j] == 'E' {
						isFloat = true
					}
					j++
				}
				kind := TokInt
				if isFloat {
					kind = TokFloat
				}
				toks = append(toks, Token{Kind: kind, Text: line[i:j], Line: lineNo, Col: colNo})
				i = j
			case isNameStart(c):
				j := i
				for j < len(line) && isNameChar(line[j]) {
					j++
				}
				text := line[i:j]
				kind := TokName
				if keywords[text] {
					kind = TokKeyword
				}
				toks = append(toks, Token{Kind: kind, Text: text, Line: lineNo, Col: colNo})
				i = j
			default:
				op, n := matchOp(line[i:])
				if n == 0 {
					return nil, errAt(lineNo, colNo, "unexpected character %q", string(c))
				}
				switch op {
				case "(", "[":
					parenDepth++
				case ")", "]":
					if parenDepth > 0 {
						parenDepth--
					}
				}
				toks = append(toks, Token{Kind: TokOp, Text: op, Line: lineNo, Col: colNo})
				i += n
			}
		}
		if parenDepth == 0 {
			toks = append(toks, Token{Kind: TokNewline, Line: lineNo, Col: len(line) + 1})
		}
	}
	// Close any open indentation.
	last := len(lines)
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, Token{Kind: TokDedent, Line: last, Col: 1})
	}
	toks = append(toks, Token{Kind: TokEOF, Line: last, Col: 1})
	return toks, nil
}

// multi-character operators first, longest match wins.
var ops = []string{
	"**", "//", "->", "<=", ">=", "==", "!=",
	"+=", "-=", "*=", "/=", "%=",
	"+", "-", "*", "/", "%", "<", ">", "=",
	"(", ")", "[", "]", ",", ":",
}

func matchOp(s string) (string, int) {
	for _, op := range ops {
		if strings.HasPrefix(s, op) {
			return op, len(op)
		}
	}
	return "", 0
}

func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isNameStart(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isNameChar(c byte) bool  { return isNameStart(c) || isDigit(c) }
