package seamless

import "fmt"

// Value is a boxed runtime value, the currency of the interpreter and of
// the call boundary into compiled code.
type Value struct {
	K  Type
	I  int64
	F  float64
	B  bool
	AF []float64
	AI []int64
}

// IntV boxes an int64.
func IntV(v int64) Value { return Value{K: TInt, I: v} }

// FloatV boxes a float64.
func FloatV(v float64) Value { return Value{K: TFloat, F: v} }

// BoolV boxes a bool.
func BoolV(v bool) Value { return Value{K: TBool, B: v} }

// ArrFV boxes a float64 slice (shared, not copied).
func ArrFV(v []float64) Value { return Value{K: TArrFloat, AF: v} }

// ArrIV boxes an int64 slice (shared, not copied).
func ArrIV(v []int64) Value { return Value{K: TArrInt, AI: v} }

// NoneV is the absent return value.
func NoneV() Value { return Value{K: TNone} }

// AsFloat widens a numeric value to float64.
func (v Value) AsFloat() float64 {
	switch v.K {
	case TFloat:
		return v.F
	case TInt:
		return float64(v.I)
	}
	panic(fmt.Sprintf("seamless: %v is not numeric", v.K))
}

// AsInt narrows a numeric value to int64 (floats truncate toward zero).
func (v Value) AsInt() int64 {
	switch v.K {
	case TInt:
		return v.I
	case TFloat:
		return int64(v.F)
	}
	panic(fmt.Sprintf("seamless: %v is not numeric", v.K))
}

func (v Value) String() string {
	switch v.K {
	case TInt:
		return fmt.Sprintf("%d", v.I)
	case TFloat:
		return fmt.Sprintf("%g", v.F)
	case TBool:
		return fmt.Sprintf("%t", v.B)
	case TArrFloat:
		return fmt.Sprintf("float[%d]", len(v.AF))
	case TArrInt:
		return fmt.Sprintf("int[%d]", len(v.AI))
	case TNone:
		return "None"
	}
	return "unknown"
}

// TypeOfValue returns the language type of a boxed value.
func TypeOfValue(v Value) Type { return v.K }
